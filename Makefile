# Build / verification tiers.
#
#   make build             compile everything
#   make test              tier-1: full test suite
#   make verify            tier-2: go vet + metrics lint + concurrency
#                          race smoke + race-detector run over the whole
#                          tree (the concurrent control plane — transport,
#                          signalling, bb — plus the bench world setup all
#                          run under -race)
#   make race-concurrency  fast -race smoke over the multiplexed-client
#                          and broker concurrency tests only
#   make metrics-lint      metric-name rules: every registered name is
#                          lowercase_snake, counters end in _total, and each
#                          name registers exactly once (obs registry panics
#                          plus a walk over the live world registries)
#   make bench             benchmark harness
#   make bench-concurrency reserve throughput vs parallel requesters
#                          (the numbers recorded in BENCH_concurrency.json)

GO ?= go

.PHONY: build test verify bench bench-concurrency metrics-lint race-concurrency

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

verify: build metrics-lint race-concurrency
	$(GO) vet ./...
	$(GO) test -race ./...

race-concurrency:
	$(GO) test -race -run 'Concurrent' ./internal/signalling ./internal/bb

metrics-lint:
	$(GO) test -run 'TestMetricsLint' ./internal/obs ./internal/experiment

bench:
	$(GO) test -bench=. -benchmem

bench-concurrency:
	$(GO) test -run NONE -bench 'ConcurrentReserveChain' -benchtime 2s .
