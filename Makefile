# Build / verification tiers.
#
#   make build             compile everything
#   make test              tier-1: full test suite
#   make verify            tier-2: go vet + metrics lint + concurrency
#                          race smoke + journal crash-recovery under -race
#                          + short fuzz pass + race-detector run over the
#                          whole tree (the concurrent control plane —
#                          transport, signalling, bb — plus the bench
#                          world setup all run under -race)
#   make race-concurrency  fast -race smoke over the multiplexed-client
#                          and broker concurrency tests only
#   make race-recovery     journal, crash-replay and broker recovery
#                          tests under -race (the durability layer's
#                          correctness battery)
#   make fuzz-short        ~10s per fuzz target over every Fuzz* in the
#                          tree (envelope decode, signalling decode,
#                          policy parse, journal record decode), seeded
#                          from the checked-in corpora
#   make metrics-lint      metric-name rules: every registered name is
#                          lowercase_snake, counters end in _total, every
#                          metric carries non-empty HELP text, and each
#                          name registers exactly once (obs registry panics
#                          plus a walk over the live world registries)
#   make race-subflow      tunnel sub-flow battery under -race: the
#                          endpoint property/invariant tests, the batch
#                          handlers and the tunnel crash-recovery tests
#   make race-replication  replica-group battery under -race: journal
#                          streaming unit tests, follower convergence,
#                          and the randomized leader-kill/promote
#                          failover property suite
#   make race-fleet        scenario-fleet smoke tier under -race: all four
#                          scenario families (diurnal, flash crowd, churn,
#                          misreservation) at reduced population plus the
#                          seeded-determinism digest check, and the netsim
#                          data-plane concurrency battery
#   make race-multipath    multipath battery under -race: the k-disjoint
#                          path property tests, the saga coordinator
#                          suite (abort, crash-resume, abandonment), the
#                          broker re-route/breaker-skip/split/crash
#                          tests, and the fleet reroute scenario
#   make alloc-gate        allocs-per-op gates: binary frame encode,
#                          journal record append, quantile-histogram
#                          Observe and sampled-event append must all be
#                          allocation-free (run without -race; the gates
#                          skip under it)
#   make bench             benchmark harness
#   make bench-codec       binary vs JSON codec micro-benchmarks with
#                          -benchmem (the encode arm the alloc gate pins)
#   make bench-concurrency reserve throughput vs parallel requesters
#                          (the numbers recorded in BENCH_concurrency.json)
#   make bench-subflow     sub-flow admission throughput, per-RPC vs
#                          batched, plus the 1%-sampled telemetry arm
#                          (the numbers in BENCH_subflow.json and
#                          BENCH_obs.json)
#   make bench-obs         telemetry micro-benchmarks with -benchmem:
#                          striped vs mutexed histogram Observe, quantile
#                          merge, sampler draw and flight-recorder append
#                          (the numbers recorded in BENCH_obs.json)
#   make bench-replication end-to-end admission, unreplicated vs a
#                          3-replica commit-gated group (the numbers
#                          recorded in BENCH_replication.json)
#   make bench-fleet       full scenario fleet at 100k users; regenerates
#                          BENCH_scale.json (grant-latency and goodput
#                          p50/p99/p999 per scenario)
#   make bench-route       route-lookup micro-benchmarks with -benchmem:
#                          cached NextHop (the per-RAR forwarding read)
#                          and the cold k-disjoint Paths computation
#                          (the numbers recorded in BENCH_route.json)

GO ?= go

.PHONY: build test verify alloc-gate bench bench-codec bench-concurrency bench-subflow bench-obs bench-replication bench-fleet bench-route metrics-lint race-concurrency race-recovery race-subflow race-replication race-fleet race-multipath fuzz-short

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

verify: build metrics-lint alloc-gate race-concurrency race-recovery race-subflow race-replication race-fleet race-multipath fuzz-short
	$(GO) vet ./...
	$(GO) test -race ./...

alloc-gate:
	$(GO) test -run 'AllocationFree' ./internal/signalling ./internal/journal ./internal/obs

race-concurrency:
	$(GO) test -race -run 'Concurrent' ./internal/signalling ./internal/bb

race-recovery:
	$(GO) test -race ./internal/journal
	$(GO) test -race -run 'Journal|Snapshot|Recovery|Restart' ./internal/resv ./internal/bb

race-subflow:
	$(GO) test -race ./internal/tunnel
	$(GO) test -race -run 'Tunnel' ./internal/bb

race-replication:
	$(GO) test -race -run 'Stream' ./internal/journal
	$(GO) test -race -run 'Replicat|Failover' ./internal/bb

race-fleet:
	$(GO) test -race -run 'Fleet' ./internal/experiment
	$(GO) test -race -run 'Concurrent|OnOffSourceStats|PolicerDropVsRemark|PolicerByteAndPacket' ./internal/netsim

race-multipath:
	$(GO) test -race -run 'Paths|PathCache' ./internal/topology
	$(GO) test -race ./internal/saga
	$(GO) test -race -run 'Reroute|Breaker|Split|Abandoned' ./internal/bb
	$(GO) test -race -run 'FleetReroute' ./internal/experiment

fuzz-short:
	$(GO) test -run NONE -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/envelope
	$(GO) test -run NONE -fuzz '^FuzzDecodeMessage$$' -fuzztime 10s ./internal/signalling
	$(GO) test -run NONE -fuzz '^FuzzParse$$' -fuzztime 10s ./internal/policy
	$(GO) test -run NONE -fuzz '^FuzzDecodeRecord$$' -fuzztime 10s ./internal/journal

metrics-lint:
	$(GO) test -run 'TestMetricsLint' ./internal/obs ./internal/experiment

bench:
	$(GO) test -bench=. -benchmem

bench-codec: alloc-gate
	$(GO) test -run NONE -bench 'BenchmarkCodec' -benchmem ./internal/signalling

bench-concurrency:
	$(GO) test -run NONE -bench 'ConcurrentReserveChain' -benchtime 2s .

bench-subflow:
	$(GO) test -run NONE -bench 'SubFlowThroughput' -benchtime 150000x .

bench-obs:
	$(GO) test -run NONE -bench 'QHistObserve|MutexHistObserve|QHistQuantile|SamplerSample|RecorderAppend' -benchmem ./internal/obs

bench-replication:
	$(GO) test -run NONE -bench 'ReplicatedAdmit' -benchtime 500x -count 3 .

bench-fleet:
	$(GO) run ./cmd/experiments -exp fleet -fleet-users 100000 -fleet-bench BENCH_scale.json

bench-route:
	$(GO) test -run NONE -bench 'NextHop|PathsCold' -benchmem ./internal/topology
