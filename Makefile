# Build / verification tiers.
#
#   make build    compile everything
#   make test     tier-1: full test suite
#   make verify   tier-2: go vet + race-detector run over the whole
#                 tree (the concurrent control plane — transport,
#                 signalling, bb — plus the bench world setup all run
#                 under -race)
#   make bench    benchmark harness

GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
