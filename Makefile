# Build / verification tiers.
#
#   make build         compile everything
#   make test          tier-1: full test suite
#   make verify        tier-2: go vet + metrics lint + race-detector run
#                      over the whole tree (the concurrent control plane —
#                      transport, signalling, bb — plus the bench world
#                      setup all run under -race)
#   make metrics-lint  metric-name rules: every registered name is
#                      lowercase_snake, counters end in _total, and each
#                      name registers exactly once (obs registry panics
#                      plus a walk over the live world registries)
#   make bench         benchmark harness

GO ?= go

.PHONY: build test verify bench metrics-lint

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

verify: build metrics-lint
	$(GO) vet ./...
	$(GO) test -race ./...

metrics-lint:
	$(GO) test -run 'TestMetricsLint' ./internal/obs ./internal/experiment

bench:
	$(GO) test -bench=. -benchmem
