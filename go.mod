module e2eqos

go 1.22
