package identity

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDNAndComponents(t *testing.T) {
	dn := NewDN("Grid", "DomainA", "Alice")
	if got, want := string(dn), "/O=Grid/OU=DomainA/CN=Alice"; got != want {
		t.Fatalf("NewDN = %q, want %q", got, want)
	}
	if dn.CommonName() != "Alice" {
		t.Errorf("CommonName = %q", dn.CommonName())
	}
	if dn.Org() != "Grid" {
		t.Errorf("Org = %q", dn.Org())
	}
	if dn.Unit() != "DomainA" {
		t.Errorf("Unit = %q", dn.Unit())
	}
}

func TestNewDNOmitsEmpty(t *testing.T) {
	dn := NewDN("", "", "bb-a")
	if string(dn) != "/CN=bb-a" {
		t.Errorf("NewDN with only CN = %q", dn)
	}
	if dn.Org() != "" || dn.Unit() != "" {
		t.Error("missing components must be empty strings")
	}
}

func TestDNValid(t *testing.T) {
	valid := []DN{"/CN=x", "/O=Grid/CN=a", NewDN("a", "b", "c")}
	for _, d := range valid {
		if !d.Valid() {
			t.Errorf("DN %q should be valid", d)
		}
	}
	invalid := []DN{"", "CN=x", "/CN=", "/=x", "/CN"}
	for _, d := range invalid {
		if d.Valid() {
			t.Errorf("DN %q should be invalid", d)
		}
	}
}

func TestGenerateKeyPairRejectsInvalidDN(t *testing.T) {
	if _, err := GenerateKeyPair("not-a-dn"); err == nil {
		t.Fatal("expected error for invalid DN")
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair(NewDN("Grid", "A", "alice"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("reservation request: 10Mb/s A->C")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(kp.Public(), msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := Verify(kp.Public(), append(msg, 'x'), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
	other, _ := GenerateKeyPair(NewDN("Grid", "B", "bob"))
	if err := Verify(other.Public(), msg, sig); err == nil {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestSignNilKey(t *testing.T) {
	var kp *KeyPair
	if _, err := kp.Sign([]byte("x")); err == nil {
		t.Fatal("nil key pair should fail to sign")
	}
	if err := Verify(nil, []byte("x"), []byte("y")); err == nil {
		t.Fatal("nil public key should fail to verify")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	kp, err := GenerateKeyPair(NewDN("Grid", "A", "alice"))
	if err != nil {
		t.Fatal(err)
	}
	der, err := MarshalPublicKey(kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ParsePublicKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(kp.Public()) {
		t.Fatal("public key round trip mismatch")
	}
	if KeyFingerprint(pub) != KeyFingerprint(kp.Public()) {
		t.Fatal("fingerprints differ after round trip")
	}
}

func TestParsePublicKeyErrors(t *testing.T) {
	if _, err := ParsePublicKey([]byte("garbage")); err == nil {
		t.Fatal("garbage DER should not parse")
	}
}

func TestKeyFingerprintDistinct(t *testing.T) {
	a, _ := GenerateKeyPair(NewDN("Grid", "A", "a"))
	b, _ := GenerateKeyPair(NewDN("Grid", "B", "b"))
	if KeyFingerprint(a.Public()) == KeyFingerprint(b.Public()) {
		t.Fatal("distinct keys produced identical fingerprints")
	}
}

func TestAttributes(t *testing.T) {
	a := Attributes{}
	a.Add("group", "ATLAS")
	a.Add("group", "ATLAS") // duplicate ignored
	a.Add("group", "CMS")
	a.Add("role", "physicist")
	if !a.Has("group", "ATLAS") || !a.Has("group", "CMS") || !a.Has("role", "physicist") {
		t.Fatal("expected attributes missing")
	}
	if a.Has("group", "LHCb") {
		t.Fatal("unexpected attribute present")
	}
	if len(a["group"]) != 2 {
		t.Fatalf("duplicate add not ignored: %v", a["group"])
	}
}

func TestAttributesClone(t *testing.T) {
	a := Attributes{}
	a.Add("group", "ATLAS")
	b := a.Clone()
	b.Add("group", "CMS")
	if a.Has("group", "CMS") {
		t.Fatal("clone is not independent")
	}
}

func TestAttributesCanonicalDeterministic(t *testing.T) {
	a := Attributes{}
	a.Add("z", "1")
	a.Add("a", "2")
	a.Add("a", "1")
	b := Attributes{}
	b.Add("a", "1")
	b.Add("a", "2")
	b.Add("z", "1")
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical forms differ: %q vs %q", a.Canonical(), b.Canonical())
	}
	if !strings.HasPrefix(a.Canonical(), "a=1;") {
		t.Fatalf("canonical not sorted: %q", a.Canonical())
	}
}

func TestAttributesCanonicalProperty(t *testing.T) {
	// Canonical form must be insensitive to insertion order.
	f := func(keys, vals []string) bool {
		a := Attributes{}
		b := Attributes{}
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a.Add(keys[i], vals[i])
		}
		for i := n - 1; i >= 0; i-- {
			b.Add(keys[i], vals[i])
		}
		return a.Canonical() == b.Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
