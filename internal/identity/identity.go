// Package identity provides the naming and signing primitives shared by
// every entity in the architecture: users, bandwidth brokers, policy
// servers, community authorization servers and certificate authorities.
//
// Entities are identified by an X.500-style distinguished name (DN) such
// as "/O=Grid/OU=DomainA/CN=bb-a". Each entity owns an ECDSA P-256 key
// pair used both for TLS channel authentication and for the detached
// message signatures that implement the paper's nested RAR envelopes.
package identity

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// DN is an X.500-style distinguished name. The canonical form is a
// "/"-joined sequence of attribute=value pairs, e.g.
// "/O=Grid/OU=DomainA/CN=Alice".
type DN string

// NewDN assembles a DN from organization, organizational unit and common
// name; empty components are omitted.
func NewDN(org, unit, common string) DN {
	var b strings.Builder
	if org != "" {
		fmt.Fprintf(&b, "/O=%s", org)
	}
	if unit != "" {
		fmt.Fprintf(&b, "/OU=%s", unit)
	}
	if common != "" {
		fmt.Fprintf(&b, "/CN=%s", common)
	}
	return DN(b.String())
}

// CommonName extracts the CN component, or "" when absent.
func (d DN) CommonName() string {
	for _, part := range strings.Split(string(d), "/") {
		if strings.HasPrefix(part, "CN=") {
			return strings.TrimPrefix(part, "CN=")
		}
	}
	return ""
}

// Org extracts the O component, or "" when absent.
func (d DN) Org() string {
	for _, part := range strings.Split(string(d), "/") {
		if strings.HasPrefix(part, "O=") {
			return strings.TrimPrefix(part, "O=")
		}
	}
	return ""
}

// Unit extracts the OU component, or "" when absent.
func (d DN) Unit() string {
	for _, part := range strings.Split(string(d), "/") {
		if strings.HasPrefix(part, "OU=") {
			return strings.TrimPrefix(part, "OU=")
		}
	}
	return ""
}

// Valid reports whether the DN has at least one non-empty component in
// canonical form.
func (d DN) Valid() bool {
	if d == "" || !strings.HasPrefix(string(d), "/") {
		return false
	}
	for _, part := range strings.Split(strings.TrimPrefix(string(d), "/"), "/") {
		eq := strings.IndexByte(part, '=')
		if eq <= 0 || eq == len(part)-1 {
			return false
		}
	}
	return true
}

func (d DN) String() string { return string(d) }

// KeyPair is an ECDSA P-256 key pair bound to a DN.
type KeyPair struct {
	DN      DN
	Private *ecdsa.PrivateKey
}

// GenerateKeyPair creates a fresh P-256 key pair for the given DN.
func GenerateKeyPair(dn DN) (*KeyPair, error) {
	if !dn.Valid() {
		return nil, fmt.Errorf("identity: invalid DN %q", dn)
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("identity: generating key for %s: %w", dn, err)
	}
	return &KeyPair{DN: dn, Private: priv}, nil
}

// Public returns the public half of the pair.
func (k *KeyPair) Public() *ecdsa.PublicKey { return &k.Private.PublicKey }

// Sign produces an ASN.1 DER ECDSA signature over SHA-256(msg).
func (k *KeyPair) Sign(msg []byte) ([]byte, error) {
	if k == nil || k.Private == nil {
		return nil, errors.New("identity: nil key pair")
	}
	sum := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, k.Private, sum[:])
	if err != nil {
		return nil, fmt.Errorf("identity: signing as %s: %w", k.DN, err)
	}
	return sig, nil
}

// Verify checks an ASN.1 DER ECDSA signature over SHA-256(msg) against
// the given public key.
func Verify(pub *ecdsa.PublicKey, msg, sig []byte) error {
	if pub == nil {
		return errors.New("identity: nil public key")
	}
	sum := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(pub, sum[:], sig) {
		return errors.New("identity: signature verification failed")
	}
	return nil
}

// MarshalPublicKey encodes a public key in PKIX DER form.
func MarshalPublicKey(pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("identity: marshal public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey decodes a PKIX DER public key and requires it to be
// ECDSA.
func ParsePublicKey(der []byte) (*ecdsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("identity: parse public key: %w", err)
	}
	ec, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("identity: public key is %T, want *ecdsa.PublicKey", pub)
	}
	return ec, nil
}

// KeyFingerprint returns a short, stable identifier for a public key:
// base64 (raw URL alphabet) of the first 12 bytes of SHA-256 over the
// PKIX encoding.
func KeyFingerprint(pub *ecdsa.PublicKey) string {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return "invalid-key"
	}
	sum := sha256.Sum256(der)
	return base64.RawURLEncoding.EncodeToString(sum[:12])
}

// Attributes is a set of attribute-value assertions about a principal,
// e.g. group memberships ("group" -> "ATLAS"). Values of the same key
// accumulate.
type Attributes map[string][]string

// Add appends a value under key, skipping duplicates.
func (a Attributes) Add(key, value string) {
	for _, v := range a[key] {
		if v == value {
			return
		}
	}
	a[key] = append(a[key], value)
}

// Has reports whether key carries value.
func (a Attributes) Has(key, value string) bool {
	for _, v := range a[key] {
		if v == value {
			return true
		}
	}
	return false
}

// Clone deep-copies the attribute set.
func (a Attributes) Clone() Attributes {
	out := make(Attributes, len(a))
	for k, vs := range a {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// Canonical renders the attributes deterministically, for signing.
func (a Attributes) Canonical() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		vs := append([]string(nil), a[k]...)
		sort.Strings(vs)
		for _, v := range vs {
			fmt.Fprintf(&b, "%s=%s;", k, v)
		}
	}
	return b.String()
}
