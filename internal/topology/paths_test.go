package topology

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"e2eqos/internal/units"
)

// pathCost sums the link costs along a path.
func pathCost(t *Topology, p []string) int {
	c := 0
	for i := 1; i < len(p); i++ {
		l, ok := t.LinkBetween(p[i-1], p[i])
		if !ok {
			return -1
		}
		c += l.cost()
	}
	return c
}

// assertEdgeDisjoint fails if any two paths share an undirected edge.
func assertEdgeDisjoint(t *testing.T, paths [][]string) {
	t.Helper()
	seen := make(map[[2]string]int)
	for pi, p := range paths {
		for i := 1; i < len(p); i++ {
			k := edgeKey(p[i-1], p[i])
			if prev, dup := seen[k]; dup {
				t.Fatalf("paths %d and %d share edge %v:\n%v", prev, pi, k, paths)
			}
			seen[k] = pi
		}
	}
}

// randomTopology builds a seeded random graph whose link costs are
// distinct powers of two, so every simple path has a unique total cost
// and the greedy disjoint computation is fully determined — the
// brute-force enumerator below can then be compared path-for-path.
func randomTopology(t *testing.T, rng *rand.Rand, n int) *Topology {
	t.Helper()
	topo := New()
	for i := 0; i < n; i++ {
		if err := topo.AddDomain(Domain{Name: fmt.Sprintf("D%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	bit := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() > 0.5 {
				continue
			}
			l := Link{A: fmt.Sprintf("D%02d", i), B: fmt.Sprintf("D%02d", j), Capacity: units.Gbps, Cost: 1 << bit}
			bit++
			if err := topo.AddLink(l); err != nil {
				t.Fatal(err)
			}
		}
	}
	return topo
}

// bruteMinPath enumerates every simple path src->dst avoiding banned
// edges and returns the unique minimum-cost one (costs are distinct
// powers of two, so no two different paths tie). Nil when none exists.
func bruteMinPath(topo *Topology, src, dst string, banned map[[2]string]bool) []string {
	var best []string
	bestCost := -1
	var walk func(cur string, cost int, path []string, visited map[string]bool)
	walk = func(cur string, cost int, path []string, visited map[string]bool) {
		if cur == dst {
			if bestCost < 0 || cost < bestCost {
				best = append([]string(nil), path...)
				bestCost = cost
			}
			return
		}
		for _, n := range topo.Neighbors(cur) {
			if visited[n] || banned[edgeKey(cur, n)] {
				continue
			}
			l, _ := topo.LinkBetween(cur, n)
			visited[n] = true
			walk(n, cost+l.cost(), append(path, n), visited)
			visited[n] = false
		}
	}
	walk(src, 0, []string{src}, map[string]bool{src: true})
	return best
}

// bruteDisjoint replicates the greedy iterative construction by brute
// force: minimum-cost simple path, remove its edges, repeat.
func bruteDisjoint(topo *Topology, src, dst string) [][]string {
	banned := make(map[[2]string]bool)
	var out [][]string
	for {
		p := bruteMinPath(topo, src, dst, banned)
		if p == nil {
			return out
		}
		out = append(out, p)
		for i := 1; i < len(p); i++ {
			banned[edgeKey(p[i-1], p[i])] = true
		}
	}
}

// TestPathsAgainstBruteForce cross-checks Paths on seeded random
// topologies: every returned set must match the brute-force greedy
// enumeration exactly, be edge-disjoint, and be cost-ordered.
func TestPathsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(4)
		topo := randomTopology(t, rng, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				src, dst := fmt.Sprintf("D%02d", i), fmt.Sprintf("D%02d", j)
				want := bruteDisjoint(topo, src, dst)
				got, err := topo.Paths(src, dst, 0)
				if len(want) == 0 {
					if err == nil {
						t.Fatalf("trial %d %s->%s: Paths=%v, brute force says disconnected", trial, src, dst, got)
					}
					continue
				}
				if err != nil {
					t.Fatalf("trial %d %s->%s: %v (brute force found %v)", trial, src, dst, err, want)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %s->%s:\n got %v\nwant %v", trial, src, dst, got, want)
				}
				assertEdgeDisjoint(t, got)
				for k := 1; k < len(got); k++ {
					if pathCost(topo, got[k]) < pathCost(topo, got[k-1]) {
						t.Fatalf("trial %d %s->%s: costs not non-decreasing: %v", trial, src, dst, got)
					}
				}
			}
		}
	}
}

// TestPathsDeterministic: the same topology built twice (fresh caches)
// yields identical path sets, and repeated calls replay the cache.
func TestPathsDeterministic(t *testing.T) {
	build := func() *Topology {
		rng := rand.New(rand.NewSource(42))
		return randomTopology(t, rng, 7)
	}
	a, b := build(), build()
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if i == j {
				continue
			}
			src, dst := fmt.Sprintf("D%02d", i), fmt.Sprintf("D%02d", j)
			p1, err1 := a.Paths(src, dst, 0)
			p2, err2 := b.Paths(src, dst, 0)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s->%s: err mismatch %v vs %v", src, dst, err1, err2)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("%s->%s: fresh builds disagree:\n%v\n%v", src, dst, p1, p2)
			}
			p3, _ := a.Paths(src, dst, 0)
			if !reflect.DeepEqual(p1, p3) {
				t.Fatalf("%s->%s: cached call disagrees with first", src, dst)
			}
		}
	}
}

// TestPathsKDegradesGracefully: asking for more disjoint paths than
// the graph has returns what exists, without error.
func TestPathsKDegradesGracefully(t *testing.T) {
	topo, err := Multi(3, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := topo.Paths("Domain0", "Domain4", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("got %d paths, want 3: %v", len(ps), ps)
	}
	assertEdgeDisjoint(t, ps)
	// Cost ordering: branch i carries cost i, so the primary path runs
	// through Domain1.
	want := [][]string{
		{"Domain0", "Domain1", "Domain4"},
		{"Domain0", "Domain2", "Domain4"},
		{"Domain0", "Domain3", "Domain4"},
	}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("got %v, want %v", ps, want)
	}
	// A chain has exactly one path however large k is.
	lin, err := Linear(5, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	ps, err = lin.Paths("Domain0", "Domain4", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("chain yielded %d paths, want 1: %v", len(ps), ps)
	}
	// k=1 truncates.
	ps, err = topo.Paths("Domain0", "Domain4", 1)
	if err != nil || len(ps) != 1 {
		t.Fatalf("k=1: got %v, %v", ps, err)
	}
}

// TestPathsSelfAndErrors pins the edge semantics Path had before the
// cache: src==dst is a single-element path, unknown domains and
// disconnected pairs are errors.
func TestPathsSelfAndErrors(t *testing.T) {
	topo, err := Multi(2, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := topo.Paths("Domain1", "Domain1", 3)
	if err != nil || len(ps) != 1 || len(ps[0]) != 1 || ps[0][0] != "Domain1" {
		t.Fatalf("self path: got %v, %v", ps, err)
	}
	if _, err := topo.Paths("Nope", "Domain1", 1); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := topo.Paths("Domain1", "Nope", 1); err == nil {
		t.Fatal("unknown destination accepted")
	}
	island := New()
	_ = island.AddDomain(Domain{Name: "A"})
	_ = island.AddDomain(Domain{Name: "B"})
	if _, err := island.Paths("A", "B", 1); err == nil {
		t.Fatal("disconnected pair yielded a path")
	}
}

// TestPathCacheInvalidation: a topology mutation must drop cached
// paths so routing follows the new graph.
func TestPathCacheInvalidation(t *testing.T) {
	topo, err := Linear(4, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	hop, err := topo.NextHop("Domain0", "Domain3")
	if err != nil || hop != "Domain1" {
		t.Fatalf("pre-shortcut next hop %q, %v", hop, err)
	}
	// Add a direct shortcut; the cached chain route must be dropped.
	if err := topo.AddLink(Link{A: "Domain0", B: "Domain3", Capacity: units.Gbps}); err != nil {
		t.Fatal(err)
	}
	hop, err = topo.NextHop("Domain0", "Domain3")
	if err != nil || hop != "Domain3" {
		t.Fatalf("post-shortcut next hop %q, %v (cache not invalidated)", hop, err)
	}
	ps, err := topo.Paths("Domain0", "Domain3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("after shortcut: %d disjoint paths, want 2: %v", len(ps), ps)
	}
	assertEdgeDisjoint(t, ps)
}

// BenchmarkNextHop guards the forwarding-path fix: NextHop used to run
// a full Dijkstra per call; it must now be a cache lookup.
func BenchmarkNextHop(b *testing.B) {
	topo, err := Linear(20, units.Gbps)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := topo.NextHop("Domain0", "Domain19"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topo.NextHop("Domain0", "Domain19"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathsCold measures the uncached disjoint computation (the
// price paid once per (src,dst) per topology change).
func BenchmarkPathsCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo, err := Multi(4, units.Gbps)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := topo.Paths("Domain0", "Domain5", 0); err != nil {
			b.Fatal(err)
		}
	}
}
