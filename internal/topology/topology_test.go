package topology

import (
	"testing"
	"testing/quick"

	"e2eqos/internal/units"
)

func buildDiamond(t *testing.T) *Topology {
	t.Helper()
	tp := New()
	for _, name := range []string{"A", "B", "C", "D"} {
		if err := tp.AddDomain(Domain{Name: name, Prefixes: []string{"host-" + name + "."}}); err != nil {
			t.Fatal(err)
		}
	}
	// A-B-D and A-C-D; B path cheaper.
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tp.AddLink(Link{A: "A", B: "B", Capacity: units.Gbps}))
	must(tp.AddLink(Link{A: "B", B: "D", Capacity: units.Gbps}))
	must(tp.AddLink(Link{A: "A", B: "C", Capacity: units.Gbps, Cost: 5}))
	must(tp.AddLink(Link{A: "C", B: "D", Capacity: units.Gbps, Cost: 5}))
	return tp
}

func TestAddDomainAndLinkErrors(t *testing.T) {
	tp := New()
	if err := tp.AddDomain(Domain{}); err == nil {
		t.Error("empty domain name accepted")
	}
	if err := tp.AddDomain(Domain{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(Link{A: "A", B: "Z"}); err == nil {
		t.Error("link to unknown domain accepted")
	}
	if err := tp.AddLink(Link{A: "A", B: "A"}); err == nil {
		t.Error("self link accepted")
	}
}

func TestPathShortest(t *testing.T) {
	tp := buildDiamond(t)
	path, err := tp.Path("A", "D")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "B", "D"}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Errorf("path = %v, want %v", path, want)
	}
}

func TestPathSameDomain(t *testing.T) {
	tp := buildDiamond(t)
	path, err := tp.Path("A", "A")
	if err != nil || len(path) != 1 || path[0] != "A" {
		t.Errorf("path = %v err = %v", path, err)
	}
}

func TestPathUnknownAndDisconnected(t *testing.T) {
	tp := buildDiamond(t)
	if _, err := tp.Path("A", "Z"); err == nil {
		t.Error("path to unknown domain computed")
	}
	if _, err := tp.Path("Z", "A"); err == nil {
		t.Error("path from unknown domain computed")
	}
	if err := tp.AddDomain(Domain{Name: "island"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Path("A", "island"); err == nil {
		t.Error("path to disconnected domain computed")
	}
}

func TestNextHop(t *testing.T) {
	tp := buildDiamond(t)
	hop, err := tp.NextHop("A", "D")
	if err != nil || hop != "B" {
		t.Errorf("NextHop = %q err=%v, want B", hop, err)
	}
	if _, err := tp.NextHop("D", "D"); err == nil {
		t.Error("NextHop at destination must error")
	}
}

func TestDomainForHost(t *testing.T) {
	tp := buildDiamond(t)
	dom, err := tp.DomainForHost("host-B.cluster.example")
	if err != nil || dom != "B" {
		t.Errorf("DomainForHost = %q err=%v", dom, err)
	}
	if _, err := tp.DomainForHost("unknown.example"); err == nil {
		t.Error("unknown host resolved")
	}
}

func TestDomainForHostLongestPrefix(t *testing.T) {
	tp := New()
	_ = tp.AddDomain(Domain{Name: "wide", Prefixes: []string{"10."}})
	_ = tp.AddDomain(Domain{Name: "narrow", Prefixes: []string{"10.1."}})
	dom, err := tp.DomainForHost("10.1.2.3")
	if err != nil || dom != "narrow" {
		t.Errorf("longest prefix match = %q err=%v, want narrow", dom, err)
	}
}

func TestLinearTopology(t *testing.T) {
	tp, err := Linear(4, 100*units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.Domains(); len(got) != 4 {
		t.Fatalf("domains = %v", got)
	}
	path, err := tp.Path("Domain0", "Domain3")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Errorf("path = %v, want 4 hops inclusive", path)
	}
	dom, err := tp.DomainForHost("host2.example")
	if err != nil || dom != "Domain2" {
		t.Errorf("host2 resolved to %q err=%v", dom, err)
	}
	l, ok := tp.LinkBetween("Domain1", "Domain2")
	if !ok || l.Capacity != 100*units.Mbps {
		t.Errorf("link = %+v ok=%v", l, ok)
	}
}

func TestLinearLabels(t *testing.T) {
	tp, err := Linear(3, units.Gbps, "DomainA", "DomainB", "DomainC")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tp.Domain("DomainB"); !ok {
		t.Error("labelled domain missing")
	}
	if _, err := Linear(3, units.Gbps, "onlyone"); err == nil {
		t.Error("label count mismatch accepted")
	}
	if _, err := Linear(0, units.Gbps); err == nil {
		t.Error("zero domains accepted")
	}
}

func TestNeighborsSorted(t *testing.T) {
	tp := buildDiamond(t)
	n := tp.Neighbors("A")
	if len(n) != 2 || n[0] != "B" || n[1] != "C" {
		t.Errorf("neighbors = %v", n)
	}
	if len(tp.Neighbors("nonexistent")) != 0 {
		t.Error("unknown domain has neighbors")
	}
}

// Property: on a linear topology every computed path is the contiguous
// domain interval between the endpoints.
func TestLinearPathProperty(t *testing.T) {
	tp, err := Linear(10, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		i, j := int(a)%10, int(b)%10
		src := tp.Domains()[0]
		_ = src
		from := tp.Domains()
		path, err := tp.Path(from[i], from[j])
		if err != nil {
			return false
		}
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		return len(path) == hi-lo+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDomainOfBB(t *testing.T) {
	tp, err := Linear(4, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tp.Domains() {
		d, _ := tp.Domain(name)
		got, ok := tp.DomainOfBB(d.BBDN)
		if !ok || got != name {
			t.Errorf("DomainOfBB(%s) = %q, %v; want %q", d.BBDN, got, ok, name)
		}
	}
	if _, ok := tp.DomainOfBB("/O=Grid/OU=Nowhere/CN=bb-x"); ok {
		t.Error("unknown BB DN resolved")
	}
}

func TestDomainOfBBTracksReplacement(t *testing.T) {
	tp := New()
	if err := tp.AddDomain(Domain{Name: "A", BBDN: "/CN=old"}); err != nil {
		t.Fatal(err)
	}
	// Re-adding the domain with a new broker must drop the old mapping.
	if err := tp.AddDomain(Domain{Name: "A", BBDN: "/CN=new"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tp.DomainOfBB("/CN=old"); ok {
		t.Error("stale BB mapping survived domain replacement")
	}
	if got, ok := tp.DomainOfBB("/CN=new"); !ok || got != "A" {
		t.Errorf("DomainOfBB(new) = %q, %v; want A", got, ok)
	}
}
