// Package topology models the inter-domain structure of the testbed:
// administrative domains, their peering links, host-to-domain routing,
// and inter-domain path computation. The GARA end-to-end library uses
// it to determine "the relevant BBs" for a source/destination pair;
// bandwidth brokers use it to find their next hop toward a destination
// domain.
package topology

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// Domain describes one administrative domain.
type Domain struct {
	// Name is the domain identifier, e.g. "DomainA".
	Name string
	// BBDN is the distinguished name of the domain's bandwidth broker.
	BBDN identity.DN
	// Prefixes lists the address prefixes (string-prefix matched hosts)
	// that belong to this domain, e.g. "hostA." or "10.1.".
	Prefixes []string
}

// Link is a bidirectional peering between two domains with a physical
// capacity.
type Link struct {
	A, B     string
	Capacity units.Bandwidth
	// Cost is the routing metric; 0 means 1.
	Cost int
}

func (l Link) cost() int {
	if l.Cost <= 0 {
		return 1
	}
	return l.Cost
}

// pathKey indexes the disjoint-path cache by endpoint pair.
type pathKey struct{ src, dst string }

// Topology is the peering graph. It is safe for concurrent use.
type Topology struct {
	mu      sync.RWMutex
	domains map[string]*Domain
	// adj maps domain -> neighbor -> link.
	adj map[string]map[string]Link
	// byBB is the reverse index from a broker DN to its domain name,
	// maintained by AddDomain so DomainOfBB is a map lookup instead of
	// a scan over every domain (it sits on the per-request signalling
	// path, where brokers resolve the authenticated upstream hop).
	byBB map[identity.DN]string
	// paths caches the full edge-disjoint path set per (src, dst), so
	// Path/NextHop on the per-RAR forwarding path are map lookups
	// instead of a Dijkstra run each. Invalidated wholesale on any
	// topology mutation; entries are computed lazily on first use.
	// Cached slices are shared with callers and must not be mutated.
	paths map[pathKey][][]string
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{
		domains: make(map[string]*Domain),
		adj:     make(map[string]map[string]Link),
		byBB:    make(map[identity.DN]string),
		paths:   make(map[pathKey][][]string),
	}
}

// AddDomain registers a domain; re-adding replaces its metadata.
func (t *Topology) AddDomain(d Domain) error {
	if d.Name == "" {
		return fmt.Errorf("topology: empty domain name")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if old := t.domains[d.Name]; old != nil && old.BBDN != "" && t.byBB[old.BBDN] == d.Name {
		delete(t.byBB, old.BBDN)
	}
	dd := d
	t.domains[d.Name] = &dd
	if d.BBDN != "" {
		t.byBB[d.BBDN] = d.Name
	}
	if t.adj[d.Name] == nil {
		t.adj[d.Name] = make(map[string]Link)
	}
	t.invalidatePathsLocked()
	return nil
}

// invalidatePathsLocked drops every cached path set; callers hold t.mu.
func (t *Topology) invalidatePathsLocked() {
	if len(t.paths) > 0 {
		t.paths = make(map[pathKey][][]string)
	}
}

// DomainOfBB resolves a broker DN to the domain it controls.
func (t *Topology) DomainOfBB(dn identity.DN) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	name, ok := t.byBB[dn]
	return name, ok
}

// AddLink connects two registered domains.
func (t *Topology) AddLink(l Link) error {
	if l.A == l.B {
		return fmt.Errorf("topology: self link on %s", l.A)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.domains[l.A] == nil {
		return fmt.Errorf("topology: unknown domain %s", l.A)
	}
	if t.domains[l.B] == nil {
		return fmt.Errorf("topology: unknown domain %s", l.B)
	}
	t.adj[l.A][l.B] = l
	rev := l
	rev.A, rev.B = l.B, l.A
	t.adj[l.B][l.A] = rev
	t.invalidatePathsLocked()
	return nil
}

// Domain returns the metadata for name.
func (t *Topology) Domain(name string) (*Domain, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d, ok := t.domains[name]
	return d, ok
}

// Domains returns all domain names, sorted.
func (t *Topology) Domains() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.domains))
	for name := range t.domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Neighbors returns the sorted neighbor names of a domain.
func (t *Topology) Neighbors(name string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.adj[name]))
	for n := range t.adj[name] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LinkBetween returns the peering link between two domains.
func (t *Topology) LinkBetween(a, b string) (Link, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	l, ok := t.adj[a][b]
	return l, ok
}

// DomainForHost resolves a host identifier to its domain via longest
// prefix match.
func (t *Topology) DomainForHost(host string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	best, bestLen := "", -1
	for name, d := range t.domains {
		for _, p := range d.Prefixes {
			if strings.HasPrefix(host, p) && len(p) > bestLen {
				best, bestLen = name, len(p)
			}
		}
	}
	if bestLen < 0 {
		return "", fmt.Errorf("topology: no domain for host %q", host)
	}
	return best, nil
}

// edgeKey normalises an undirected link to a canonical pair.
func edgeKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// shortestLocked runs Dijkstra from src to dst over link costs,
// ignoring every link in banned (keyed by edgeKey). Ties break toward
// lexicographically smaller names so paths are deterministic. Returns
// nil when dst is unreachable. Callers hold t.mu (read or write).
func (t *Topology) shortestLocked(src, dst string, banned map[[2]string]bool) []string {
	const inf = int(^uint(0) >> 1)
	dist := make(map[string]int, len(t.domains))
	prev := make(map[string]string, len(t.domains))
	visited := make(map[string]bool, len(t.domains))
	for name := range t.domains {
		dist[name] = inf
	}
	dist[src] = 0
	for {
		// Extract the unvisited node with minimal distance,
		// lexicographic tiebreak.
		cur, best := "", inf
		for name, d := range dist {
			if visited[name] || d > best {
				continue
			}
			if d < best || (d == best && (cur == "" || name < cur)) {
				cur, best = name, d
			}
		}
		if cur == "" || best == inf {
			return nil
		}
		if cur == dst {
			break
		}
		visited[cur] = true
		// Deterministic neighbor order.
		neigh := make([]string, 0, len(t.adj[cur]))
		for n := range t.adj[cur] {
			neigh = append(neigh, n)
		}
		sort.Strings(neigh)
		for _, n := range neigh {
			if visited[n] || banned[edgeKey(cur, n)] {
				continue
			}
			l := t.adj[cur][n]
			if nd := dist[cur] + l.cost(); nd < dist[n] {
				dist[n] = nd
				prev[n] = cur
			}
		}
	}
	// Reconstruct.
	var rev []string
	for cur := dst; cur != ""; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	path := make([]string, len(rev))
	for i, d := range rev {
		path[len(rev)-1-i] = d
	}
	return path
}

// disjointLocked computes the full edge-disjoint path set from src to
// dst by iterative Dijkstra with edge removal: the minimum-cost path
// first, then the minimum-cost path not sharing an edge with any
// earlier one, until the endpoints disconnect. Successive path costs
// are non-decreasing (each search runs over a subgraph of the last),
// so the set comes out cost-ordered. Callers hold t.mu for writing.
func (t *Topology) disjointLocked(src, dst string) [][]string {
	if src == dst {
		return [][]string{{src}}
	}
	banned := make(map[[2]string]bool)
	var out [][]string
	for {
		p := t.shortestLocked(src, dst, banned)
		if p == nil {
			return out
		}
		out = append(out, p)
		for i := 1; i < len(p); i++ {
			banned[edgeKey(p[i-1], p[i])] = true
		}
	}
}

// Paths returns up to k edge-disjoint domain paths from src to dst
// (inclusive of both endpoints), cost-ordered with the minimum-cost
// path first; k <= 0 returns every disjoint path. Fewer than k paths
// may exist — callers get what the graph has, never an error for
// asking too much. The set is deterministic (lexicographic tiebreaks)
// and served from a cache invalidated on every topology change. The
// returned inner slices are shared and must not be mutated.
func (t *Topology) Paths(src, dst string, k int) ([][]string, error) {
	t.mu.RLock()
	if t.domains[src] == nil {
		t.mu.RUnlock()
		return nil, fmt.Errorf("topology: unknown source domain %s", src)
	}
	if t.domains[dst] == nil {
		t.mu.RUnlock()
		return nil, fmt.Errorf("topology: unknown destination domain %s", dst)
	}
	all, ok := t.paths[pathKey{src, dst}]
	t.mu.RUnlock()
	if !ok {
		t.mu.Lock()
		if all, ok = t.paths[pathKey{src, dst}]; !ok {
			all = t.disjointLocked(src, dst)
			t.paths[pathKey{src, dst}] = all
		}
		t.mu.Unlock()
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("topology: no path from %s to %s", src, dst)
	}
	if k > 0 && k < len(all) {
		all = all[:k]
	}
	// Copy the outer slice so callers appending to the result never
	// alias the cache; the inner path slices stay shared.
	out := make([][]string, len(all))
	copy(out, all)
	return out, nil
}

// Path computes the minimum-cost domain path from src to dst (inclusive
// of both endpoints): the first entry of the cached disjoint path set.
func (t *Topology) Path(src, dst string) ([]string, error) {
	ps, err := t.Paths(src, dst, 1)
	if err != nil {
		return nil, err
	}
	return ps[0], nil
}

// NextHop returns the neighbor of cur on the computed path toward dst.
// Served from the path cache: the per-RAR forwarding path pays a map
// lookup, not a Dijkstra run.
func (t *Topology) NextHop(cur, dst string) (string, error) {
	path, err := t.Path(cur, dst)
	if err != nil {
		return "", err
	}
	if len(path) < 2 {
		return "", fmt.Errorf("topology: %s is the destination", cur)
	}
	return path[1], nil
}

// Linear builds the canonical N-domain chain topology of the paper's
// figures: Domain0 - Domain1 - ... - Domain{n-1}, each with a BB DN
// "/O=Grid/OU=Domain<i>/CN=bb-<i>" and host prefix "host<i>.".
// Names may be overridden by passing explicit labels.
func Linear(n int, capacity units.Bandwidth, labels ...string) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least one domain")
	}
	if len(labels) != 0 && len(labels) != n {
		return nil, fmt.Errorf("topology: got %d labels for %d domains", len(labels), n)
	}
	t := New()
	name := func(i int) string {
		if len(labels) == n {
			return labels[i]
		}
		return fmt.Sprintf("Domain%d", i)
	}
	for i := 0; i < n; i++ {
		d := Domain{
			Name:     name(i),
			BBDN:     identity.NewDN("Grid", name(i), fmt.Sprintf("bb-%d", i)),
			Prefixes: []string{fmt.Sprintf("host%d.", i), strings.ToLower(name(i)) + "."},
		}
		if err := t.AddDomain(d); err != nil {
			return nil, err
		}
	}
	for i := 1; i < n; i++ {
		if err := t.AddLink(Link{A: name(i - 1), B: name(i), Capacity: capacity}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Multi builds a source–mesh–destination topology with `branches`
// edge-disjoint two-hop paths between Domain0 (the source) and
// Domain{branches+1} (the destination): Domain0 peers with every mid
// domain Domain1..Domain{branches}, each of which peers with the
// destination. Branch i's links carry cost i, so the disjoint path set
// comes out in a deterministic order — the branch through Domain1 is
// always the primary. Naming conventions (BB DNs, host prefixes)
// match Linear, so the experiment world wires it unchanged.
func Multi(branches int, capacity units.Bandwidth) (*Topology, error) {
	if branches < 1 {
		return nil, fmt.Errorf("topology: need at least one branch")
	}
	n := branches + 2
	t := New()
	name := func(i int) string { return fmt.Sprintf("Domain%d", i) }
	for i := 0; i < n; i++ {
		d := Domain{
			Name:     name(i),
			BBDN:     identity.NewDN("Grid", name(i), fmt.Sprintf("bb-%d", i)),
			Prefixes: []string{fmt.Sprintf("host%d.", i), strings.ToLower(name(i)) + "."},
		}
		if err := t.AddDomain(d); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= branches; i++ {
		if err := t.AddLink(Link{A: name(0), B: name(i), Capacity: capacity, Cost: i}); err != nil {
			return nil, err
		}
		if err := t.AddLink(Link{A: name(i), B: name(n - 1), Capacity: capacity, Cost: i}); err != nil {
			return nil, err
		}
	}
	return t, nil
}
