// Package topology models the inter-domain structure of the testbed:
// administrative domains, their peering links, host-to-domain routing,
// and inter-domain path computation. The GARA end-to-end library uses
// it to determine "the relevant BBs" for a source/destination pair;
// bandwidth brokers use it to find their next hop toward a destination
// domain.
package topology

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// Domain describes one administrative domain.
type Domain struct {
	// Name is the domain identifier, e.g. "DomainA".
	Name string
	// BBDN is the distinguished name of the domain's bandwidth broker.
	BBDN identity.DN
	// Prefixes lists the address prefixes (string-prefix matched hosts)
	// that belong to this domain, e.g. "hostA." or "10.1.".
	Prefixes []string
}

// Link is a bidirectional peering between two domains with a physical
// capacity.
type Link struct {
	A, B     string
	Capacity units.Bandwidth
	// Cost is the routing metric; 0 means 1.
	Cost int
}

func (l Link) cost() int {
	if l.Cost <= 0 {
		return 1
	}
	return l.Cost
}

// Topology is the peering graph. It is safe for concurrent use.
type Topology struct {
	mu      sync.RWMutex
	domains map[string]*Domain
	// adj maps domain -> neighbor -> link.
	adj map[string]map[string]Link
	// byBB is the reverse index from a broker DN to its domain name,
	// maintained by AddDomain so DomainOfBB is a map lookup instead of
	// a scan over every domain (it sits on the per-request signalling
	// path, where brokers resolve the authenticated upstream hop).
	byBB map[identity.DN]string
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{
		domains: make(map[string]*Domain),
		adj:     make(map[string]map[string]Link),
		byBB:    make(map[identity.DN]string),
	}
}

// AddDomain registers a domain; re-adding replaces its metadata.
func (t *Topology) AddDomain(d Domain) error {
	if d.Name == "" {
		return fmt.Errorf("topology: empty domain name")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if old := t.domains[d.Name]; old != nil && old.BBDN != "" && t.byBB[old.BBDN] == d.Name {
		delete(t.byBB, old.BBDN)
	}
	dd := d
	t.domains[d.Name] = &dd
	if d.BBDN != "" {
		t.byBB[d.BBDN] = d.Name
	}
	if t.adj[d.Name] == nil {
		t.adj[d.Name] = make(map[string]Link)
	}
	return nil
}

// DomainOfBB resolves a broker DN to the domain it controls.
func (t *Topology) DomainOfBB(dn identity.DN) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	name, ok := t.byBB[dn]
	return name, ok
}

// AddLink connects two registered domains.
func (t *Topology) AddLink(l Link) error {
	if l.A == l.B {
		return fmt.Errorf("topology: self link on %s", l.A)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.domains[l.A] == nil {
		return fmt.Errorf("topology: unknown domain %s", l.A)
	}
	if t.domains[l.B] == nil {
		return fmt.Errorf("topology: unknown domain %s", l.B)
	}
	t.adj[l.A][l.B] = l
	rev := l
	rev.A, rev.B = l.B, l.A
	t.adj[l.B][l.A] = rev
	return nil
}

// Domain returns the metadata for name.
func (t *Topology) Domain(name string) (*Domain, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d, ok := t.domains[name]
	return d, ok
}

// Domains returns all domain names, sorted.
func (t *Topology) Domains() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.domains))
	for name := range t.domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Neighbors returns the sorted neighbor names of a domain.
func (t *Topology) Neighbors(name string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.adj[name]))
	for n := range t.adj[name] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LinkBetween returns the peering link between two domains.
func (t *Topology) LinkBetween(a, b string) (Link, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	l, ok := t.adj[a][b]
	return l, ok
}

// DomainForHost resolves a host identifier to its domain via longest
// prefix match.
func (t *Topology) DomainForHost(host string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	best, bestLen := "", -1
	for name, d := range t.domains {
		for _, p := range d.Prefixes {
			if strings.HasPrefix(host, p) && len(p) > bestLen {
				best, bestLen = name, len(p)
			}
		}
	}
	if bestLen < 0 {
		return "", fmt.Errorf("topology: no domain for host %q", host)
	}
	return best, nil
}

// Path computes the minimum-cost domain path from src to dst (inclusive
// of both endpoints) with Dijkstra over link costs. Ties break toward
// lexicographically smaller neighbor names so paths are deterministic.
func (t *Topology) Path(src, dst string) ([]string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.domains[src] == nil {
		return nil, fmt.Errorf("topology: unknown source domain %s", src)
	}
	if t.domains[dst] == nil {
		return nil, fmt.Errorf("topology: unknown destination domain %s", dst)
	}
	if src == dst {
		return []string{src}, nil
	}
	const inf = int(^uint(0) >> 1)
	dist := make(map[string]int, len(t.domains))
	prev := make(map[string]string, len(t.domains))
	visited := make(map[string]bool, len(t.domains))
	for name := range t.domains {
		dist[name] = inf
	}
	dist[src] = 0
	for {
		// Extract the unvisited node with minimal distance,
		// lexicographic tiebreak.
		cur, best := "", inf
		for name, d := range dist {
			if visited[name] || d > best {
				continue
			}
			if d < best || (d == best && (cur == "" || name < cur)) {
				cur, best = name, d
			}
		}
		if cur == "" || best == inf {
			return nil, fmt.Errorf("topology: no path from %s to %s", src, dst)
		}
		if cur == dst {
			break
		}
		visited[cur] = true
		// Deterministic neighbor order.
		neigh := make([]string, 0, len(t.adj[cur]))
		for n := range t.adj[cur] {
			neigh = append(neigh, n)
		}
		sort.Strings(neigh)
		for _, n := range neigh {
			if visited[n] {
				continue
			}
			l := t.adj[cur][n]
			if nd := dist[cur] + l.cost(); nd < dist[n] {
				dist[n] = nd
				prev[n] = cur
			}
		}
	}
	// Reconstruct.
	var rev []string
	for cur := dst; cur != ""; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil, fmt.Errorf("topology: no path from %s to %s", src, dst)
	}
	path := make([]string, len(rev))
	for i, d := range rev {
		path[len(rev)-1-i] = d
	}
	return path, nil
}

// NextHop returns the neighbor of cur on the computed path toward dst.
func (t *Topology) NextHop(cur, dst string) (string, error) {
	path, err := t.Path(cur, dst)
	if err != nil {
		return "", err
	}
	if len(path) < 2 {
		return "", fmt.Errorf("topology: %s is the destination", cur)
	}
	return path[1], nil
}

// Linear builds the canonical N-domain chain topology of the paper's
// figures: Domain0 - Domain1 - ... - Domain{n-1}, each with a BB DN
// "/O=Grid/OU=Domain<i>/CN=bb-<i>" and host prefix "host<i>.".
// Names may be overridden by passing explicit labels.
func Linear(n int, capacity units.Bandwidth, labels ...string) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least one domain")
	}
	if len(labels) != 0 && len(labels) != n {
		return nil, fmt.Errorf("topology: got %d labels for %d domains", len(labels), n)
	}
	t := New()
	name := func(i int) string {
		if len(labels) == n {
			return labels[i]
		}
		return fmt.Sprintf("Domain%d", i)
	}
	for i := 0; i < n; i++ {
		d := Domain{
			Name:     name(i),
			BBDN:     identity.NewDN("Grid", name(i), fmt.Sprintf("bb-%d", i)),
			Prefixes: []string{fmt.Sprintf("host%d.", i), strings.ToLower(name(i)) + "."},
		}
		if err := t.AddDomain(d); err != nil {
			return nil, err
		}
	}
	for i := 1; i < n; i++ {
		if err := t.AddLink(Link{A: name(i - 1), B: name(i), Capacity: capacity}); err != nil {
			return nil, err
		}
	}
	return t, nil
}
