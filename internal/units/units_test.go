package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		in   Bandwidth
		want string
	}{
		{10 * Mbps, "10Mb/s"},
		{1 * Gbps, "1Gb/s"},
		{500 * Kbps, "500Kb/s"},
		{999, "999b/s"},
		{1500 * Kbps, "1500Kb/s"},
		{2500000, "2500Kb/s"},
		{Bandwidth(1234567), "1.23Mb/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bandwidth(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want Bandwidth
	}{
		{"10Mb/s", 10 * Mbps},
		{"10mbps", 10 * Mbps},
		{"1.5Gb/s", 1500 * Mbps},
		{"500Kb/s", 500 * Kbps},
		{"250000", 250000},
		{" 42 m ", 42 * Mbps},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if err != nil {
			t.Fatalf("ParseBandwidth(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseBandwidth(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBandwidthErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "-5Mb/s", "Mb/s", "10XB/s"} {
		if _, err := ParseBandwidth(in); err == nil {
			t.Errorf("ParseBandwidth(%q): expected error", in)
		}
	}
}

func TestParseBandwidthRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		b := Bandwidth(n)
		got, err := ParseBandwidth(b.String())
		if err != nil {
			return false
		}
		// Fractional renderings lose at most 0.5% precision.
		diff := int64(got) - int64(b)
		if diff < 0 {
			diff = -diff
		}
		return diff*200 <= int64(b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesIn(t *testing.T) {
	if got := (8 * Mbps).BytesIn(time.Second); got != 1_000_000 {
		t.Errorf("8Mb/s over 1s = %d bytes, want 1000000", got)
	}
	if got := (10 * Mbps).BytesIn(500 * time.Millisecond); got != 625_000 {
		t.Errorf("10Mb/s over 0.5s = %d bytes, want 625000", got)
	}
}

func TestTimeToSend(t *testing.T) {
	d := (8 * Mbps).TimeToSend(1_000_000)
	if d != time.Second {
		t.Errorf("TimeToSend = %v, want 1s", d)
	}
	if d := Bandwidth(0).TimeToSend(1); d <= 0 {
		t.Errorf("zero bandwidth should yield maximal duration, got %v", d)
	}
}

func TestWindowBasics(t *testing.T) {
	t0 := time.Date(2001, 8, 1, 9, 0, 0, 0, time.UTC)
	w := NewWindow(t0, time.Hour)
	if !w.Valid() {
		t.Fatal("window should be valid")
	}
	if w.Duration() != time.Hour {
		t.Errorf("Duration = %v", w.Duration())
	}
	if !w.Contains(t0) {
		t.Error("window must contain its start")
	}
	if w.Contains(w.End) {
		t.Error("window must not contain its end (half-open)")
	}
	if w.Contains(t0.Add(-time.Nanosecond)) {
		t.Error("window must not contain times before start")
	}
}

func TestWindowOverlapIntersect(t *testing.T) {
	t0 := time.Date(2001, 8, 1, 9, 0, 0, 0, time.UTC)
	a := NewWindow(t0, time.Hour)
	b := NewWindow(t0.Add(30*time.Minute), time.Hour)
	c := NewWindow(t0.Add(time.Hour), time.Hour)

	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b must overlap")
	}
	if a.Overlaps(c) {
		t.Error("adjacent half-open windows must not overlap")
	}
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("a∩b should exist")
	}
	want := Window{Start: t0.Add(30 * time.Minute), End: t0.Add(time.Hour)}
	if !got.Start.Equal(want.Start) || !got.End.Equal(want.End) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("a∩c should not exist")
	}
}

func TestWindowIntersectProperty(t *testing.T) {
	base := time.Date(2001, 8, 1, 0, 0, 0, 0, time.UTC)
	f := func(s1, d1, s2, d2 uint16) bool {
		a := NewWindow(base.Add(time.Duration(s1)*time.Second), time.Duration(d1+1)*time.Second)
		b := NewWindow(base.Add(time.Duration(s2)*time.Second), time.Duration(d2+1)*time.Second)
		i, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			return false
		}
		if ok {
			// Intersection must lie within both windows.
			return !i.Start.Before(a.Start) && !i.Start.Before(b.Start) &&
				!i.End.After(a.End) && !i.End.After(b.End) && i.Valid()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{512, "512B"},
		{1500, "1.50KB"},
		{3 * MB, "3.00MB"},
		{2 * GB, "2.00GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}
