// Package units defines the quantity types shared across the QoS
// architecture: bandwidth, data sizes, and helpers for working with
// reservation time windows.
//
// Bandwidth is stored in bits per second as an int64, mirroring how the
// paper's service level specifications express traffic profiles (e.g.
// "10 Mb/s of guaranteed bandwidth").
package units

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Bandwidth is a data rate in bits per second.
type Bandwidth int64

// Common bandwidth units.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1000 * BitPerSecond
	Mbps                   = 1000 * Kbps
	Gbps                   = 1000 * Mbps
)

// String renders the bandwidth with the largest unit that divides it
// into a value >= 1, e.g. "10Mb/s".
func (b Bandwidth) String() string {
	switch {
	case b >= Gbps && b%Gbps == 0:
		return fmt.Sprintf("%dGb/s", b/Gbps)
	case b >= Mbps && b%Mbps == 0:
		return fmt.Sprintf("%dMb/s", b/Mbps)
	case b >= Kbps && b%Kbps == 0:
		return fmt.Sprintf("%dKb/s", b/Kbps)
	case b >= Gbps:
		return fmt.Sprintf("%.2fGb/s", float64(b)/float64(Gbps))
	case b >= Mbps:
		return fmt.Sprintf("%.2fMb/s", float64(b)/float64(Mbps))
	case b >= Kbps:
		return fmt.Sprintf("%.2fKb/s", float64(b)/float64(Kbps))
	default:
		return fmt.Sprintf("%db/s", int64(b))
	}
}

// Mbits returns the bandwidth expressed in megabits per second.
func (b Bandwidth) Mbits() float64 { return float64(b) / float64(Mbps) }

// ParseBandwidth parses strings such as "10Mb/s", "1.5Gbps", "500Kb/s",
// "250000" (plain bits per second). Unit matching is case-insensitive and
// accepts the suffixes "b/s", "bps", or no suffix after the magnitude
// letter.
func ParseBandwidth(s string) (Bandwidth, error) {
	orig := s
	s = strings.TrimSpace(strings.ToLower(s))
	s = strings.TrimSuffix(s, "b/s")
	s = strings.TrimSuffix(s, "bps")
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult = int64(Gbps)
		s = strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		mult = int64(Mbps)
		s = strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult = int64(Kbps)
		s = strings.TrimSuffix(s, "k")
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: invalid bandwidth %q", orig)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		if f < 0 {
			return 0, fmt.Errorf("units: negative bandwidth %q", orig)
		}
		return Bandwidth(f * float64(mult)), nil
	}
	return 0, fmt.Errorf("units: invalid bandwidth %q", orig)
}

// BytesIn returns how many bytes a flow at rate b transfers during d.
func (b Bandwidth) BytesIn(d time.Duration) int64 {
	bits := float64(b) * d.Seconds()
	return int64(bits / 8)
}

// TimeToSend returns how long a flow at rate b needs to transfer n bytes.
func (b Bandwidth) TimeToSend(nBytes int64) time.Duration {
	if b <= 0 {
		return time.Duration(1<<63 - 1)
	}
	secs := float64(nBytes*8) / float64(b)
	return time.Duration(secs * float64(time.Second))
}

// ByteSize is a data volume in bytes.
type ByteSize int64

// Common byte sizes.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB
)

// String renders the size with a decimal unit, e.g. "1.50MB".
func (s ByteSize) String() string {
	switch {
	case s >= GB:
		return fmt.Sprintf("%.2fGB", float64(s)/float64(GB))
	case s >= MB:
		return fmt.Sprintf("%.2fMB", float64(s)/float64(MB))
	case s >= KB:
		return fmt.Sprintf("%.2fKB", float64(s)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// Window is a half-open time interval [Start, End) used by advance
// reservations.
type Window struct {
	Start time.Time
	End   time.Time
}

// NewWindow returns the window [start, start+d).
func NewWindow(start time.Time, d time.Duration) Window {
	return Window{Start: start, End: start.Add(d)}
}

// Valid reports whether the window is non-empty and well ordered.
func (w Window) Valid() bool { return w.End.After(w.Start) }

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// Contains reports whether t falls inside the half-open interval.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// Overlaps reports whether two half-open windows intersect.
func (w Window) Overlaps(o Window) bool {
	return w.Start.Before(o.End) && o.Start.Before(w.End)
}

// Intersect returns the overlapping part of the two windows; ok is false
// when they do not intersect.
func (w Window) Intersect(o Window) (Window, bool) {
	start := w.Start
	if o.Start.After(start) {
		start = o.Start
	}
	end := w.End
	if o.End.Before(end) {
		end = o.End
	}
	if !end.After(start) {
		return Window{}, false
	}
	return Window{Start: start, End: end}, true
}

func (w Window) String() string {
	return fmt.Sprintf("[%s, %s)", w.Start.Format(time.RFC3339), w.End.Format(time.RFC3339))
}
