package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Accept and Close used to race on a lazily initialised channel; run
// them concurrently and require Accept to return promptly.
func TestMemoryListenerAcceptCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		n := NewNetwork(0)
		ep := n.NewEndpoint("/CN=x", nil)
		ln, err := ep.Listen("addr")
		if err != nil {
			t.Fatal(err)
		}
		got := make(chan error, 1)
		var start sync.WaitGroup
		start.Add(2)
		go func() {
			start.Done()
			start.Wait()
			_, err := ln.Accept()
			got <- err
		}()
		go func() {
			start.Done()
			start.Wait()
			ln.Close()
		}()
		select {
		case err := <-got:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("Accept returned %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Accept blocked after Close")
		}
	}
}

func TestMemoryListenerCloseDrainsBacklog(t *testing.T) {
	n := NewNetwork(0)
	server := n.NewEndpoint("/CN=s", nil)
	client := n.NewEndpoint("/CN=c", nil)
	ln, err := server.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial("s") // queued, never accepted
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := conn.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dialer Recv still blocked after listener close")
	}
	if err := conn.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after drain returned %v, want ErrClosed", err)
	}
}

func TestMemoryDialAfterCloseRefused(t *testing.T) {
	n := NewNetwork(0)
	server := n.NewEndpoint("/CN=s", nil)
	client := n.NewEndpoint("/CN=c", nil)
	ln, err := server.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	// Grab the listener before Close removes it from the address map,
	// modelling the dial/close race.
	l := ln.(*memListener)
	ln.Close()
	_, s := newMemPair(n, client, server)
	if err := l.enqueue(s); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close returned %v, want ErrClosed", err)
	}
}

// A full backlog must refuse before the handshake latency is paid, and
// both halves of the refused pair must be closed.
func TestMemoryDialFullBacklogRefusesFast(t *testing.T) {
	n := NewNetwork(0)
	server := n.NewEndpoint("/CN=s", nil)
	client := n.NewEndpoint("/CN=c", nil)
	if _, err := server.Listen("s"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := client.Dial("s"); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	n.Latency = 250 * time.Millisecond
	start := time.Now()
	_, err := client.Dial("s")
	if err == nil {
		t.Fatal("dial into full backlog succeeded")
	}
	if elapsed := time.Since(start); elapsed >= n.Latency {
		t.Errorf("refused dial took %v, should not pay the %v handshake latency", elapsed, n.Latency)
	}
}

func TestMemoryDeadline(t *testing.T) {
	n := NewNetwork(0)
	server := n.NewEndpoint("/CN=s", nil)
	client := n.NewEndpoint("/CN=c", nil)
	ln, err := server.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			select {} // never respond
		}
	}()
	conn, err := client.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = conn.Recv()
	if !IsTimeout(err) {
		t.Fatalf("Recv returned %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v", elapsed)
	}

	// Clearing the deadline restores blocking reads.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatalf("Send after deadline clear: %v", err)
	}
}

func TestMemoryDeadlineCoversLatencyWait(t *testing.T) {
	n := NewNetwork(0)
	server := n.NewEndpoint("/CN=s", nil)
	client := n.NewEndpoint("/CN=c", nil)
	ln, err := server.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	release := make(chan struct{})
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		<-release
		_ = c.Send([]byte("pong"))
	}()
	conn, err := client.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Raise the latency after the handshake (synchronised by the
	// release channel): the pong arrives in-channel immediately but
	// its modelled delivery time exceeds the deadline, so Recv must
	// still time out instead of sleeping past it.
	n.Latency = 300 * time.Millisecond
	if err := conn.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	close(release)
	if _, err := conn.Recv(); !IsTimeout(err) {
		t.Fatalf("Recv returned %v, want timeout despite queued message", err)
	}
}

// --- fault injection ------------------------------------------------------

// echoListener accepts one conn and echoes every message.
func echoListener(t *testing.T, n *Network, addr string) {
	t.Helper()
	srv := n.NewEndpoint("/CN=echo", nil)
	ln, err := srv.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					msg, err := conn.Recv()
					if err != nil {
						return
					}
					if err := conn.Send(msg); err != nil {
						return
					}
				}
			}()
		}
	}()
}

func TestFaultySendDropTimesOutAtReader(t *testing.T) {
	n := NewNetwork(0)
	echoListener(t, n, "echo")
	d := NewFaultyDialer(n.NewEndpoint("/CN=c", nil), FaultConfig{SendDropProb: 1})
	conn, err := d.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("lost")); err != nil {
		t.Fatalf("dropped send should appear successful, got %v", err)
	}
	conn.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := conn.Recv(); !IsTimeout(err) {
		t.Fatalf("Recv returned %v, want timeout (request was dropped)", err)
	}
	if got := d.Stats().SendDrops.Load(); got != 1 {
		t.Errorf("SendDrops = %d, want 1", got)
	}
}

func TestFaultyHangHonoursDeadline(t *testing.T) {
	n := NewNetwork(0)
	echoListener(t, n, "echo")
	d := NewFaultyDialer(n.NewEndpoint("/CN=c", nil), FaultConfig{HangProb: 1})
	conn, err := d.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	if err := conn.Send([]byte("x")); !IsTimeout(err) {
		t.Fatalf("hung Send returned %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hang released after %v, want ~deadline", elapsed)
	}
}

func TestFaultyResetClosesConn(t *testing.T) {
	n := NewNetwork(0)
	echoListener(t, n, "echo")
	d := NewFaultyDialer(n.NewEndpoint("/CN=c", nil), FaultConfig{ResetProb: 1})
	conn, err := d.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("x")); err == nil {
		t.Fatal("reset Send succeeded")
	}
	// The underlying conn is closed: further use fails fast.
	if err := conn.Send([]byte("y")); err == nil {
		t.Fatal("send after reset succeeded")
	}
}

func TestFaultyCrashAfterN(t *testing.T) {
	n := NewNetwork(0)
	echoListener(t, n, "echo")
	d := NewFaultyDialer(n.NewEndpoint("/CN=c", nil), FaultConfig{CrashAfter: 4})
	conn, err := d.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // 2 sends + 2 recvs = 4 messages
		if err := conn.Send([]byte("m")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := conn.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if err := conn.Send([]byte("m")); err == nil {
		t.Fatal("send after crash threshold succeeded")
	}
	if got := d.Stats().Crashes.Load(); got == 0 {
		t.Error("crash not recorded")
	}
}

func TestFaultyDialFail(t *testing.T) {
	n := NewNetwork(0)
	echoListener(t, n, "echo")
	d := NewFaultyDialer(n.NewEndpoint("/CN=c", nil), FaultConfig{DialFailProb: 1})
	if _, err := d.Dial("echo"); err == nil {
		t.Fatal("injected dial failure did not fail")
	}
}

func TestFaultyRecvDropSkipsMessage(t *testing.T) {
	n := NewNetwork(0)
	echoListener(t, n, "echo")
	// Deterministic rng: with probability 0.5 and a fixed seed the
	// drop pattern is stable; instead use 1.0 and assert timeout.
	d := NewFaultyDialer(n.NewEndpoint("/CN=c", nil), FaultConfig{RecvDropProb: 1})
	conn, err := d.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("m")); err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := conn.Recv(); !IsTimeout(err) {
		t.Fatalf("Recv returned %v, want timeout (response dropped)", err)
	}
	if got := d.Stats().RecvDrops.Load(); got == 0 {
		t.Error("RecvDrops not recorded")
	}
}
