package transport

import "e2eqos/internal/obs"

// Metrics counts transport-level events: connection attempts, accepted
// connections, and deadline expiries. A nil *Metrics (the default on
// every dialer, listener and network) disables the accounting with no
// other behaviour change, so the obs layer costs nothing when off.
type Metrics struct {
	// Dials counts successful outbound connection establishments.
	Dials *obs.Counter
	// DialFailures counts failed dial attempts (refused, unreachable,
	// handshake failure or handshake timeout).
	DialFailures *obs.Counter
	// Accepts counts authenticated inbound connections.
	Accepts *obs.Counter
	// Timeouts counts Send/Recv deadline expiries on established
	// connections.
	Timeouts *obs.Counter
}

// NewMetrics registers the transport counters on r (nil registry →
// nil metrics, everything disabled).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Dials:        r.Counter("transport_dials_total", "successful outbound connection establishments"),
		DialFailures: r.Counter("transport_dial_failures_total", "failed outbound dial attempts"),
		Accepts:      r.Counter("transport_accepts_total", "authenticated inbound connections accepted"),
		Timeouts:     r.Counter("transport_timeouts_total", "send/recv deadline expiries on established connections"),
	}
}

func (m *Metrics) dial() {
	if m != nil {
		m.Dials.Inc()
	}
}

func (m *Metrics) dialFailure() {
	if m != nil {
		m.DialFailures.Inc()
	}
}

func (m *Metrics) accept() {
	if m != nil {
		m.Accepts.Inc()
	}
}

func (m *Metrics) timeout() {
	if m != nil {
		m.Timeouts.Inc()
	}
}
