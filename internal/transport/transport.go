// Package transport provides the mutually authenticated, message
// oriented channels the signalling protocol runs over. Two
// implementations exist:
//
//   - Memory: an in-process network with configurable per-hop latency
//     and global message accounting, used by the experiments so that
//     latency and message-count series are deterministic.
//   - TLS: real crypto/tls over TCP with mandatory client
//     certificates, used by the daemons (cmd/bbd etc.); this is the
//     "SSLv3/TLS" channel of §6.4.
//
// Both expose the peer's authenticated identity (DN and certificate),
// which the signalling layer relies on: "Because RAR_U was received
// through a mutually authenticated channel, we assume that the BB in
// domain A has access to the user's certificate."
package transport

import (
	"errors"
	"net"
	"time"

	"e2eqos/internal/identity"
)

// ErrTimeout is returned by Send/Recv when the connection deadline
// passes before the operation completes. TLS connections surface the
// underlying net.Error instead; use IsTimeout to match both.
var ErrTimeout = errors.New("transport: deadline exceeded")

// IsTimeout reports whether err is a deadline expiry from either
// transport implementation.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Conn is a message-oriented, mutually authenticated channel.
type Conn interface {
	// Send transmits one message.
	Send(msg []byte) error
	// Recv blocks for the next message.
	Recv() ([]byte, error)
	// SetDeadline bounds subsequent Send and Recv calls: an operation
	// that would block past t fails with a timeout error (IsTimeout).
	// The zero time clears the deadline.
	SetDeadline(t time.Time) error
	// SetSendDeadline bounds subsequent Send calls only, leaving Recv
	// unaffected. The multiplexed signalling client depends on this
	// split: its demux goroutine blocks in Recv indefinitely while
	// callers bound their own sends, so a send deadline must never
	// make a concurrent Recv expire. The zero time clears it.
	SetSendDeadline(t time.Time) error
	// PeerDN is the authenticated identity of the remote side.
	PeerDN() identity.DN
	// PeerCertDER is the remote identity certificate (nil if the
	// transport has none, which never happens for TLS).
	PeerCertDER() []byte
	// Close tears the channel down.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the listen address in the transport's namespace.
	Addr() string
}

// Dialer opens outbound connections.
type Dialer interface {
	Dial(addr string) (Conn, error)
}
