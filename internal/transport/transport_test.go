package transport

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

func TestMemoryDialRecvSend(t *testing.T) {
	n := NewNetwork(0)
	server := n.NewEndpoint("/CN=bb-a", []byte("cert-a"))
	client := n.NewEndpoint("/CN=alice", []byte("cert-alice"))
	ln, err := server.Listen("bb-a")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if conn.PeerDN() != "/CN=alice" {
			t.Errorf("server sees peer %s", conn.PeerDN())
		}
		if !bytes.Equal(conn.PeerCertDER(), []byte("cert-alice")) {
			t.Error("server got wrong peer cert")
		}
		msg, err := conn.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.Send(append([]byte("echo:"), msg...)); err != nil {
			t.Error(err)
		}
	}()

	conn, err := client.Dial("bb-a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.PeerDN() != "/CN=bb-a" {
		t.Errorf("client sees peer %s", conn.PeerDN())
	}
	if err := conn.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hello" {
		t.Errorf("reply = %q", reply)
	}
	wg.Wait()
}

func TestMemoryDialUnknownAddr(t *testing.T) {
	n := NewNetwork(0)
	ep := n.NewEndpoint("/CN=x", nil)
	if _, err := ep.Dial("nowhere"); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
}

func TestMemoryDuplicateListen(t *testing.T) {
	n := NewNetwork(0)
	ep := n.NewEndpoint("/CN=x", nil)
	if _, err := ep.Listen("addr"); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Listen("addr"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestMemoryListenerCloseReleasesAddr(t *testing.T) {
	n := NewNetwork(0)
	ep := n.NewEndpoint("/CN=x", nil)
	ln, err := ep.Listen("addr")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Listen("addr"); err != nil {
		t.Fatalf("address not released: %v", err)
	}
}

func TestMemoryLatencyApplied(t *testing.T) {
	n := NewNetwork(5 * time.Millisecond)
	server := n.NewEndpoint("/CN=s", nil)
	client := n.NewEndpoint("/CN=c", nil)
	ln, err := server.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		_ = conn.Send(msg)
	}()
	start := time.Now()
	conn, err := client.Dial("s") // 1 latency
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // + 2 latencies round trip
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Errorf("elapsed = %v, want >= 15ms (dial + rtt at 5ms one-way)", elapsed)
	}
}

func TestMemoryAccounting(t *testing.T) {
	n := NewNetwork(0)
	server := n.NewEndpoint("/CN=s", nil)
	client := n.NewEndpoint("/CN=c", nil)
	ln, err := server.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for i := 0; i < 3; i++ {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	}()
	conn, err := client.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := conn.Send([]byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if n.Messages() != 3 || n.Bytes() != 12 || n.Dials() != 1 {
		t.Errorf("msgs=%d bytes=%d dials=%d, want 3/12/1", n.Messages(), n.Bytes(), n.Dials())
	}
	n.ResetCounters()
	if n.Messages() != 0 || n.Bytes() != 0 || n.Dials() != 0 {
		t.Error("counters not reset")
	}
}

func TestMemorySendAfterClose(t *testing.T) {
	n := NewNetwork(0)
	server := n.NewEndpoint("/CN=s", nil)
	client := n.NewEndpoint("/CN=c", nil)
	ln, err := server.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	conn, err := client.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := conn.Send([]byte("x")); err == nil {
		t.Fatal("send after close succeeded")
	}
}

// --- TLS ------------------------------------------------------------------

// tlsFixture builds a CA, broker identities and a live listener.
func tlsFixture(t *testing.T) (serverCfg, clientCfg *TLSConfig, caDER []byte) {
	t.Helper()
	ca, err := pki.NewCA(identity.NewDN("Grid", "", "RootCA"))
	if err != nil {
		t.Fatal(err)
	}
	srvKey, err := identity.GenerateKeyPair(identity.NewDN("Grid", "DomainA", "bb-a"))
	if err != nil {
		t.Fatal(err)
	}
	srvCert, err := ca.IssueIdentity(srvKey.DN, srvKey.Public(), 0, "bb")
	if err != nil {
		t.Fatal(err)
	}
	cliKey, err := identity.GenerateKeyPair(identity.NewDN("Grid", "DomainB", "bb-b"))
	if err != nil {
		t.Fatal(err)
	}
	cliCert, err := ca.IssueIdentity(cliKey.DN, cliKey.Public(), 0, "bb")
	if err != nil {
		t.Fatal(err)
	}
	return NewTLSConfig(srvCert, srvKey, ca.CertificateDER()),
		NewTLSConfig(cliCert, cliKey, ca.CertificateDER()),
		ca.CertificateDER()
}

func TestTLSMutualAuthRoundTrip(t *testing.T) {
	serverCfg, clientCfg, _ := tlsFixture(t)
	ln, err := ListenTLS("127.0.0.1:0", serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		dn  identity.DN
		err error
	}
	got := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- result{err: err}
			return
		}
		defer conn.Close()
		msg, err := conn.Recv()
		if err != nil {
			got <- result{err: err}
			return
		}
		if err := conn.Send(msg); err != nil {
			got <- result{err: err}
			return
		}
		got <- result{dn: conn.PeerDN()}
	}()

	dialer := NewTLSDialer(clientCfg)
	conn, err := dialer.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.PeerDN() != identity.NewDN("Grid", "DomainA", "bb-a") {
		t.Errorf("client sees server DN %s", conn.PeerDN())
	}
	if len(conn.PeerCertDER()) == 0 {
		t.Error("no peer certificate captured")
	}
	payload := bytes.Repeat([]byte("x"), 10_000)
	if err := conn.Send(payload); err != nil {
		t.Fatal(err)
	}
	echo, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, payload) {
		t.Error("echo mismatch")
	}
	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.dn != identity.NewDN("Grid", "DomainB", "bb-b") {
		t.Errorf("server sees client DN %s", r.dn)
	}
}

func TestTLSRejectsUntrustedClient(t *testing.T) {
	serverCfg, _, caDER := tlsFixture(t)
	ln, err := ListenTLS("127.0.0.1:0", serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	// A client with a certificate from a different CA must be refused.
	rogueCA, err := pki.NewCA(identity.NewDN("Evil", "", "CA"))
	if err != nil {
		t.Fatal(err)
	}
	key, err := identity.GenerateKeyPair(identity.NewDN("Evil", "", "mallory"))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := rogueCA.IssueIdentity(key.DN, key.Public(), 0, "bb")
	if err != nil {
		t.Fatal(err)
	}
	rogue := NewTLSDialer(&TLSConfig{CertDER: cert.DER, Key: key.Private, RootDERs: [][]byte{caDER}})
	conn, err := rogue.Dial(ln.Addr())
	if err == nil {
		// Client-auth failure may only surface on first use.
		err = conn.Send([]byte("hi"))
		if err == nil {
			_, err = conn.Recv()
		}
		conn.Close()
	}
	if err == nil {
		t.Fatal("untrusted client was accepted")
	}
}

func TestTLSFrameLimit(t *testing.T) {
	serverCfg, clientCfg, _ := tlsFixture(t)
	ln, err := ListenTLS("127.0.0.1:0", serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			_, _ = conn.Recv()
		}
	}()
	conn, err := NewTLSDialer(clientCfg).Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
