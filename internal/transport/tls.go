package transport

import (
	"crypto/ecdsa"
	"crypto/tls"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

// maxFrame bounds a single message on the wire (16 MB).
const maxFrame = 16 << 20

// TLSConfig bundles the material an entity needs for mutually
// authenticated TLS: its certificate, its private key, and the CA pool
// it accepts peers from (the SLA's "certificate of the issuing
// certificate authority").
type TLSConfig struct {
	CertDER []byte
	Key     *ecdsa.PrivateKey
	// RootDERs are the trusted CA certificates.
	RootDERs [][]byte
}

// NewTLSConfig assembles a config from pki artifacts.
func NewTLSConfig(cert *pki.Certificate, key *identity.KeyPair, roots ...[]byte) *TLSConfig {
	return &TLSConfig{CertDER: cert.DER, Key: key.Private, RootDERs: roots}
}

func (c *TLSConfig) build(server bool) (*tls.Config, error) {
	pool := x509.NewCertPool()
	for _, der := range c.RootDERs {
		cert, err := x509.ParseCertificate(der)
		if err != nil {
			return nil, fmt.Errorf("transport: parse root: %w", err)
		}
		pool.AddCert(cert)
	}
	tlsCert := tls.Certificate{Certificate: [][]byte{c.CertDER}, PrivateKey: c.Key}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{tlsCert},
		MinVersion:   tls.VersionTLS12,
	}
	if server {
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
		cfg.ClientCAs = pool
	} else {
		cfg.RootCAs = pool
		// Peer brokers are addressed by DN, not hostname; identity is
		// established via the CA-verified certificate chain and checked
		// against the SLA-pinned DN at the signalling layer.
		cfg.InsecureSkipVerify = false
		cfg.ServerName = "bb" // all broker certs carry the "bb" SAN
	}
	return cfg, nil
}

// tlsConn frames messages over a TLS stream.
type tlsConn struct {
	conn     *tls.Conn
	peerDN   identity.DN
	peerCert []byte
	metrics  *Metrics
	sendMu   sync.Mutex
	recvMu   sync.Mutex
}

func newTLSConn(conn *tls.Conn, metrics *Metrics) (*tlsConn, error) {
	if err := conn.Handshake(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: TLS handshake: %w", err)
	}
	state := conn.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		conn.Close()
		return nil, fmt.Errorf("transport: peer presented no certificate")
	}
	leaf := state.PeerCertificates[0]
	return &tlsConn{
		conn:     conn,
		peerDN:   pki.NameToDN(leaf.Subject),
		peerCert: leaf.Raw,
		metrics:  metrics,
	}, nil
}

func (c *tlsConn) Send(msg []byte) error {
	if len(msg) > maxFrame {
		return fmt.Errorf("transport: message of %d bytes exceeds frame limit", len(msg))
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := c.conn.Write(hdr[:]); err != nil {
		if IsTimeout(err) {
			c.metrics.timeout()
		}
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := c.conn.Write(msg); err != nil {
		if IsTimeout(err) {
			c.metrics.timeout()
		}
		return fmt.Errorf("transport: write body: %w", err)
	}
	return nil
}

func (c *tlsConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		if IsTimeout(err) {
			c.metrics.timeout()
		}
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: inbound frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.conn, buf); err != nil {
		if IsTimeout(err) {
			c.metrics.timeout()
		}
		return nil, fmt.Errorf("transport: read body: %w", err)
	}
	return buf, nil
}

// SetDeadline bounds subsequent Send and Recv calls; expiry surfaces
// as a net.Error with Timeout() == true (matched by IsTimeout).
func (c *tlsConn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// SetSendDeadline bounds writes only, so the mux client's blocked
// reader keeps waiting while a caller bounds its own send.
func (c *tlsConn) SetSendDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

func (c *tlsConn) PeerDN() identity.DN { return c.peerDN }
func (c *tlsConn) PeerCertDER() []byte { return c.peerCert }
func (c *tlsConn) Close() error        { return c.conn.Close() }

// TLSListener wraps a TCP listener with mandatory mutual TLS.
type TLSListener struct {
	ln  net.Listener
	cfg *tls.Config

	// Metrics, when set before serving, counts accepted connections
	// and deadline expiries on them.
	Metrics *Metrics
}

// ListenTLS starts a mutually authenticated listener on addr
// (e.g. "127.0.0.1:0").
func ListenTLS(addr string, cfg *TLSConfig) (*TLSListener, error) {
	tcfg, err := cfg.build(true)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &TLSListener{ln: ln, cfg: tcfg}, nil
}

// Accept waits for and authenticates the next connection.
func (l *TLSListener) Accept() (Conn, error) {
	raw, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	conn, err := newTLSConn(tls.Server(raw, l.cfg), l.Metrics)
	if err != nil {
		return nil, err
	}
	l.Metrics.accept()
	return conn, nil
}

// Close stops the listener.
func (l *TLSListener) Close() error { return l.ln.Close() }

// Addr returns the bound address.
func (l *TLSListener) Addr() string { return l.ln.Addr().String() }

// TLSDialer dials mutually authenticated connections.
type TLSDialer struct {
	cfg *TLSConfig

	// Timeout bounds connection establishment — the TCP connect plus
	// the TLS handshake — when positive; zero waits forever. Without
	// it a peer that accepts TCP but never completes the handshake
	// (half-open host, wedged process) blocks Dial indefinitely,
	// before any per-call deadline can apply.
	Timeout time.Duration

	// Metrics, when set, counts dials, dial failures and deadline
	// expiries on dialed connections.
	Metrics *Metrics
}

// NewTLSDialer creates a dialer using the given identity material.
func NewTLSDialer(cfg *TLSConfig) *TLSDialer { return &TLSDialer{cfg: cfg} }

// Dial connects and authenticates to addr.
func (d *TLSDialer) Dial(addr string) (Conn, error) {
	tcfg, err := d.cfg.build(false)
	if err != nil {
		return nil, err
	}
	nd := net.Dialer{Timeout: d.Timeout}
	raw, err := nd.Dial("tcp", addr)
	if err != nil {
		d.Metrics.dialFailure()
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if d.Timeout > 0 {
		raw.SetDeadline(time.Now().Add(d.Timeout))
	}
	conn, err := newTLSConn(tls.Client(raw, tcfg), d.Metrics)
	if err != nil {
		d.Metrics.dialFailure()
		return nil, err
	}
	if d.Timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	d.Metrics.dial()
	return conn, nil
}
