package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"e2eqos/internal/identity"
)

// ErrClosed is returned by operations on a closed connection or
// listener.
var ErrClosed = errors.New("transport: closed")

// Network is an in-process message network. Endpoints register
// listeners under string addresses; dialing performs an implicit
// mutual-authentication handshake (each side learns the other's DN and
// certificate, standing in for the TLS handshake). Every message is
// delivered after the configured one-way latency, and global counters
// record message and byte volumes for the experiments.
type Network struct {
	// Latency is the one-way delivery delay applied to every message
	// (and to connection establishment, once per dial).
	Latency time.Duration

	// Metrics, when set before use, counts dials, accepts and
	// deadline expiries network-wide (per-domain attribution is done
	// at the broker layer; the network is shared).
	Metrics *Metrics

	mu        sync.Mutex
	listeners map[string]*memListener

	msgs  atomic.Int64
	bytes atomic.Int64
	dials atomic.Int64
}

// NewNetwork creates a network with the given one-way latency.
func NewNetwork(latency time.Duration) *Network {
	return &Network{Latency: latency, listeners: make(map[string]*memListener)}
}

// Messages returns the total messages sent over this network.
func (n *Network) Messages() int64 { return n.msgs.Load() }

// Bytes returns the total payload bytes sent.
func (n *Network) Bytes() int64 { return n.bytes.Load() }

// Dials returns the number of connections established.
func (n *Network) Dials() int64 { return n.dials.Load() }

// ResetCounters zeroes the accounting, between experiment runs.
func (n *Network) ResetCounters() {
	n.msgs.Store(0)
	n.bytes.Store(0)
	n.dials.Store(0)
}

// Endpoint is one named party on the network. The DN and certificate
// are presented to peers during the handshake.
type Endpoint struct {
	net     *Network
	dn      identity.DN
	certDER []byte
}

// NewEndpoint creates an endpoint for dn with an optional certificate.
func (n *Network) NewEndpoint(dn identity.DN, certDER []byte) *Endpoint {
	return &Endpoint{net: n, dn: dn, certDER: certDER}
}

// Listen registers the endpoint under addr.
func (e *Endpoint) Listen(addr string) (Listener, error) {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if _, exists := e.net.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{
		net:     e.net,
		ep:      e,
		addr:    addr,
		backlog: make(chan *memConn, 64),
		closed:  make(chan struct{}),
	}
	e.net.listeners[addr] = l
	return l, nil
}

// Dial connects to addr, waiting one latency for the handshake. A full
// or closed listener refuses before the handshake latency is paid.
func (e *Endpoint) Dial(addr string) (Conn, error) {
	e.net.mu.Lock()
	l, ok := e.net.listeners[addr]
	e.net.mu.Unlock()
	if !ok {
		e.net.Metrics.dialFailure()
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	clientSide, serverSide := newMemPair(e.net, e, l.ep)
	if err := l.enqueue(serverSide); err != nil {
		// Closing one half closes the shared pair state, so the
		// refused server-side conn cannot strand a future Accept.
		clientSide.Close()
		e.net.Metrics.dialFailure()
		return nil, err
	}
	e.net.dials.Add(1)
	e.net.Metrics.dial()
	if e.net.Latency > 0 {
		time.Sleep(e.net.Latency)
	}
	return clientSide, nil
}

type memListener struct {
	net     *Network
	ep      *Endpoint
	addr    string
	backlog chan *memConn

	mu        sync.Mutex // guards shut and the backlog drain on close
	shut      bool
	closed    chan struct{}
	closeOnce sync.Once
}

// enqueue hands a dialed server-side conn to the listener, refusing
// when the listener is closed or the backlog is full.
func (l *memListener) enqueue(c *memConn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.shut {
		return fmt.Errorf("transport: listener at %q closed: %w", l.addr, ErrClosed)
	}
	select {
	case l.backlog <- c:
		return nil
	default:
		return fmt.Errorf("transport: listener at %q backlog full", l.addr)
	}
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		l.net.Metrics.accept()
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.shut = true
		close(l.closed)
		// Refuse queued dials: their server halves were never accepted
		// and would otherwise leave the dialers blocking forever.
	drain:
		for {
			select {
			case c := <-l.backlog:
				c.Close()
			default:
				break drain
			}
		}
		l.mu.Unlock()
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// timedMsg carries the payload plus its delivery deadline.
type timedMsg struct {
	data      []byte
	deliverAt time.Time
}

// pairState is the shared shutdown latch of the two half-connections.
type pairState struct {
	done chan struct{}
	once sync.Once
}

func (p *pairState) close() { p.once.Do(func() { close(p.done) }) }

type memConn struct {
	net      *Network
	peerDN   identity.DN
	peerCert []byte
	out      chan timedMsg
	in       chan timedMsg
	pair     *pairState
	done     chan struct{}

	dlMu         sync.Mutex
	sendDeadline time.Time
	recvDeadline time.Time
}

// newMemPair wires two half-connections together.
func newMemPair(n *Network, client, server *Endpoint) (*memConn, *memConn) {
	aToB := make(chan timedMsg, 256)
	bToA := make(chan timedMsg, 256)
	pair := &pairState{done: make(chan struct{})}
	c := &memConn{net: n, peerDN: server.dn, peerCert: server.certDER, out: aToB, in: bToA, pair: pair, done: pair.done}
	s := &memConn{net: n, peerDN: client.dn, peerCert: client.certDER, out: bToA, in: aToB, pair: pair, done: pair.done}
	return c, s
}

// SetDeadline bounds subsequent Send and Recv calls.
func (c *memConn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.sendDeadline = t
	c.recvDeadline = t
	c.dlMu.Unlock()
	return nil
}

// SetSendDeadline bounds subsequent Send calls only; a concurrent or
// later Recv keeps its own deadline (or none).
func (c *memConn) SetSendDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.sendDeadline = t
	c.dlMu.Unlock()
	return nil
}

// expiry arms a timer for the requested deadline (send or recv). The
// returned channel is nil (never fires) when no deadline is set; stop
// releases the timer and is safe to call either way.
func (c *memConn) expiry(send bool) (<-chan time.Time, func()) {
	c.dlMu.Lock()
	d := c.recvDeadline
	if send {
		d = c.sendDeadline
	}
	c.dlMu.Unlock()
	if d.IsZero() {
		return nil, func() {}
	}
	t := time.NewTimer(time.Until(d))
	return t.C, func() { t.Stop() }
}

func (c *memConn) Send(msg []byte) error {
	// Deterministically refuse once closed; the select below would
	// otherwise pick randomly between the buffered queue and done.
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	timeout, stop := c.expiry(true)
	defer stop()
	cp := make([]byte, len(msg))
	copy(cp, msg)
	tm := timedMsg{data: cp, deliverAt: time.Now().Add(c.net.Latency)}
	select {
	case c.out <- tm:
		c.net.msgs.Add(1)
		c.net.bytes.Add(int64(len(msg)))
		return nil
	case <-c.done:
		return ErrClosed
	case <-timeout:
		c.net.Metrics.timeout()
		return ErrTimeout
	}
}

func (c *memConn) Recv() ([]byte, error) {
	timeout, stop := c.expiry(false)
	defer stop()
	select {
	case m := <-c.in:
		return c.deliver(m, timeout)
	case <-c.done:
		// Drain any already queued message to preserve FIFO semantics
		// on graceful close.
		select {
		case m := <-c.in:
			return c.deliver(m, timeout)
		default:
			return nil, ErrClosed
		}
	case <-timeout:
		c.net.Metrics.timeout()
		return nil, ErrTimeout
	}
}

// deliver waits out the modelled propagation latency of a received
// message, still honouring the read deadline.
func (c *memConn) deliver(m timedMsg, timeout <-chan time.Time) ([]byte, error) {
	if wait := time.Until(m.deliverAt); wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-t.C:
		case <-timeout:
			c.net.Metrics.timeout()
			return nil, ErrTimeout
		}
	}
	return m.data, nil
}

func (c *memConn) PeerDN() identity.DN { return c.peerDN }
func (c *memConn) PeerCertDER() []byte { return c.peerCert }

func (c *memConn) Close() error {
	c.pair.close()
	return nil
}
