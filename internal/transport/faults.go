package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"e2eqos/internal/identity"
)

// FaultConfig parameterises the fault-injecting transport wrapper.
// Probabilities are evaluated independently per operation; zero
// disables the corresponding fault.
type FaultConfig struct {
	// DialFailProb refuses a Dial outright.
	DialFailProb float64
	// SendDropProb silently discards an outbound message: Send reports
	// success but nothing is delivered, so the caller only notices at
	// its read deadline.
	SendDropProb float64
	// RecvDropProb discards an inbound message after delivery; the
	// reader keeps waiting for the next one. This models a lost
	// response to a request that *was* processed downstream.
	RecvDropProb float64
	// DelayProb stalls the operation for Delay before proceeding.
	DelayProb float64
	Delay     time.Duration
	// HangProb blocks the operation until the connection deadline
	// expires or the connection is closed — a hung peer.
	HangProb float64
	// ResetProb closes the connection mid-operation and returns an
	// error, like a TCP RST.
	ResetProb float64
	// CrashAfter, when positive, resets the connection after that many
	// messages (sends + receives) have crossed it, modelling a peer
	// that dies mid-conversation.
	CrashAfter int64
	// Seed makes the fault sequence deterministic (0 behaves as 1).
	Seed int64
}

// FaultStats counts injected faults, for experiment reporting.
type FaultStats struct {
	DialFails atomic.Int64
	SendDrops atomic.Int64
	RecvDrops atomic.Int64
	Delays    atomic.Int64
	Hangs     atomic.Int64
	Resets    atomic.Int64
	Crashes   atomic.Int64
}

// Total sums all injected faults.
func (s *FaultStats) Total() int64 {
	return s.DialFails.Load() + s.SendDrops.Load() + s.RecvDrops.Load() +
		s.Delays.Load() + s.Hangs.Load() + s.Resets.Load() + s.Crashes.Load()
}

// FaultyDialer wraps a Dialer, injecting configurable faults into the
// connections it opens. Used by the robustness tests and the
// `-exp faults` experiment to subject the signalling chain to per-hop
// failure; the wrapped connections still authenticate normally.
type FaultyDialer struct {
	inner Dialer
	cfg   FaultConfig
	stats FaultStats

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultyDialer wraps inner with the given fault profile.
func NewFaultyDialer(inner Dialer, cfg FaultConfig) *FaultyDialer {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultyDialer{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats exposes the injected-fault counters.
func (d *FaultyDialer) Stats() *FaultStats { return &d.stats }

func (d *FaultyDialer) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rng.Float64() < p
}

// Dial opens a fault-wrapped connection.
func (d *FaultyDialer) Dial(addr string) (Conn, error) {
	if d.roll(d.cfg.DialFailProb) {
		d.stats.DialFails.Add(1)
		return nil, fmt.Errorf("transport: injected dial failure to %q", addr)
	}
	c, err := d.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &faultyConn{inner: c, d: d, closed: make(chan struct{})}, nil
}

// faultyConn injects faults around an underlying Conn. It tracks the
// deadlines itself so an injected hang still honours SetDeadline /
// SetSendDeadline.
type faultyConn struct {
	inner Conn
	d     *FaultyDialer
	msgs  atomic.Int64

	dlMu         sync.Mutex
	sendDeadline time.Time
	recvDeadline time.Time

	once   sync.Once
	closed chan struct{}
}

func (c *faultyConn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.sendDeadline = t
	c.recvDeadline = t
	c.dlMu.Unlock()
	return c.inner.SetDeadline(t)
}

func (c *faultyConn) SetSendDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.sendDeadline = t
	c.dlMu.Unlock()
	return c.inner.SetSendDeadline(t)
}

// hang blocks until the relevant deadline passes or the connection
// closes.
func (c *faultyConn) hang(send bool) error {
	c.d.stats.Hangs.Add(1)
	c.dlMu.Lock()
	d := c.recvDeadline
	if send {
		d = c.sendDeadline
	}
	c.dlMu.Unlock()
	var timeout <-chan time.Time
	if !d.IsZero() {
		t := time.NewTimer(time.Until(d))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-timeout:
		return ErrTimeout
	case <-c.closed:
		return ErrClosed
	}
}

// crashed trips the crash-after-N counter.
func (c *faultyConn) crashed() bool {
	n := c.d.cfg.CrashAfter
	return n > 0 && c.msgs.Add(1) > n
}

func (c *faultyConn) Send(msg []byte) error {
	if c.crashed() {
		c.d.stats.Crashes.Add(1)
		c.Close()
		return fmt.Errorf("transport: injected crash after %d messages", c.d.cfg.CrashAfter)
	}
	switch {
	case c.d.roll(c.d.cfg.ResetProb):
		c.d.stats.Resets.Add(1)
		c.Close()
		return fmt.Errorf("transport: injected connection reset")
	case c.d.roll(c.d.cfg.HangProb):
		return c.hang(true)
	case c.d.roll(c.d.cfg.SendDropProb):
		c.d.stats.SendDrops.Add(1)
		return nil
	case c.d.roll(c.d.cfg.DelayProb):
		c.d.stats.Delays.Add(1)
		time.Sleep(c.d.cfg.Delay)
	}
	return c.inner.Send(msg)
}

func (c *faultyConn) Recv() ([]byte, error) {
	for {
		if c.crashed() {
			c.d.stats.Crashes.Add(1)
			c.Close()
			return nil, fmt.Errorf("transport: injected crash after %d messages", c.d.cfg.CrashAfter)
		}
		switch {
		case c.d.roll(c.d.cfg.ResetProb):
			c.d.stats.Resets.Add(1)
			c.Close()
			return nil, fmt.Errorf("transport: injected connection reset")
		case c.d.roll(c.d.cfg.HangProb):
			return nil, c.hang(false)
		case c.d.roll(c.d.cfg.DelayProb):
			c.d.stats.Delays.Add(1)
			time.Sleep(c.d.cfg.Delay)
		}
		msg, err := c.inner.Recv()
		if err != nil {
			return nil, err
		}
		if c.d.roll(c.d.cfg.RecvDropProb) {
			c.d.stats.RecvDrops.Add(1)
			continue
		}
		return msg, nil
	}
}

func (c *faultyConn) PeerDN() identity.DN { return c.inner.PeerDN() }
func (c *faultyConn) PeerCertDER() []byte { return c.inner.PeerCertDER() }

func (c *faultyConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.inner.Close()
}
