package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"e2eqos/internal/wire"
)

// Record is one typed journal entry. Op names the mutation (the owning
// layer defines the vocabulary: "resv.admit", "bb.rar", ...) and Data
// carries its payload verbatim. Records must be absolute — they state
// the resulting value, not a delta — so that replaying a record on top
// of a snapshot that already reflects it is a no-op.
//
// Two payload encodings coexist behind the same CRC framing. The hot
// path writes binary records (recMagic-prefixed, decoded through the
// BinaryDecoder interface); JSON records remain both the fallback for
// payload types without a binary codec and the format of journals
// written before the binary codec existed, so old state directories
// recover unchanged.
type Record struct {
	Op   string          `json:"op"`
	Data json.RawMessage `json:"data,omitempty"`

	// bin marks a binary-encoded payload (Data holds the type's
	// AppendBinary bytes, not JSON).
	bin bool
}

// IsBinary reports whether the payload uses the binary encoding.
func (r Record) IsBinary() bool { return r.bin }

// BinaryRecord is implemented by payload types that encode themselves
// with the wire package; Append uses it to journal without reflection
// or intermediate buffers.
type BinaryRecord interface {
	AppendBinary(buf []byte) []byte
}

// BinaryDecoder is the decode half: Record.Decode dispatches to it for
// binary records, so replay call sites stay encoding-agnostic.
type BinaryDecoder interface {
	DecodeBinary(data []byte) error
}

// RawBinary is a pre-encoded binary payload appended verbatim —
// re-framing a decoded record (tests, journal rewriting) without
// knowing its concrete type.
type RawBinary []byte

// AppendBinary writes the raw bytes through.
func (r RawBinary) AppendBinary(buf []byte) []byte { return append(buf, r...) }

// Framing: every record is length-prefixed and checksummed so recovery
// can tell a torn tail from good data without trusting file size.
//
//	uint32 LE  payload length n (1 .. MaxRecordSize)
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	n bytes    payload — binary (recMagic ...) or a JSON Record
//
// Binary payload layout:
//
//	byte 0   recMagic (0xB1; JSON payloads start with '{')
//	byte 1   recVersion
//	bytes    uvarint op length, op
//	bytes    payload data (the op type's AppendBinary encoding),
//	         running to the end of the frame
const headerSize = 8

const (
	recMagic   = 0xB1
	recVersion = 1
)

// MaxRecordSize bounds one record's payload. A length field above it
// is treated as corruption, which stops a garbage frame from making
// the decoder attempt a multi-gigabyte read.
const MaxRecordSize = 1 << 24

// Decode errors. Both end a replay; ErrTruncated is the expected shape
// of a torn final write, ErrCorrupt means the frame is complete but
// lies (bad length, checksum or payload).
var (
	ErrTruncated = errors.New("journal: truncated record")
	ErrCorrupt   = errors.New("journal: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord frames op+data onto buf. Payload types implementing
// BinaryRecord (and nil payloads) encode binary straight into buf —
// the journal's zero-allocation append path; anything else marshals as
// JSON. On error buf is returned with its original length, never with
// a partial frame.
func AppendRecord(buf []byte, op string, data any) ([]byte, error) {
	if op == "" {
		return buf, fmt.Errorf("journal: record without op")
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header, patched below
	switch v := data.(type) {
	case BinaryRecord:
		buf = appendBinHeader(buf, op)
		buf = v.AppendBinary(buf)
	case nil:
		buf = appendBinHeader(buf, op)
	default:
		raw, err := json.Marshal(data)
		if err != nil {
			return buf[:start], fmt.Errorf("journal: encoding %s payload: %w", op, err)
		}
		payload, err := json.Marshal(Record{Op: op, Data: raw})
		if err != nil {
			return buf[:start], fmt.Errorf("journal: encoding %s record: %w", op, err)
		}
		buf = append(buf, payload...)
	}
	n := len(buf) - start - headerSize
	if n > MaxRecordSize {
		return buf[:start], fmt.Errorf("journal: %s record is %d bytes, above the %d limit", op, n, MaxRecordSize)
	}
	payload := buf[start+headerSize:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(n))
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.Checksum(payload, crcTable))
	return buf, nil
}

func appendBinHeader(buf []byte, op string) []byte {
	buf = append(buf, recMagic, recVersion)
	buf = wire.AppendUvarint(buf, uint64(len(op)))
	return append(buf, op...)
}

// EncodeRecord frames op+data into a fresh append-ready buffer.
func EncodeRecord(op string, data any) ([]byte, error) {
	return AppendRecord(nil, op, data)
}

// DecodeRecord parses one framed record from the front of buf,
// returning the record and the number of bytes consumed. io.EOF means
// buf is empty (clean end); ErrTruncated means buf ends mid-frame;
// ErrCorrupt means the frame is malformed. DecodeRecord never reads
// past len(buf) and never panics on arbitrary input.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) == 0 {
		return Record{}, 0, io.EOF
	}
	if len(buf) < headerSize {
		return Record{}, 0, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n == 0 || n > MaxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	if uint64(len(buf)) < headerSize+uint64(n) {
		return Record{}, 0, ErrTruncated
	}
	payload := buf[headerSize : headerSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if payload[0] == recMagic {
		if len(payload) < 2 || payload[1] != recVersion {
			return Record{}, 0, fmt.Errorf("%w: unsupported record version", ErrCorrupt)
		}
		d := wire.Dec{Buf: payload[2:]}
		op := d.String()
		data := d.Rest()
		if d.Err() != nil || op == "" {
			return Record{}, 0, fmt.Errorf("%w: bad binary record header", ErrCorrupt)
		}
		return Record{Op: op, Data: data, bin: true}, headerSize + int(n), nil
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if rec.Op == "" {
		return Record{}, 0, fmt.Errorf("%w: record without op", ErrCorrupt)
	}
	return rec, headerSize + int(n), nil
}

// Decode unmarshals a record's payload into out, dispatching on the
// record's encoding: binary payloads require out to implement
// BinaryDecoder, JSON payloads unmarshal reflectively. Replay loops
// pass the same typed pointers either way.
func (r Record) Decode(out any) error {
	if r.bin {
		bd, ok := out.(BinaryDecoder)
		if !ok {
			return fmt.Errorf("journal: decoding %s payload: %T has no binary decoder", r.Op, out)
		}
		if err := bd.DecodeBinary(r.Data); err != nil {
			return fmt.Errorf("journal: decoding %s payload: %w", r.Op, err)
		}
		return nil
	}
	if err := json.Unmarshal(r.Data, out); err != nil {
		return fmt.Errorf("journal: decoding %s payload: %w", r.Op, err)
	}
	return nil
}
