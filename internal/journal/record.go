package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record is one typed journal entry. Op names the mutation (the owning
// layer defines the vocabulary: "resv.admit", "bb.rar", ...) and Data
// carries its payload verbatim. Records must be absolute — they state
// the resulting value, not a delta — so that replaying a record on top
// of a snapshot that already reflects it is a no-op.
type Record struct {
	Op   string          `json:"op"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Framing: every record is length-prefixed and checksummed so recovery
// can tell a torn tail from good data without trusting file size.
//
//	uint32 LE  payload length n (1 .. MaxRecordSize)
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	n bytes    JSON-encoded Record
const headerSize = 8

// MaxRecordSize bounds one record's payload. A length field above it
// is treated as corruption, which stops a garbage frame from making
// the decoder attempt a multi-gigabyte read.
const MaxRecordSize = 1 << 24

// Decode errors. Both end a replay; ErrTruncated is the expected shape
// of a torn final write, ErrCorrupt means the frame is complete but
// lies (bad length, checksum or payload).
var (
	ErrTruncated = errors.New("journal: truncated record")
	ErrCorrupt   = errors.New("journal: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord frames op+data (data is JSON-marshalled) into the
// append-ready wire form.
func EncodeRecord(op string, data any) ([]byte, error) {
	if op == "" {
		return nil, fmt.Errorf("journal: record without op")
	}
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return nil, fmt.Errorf("journal: encoding %s payload: %w", op, err)
		}
		raw = b
	}
	payload, err := json.Marshal(Record{Op: op, Data: raw})
	if err != nil {
		return nil, fmt.Errorf("journal: encoding %s record: %w", op, err)
	}
	if len(payload) > MaxRecordSize {
		return nil, fmt.Errorf("journal: %s record is %d bytes, above the %d limit", op, len(payload), MaxRecordSize)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[headerSize:], payload)
	return frame, nil
}

// DecodeRecord parses one framed record from the front of buf,
// returning the record and the number of bytes consumed. io.EOF means
// buf is empty (clean end); ErrTruncated means buf ends mid-frame;
// ErrCorrupt means the frame is malformed. DecodeRecord never reads
// past len(buf) and never panics on arbitrary input.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) == 0 {
		return Record{}, 0, io.EOF
	}
	if len(buf) < headerSize {
		return Record{}, 0, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n == 0 || n > MaxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	if uint64(len(buf)) < headerSize+uint64(n) {
		return Record{}, 0, ErrTruncated
	}
	payload := buf[headerSize : headerSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if rec.Op == "" {
		return Record{}, 0, fmt.Errorf("%w: record without op", ErrCorrupt)
	}
	return rec, headerSize + int(n), nil
}

// Decode unmarshals a record's payload into out.
func (r Record) Decode(out any) error {
	if err := json.Unmarshal(r.Data, out); err != nil {
		return fmt.Errorf("journal: decoding %s payload: %w", r.Op, err)
	}
	return nil
}
