package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// FuzzDecodeRecord hammers the frame decoder with arbitrary bytes. The
// contract under fuzz: DecodeRecord never panics, never reads past the
// buffer, and classifies every input as a valid record, io.EOF,
// ErrTruncated or ErrCorrupt. A decoded record must re-encode to the
// exact bytes it was parsed from (framing is canonical).
// frameRaw wraps an arbitrary payload in a valid length+CRC header, so
// a seed can hand the payload decoder malformed bytes the framing layer
// would otherwise reject first.
func frameRaw(payload []byte) []byte {
	buf := make([]byte, headerSize, headerSize+len(payload))
	buf = append(buf, payload...)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return buf
}

func FuzzDecodeRecord(f *testing.F) {
	good, _ := EncodeRecord("resv.admit", map[string]int{"n": 1})
	empty, _ := EncodeRecord("resv.compact", nil)
	bin, _ := EncodeRecord("resv.admit", RawBinary{0x0a, 0x01, 0x78})
	f.Add([]byte{})
	f.Add(good)
	f.Add(empty)
	f.Add(bin)
	f.Add(good[:len(good)-3])                         // torn tail
	f.Add(good[:headerSize-1])                        // torn header
	f.Add(append([]byte(nil), good[8:]...))           // payload without header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	f.Add(bytes.Repeat([]byte{0}, 64))
	twoThenTear := append(append([]byte(nil), good...), empty...)
	f.Add(append(twoThenTear, good[:5]...))
	f.Add(bin[:len(bin)-1]) // torn binary payload
	// Bit-flipped binary payload: framing CRC must classify it.
	flipped := append([]byte(nil), bin...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)
	// A binary record whose op-length varint is torn (header + CRC made
	// consistent so the payload decoder, not the framing, sees it).
	f.Add(frameRaw([]byte{recMagic, recVersion, 0x80}))
	// recMagic with a record version from the future.
	f.Add(frameRaw([]byte{recMagic, 99, 0x01, 'x'}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the buffer exactly as Recover does: decode frames until
		// the first error ends the replay.
		off := 0
		for {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unclassified error %v", err)
				}
				if n != 0 {
					t.Fatalf("error %v consumed %d bytes", err, n)
				}
				return
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("decoder consumed %d bytes of a %d-byte suffix", n, len(data)-off)
			}
			if rec.Op == "" {
				t.Fatal("decoded record without op")
			}
			// Canonical framing: re-encoding the decoded payload must
			// reproduce the input frame byte for byte.
			var payload any
			switch {
			case rec.IsBinary():
				payload = RawBinary(rec.Data)
			case rec.Data != nil:
				payload = rec.Data
			}
			re, err := EncodeRecord(rec.Op, payload)
			if err == nil && !bytes.Equal(re, data[off:off+n]) {
				// Non-canonical JSON (spacing, key order) legitimately
				// re-encodes differently; only the decoded form must
				// match. Decode both and compare.
				rec2, _, err2 := DecodeRecord(re)
				if err2 != nil || rec2.Op != rec.Op || !bytes.Equal(rec2.Data, rec.Data) {
					t.Fatalf("re-encode mismatch: %q vs %q", re, data[off:off+n])
				}
			}
			off += n
		}
	})
}
