package journal

import "testing"

// binPayload is a minimal BinaryRecord for the allocation gate.
type binPayload struct{ a, b int64 }

func (p binPayload) AppendBinary(buf []byte) []byte {
	buf = append(buf, 0x08, byte(p.a<<1), 0x10, byte(p.b<<1))
	return buf
}

// TestAppendRecordAllocationFree gates the journal's hot append: a
// BinaryRecord framed onto a buffer with capacity must not allocate.
// (Interface conversion of a pointer-free value like binPayload does
// not box on modern Go; the resv/bb record types are structs behind
// the same interface.)
func TestAppendRecordAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gate is meaningless under the race detector")
	}
	buf := make([]byte, 0, 4096)
	var rec BinaryRecord = binPayload{a: 3, b: 9}
	got := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendRecord(buf[:0], "resv.admit", rec)
		if err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Errorf("AppendRecord allocates %.1f per op, want 0", got)
	}
}
