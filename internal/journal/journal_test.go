package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func openT(t *testing.T, dir string, opts Options) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	frame, err := EncodeRecord("test.op", payload{N: 7, S: "x"})
	if err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	rec, n, err := DecodeRecord(frame)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d bytes", n, len(frame))
	}
	if rec.Op != "test.op" {
		t.Fatalf("op = %q", rec.Op)
	}
	var p payload
	if err := rec.Decode(&p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.N != 7 || p.S != "x" {
		t.Fatalf("payload = %+v", p)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	good, _ := EncodeRecord("op", payload{N: 1})

	if _, _, err := DecodeRecord(nil); err != io.EOF {
		t.Errorf("empty buf: err = %v, want io.EOF", err)
	}
	if _, _, err := DecodeRecord(good[:5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: err = %v, want ErrTruncated", err)
	}
	if _, _, err := DecodeRecord(good[:len(good)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short payload: err = %v, want ErrTruncated", err)
	}

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xff
	if _, _, err := DecodeRecord(flipped); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad crc: err = %v, want ErrCorrupt", err)
	}

	zero := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(zero[0:4], 0)
	if _, _, err := DecodeRecord(zero); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero length: err = %v, want ErrCorrupt", err)
	}

	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[0:4], MaxRecordSize+1)
	if _, _, err := DecodeRecord(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized length: err = %v, want ErrCorrupt", err)
	}

	// Valid frame around a non-JSON payload.
	junk := []byte("not json")
	frame := make([]byte, headerSize+len(junk))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(junk)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(junk, crcTable))
	copy(frame[headerSize:], junk)
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-JSON payload: err = %v, want ErrCorrupt", err)
	}
}

func TestAppendRecoverAllPolicies(t *testing.T) {
	for _, pol := range []Policy{FsyncBatch, FsyncAlways, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			j, rec := openT(t, dir, Options{Fsync: pol, BatchInterval: time.Millisecond})
			if rec.Snapshot != nil || len(rec.Records) != 0 {
				t.Fatalf("fresh dir recovered %+v", rec)
			}
			for i := 0; i < 10; i++ {
				if err := j.Append("test.op", payload{N: i}); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			_, rec2 := openT(t, dir, Options{Fsync: pol})
			if len(rec2.Records) != 10 {
				t.Fatalf("recovered %d records, want 10", len(rec2.Records))
			}
			for i, r := range rec2.Records {
				var p payload
				if err := r.Decode(&p); err != nil || p.N != i {
					t.Fatalf("record %d: %+v, %v", i, p, err)
				}
			}
			if rec2.Torn {
				t.Fatal("clean log reported torn")
			}
		})
	}
}

func TestRecoverToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 3; i++ {
		if err := j.Append("test.op", payload{N: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	// Tear the final record in half, as a crash mid-write would.
	path := filepath.Join(dir, walFile)
	wal, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, wal[:len(wal)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir, Options{Fsync: FsyncAlways})
	if !rec.Torn {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	// New appends must extend the valid prefix, not the torn garbage.
	if err := j2.Append("test.op", payload{N: 99}); err != nil {
		t.Fatalf("Append after torn recovery: %v", err)
	}
	j2.Close()
	_, rec3 := openT(t, dir, Options{})
	if rec3.Torn || len(rec3.Records) != 3 {
		t.Fatalf("after torn repair: torn=%v records=%d, want clean 3", rec3.Torn, len(rec3.Records))
	}
}

func TestRecoverStopsAtGarbage(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	j.Append("test.op", payload{N: 1})
	j.Close()

	path := filepath.Join(dir, walFile)
	wal, _ := os.ReadFile(path)
	wal = append(wal, bytes.Repeat([]byte{0xde, 0xad}, 32)...)
	if err := os.WriteFile(path, wal, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rec.Torn || len(rec.Records) != 1 {
		t.Fatalf("torn=%v records=%d, want torn with 1 record", rec.Torn, len(rec.Records))
	}
}

func TestCrashDropsUnflushedBatch(t *testing.T) {
	dir := t.TempDir()
	// A huge batch interval guarantees nothing is flushed before Crash.
	j, _ := openT(t, dir, Options{Fsync: FsyncBatch, BatchInterval: time.Hour})
	j.Append("test.op", payload{N: 1})
	j.Crash()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("crash leaked %d buffered records to disk", len(rec.Records))
	}
}

func TestSyncMakesBatchDurable(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncBatch, BatchInterval: time.Hour})
	j.Append("test.op", payload{N: 1})
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	j.Crash() // even a crash after Sync loses nothing
	rec, _ := Recover(dir)
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records after Sync+Crash, want 1", len(rec.Records))
	}
}

func TestRotateSnapshotsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways, RotateEvery: 3})
	for i := 0; i < 3; i++ {
		j.Append("test.op", payload{N: i})
	}
	if !j.NeedRotate() {
		t.Fatal("NeedRotate false after RotateEvery appends")
	}
	state := []byte(`{"reconstructed":true}`)
	if err := j.Rotate(func() ([]byte, error) { return state, nil }); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if j.NeedRotate() {
		t.Fatal("NeedRotate true right after rotation")
	}
	j.Append("test.op", payload{N: 100})
	j.Close()

	_, rec := openT(t, dir, Options{})
	if !bytes.Equal(rec.Snapshot, state) {
		t.Fatalf("snapshot = %q, want %q", rec.Snapshot, state)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("tail has %d records, want 1 (post-rotation only)", len(rec.Records))
	}
}

func TestRotateBatchBufferSubsumedBySnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncBatch, BatchInterval: time.Hour})
	j.Append("test.op", payload{N: 1}) // stuck in the batch buffer
	if err := j.Rotate(func() ([]byte, error) { return []byte(`{"n":1}`), nil }); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	j.Close()
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) != 0 {
		t.Fatalf("buffered pre-snapshot record leaked into the tail: %d records", len(rec.Records))
	}
	if rec.Snapshot == nil {
		t.Fatal("snapshot missing after rotation")
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Append("op", nil); err != nil {
		t.Fatalf("nil Append: %v", err)
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("nil Sync: %v", err)
	}
	if err := j.Rotate(func() ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("nil Rotate: %v", err)
	}
	if j.NeedRotate() {
		t.Fatal("nil NeedRotate = true")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	j.Crash()
	if s := j.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v", s)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"", FsyncBatch, false},
		{"batch", FsyncBatch, false},
		{"always", FsyncAlways, false},
		{"never", FsyncNever, false},
		{"sometimes", 0, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestStatsAndHooks(t *testing.T) {
	dir := t.TempDir()
	var appends, fsyncs int
	j, _ := openT(t, dir, Options{
		Fsync:    FsyncAlways,
		OnAppend: func(time.Duration) { appends++ },
		OnFsync:  func() { fsyncs++ },
	})
	for i := 0; i < 4; i++ {
		j.Append("test.op", payload{N: i})
	}
	st := j.Stats()
	if st.Appends != 4 || st.Records != 4 || st.Err != nil {
		t.Fatalf("Stats = %+v", st)
	}
	if appends != 4 || fsyncs != 4 {
		t.Fatalf("hooks: appends=%d fsyncs=%d, want 4/4", appends, fsyncs)
	}
	j.Close()
}

func TestConcurrentAppendRecoversAll(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncBatch, BatchInterval: 500 * time.Microsecond})
	const workers, per = 8, 50
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				j.Append("test.op", payload{N: w*per + i})
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), workers*per)
	}
	seen := make(map[int]bool)
	for _, r := range rec.Records {
		var p payload
		if err := r.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if seen[p.N] {
			t.Fatalf("duplicate record %d", p.N)
		}
		seen[p.N] = true
	}
}

func TestAppendAfterCloseErrors(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncNever})
	j.Close()
	if err := j.Append("op", nil); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
