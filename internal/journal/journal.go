// Package journal implements the broker's durability layer: an
// append-only, CRC-framed, fsync-batched write-ahead log of typed
// records plus a periodically rotated snapshot. A restarting broker
// recovers by loading the snapshot and replaying the log tail; a torn
// final record (the signature of a crash mid-write) is detected by the
// framing checksums and discarded.
//
// The journal imposes one correctness contract on its users, relied on
// by rotation and recovery alike: records must be absolute and
// idempotent. Replaying a record whose effect a snapshot already
// reflects must be a no-op, because a mutation may legitimately be
// captured by both the snapshot and a record that survives truncation.
package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Policy selects when appended records reach stable storage.
type Policy int

const (
	// FsyncBatch (the default) buffers appends in memory and has a
	// background syncer write+fsync the accumulated batch every
	// BatchInterval. Appends return in microseconds; a power failure
	// loses at most the last batch window of records.
	FsyncBatch Policy = iota
	// FsyncAlways writes and fsyncs every record before Append
	// returns: nothing acknowledged is ever lost, at the price of one
	// fsync per mutation.
	FsyncAlways
	// FsyncNever writes through to the OS on every append but never
	// fsyncs: records survive a process crash but not a power failure.
	// Meant for tests and benchmark baselines.
	FsyncNever
)

func (p Policy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a config string; empty selects FsyncBatch.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	default:
		return FsyncBatch, fmt.Errorf("journal: unknown fsync policy %q (want batch, always or never)", s)
	}
}

// DefBatchInterval is the default group-commit window for FsyncBatch.
const DefBatchInterval = 2 * time.Millisecond

// DefRotateEvery is the default record count between NeedRotate hints.
const DefRotateEvery = 4096

// Options configures a journal.
type Options struct {
	// Fsync is the durability policy (default FsyncBatch).
	Fsync Policy
	// BatchInterval is the FsyncBatch group-commit window
	// (default DefBatchInterval).
	BatchInterval time.Duration
	// RotateEvery is how many appended records make NeedRotate report
	// true (default DefRotateEvery; negative disables the hint).
	RotateEvery int

	// TailBytes, when positive, keeps the most recent appended frames
	// in memory (up to this byte budget) for replication streaming:
	// TailSince serves follower catch-up from the tail without touching
	// the file, and a reader that fell off the tail takes a snapshot
	// instead. Zero (the default) disables the tail; unreplicated
	// brokers pay nothing.
	TailBytes int

	// OnAppend, OnFsync and OnError, when set, observe each append's
	// latency, each fsync batch, and each write-path error. They are
	// called outside the journal's locks and must not call back in.
	OnAppend func(time.Duration)
	OnFsync  func()
	OnError  func(error)
}

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"
	tmpSuffix    = ".tmp"
)

// Recovered is the state read back from a journal directory: the last
// rotated snapshot (nil if none) and every intact record appended
// after it, in order. Torn reports that trailing bytes failed to
// decode and were discarded — the expected aftermath of a crash
// mid-append, tolerated silently by Open.
type Recovered struct {
	Snapshot []byte
	Records  []Record
	Torn     bool

	validBytes int64
}

// Recover reads a journal directory without opening it for writing;
// Open uses it internally and tests use it to audit a live directory
// (after Sync) without disturbing the writer.
func Recover(dir string) (*Recovered, error) {
	rec := &Recovered{}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	switch {
	case err == nil:
		rec.Snapshot = snap
	case !os.IsNotExist(err):
		return nil, fmt.Errorf("journal: reading snapshot: %w", err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		if os.IsNotExist(err) {
			return rec, nil
		}
		return nil, fmt.Errorf("journal: reading wal: %w", err)
	}
	for off := 0; off < len(wal); {
		r, n, err := DecodeRecord(wal[off:])
		if err != nil {
			// First bad frame ends the replay: everything beyond it is
			// the torn tail of a crashed write (or garbage shadowed by
			// it) and cannot be trusted.
			rec.Torn = true
			break
		}
		rec.Records = append(rec.Records, r)
		off += n
		rec.validBytes = int64(off)
	}
	return rec, nil
}

// Journal is an append-only record log bound to one directory. It is
// safe for concurrent use. A nil *Journal is inert: Append, Sync,
// Rotate and Close no-op, so unjournaled brokers thread the same code.
type Journal struct {
	dir  string
	opts Options

	// mu guards the buffer, counters and sticky error, and serialises
	// direct writes (FsyncAlways / FsyncNever). Rotate holds it across
	// the snapshot build; Append never blocks on disk in batch mode.
	mu      sync.Mutex
	buf     []byte
	spare   []byte // drained batch buffer, recycled so appends stay allocation-free
	scratch []byte // frame build space for the direct-write policies
	records int    // appended since the last rotation
	err     error
	closed  bool

	// fileMu serialises file writes, fsyncs and truncation between the
	// batch syncer and rotation. Never acquired while holding mu by the
	// syncer; Rotate takes mu then fileMu.
	fileMu sync.Mutex
	f      *os.File

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	appends   int64
	fsyncs    int64
	rotations int64

	// Streaming state (stream.go), guarded by mu: seq numbers every
	// appended record within this incarnation, tail retains recent
	// frames for TailSince, and changes is the lazily-created broadcast
	// channel closed (and replaced) on every append.
	seq      int64
	tail     []StreamRecord
	tailSize int
	changes  chan struct{}
}

// Stats is a point-in-time view of the journal's activity.
type Stats struct {
	// Appends / Fsyncs / Rotations count since Open.
	Appends, Fsyncs, Rotations int64
	// Records is the record count appended since the last rotation.
	Records int
	// Err is the sticky write-path error, if any: once a write fails
	// the journal keeps accepting appends best-effort but durability
	// is gone until the broker restarts.
	Err error
}

// Open recovers the directory's persisted state, truncates any torn
// tail, and opens the journal for appending. The caller replays
// Recovered before appending new records.
func Open(dir string, opts Options) (*Journal, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rec, err := Recover(dir)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// Drop the torn tail so fresh appends extend the valid prefix.
	if err := f.Truncate(rec.validBytes); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(rec.validBytes, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if opts.BatchInterval <= 0 {
		opts.BatchInterval = DefBatchInterval
	}
	if opts.RotateEvery == 0 {
		opts.RotateEvery = DefRotateEvery
	}
	j := &Journal{
		dir:     dir,
		opts:    opts,
		f:       f,
		records: len(rec.Records),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if opts.Fsync == FsyncBatch {
		go j.syncLoop()
	} else {
		close(j.done)
	}
	return j, rec, nil
}

// Append encodes and logs one record under the configured fsync
// policy. The returned error is also sticky (see Stats.Err): callers
// on the hot path may ignore it and rely on the OnError hook.
//
// Payloads implementing BinaryRecord are framed directly into the
// journal's own buffers (the batch buffer or the direct-write scratch),
// so a steady-state append allocates nothing.
func (j *Journal) Append(op string, data any) error {
	if j == nil {
		return nil
	}
	t0 := time.Now()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: append after close")
	}
	var err error
	var frame []byte
	switch j.opts.Fsync {
	case FsyncBatch:
		start := len(j.buf)
		j.buf, err = AppendRecord(j.buf, op, data)
		if err != nil {
			j.mu.Unlock()
			j.fail(err)
			return err
		}
		frame = j.buf[start:]
		select {
		case j.kick <- struct{}{}:
		default:
		}
	default:
		j.scratch, err = AppendRecord(j.scratch[:0], op, data)
		if err != nil {
			j.mu.Unlock()
			j.fail(err)
			return err
		}
		frame = j.scratch
		if _, werr := j.f.Write(j.scratch); werr != nil {
			err = werr
			j.err = werr
		} else if j.opts.Fsync == FsyncAlways {
			if serr := j.f.Sync(); serr != nil {
				err = serr
				j.err = serr
			} else {
				j.fsyncs++
				if fn := j.opts.OnFsync; fn != nil {
					defer fn()
				}
			}
		}
	}
	j.records++
	j.appends++
	j.noteAppendLocked(frame)
	j.mu.Unlock()
	if err != nil {
		if fn := j.opts.OnError; fn != nil {
			fn(err)
		}
		return err
	}
	if fn := j.opts.OnAppend; fn != nil {
		fn(time.Since(t0))
	}
	return nil
}

// syncLoop is the FsyncBatch group-commit goroutine: it sleeps one
// batch interval after the first append of a batch, then flushes the
// whole accumulated buffer with a single write+fsync.
func (j *Journal) syncLoop() {
	defer close(j.done)
	for {
		select {
		case <-j.stop:
			return
		case <-j.kick:
		}
		timer := time.NewTimer(j.opts.BatchInterval)
		select {
		case <-j.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		j.flush()
	}
}

// flush writes and fsyncs the pending batch. Appenders are only
// blocked for the buffer swap, not the disk I/O: the drained buffer is
// swapped against the spare from the previous flush, so a steady
// batch workload ping-pongs two buffers and never reallocates.
func (j *Journal) flush() {
	j.mu.Lock()
	b := j.buf
	j.buf = j.spare[:0]
	j.spare = nil // in use below until returned
	j.mu.Unlock()
	if len(b) > 0 {
		j.fileMu.Lock()
		_, werr := j.f.Write(b)
		if werr == nil {
			werr = j.f.Sync()
		}
		j.fileMu.Unlock()
		if werr != nil {
			j.fail(werr)
			return
		}
	}
	j.mu.Lock()
	j.spare = b[:0] // recycle the drained buffer's capacity
	if len(b) > 0 {
		j.fsyncs++
	}
	j.mu.Unlock()
	if len(b) > 0 {
		if fn := j.opts.OnFsync; fn != nil {
			fn()
		}
	}
}

// fail records a sticky write-path error and reports it.
func (j *Journal) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	if fn := j.opts.OnError; fn != nil {
		fn(err)
	}
}

// Sync forces any buffered records to stable storage. It blocks
// appends for the duration; meant for shutdown and tests, not the hot
// path.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	j.fileMu.Lock()
	defer j.fileMu.Unlock()
	if len(j.buf) > 0 {
		if _, err := j.f.Write(j.buf); err != nil {
			j.err = err
			return err
		}
		j.buf = j.buf[:0]
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return err
	}
	j.fsyncs++
	return nil
}

// NeedRotate hints that enough records accumulated since the last
// rotation to be worth a snapshot+truncate.
func (j *Journal) NeedRotate() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.opts.RotateEvery > 0 && j.records >= j.opts.RotateEvery
}

// Rotate persists a fresh snapshot and truncates the log: the
// recovery cost becomes one snapshot load plus a short tail. state is
// called with appends blocked; it may take the owning layer's locks
// (the broker never appends while holding them) and must return the
// complete persistent state. Crash ordering is safe at every step:
// the snapshot is written to a temp file, fsynced and renamed into
// place before the log is truncated, and a crash between rename and
// truncate merely replays records the snapshot already reflects.
func (j *Journal) Rotate(state func() ([]byte, error)) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: rotate after close")
	}
	data, err := state()
	if err != nil {
		return fmt.Errorf("journal: building snapshot: %w", err)
	}
	tmp := filepath.Join(j.dir, snapshotFile+tmpSuffix)
	final := filepath.Join(j.dir, snapshotFile)
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err == nil {
		if _, werr := tf.Write(data); werr != nil {
			err = werr
		} else if serr := tf.Sync(); serr != nil {
			err = serr
		}
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		j.err = err
		return fmt.Errorf("journal: writing snapshot: %w", err)
	}
	syncDir(j.dir)
	j.fileMu.Lock()
	j.buf = j.buf[:0] // pending records predate the snapshot: all reflected in it
	if terr := j.f.Truncate(0); terr == nil {
		_, err = j.f.Seek(0, 0)
	} else {
		err = terr
	}
	j.fileMu.Unlock()
	if err != nil {
		j.err = err
		return fmt.Errorf("journal: truncating wal: %w", err)
	}
	j.records = 0
	j.rotations++
	// The snapshot reflects every tailed record: a stream reader that
	// needs anything older than the (now empty) tail takes the snapshot.
	j.tail = nil
	j.tailSize = 0
	return nil
}

// syncDir best-effort fsyncs a directory so a renamed snapshot's entry
// is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Close flushes pending records and closes the log: the graceful
// shutdown path.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.shutdownSyncer()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash closes the journal as a crashing process would: buffered
// records that have not reached the file are dropped, nothing is
// flushed or fsynced. Tests and the experiment World use it to model
// a broker dying mid-batch.
func (j *Journal) Crash() {
	if j == nil {
		return
	}
	j.shutdownSyncer()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.buf = nil
	_ = j.f.Close()
}

func (j *Journal) shutdownSyncer() {
	j.mu.Lock()
	stopped := j.closed
	j.mu.Unlock()
	if stopped {
		return
	}
	select {
	case <-j.stop:
	default:
		close(j.stop)
	}
	<-j.done
}

// Stats returns a point-in-time activity snapshot.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{Appends: j.appends, Fsyncs: j.fsyncs, Rotations: j.rotations, Records: j.records, Err: j.err}
}

// Err returns the sticky write-path error, nil while healthy.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
