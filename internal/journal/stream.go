package journal

import "fmt"

// Streaming support: a journal opened with Options.TailBytes > 0 keeps
// the most recently appended CRC-framed records in an in-memory tail,
// numbered by a per-incarnation sequence. A replication leader reads
// the tail with TailSince and ships the raw frames to followers, which
// re-journal them verbatim with AppendFrame — the follower's WAL ends
// up byte-identical to the leader's suffix, so recovery replays the
// same records on either side. A reader that fell off the tail (or a
// fresh follower) takes a snapshot via SnapshotWith instead.
//
// Sequence numbers are deliberately per-incarnation: they start at
// zero on Open and never try to line up across restarts. Every stream
// therefore begins with a snapshot carrying the seq it was cut at, and
// incremental frames only ever extend that snapshot.

// StreamRecord is one framed record as it sits in the WAL: Frame is
// the complete CRC-framed encoding (header + payload) and Seq its
// position in this incarnation's append order. Frames handed out by
// TailSince are immutable; callers must not modify them.
type StreamRecord struct {
	Seq   int64
	Frame []byte
}

// Seq reports the sequence number of the most recently appended
// record (zero before the first append of this incarnation).
func (j *Journal) Seq() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Changes returns a channel closed by the next append. Each call may
// return a new channel; stream pumps wait on it, then re-call after
// draining TailSince — the close-and-renew broadcast makes one append
// wake every waiting pump without per-pump registration.
func (j *Journal) Changes() <-chan struct{} {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.changes == nil {
		j.changes = make(chan struct{})
	}
	return j.changes
}

// noteAppendLocked numbers one appended frame, retains it in the tail
// (within the byte budget) and wakes stream pumps. Caller holds j.mu.
// The frame is copied before retention: both append paths reuse their
// buffers.
func (j *Journal) noteAppendLocked(frame []byte) {
	j.seq++
	if j.opts.TailBytes > 0 {
		j.tail = append(j.tail, StreamRecord{Seq: j.seq, Frame: append([]byte(nil), frame...)})
		j.tailSize += len(frame)
		for j.tailSize > j.opts.TailBytes && len(j.tail) > 0 {
			j.tailSize -= len(j.tail[0].Frame)
			j.tail[0].Frame = nil
			j.tail = j.tail[1:]
		}
	}
	if j.changes != nil {
		close(j.changes)
		j.changes = nil
	}
}

// TailSince returns every retained record with sequence number greater
// than after, in order. ok is false when the tail no longer reaches
// back that far — records were evicted by the byte budget or cleared
// by a rotation — in which case the reader must resynchronise from a
// snapshot. An after at or past the current seq returns (nil, true):
// the reader is caught up.
func (j *Journal) TailSince(after int64) ([]StreamRecord, bool) {
	if j == nil {
		return nil, true
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if after >= j.seq {
		return nil, true
	}
	if len(j.tail) == 0 || j.tail[0].Seq > after+1 {
		return nil, false
	}
	i := 0
	for i < len(j.tail) && j.tail[i].Seq <= after {
		i++
	}
	out := make([]StreamRecord, len(j.tail)-i)
	copy(out, j.tail[i:])
	return out, true
}

// AppendFrame journals one pre-framed record verbatim under the
// configured fsync policy — the follower half of replication: frames
// streamed off a leader's tail are re-journaled byte-for-byte, so the
// follower's own recovery replays exactly what the leader logged. The
// frame is validated against the CRC framing before it touches the
// buffer; a frame that does not decode cleanly (or carries trailing
// bytes) is rejected without corrupting the WAL.
func (j *Journal) AppendFrame(frame []byte) error {
	if j == nil {
		return nil
	}
	if _, n, err := DecodeRecord(frame); err != nil {
		return fmt.Errorf("journal: append-frame: %w", err)
	} else if n != len(frame) {
		return fmt.Errorf("journal: append-frame: %d trailing bytes", len(frame)-n)
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: append after close")
	}
	var err error
	switch j.opts.Fsync {
	case FsyncBatch:
		j.buf = append(j.buf, frame...)
		select {
		case j.kick <- struct{}{}:
		default:
		}
	default:
		if _, werr := j.f.Write(frame); werr != nil {
			err = werr
			j.err = werr
		} else if j.opts.Fsync == FsyncAlways {
			if serr := j.f.Sync(); serr != nil {
				err = serr
				j.err = serr
			} else {
				j.fsyncs++
				if fn := j.opts.OnFsync; fn != nil {
					defer fn()
				}
			}
		}
	}
	j.records++
	j.appends++
	j.noteAppendLocked(frame)
	j.mu.Unlock()
	if err != nil {
		if fn := j.opts.OnError; fn != nil {
			fn(err)
		}
		return err
	}
	return nil
}

// SnapshotWith builds a state snapshot atomically with the journal's
// sequence counter: state() runs with appends blocked (the same
// contract as Rotate's state callback — it may take the owning layer's
// locks, which never hold appends open), so the returned seq is
// exactly the last record the snapshot reflects. Unlike Rotate nothing
// is written to disk and the WAL is untouched; this is the catch-up
// snapshot a leader cuts for a lagging or fresh follower.
func (j *Journal) SnapshotWith(state func() ([]byte, error)) ([]byte, int64, error) {
	if j == nil {
		data, err := state()
		return data, 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := state()
	if err != nil {
		return nil, 0, fmt.Errorf("journal: building snapshot: %w", err)
	}
	return data, j.seq, nil
}
