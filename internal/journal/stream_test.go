package journal

import (
	"bytes"
	"testing"
	"time"
)

// streamOpts opens a journal with the replication tail enabled and no
// fsync (the streaming contract is independent of durability policy).
func streamOpts(tailBytes int) Options {
	return Options{Fsync: FsyncNever, TailBytes: tailBytes}
}

func TestStreamSeqNumbersAppends(t *testing.T) {
	j, _ := openT(t, t.TempDir(), streamOpts(1<<20))
	defer j.Close()
	if got := j.Seq(); got != 0 {
		t.Fatalf("fresh Seq = %d, want 0", got)
	}
	for i := 1; i <= 5; i++ {
		if err := j.Append("test.op", payload{N: i}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if got := j.Seq(); got != int64(i) {
			t.Fatalf("Seq after %d appends = %d", i, got)
		}
	}
	recs, ok := j.TailSince(0)
	if !ok || len(recs) != 5 {
		t.Fatalf("TailSince(0) = %d records, ok=%t, want 5, true", len(recs), ok)
	}
	for i, sr := range recs {
		if sr.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d", i, sr.Seq)
		}
		rec, n, err := DecodeRecord(sr.Frame)
		if err != nil || n != len(sr.Frame) {
			t.Fatalf("frame %d: decode err=%v consumed=%d/%d", i, err, n, len(sr.Frame))
		}
		var p payload
		if err := rec.Decode(&p); err != nil || p.N != i+1 {
			t.Fatalf("frame %d decoded to %+v (err %v)", i, p, err)
		}
	}
	// A caught-up reader gets an empty, ok tail.
	if recs, ok := j.TailSince(j.Seq()); !ok || len(recs) != 0 {
		t.Fatalf("caught-up TailSince = %d records, ok=%t", len(recs), ok)
	}
	// Partial reads resume mid-tail.
	if recs, ok := j.TailSince(3); !ok || len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("TailSince(3) = %+v, ok=%t", recs, ok)
	}
}

func TestStreamTailEvictionForcesResync(t *testing.T) {
	// A tiny byte budget evicts early records; a reader holding an old
	// position must be told to resync rather than fed a gapped tail.
	j, _ := openT(t, t.TempDir(), streamOpts(128))
	defer j.Close()
	for i := 0; i < 50; i++ {
		if err := j.Append("test.op", payload{N: i, S: "padding-padding"}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, ok := j.TailSince(0); ok {
		t.Fatal("TailSince(0) reported ok over an evicted prefix")
	}
	// The newest record is always reachable.
	recs, ok := j.TailSince(j.Seq() - 1)
	if !ok || len(recs) != 1 || recs[0].Seq != j.Seq() {
		t.Fatalf("TailSince(seq-1) = %+v, ok=%t", recs, ok)
	}
}

func TestStreamAppendFrameReplicatesVerbatim(t *testing.T) {
	// Leader journals records; its frames, re-journaled on a follower
	// with AppendFrame, must produce a byte-identical WAL that recovers
	// to the same records.
	leader, _ := openT(t, t.TempDir(), streamOpts(1<<20))
	defer leader.Close()
	followerDir := t.TempDir()
	follower, _ := openT(t, followerDir, streamOpts(1<<20))
	for i := 0; i < 10; i++ {
		if err := leader.Append("test.op", payload{N: i}); err != nil {
			t.Fatalf("leader Append: %v", err)
		}
	}
	recs, ok := leader.TailSince(0)
	if !ok {
		t.Fatal("leader tail unexpectedly evicted")
	}
	for _, sr := range recs {
		if err := follower.AppendFrame(sr.Frame); err != nil {
			t.Fatalf("AppendFrame seq %d: %v", sr.Seq, err)
		}
	}
	if follower.Seq() != leader.Seq() {
		t.Fatalf("follower seq %d, leader seq %d", follower.Seq(), leader.Seq())
	}
	// The follower's retained frames are byte-identical to the leader's.
	frecs, _ := follower.TailSince(0)
	for i := range recs {
		if !bytes.Equal(recs[i].Frame, frecs[i].Frame) {
			t.Fatalf("frame %d diverged between leader and follower", i)
		}
	}
	if err := follower.Close(); err != nil {
		t.Fatalf("follower Close: %v", err)
	}
	// Recovery replays exactly the streamed records.
	reopened, recovered := openT(t, followerDir, streamOpts(1<<20))
	defer reopened.Close()
	if len(recovered.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recovered.Records))
	}
	for i, rec := range recovered.Records {
		var p payload
		if err := rec.Decode(&p); err != nil || p.N != i {
			t.Fatalf("recovered record %d = %+v (err %v)", i, p, err)
		}
	}
}

func TestStreamAppendFrameRejectsBadFrames(t *testing.T) {
	j, _ := openT(t, t.TempDir(), streamOpts(1<<20))
	defer j.Close()
	if err := j.AppendFrame([]byte("not a frame")); err == nil {
		t.Fatal("AppendFrame accepted garbage")
	}
	good, err := EncodeRecord("test.op", payload{N: 1})
	if err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	if err := j.AppendFrame(append(good, 0xff)); err == nil {
		t.Fatal("AppendFrame accepted trailing bytes")
	}
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xff
	if err := j.AppendFrame(corrupt); err == nil {
		t.Fatal("AppendFrame accepted a bad CRC")
	}
	if got := j.Seq(); got != 0 {
		t.Fatalf("rejected frames advanced seq to %d", got)
	}
	if err := j.AppendFrame(good); err != nil {
		t.Fatalf("AppendFrame valid frame: %v", err)
	}
	if got := j.Seq(); got != 1 {
		t.Fatalf("Seq after valid frame = %d", got)
	}
}

func TestStreamSnapshotWithCutsAtExactSeq(t *testing.T) {
	j, _ := openT(t, t.TempDir(), streamOpts(1<<20))
	defer j.Close()
	for i := 0; i < 7; i++ {
		if err := j.Append("test.op", payload{N: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	data, seq, err := j.SnapshotWith(func() ([]byte, error) {
		// state() runs with appends blocked, so the seq reported must be
		// exactly the journal's sequence at this instant.
		return []byte("state"), nil
	})
	if err != nil {
		t.Fatalf("SnapshotWith: %v", err)
	}
	if string(data) != "state" || seq != 7 {
		t.Fatalf("SnapshotWith = (%q, %d), want (state, 7)", data, seq)
	}
}

func TestStreamChangesBroadcastsOnAppend(t *testing.T) {
	j, _ := openT(t, t.TempDir(), streamOpts(1<<20))
	defer j.Close()
	ch := j.Changes()
	select {
	case <-ch:
		t.Fatal("Changes closed before any append")
	default:
	}
	if err := j.Append("test.op", payload{N: 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("Changes not closed by append")
	}
	// The broadcast renews: a fresh channel waits for the next append.
	ch2 := j.Changes()
	select {
	case <-ch2:
		t.Fatal("renewed Changes channel already closed")
	default:
	}
}

func TestStreamRotateClearsTail(t *testing.T) {
	j, _ := openT(t, t.TempDir(), streamOpts(1<<20))
	defer j.Close()
	for i := 0; i < 5; i++ {
		if err := j.Append("test.op", payload{N: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	seq := j.Seq()
	if err := j.Rotate(func() ([]byte, error) { return []byte("snap"), nil }); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if got := j.Seq(); got != seq {
		t.Fatalf("Rotate moved seq from %d to %d", seq, got)
	}
	// Everything pre-rotation is snapshot-only now: readers holding an
	// old position must resync.
	if _, ok := j.TailSince(0); ok {
		t.Fatal("TailSince(0) ok after rotation cleared the tail")
	}
	if recs, ok := j.TailSince(seq); !ok || len(recs) != 0 {
		t.Fatalf("caught-up TailSince after rotate = %d records, ok=%t", len(recs), ok)
	}
	// New appends stream again from the post-rotation position.
	if err := j.Append("test.op", payload{N: 99}); err != nil {
		t.Fatalf("Append after rotate: %v", err)
	}
	recs, ok := j.TailSince(seq)
	if !ok || len(recs) != 1 || recs[0].Seq != seq+1 {
		t.Fatalf("post-rotate TailSince = %+v, ok=%t", recs, ok)
	}
}
