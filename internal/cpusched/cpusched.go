// Package cpusched is the CPU resource manager substrate: slot-based
// advance reservations for compute nodes, the "CPU" resource GARA
// manages alongside networks and disks. Figure 5/6 of the paper couple
// a multi-domain network reservation with a CPU reservation in the
// destination domain; the destination BB validates the referenced
// handle against this manager.
package cpusched

import (
	"fmt"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/resv"
	"e2eqos/internal/units"
)

// Manager reserves CPUs out of a fixed pool over time windows.
type Manager struct {
	domain string
	table  *resv.Table
}

// NewManager creates a manager for a pool of cpus processors.
func NewManager(domain string, cpus int) (*Manager, error) {
	if cpus <= 0 {
		return nil, fmt.Errorf("cpusched: non-positive CPU count %d", cpus)
	}
	// One "bandwidth unit" per CPU keeps the admission mechanics
	// identical to the network table.
	table, err := resv.NewTable("cpu-"+domain, units.Bandwidth(cpus))
	if err != nil {
		return nil, err
	}
	return &Manager{domain: domain, table: table}, nil
}

// Domain returns the owning domain.
func (m *Manager) Domain() string { return m.domain }

// Capacity returns the pool size.
func (m *Manager) Capacity() int { return int(m.table.Capacity()) }

// Reserve admits an advance reservation of cpus processors during w.
func (m *Manager) Reserve(user identity.DN, cpus int, w units.Window) (string, error) {
	if cpus <= 0 {
		return "", fmt.Errorf("cpusched: non-positive CPU count %d", cpus)
	}
	r, err := m.table.Admit(resv.AdmitRequest{
		User:      user,
		Bandwidth: units.Bandwidth(cpus),
		Window:    w,
	})
	if err != nil {
		return "", fmt.Errorf("cpusched: %w", err)
	}
	return r.Handle, nil
}

// Cancel withdraws a reservation.
func (m *Manager) Cancel(handle string) error { return m.table.Cancel(handle) }

// Valid reports whether handle names a granted CPU reservation active
// at the given instant — the HasValidCPUResv(RAR) predicate of
// Figure 6.
func (m *Manager) Valid(handle string, at time.Time) bool {
	return m.table.Valid(handle, at)
}

// ValidDuring reports whether handle is granted and covers the whole
// window (network reservations reference CPU reservations for their
// full duration).
func (m *Manager) ValidDuring(handle string, w units.Window) bool {
	r, ok := m.table.Lookup(handle)
	if !ok || r.Status != resv.Granted {
		return false
	}
	return !w.Start.Before(r.Window.Start) && !w.End.After(r.Window.End)
}

// Available returns how many CPUs remain free throughout w.
func (m *Manager) Available(w units.Window) int {
	return int(m.table.Available(w))
}
