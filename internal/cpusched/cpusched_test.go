package cpusched

import (
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

var (
	t0      = time.Date(2001, 8, 7, 9, 0, 0, 0, time.UTC)
	charlie = identity.NewDN("Grid", "DomainC", "Charlie")
)

func win(startMin, durMin int) units.Window {
	return units.NewWindow(t0.Add(time.Duration(startMin)*time.Minute), time.Duration(durMin)*time.Minute)
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager("C", 0); err == nil {
		t.Fatal("zero CPUs accepted")
	}
	m, err := NewManager("C", 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != 16 || m.Domain() != "C" {
		t.Errorf("capacity=%d domain=%s", m.Capacity(), m.Domain())
	}
}

func TestReserveAndValidate(t *testing.T) {
	m, err := NewManager("C", 8)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Reserve(charlie, 4, win(0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid(h, t0.Add(30*time.Minute)) {
		t.Error("active reservation invalid")
	}
	if m.Valid(h, t0.Add(2*time.Hour)) {
		t.Error("expired reservation valid")
	}
	if m.Valid("bogus", t0) {
		t.Error("unknown handle valid")
	}
	if !m.ValidDuring(h, win(10, 20)) {
		t.Error("covered window invalid")
	}
	if m.ValidDuring(h, win(30, 60)) {
		t.Error("partially covered window valid")
	}
}

func TestCPUAdmissionControl(t *testing.T) {
	m, err := NewManager("C", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reserve(charlie, 8, win(0, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reserve(charlie, 1, win(30, 60)); err == nil {
		t.Error("over-committed CPU pool")
	}
	if _, err := m.Reserve(charlie, 8, win(60, 60)); err != nil {
		t.Errorf("disjoint window rejected: %v", err)
	}
	if got := m.Available(win(0, 60)); got != 0 {
		t.Errorf("available = %d", got)
	}
	if _, err := m.Reserve(charlie, 0, win(0, 10)); err == nil {
		t.Error("zero CPUs accepted")
	}
}

func TestCancelFreesCPUs(t *testing.T) {
	m, err := NewManager("C", 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Reserve(charlie, 4, win(0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(h); err != nil {
		t.Fatal(err)
	}
	if m.Valid(h, t0.Add(time.Minute)) {
		t.Error("cancelled handle still valid")
	}
	if _, err := m.Reserve(charlie, 4, win(0, 60)); err != nil {
		t.Errorf("capacity not freed: %v", err)
	}
}
