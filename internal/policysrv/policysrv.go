// Package policysrv implements the policy server entity of §5: "we
// introduce an entity called a policy server that encapsulates a BB's
// admission control procedures. When a request comes in, it is
// forwarded to the policy server which executes local policy and
// passes back a result ('yes' or 'no') and a modified request."
//
// The server composes three authorization sources, mirroring the
// paper's list: validated group-membership assertions (via group
// servers), cryptographically signed capabilities (via capability
// chain verification against trusted CAS keys), and the local
// attribute-value policy (internal/policy). On a grant it returns the
// domain-wide additions §6.1 describes: extra constraints, cost
// offers, and traffic-engineering parameters for downstream domains.
package policysrv

import (
	"crypto/ecdsa"
	"fmt"
	"sync"
	"time"

	"e2eqos/internal/group"
	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
	"e2eqos/internal/policy"
	"e2eqos/internal/units"
)

// Query is the question a bandwidth broker puts to its policy server.
type Query struct {
	// User is the authenticated requestor.
	User identity.DN
	// Bandwidth / Window describe the reservation.
	Bandwidth units.Bandwidth
	Window    units.Window
	// Available is the uncommitted capacity on the relevant aggregate.
	Available units.Bandwidth
	// SourceDomain / DestDomain are the end domains.
	SourceDomain string
	DestDomain   string
	// Assertions are unvalidated group claims carried in the request
	// ("I am a physicist").
	Assertions []string
	// Attestations are pre-validated group attestations propagated from
	// upstream hops.
	Attestations []*group.Attestation
	// CapabilityChain is the (possibly delegated) capability
	// certificate chain accompanying the request.
	CapabilityChain pki.CapabilityChain
	// RequireRestriction scopes capability verification to this RAR.
	RequireRestriction string
	// LinkedReservations maps resource type -> verified handle present.
	LinkedReservations map[string]bool
}

// Result is the policy server's answer: the decision plus the
// modifications to apply to the outgoing request.
type Result struct {
	Decision policy.Decision
	// ValidatedGroups are the memberships that survived validation.
	ValidatedGroups []string
	// Capabilities are the verified capability grants.
	Capabilities []policy.Capability
	// Additions are domain-wide attributes to append to the request
	// (cost offers, TE parameters, peering requirements).
	Additions map[string]string
}

// Server is a policy decision point for one domain.
type Server struct {
	domain string
	pol    *policy.Policy

	mu sync.RWMutex
	// groupServers maps group name -> the server trusted to accredit it.
	groupServers map[string]*group.Server
	// casKeys maps community -> trusted CAS public key.
	casKeys map[string]*ecdsa.PublicKey
	// additions are static domain-wide attributes.
	additions map[string]string
	// nowFn is injectable for tests.
	nowFn func() time.Time
}

// New creates a policy server for domain evaluating pol.
func New(domain string, pol *policy.Policy) *Server {
	return &Server{
		domain:       domain,
		pol:          pol,
		groupServers: make(map[string]*group.Server),
		casKeys:      make(map[string]*ecdsa.PublicKey),
		additions:    make(map[string]string),
		nowFn:        time.Now,
	}
}

// Domain returns the owning domain name.
func (s *Server) Domain() string { return s.domain }

// SetPolicy swaps the active policy.
func (s *Server) SetPolicy(pol *policy.Policy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pol = pol
}

// TrustGroupServer delegates accreditation of groupName to gs.
func (s *Server) TrustGroupServer(groupName string, gs *group.Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groupServers[groupName] = gs
}

// TrustCAS pins the CAS public key for a community.
func (s *Server) TrustCAS(community string, key *ecdsa.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.casKeys[community] = key
}

// AddDomainInfo registers a static domain-wide addition propagated
// with every granted request.
func (s *Server) AddDomainInfo(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.additions[key] = value
}

// SetClock injects a time source (tests and simulations).
func (s *Server) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nowFn = now
}

// Decide validates the query's authorization material and evaluates
// local policy.
func (s *Server) Decide(q *Query) (*Result, error) {
	if q == nil {
		return nil, fmt.Errorf("policysrv: nil query")
	}
	s.mu.RLock()
	pol := s.pol
	nowFn := s.nowFn
	additions := make(map[string]string, len(s.additions))
	for k, v := range s.additions {
		additions[k] = v
	}
	s.mu.RUnlock()
	now := nowFn()

	res := &Result{Additions: additions}

	// 1. Validate group assertions with the delegated group servers.
	for _, g := range q.Assertions {
		s.mu.RLock()
		gs := s.groupServers[g]
		s.mu.RUnlock()
		if gs == nil {
			continue // no server trusted for this group: assertion ignored
		}
		if _, err := gs.Validate(q.User, g); err == nil {
			res.ValidatedGroups = append(res.ValidatedGroups, g)
		}
	}
	// 2. Accept upstream attestations from trusted group servers.
	for _, att := range q.Attestations {
		s.mu.RLock()
		gs := s.groupServers[att.Group]
		s.mu.RUnlock()
		if gs == nil {
			continue
		}
		if err := group.VerifyAttestation(att, gs.Key(), now); err == nil && att.User == q.User {
			res.ValidatedGroups = appendUnique(res.ValidatedGroups, att.Group)
		}
	}
	// 3. Verify the capability chain against trusted CAS keys.
	if len(q.CapabilityChain) > 0 {
		community := q.CapabilityChain[0].Attrs.Community
		s.mu.RLock()
		casKey := s.casKeys[community]
		s.mu.RUnlock()
		if casKey != nil {
			attrs, err := q.CapabilityChain.Verify(pki.VerifyOptions{
				CASKey:             casKey,
				At:                 now,
				RequireRestriction: q.RequireRestriction,
			})
			if err == nil {
				res.Capabilities = append(res.Capabilities, policy.Capability{
					Community: attrs.Community,
					Names:     attrs.Capabilities,
				})
			}
		}
	}

	// 4. Evaluate local policy over the validated facts.
	req := &policy.Request{
		User:               q.User,
		Groups:             res.ValidatedGroups,
		Capabilities:       res.Capabilities,
		Bandwidth:          q.Bandwidth,
		Available:          q.Available,
		Time:               effectiveTime(q, now),
		SourceDomain:       q.SourceDomain,
		DestDomain:         q.DestDomain,
		LinkedReservations: q.LinkedReservations,
	}
	res.Decision = pol.Evaluate(req)
	return res, nil
}

// effectiveTime evaluates time-of-day policy at the reservation start
// when a window is supplied, else at the current time.
func effectiveTime(q *Query, now time.Time) time.Time {
	if q.Window.Valid() {
		return q.Window.Start
	}
	return now
}

func appendUnique(list []string, v string) []string {
	for _, have := range list {
		if have == v {
			return list
		}
	}
	return append(list, v)
}
