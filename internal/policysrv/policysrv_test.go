package policysrv

import (
	"testing"
	"time"

	"e2eqos/internal/cas"
	"e2eqos/internal/group"
	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
	"e2eqos/internal/policy"
	"e2eqos/internal/units"
)

var (
	alice = policy.AliceDN
	bob   = policy.BobDN
)

func fixedClock() func() time.Time {
	at := time.Date(2001, 8, 7, 12, 0, 0, 0, time.UTC) // business hours
	return func() time.Time { return at }
}

func window(hour int) units.Window {
	return units.NewWindow(time.Date(2001, 8, 7, hour, 0, 0, 0, time.UTC), time.Hour)
}

func TestDecideFigure6DomainA(t *testing.T) {
	s := New("DomainA", policy.Figure6PolicyA)
	s.SetClock(fixedClock())
	res, err := s.Decide(&Query{
		User:      alice,
		Bandwidth: 10 * units.Mbps,
		Available: 100 * units.Mbps,
		Window:    window(12),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Granted() {
		t.Errorf("Alice 10Mb/s at noon denied: %s", res.Decision.Reason)
	}
	res, _ = s.Decide(&Query{User: alice, Bandwidth: 50 * units.Mbps, Available: 100 * units.Mbps, Window: window(12)})
	if res.Decision.Granted() {
		t.Error("Alice 50Mb/s during business hours granted")
	}
	res, _ = s.Decide(&Query{User: alice, Bandwidth: 50 * units.Mbps, Available: 100 * units.Mbps, Window: window(22)})
	if !res.Decision.Granted() {
		t.Errorf("Alice 50Mb/s at night denied: %s", res.Decision.Reason)
	}
	res, _ = s.Decide(&Query{User: bob, Bandwidth: 1 * units.Mbps, Available: 100 * units.Mbps, Window: window(12)})
	if res.Decision.Granted() {
		t.Error("Bob granted in domain A")
	}
}

func TestDecideValidatesAssertions(t *testing.T) {
	gsKey, err := identity.GenerateKeyPair(identity.NewDN("CERN", "", "vo"))
	if err != nil {
		t.Fatal(err)
	}
	gs := group.NewServer(gsKey, time.Hour)
	gs.AddMember("ATLAS experiment", alice)

	s := New("DomainB", policy.Figure6PolicyB)
	s.TrustGroupServer("ATLAS experiment", gs)

	q := &Query{User: alice, Bandwidth: 10 * units.Mbps, Assertions: []string{"ATLAS experiment"}}
	res, err := s.Decide(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Granted() {
		t.Errorf("validated ATLAS member denied: %s", res.Decision.Reason)
	}
	if len(res.ValidatedGroups) != 1 || res.ValidatedGroups[0] != "ATLAS experiment" {
		t.Errorf("validated groups = %v", res.ValidatedGroups)
	}

	// Bob asserts the same group but is not a member: assertion ignored.
	res, _ = s.Decide(&Query{User: bob, Bandwidth: 10 * units.Mbps, Assertions: []string{"ATLAS experiment"}})
	if res.Decision.Granted() {
		t.Error("false assertion led to grant")
	}

	// Assertion for a group with no trusted server is ignored.
	res, _ = s.Decide(&Query{User: alice, Bandwidth: 10 * units.Mbps, Assertions: []string{"unknown-group"}})
	if res.Decision.Granted() {
		t.Error("unvalidatable assertion led to grant")
	}
}

func TestDecideAcceptsUpstreamAttestations(t *testing.T) {
	gsKey, err := identity.GenerateKeyPair(identity.NewDN("CERN", "", "vo"))
	if err != nil {
		t.Fatal(err)
	}
	gs := group.NewServer(gsKey, time.Hour)
	gs.AddMember("ATLAS experiment", alice)
	att, err := gs.Validate(alice, "ATLAS experiment")
	if err != nil {
		t.Fatal(err)
	}

	s := New("DomainB", policy.Figure6PolicyB)
	s.TrustGroupServer("ATLAS experiment", gs)
	res, err := s.Decide(&Query{User: alice, Bandwidth: 5 * units.Mbps, Attestations: []*group.Attestation{att}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Granted() {
		t.Errorf("attested member denied: %s", res.Decision.Reason)
	}

	// An attestation naming a different user must not help.
	res, _ = s.Decide(&Query{User: bob, Bandwidth: 5 * units.Mbps, Attestations: []*group.Attestation{att}})
	if res.Decision.Granted() {
		t.Error("attestation for another user led to grant")
	}
}

func TestDecideVerifiesCapabilityChain(t *testing.T) {
	casKey, err := identity.GenerateKeyPair(identity.NewDN("ESnet", "", "CAS"))
	if err != nil {
		t.Fatal(err)
	}
	casSrv := cas.NewServer(casKey, "ESnet", time.Hour)
	casSrv.Grant(alice, "network-reservation")
	cred, err := casSrv.Login(alice)
	if err != nil {
		t.Fatal(err)
	}

	s := New("DomainB", policy.Figure6PolicyB)
	s.TrustCAS("ESnet", casSrv.Key().Public())
	res, err := s.Decide(&Query{
		User:            alice,
		Bandwidth:       10 * units.Mbps,
		CapabilityChain: pki.CapabilityChain{cred.Certificate},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Granted() {
		t.Errorf("ESnet capability holder denied: %s", res.Decision.Reason)
	}
	if len(res.Capabilities) != 1 || res.Capabilities[0].Community != "ESnet" {
		t.Errorf("capabilities = %+v", res.Capabilities)
	}

	// Without a trusted CAS key the chain is ignored.
	s2 := New("DomainB", policy.Figure6PolicyB)
	res, _ = s2.Decide(&Query{User: alice, Bandwidth: 10 * units.Mbps, CapabilityChain: pki.CapabilityChain{cred.Certificate}})
	if res.Decision.Granted() {
		t.Error("capability from untrusted CAS led to grant")
	}
}

func TestDecideLinkedReservationsFigure6C(t *testing.T) {
	casKey, err := identity.GenerateKeyPair(identity.NewDN("ESnet", "", "CAS"))
	if err != nil {
		t.Fatal(err)
	}
	casSrv := cas.NewServer(casKey, "ESnet", time.Hour)
	casSrv.Grant(alice, "network-reservation")
	cred, err := casSrv.Login(alice)
	if err != nil {
		t.Fatal(err)
	}

	s := New("DomainC", policy.Figure6PolicyC)
	s.TrustCAS("ESnet", casSrv.Key().Public())

	base := Query{
		User:            alice,
		Bandwidth:       10 * units.Mbps,
		CapabilityChain: pki.CapabilityChain{cred.Certificate},
	}
	q := base
	q.LinkedReservations = map[string]bool{"cpu": true}
	res, err := s.Decide(&q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Granted() {
		t.Errorf("capability + CPU reservation denied: %s", res.Decision.Reason)
	}
	res, _ = s.Decide(&base) // no CPU reservation
	if res.Decision.Granted() {
		t.Error(">5Mb/s without CPU reservation granted")
	}
	small := base
	small.Bandwidth = 4 * units.Mbps
	small.CapabilityChain = nil
	res, _ = s.Decide(&small)
	if !res.Decision.Granted() {
		t.Errorf("<5Mb/s denied: %s", res.Decision.Reason)
	}
}

func TestDomainAdditionsPropagate(t *testing.T) {
	s := New("DomainA", policy.MustParse("t", "allow"))
	s.AddDomainInfo("te.shaping", "token-bucket")
	s.AddDomainInfo("cost.offer", "0.02/GB")
	res, err := s.Decide(&Query{User: alice, Bandwidth: units.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if res.Additions["te.shaping"] != "token-bucket" || res.Additions["cost.offer"] != "0.02/GB" {
		t.Errorf("additions = %v", res.Additions)
	}
}

func TestDecideNilQuery(t *testing.T) {
	s := New("DomainA", policy.MustParse("t", "allow"))
	if _, err := s.Decide(nil); err == nil {
		t.Fatal("nil query accepted")
	}
}

func TestSetPolicySwaps(t *testing.T) {
	s := New("DomainA", policy.MustParse("t", "deny"))
	res, _ := s.Decide(&Query{User: alice, Bandwidth: units.Mbps})
	if res.Decision.Granted() {
		t.Fatal("deny policy granted")
	}
	s.SetPolicy(policy.MustParse("t", "allow"))
	res, _ = s.Decide(&Query{User: alice, Bandwidth: units.Mbps})
	if !res.Decision.Granted() {
		t.Fatal("allow policy denied")
	}
}

func TestWindowStartGovernsTimeOfDay(t *testing.T) {
	// Policy allows only business hours; the decision must be based on
	// the reservation window start, not the wall clock.
	s := New("DomainA", policy.MustParse("t", `
allow if time within 08:00..17:00
deny
`))
	s.SetClock(func() time.Time { return time.Date(2001, 8, 7, 23, 0, 0, 0, time.UTC) })
	res, err := s.Decide(&Query{User: alice, Bandwidth: units.Mbps, Window: window(12)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Granted() {
		t.Error("daytime reservation denied because of nighttime wall clock")
	}
}
