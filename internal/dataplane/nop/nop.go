// Package nop provides a data plane that enforces nothing: profiles
// are accepted and forgotten, every offered byte passes. It exists for
// benchmarks and tests that exercise only the control plane and must
// not pay for enforcement bookkeeping.
package nop

import (
	"time"

	"e2eqos/internal/dataplane"
	"e2eqos/internal/sla"
)

// Plane is the no-op backend. The zero value is ready to use and safe
// for concurrent use (it holds no state at all).
type Plane struct{}

var _ dataplane.DataPlane = Plane{}

// New returns a no-op data plane.
func New() Plane { return Plane{} }

// Name identifies the backend.
func (Plane) Name() string { return "nop" }

// InstallProfile discards the profile.
func (Plane) InstallProfile(string, sla.TrafficProfile) {}

// RemoveProfile does nothing.
func (Plane) RemoveProfile(string) {}

// SetAggregate discards the aggregate.
func (Plane) SetAggregate(sla.TrafficProfile) {}

// Aggregate reports an empty profile.
func (Plane) Aggregate() sla.TrafficProfile { return sla.TrafficProfile{} }

// Mark passes every byte as premium: no enforcement.
func (Plane) Mark(_ string, bytes int64, _ time.Duration) int64 { return bytes }

// Police passes every byte: no enforcement.
func (Plane) Police(premium int64, _ time.Duration) int64 { return premium }

// FlowStats reports no flow state.
func (Plane) FlowStats(string) (dataplane.FlowStats, bool) { return dataplane.FlowStats{}, false }

// ClassStats reports zero counters.
func (Plane) ClassStats() dataplane.ClassStats { return dataplane.ClassStats{} }
