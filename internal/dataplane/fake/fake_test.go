package fake

import (
	"sync"
	"testing"
	"time"

	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

func profile(rate units.Bandwidth, burst int64) sla.TrafficProfile {
	return sla.TrafficProfile{Rate: rate, BucketBytes: burst}
}

func TestMarkRespectsProfile(t *testing.T) {
	p := New()
	p.InstallProfile("alice", profile(8*units.Mbps, 10_000)) // 1 MB/s, 10 KB burst

	// First second: burst + 0 refill (meter primes at first use).
	if got := p.Mark("alice", 10_000, 0); got != 10_000 {
		t.Fatalf("burst mark = %d, want 10000", got)
	}
	// Offer 2 MB over the next second: only ~1 MB conforms.
	got := p.Mark("alice", 2_000_000, time.Second)
	if got < 999_000 || got > 1_001_000 {
		t.Fatalf("sustained mark = %d, want ~1e6", got)
	}
	st, ok := p.FlowStats("alice")
	if !ok || !st.Installed {
		t.Fatalf("FlowStats missing for installed flow")
	}
	if st.PremiumBytes != 10_000+got {
		t.Fatalf("premium counter = %d, want %d", st.PremiumBytes, 10_000+got)
	}
	if st.DemotedBytes != 2_000_000-got {
		t.Fatalf("demoted counter = %d, want %d", st.DemotedBytes, 2_000_000-got)
	}
}

func TestMarkUnreservedFlowIsBestEffort(t *testing.T) {
	p := New()
	if got := p.Mark("mallory", 1_000_000, 0); got != 0 {
		t.Fatalf("unreserved flow marked %d premium bytes", got)
	}
	if _, ok := p.FlowStats("mallory"); ok {
		t.Fatalf("FlowStats invented state for unreserved flow")
	}
}

func TestRemoveProfileStopsMarking(t *testing.T) {
	p := New()
	p.InstallProfile("alice", profile(8*units.Mbps, 10_000))
	p.RemoveProfile("alice")
	if got := p.Mark("alice", 10_000, 0); got != 0 {
		t.Fatalf("removed flow still marked %d bytes", got)
	}
	c := p.CallCounts()
	if c.Installs != 1 || c.Removes != 1 {
		t.Fatalf("call counts = %+v, want 1 install / 1 remove", c)
	}
}

func TestPoliceAgainstAggregate(t *testing.T) {
	p := New()
	// No aggregate set: everything is excess.
	if got := p.Police(5_000, 0); got != 0 {
		t.Fatalf("zero aggregate passed %d bytes", got)
	}
	p.SetAggregate(profile(8*units.Mbps, 10_000))
	if got := p.Police(10_000, time.Second); got != 10_000 {
		t.Fatalf("burst police = %d, want 10000", got)
	}
	got := p.Police(3_000_000, 2*time.Second)
	if got < 999_000 || got > 1_001_000 {
		t.Fatalf("sustained police = %d, want ~1e6", got)
	}
	cs := p.ClassStats()
	if cs.PremiumBytes != 10_000+got {
		t.Fatalf("premium passed = %d, want %d", cs.PremiumBytes, 10_000+got)
	}
	wantExcess := 5_000 + (3_000_000 - got)
	if cs.ExcessPremiumBytes != wantExcess {
		t.Fatalf("excess = %d, want %d", cs.ExcessPremiumBytes, wantExcess)
	}
}

func TestReinstallResetsMeter(t *testing.T) {
	p := New()
	p.InstallProfile("alice", profile(8*units.Mbps, 10_000))
	p.Mark("alice", 10_000, 0) // drain burst
	p.InstallProfile("alice", profile(8*units.Mbps, 10_000))
	if got := p.Mark("alice", 10_000, 0); got != 10_000 {
		t.Fatalf("reinstall did not reset meter: mark = %d", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New()
	p.SetAggregate(profile(100*units.Mbps, 1_000_000))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			flow := string(rune('a' + g))
			for i := 0; i < 200; i++ {
				p.InstallProfile(flow, profile(units.Mbps, 10_000))
				p.Mark(flow, 1500, time.Duration(i)*time.Millisecond)
				p.Police(1500, time.Duration(i)*time.Millisecond)
				p.FlowStats(flow)
				p.ClassStats()
				if i%50 == 49 {
					p.RemoveProfile(flow)
				}
			}
		}(g)
	}
	wg.Wait()
}
