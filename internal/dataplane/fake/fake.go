// Package fake provides a counting data plane for tests and the
// large-scale scenario fleet. It enforces the same (r, b) token-bucket
// semantics as the packet simulator, but in closed form at byte
// granularity: marking or policing N bytes is O(1), independent of
// packet count, which is what makes 10^5–10^6 simulated users
// affordable. Every control-plane call is counted so tests can assert
// on broker behaviour without a network.
package fake

import (
	"sync"
	"time"

	"e2eqos/internal/dataplane"
	"e2eqos/internal/sla"
)

// bucket is a closed-form (r, b) token bucket at byte granularity.
type bucket struct {
	rate   float64 // bytes per second
	burst  float64 // bucket depth, bytes
	tokens float64
	last   time.Duration
	primed bool
}

func newBucket(p sla.TrafficProfile) *bucket {
	return &bucket{
		rate:   float64(p.Rate) / 8,
		burst:  float64(p.BucketBytes),
		tokens: float64(p.BucketBytes),
	}
}

// touch advances the bucket to virtual time now. Refill earned since
// the last call is credited in full: a take models traffic offered
// over the whole elapsed window, not at an instant, so conformance
// over the window is (residual tokens + rate·dt). The bucket-depth cap
// is applied to the residual carried forward, not to the in-window
// refill.
func (b *bucket) touch(now time.Duration) {
	if !b.primed {
		b.last = now
		b.primed = true
		return
	}
	if now <= b.last {
		return
	}
	b.tokens += (now - b.last).Seconds() * b.rate
	b.last = now
}

// take consumes up to bytes tokens for traffic offered over the window
// since the previous call, and returns how many it got.
func (b *bucket) take(bytes int64, now time.Duration) int64 {
	b.touch(now)
	got := float64(bytes)
	if got > b.tokens {
		got = b.tokens
	}
	if got < 0 {
		got = 0
	}
	b.tokens -= got
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	return int64(got)
}

type flowState struct {
	profile sla.TrafficProfile
	meter   *bucket
	premium int64
	demoted int64
}

// Calls counts control-plane operations against the plane.
type Calls struct {
	Installs      int64
	Removes       int64
	AggregateSets int64
}

// Plane is the counting fake backend. It is safe for concurrent use.
type Plane struct {
	mu    sync.Mutex
	flows map[string]*flowState
	agg   *bucket
	prof  sla.TrafficProfile
	stats dataplane.ClassStats
	calls Calls
}

var _ dataplane.DataPlane = (*Plane)(nil)

// New returns an empty fake plane with a zero aggregate (all premium
// traffic is excess until SetAggregate is called).
func New() *Plane {
	return &Plane{
		flows: make(map[string]*flowState),
		agg:   newBucket(sla.TrafficProfile{}),
	}
}

// Name identifies the backend.
func (p *Plane) Name() string { return "fake" }

// InstallProfile gives flow a premium profile, replacing (and
// resetting the meter of) any existing one.
func (p *Plane) InstallProfile(flow string, prof sla.TrafficProfile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls.Installs++
	p.flows[flow] = &flowState{profile: prof, meter: newBucket(prof)}
}

// RemoveProfile tears the flow's profile down.
func (p *Plane) RemoveProfile(flow string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls.Removes++
	delete(p.flows, flow)
}

// SetAggregate reconfigures the admitted aggregate.
func (p *Plane) SetAggregate(prof sla.TrafficProfile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls.AggregateSets++
	p.prof = prof
	p.agg = newBucket(prof)
}

// Aggregate returns the currently configured aggregate profile.
func (p *Plane) Aggregate() sla.TrafficProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prof
}

// Mark meters bytes of flow traffic in closed form against the flow's
// profile; unreserved flows mark nothing premium. The bytes are
// treated as offered over the window since the flow's previous Mark —
// call Mark with zero bytes at a window's start to open it (priming
// the meter) and with the accumulated bytes at its end.
func (p *Plane) Mark(flow string, bytes int64, now time.Duration) int64 {
	if bytes < 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fs, ok := p.flows[flow]
	if !ok {
		return 0
	}
	if bytes == 0 {
		fs.meter.touch(now)
		return 0
	}
	premium := fs.meter.take(bytes, now)
	fs.premium += premium
	fs.demoted += bytes - premium
	return premium
}

// Police meters premium bytes against the aggregate in closed form,
// with the same window semantics as Mark.
func (p *Plane) Police(premium int64, now time.Duration) int64 {
	if premium < 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if premium == 0 {
		p.agg.touch(now)
		return 0
	}
	passed := p.agg.take(premium, now)
	p.stats.PremiumBytes += passed
	p.stats.ExcessPremiumBytes += premium - passed
	return passed
}

// RecordBestEffort accounts best-effort bytes crossing the ingress
// (the policer forwards them untouched; the fake only counts them).
func (p *Plane) RecordBestEffort(bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.BestEffortBytes += bytes
}

// FlowStats returns the flow's marking counters.
func (p *Plane) FlowStats(flow string) (dataplane.FlowStats, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fs, ok := p.flows[flow]
	if !ok {
		return dataplane.FlowStats{}, false
	}
	return dataplane.FlowStats{
		Installed:    true,
		Profile:      fs.profile,
		PremiumBytes: fs.premium,
		DemotedBytes: fs.demoted,
	}, true
}

// ClassStats returns the aggregate byte accounting.
func (p *Plane) ClassStats() dataplane.ClassStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// CallCounts returns how many control-plane operations the plane has
// seen, for tests asserting on broker behaviour.
func (p *Plane) CallCounts() Calls {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// InstalledFlows returns how many flows currently hold a profile.
func (p *Plane) InstalledFlows() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.flows)
}
