// Package dataplane defines the contract between the bandwidth broker
// (the per-domain control plane) and whatever enforces its decisions
// in the forwarding path. The paper's architecture needs exactly two
// per-domain enforcement hooks: per-flow token-bucket marking at the
// first-hop edge device, and per-aggregate policing at the domain
// ingress ("Domain C polices traffic based on traffic aggregates, not
// on individual users"). Everything the broker does to the network
// goes through this interface; the broker itself never touches a
// concrete simulator or device driver.
//
// Backends live in sub-packages, one package per backend:
//
//   - netsimdp wraps the packet-level netsim simulator (the default in
//     experiment worlds);
//   - fake is a thread-safe counting backend with closed-form
//     token-bucket math, for tests and the large-scale scenario fleet;
//   - nop enforces nothing and counts nothing, for benchmarks that
//     only exercise the control plane.
//
// All implementations must be safe for concurrent use: broker
// goroutines install and remove profiles while traffic (real or
// modelled) is being marked and policed.
package dataplane

import (
	"time"

	"e2eqos/internal/sla"
)

// FlowStats is the per-flow outcome of edge marking.
type FlowStats struct {
	// Installed reports whether the flow currently has a profile.
	Installed bool
	// Profile is the installed token-bucket profile.
	Profile sla.TrafficProfile
	// PremiumBytes counts bytes that left the edge marked premium.
	PremiumBytes int64
	// DemotedBytes counts bytes demoted to best effort for exceeding
	// the profile.
	DemotedBytes int64
}

// ClassStats is the per-class byte accounting at the domain's
// aggregate policer.
type ClassStats struct {
	// PremiumBytes counts premium bytes that conformed to the
	// aggregate profile and passed the policer.
	PremiumBytes int64
	// BestEffortBytes counts best-effort bytes forwarded, including
	// premium excess remarked down.
	BestEffortBytes int64
	// ExcessPremiumBytes counts premium bytes offered beyond the
	// aggregate profile, whatever their excess treatment.
	ExcessPremiumBytes int64
}

// DataPlane is the broker-facing enforcement interface. Flow names
// are opaque to the data plane; the broker uses RAR identifiers.
//
// Mark and Police are the decision entry points: they meter offered
// bytes at a given virtual time against the same state the packet
// path (if any) uses, and return how many bytes survive. Virtual time
// must be monotone per plane; meters refill from the deltas.
type DataPlane interface {
	// Name identifies the backend (for reports and logs).
	Name() string

	// InstallProfile gives flow a premium token-bucket profile — what
	// the broker does to the edge device when a reservation is
	// granted. Re-installing replaces the profile and resets its meter.
	InstallProfile(flow string, p sla.TrafficProfile)

	// RemoveProfile tears the flow's profile down. Removing an
	// unknown flow is a no-op.
	RemoveProfile(flow string)

	// SetAggregate reconfigures the domain's admitted aggregate — what
	// the broker does to the ingress policer as reservations come and
	// go.
	SetAggregate(p sla.TrafficProfile)

	// Aggregate returns the currently configured aggregate profile.
	Aggregate() sla.TrafficProfile

	// Mark meters bytes of flow traffic offered at virtual time now
	// against the flow's profile and returns how many bytes leave the
	// edge marked premium; the rest ride best effort. Flows without an
	// installed profile mark nothing premium.
	Mark(flow string, bytes int64, now time.Duration) int64

	// Police meters premium bytes arriving at the domain ingress at
	// virtual time now against the aggregate profile and returns how
	// many bytes pass.
	Police(premium int64, now time.Duration) int64

	// FlowStats returns the flow's marking counters; ok is false if
	// the flow has no installed profile.
	FlowStats(flow string) (FlowStats, bool)

	// ClassStats returns the aggregate policer's byte accounting.
	ClassStats() ClassStats
}
