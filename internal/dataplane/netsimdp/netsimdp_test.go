package netsimdp

import (
	"testing"
	"time"

	"e2eqos/internal/dataplane"
	"e2eqos/internal/dsim"
	"e2eqos/internal/netsim"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

func profile(rate units.Bandwidth, burst int64) sla.TrafficProfile {
	return sla.TrafficProfile{Rate: rate, BucketBytes: burst}
}

// drop is a packet sink that discards everything.
type drop struct{}

func (drop) Receive(*netsim.Packet) {}

func TestUnattachedPlanePassesThrough(t *testing.T) {
	p := New()
	p.InstallProfile("alice", profile(units.Mbps, 10_000))
	if got := p.Mark("alice", 123_456, 0); got != 123_456 {
		t.Fatalf("unattached Mark = %d, want pass-through", got)
	}
	if got := p.Police(7_890, 0); got != 7_890 {
		t.Fatalf("unattached Police = %d, want pass-through", got)
	}
	st, ok := p.FlowStats("alice")
	if !ok || !st.Installed {
		t.Fatalf("unattached plane forgot the installed profile")
	}
	if cs := p.ClassStats(); cs != (dataplane.ClassStats{}) {
		t.Fatalf("unattached ClassStats = %+v, want zero", cs)
	}
}

func TestAttachEdgeReplaysProfiles(t *testing.T) {
	sim := dsim.New()
	p := New()
	p.InstallProfile("alice", profile(8*units.Mbps, 10_000))

	edge := netsim.NewEdgeMarker(sim, drop{})
	p.AttachEdge(edge)
	if !edge.Installed("alice") {
		t.Fatalf("profile not replayed onto late-attached edge")
	}
	// Now decisions go through the real meter: burst passes, the rest
	// is demoted.
	if got := p.Mark("alice", 10_000, 0); got != 10_000 {
		t.Fatalf("burst mark = %d, want 10000", got)
	}
	// The packet meter is instantaneous, so sustained load must be
	// offered spread over time: 20 KB every 10 ms for one second
	// against a 1 MB/s profile passes ~10 KB per step.
	var got int64
	for i := 1; i <= 100; i++ {
		got += p.Mark("alice", 20_000, time.Duration(i)*10*time.Millisecond)
	}
	if got < 950_000 || got > 1_050_000 {
		t.Fatalf("sustained mark = %d, want ~1e6", got)
	}
	st, ok := p.FlowStats("alice")
	if !ok || st.PremiumBytes != 10_000+got {
		t.Fatalf("FlowStats = %+v ok=%v, want premium %d", st, ok, 10_000+got)
	}
	p.RemoveProfile("alice")
	if edge.Installed("alice") {
		t.Fatalf("RemoveProfile did not reach the edge device")
	}
}

func TestAttachPolicerPushesAggregate(t *testing.T) {
	sim := dsim.New()
	p := New()
	p.SetAggregate(profile(8*units.Mbps, 10_000))

	policer := netsim.NewPolicer(sim, profile(0, 0), sla.Drop, drop{})
	p.AttachPolicer(policer)
	if got := policer.AggregateProfile().Rate; got != 8*units.Mbps {
		t.Fatalf("aggregate not pushed on attach: rate = %v", got)
	}
	if got := p.Police(10_000, 0); got != 10_000 {
		t.Fatalf("burst police = %d, want 10000", got)
	}
	var got, offered int64
	for i := 1; i <= 100; i++ {
		offered += 30_000
		got += p.Police(30_000, time.Duration(i)*10*time.Millisecond)
	}
	if got < 950_000 || got > 1_050_000 {
		t.Fatalf("sustained police = %d, want ~1e6", got)
	}
	cs := p.ClassStats()
	if cs.PremiumBytes != 10_000+got {
		t.Fatalf("ClassStats premium = %d, want %d", cs.PremiumBytes, 10_000+got)
	}
	if cs.ExcessPremiumBytes != offered-got {
		t.Fatalf("ClassStats excess = %d, want %d", cs.ExcessPremiumBytes, offered-got)
	}
}

func TestSetAggregateReachesAttachedPolicer(t *testing.T) {
	sim := dsim.New()
	p := New()
	policer := netsim.NewPolicer(sim, profile(0, 0), sla.Drop, drop{})
	p.AttachPolicer(policer)
	p.SetAggregate(profile(4*units.Mbps, 30_000))
	if got := policer.AggregateProfile(); got.Rate != 4*units.Mbps || got.BucketBytes != 30_000 {
		t.Fatalf("policer profile = %+v, want 4Mbps/30000", got)
	}
	if got := p.Aggregate(); got.Rate != 4*units.Mbps {
		t.Fatalf("Aggregate() = %+v", got)
	}
}
