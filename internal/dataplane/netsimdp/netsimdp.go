// Package netsimdp adapts the packet-level netsim simulator to the
// dataplane interface. It is the default backend in experiment worlds:
// the broker installs profiles through the interface, and experiments
// that want packet-level behaviour attach a concrete edge marker and
// ingress policer to the plane (usually via World.NetsimPlane).
//
// A plane with no devices attached enforces nothing — profiles are
// remembered so they can be pushed when a device is attached later,
// and Mark/Police pass everything through. This mirrors the previous
// behaviour where a World without an attached simulator did no
// enforcement.
package netsimdp

import (
	"sync"
	"time"

	"e2eqos/internal/dataplane"
	"e2eqos/internal/netsim"
	"e2eqos/internal/sla"
)

// DefaultPacketBytes is the packet size used to quantise byte-level
// Mark/Police decisions against the packet simulator's meters.
const DefaultPacketBytes = 1250

// Plane wraps a netsim edge marker and ingress policer. The zero
// value is usable (unattached); it is safe for concurrent use.
type Plane struct {
	mu      sync.Mutex
	edge    *netsim.EdgeMarker
	policer *netsim.Policer
	// profiles mirrors installed flow profiles so a late-attached edge
	// device receives them.
	profiles map[string]sla.TrafficProfile
	agg      sla.TrafficProfile
	aggSet   bool
	// PacketBytes quantises Mark/Police decisions; zero means
	// DefaultPacketBytes.
	PacketBytes int
}

var _ dataplane.DataPlane = (*Plane)(nil)

// New returns an unattached plane.
func New() *Plane { return &Plane{} }

// Name identifies the backend.
func (p *Plane) Name() string { return "netsim" }

// AttachEdge wires the edge marker into the plane and replays any
// profiles installed before attachment.
func (p *Plane) AttachEdge(edge *netsim.EdgeMarker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.edge = edge
	if edge == nil {
		return
	}
	for flow, prof := range p.profiles {
		edge.InstallReservation(netsim.FlowID(flow), prof)
	}
}

// AttachPolicer wires the ingress policer into the plane and pushes
// the current aggregate if one was set before attachment.
func (p *Plane) AttachPolicer(policer *netsim.Policer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.policer = policer
	if policer != nil && p.aggSet {
		policer.SetAggregateRate(p.agg.Rate, p.agg.BucketBytes)
	}
}

// Edge returns the attached edge marker (nil if none).
func (p *Plane) Edge() *netsim.EdgeMarker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.edge
}

// Policer returns the attached policer (nil if none).
func (p *Plane) Policer() *netsim.Policer {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.policer
}

// InstallProfile installs the flow's premium profile on the edge
// device (and remembers it for late attachment).
func (p *Plane) InstallProfile(flow string, prof sla.TrafficProfile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.profiles == nil {
		p.profiles = make(map[string]sla.TrafficProfile)
	}
	p.profiles[flow] = prof
	if p.edge != nil {
		p.edge.InstallReservation(netsim.FlowID(flow), prof)
	}
}

// RemoveProfile tears the flow's profile down.
func (p *Plane) RemoveProfile(flow string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.profiles, flow)
	if p.edge != nil {
		p.edge.RemoveReservation(netsim.FlowID(flow))
	}
}

// SetAggregate pushes the admitted aggregate to the policer.
func (p *Plane) SetAggregate(prof sla.TrafficProfile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.agg, p.aggSet = prof, true
	if p.policer != nil {
		p.policer.SetAggregateRate(prof.Rate, prof.BucketBytes)
	}
}

// Aggregate returns the last aggregate pushed through the plane.
func (p *Plane) Aggregate() sla.TrafficProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.agg
}

func (p *Plane) pktSize() int {
	if p.PacketBytes > 0 {
		return p.PacketBytes
	}
	return DefaultPacketBytes
}

// Mark meters bytes of flow traffic against the edge device's per-flow
// meter. With no edge attached, everything passes unenforced.
func (p *Plane) Mark(flow string, bytes int64, now time.Duration) int64 {
	p.mu.Lock()
	edge, size := p.edge, p.pktSize()
	p.mu.Unlock()
	if edge == nil {
		return bytes
	}
	return edge.MarkBytes(netsim.FlowID(flow), bytes, size, now)
}

// Police meters premium bytes against the policer's aggregate meter.
// With no policer attached, everything passes unenforced.
func (p *Plane) Police(premium int64, now time.Duration) int64 {
	p.mu.Lock()
	policer, size := p.policer, p.pktSize()
	p.mu.Unlock()
	if policer == nil {
		return premium
	}
	return policer.PoliceBytes(premium, size, now)
}

// FlowStats returns the edge device's per-flow marking counters. With
// no edge attached, it reports whether a profile is installed with
// zero counters.
func (p *Plane) FlowStats(flow string) (dataplane.FlowStats, bool) {
	p.mu.Lock()
	edge := p.edge
	prof, remembered := p.profiles[flow]
	p.mu.Unlock()
	if edge == nil {
		if !remembered {
			return dataplane.FlowStats{}, false
		}
		return dataplane.FlowStats{Installed: true, Profile: prof}, true
	}
	st := edge.FlowStats(netsim.FlowID(flow))
	if !st.Installed {
		return dataplane.FlowStats{}, false
	}
	return dataplane.FlowStats{
		Installed:    true,
		Profile:      st.Profile,
		PremiumBytes: st.PremiumBytes,
		DemotedBytes: st.DemotedBytes,
	}, true
}

// ClassStats returns the policer's byte accounting (zero when no
// policer is attached).
func (p *Plane) ClassStats() dataplane.ClassStats {
	p.mu.Lock()
	policer := p.policer
	p.mu.Unlock()
	if policer == nil {
		return dataplane.ClassStats{}
	}
	t := policer.Totals()
	return dataplane.ClassStats{
		PremiumBytes:       t.PremiumPassedBytes,
		BestEffortBytes:    t.BestEffortBytes,
		ExcessPremiumBytes: t.ExcessPremiumBytes,
	}
}
