// Package sla models the service level agreements that regulate
// traffic between peered administrative domains and the service level
// specifications (SLS) that express their QoS parameters. In the
// paper's architecture, "a specific contract between peered domains
// comes into place, used by BBs as input for their admission control
// procedures", and "end-to-end guarantees can then be built by a chain
// of SLSs".
package sla

import (
	"fmt"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// ExcessTreatment says what an ingress domain does with traffic beyond
// the contracted profile, one of the SLS parameters §6.1 lists
// ("parameters for treatment of excess traffic").
type ExcessTreatment int

// Excess-traffic treatments.
const (
	// Drop discards out-of-profile packets at the ingress policer.
	Drop ExcessTreatment = iota
	// Remark demotes out-of-profile packets to best effort.
	Remark
	// Shape delays out-of-profile packets until they conform.
	Shape
)

func (e ExcessTreatment) String() string {
	switch e {
	case Drop:
		return "drop"
	case Remark:
		return "remark"
	case Shape:
		return "shape"
	default:
		return fmt.Sprintf("ExcessTreatment(%d)", int(e))
	}
}

// TrafficProfile is a token-bucket traffic specification: the classic
// (r, b) pair plus a peak rate, matching what DiffServ edge policers
// implement.
type TrafficProfile struct {
	// Rate is the sustained token rate.
	Rate units.Bandwidth
	// BucketBytes is the burst allowance in bytes.
	BucketBytes int64
	// PeakRate bounds instantaneous sending; zero means unconstrained.
	PeakRate units.Bandwidth
}

// Valid reports whether the profile is internally consistent.
func (p TrafficProfile) Valid() bool {
	if p.Rate <= 0 || p.BucketBytes <= 0 {
		return false
	}
	if p.PeakRate != 0 && p.PeakRate < p.Rate {
		return false
	}
	return true
}

// SLS is a service level specification: the measurable QoS parameters
// an SLA demands for one service class.
type SLS struct {
	// Profile is the admitted aggregate traffic envelope.
	Profile TrafficProfile
	// Excess is the treatment of out-of-profile traffic.
	Excess ExcessTreatment
	// MaxLatency is the per-domain delay bound offered to conforming
	// traffic; zero means unspecified.
	MaxLatency time.Duration
	// Reliability is the contracted availability in [0,1]; zero means
	// unspecified ("reliability parameters expected for this service").
	Reliability float64
}

// Valid reports whether the SLS is well formed.
func (s SLS) Valid() bool {
	if !s.Profile.Valid() {
		return false
	}
	if s.Reliability < 0 || s.Reliability > 1 {
		return false
	}
	return s.MaxLatency >= 0
}

// SLA is the bilateral contract between two peered domains. It also
// carries the trust-establishment material the paper adds: "we extend
// this agreement by adding information to facilitate the trust
// relationship between two peered BBs. This information includes the
// certificates of the peered BBs as well as the certificate of the
// issuing certificate authority."
type SLA struct {
	// Upstream and Downstream name the peered domains; traffic covered
	// by this SLA flows Upstream -> Downstream.
	Upstream   string
	Downstream string
	// Service is the premium-class SLS for the aggregate.
	Service SLS
	// UpstreamBBDN / DownstreamBBDN identify the peered brokers.
	UpstreamBBDN   identity.DN
	DownstreamBBDN identity.DN
	// UpstreamBBCertDER / DownstreamBBCertDER pin the broker
	// certificates, and CACertDERs the issuing CAs, per §6.4.
	UpstreamBBCertDER   []byte
	DownstreamBBCertDER []byte
	CACertDERs          [][]byte
	// ValidFrom/ValidUntil bound the contract.
	ValidFrom  time.Time
	ValidUntil time.Time
}

// Valid reports structural validity at time t.
func (s *SLA) Valid(t time.Time) bool {
	if s == nil || !s.Service.Valid() {
		return false
	}
	if s.Upstream == "" || s.Downstream == "" || s.Upstream == s.Downstream {
		return false
	}
	if !s.ValidFrom.IsZero() && t.Before(s.ValidFrom) {
		return false
	}
	if !s.ValidUntil.IsZero() && !t.Before(s.ValidUntil) {
		return false
	}
	return true
}

// Conforms checks whether an additional reservation of rate bw on top
// of committed aggregate usage fits the SLA's contracted profile.
func (s *SLA) Conforms(committed, bw units.Bandwidth) error {
	if s == nil {
		return fmt.Errorf("sla: no SLA in place")
	}
	if bw <= 0 {
		return fmt.Errorf("sla: non-positive bandwidth %v", bw)
	}
	if committed+bw > s.Service.Profile.Rate {
		return fmt.Errorf("sla: aggregate %v + request %v exceeds contracted rate %v (%s -> %s)",
			committed, bw, s.Service.Profile.Rate, s.Upstream, s.Downstream)
	}
	return nil
}

// Chain is an ordered list of SLAs along an inter-domain path; the
// paper: "End-to-end guarantees can then be built by a chain of SLSs."
type Chain []*SLA

// EndToEndLatency sums the per-domain latency bounds; ok is false when
// any hop leaves its bound unspecified.
func (c Chain) EndToEndLatency() (time.Duration, bool) {
	var total time.Duration
	for _, s := range c {
		if s == nil || s.Service.MaxLatency == 0 {
			return 0, false
		}
		total += s.Service.MaxLatency
	}
	return total, true
}

// BottleneckRate returns the minimum contracted rate along the chain,
// the end-to-end aggregate capacity.
func (c Chain) BottleneckRate() units.Bandwidth {
	var min units.Bandwidth
	for i, s := range c {
		if s == nil {
			return 0
		}
		if i == 0 || s.Service.Profile.Rate < min {
			min = s.Service.Profile.Rate
		}
	}
	return min
}

// EndToEndReliability multiplies the per-domain reliabilities; ok is
// false when any hop leaves reliability unspecified.
func (c Chain) EndToEndReliability() (float64, bool) {
	rel := 1.0
	for _, s := range c {
		if s == nil || s.Service.Reliability == 0 {
			return 0, false
		}
		rel *= s.Service.Reliability
	}
	return rel, true
}

// Contiguous reports whether each SLA's downstream domain is the next
// SLA's upstream domain, i.e. the chain actually describes one path.
func (c Chain) Contiguous() bool {
	for i := 1; i < len(c); i++ {
		if c[i-1] == nil || c[i] == nil || c[i-1].Downstream != c[i].Upstream {
			return false
		}
	}
	return true
}
