package sla

import (
	"testing"
	"time"

	"e2eqos/internal/units"
)

func validProfile() TrafficProfile {
	return TrafficProfile{Rate: 100 * units.Mbps, BucketBytes: 64_000, PeakRate: 200 * units.Mbps}
}

func validSLA(up, down string) *SLA {
	return &SLA{
		Upstream:   up,
		Downstream: down,
		Service: SLS{
			Profile:     validProfile(),
			Excess:      Remark,
			MaxLatency:  5 * time.Millisecond,
			Reliability: 0.999,
		},
	}
}

func TestTrafficProfileValid(t *testing.T) {
	if !validProfile().Valid() {
		t.Fatal("valid profile rejected")
	}
	bad := []TrafficProfile{
		{Rate: 0, BucketBytes: 1},
		{Rate: 1, BucketBytes: 0},
		{Rate: -5, BucketBytes: 10},
		{Rate: 100, BucketBytes: 10, PeakRate: 50}, // peak below rate
	}
	for i, p := range bad {
		if p.Valid() {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
	}
	// Zero peak is unconstrained, hence valid.
	if !(TrafficProfile{Rate: 1, BucketBytes: 1}).Valid() {
		t.Error("zero peak must be valid")
	}
}

func TestSLSValid(t *testing.T) {
	s := SLS{Profile: validProfile(), Reliability: 0.99, MaxLatency: time.Millisecond}
	if !s.Valid() {
		t.Fatal("valid SLS rejected")
	}
	s.Reliability = 1.5
	if s.Valid() {
		t.Error("reliability > 1 accepted")
	}
	s.Reliability = -0.1
	if s.Valid() {
		t.Error("negative reliability accepted")
	}
	s = SLS{Profile: validProfile(), MaxLatency: -time.Millisecond}
	if s.Valid() {
		t.Error("negative latency accepted")
	}
}

func TestSLAValid(t *testing.T) {
	now := time.Now()
	s := validSLA("A", "B")
	if !s.Valid(now) {
		t.Fatal("valid SLA rejected")
	}
	if (&SLA{}).Valid(now) {
		t.Error("zero SLA accepted")
	}
	self := validSLA("A", "A")
	if self.Valid(now) {
		t.Error("self-peering accepted")
	}
	expired := validSLA("A", "B")
	expired.ValidUntil = now.Add(-time.Hour)
	if expired.Valid(now) {
		t.Error("expired SLA accepted")
	}
	future := validSLA("A", "B")
	future.ValidFrom = now.Add(time.Hour)
	if future.Valid(now) {
		t.Error("not-yet-valid SLA accepted")
	}
	var nilSLA *SLA
	if nilSLA.Valid(now) {
		t.Error("nil SLA accepted")
	}
}

func TestSLAConforms(t *testing.T) {
	s := validSLA("A", "B") // 100 Mb/s contracted
	if err := s.Conforms(0, 100*units.Mbps); err != nil {
		t.Errorf("exact fit rejected: %v", err)
	}
	if err := s.Conforms(90*units.Mbps, 10*units.Mbps); err != nil {
		t.Errorf("fill to capacity rejected: %v", err)
	}
	if err := s.Conforms(90*units.Mbps, 11*units.Mbps); err == nil {
		t.Error("over-commitment accepted")
	}
	if err := s.Conforms(0, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	var nilSLA *SLA
	if err := nilSLA.Conforms(0, 1); err == nil {
		t.Error("nil SLA accepted request")
	}
}

func TestChainMetrics(t *testing.T) {
	ab := validSLA("A", "B")
	bc := validSLA("B", "C")
	bc.Service.Profile.Rate = 50 * units.Mbps
	bc.Service.MaxLatency = 3 * time.Millisecond
	bc.Service.Reliability = 0.99
	chain := Chain{ab, bc}

	if !chain.Contiguous() {
		t.Fatal("contiguous chain reported broken")
	}
	lat, ok := chain.EndToEndLatency()
	if !ok || lat != 8*time.Millisecond {
		t.Errorf("latency = %v ok=%v, want 8ms", lat, ok)
	}
	if got := chain.BottleneckRate(); got != 50*units.Mbps {
		t.Errorf("bottleneck = %v, want 50Mb/s", got)
	}
	rel, ok := chain.EndToEndReliability()
	if !ok || rel < 0.988 || rel > 0.9891 {
		t.Errorf("reliability = %v ok=%v", rel, ok)
	}
}

func TestChainUnspecifiedMetrics(t *testing.T) {
	ab := validSLA("A", "B")
	ab.Service.MaxLatency = 0
	ab.Service.Reliability = 0
	chain := Chain{ab}
	if _, ok := chain.EndToEndLatency(); ok {
		t.Error("latency reported despite unspecified hop")
	}
	if _, ok := chain.EndToEndReliability(); ok {
		t.Error("reliability reported despite unspecified hop")
	}
}

func TestChainContiguity(t *testing.T) {
	broken := Chain{validSLA("A", "B"), validSLA("X", "C")}
	if broken.Contiguous() {
		t.Error("broken chain reported contiguous")
	}
	withNil := Chain{validSLA("A", "B"), nil}
	if withNil.Contiguous() {
		t.Error("chain with nil reported contiguous")
	}
	if withNil.BottleneckRate() != 0 {
		t.Error("nil hop must zero the bottleneck")
	}
	var empty Chain
	if !empty.Contiguous() {
		t.Error("empty chain must be trivially contiguous")
	}
}

func TestExcessTreatmentString(t *testing.T) {
	if Drop.String() != "drop" || Remark.String() != "remark" || Shape.String() != "shape" {
		t.Error("treatment strings wrong")
	}
	if ExcessTreatment(99).String() == "" {
		t.Error("unknown treatment renders empty")
	}
}
