package netsim

import (
	"testing"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

func profile(rate units.Bandwidth) sla.TrafficProfile {
	return sla.TrafficProfile{Rate: rate, BucketBytes: 30_000}
}

func TestTokenBucketConform(t *testing.T) {
	tb := NewTokenBucket(8*units.Mbps, 1000) // 1 MB/s, 1000-byte bucket
	if !tb.Conform(1000, 0) {
		t.Fatal("full bucket must admit bucket-sized packet")
	}
	if tb.Conform(1, 0) {
		t.Fatal("empty bucket must reject")
	}
	// After 1 ms, 1000 bytes of tokens have accumulated.
	if !tb.Conform(1000, time.Millisecond) {
		t.Fatal("refilled bucket must admit")
	}
	// Bucket must cap at its size.
	if tb.Conform(2000, 10*time.Second) {
		t.Fatal("bucket exceeded its capacity")
	}
}

func TestTokenBucketTimeToConform(t *testing.T) {
	tb := NewTokenBucket(8*units.Mbps, 1000)
	if !tb.Conform(1000, 0) {
		t.Fatal("setup")
	}
	d := tb.TimeToConform(500, 0)
	if d != 500*time.Microsecond {
		t.Errorf("TimeToConform = %v, want 500µs", d)
	}
	if got := tb.TimeToConform(0, 0); got != 0 {
		t.Errorf("zero-size TimeToConform = %v", got)
	}
}

func TestTokenBucketMonotonicRefill(t *testing.T) {
	tb := NewTokenBucket(8*units.Mbps, 10_000)
	tb.Conform(10_000, 0)
	t1 := tb.Tokens(time.Millisecond)
	// Time going backwards must not mint tokens.
	t0 := tb.Tokens(0)
	if t0 > t1 {
		t.Errorf("tokens increased on clock regression: %v -> %v", t1, t0)
	}
}

// pipe builds source -> marker -> policer -> link -> sink.
type pipe struct {
	sim     *dsim.Sim
	marker  *EdgeMarker
	policer *Policer
	link    *Link
	sink    *Sink
}

func buildPipe(t *testing.T, linkRate units.Bandwidth, aggregate units.Bandwidth, excess sla.ExcessTreatment) *pipe {
	t.Helper()
	sim := dsim.New()
	sink := NewSink(sim)
	link := NewLink(sim, linkRate, time.Millisecond, 0, sink)
	pol := NewPolicer(sim, profile(aggregate), excess, link)
	marker := NewEdgeMarker(sim, pol)
	return &pipe{sim: sim, marker: marker, policer: pol, link: link, sink: sink}
}

func TestReservedFlowGetsPremiumService(t *testing.T) {
	p := buildPipe(t, 100*units.Mbps, 50*units.Mbps, sla.Drop)
	p.marker.InstallReservation("alice", profile(10*units.Mbps))
	src := NewSource(p.sim, "alice", 10*units.Mbps, 1250, BestEffort, p.marker)
	if err := src.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	p.sim.Run(2 * time.Second)
	st := p.sink.Stats("alice")
	if st == nil {
		t.Fatal("no packets received")
	}
	if st.RxBytesByCls[Premium] == 0 {
		t.Fatal("reserved flow not marked premium")
	}
	if st.RxBytesByCls[BestEffort] > st.RxBytesByCls[Premium]/10 {
		t.Errorf("excessive best-effort leakage: %v", st.RxBytesByCls)
	}
	gp := st.Goodput(0, time.Second)
	if gp < 9e6 || gp > 11e6 {
		t.Errorf("goodput = %.2f Mb/s, want ~10", gp/1e6)
	}
}

func TestUnreservedFlowRemainsBestEffort(t *testing.T) {
	p := buildPipe(t, 100*units.Mbps, 50*units.Mbps, sla.Drop)
	src := NewSource(p.sim, "bob", 10*units.Mbps, 1250, Premium, p.marker) // tries to self-mark
	if err := src.Install(0, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	p.sim.Run(time.Second)
	st := p.sink.Stats("bob")
	if st == nil {
		t.Fatal("no packets received")
	}
	if st.RxBytesByCls[Premium] != 0 {
		t.Error("self-marked packets kept premium class through the edge")
	}
}

func TestMarkerRemarksOutOfProfile(t *testing.T) {
	p := buildPipe(t, 100*units.Mbps, 50*units.Mbps, sla.Drop)
	p.marker.InstallReservation("alice", profile(5*units.Mbps))
	src := NewSource(p.sim, "alice", 10*units.Mbps, 1250, BestEffort, p.marker) // sends 2x profile
	if err := src.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	p.sim.Run(2 * time.Second)
	st := p.sink.Stats("alice")
	prem := st.RxBytesByCls[Premium]
	be := st.RxBytesByCls[BestEffort]
	if p.marker.Drops.Remarked == 0 {
		t.Error("marker never remarked out-of-profile traffic")
	}
	ratio := float64(prem) / float64(prem+be)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("premium share = %.2f, want ~0.5 (5 of 10 Mb/s in profile)", ratio)
	}
}

func TestPolicerDropsAggregateExcess(t *testing.T) {
	// Two reserved flows of 10 Mb/s each, but the ingress aggregate
	// admits only 10 Mb/s: the policer cannot tell them apart and
	// drops ~half of the combined premium traffic. This is the core
	// mechanism behind Figure 4.
	p := buildPipe(t, 100*units.Mbps, 10*units.Mbps, sla.Drop)
	p.marker.InstallReservation("alice", profile(10*units.Mbps))
	p.marker.InstallReservation("david", profile(10*units.Mbps))
	// Different packet sizes desynchronise the CBR phases so neither
	// flow systematically wins the shared token bucket.
	a := NewSource(p.sim, "alice", 10*units.Mbps, 1250, BestEffort, p.marker)
	d := NewSource(p.sim, "david", 10*units.Mbps, 1000, BestEffort, p.marker)
	if err := a.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	p.sim.Run(2 * time.Second)
	if p.policer.Drops.Dropped == 0 {
		t.Fatal("policer never dropped despite 2x aggregate overload")
	}
	aliceGp := p.sink.Stats("alice").Goodput(0, time.Second)
	if aliceGp > 8e6 {
		t.Errorf("alice goodput = %.2f Mb/s; expected degradation below 8 Mb/s", aliceGp/1e6)
	}
}

func TestPolicerRemarkTreatment(t *testing.T) {
	p := buildPipe(t, 100*units.Mbps, 5*units.Mbps, sla.Remark)
	p.marker.InstallReservation("alice", profile(10*units.Mbps))
	src := NewSource(p.sim, "alice", 10*units.Mbps, 1250, BestEffort, p.marker)
	if err := src.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	p.sim.Run(2 * time.Second)
	if p.policer.Drops.Remarked == 0 {
		t.Fatal("policer never remarked")
	}
	st := p.sink.Stats("alice")
	// Nothing is lost on an uncongested link; excess arrives best effort.
	if st.RxBytesByCls[BestEffort] == 0 {
		t.Error("no best-effort arrivals despite remark treatment")
	}
	gp := st.Goodput(0, time.Second)
	if gp < 9e6 {
		t.Errorf("goodput = %.2f Mb/s; remark must not lose traffic on idle link", gp/1e6)
	}
}

func TestPolicerShapeTreatment(t *testing.T) {
	p := buildPipe(t, 100*units.Mbps, 5*units.Mbps, sla.Shape)
	p.marker.InstallReservation("alice", profile(10*units.Mbps))
	src := NewSource(p.sim, "alice", 10*units.Mbps, 1250, BestEffort, p.marker)
	if err := src.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	p.sim.Run(3 * time.Second)
	if p.policer.Drops.Shaped == 0 {
		t.Fatal("policer never shaped")
	}
	st := p.sink.Stats("alice")
	// Shaped premium traffic still arrives premium, at ~the shaped rate.
	if st.RxBytesByCls[BestEffort] != 0 {
		t.Error("shaping must not demote packets")
	}
}

func TestPriorityQueueProtectsPremiumUnderCongestion(t *testing.T) {
	// 10 Mb/s premium + 100 Mb/s best-effort into a 20 Mb/s link:
	// premium must see full goodput and low latency.
	sim := dsim.New()
	sink := NewSink(sim)
	link := NewLink(sim, 20*units.Mbps, time.Millisecond, 0, sink)
	marker := NewEdgeMarker(sim, link)
	marker.InstallReservation("alice", profile(10*units.Mbps))
	a := NewSource(sim, "alice", 10*units.Mbps, 1250, BestEffort, marker)
	b := NewSource(sim, "crowd", 100*units.Mbps, 1250, BestEffort, marker)
	if err := a.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	sim.Run(2 * time.Second)
	alice := sink.Stats("alice")
	crowd := sink.Stats("crowd")
	if gp := alice.Goodput(0, time.Second); gp < 9e6 {
		t.Errorf("premium goodput = %.2f Mb/s under congestion, want ~10", gp/1e6)
	}
	// Leftover capacity is 10 Mb/s; the queued backlog (256 KB ≈ 2 Mb)
	// drains after the sources stop, so allow a small margin.
	if crowd != nil && crowd.Goodput(0, time.Second) > 13e6 {
		t.Errorf("best effort got %.2f Mb/s, exceeding leftover capacity", crowd.Goodput(0, time.Second)/1e6)
	}
	if link.Drops.Dropped == 0 {
		t.Error("overloaded link never dropped best effort")
	}
	if alice.MeanLatency() > 5*time.Millisecond {
		t.Errorf("premium latency = %v, want small", alice.MeanLatency())
	}
}

func TestLinkBufferOverflowDrops(t *testing.T) {
	sim := dsim.New()
	sink := NewSink(sim)
	link := NewLink(sim, 1*units.Mbps, 0, 5000, sink) // tiny buffer
	src := NewSource(sim, "burst", 100*units.Mbps, 1250, BestEffort, link)
	if err := src.Install(0, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sim.Run(time.Second)
	if link.Drops.Dropped == 0 {
		t.Error("tiny buffer never overflowed")
	}
}

func TestSinkLatencyAccounting(t *testing.T) {
	sim := dsim.New()
	sink := NewSink(sim)
	// 1250-byte packet at 10 Mb/s tx = 1 ms, plus 2 ms propagation.
	link := NewLink(sim, 10*units.Mbps, 2*time.Millisecond, 0, sink)
	src := NewSource(sim, "f", 1*units.Mbps, 1250, Premium, link)
	if err := src.Install(0, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sim.Run(time.Second)
	st := sink.Stats("f")
	if st == nil || st.RxPackets == 0 {
		t.Fatal("no arrivals")
	}
	lat := st.MeanLatency()
	if lat < 3*time.Millisecond || lat > 4*time.Millisecond {
		t.Errorf("latency = %v, want ~3ms (1ms tx + 2ms prop)", lat)
	}
}

func TestFlowStatsNilSafety(t *testing.T) {
	var st *FlowStats
	if st.Goodput(0, time.Second) != 0 || st.MeanLatency() != 0 {
		t.Error("nil FlowStats must report zeros")
	}
}

func TestSourceStopsAtStopTime(t *testing.T) {
	sim := dsim.New()
	sink := NewSink(sim)
	src := NewSource(sim, "f", 8*units.Mbps, 1000, BestEffort, sink)
	if err := src.Install(0, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sim.Run(time.Second)
	// 8 Mb/s with 1000-byte packets = 1 packet per ms; 10 ms -> 10 pkts.
	if got := src.Emitted(); got < 9 || got > 11 {
		t.Errorf("emitted = %d, want ~10", got)
	}
}
