package netsim

import (
	"sync"
	"testing"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

// These tests pin the thread-safety contract the dataplane backends
// rely on: markers, policers and meters are hammered from many
// goroutines and must stay exact, not just race-free. Run them with
// -race (make verify does).

// TestTokenBucketConcurrentConformance checks the bucket stays a
// conserved quantity under contention: with virtual time frozen there
// is no refill, so across every goroutine exactly burst/size packets
// may conform — no more (lost updates would admit extra), no fewer.
func TestTokenBucketConcurrentConformance(t *testing.T) {
	const (
		size    = 100
		packets = 200
		burst   = 10_000 // admits exactly 100 packets of 100B
		workers = 8
	)
	tb := NewTokenBucket(8*units.Mbps, burst)
	var conformed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < packets; i++ {
				if tb.Conform(size, 0) {
					local++
				}
			}
			mu.Lock()
			conformed += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if want := int64(burst / size); conformed != want {
		t.Fatalf("conformed %d packets across %d goroutines, want exactly %d", conformed, workers, want)
	}
	if tokens := tb.Tokens(0); tokens >= size {
		t.Fatalf("bucket still holds %.0f tokens after exhaustion", tokens)
	}
	// After one packet-time of refill the bucket admits again.
	refillTime := time.Duration(float64(size*8) / float64(8*units.Mbps) * float64(time.Second))
	if !tb.Conform(size, refillTime+time.Millisecond) {
		t.Fatalf("bucket did not refill after %v", refillTime)
	}
}

// TestTokenBucketConcurrentReaders checks Tokens and TimeToConform can
// run alongside Conform without corrupting the meter.
func TestTokenBucketConcurrentReaders(t *testing.T) {
	tb := NewTokenBucket(units.Mbps, 5_000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for now := time.Duration(0); ; now += time.Microsecond {
				select {
				case <-stop:
					return
				default:
				}
				tb.Tokens(now)
				tb.TimeToConform(1500, now)
			}
		}()
	}
	for i := 0; i < 2_000; i++ {
		tb.Conform(125, time.Duration(i)*time.Microsecond)
	}
	close(stop)
	wg.Wait()
}

// TestOnOffSourceStatsDuringRun reads source and sink statistics from
// reader goroutines while the simulation emits packets — the live
// telemetry path fleet tooling uses mid-run.
func TestOnOffSourceStatsDuringRun(t *testing.T) {
	sim := dsim.New()
	sink := NewSink(sim)
	marker := NewEdgeMarker(sim, sink)
	marker.InstallReservation("f1", sla.TrafficProfile{Rate: 4 * units.Mbps, BucketBytes: 30_000})
	src := NewOnOffSource(sim, "f1", 8*units.Mbps, 1250, Premium, 20*time.Millisecond, 20*time.Millisecond, marker)
	if err := src.Install(0, time.Second); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				src.Emitted()
				marker.FlowStats("f1")
				marker.DropsSnapshot()
				if st := sink.Stats("f1"); st != nil {
					_ = st.RxBytes
				}
			}
		}()
	}
	sim.Run(2 * time.Second)
	close(stop)
	wg.Wait()
	emitted := src.Emitted()
	if emitted == 0 {
		t.Fatal("source emitted nothing")
	}
	st := sink.Stats("f1")
	if st == nil || st.RxPackets != emitted {
		t.Fatalf("sink saw %+v, want %d packets", st, emitted)
	}
	fs := marker.FlowStats("f1")
	if fs.PremiumBytes+fs.DemotedBytes != emitted*1250 {
		t.Fatalf("marker accounted %d+%d bytes, want %d", fs.PremiumBytes, fs.DemotedBytes, emitted*1250)
	}
}

// TestEdgeMarkerConcurrentControlAndData reconfigures reservations
// from control goroutines while data goroutines push bytes through
// MarkBytes for other flows; per-flow accounting must stay exact.
func TestEdgeMarkerConcurrentControlAndData(t *testing.T) {
	sim := dsim.New()
	marker := NewEdgeMarker(sim, NewSink(sim))
	profile := sla.TrafficProfile{Rate: 8 * units.Mbps, BucketBytes: 10_000}
	marker.InstallReservation("steady", profile)
	var wg sync.WaitGroup
	// Control plane: churn an unrelated flow's reservation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			marker.InstallReservation("churny", profile)
			marker.RemoveReservation("churny")
		}
	}()
	// Data plane: the steady flow marks within its burst at t=0.
	var premium int64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < 50; i++ {
				local += marker.MarkBytes("steady", 100, 100, 0)
			}
			mu.Lock()
			premium += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	// 4×50×100B = 20_000B offered at t=0 against a 10_000B burst:
	// exactly the burst may be marked premium, the rest demoted.
	if premium != 10_000 {
		t.Fatalf("premium = %d, want exactly the 10000B burst", premium)
	}
	fs := marker.FlowStats("steady")
	if fs.PremiumBytes != 10_000 || fs.DemotedBytes != 10_000 {
		t.Fatalf("flow stats %+v, want 10000 premium / 10000 demoted", fs)
	}
	if marker.Installed("churny") {
		t.Fatal("churny flow left installed")
	}
}

// TestPolicerDropVsRemarkBoundary pins the exact boundary packet: an
// aggregate with a one-packet bucket must pass the packet that lands
// on the burst and apply the excess treatment to the next one.
func TestPolicerDropVsRemarkBoundary(t *testing.T) {
	const pkt = 1250
	cases := []struct {
		name   string
		excess sla.ExcessTreatment
		// after offering burst+1 packets at t=0:
		wantDropped, wantRemarked int64
		wantBestEffort            int64
	}{
		{name: "drop", excess: sla.Drop, wantDropped: 1},
		{name: "remark", excess: sla.Remark, wantRemarked: 1, wantBestEffort: pkt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := dsim.New()
			var forwarded []Class
			next := ReceiverFunc(func(p *Packet) { forwarded = append(forwarded, p.Class) })
			po := NewPolicer(sim, sla.TrafficProfile{Rate: units.Mbps, BucketBytes: 2 * pkt}, tc.excess, next)
			for i := 0; i < 3; i++ {
				po.Receive(newPacket("f", pkt, Premium, 0))
			}
			tot := po.Totals()
			if tot.PremiumPassedBytes != 2*pkt {
				t.Fatalf("premium passed %d, want %d (the full bucket)", tot.PremiumPassedBytes, 2*pkt)
			}
			if tot.ExcessPremiumBytes != pkt {
				t.Fatalf("excess premium %d, want %d", tot.ExcessPremiumBytes, pkt)
			}
			if tot.Drops.Dropped != tc.wantDropped || tot.Drops.Remarked != tc.wantRemarked {
				t.Fatalf("drops %v, want dropped=%d remarked=%d", tot.Drops, tc.wantDropped, tc.wantRemarked)
			}
			if tot.BestEffortBytes != tc.wantBestEffort {
				t.Fatalf("best-effort bytes %d, want %d", tot.BestEffortBytes, tc.wantBestEffort)
			}
			wantForwarded := 2
			if tc.excess == sla.Remark {
				wantForwarded = 3
				if forwarded[2] != BestEffort {
					t.Fatalf("boundary packet forwarded as %v, want best-effort", forwarded[2])
				}
			}
			if len(forwarded) != wantForwarded {
				t.Fatalf("forwarded %d packets, want %d", len(forwarded), wantForwarded)
			}
		})
	}
}

// TestPolicerByteAndPacketPathsAgree drives the same offered load
// through Receive and PoliceBytes and requires identical accounting —
// the dataplane byte path must not drift from the packet path.
func TestPolicerByteAndPacketPathsAgree(t *testing.T) {
	const pkt = 1000
	profile := sla.TrafficProfile{Rate: units.Mbps, BucketBytes: 5 * pkt}
	simA := dsim.New()
	pktPath := NewPolicer(simA, profile, sla.Remark, NewSink(simA))
	for i := 0; i < 12; i++ {
		pktPath.Receive(newPacket("f", pkt, Premium, 0))
	}
	simB := dsim.New()
	bytePath := NewPolicer(simB, profile, sla.Remark, NewSink(simB))
	bytePath.PoliceBytes(12*pkt, pkt, 0)
	a, b := pktPath.Totals(), bytePath.Totals()
	if a != b {
		t.Fatalf("paths disagree:\n packet %+v\n bytes  %+v", a, b)
	}
}

// TestPolicerConcurrentReconfigure races SetAggregateRate against
// PoliceBytes and checks the final totals stay internally consistent:
// every offered byte is either passed or excess, never both or neither.
func TestPolicerConcurrentReconfigure(t *testing.T) {
	sim := dsim.New()
	po := NewPolicer(sim, sla.TrafficProfile{Rate: units.Mbps, BucketBytes: 10_000}, sla.Drop, NewSink(sim))
	const (
		workers = 4
		rounds  = 200
		chunk   = 500
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			po.SetAggregateRate(units.Bandwidth(1+i)*units.Mbps, 10_000)
		}
	}()
	var passed int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < rounds; i++ {
				local += po.PoliceBytes(chunk, chunk, 0)
			}
			mu.Lock()
			passed += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	tot := po.Totals()
	offered := int64(workers * rounds * chunk)
	if tot.PremiumPassedBytes+tot.ExcessPremiumBytes != offered {
		t.Fatalf("passed %d + excess %d != offered %d", tot.PremiumPassedBytes, tot.ExcessPremiumBytes, offered)
	}
	if tot.PremiumPassedBytes != passed {
		t.Fatalf("totals say %d passed, callers saw %d", tot.PremiumPassedBytes, passed)
	}
	if tot.Drops.Dropped != tot.ExcessPremiumBytes/chunk {
		t.Fatalf("dropped %d chunks, want %d", tot.Drops.Dropped, tot.ExcessPremiumBytes/chunk)
	}
}
