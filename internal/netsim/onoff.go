package netsim

import (
	"sync/atomic"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/units"
)

// OnOffSource is a bursty traffic generator: it alternates ON periods
// (emitting at PeakRate) and OFF periods (silent). Bursty sources are
// what token-bucket profiles are negotiated for — the bucket absorbs
// bursts whose size stays under the SLS burst allowance while the
// long-term average stays at rate·duty.
type OnOffSource struct {
	sim      *dsim.Sim
	Flow     FlowID
	PeakRate units.Bandwidth
	Size     int
	Class    Class
	Next     Receiver
	// OnTime / OffTime are the mean period lengths; each actual period
	// is drawn uniformly from [0.5, 1.5) of the mean with a
	// deterministic per-flow PRNG.
	OnTime  time.Duration
	OffTime time.Duration

	stop    time.Duration
	on      bool
	emitted atomic.Int64
	rng     uint64
}

// NewOnOffSource creates a bursty source; call Install to start.
func NewOnOffSource(sim *dsim.Sim, flow FlowID, peak units.Bandwidth, pktSize int, class Class, onTime, offTime time.Duration, next Receiver) *OnOffSource {
	return &OnOffSource{
		sim:      sim,
		Flow:     flow,
		PeakRate: peak,
		Size:     pktSize,
		Class:    class,
		Next:     next,
		OnTime:   onTime,
		OffTime:  offTime,
	}
}

// MeanRate returns the long-term average rate implied by the duty
// cycle.
func (s *OnOffSource) MeanRate() units.Bandwidth {
	total := s.OnTime + s.OffTime
	if total <= 0 {
		return 0
	}
	return units.Bandwidth(float64(s.PeakRate) * float64(s.OnTime) / float64(total))
}

// Emitted returns the number of packets generated so far. Safe to
// call from any goroutine while the simulation runs.
func (s *OnOffSource) Emitted() int64 { return s.emitted.Load() }

// Install schedules the first ON period. Stop of zero runs until the
// simulation horizon.
func (s *OnOffSource) Install(start, stop time.Duration) error {
	s.stop = stop
	_, err := s.sim.Schedule(start, s.beginOn)
	return err
}

func (s *OnOffSource) nextRand() float64 {
	if s.rng == 0 {
		s.rng = 0xA076_1D64_78BD_642F
		for _, b := range []byte(s.Flow) {
			s.rng = (s.rng ^ uint64(b)) * 0x100000001B3
		}
		if s.rng == 0 {
			s.rng = 1
		}
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return float64(s.rng>>11) / float64(1<<53)
}

// period draws a uniform [0.5, 1.5) multiple of the mean.
func (s *OnOffSource) period(mean time.Duration) time.Duration {
	return time.Duration(float64(mean) * (0.5 + s.nextRand()))
}

func (s *OnOffSource) done() bool {
	return s.stop > 0 && s.sim.Now() >= s.stop
}

func (s *OnOffSource) beginOn() {
	if s.done() {
		return
	}
	s.on = true
	end := s.sim.Now() + s.period(s.OnTime)
	if _, err := s.sim.Schedule(end, s.beginOff); err != nil {
		return
	}
	s.emit(end)
}

func (s *OnOffSource) beginOff() {
	s.on = false
	if s.done() {
		return
	}
	_, _ = s.sim.After(s.period(s.OffTime), s.beginOn)
}

// interval is the inter-packet gap while ON.
func (s *OnOffSource) interval() time.Duration {
	if s.PeakRate <= 0 {
		return time.Hour
	}
	secs := float64(s.Size*8) / float64(s.PeakRate)
	return time.Duration(secs * float64(time.Second))
}

func (s *OnOffSource) emit(onEnd time.Duration) {
	if !s.on || s.done() || s.sim.Now() >= onEnd {
		return
	}
	s.emitted.Add(1)
	s.Next.Receive(newPacket(s.Flow, s.Size, s.Class, s.sim.Now()))
	_, _ = s.sim.After(s.interval(), func() { s.emit(onEnd) })
}
