// Package netsim is a packet-level Differentiated Services network
// simulator built on the dsim event kernel. It provides the data plane
// the paper's architecture configures: edge token-bucket markers and
// per-aggregate ingress policers, priority (EF-style) queueing on
// links, constant-bit-rate traffic sources and measuring sinks.
//
// The simulator exists to reproduce the paper's Figure 4: because
// "Domain C polices traffic based on traffic aggregates, not on
// individual users, it cannot tell the difference between David's
// reserved traffic and Alice's reserved traffic", an incomplete
// (mis-)reservation upstream degrades an honest user's guaranteed
// flow.
package netsim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Class is a DiffServ per-hop-behaviour class.
type Class int

// Traffic classes.
const (
	// BestEffort is the default forwarding class.
	BestEffort Class = iota
	// Premium is the expedited-forwarding-style reserved class.
	Premium
)

func (c Class) String() string {
	if c == Premium {
		return "premium"
	}
	return "best-effort"
}

// FlowID identifies one end-to-end flow.
type FlowID string

// Packet is one simulated datagram.
type Packet struct {
	Flow FlowID
	// Size is the packet size in bytes (header + payload).
	Size int
	// Class is the current marking; edge devices may remark it.
	Class Class
	// Sent is the virtual time the source emitted the packet.
	Sent time.Duration
	// seq is a global sequence number for debugging.
	seq uint64
}

var packetSeq atomic.Uint64

// newPacket stamps a fresh packet.
func newPacket(flow FlowID, size int, class Class, now time.Duration) *Packet {
	return &Packet{Flow: flow, Size: size, Class: class, Sent: now, seq: packetSeq.Add(1)}
}

// Receiver is anything that can accept a packet: policers, links,
// sinks. Handing over a packet transfers ownership.
type Receiver interface {
	Receive(p *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *Packet)

// Receive calls f(p).
func (f ReceiverFunc) Receive(p *Packet) { f(p) }

// FlowStats accumulates per-flow counters at a sink.
type FlowStats struct {
	RxPackets    int64
	RxBytes      int64
	RxBytesByCls map[Class]int64
	// FirstRx/LastRx bound the measurement interval.
	FirstRx time.Duration
	LastRx  time.Duration
	// LatencySum accumulates per-packet one-way delay.
	LatencySum time.Duration
}

// Goodput returns the average received rate of the flow over the
// window [from, to] in bits per second.
func (s *FlowStats) Goodput(from, to time.Duration) float64 {
	if s == nil || to <= from {
		return 0
	}
	return float64(s.RxBytes*8) / (to - from).Seconds()
}

// MeanLatency returns the average one-way delay of received packets.
func (s *FlowStats) MeanLatency() time.Duration {
	if s == nil || s.RxPackets == 0 {
		return 0
	}
	return s.LatencySum / time.Duration(s.RxPackets)
}

// DropStats counts packets discarded by one network element.
type DropStats struct {
	Dropped  int64
	Remarked int64
	Shaped   int64
}

func (d DropStats) String() string {
	return fmt.Sprintf("dropped=%d remarked=%d shaped=%d", d.Dropped, d.Remarked, d.Shaped)
}
