package netsim

import (
	"sync"
	"time"

	"e2eqos/internal/units"
)

// TokenBucket is the classic (r, b) traffic meter used by edge markers
// and ingress policers. Tokens are measured in bytes and refill
// continuously at Rate. It is safe for concurrent use; Rate and
// BucketBytes must not be mutated after construction.
type TokenBucket struct {
	Rate        units.Bandwidth
	BucketBytes float64

	mu     sync.Mutex
	tokens float64
	last   time.Duration
	primed bool
}

// NewTokenBucket creates a full bucket.
func NewTokenBucket(rate units.Bandwidth, bucketBytes int64) *TokenBucket {
	return &TokenBucket{Rate: rate, BucketBytes: float64(bucketBytes), tokens: float64(bucketBytes)}
}

// refill advances the bucket to virtual time now.
func (tb *TokenBucket) refill(now time.Duration) {
	if !tb.primed {
		tb.last = now
		tb.primed = true
		return
	}
	if now <= tb.last {
		return
	}
	dt := (now - tb.last).Seconds()
	tb.tokens += dt * float64(tb.Rate) / 8
	if tb.tokens > tb.BucketBytes {
		tb.tokens = tb.BucketBytes
	}
	tb.last = now
}

// Conform consumes size bytes of tokens if available at virtual time
// now and reports whether the packet conformed.
func (tb *TokenBucket) Conform(size int, now time.Duration) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(now)
	if float64(size) <= tb.tokens {
		tb.tokens -= float64(size)
		return true
	}
	return false
}

// TimeToConform returns how long after now the bucket will hold size
// tokens, assuming no intermediate consumption. Used by shapers.
func (tb *TokenBucket) TimeToConform(size int, now time.Duration) time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(now)
	deficit := float64(size) - tb.tokens
	if deficit <= 0 {
		return 0
	}
	if tb.Rate <= 0 {
		return time.Duration(1<<62 - 1)
	}
	secs := deficit * 8 / float64(tb.Rate)
	return time.Duration(secs * float64(time.Second))
}

// Tokens reports the current token level at virtual time now.
func (tb *TokenBucket) Tokens(now time.Duration) float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(now)
	return tb.tokens
}
