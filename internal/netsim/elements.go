package netsim

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

// Source is a constant-bit-rate traffic generator for one flow. It
// emits fixed-size packets with the configured class marking; the
// first edge device downstream decides their fate.
type Source struct {
	sim   *dsim.Sim
	Flow  FlowID
	Rate  units.Bandwidth
	Size  int // packet size, bytes
	Class Class
	Next  Receiver
	Start time.Duration
	Stop  time.Duration
	// Jitter randomises each inter-packet gap by up to ±Jitter
	// (fraction of the nominal interval), using a deterministic
	// per-flow PRNG. Real sources are never perfectly periodic; without
	// jitter, same-rate CBR flows phase-lock against token-bucket
	// policers and produce pathological win/lose patterns.
	Jitter float64

	emitted atomic.Int64
	rng     uint64
}

// NewSource creates a CBR source; call Install to begin emitting.
func NewSource(sim *dsim.Sim, flow FlowID, rate units.Bandwidth, pktSize int, class Class, next Receiver) *Source {
	return &Source{sim: sim, Flow: flow, Rate: rate, Size: pktSize, Class: class, Next: next}
}

// Install schedules the first emission. Stop of zero means "run until
// the simulation horizon".
func (s *Source) Install(start, stop time.Duration) error {
	s.Start, s.Stop = start, stop
	_, err := s.sim.Schedule(start, s.emit)
	return err
}

// interval is the inter-packet gap for the CBR schedule, with
// deterministic jitter applied when configured.
func (s *Source) interval() time.Duration {
	if s.Rate <= 0 {
		return time.Hour
	}
	secs := float64(s.Size*8) / float64(s.Rate)
	iv := time.Duration(secs * float64(time.Second))
	if s.Jitter > 0 {
		u := s.nextRand() // in [0, 1)
		factor := 1 + s.Jitter*(2*u-1)
		iv = time.Duration(float64(iv) * factor)
		if iv <= 0 {
			iv = time.Nanosecond
		}
	}
	return iv
}

// nextRand is a per-source xorshift64* generator seeded from the flow
// id, keeping runs reproducible.
func (s *Source) nextRand() float64 {
	if s.rng == 0 {
		s.rng = 0x9E3779B97F4A7C15
		for _, b := range []byte(s.Flow) {
			s.rng = (s.rng ^ uint64(b)) * 0x100000001B3
		}
		if s.rng == 0 {
			s.rng = 1
		}
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return float64(s.rng>>11) / float64(1<<53)
}

func (s *Source) emit() {
	now := s.sim.Now()
	if s.Stop > 0 && now >= s.Stop {
		return
	}
	s.emitted.Add(1)
	s.Next.Receive(newPacket(s.Flow, s.Size, s.Class, now))
	_, _ = s.sim.After(s.interval(), s.emit)
}

// Emitted returns the number of packets generated so far. Safe to call
// from any goroutine while the simulation runs.
func (s *Source) Emitted() int64 { return s.emitted.Load() }

// flowMeter is one installed reservation at an edge marker: the
// negotiated profile, the token bucket metering against it, and the
// per-flow marking outcome counters.
type flowMeter struct {
	profile      sla.TrafficProfile
	tb           *TokenBucket
	premiumBytes int64
	demotedBytes int64
}

// FlowMarkStats is the per-flow outcome of edge marking: how many
// bytes left the edge with the premium marking and how many were
// demoted to best effort for exceeding the installed profile.
type FlowMarkStats struct {
	Installed    bool
	Profile      sla.TrafficProfile
	PremiumBytes int64
	DemotedBytes int64
}

// EdgeMarker is the first-hop device of a DiffServ domain: it
// recognises packets "on a per flow base" and marks conforming packets
// of flows with an installed reservation as Premium; everything else
// is (re)marked best effort. This is the only per-flow element in the
// network, exactly as the DiffServ architecture prescribes.
//
// The marker is safe for concurrent use: the control plane installs
// and removes reservations from broker goroutines while the data path
// classifies packets.
type EdgeMarker struct {
	Next  Receiver
	Drops DropStats

	mu     sync.Mutex
	meters map[FlowID]*flowMeter
	nowFn  func() time.Duration
}

// NewEdgeMarker creates an edge marker feeding next.
func NewEdgeMarker(sim *dsim.Sim, next Receiver) *EdgeMarker {
	return &EdgeMarker{Next: next, meters: make(map[FlowID]*flowMeter), nowFn: sim.Now}
}

// InstallReservation gives flow a premium profile (what the BB does to
// the edge router when a reservation is granted).
func (m *EdgeMarker) InstallReservation(flow FlowID, profile sla.TrafficProfile) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.meters[flow] = &flowMeter{profile: profile, tb: NewTokenBucket(profile.Rate, profile.BucketBytes)}
}

// RemoveReservation tears the profile down.
func (m *EdgeMarker) RemoveReservation(flow FlowID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.meters, flow)
}

// Installed reports whether flow currently has a reservation profile.
func (m *EdgeMarker) Installed(flow FlowID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.meters[flow]
	return ok
}

// FlowStats returns the flow's installed profile and marking counters.
// A flow whose profile was removed reports Installed=false with zeroed
// counters (the marker does not keep state for torn-down flows).
func (m *EdgeMarker) FlowStats(flow FlowID) FlowMarkStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	fm, ok := m.meters[flow]
	if !ok {
		return FlowMarkStats{}
	}
	return FlowMarkStats{
		Installed:    true,
		Profile:      fm.profile,
		PremiumBytes: fm.premiumBytes,
		DemotedBytes: fm.demotedBytes,
	}
}

// DropsSnapshot returns the marker's drop/remark counters; safe to
// call while the data path runs.
func (m *EdgeMarker) DropsSnapshot() DropStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Drops
}

// classifyLocked runs the marking decision for size bytes of flow at
// virtual time now, updating per-flow counters. Caller holds m.mu.
func (m *EdgeMarker) classifyLocked(flow FlowID, size int, now time.Duration) Class {
	fm, reserved := m.meters[flow]
	if !reserved {
		return BestEffort
	}
	if fm.tb.Conform(size, now) {
		fm.premiumBytes += int64(size)
		return Premium
	}
	// Out-of-profile traffic of a reserved flow rides best effort.
	fm.demotedBytes += int64(size)
	m.Drops.Remarked++
	return BestEffort
}

// Receive classifies and marks the packet.
func (m *EdgeMarker) Receive(p *Packet) {
	m.mu.Lock()
	p.Class = m.classifyLocked(p.Flow, p.Size, m.nowFn())
	m.mu.Unlock()
	m.Next.Receive(p)
}

// MarkBytes classifies bytes of flow traffic offered at virtual time
// now against the same per-flow meter the packet path uses, without
// injecting packets into a pipeline: the traffic is metered in pktSize
// chunks (plus a remainder chunk) and the number of bytes that left
// the edge marked premium is returned; the rest ride best effort. This
// is the decision entry point the dataplane backends use.
func (m *EdgeMarker) MarkBytes(flow FlowID, bytes int64, pktSize int, now time.Duration) (premium int64) {
	if pktSize <= 0 {
		pktSize = 1250
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for bytes > 0 {
		size := pktSize
		if int64(size) > bytes {
			size = int(bytes)
		}
		if m.classifyLocked(flow, size, now) == Premium {
			premium += int64(size)
		}
		bytes -= int64(size)
	}
	return premium
}

// PolicerTotals is a policer's cumulative byte accounting.
type PolicerTotals struct {
	// PremiumPassedBytes counts premium bytes that conformed to the
	// aggregate profile and passed.
	PremiumPassedBytes int64
	// BestEffortBytes counts best-effort bytes forwarded untouched,
	// including premium excess remarked down to best effort.
	BestEffortBytes int64
	// ExcessPremiumBytes counts premium bytes offered beyond the
	// aggregate profile, whatever their excess treatment.
	ExcessPremiumBytes int64
	Drops              DropStats
}

// Policer is a per-aggregate ingress policer: it meters the *sum* of
// premium traffic entering a domain against the admitted aggregate
// profile, without distinguishing flows. Non-conforming premium
// packets are dropped, remarked or shaped per the SLA's excess
// treatment. Best-effort packets pass untouched.
//
// The policer is safe for concurrent use: the control plane
// reconfigures the aggregate from broker goroutines while the data
// path meters packets.
type Policer struct {
	sim    *dsim.Sim
	Next   Receiver
	Drops  DropStats
	excess sla.ExcessTreatment

	mu              sync.Mutex
	meter           *TokenBucket
	profile         sla.TrafficProfile
	premiumPassed   int64
	bestEffortBytes int64
	excessPremium   int64
}

// NewPolicer creates an ingress policer with the given aggregate
// profile.
func NewPolicer(sim *dsim.Sim, profile sla.TrafficProfile, excess sla.ExcessTreatment, next Receiver) *Policer {
	return &Policer{
		sim:     sim,
		Next:    next,
		meter:   NewTokenBucket(profile.Rate, profile.BucketBytes),
		profile: profile,
		excess:  excess,
	}
}

// SetAggregateRate reconfigures the admitted aggregate (what the BB
// does as reservations come and go).
func (po *Policer) SetAggregateRate(rate units.Bandwidth, bucketBytes int64) {
	po.mu.Lock()
	defer po.mu.Unlock()
	po.profile = sla.TrafficProfile{Rate: rate, BucketBytes: bucketBytes}
	po.meter = NewTokenBucket(rate, bucketBytes)
}

// AggregateProfile returns the currently configured aggregate profile.
func (po *Policer) AggregateProfile() sla.TrafficProfile {
	po.mu.Lock()
	defer po.mu.Unlock()
	return po.profile
}

// Totals returns the policer's cumulative byte accounting; safe to
// call while the data path runs.
func (po *Policer) Totals() PolicerTotals {
	po.mu.Lock()
	defer po.mu.Unlock()
	return PolicerTotals{
		PremiumPassedBytes: po.premiumPassed,
		BestEffortBytes:    po.bestEffortBytes,
		ExcessPremiumBytes: po.excessPremium,
		Drops:              po.Drops,
	}
}

// Receive polices premium packets against the aggregate profile.
func (po *Policer) Receive(p *Packet) {
	if p.Class != Premium {
		po.mu.Lock()
		po.bestEffortBytes += int64(p.Size)
		po.mu.Unlock()
		po.Next.Receive(p)
		return
	}
	now := po.sim.Now()
	po.mu.Lock()
	if po.meter.Conform(p.Size, now) {
		po.premiumPassed += int64(p.Size)
		po.mu.Unlock()
		po.Next.Receive(p)
		return
	}
	po.excessPremium += int64(p.Size)
	switch po.excess {
	case sla.Drop:
		po.Drops.Dropped++
		po.mu.Unlock()
	case sla.Remark:
		p.Class = BestEffort
		po.Drops.Remarked++
		po.bestEffortBytes += int64(p.Size)
		po.mu.Unlock()
		po.Next.Receive(p)
	case sla.Shape:
		po.Drops.Shaped++
		delay := po.meter.TimeToConform(p.Size, now)
		po.mu.Unlock()
		pkt := p
		if _, err := po.sim.After(delay, func() {
			po.mu.Lock()
			ok := po.meter.Conform(pkt.Size, po.sim.Now())
			if ok {
				po.premiumPassed += int64(pkt.Size)
			} else {
				po.Drops.Dropped++
			}
			po.mu.Unlock()
			if ok {
				po.Next.Receive(pkt)
			}
		}); err != nil {
			po.mu.Lock()
			po.Drops.Dropped++
			po.mu.Unlock()
		}
	default:
		po.mu.Unlock()
	}
}

// PoliceBytes meters bytes of aggregate premium traffic offered at
// virtual time now against the same aggregate meter the packet path
// uses, in pktSize chunks, and returns how many bytes conformed and
// passed. Non-conforming bytes are accounted per the excess treatment
// (dropped or remarked; shaping has no timed release on this byte
// path and counts as shaped-then-dropped). This is the decision entry
// point the dataplane backends use.
func (po *Policer) PoliceBytes(bytes int64, pktSize int, now time.Duration) (passed int64) {
	if pktSize <= 0 {
		pktSize = 1250
	}
	po.mu.Lock()
	defer po.mu.Unlock()
	for bytes > 0 {
		size := pktSize
		if int64(size) > bytes {
			size = int(bytes)
		}
		if po.meter.Conform(size, now) {
			po.premiumPassed += int64(size)
			passed += int64(size)
		} else {
			po.excessPremium += int64(size)
			switch po.excess {
			case sla.Remark:
				po.Drops.Remarked++
				po.bestEffortBytes += int64(size)
			case sla.Shape:
				po.Drops.Shaped++
				po.Drops.Dropped++
			default:
				po.Drops.Dropped++
			}
		}
		bytes -= int64(size)
	}
	return passed
}

// Link models an output port plus wire: strict-priority service
// (premium before best effort), finite per-class buffers, a
// transmission rate and a propagation delay.
type Link struct {
	sim      *dsim.Sim
	Capacity units.Bandwidth
	Prop     time.Duration
	Next     Receiver
	// BufferBytes bounds each queue; zero means 256 KB.
	premQ, beQ         *list.List
	premBytes, beBytes int
	bufLimit           int
	busy               bool
	Drops              DropStats
	TxBytes            int64
}

// NewLink creates a link feeding next.
func NewLink(sim *dsim.Sim, capacity units.Bandwidth, prop time.Duration, bufferBytes int, next Receiver) *Link {
	if bufferBytes <= 0 {
		bufferBytes = 256 * 1024
	}
	return &Link{
		sim:      sim,
		Capacity: capacity,
		Prop:     prop,
		Next:     next,
		premQ:    list.New(),
		beQ:      list.New(),
		bufLimit: bufferBytes,
	}
}

// Receive enqueues the packet, dropping on buffer overflow.
func (l *Link) Receive(p *Packet) {
	if p.Class == Premium {
		if l.premBytes+p.Size > l.bufLimit {
			l.Drops.Dropped++
			return
		}
		l.premQ.PushBack(p)
		l.premBytes += p.Size
	} else {
		if l.beBytes+p.Size > l.bufLimit {
			l.Drops.Dropped++
			return
		}
		l.beQ.PushBack(p)
		l.beBytes += p.Size
	}
	if !l.busy {
		l.transmitNext()
	}
}

func (l *Link) pop() *Packet {
	if e := l.premQ.Front(); e != nil {
		l.premQ.Remove(e)
		p := e.Value.(*Packet)
		l.premBytes -= p.Size
		return p
	}
	if e := l.beQ.Front(); e != nil {
		l.beQ.Remove(e)
		p := e.Value.(*Packet)
		l.beBytes -= p.Size
		return p
	}
	return nil
}

func (l *Link) transmitNext() {
	p := l.pop()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	tx := time.Duration(float64(p.Size*8) / float64(l.Capacity) * float64(time.Second))
	pkt := p
	if _, err := l.sim.After(tx, func() {
		l.TxBytes += int64(pkt.Size)
		// Delivery after propagation happens in parallel with the next
		// transmission.
		if _, err := l.sim.After(l.Prop, func() { l.Next.Receive(pkt) }); err != nil {
			l.Drops.Dropped++
		}
		l.transmitNext()
	}); err != nil {
		l.Drops.Dropped++
		l.busy = false
	}
}

// QueuedBytes reports current occupancy (premium, best effort).
func (l *Link) QueuedBytes() (int, int) { return l.premBytes, l.beBytes }

// Sink terminates flows and accumulates statistics. It is safe for
// concurrent use; Stats returns a snapshot copy.
type Sink struct {
	sim   *dsim.Sim
	mu    sync.Mutex
	flows map[FlowID]*FlowStats
}

// NewSink creates an empty sink.
func NewSink(sim *dsim.Sim) *Sink {
	return &Sink{sim: sim, flows: make(map[FlowID]*FlowStats)}
}

// Receive records the packet.
func (s *Sink) Receive(p *Packet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.flows[p.Flow]
	if st == nil {
		st = &FlowStats{RxBytesByCls: make(map[Class]int64), FirstRx: s.sim.Now()}
		s.flows[p.Flow] = st
	}
	now := s.sim.Now()
	st.RxPackets++
	st.RxBytes += int64(p.Size)
	st.RxBytesByCls[p.Class] += int64(p.Size)
	st.LastRx = now
	st.LatencySum += now - p.Sent
}

// Stats returns a snapshot of the accumulated statistics for flow
// (nil if none).
func (s *Sink) Stats(flow FlowID) *FlowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.flows[flow]
	if st == nil {
		return nil
	}
	cp := *st
	cp.RxBytesByCls = make(map[Class]int64, len(st.RxBytesByCls))
	for c, b := range st.RxBytesByCls {
		cp.RxBytesByCls[c] = b
	}
	return &cp
}

// Flows lists the flows observed.
func (s *Sink) Flows() []FlowID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FlowID, 0, len(s.flows))
	for f := range s.flows {
		out = append(out, f)
	}
	return out
}
