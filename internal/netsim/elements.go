package netsim

import (
	"container/list"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

// Source is a constant-bit-rate traffic generator for one flow. It
// emits fixed-size packets with the configured class marking; the
// first edge device downstream decides their fate.
type Source struct {
	sim   *dsim.Sim
	Flow  FlowID
	Rate  units.Bandwidth
	Size  int // packet size, bytes
	Class Class
	Next  Receiver
	Start time.Duration
	Stop  time.Duration
	// Jitter randomises each inter-packet gap by up to ±Jitter
	// (fraction of the nominal interval), using a deterministic
	// per-flow PRNG. Real sources are never perfectly periodic; without
	// jitter, same-rate CBR flows phase-lock against token-bucket
	// policers and produce pathological win/lose patterns.
	Jitter float64

	emitted int64
	rng     uint64
}

// NewSource creates a CBR source; call Install to begin emitting.
func NewSource(sim *dsim.Sim, flow FlowID, rate units.Bandwidth, pktSize int, class Class, next Receiver) *Source {
	return &Source{sim: sim, Flow: flow, Rate: rate, Size: pktSize, Class: class, Next: next}
}

// Install schedules the first emission. Stop of zero means "run until
// the simulation horizon".
func (s *Source) Install(start, stop time.Duration) error {
	s.Start, s.Stop = start, stop
	_, err := s.sim.Schedule(start, s.emit)
	return err
}

// interval is the inter-packet gap for the CBR schedule, with
// deterministic jitter applied when configured.
func (s *Source) interval() time.Duration {
	if s.Rate <= 0 {
		return time.Hour
	}
	secs := float64(s.Size*8) / float64(s.Rate)
	iv := time.Duration(secs * float64(time.Second))
	if s.Jitter > 0 {
		u := s.nextRand() // in [0, 1)
		factor := 1 + s.Jitter*(2*u-1)
		iv = time.Duration(float64(iv) * factor)
		if iv <= 0 {
			iv = time.Nanosecond
		}
	}
	return iv
}

// nextRand is a per-source xorshift64* generator seeded from the flow
// id, keeping runs reproducible.
func (s *Source) nextRand() float64 {
	if s.rng == 0 {
		s.rng = 0x9E3779B97F4A7C15
		for _, b := range []byte(s.Flow) {
			s.rng = (s.rng ^ uint64(b)) * 0x100000001B3
		}
		if s.rng == 0 {
			s.rng = 1
		}
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return float64(s.rng>>11) / float64(1<<53)
}

func (s *Source) emit() {
	now := s.sim.Now()
	if s.Stop > 0 && now >= s.Stop {
		return
	}
	s.emitted++
	s.Next.Receive(newPacket(s.Flow, s.Size, s.Class, now))
	_, _ = s.sim.After(s.interval(), s.emit)
}

// Emitted returns the number of packets generated so far.
func (s *Source) Emitted() int64 { return s.emitted }

// EdgeMarker is the first-hop device of a DiffServ domain: it
// recognises packets "on a per flow base" and marks conforming packets
// of flows with an installed reservation as Premium; everything else
// is (re)marked best effort. This is the only per-flow element in the
// network, exactly as the DiffServ architecture prescribes.
type EdgeMarker struct {
	Next Receiver
	// meters maps flow -> its reservation profile meter.
	meters map[FlowID]*TokenBucket
	nowFn  func() time.Duration
	Drops  DropStats
}

// NewEdgeMarker creates an edge marker feeding next.
func NewEdgeMarker(sim *dsim.Sim, next Receiver) *EdgeMarker {
	return &EdgeMarker{Next: next, meters: make(map[FlowID]*TokenBucket), nowFn: sim.Now}
}

// InstallReservation gives flow a premium profile (what the BB does to
// the edge router when a reservation is granted).
func (m *EdgeMarker) InstallReservation(flow FlowID, profile sla.TrafficProfile) {
	m.meters[flow] = NewTokenBucket(profile.Rate, profile.BucketBytes)
}

// RemoveReservation tears the profile down.
func (m *EdgeMarker) RemoveReservation(flow FlowID) {
	delete(m.meters, flow)
}

// Receive classifies and marks the packet.
func (m *EdgeMarker) Receive(p *Packet) {
	meter, reserved := m.meters[p.Flow]
	if !reserved {
		p.Class = BestEffort
		m.Next.Receive(p)
		return
	}
	if meter.Conform(p.Size, m.nowFn()) {
		p.Class = Premium
	} else {
		// Out-of-profile traffic of a reserved flow rides best effort.
		p.Class = BestEffort
		m.Drops.Remarked++
	}
	m.Next.Receive(p)
}

// Policer is a per-aggregate ingress policer: it meters the *sum* of
// premium traffic entering a domain against the admitted aggregate
// profile, without distinguishing flows. Non-conforming premium
// packets are dropped, remarked or shaped per the SLA's excess
// treatment. Best-effort packets pass untouched.
type Policer struct {
	sim    *dsim.Sim
	Next   Receiver
	meter  *TokenBucket
	excess sla.ExcessTreatment
	Drops  DropStats
}

// NewPolicer creates an ingress policer with the given aggregate
// profile.
func NewPolicer(sim *dsim.Sim, profile sla.TrafficProfile, excess sla.ExcessTreatment, next Receiver) *Policer {
	return &Policer{
		sim:    sim,
		Next:   next,
		meter:  NewTokenBucket(profile.Rate, profile.BucketBytes),
		excess: excess,
	}
}

// SetAggregateRate reconfigures the admitted aggregate (what the BB
// does as reservations come and go).
func (po *Policer) SetAggregateRate(rate units.Bandwidth, bucketBytes int64) {
	po.meter = NewTokenBucket(rate, bucketBytes)
}

// Receive polices premium packets against the aggregate profile.
func (po *Policer) Receive(p *Packet) {
	if p.Class != Premium {
		po.Next.Receive(p)
		return
	}
	now := po.sim.Now()
	if po.meter.Conform(p.Size, now) {
		po.Next.Receive(p)
		return
	}
	switch po.excess {
	case sla.Drop:
		po.Drops.Dropped++
	case sla.Remark:
		p.Class = BestEffort
		po.Drops.Remarked++
		po.Next.Receive(p)
	case sla.Shape:
		po.Drops.Shaped++
		delay := po.meter.TimeToConform(p.Size, now)
		pkt := p
		if _, err := po.sim.After(delay, func() {
			if po.meter.Conform(pkt.Size, po.sim.Now()) {
				po.Next.Receive(pkt)
			} else {
				po.Drops.Dropped++
			}
		}); err != nil {
			po.Drops.Dropped++
		}
	}
}

// Link models an output port plus wire: strict-priority service
// (premium before best effort), finite per-class buffers, a
// transmission rate and a propagation delay.
type Link struct {
	sim      *dsim.Sim
	Capacity units.Bandwidth
	Prop     time.Duration
	Next     Receiver
	// BufferBytes bounds each queue; zero means 256 KB.
	premQ, beQ         *list.List
	premBytes, beBytes int
	bufLimit           int
	busy               bool
	Drops              DropStats
	TxBytes            int64
}

// NewLink creates a link feeding next.
func NewLink(sim *dsim.Sim, capacity units.Bandwidth, prop time.Duration, bufferBytes int, next Receiver) *Link {
	if bufferBytes <= 0 {
		bufferBytes = 256 * 1024
	}
	return &Link{
		sim:      sim,
		Capacity: capacity,
		Prop:     prop,
		Next:     next,
		premQ:    list.New(),
		beQ:      list.New(),
		bufLimit: bufferBytes,
	}
}

// Receive enqueues the packet, dropping on buffer overflow.
func (l *Link) Receive(p *Packet) {
	if p.Class == Premium {
		if l.premBytes+p.Size > l.bufLimit {
			l.Drops.Dropped++
			return
		}
		l.premQ.PushBack(p)
		l.premBytes += p.Size
	} else {
		if l.beBytes+p.Size > l.bufLimit {
			l.Drops.Dropped++
			return
		}
		l.beQ.PushBack(p)
		l.beBytes += p.Size
	}
	if !l.busy {
		l.transmitNext()
	}
}

func (l *Link) pop() *Packet {
	if e := l.premQ.Front(); e != nil {
		l.premQ.Remove(e)
		p := e.Value.(*Packet)
		l.premBytes -= p.Size
		return p
	}
	if e := l.beQ.Front(); e != nil {
		l.beQ.Remove(e)
		p := e.Value.(*Packet)
		l.beBytes -= p.Size
		return p
	}
	return nil
}

func (l *Link) transmitNext() {
	p := l.pop()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	tx := time.Duration(float64(p.Size*8) / float64(l.Capacity) * float64(time.Second))
	pkt := p
	if _, err := l.sim.After(tx, func() {
		l.TxBytes += int64(pkt.Size)
		// Delivery after propagation happens in parallel with the next
		// transmission.
		if _, err := l.sim.After(l.Prop, func() { l.Next.Receive(pkt) }); err != nil {
			l.Drops.Dropped++
		}
		l.transmitNext()
	}); err != nil {
		l.Drops.Dropped++
		l.busy = false
	}
}

// QueuedBytes reports current occupancy (premium, best effort).
func (l *Link) QueuedBytes() (int, int) { return l.premBytes, l.beBytes }

// Sink terminates flows and accumulates statistics.
type Sink struct {
	sim   *dsim.Sim
	flows map[FlowID]*FlowStats
}

// NewSink creates an empty sink.
func NewSink(sim *dsim.Sim) *Sink {
	return &Sink{sim: sim, flows: make(map[FlowID]*FlowStats)}
}

// Receive records the packet.
func (s *Sink) Receive(p *Packet) {
	st := s.flows[p.Flow]
	if st == nil {
		st = &FlowStats{RxBytesByCls: make(map[Class]int64), FirstRx: s.sim.Now()}
		s.flows[p.Flow] = st
	}
	now := s.sim.Now()
	st.RxPackets++
	st.RxBytes += int64(p.Size)
	st.RxBytesByCls[p.Class] += int64(p.Size)
	st.LastRx = now
	st.LatencySum += now - p.Sent
}

// Stats returns the accumulated statistics for flow (nil if none).
func (s *Sink) Stats(flow FlowID) *FlowStats { return s.flows[flow] }

// Flows lists the flows observed.
func (s *Sink) Flows() []FlowID {
	out := make([]FlowID, 0, len(s.flows))
	for f := range s.flows {
		out = append(out, f)
	}
	return out
}
