package netsim

import (
	"testing"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

func TestOnOffMeanRate(t *testing.T) {
	s := &OnOffSource{PeakRate: 20 * units.Mbps, OnTime: 10 * time.Millisecond, OffTime: 10 * time.Millisecond}
	if got := s.MeanRate(); got != 10*units.Mbps {
		t.Errorf("mean rate = %v, want 10Mb/s", got)
	}
	s.OffTime = 30 * time.Millisecond
	if got := s.MeanRate(); got != 5*units.Mbps {
		t.Errorf("mean rate = %v, want 5Mb/s", got)
	}
	s.OnTime, s.OffTime = 0, 0
	if s.MeanRate() != 0 {
		t.Error("degenerate duty cycle must yield zero")
	}
}

func TestOnOffDeliversApproximateMeanRate(t *testing.T) {
	sim := dsim.New()
	sink := NewSink(sim)
	src := NewOnOffSource(sim, "bursty", 20*units.Mbps, 1250, BestEffort,
		10*time.Millisecond, 10*time.Millisecond, sink)
	if err := src.Install(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	sim.Run(3 * time.Second)
	st := sink.Stats("bursty")
	if st == nil {
		t.Fatal("no packets delivered")
	}
	gp := st.Goodput(0, 2*time.Second)
	// Mean is 10 Mb/s; the random duty cycle wanders, allow ±30%.
	if gp < 7e6 || gp > 13e6 {
		t.Errorf("goodput = %.2f Mb/s, want ~10", gp/1e6)
	}
}

func TestOnOffBurstsAbsorbedByMatchingBucket(t *testing.T) {
	// A bursty flow whose burst volume fits the negotiated bucket must
	// stay entirely premium through the edge marker.
	sim := dsim.New()
	sink := NewSink(sim)
	marker := NewEdgeMarker(sim, sink)
	// 20 Mb/s peak for up to 15 ms = max 37.5 kB burst; profile rate
	// equals the mean (10 Mb/s) with a 40 kB bucket.
	marker.InstallReservation("bursty", sla.TrafficProfile{Rate: 10 * units.Mbps, BucketBytes: 40_000})
	src := NewOnOffSource(sim, "bursty", 20*units.Mbps, 1250, BestEffort,
		10*time.Millisecond, 10*time.Millisecond, sink)
	src.Next = marker
	if err := src.Install(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	sim.Run(3 * time.Second)
	st := sink.Stats("bursty")
	if st == nil {
		t.Fatal("no packets delivered")
	}
	be := st.RxBytesByCls[BestEffort]
	prem := st.RxBytesByCls[Premium]
	if prem == 0 {
		t.Fatal("nothing marked premium")
	}
	if float64(be) > 0.05*float64(prem+be) {
		t.Errorf("%.1f%% of a conforming bursty flow was demoted", 100*float64(be)/float64(prem+be))
	}
}

func TestOnOffBurstsClippedByTightBucket(t *testing.T) {
	// The same flow against a tiny bucket: bursts must overflow and be
	// demoted, even though the mean rate matches.
	sim := dsim.New()
	sink := NewSink(sim)
	marker := NewEdgeMarker(sim, sink)
	marker.InstallReservation("bursty", sla.TrafficProfile{Rate: 10 * units.Mbps, BucketBytes: 2_500})
	src := NewOnOffSource(sim, "bursty", 20*units.Mbps, 1250, BestEffort,
		10*time.Millisecond, 10*time.Millisecond, marker)
	if err := src.Install(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	sim.Run(3 * time.Second)
	if marker.Drops.Remarked == 0 {
		t.Error("tight bucket never clipped the bursts")
	}
}

func TestOnOffRespectsStopTime(t *testing.T) {
	sim := dsim.New()
	sink := NewSink(sim)
	src := NewOnOffSource(sim, "s", 10*units.Mbps, 1250, BestEffort,
		5*time.Millisecond, 5*time.Millisecond, sink)
	if err := src.Install(0, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sim.Run(time.Second)
	st := sink.Stats("s")
	if st == nil {
		t.Fatal("no packets")
	}
	if st.LastRx > 60*time.Millisecond {
		t.Errorf("packet delivered at %v, after stop", st.LastRx)
	}
}
