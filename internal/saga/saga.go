// Package saga is the broker's reusable two-phase compensation layer:
// a multi-step operation registers a compensation for every step it
// completes, then either commits (nothing to undo) or aborts, at which
// point the registered compensations run — persistently retried with
// backoff — until each settles. Sagas are journal-backed: every
// transition appends a record through the caller's write-ahead log, so
// a crashed coordinator resumes its unfinished rollbacks on recovery
// (presumed abort: a saga that never committed is aborted and
// compensated). The bandwidth broker drives it for multi-path split
// reservations and for the downstream-cancel rollbacks that used to be
// an ad-hoc goroutine in internal/bb/robust.go.
package saga

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Journal is the append-only log sagas persist through. *journal.Journal
// satisfies it; a nil Journal keeps the coordinator memory-only (sagas
// still run, they just don't survive a crash).
type Journal interface {
	Append(op string, v any) error
}

// Journal record vocabulary. Records marshal as JSON through the
// journal's fallback encoding; the "saga." prefix routes them to
// ApplyRecord during recovery and on replication followers.
const (
	OpBegin  = "saga.begin"  // saga created
	OpStep   = "saga.step"   // compensation registered for a completed step
	OpCommit = "saga.commit" // forward path succeeded, compensations dropped
	OpAbort  = "saga.abort"  // forward path failed, compensations due
	OpComp   = "saga.comp"   // one compensation executed to completion
	OpDone   = "saga.done"   // every compensation settled, saga closed
)

// IsSagaOp reports whether a journal op belongs to this vocabulary.
func IsSagaOp(op string) bool {
	return len(op) > 5 && op[:5] == "saga."
}

// Step is one registered compensation: Kind selects the executor, Data
// is its opaque (JSON) argument. Done flips when the compensation has
// executed to completion after an abort.
type Step struct {
	ID   int             `json:"id"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
	Done bool            `json:"done,omitempty"`
}

// Exec runs one compensation. A nil error means the compensation
// settled; an error schedules a retry with backoff.
type Exec func(data []byte) error

// Snap is the snapshot form of one live saga, for journal rotation.
type Snap struct {
	ID       string `json:"id"`
	Aborting bool   `json:"aborting,omitempty"`
	Steps    []Step `json:"steps,omitempty"`
}

// journal record payloads.
type beginRec struct {
	ID string `json:"id"`
}
type stepRec struct {
	ID   string `json:"id"`
	Step Step   `json:"step"`
}
type markRec struct {
	ID string `json:"id"`
}
type compRec struct {
	ID     string `json:"id"`
	StepID int    `json:"step_id"`
}

// sagaState is one live saga.
type sagaState struct {
	id       string
	steps    []Step
	aborting bool
	// abandoned marks steps this incarnation gave up on after
	// exhausting retries; they stay un-Done in the journal so a restart
	// retries them with a fresh budget.
	abandoned map[int]bool
}

func (s *sagaState) pending() *Step {
	// Compensate in reverse registration order (LIFO), skipping steps
	// already settled or abandoned this incarnation.
	for i := len(s.steps) - 1; i >= 0; i-- {
		st := &s.steps[i]
		if !st.Done && !s.abandoned[st.ID] {
			return st
		}
	}
	return nil
}

// Options configures a Coordinator.
type Options struct {
	// Journal persists transitions (nil: memory-only).
	Journal Journal
	// Backoff is the initial compensation retry delay, doubling per
	// attempt (default 10ms).
	Backoff time.Duration
	// MaxAttempts bounds compensation retries per incarnation (default
	// 5). An exhausted step is abandoned — reported through OnAbandoned
	// and left un-done in the journal, so a restarted coordinator
	// retries it with a fresh budget.
	MaxAttempts int
	// OnAborted fires when a saga enters the aborting state, including
	// presumed aborts during Resume.
	OnAborted func(id string)
	// OnCompensated fires after each compensation settles.
	OnCompensated func(id string, step Step)
	// OnAbandoned fires when a compensation exhausts MaxAttempts.
	OnAbandoned func(id string, step Step)
}

// Coordinator owns the live saga set and the compensation workers.
type Coordinator struct {
	mu      sync.Mutex
	opts    Options
	journal Journal
	execs   map[string]Exec
	sagas   map[string]*sagaState
	nextID  map[string]int // per-saga step id mint

	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// New builds a coordinator. Executors are registered before any saga
// runs; the journal may be attached later (recovery opens it after the
// coordinator exists).
func New(opts Options) *Coordinator {
	if opts.Backoff <= 0 {
		opts.Backoff = 10 * time.Millisecond
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	return &Coordinator{
		opts:    opts,
		journal: opts.Journal,
		execs:   make(map[string]Exec),
		sagas:   make(map[string]*sagaState),
		nextID:  make(map[string]int),
		stop:    make(chan struct{}),
	}
}

// RegisterExec installs the executor for a compensation kind.
func (c *Coordinator) RegisterExec(kind string, fn Exec) {
	c.mu.Lock()
	c.execs[kind] = fn
	c.mu.Unlock()
}

// AttachJournal wires the write-ahead log in after recovery replayed
// into the coordinator.
func (c *Coordinator) AttachJournal(j Journal) {
	c.mu.Lock()
	c.journal = j
	c.mu.Unlock()
}

func (c *Coordinator) append(op string, v any) {
	c.mu.Lock()
	j := c.journal
	c.mu.Unlock()
	if j == nil {
		return
	}
	_ = j.Append(op, v)
}

// Begin creates a saga. IDs are caller-minted and must be unique among
// live sagas (the broker stamps its epoch counter into them).
func (c *Coordinator) Begin(id string) error {
	c.mu.Lock()
	if _, dup := c.sagas[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("saga: duplicate id %q", id)
	}
	c.sagas[id] = &sagaState{id: id, abandoned: make(map[int]bool)}
	c.mu.Unlock()
	c.append(OpBegin, beginRec{ID: id})
	return nil
}

// Did registers the compensation for a step the forward path just
// completed (or is about to attempt with an unknowable outcome — the
// compensation must then be idempotent). Journaled before it returns,
// so a crash after the forward action still finds the debt on replay.
func (c *Coordinator) Did(id, kind string, data []byte) error {
	c.mu.Lock()
	s, ok := c.sagas[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("saga: unknown saga %q", id)
	}
	c.nextID[id]++
	st := Step{ID: c.nextID[id], Kind: kind, Data: append(json.RawMessage(nil), data...)}
	s.steps = append(s.steps, st)
	c.mu.Unlock()
	c.append(OpStep, stepRec{ID: id, Step: st})
	return nil
}

// Commit closes a saga whose forward path fully succeeded: the
// registered compensations are dropped.
func (c *Coordinator) Commit(id string) {
	c.mu.Lock()
	delete(c.sagas, id)
	delete(c.nextID, id)
	c.mu.Unlock()
	c.append(OpCommit, markRec{ID: id})
}

// Abort marks a saga failed and starts its compensation worker. Safe
// to call once per saga; re-aborts no-op.
func (c *Coordinator) Abort(id string) {
	c.mu.Lock()
	s, ok := c.sagas[id]
	if !ok || s.aborting || c.stopped {
		c.mu.Unlock()
		return
	}
	s.aborting = true
	c.wg.Add(1)
	c.mu.Unlock()
	c.append(OpAbort, markRec{ID: id})
	if c.opts.OnAborted != nil {
		c.opts.OnAborted(id)
	}
	go c.compensate(id)
}

// RunOne is the fire-and-forget form: a single compensation that must
// eventually execute (the broker's downstream rollback cancel). It is
// a one-step saga born aborting.
func (c *Coordinator) RunOne(id, kind string, data []byte) error {
	if err := c.Begin(id); err != nil {
		return err
	}
	if err := c.Did(id, kind, data); err != nil {
		return err
	}
	c.Abort(id)
	return nil
}

// compensate drains a saga's pending compensations, newest first, each
// retried with exponential backoff up to MaxAttempts. When every step
// settled the saga closes (OpDone); abandoned steps keep the saga held
// open so snapshots and restarts retain the debt.
func (c *Coordinator) compensate(id string) {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		s, ok := c.sagas[id]
		if !ok || c.stopped {
			c.mu.Unlock()
			return
		}
		st := s.pending()
		if st == nil {
			clean := len(s.abandoned) == 0
			if clean {
				delete(c.sagas, id)
				delete(c.nextID, id)
			}
			c.mu.Unlock()
			if clean {
				c.append(OpDone, markRec{ID: id})
			}
			return
		}
		step := *st
		exec := c.execs[step.Kind]
		c.mu.Unlock()

		settled := false
		backoff := c.opts.Backoff
		for attempt := 0; exec != nil && attempt < c.opts.MaxAttempts; attempt++ {
			if attempt > 0 {
				select {
				case <-c.stop:
					return
				case <-time.After(backoff):
				}
				backoff *= 2
			}
			if err := exec(step.Data); err == nil {
				settled = true
				break
			}
		}
		if settled {
			c.mu.Lock()
			for i := range s.steps {
				if s.steps[i].ID == step.ID {
					s.steps[i].Done = true
				}
			}
			c.mu.Unlock()
			c.append(OpComp, compRec{ID: id, StepID: step.ID})
			if c.opts.OnCompensated != nil {
				c.opts.OnCompensated(id, step)
			}
			continue
		}
		// Exhausted (or no executor): abandon for this incarnation. The
		// journal keeps the step un-done, so a restart retries it.
		c.mu.Lock()
		s.abandoned[step.ID] = true
		c.mu.Unlock()
		if c.opts.OnAbandoned != nil {
			c.opts.OnAbandoned(id, step)
		}
	}
}

// ApplyRecord replays one journal record into the coordinator's state
// without running anything: boot recovery and replication followers
// share it. Returns whether the op belonged to the saga vocabulary.
func (c *Coordinator) ApplyRecord(op string, decode func(any) error) (bool, error) {
	switch op {
	case OpBegin:
		var r beginRec
		if err := decode(&r); err != nil {
			return false, err
		}
		c.mu.Lock()
		if _, dup := c.sagas[r.ID]; !dup {
			c.sagas[r.ID] = &sagaState{id: r.ID, abandoned: make(map[int]bool)}
		}
		c.mu.Unlock()
	case OpStep:
		var r stepRec
		if err := decode(&r); err != nil {
			return false, err
		}
		c.mu.Lock()
		if s, ok := c.sagas[r.ID]; ok {
			dup := false
			for i := range s.steps {
				if s.steps[i].ID == r.Step.ID {
					dup = true
				}
			}
			if !dup {
				s.steps = append(s.steps, r.Step)
				if r.Step.ID > c.nextID[r.ID] {
					c.nextID[r.ID] = r.Step.ID
				}
			}
		}
		c.mu.Unlock()
	case OpCommit, OpDone:
		var r markRec
		if err := decode(&r); err != nil {
			return false, err
		}
		c.mu.Lock()
		delete(c.sagas, r.ID)
		delete(c.nextID, r.ID)
		c.mu.Unlock()
	case OpAbort:
		var r markRec
		if err := decode(&r); err != nil {
			return false, err
		}
		c.mu.Lock()
		if s, ok := c.sagas[r.ID]; ok {
			s.aborting = true
		}
		c.mu.Unlock()
	case OpComp:
		var r compRec
		if err := decode(&r); err != nil {
			return false, err
		}
		c.mu.Lock()
		if s, ok := c.sagas[r.ID]; ok {
			for i := range s.steps {
				if s.steps[i].ID == r.StepID {
					s.steps[i].Done = true
				}
			}
		}
		c.mu.Unlock()
	default:
		return false, nil
	}
	return true, nil
}

// Resume restarts compensation after recovery: every recovered saga is
// presumed aborted — one that had committed would have vanished with
// its OpCommit record — and its unfinished compensations re-run with a
// fresh retry budget. Returns how many sagas resumed. Call once, after
// ApplyRecord/RestoreJSON replayed everything and the journal is
// attached.
func (c *Coordinator) Resume() int {
	c.mu.Lock()
	var ids []string
	var presumed []string
	for id, s := range c.sagas {
		if !s.aborting {
			presumed = append(presumed, id)
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	sort.Strings(presumed)
	for _, id := range ids {
		c.sagas[id].aborting = true
		c.wg.Add(1)
	}
	c.mu.Unlock()
	for _, id := range presumed {
		c.append(OpAbort, markRec{ID: id})
	}
	for _, id := range ids {
		if c.opts.OnAborted != nil {
			c.opts.OnAborted(id)
		}
		go c.compensate(id)
	}
	return len(ids)
}

// SnapshotJSON serialises the live saga set, sorted for deterministic
// bytes; nil when no sagas are live. Journal rotation embeds it in the
// broker snapshot.
func (c *Coordinator) SnapshotJSON() []byte {
	c.mu.Lock()
	snaps := make([]Snap, 0, len(c.sagas))
	for _, s := range c.sagas {
		sn := Snap{ID: s.id, Aborting: s.aborting, Steps: append([]Step(nil), s.steps...)}
		snaps = append(snaps, sn)
	}
	c.mu.Unlock()
	if len(snaps) == 0 {
		return nil
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].ID < snaps[j].ID })
	out, err := json.Marshal(snaps)
	if err != nil {
		return nil
	}
	return out
}

// RestoreJSON replaces the saga set with a snapshot's. Workers are not
// started — Resume does that once recovery completes.
func (c *Coordinator) RestoreJSON(data []byte) error {
	var snaps []Snap
	if err := json.Unmarshal(data, &snaps); err != nil {
		return fmt.Errorf("saga: decoding snapshot: %w", err)
	}
	c.mu.Lock()
	c.sagas = make(map[string]*sagaState, len(snaps))
	c.nextID = make(map[string]int, len(snaps))
	for _, sn := range snaps {
		s := &sagaState{id: sn.ID, aborting: sn.Aborting, abandoned: make(map[int]bool)}
		s.steps = append(s.steps, sn.Steps...)
		for _, st := range sn.Steps {
			if st.ID > c.nextID[sn.ID] {
				c.nextID[sn.ID] = st.ID
			}
		}
		c.sagas[sn.ID] = s
	}
	c.mu.Unlock()
	return nil
}

// Live reports how many sagas are open (active or compensating) —
// rollback debt an operator can alarm on.
func (c *Coordinator) Live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sagas)
}

// Close stops compensation workers between attempts and waits for
// in-flight executions to return. Pending debt stays journaled.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
}
