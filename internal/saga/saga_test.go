package saga

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeJournal records every appended (op, payload) pair and can replay
// them into a fresh coordinator the way recovery does.
type fakeJournal struct {
	mu   sync.Mutex
	ops  []string
	recs []json.RawMessage
}

func (f *fakeJournal) Append(op string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.ops = append(f.ops, op)
	f.recs = append(f.recs, raw)
	f.mu.Unlock()
	return nil
}

func (f *fakeJournal) replayInto(c *Coordinator) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, op := range f.ops {
		raw := f.recs[i]
		handled, err := c.ApplyRecord(op, func(v any) error { return json.Unmarshal(raw, v) })
		if err != nil {
			return err
		}
		if !handled {
			return fmt.Errorf("op %q not handled", op)
		}
	}
	return nil
}

func (f *fakeJournal) opList() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.ops...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func assertOps(t *testing.T, got, want []string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("journal ops\n got %v\nwant %v", got, want)
	}
}

// TestCommitDropsCompensations: a committed saga never runs its
// compensations and leaves no live state.
func TestCommitDropsCompensations(t *testing.T) {
	j := &fakeJournal{}
	c := New(Options{Journal: j})
	defer c.Close()
	ran := 0
	c.RegisterExec("undo", func([]byte) error { ran++; return nil })
	if err := c.Begin("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Did("s1", "undo", []byte(`"a"`)); err != nil {
		t.Fatal(err)
	}
	if err := c.Did("s1", "undo", []byte(`"b"`)); err != nil {
		t.Fatal(err)
	}
	c.Commit("s1")
	if ran != 0 {
		t.Fatalf("compensations ran %d times after commit", ran)
	}
	if c.Live() != 0 {
		t.Fatalf("live=%d after commit", c.Live())
	}
	assertOps(t, j.opList(), []string{OpBegin, OpStep, OpStep, OpCommit})
}

// TestAbortCompensatesInReverse: aborting runs compensations newest
// first, journals each, and closes the saga with OpDone.
func TestAbortCompensatesInReverse(t *testing.T) {
	j := &fakeJournal{}
	c := New(Options{Journal: j})
	defer c.Close()
	var mu sync.Mutex
	var order []string
	c.RegisterExec("undo", func(data []byte) error {
		var s string
		_ = json.Unmarshal(data, &s)
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
		return nil
	})
	if err := c.Begin("s1"); err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"first", "second", "third"} {
		if err := c.Did("s1", "undo", []byte(`"`+d+`"`)); err != nil {
			t.Fatal(err)
		}
	}
	c.Abort("s1")
	waitFor(t, "saga to close", func() bool { return c.Live() == 0 })
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(order, []string{"third", "second", "first"}) {
		t.Fatalf("compensation order %v, want reverse registration order", order)
	}
	assertOps(t, j.opList(), []string{
		OpBegin, OpStep, OpStep, OpStep, OpAbort, OpComp, OpComp, OpComp, OpDone,
	})
}

// TestRetryWithBackoff: a failing compensation retries and eventually
// settles within the attempt budget.
func TestRetryWithBackoff(t *testing.T) {
	j := &fakeJournal{}
	c := New(Options{Journal: j, Backoff: time.Millisecond, MaxAttempts: 5})
	defer c.Close()
	var mu sync.Mutex
	calls := 0
	c.RegisterExec("flaky", func([]byte) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err := c.RunOne("r1", "flaky", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "compensation to settle", func() bool { return c.Live() == 0 })
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Fatalf("executor ran %d times, want 3", calls)
	}
	assertOps(t, j.opList(), []string{OpBegin, OpStep, OpAbort, OpComp, OpDone})
}

// TestAbandonment: a compensation that never succeeds is abandoned
// after MaxAttempts — reported via OnAbandoned, never journaled done,
// and the saga stays live (the debt is visible).
func TestAbandonment(t *testing.T) {
	j := &fakeJournal{}
	var abandoned []Step
	var mu sync.Mutex
	done := make(chan struct{})
	c := New(Options{
		Journal:     j,
		Backoff:     time.Millisecond,
		MaxAttempts: 3,
		OnAbandoned: func(id string, s Step) {
			mu.Lock()
			abandoned = append(abandoned, s)
			mu.Unlock()
			close(done)
		},
	})
	defer c.Close()
	calls := 0
	c.RegisterExec("doomed", func([]byte) error {
		mu.Lock()
		calls++
		mu.Unlock()
		return errors.New("permanent")
	})
	if err := c.RunOne("r1", "doomed", []byte(`"x"`)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("OnAbandoned never fired")
	}
	waitFor(t, "worker to park", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(abandoned) == 1
	})
	mu.Lock()
	if calls != 3 {
		mu.Unlock()
		t.Fatalf("executor ran %d times, want MaxAttempts=3", calls)
	}
	if abandoned[0].Kind != "doomed" {
		mu.Unlock()
		t.Fatalf("abandoned step kind %q", abandoned[0].Kind)
	}
	mu.Unlock()
	if c.Live() != 1 {
		t.Fatalf("live=%d, abandoned saga must stay open", c.Live())
	}
	// No OpComp, no OpDone: the journal still owes this compensation.
	assertOps(t, j.opList(), []string{OpBegin, OpStep, OpAbort})
}

// TestCrashReplayResumesCompensation: replay a journal that ends
// mid-abort into a fresh coordinator; Resume re-runs the unfinished
// compensations (and only those) with a fresh budget.
func TestCrashReplayResumesCompensation(t *testing.T) {
	// First incarnation: registers two steps, compensates one, then
	// "crashes" (we stop it before the second settles).
	j := &fakeJournal{}
	c1 := New(Options{Journal: j, Backoff: time.Millisecond, MaxAttempts: 1})
	block := errors.New("down")
	var mu sync.Mutex
	firstDone := false
	c1.RegisterExec("undo", func(data []byte) error {
		var s string
		_ = json.Unmarshal(data, &s)
		mu.Lock()
		defer mu.Unlock()
		if s == "late" { // registered second, compensated first
			firstDone = true
			return nil
		}
		return block // the other one keeps failing until the crash
	})
	if err := c1.Begin("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Did("s1", "undo", []byte(`"early"`)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Did("s1", "undo", []byte(`"late"`)); err != nil {
		t.Fatal(err)
	}
	c1.Abort("s1")
	waitFor(t, "first compensation", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstDone
	})
	waitFor(t, "late comp journaled", func() bool { return len(j.opList()) >= 5 })
	c1.Close() // crash

	// Second incarnation: replay the journal, then Resume.
	c2 := New(Options{Backoff: time.Millisecond, MaxAttempts: 3})
	defer c2.Close()
	var replayed []string
	c2.RegisterExec("undo", func(data []byte) error {
		var s string
		_ = json.Unmarshal(data, &s)
		mu.Lock()
		replayed = append(replayed, s)
		mu.Unlock()
		return nil
	})
	if err := j.replayInto(c2); err != nil {
		t.Fatal(err)
	}
	if c2.Live() != 1 {
		t.Fatalf("replay left live=%d, want 1", c2.Live())
	}
	j2 := &fakeJournal{}
	c2.AttachJournal(j2)
	if n := c2.Resume(); n != 1 {
		t.Fatalf("Resume resumed %d sagas, want 1", n)
	}
	waitFor(t, "resumed saga to close", func() bool { return c2.Live() == 0 })
	mu.Lock()
	defer mu.Unlock()
	// Only the un-compensated step re-runs: "late" settled before the
	// crash and its OpComp is in the journal.
	if !reflect.DeepEqual(replayed, []string{"early"}) {
		t.Fatalf("resumed compensations %v, want only the unfinished one", replayed)
	}
	assertOps(t, j2.opList(), []string{OpComp, OpDone})
}

// TestPresumedAbort: a saga with no abort record in the journal (crash
// before the outcome was decided) is aborted by Resume.
func TestPresumedAbort(t *testing.T) {
	j := &fakeJournal{}
	c1 := New(Options{Journal: j})
	if err := c1.Begin("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Did("s1", "undo", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	c1.Close() // crash before commit/abort

	c2 := New(Options{Backoff: time.Millisecond})
	defer c2.Close()
	var mu sync.Mutex
	compensated := 0
	c2.RegisterExec("undo", func([]byte) error {
		mu.Lock()
		compensated++
		mu.Unlock()
		return nil
	})
	if err := j.replayInto(c2); err != nil {
		t.Fatal(err)
	}
	j2 := &fakeJournal{}
	c2.AttachJournal(j2)
	var aborted []string
	c2.opts.OnAborted = func(id string) { aborted = append(aborted, id) }
	if n := c2.Resume(); n != 1 {
		t.Fatalf("Resume resumed %d, want 1", n)
	}
	waitFor(t, "presumed-abort compensation", func() bool { return c2.Live() == 0 })
	mu.Lock()
	defer mu.Unlock()
	if compensated != 1 {
		t.Fatalf("compensated %d steps, want 1", compensated)
	}
	if !reflect.DeepEqual(aborted, []string{"s1"}) {
		t.Fatalf("OnAborted calls %v", aborted)
	}
	assertOps(t, j2.opList(), []string{OpAbort, OpComp, OpDone})
}

// TestSnapshotRoundTrip: snapshot bytes are deterministic and restore
// reproduces the saga set exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	c := New(Options{})
	defer c.Close()
	for _, id := range []string{"b", "a"} { // insertion order must not matter
		if err := c.Begin(id); err != nil {
			t.Fatal(err)
		}
		if err := c.Did(id, "undo", []byte(`"`+id+`"`)); err != nil {
			t.Fatal(err)
		}
	}
	s1 := c.SnapshotJSON()
	s2 := c.SnapshotJSON()
	if string(s1) != string(s2) {
		t.Fatalf("snapshot not deterministic:\n%s\n%s", s1, s2)
	}

	c2 := New(Options{Backoff: time.Millisecond})
	defer c2.Close()
	if err := c2.RestoreJSON(s1); err != nil {
		t.Fatal(err)
	}
	if c2.Live() != 2 {
		t.Fatalf("restored live=%d, want 2", c2.Live())
	}
	if string(c2.SnapshotJSON()) != string(s1) {
		t.Fatalf("restored snapshot differs:\n%s\n%s", c2.SnapshotJSON(), s1)
	}
	// Restored sagas resume as presumed aborts and compensate.
	var mu sync.Mutex
	var got []string
	c2.RegisterExec("undo", func(data []byte) error {
		var s string
		_ = json.Unmarshal(data, &s)
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
		return nil
	})
	if n := c2.Resume(); n != 2 {
		t.Fatalf("Resume resumed %d, want 2", n)
	}
	waitFor(t, "restored sagas to close", func() bool { return c2.Live() == 0 })
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("compensated %v", got)
	}
	// Empty coordinator snapshots to nil.
	if b := c2.SnapshotJSON(); b != nil {
		t.Fatalf("empty snapshot = %q, want nil", b)
	}
}

// TestDuplicateBeginRejected pins the id-uniqueness contract.
func TestDuplicateBeginRejected(t *testing.T) {
	c := New(Options{})
	defer c.Close()
	if err := c.Begin("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin("s1"); err == nil {
		t.Fatal("duplicate Begin accepted")
	}
	if err := c.Did("nope", "undo", nil); err == nil {
		t.Fatal("Did on unknown saga accepted")
	}
}
