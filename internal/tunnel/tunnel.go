// Package tunnel manages aggregate end-to-end reservations and their
// sub-flow allocations. A tunnel is established once through the full
// hop-by-hop signalling path; afterwards "users authorized to use this
// tunnel can then request portions of this aggregate bandwidth by
// contacting just the two end domains — the intermediate domains do
// not need to be contacted as long as the total bandwidth remains less
// than the size of the tunnel."
package tunnel

import (
	"fmt"
	"sort"
	"sync"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// Endpoint is one end domain's view of an established tunnel.
type Endpoint struct {
	// RARID identifies the tunnel's establishing reservation.
	RARID string
	// Aggregate is the tunnel size.
	Aggregate units.Bandwidth
	// Window is the tunnel's validity interval.
	Window units.Window
	// PeerBB is the broker at the other end, whose identity the
	// signalling chain authenticated; only it may drive allocations
	// over the direct channel.
	PeerBB identity.DN
	// Owner is the user who established the tunnel.
	Owner identity.DN

	mu     sync.Mutex
	allocs map[string]units.Bandwidth
}

// NewEndpoint records an established tunnel at one end domain.
func NewEndpoint(rarID string, aggregate units.Bandwidth, w units.Window, peerBB, owner identity.DN) (*Endpoint, error) {
	if rarID == "" {
		return nil, fmt.Errorf("tunnel: empty RAR id")
	}
	if aggregate <= 0 {
		return nil, fmt.Errorf("tunnel: non-positive aggregate %v", aggregate)
	}
	if !w.Valid() {
		return nil, fmt.Errorf("tunnel: invalid window %v", w)
	}
	return &Endpoint{
		RARID:     rarID,
		Aggregate: aggregate,
		Window:    w,
		PeerBB:    peerBB,
		Owner:     owner,
		allocs:    make(map[string]units.Bandwidth),
	}, nil
}

// Used returns the currently allocated sub-flow total.
func (e *Endpoint) Used() units.Bandwidth {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.usedLocked()
}

func (e *Endpoint) usedLocked() units.Bandwidth {
	var sum units.Bandwidth
	for _, bw := range e.allocs {
		sum += bw
	}
	return sum
}

// Free returns the unallocated tunnel bandwidth.
func (e *Endpoint) Free() units.Bandwidth { return e.Aggregate - e.Used() }

// Allocate admits a sub-flow of bw under subID.
func (e *Endpoint) Allocate(subID string, bw units.Bandwidth) error {
	if subID == "" {
		return fmt.Errorf("tunnel: empty sub-flow id")
	}
	if bw <= 0 {
		return fmt.Errorf("tunnel: non-positive bandwidth %v", bw)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.allocs[subID]; exists {
		return fmt.Errorf("tunnel: sub-flow %q already allocated", subID)
	}
	if e.usedLocked()+bw > e.Aggregate {
		return fmt.Errorf("tunnel %s: allocation %v exceeds free capacity %v",
			e.RARID, bw, e.Aggregate-e.usedLocked())
	}
	e.allocs[subID] = bw
	return nil
}

// Release frees the sub-flow.
func (e *Endpoint) Release(subID string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.allocs[subID]; !exists {
		return fmt.Errorf("tunnel %s: unknown sub-flow %q", e.RARID, subID)
	}
	delete(e.allocs, subID)
	return nil
}

// SubFlows lists current allocations, sorted by id.
func (e *Endpoint) SubFlows() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.allocs))
	for id := range e.allocs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Registry indexes the tunnels terminating at one broker.
type Registry struct {
	mu      sync.RWMutex
	tunnels map[string]*Endpoint
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{tunnels: make(map[string]*Endpoint)}
}

// Add registers an endpoint; duplicate RAR ids are refused.
func (r *Registry) Add(e *Endpoint) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.tunnels[e.RARID]; exists {
		return fmt.Errorf("tunnel: %s already registered", e.RARID)
	}
	r.tunnels[e.RARID] = e
	return nil
}

// Get looks an endpoint up.
func (r *Registry) Get(rarID string) (*Endpoint, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.tunnels[rarID]
	return e, ok
}

// Remove tears an endpoint down.
func (r *Registry) Remove(rarID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.tunnels, rarID)
}

// Len reports the number of registered tunnels.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tunnels)
}

// SubFlowTotal reports the live sub-flow allocations summed across all
// registered tunnels.
func (r *Registry) SubFlowTotal() int {
	r.mu.RLock()
	eps := make([]*Endpoint, 0, len(r.tunnels))
	for _, e := range r.tunnels {
		eps = append(eps, e)
	}
	r.mu.RUnlock()
	total := 0
	for _, e := range eps {
		e.mu.Lock()
		total += len(e.allocs)
		e.mu.Unlock()
	}
	return total
}
