// Package tunnel manages aggregate end-to-end reservations and their
// sub-flow allocations. A tunnel is established once through the full
// hop-by-hop signalling path; afterwards "users authorized to use this
// tunnel can then request portions of this aggregate bandwidth by
// contacting just the two end domains — the intermediate domains do
// not need to be contacted as long as the total bandwidth remains less
// than the size of the tunnel."
//
// Sub-flow admission is the control plane's hot path — one tunnel may
// carry allocations for thousands of concurrent users — so an Endpoint
// is built for throughput: the live total is a running atomic counter
// (O(1) admit and release, no walk over the allocation set), and the
// sub-flow map is striped across shards keyed by sub-flow ID, so
// allocations of distinct flows never contend on one endpoint-wide
// mutex. Every successful mutation is stamped with a monotonically
// increasing generation, which is what lets a write-ahead journal
// replay concurrent-emission record streams in a correct per-flow
// order (see ReplayAlloc/ReplayRelease).
package tunnel

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// numShards stripes the sub-flow map. 16 shards keep contention
// negligible at typical goroutine counts while the per-endpoint
// footprint stays small; the shard count is an internal detail and not
// part of the snapshot format.
const numShards = 16

// shard is one stripe of the sub-flow map.
type shard struct {
	mu     sync.Mutex
	allocs map[string]units.Bandwidth
}

// Endpoint is one end domain's view of an established tunnel.
type Endpoint struct {
	// RARID identifies the tunnel's establishing reservation.
	RARID string
	// Aggregate is the tunnel size.
	Aggregate units.Bandwidth
	// Window is the tunnel's validity interval.
	Window units.Window
	// PeerBB is the broker at the other end, whose identity the
	// signalling chain authenticated; only it may drive allocations
	// over the direct channel.
	PeerBB identity.DN
	// Owner is the user who established the tunnel.
	Owner identity.DN
	// Epoch is an opaque registration stamp set by the owning broker
	// (tunnel RAR ids may be cancelled and re-established; epochs never
	// repeat). The tunnel package carries it through snapshots without
	// interpreting it.
	Epoch int64

	// used is the running sub-flow total in bits per second. Admission
	// is a CAS loop against it, so Used() is O(1) and the Aggregate
	// bound holds even for allocations racing across shards.
	used atomic.Int64
	// count tracks the live sub-flow population.
	count atomic.Int64
	// gen mints the mutation generation. It is advanced while holding
	// the mutated flow's shard lock, so generations of operations on
	// the same sub-flow ID are strictly ordered.
	gen atomic.Int64

	shards [numShards]shard
}

// NewEndpoint records an established tunnel at one end domain.
func NewEndpoint(rarID string, aggregate units.Bandwidth, w units.Window, peerBB, owner identity.DN) (*Endpoint, error) {
	if rarID == "" {
		return nil, fmt.Errorf("tunnel: empty RAR id")
	}
	if aggregate <= 0 {
		return nil, fmt.Errorf("tunnel: non-positive aggregate %v", aggregate)
	}
	if !w.Valid() {
		return nil, fmt.Errorf("tunnel: invalid window %v", w)
	}
	e := &Endpoint{
		RARID:     rarID,
		Aggregate: aggregate,
		Window:    w,
		PeerBB:    peerBB,
		Owner:     owner,
	}
	for i := range e.shards {
		e.shards[i].allocs = make(map[string]units.Bandwidth)
	}
	return e, nil
}

// shardFor picks the stripe owning a sub-flow ID (FNV-1a).
func (e *Endpoint) shardFor(subID string) *shard {
	var h uint32 = 2166136261
	for i := 0; i < len(subID); i++ {
		h ^= uint32(subID[i])
		h *= 16777619
	}
	return &e.shards[h%numShards]
}

// Used returns the currently allocated sub-flow total.
func (e *Endpoint) Used() units.Bandwidth { return units.Bandwidth(e.used.Load()) }

// Free returns the unallocated tunnel bandwidth.
func (e *Endpoint) Free() units.Bandwidth { return e.Aggregate - e.Used() }

// Len reports the number of live sub-flows.
func (e *Endpoint) Len() int { return int(e.count.Load()) }

// Gen reports the endpoint's current mutation generation.
func (e *Endpoint) Gen() int64 { return e.gen.Load() }

// Allocate admits a sub-flow of bw under subID and returns the
// mutation generation the admission was stamped with (for journaling).
func (e *Endpoint) Allocate(subID string, bw units.Bandwidth) (int64, error) {
	if subID == "" {
		return 0, fmt.Errorf("tunnel: empty sub-flow id")
	}
	if bw <= 0 {
		return 0, fmt.Errorf("tunnel: non-positive bandwidth %v", bw)
	}
	s := e.shardFor(subID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.allocs[subID]; exists {
		return 0, fmt.Errorf("tunnel: sub-flow %q already allocated", subID)
	}
	// CAS admission against the running total: allocations in other
	// shards race on used concurrently, and the loop guarantees the
	// Aggregate bound without any endpoint-wide lock.
	for {
		cur := e.used.Load()
		if units.Bandwidth(cur)+bw > e.Aggregate {
			return 0, fmt.Errorf("tunnel %s: allocation %v exceeds free capacity %v",
				e.RARID, bw, e.Aggregate-units.Bandwidth(cur))
		}
		if e.used.CompareAndSwap(cur, cur+int64(bw)) {
			break
		}
	}
	s.allocs[subID] = bw
	e.count.Add(1)
	return e.gen.Add(1), nil
}

// Release frees the sub-flow, returning the bandwidth it held and the
// mutation generation of the release.
func (e *Endpoint) Release(subID string) (units.Bandwidth, int64, error) {
	s := e.shardFor(subID)
	s.mu.Lock()
	defer s.mu.Unlock()
	bw, exists := s.allocs[subID]
	if !exists {
		return 0, 0, fmt.Errorf("tunnel %s: unknown sub-flow %q", e.RARID, subID)
	}
	delete(s.allocs, subID)
	e.used.Add(-int64(bw))
	e.count.Add(-1)
	return bw, e.gen.Add(1), nil
}

// Lookup reports the bandwidth held by a sub-flow.
func (e *Endpoint) Lookup(subID string) (units.Bandwidth, bool) {
	s := e.shardFor(subID)
	s.mu.Lock()
	defer s.mu.Unlock()
	bw, ok := s.allocs[subID]
	return bw, ok
}

// SubFlows lists current allocations, sorted by id.
func (e *Endpoint) SubFlows() []string {
	out := make([]string, 0, e.Len())
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		for id := range s.allocs {
			out = append(out, id)
		}
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// SubFlow is one live allocation in a snapshot.
type SubFlow struct {
	ID        string          `json:"id"`
	Bandwidth units.Bandwidth `json:"bandwidth"`
}

// EndpointSnapshot is the persisted form of an endpoint. Sub-flows are
// sorted by id and every field is value-typed, so two endpoints
// holding the same state marshal to identical bytes — the property the
// crash-recovery tests assert on.
type EndpointSnapshot struct {
	RARID     string          `json:"rar_id"`
	Aggregate units.Bandwidth `json:"aggregate"`
	Window    units.Window    `json:"window"`
	PeerBB    identity.DN     `json:"peer_bb"`
	Owner     identity.DN     `json:"owner"`
	Epoch     int64           `json:"epoch"`
	Gen       int64           `json:"gen"`
	SubFlows  []SubFlow       `json:"sub_flows,omitempty"`
}

// Snapshot captures a consistent point-in-time view: all shard locks
// are held together, so no allocation is caught between its admission
// and its generation stamp.
func (e *Endpoint) Snapshot() EndpointSnapshot {
	for i := range e.shards {
		e.shards[i].mu.Lock()
	}
	snap := EndpointSnapshot{
		RARID:     e.RARID,
		Aggregate: e.Aggregate,
		Window:    e.Window,
		PeerBB:    e.PeerBB,
		Owner:     e.Owner,
		Epoch:     e.Epoch,
		Gen:       e.gen.Load(),
	}
	for i := range e.shards {
		for id, bw := range e.shards[i].allocs {
			snap.SubFlows = append(snap.SubFlows, SubFlow{ID: id, Bandwidth: bw})
		}
	}
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.Unlock()
	}
	sort.Slice(snap.SubFlows, func(i, j int) bool { return snap.SubFlows[i].ID < snap.SubFlows[j].ID })
	return snap
}

// Restore rebuilds an endpoint from a snapshot, validating that the
// recorded allocations fit the aggregate.
func Restore(s EndpointSnapshot) (*Endpoint, error) {
	e, err := NewEndpoint(s.RARID, s.Aggregate, s.Window, s.PeerBB, s.Owner)
	if err != nil {
		return nil, err
	}
	e.Epoch = s.Epoch
	e.gen.Store(s.Gen)
	var sum units.Bandwidth
	for _, sf := range s.SubFlows {
		if sf.ID == "" || sf.Bandwidth <= 0 {
			return nil, fmt.Errorf("tunnel: restore %s: invalid sub-flow %q (%v)", s.RARID, sf.ID, sf.Bandwidth)
		}
		sh := e.shardFor(sf.ID)
		if _, dup := sh.allocs[sf.ID]; dup {
			return nil, fmt.Errorf("tunnel: restore %s: duplicate sub-flow %q", s.RARID, sf.ID)
		}
		sh.allocs[sf.ID] = sf.Bandwidth
		sum += sf.Bandwidth
	}
	if sum > s.Aggregate {
		return nil, fmt.Errorf("tunnel: restore %s: allocations %v exceed aggregate %v", s.RARID, sum, s.Aggregate)
	}
	e.used.Store(int64(sum))
	e.count.Store(int64(len(s.SubFlows)))
	return e, nil
}

// ReplayAlloc applies a journaled allocation during recovery. A record
// the current state already reflects (gen at or below the endpoint's)
// is a no-op, as is an allocation whose sub-flow is already present —
// both are the expected shapes of a record that also survived in a
// snapshot. The caller must feed records for one endpoint in ascending
// generation order; per-flow correctness follows because generations
// for one sub-flow ID are minted under its shard lock.
func (e *Endpoint) ReplayAlloc(subID string, bw units.Bandwidth, gen int64) error {
	if gen <= e.gen.Load() {
		return nil
	}
	e.gen.Store(gen)
	if subID == "" || bw <= 0 {
		return fmt.Errorf("tunnel: replay %s: invalid allocation %q (%v)", e.RARID, subID, bw)
	}
	s := e.shardFor(subID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.allocs[subID]; exists {
		return nil
	}
	if units.Bandwidth(e.used.Load())+bw > e.Aggregate {
		return fmt.Errorf("tunnel: replay %s: allocation %q overcommits the aggregate", e.RARID, subID)
	}
	s.allocs[subID] = bw
	e.used.Add(int64(bw))
	e.count.Add(1)
	return nil
}

// ReplayRelease applies a journaled release during recovery; releases
// of absent sub-flows and already-reflected generations are no-ops.
func (e *Endpoint) ReplayRelease(subID string, gen int64) {
	if gen <= e.gen.Load() {
		return
	}
	e.gen.Store(gen)
	s := e.shardFor(subID)
	s.mu.Lock()
	defer s.mu.Unlock()
	bw, exists := s.allocs[subID]
	if !exists {
		return
	}
	delete(s.allocs, subID)
	e.used.Add(-int64(bw))
	e.count.Add(-1)
}

// Registry indexes the tunnels terminating at one broker.
type Registry struct {
	mu      sync.RWMutex
	tunnels map[string]*Endpoint
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{tunnels: make(map[string]*Endpoint)}
}

// Add registers an endpoint; duplicate RAR ids are refused.
func (r *Registry) Add(e *Endpoint) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.tunnels[e.RARID]; exists {
		return fmt.Errorf("tunnel: %s already registered", e.RARID)
	}
	r.tunnels[e.RARID] = e
	return nil
}

// Replace registers an endpoint, displacing any existing registration
// of the same RAR id. Journal recovery uses it: a re-establishment
// record with a newer epoch supersedes the stale endpoint.
func (r *Registry) Replace(e *Endpoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tunnels[e.RARID] = e
}

// ResetTo replaces the whole endpoint set in place. A replication
// follower installing a leader snapshot resets the registry its broker
// (and its broker's gauges) already point at, instead of swapping the
// registry out from under them.
func (r *Registry) ResetTo(eps []*Endpoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tunnels = make(map[string]*Endpoint, len(eps))
	for _, e := range eps {
		r.tunnels[e.RARID] = e
	}
}

// Get looks an endpoint up.
func (r *Registry) Get(rarID string) (*Endpoint, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.tunnels[rarID]
	return e, ok
}

// Remove tears an endpoint down.
func (r *Registry) Remove(rarID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.tunnels, rarID)
}

// Len reports the number of registered tunnels.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tunnels)
}

// All returns the registered endpoints sorted by RAR id (snapshot and
// inspection order).
func (r *Registry) All() []*Endpoint {
	r.mu.RLock()
	out := make([]*Endpoint, 0, len(r.tunnels))
	for _, e := range r.tunnels {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].RARID < out[j].RARID })
	return out
}

// SubFlowTotal reports the live sub-flow allocations summed across all
// registered tunnels.
func (r *Registry) SubFlowTotal() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, e := range r.tunnels {
		total += e.Len()
	}
	return total
}
