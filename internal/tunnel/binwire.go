package tunnel

import (
	"e2eqos/internal/identity"
	"e2eqos/internal/units"
	"e2eqos/internal/wire"
)

// Binary codec for EndpointSnapshot (DESIGN.md §6.6), satisfying the
// journal's BinaryRecord/BinaryDecoder interfaces: tunnel-establish
// records and the broker snapshot carry endpoints in this form.
// Fields: 1=rar_id 2=aggregate 3=window_start 4=window_end 5=peer_bb
// 6=owner 7=epoch 8=gen 9=sub_flows (repeated; 1=id 2=bandwidth).
// Sub-flows are already sorted by id (Snapshot guarantees it), so the
// encoding is deterministic.

// AppendBinary appends the snapshot's binary encoding.
func (s EndpointSnapshot) AppendBinary(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, s.RARID)
	buf = wire.AppendInt(buf, 2, int64(s.Aggregate))
	buf = wire.AppendTime(buf, 3, s.Window.Start)
	buf = wire.AppendTime(buf, 4, s.Window.End)
	buf = wire.AppendString(buf, 5, string(s.PeerBB))
	buf = wire.AppendString(buf, 6, string(s.Owner))
	buf = wire.AppendInt(buf, 7, s.Epoch)
	buf = wire.AppendInt(buf, 8, s.Gen)
	for i := range s.SubFlows {
		var start int
		buf, start = wire.BeginNested(buf, 9)
		buf = wire.AppendString(buf, 1, s.SubFlows[i].ID)
		buf = wire.AppendInt(buf, 2, int64(s.SubFlows[i].Bandwidth))
		buf = wire.EndNested(buf, start)
	}
	return buf
}

// DecodeBinary reverses AppendBinary.
func (s *EndpointSnapshot) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			s.RARID = d.String()
		case f == 2 && wt == wire.TVarint:
			s.Aggregate = units.Bandwidth(d.Varint())
		case f == 3 && wt == wire.TBytes:
			s.Window.Start = d.Time()
		case f == 4 && wt == wire.TBytes:
			s.Window.End = d.Time()
		case f == 5 && wt == wire.TBytes:
			s.PeerBB = identity.DN(d.String())
		case f == 6 && wt == wire.TBytes:
			s.Owner = identity.DN(d.String())
		case f == 7 && wt == wire.TVarint:
			s.Epoch = d.Varint()
		case f == 8 && wt == wire.TVarint:
			s.Gen = d.Varint()
		case f == 9 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			var sf SubFlow
			for sub.More() {
				sf2, swt := sub.Tag()
				switch {
				case sf2 == 1 && swt == wire.TBytes:
					sf.ID = sub.String()
				case sf2 == 2 && swt == wire.TVarint:
					sf.Bandwidth = units.Bandwidth(sub.Varint())
				default:
					sub.Skip(swt)
				}
			}
			if err := sub.Err(); err != nil {
				return err
			}
			s.SubFlows = append(s.SubFlows, sf)
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}
