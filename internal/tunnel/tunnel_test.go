package tunnel

import (
	"sync"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

func newEndpoint(t *testing.T, aggregate units.Bandwidth) *Endpoint {
	t.Helper()
	ep, err := NewEndpoint("RAR-1", aggregate,
		units.NewWindow(time.Now(), time.Hour),
		identity.NewDN("Grid", "C", "bb"), identity.NewDN("Grid", "A", "alice"))
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func TestNewEndpointValidation(t *testing.T) {
	w := units.NewWindow(time.Now(), time.Hour)
	if _, err := NewEndpoint("", 10, w, "/CN=x", "/CN=y"); err == nil {
		t.Error("empty RAR id accepted")
	}
	if _, err := NewEndpoint("r", 0, w, "/CN=x", "/CN=y"); err == nil {
		t.Error("zero aggregate accepted")
	}
	if _, err := NewEndpoint("r", 10, units.Window{}, "/CN=x", "/CN=y"); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestAllocateReleaseAccounting(t *testing.T) {
	ep := newEndpoint(t, 50*units.Mbps)
	for i, id := range []string{"a", "b", "c", "d", "e"} {
		if err := ep.Allocate(id, 10*units.Mbps); err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
	}
	if ep.Free() != 0 || ep.Used() != 50*units.Mbps {
		t.Errorf("used=%v free=%v", ep.Used(), ep.Free())
	}
	if err := ep.Allocate("overflow", units.Mbps); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if err := ep.Release("c"); err != nil {
		t.Fatal(err)
	}
	if err := ep.Allocate("refill", 10*units.Mbps); err != nil {
		t.Fatalf("allocation after release: %v", err)
	}
	if err := ep.Release("ghost"); err == nil {
		t.Fatal("release of unknown sub-flow succeeded")
	}
	if err := ep.Allocate("a", units.Mbps); err == nil {
		t.Fatal("duplicate sub-flow id accepted")
	}
	if err := ep.Allocate("", units.Mbps); err == nil {
		t.Fatal("empty sub-flow id accepted")
	}
	if err := ep.Allocate("neg", -1); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	subs := ep.SubFlows()
	if len(subs) != 5 {
		t.Errorf("subflows = %v", subs)
	}
}

func TestConcurrentAllocationsNeverOversubscribe(t *testing.T) {
	ep := newEndpoint(t, 100*units.Mbps)
	var wg sync.WaitGroup
	granted := make(chan struct{}, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ep.Allocate(string(rune('a'+i%26))+string(rune('0'+i/26)), units.Mbps); err == nil {
				granted <- struct{}{}
			}
		}(i)
	}
	wg.Wait()
	close(granted)
	n := 0
	for range granted {
		n++
	}
	if n != 100 {
		t.Errorf("granted %d 1Mb/s sub-flows into 100Mb/s tunnel, want 100", n)
	}
	if ep.Used() != 100*units.Mbps {
		t.Errorf("used = %v", ep.Used())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	ep := newEndpoint(t, 10*units.Mbps)
	if err := r.Add(ep); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(ep); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, ok := r.Get("RAR-1")
	if !ok || got != ep {
		t.Fatal("lookup failed")
	}
	r.Remove("RAR-1")
	if _, ok := r.Get("RAR-1"); ok {
		t.Fatal("removed endpoint still present")
	}
}
