package tunnel

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

func newEndpoint(t *testing.T, aggregate units.Bandwidth) *Endpoint {
	t.Helper()
	ep, err := NewEndpoint("RAR-1", aggregate,
		units.NewWindow(time.Now(), time.Hour),
		identity.NewDN("Grid", "C", "bb"), identity.NewDN("Grid", "A", "alice"))
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func TestNewEndpointValidation(t *testing.T) {
	w := units.NewWindow(time.Now(), time.Hour)
	if _, err := NewEndpoint("", 10, w, "/CN=x", "/CN=y"); err == nil {
		t.Error("empty RAR id accepted")
	}
	if _, err := NewEndpoint("r", 0, w, "/CN=x", "/CN=y"); err == nil {
		t.Error("zero aggregate accepted")
	}
	if _, err := NewEndpoint("r", 10, units.Window{}, "/CN=x", "/CN=y"); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestAllocateReleaseAccounting(t *testing.T) {
	ep := newEndpoint(t, 50*units.Mbps)
	for i, id := range []string{"a", "b", "c", "d", "e"} {
		if _, err := ep.Allocate(id, 10*units.Mbps); err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
	}
	if ep.Free() != 0 || ep.Used() != 50*units.Mbps {
		t.Errorf("used=%v free=%v", ep.Used(), ep.Free())
	}
	if _, err := ep.Allocate("overflow", units.Mbps); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if bw, _, err := ep.Release("c"); err != nil || bw != 10*units.Mbps {
		t.Fatalf("release: bw=%v err=%v", bw, err)
	}
	if _, err := ep.Allocate("refill", 10*units.Mbps); err != nil {
		t.Fatalf("allocation after release: %v", err)
	}
	if _, _, err := ep.Release("ghost"); err == nil {
		t.Fatal("release of unknown sub-flow succeeded")
	}
	if _, err := ep.Allocate("a", units.Mbps); err == nil {
		t.Fatal("duplicate sub-flow id accepted")
	}
	if _, err := ep.Allocate("", units.Mbps); err == nil {
		t.Fatal("empty sub-flow id accepted")
	}
	if _, err := ep.Allocate("neg", -1); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	subs := ep.SubFlows()
	if len(subs) != 5 || ep.Len() != 5 {
		t.Errorf("subflows = %v len = %d", subs, ep.Len())
	}
	if bw, ok := ep.Lookup("a"); !ok || bw != 10*units.Mbps {
		t.Errorf("lookup a = %v %t", bw, ok)
	}
}

func TestGenerationsAreStrictlyIncreasing(t *testing.T) {
	ep := newEndpoint(t, 100*units.Mbps)
	g1, err := ep.Allocate("a", units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	_, g2, err := ep.Release("a")
	if err != nil {
		t.Fatal(err)
	}
	g3, err := ep.Allocate("a", 2*units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if !(g1 < g2 && g2 < g3) {
		t.Errorf("generations not increasing: %d %d %d", g1, g2, g3)
	}
	if ep.Gen() != g3 {
		t.Errorf("Gen() = %d, want %d", ep.Gen(), g3)
	}
}

func TestConcurrentAllocationsNeverOversubscribe(t *testing.T) {
	ep := newEndpoint(t, 100*units.Mbps)
	var wg sync.WaitGroup
	granted := make(chan struct{}, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := ep.Allocate(string(rune('a'+i%26))+string(rune('0'+i/26)), units.Mbps); err == nil {
				granted <- struct{}{}
			}
		}(i)
	}
	wg.Wait()
	close(granted)
	n := 0
	for range granted {
		n++
	}
	if n != 100 {
		t.Errorf("granted %d 1Mb/s sub-flows into 100Mb/s tunnel, want 100", n)
	}
	if ep.Used() != 100*units.Mbps {
		t.Errorf("used = %v", ep.Used())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	ep := newEndpoint(t, 100*units.Mbps)
	ep.Epoch = 7
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if _, err := ep.Allocate(id, 5*units.Mbps); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ep.Release("mid"); err != nil {
		t.Fatal(err)
	}
	snap := ep.Snapshot()
	if len(snap.SubFlows) != 2 || snap.SubFlows[0].ID != "alpha" || snap.SubFlows[1].ID != "zeta" {
		t.Fatalf("snapshot sub-flows not sorted: %+v", snap.SubFlows)
	}
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Used() != ep.Used() || restored.Len() != ep.Len() ||
		restored.Gen() != ep.Gen() || restored.Epoch != ep.Epoch {
		t.Errorf("restored endpoint differs: used=%v len=%d gen=%d epoch=%d",
			restored.Used(), restored.Len(), restored.Gen(), restored.Epoch)
	}
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(restored.Snapshot())
	if !bytes.Equal(a, b) {
		t.Errorf("snapshot not byte-identical after restore:\n a: %s\n b: %s", a, b)
	}
}

func TestRestoreRejectsOvercommit(t *testing.T) {
	snap := EndpointSnapshot{
		RARID:     "RAR-over",
		Aggregate: units.Mbps,
		Window:    units.NewWindow(time.Now(), time.Hour),
		SubFlows:  []SubFlow{{ID: "a", Bandwidth: units.Mbps}, {ID: "b", Bandwidth: units.Mbps}},
	}
	if _, err := Restore(snap); err == nil {
		t.Fatal("overcommitted snapshot accepted")
	}
	snap.SubFlows = []SubFlow{{ID: "", Bandwidth: units.Mbps}}
	if _, err := Restore(snap); err == nil {
		t.Fatal("empty sub-flow id accepted")
	}
	snap.SubFlows = []SubFlow{{ID: "a", Bandwidth: units.Mbps}, {ID: "a", Bandwidth: units.Mbps}}
	if _, err := Restore(snap); err == nil {
		t.Fatal("duplicate sub-flow accepted")
	}
}

func TestReplayIsIdempotentAndOrdered(t *testing.T) {
	ep := newEndpoint(t, 100*units.Mbps)
	// gen 1: alloc a@10; gen 2: release a; gen 3: alloc a@20.
	if err := ep.ReplayAlloc("a", 10*units.Mbps, 1); err != nil {
		t.Fatal(err)
	}
	ep.ReplayRelease("a", 2)
	if err := ep.ReplayAlloc("a", 20*units.Mbps, 3); err != nil {
		t.Fatal(err)
	}
	if bw, ok := ep.Lookup("a"); !ok || bw != 20*units.Mbps {
		t.Fatalf("after replay: a = %v %t", bw, ok)
	}
	// Stale records (gen already reflected) are no-ops.
	ep.ReplayRelease("a", 2)
	if err := ep.ReplayAlloc("a", 10*units.Mbps, 1); err != nil {
		t.Fatal(err)
	}
	if bw, _ := ep.Lookup("a"); bw != 20*units.Mbps || ep.Used() != 20*units.Mbps {
		t.Fatalf("stale replay mutated state: %v used=%v", bw, ep.Used())
	}
	if ep.Gen() != 3 {
		t.Errorf("gen = %d, want 3", ep.Gen())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	ep := newEndpoint(t, 10*units.Mbps)
	if err := r.Add(ep); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(ep); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, ok := r.Get("RAR-1")
	if !ok || got != ep {
		t.Fatal("lookup failed")
	}
	if all := r.All(); len(all) != 1 || all[0] != ep {
		t.Fatalf("All() = %v", all)
	}
	ep2 := newEndpoint(t, 20*units.Mbps)
	r.Replace(ep2)
	if got, _ := r.Get("RAR-1"); got != ep2 {
		t.Fatal("Replace did not displace the old endpoint")
	}
	r.Remove("RAR-1")
	if _, ok := r.Get("RAR-1"); ok {
		t.Fatal("removed endpoint still present")
	}
}
