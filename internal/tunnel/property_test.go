package tunnel

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// TestEndpointInvariantsUnderConcurrentChurn is the property test for
// the sharded endpoint, meant to run under -race: many goroutines
// hammer Allocate/Release over a shared sub-flow id space, and the two
// invariants are checked continuously (Used() never exceeds Aggregate,
// even mid-mutation) and at every quiescent point between waves
// (Used() equals the sum over the live sub-flow set, and the local
// accounting of every worker agrees with the endpoint).
func TestEndpointInvariantsUnderConcurrentChurn(t *testing.T) {
	const (
		workers  = 8
		waves    = 6
		opsPerWv = 400
		idSpace  = 64
	)
	aggregate := 80 * units.Mbps
	ep, err := NewEndpoint("RAR-prop", aggregate,
		units.NewWindow(time.Now(), time.Hour),
		identity.NewDN("Grid", "C", "bb"), identity.NewDN("Grid", "A", "alice"))
	if err != nil {
		t.Fatal(err)
	}

	// A watcher polls the aggregate bound *during* churn: the CAS-loop
	// admission must hold it at every instant, not only at barriers.
	stop := make(chan struct{})
	var violations atomic.Int64
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ep.Used() > aggregate {
				violations.Add(1)
			}
		}
	}()

	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(wave*workers + wkr)))
				for op := 0; op < opsPerWv; op++ {
					id := fmt.Sprintf("sub-%d", rng.Intn(idSpace))
					if rng.Intn(2) == 0 {
						bw := units.Bandwidth(rng.Intn(5)+1) * units.Mbps
						_, _ = ep.Allocate(id, bw)
					} else {
						_, _, _ = ep.Release(id)
					}
				}
			}(wkr)
		}
		wg.Wait()

		// Quiescent point: no mutation in flight, so the running counter
		// must agree exactly with the live allocation set.
		var sum units.Bandwidth
		ids := ep.SubFlows()
		for _, id := range ids {
			bw, ok := ep.Lookup(id)
			if !ok {
				t.Fatalf("wave %d: SubFlows lists %q but Lookup misses it", wave, id)
			}
			sum += bw
		}
		if got := ep.Used(); got != sum {
			t.Fatalf("wave %d: Used() = %v but live sub-flows sum to %v", wave, got, sum)
		}
		if got := ep.Len(); got != len(ids) {
			t.Fatalf("wave %d: Len() = %d but SubFlows has %d entries", wave, got, len(ids))
		}
		if ep.Used() > aggregate {
			t.Fatalf("wave %d: Used() %v exceeds aggregate %v", wave, ep.Used(), aggregate)
		}
		// The snapshot taken under all shard locks must agree too.
		snap := ep.Snapshot()
		var snapSum units.Bandwidth
		for _, sf := range snap.SubFlows {
			snapSum += sf.Bandwidth
		}
		if snapSum != sum {
			t.Fatalf("wave %d: snapshot sums to %v, live state to %v", wave, snapSum, sum)
		}
	}
	close(stop)
	watcher.Wait()
	if n := violations.Load(); n > 0 {
		t.Fatalf("aggregate bound violated %d times during churn", n)
	}
}

// TestConcurrentSnapshotIsConsistent interleaves Snapshot with churn:
// every snapshot must be internally consistent (sum of sub-flows never
// above the aggregate, sorted ids, no duplicates) even while both
// invariant halves are mid-flight on other goroutines.
func TestConcurrentSnapshotIsConsistent(t *testing.T) {
	aggregate := 40 * units.Mbps
	ep, err := NewEndpoint("RAR-snap", aggregate,
		units.NewWindow(time.Now(), time.Hour),
		identity.NewDN("Grid", "C", "bb"), identity.NewDN("Grid", "A", "alice"))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wkr := 0; wkr < 4; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wkr)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("s-%d", rng.Intn(32))
				if rng.Intn(2) == 0 {
					_, _ = ep.Allocate(id, units.Mbps)
				} else {
					_, _, _ = ep.Release(id)
				}
			}
		}(wkr)
	}
	for i := 0; i < 200; i++ {
		snap := ep.Snapshot()
		var sum units.Bandwidth
		for j, sf := range snap.SubFlows {
			sum += sf.Bandwidth
			if j > 0 && snap.SubFlows[j-1].ID >= sf.ID {
				t.Fatalf("snapshot %d not strictly sorted: %q then %q", i, snap.SubFlows[j-1].ID, sf.ID)
			}
		}
		if sum > aggregate {
			t.Fatalf("snapshot %d sums to %v, above aggregate %v", i, sum, aggregate)
		}
		if _, err := Restore(snap); err != nil {
			t.Fatalf("snapshot %d does not restore: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
