// Package certrepo implements the second key-distribution alternative
// of §6.4: "Maintain a certificate repository accessible through
// secure LDAP. Upon receipt of the reservation specification, C would
// extract the distinguished name (DN) of A from it, and would search
// in the certificate repository for the related public key. It is
// important to note that there has to be a strong trust relationship
// with the repository."
//
// The repository signs every answer, so a consumer needs exactly one
// trust decision (the repository key) instead of evaluating introducer
// chains. The trade-off — which the paper resolves in favour of
// inline certificates plus web-of-trust — is the online dependency and
// the single point of trust; this package exists so the ablation
// experiments can quantify the message-size side of that trade.
package certrepo

import (
	"crypto/ecdsa"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

// Repository stores certificates by subject DN and answers signed
// lookups. It is safe for concurrent use.
type Repository struct {
	key *identity.KeyPair

	mu    sync.RWMutex
	certs map[identity.DN]*pki.Certificate

	lookups atomic.Int64
}

// New creates an empty repository signing with key.
func New(key *identity.KeyPair) *Repository {
	return &Repository{key: key, certs: make(map[identity.DN]*pki.Certificate)}
}

// DN returns the repository identity.
func (r *Repository) DN() identity.DN { return r.key.DN }

// PublicKey is what consumers pin.
func (r *Repository) PublicKey() *ecdsa.PublicKey { return r.key.Public() }

// Publish stores (or replaces) the certificate for its subject.
func (r *Repository) Publish(cert *pki.Certificate) error {
	if cert == nil || cert.PublicKey() == nil {
		return fmt.Errorf("certrepo: invalid certificate")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.certs[cert.SubjectDN()] = cert
	return nil
}

// Remove deletes the entry for dn.
func (r *Repository) Remove(dn identity.DN) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.certs, dn)
}

// Lookups reports how many lookups were served (for the experiments'
// cost accounting).
func (r *Repository) Lookups() int64 { return r.lookups.Load() }

// Response is a signed lookup answer.
type Response struct {
	RepoDN  identity.DN
	Subject identity.DN
	CertDER []byte
	Issued  time.Time
	// Signature covers the canonical payload.
	Signature []byte
}

func responsePayload(repo, subject identity.DN, certDER []byte, issued time.Time) []byte {
	return append([]byte(fmt.Sprintf("certrepo|%s|%s|%d|", repo, subject, issued.UnixNano())), certDER...)
}

// Lookup answers a query for dn with a signed response.
func (r *Repository) Lookup(dn identity.DN) (*Response, error) {
	r.lookups.Add(1)
	r.mu.RLock()
	cert, ok := r.certs[dn]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("certrepo: no certificate for %s", dn)
	}
	issued := time.Now()
	sig, err := r.key.Sign(responsePayload(r.key.DN, dn, cert.DER, issued))
	if err != nil {
		return nil, fmt.Errorf("certrepo: signing response: %w", err)
	}
	return &Response{
		RepoDN:    r.key.DN,
		Subject:   dn,
		CertDER:   cert.DER,
		Issued:    issued,
		Signature: sig,
	}, nil
}

// VerifyResponse checks a signed lookup answer against the pinned
// repository key and a freshness bound (zero maxAge means no bound).
func VerifyResponse(resp *Response, repoKey *ecdsa.PublicKey, maxAge time.Duration) (*pki.Certificate, error) {
	if resp == nil {
		return nil, fmt.Errorf("certrepo: nil response")
	}
	if maxAge > 0 && time.Since(resp.Issued) > maxAge {
		return nil, fmt.Errorf("certrepo: response for %s is stale", resp.Subject)
	}
	payload := responsePayload(resp.RepoDN, resp.Subject, resp.CertDER, resp.Issued)
	if err := identity.Verify(repoKey, payload, resp.Signature); err != nil {
		return nil, fmt.Errorf("certrepo: response signature: %w", err)
	}
	cert, err := pki.ParseCertificate(resp.CertDER)
	if err != nil {
		return nil, err
	}
	if cert.SubjectDN() != resp.Subject {
		return nil, fmt.Errorf("certrepo: response subject %s does not match certificate %s", resp.Subject, cert.SubjectDN())
	}
	return cert, nil
}

// Directory adapts a trusted repository to the core.KeyDirectory
// interface: the broker consults it when a signalling layer arrives
// without an introducing certificate.
type Directory struct {
	Repo *Repository
	// TrustedKey is the pinned repository key (normally Repo's own,
	// but kept explicit so tests can model key mismatch).
	TrustedKey *ecdsa.PublicKey
	// MaxAge bounds response freshness (zero: unbounded).
	MaxAge time.Duration
	// At overrides the certificate-validity check time (zero: now).
	At time.Time
}

// LookupKey resolves dn via the repository, verifying the signed
// response and the certificate validity window.
func (d *Directory) LookupKey(dn identity.DN) (*ecdsa.PublicKey, error) {
	if d == nil || d.Repo == nil || d.TrustedKey == nil {
		return nil, fmt.Errorf("certrepo: directory not configured")
	}
	resp, err := d.Repo.Lookup(dn)
	if err != nil {
		return nil, err
	}
	cert, err := VerifyResponse(resp, d.TrustedKey, d.MaxAge)
	if err != nil {
		return nil, err
	}
	at := d.At
	if at.IsZero() {
		at = time.Now()
	}
	if !cert.ValidAt(at) {
		return nil, fmt.Errorf("certrepo: certificate for %s not valid at %s", dn, at)
	}
	pub := cert.PublicKey()
	if pub == nil {
		return nil, fmt.Errorf("certrepo: certificate for %s has non-ECDSA key", dn)
	}
	return pub, nil
}
