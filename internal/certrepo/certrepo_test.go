package certrepo

import (
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

func fixture(t *testing.T) (*Repository, *pki.Certificate) {
	t.Helper()
	repoKey, err := identity.GenerateKeyPair(identity.NewDN("Grid", "", "repo"))
	if err != nil {
		t.Fatal(err)
	}
	repo := New(repoKey)
	ca, err := pki.NewCA(identity.NewDN("Grid", "A", "CA"))
	if err != nil {
		t.Fatal(err)
	}
	kp, err := identity.GenerateKeyPair(identity.NewDN("Grid", "A", "bb-a"))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueIdentity(kp.DN, kp.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Publish(cert); err != nil {
		t.Fatal(err)
	}
	return repo, cert
}

func TestLookupAndVerify(t *testing.T) {
	repo, cert := fixture(t)
	resp, err := repo.Lookup(cert.SubjectDN())
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyResponse(resp, repo.PublicKey(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !got.PublicKey().Equal(cert.PublicKey()) {
		t.Fatal("wrong certificate returned")
	}
	if repo.Lookups() != 1 {
		t.Errorf("lookups = %d", repo.Lookups())
	}
}

func TestLookupUnknown(t *testing.T) {
	repo, _ := fixture(t)
	if _, err := repo.Lookup("/CN=ghost"); err == nil {
		t.Fatal("unknown DN resolved")
	}
}

func TestRemove(t *testing.T) {
	repo, cert := fixture(t)
	repo.Remove(cert.SubjectDN())
	if _, err := repo.Lookup(cert.SubjectDN()); err == nil {
		t.Fatal("removed entry still resolvable")
	}
}

func TestVerifyResponseTamper(t *testing.T) {
	repo, cert := fixture(t)
	resp, err := repo.Lookup(cert.SubjectDN())
	if err != nil {
		t.Fatal(err)
	}
	resp.Subject = "/CN=other"
	if _, err := VerifyResponse(resp, repo.PublicKey(), 0); err == nil {
		t.Fatal("tampered response accepted")
	}
}

func TestVerifyResponseWrongKey(t *testing.T) {
	repo, cert := fixture(t)
	resp, err := repo.Lookup(cert.SubjectDN())
	if err != nil {
		t.Fatal(err)
	}
	other, err := identity.GenerateKeyPair("/CN=evil-repo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyResponse(resp, other.Public(), 0); err == nil {
		t.Fatal("response accepted under wrong repository key")
	}
}

func TestVerifyResponseStale(t *testing.T) {
	repo, cert := fixture(t)
	resp, err := repo.Lookup(cert.SubjectDN())
	if err != nil {
		t.Fatal(err)
	}
	resp.Issued = time.Now().Add(-time.Hour)
	// Staleness triggers before signature verification, so no need to
	// re-sign.
	if _, err := VerifyResponse(resp, repo.PublicKey(), time.Minute); err == nil {
		t.Fatal("stale response accepted")
	}
}

func TestDirectoryLookupKey(t *testing.T) {
	repo, cert := fixture(t)
	dir := &Directory{Repo: repo, TrustedKey: repo.PublicKey()}
	pub, err := dir.LookupKey(cert.SubjectDN())
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(cert.PublicKey()) {
		t.Fatal("wrong key")
	}
	var nilDir *Directory
	if _, err := nilDir.LookupKey("/CN=x"); err == nil {
		t.Fatal("nil directory resolved a key")
	}
}
