// Package envelope implements the nested signed message structure at
// the heart of the paper's inter-BB signalling protocol (§6.4):
//
//	RAR_U     = sign_U({res_spec, DN_BBA, Capability_Cert'_CAS, Capability_Cert'_U})
//	RAR_A     = sign_BBA({RAR_U, cert_U, DN_BBB, Capability_Cert'_A})
//	RAR_{N+1} = sign_BB{N+1}({RAR_N, cert_N, DN_BB{N+2}, Capability_Cert'_{N+1}})
//
// Each hop wraps the message it received inside a new envelope, adds
// the upstream entity's certificate (learned from the mutually
// authenticated channel), names the next hop, attaches any additional
// policy information, and signs the result. The destination can unwrap
// the onion, verifying every layer, and recover the full signalling
// path ("The signatures both assert the authenticity of the information
// and allows for the tracking the path taken by a request as it moves
// from BB to BB").
package envelope

import (
	"crypto/ecdsa"
	"encoding/json"
	"fmt"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

// Envelope is one layer of the nested structure. Payload is the
// canonical binary encoding of the layer body; Signature is the
// signer's ECDSA signature over exactly those bytes.
type Envelope struct {
	// SignerDN names the entity that signed this layer.
	SignerDN identity.DN `json:"signer_dn"`
	// Payload is the canonical binary encoding of the Body (see
	// binwire.go), kept verbatim from sealing to verification so the
	// signature never depends on re-marshal stability. An inner
	// envelope nests as a field of its wrapper's payload, so wrapping
	// grows the message additively, not multiplicatively.
	Payload []byte `json:"payload"`
	// Signature is SignerDN's signature over Payload.
	Signature []byte `json:"signature"`
}

// Body is the content of one envelope layer. Exactly one of Inner or
// Request is set: the innermost layer carries the raw request, every
// outer layer carries the wrapped inner envelope.
type Body struct {
	// Inner is the envelope received from upstream, absent in the
	// innermost (user) layer.
	Inner *Envelope `json:"inner,omitempty"`
	// Request is the application payload of the innermost layer.
	Request json.RawMessage `json:"request,omitempty"`
	// UpstreamCertDER carries the certificate of the entity that
	// produced Inner (cert_U, cert_A, ... in the paper), as learned
	// from the TLS handshake with the upstream hop.
	UpstreamCertDER []byte `json:"upstream_cert,omitempty"`
	// NextHopDN is the DN of the downstream BB this layer is addressed
	// to (DN_BBB, DN_BBC, ...). Naming the next hop in the signed body
	// is what lets the destination audit the intended path and lets a
	// downstream domain confirm that its upstream peer approved the SLA
	// ("BB_A ... did approve the SLA with domain B by listing the DN of
	// BB_B in its request").
	NextHopDN identity.DN `json:"next_hop_dn,omitempty"`
	// CapabilityDERs are the capability certificates this hop adds
	// (Capability_Cert'_N): normally the single delegation of the
	// received capability to the next hop; the user layer carries two
	// (the CAS-issued certificate plus the delegation to the first
	// broker). Optional ("Note that the delegation is only performed
	// when capabilities are transported").
	CapabilityDERs [][]byte `json:"capabilities,omitempty"`
	// PolicyInfo carries additional signed policy attributes the hop
	// appends (constraints from a policy server, SLS parameters for
	// downstream domains, cost offers, ...). The protocol is
	// deliberately syntax-agnostic, so this is opaque key/value data.
	PolicyInfo map[string]string `json:"policy_info,omitempty"`
	// Timestamp records when the layer was created.
	Timestamp time.Time `json:"timestamp"`
}

// Seal signs body with the given key and returns the envelope layer.
// The signature covers the body's canonical binary encoding.
func Seal(signer *identity.KeyPair, body Body) (*Envelope, error) {
	if body.Timestamp.IsZero() {
		body.Timestamp = time.Now()
	}
	payload := appendBody(nil, &body)
	sig, err := signer.Sign(payload)
	if err != nil {
		return nil, fmt.Errorf("envelope: sign: %w", err)
	}
	return &Envelope{SignerDN: signer.DN, Payload: payload, Signature: sig}, nil
}

// Open verifies the signature with pub and decodes the body. It does
// NOT resolve trust in pub; callers combine this with a pki.TrustStore.
func (e *Envelope) Open(pub *ecdsa.PublicKey) (*Body, error) {
	if e == nil {
		return nil, fmt.Errorf("envelope: nil envelope")
	}
	if err := identity.Verify(pub, e.Payload, e.Signature); err != nil {
		return nil, fmt.Errorf("envelope: layer signed by %s: %w", e.SignerDN, err)
	}
	body, err := decodeBody(e.Payload)
	if err != nil {
		return nil, fmt.Errorf("envelope: body signed by %s: %w", e.SignerDN, err)
	}
	return body, nil
}

// PeekBody decodes the body WITHOUT verifying the signature. It is used
// to discover which certificates the message carries before trust in
// the corresponding keys has been established.
func (e *Envelope) PeekBody() (*Body, error) {
	if e == nil {
		return nil, fmt.Errorf("envelope: nil envelope")
	}
	body, err := decodeBody(e.Payload)
	if err != nil {
		return nil, fmt.Errorf("envelope: body signed by %s: %w", e.SignerDN, err)
	}
	return body, nil
}

// Layer is one verified stratum of an unwrapped envelope chain, ordered
// outermost (most recent hop) first.
type Layer struct {
	SignerDN identity.DN
	Body     *Body
}

// Chain is the fully verified onion: Layers[0] is the outermost
// (signed by the last BB before the verifier), Layers[len-1] the
// innermost (signed by the user). Request is the innermost payload.
type Chain struct {
	Layers  []Layer
	Request json.RawMessage
}

// PathDNs returns the signer DNs from the user outward:
// [user, BB_A, BB_B, ...]. This is the signalling-path trace the
// signatures provide.
func (c *Chain) PathDNs() []identity.DN {
	out := make([]identity.DN, 0, len(c.Layers))
	for i := len(c.Layers) - 1; i >= 0; i-- {
		out = append(out, c.Layers[i].SignerDN)
	}
	return out
}

// Capabilities returns the capability certificate chain accumulated
// along the path, ordered from the user's CAS certificate outward —
// ready for pki.CapabilityChain verification.
func (c *Chain) Capabilities() (pki.CapabilityChain, error) {
	var ders [][]byte
	for i := len(c.Layers) - 1; i >= 0; i-- {
		ders = append(ders, c.Layers[i].Body.CapabilityDERs...)
	}
	return pki.DecodeCapabilityChain(ders)
}

// PolicyInfo merges the policy attributes of all layers; inner layers
// are applied first so that later (downstream-added) values win on key
// collision, matching "the BB ... may add additional information".
func (c *Chain) PolicyInfo() map[string]string {
	merged := make(map[string]string)
	for i := len(c.Layers) - 1; i >= 0; i-- {
		for k, v := range c.Layers[i].Body.PolicyInfo {
			merged[k] = v
		}
	}
	return merged
}

// KeyResolver resolves the public key to verify a layer signed by dn.
// The certDER hint is the certificate the NEXT outer layer attached for
// this signer (cert_N in the paper); it may be nil for the outermost
// layer, whose key the verifier knows from the TLS handshake.
type KeyResolver func(dn identity.DN, certDER []byte) (*ecdsa.PublicKey, error)

// Unwrap peels and verifies every layer of the onion. resolve is called
// once per layer. The outermost layer's certificate hint is nil (its
// key comes from the channel); every inner layer's hint is the
// UpstreamCertDER its wrapping layer attached.
func Unwrap(outer *Envelope, resolve KeyResolver) (*Chain, error) {
	chain := &Chain{}
	env := outer
	var certHint []byte
	for depth := 0; env != nil; depth++ {
		if depth > maxDepth {
			return nil, fmt.Errorf("envelope: chain deeper than %d layers", maxDepth)
		}
		pub, err := resolve(env.SignerDN, certHint)
		if err != nil {
			return nil, fmt.Errorf("envelope: resolving key for layer %d (%s): %w", depth, env.SignerDN, err)
		}
		body, err := env.Open(pub)
		if err != nil {
			return nil, fmt.Errorf("envelope: layer %d: %w", depth, err)
		}
		chain.Layers = append(chain.Layers, Layer{SignerDN: env.SignerDN, Body: body})
		if body.Inner == nil {
			if body.Request == nil {
				return nil, fmt.Errorf("envelope: innermost layer (%s) carries no request", env.SignerDN)
			}
			chain.Request = body.Request
			return chain, nil
		}
		certHint = body.UpstreamCertDER
		env = body.Inner
	}
	return nil, fmt.Errorf("envelope: empty chain")
}

// maxDepth bounds the number of nested layers Unwrap accepts,
// protecting against maliciously deep onions.
const maxDepth = 64

// Encode serialises the envelope in its binary form.
func (e *Envelope) Encode() ([]byte, error) {
	return appendEnvelope(nil, e), nil
}

// Decode reverses Encode.
func Decode(data []byte) (*Envelope, error) {
	return decodeEnvelope(data)
}

// WireSize returns the encoded size in bytes, used by the Figure 7 /
// §6.4 message-growth experiments.
func (e *Envelope) WireSize() int {
	data, err := e.Encode()
	if err != nil {
		return 0
	}
	return len(data)
}
