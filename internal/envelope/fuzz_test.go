package envelope

import (
	"crypto/ecdsa"
	"encoding/json"
	"fmt"
	"testing"

	"e2eqos/internal/identity"
)

// FuzzDecode ensures arbitrary bytes never panic the envelope decoder
// or the unwrapping machinery.
func FuzzDecode(f *testing.F) {
	key, err := identity.GenerateKeyPair("/CN=seed")
	if err != nil {
		f.Fatal(err)
	}
	genuine, err := Seal(key, Body{Request: json.RawMessage(`{"x":1}`)})
	if err != nil {
		f.Fatal(err)
	}
	data, err := genuine.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{"signer_dn":"/CN=x","payload":{},"signature":"AA=="}`))
	f.Add([]byte(`{"signer_dn":"/CN=x","payload":{"inner":{"signer_dn":"/CN=y","payload":{},"signature":""}},"signature":""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`garbage`))

	resolve := func(dn identity.DN, _ []byte) (*ecdsa.PublicKey, error) {
		if dn == key.DN {
			return key.Public(), nil
		}
		return nil, fmt.Errorf("unknown %s", dn)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		// Unwrap may fail (bad signature, unknown signer) but must not
		// panic.
		_, _ = Unwrap(env, resolve)
		_, _ = env.PeekBody()
		_ = env.WireSize()
	})
}
