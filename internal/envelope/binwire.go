package envelope

import (
	"fmt"
	"sort"

	"e2eqos/internal/identity"
	"e2eqos/internal/wire"
)

// Binary layout (DESIGN.md §6.6). An encoded envelope is:
//
//	byte 0   envMagic (0xE5)
//	byte 1   envVersion
//	fields   1=signer_dn 2=payload 3=signature
//
// Payload holds the body's field encoding verbatim — the exact bytes
// the signature covers, so verification never depends on re-marshal
// stability. Body fields: 1=inner (a nested envelope encoding, so the
// onion grows additively) 2=request 3=upstream_cert 4=next_hop_dn
// 5=capabilities (repeated) 6=policy_info (repeated key/value pairs,
// key-sorted for canonical bytes) 7=timestamp.
const (
	envMagic   = 0xE5
	envVersion = 1
)

// appendEnvelope appends e's binary encoding.
func appendEnvelope(buf []byte, e *Envelope) []byte {
	buf = append(buf, envMagic, envVersion)
	buf = wire.AppendString(buf, 1, string(e.SignerDN))
	buf = wire.AppendBytes(buf, 2, e.Payload)
	buf = wire.AppendBytes(buf, 3, e.Signature)
	return buf
}

// decodeEnvelope parses one binary envelope.
func decodeEnvelope(data []byte) (*Envelope, error) {
	if len(data) < 2 || data[0] != envMagic {
		return nil, fmt.Errorf("envelope: not a binary envelope")
	}
	if data[1] != envVersion {
		return nil, fmt.Errorf("envelope: unsupported version %d", data[1])
	}
	e := &Envelope{}
	d := wire.Dec{Buf: data[2:]}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			e.SignerDN = identity.DN(d.String())
		case f == 2 && wt == wire.TBytes:
			e.Payload = append([]byte(nil), d.Bytes()...)
		case f == 3 && wt == wire.TBytes:
			e.Signature = append([]byte(nil), d.Bytes()...)
		default:
			d.Skip(wt)
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("envelope: decode: %w", err)
	}
	return e, nil
}

// appendBody appends b's canonical field encoding — the signed bytes.
func appendBody(buf []byte, b *Body) []byte {
	if b.Inner != nil {
		var start int
		buf, start = wire.BeginNested(buf, 1)
		buf = appendEnvelope(buf, b.Inner)
		buf = wire.EndNested(buf, start)
	}
	buf = wire.AppendBytes(buf, 2, b.Request)
	buf = wire.AppendBytes(buf, 3, b.UpstreamCertDER)
	buf = wire.AppendString(buf, 4, string(b.NextHopDN))
	for _, der := range b.CapabilityDERs {
		// Empty capability entries still encode (zero-length bytes
		// field) so the slice shape round-trips.
		buf = wire.AppendTag(buf, 5, wire.TBytes)
		buf = wire.AppendUvarint(buf, uint64(len(der)))
		buf = append(buf, der...)
	}
	if len(b.PolicyInfo) > 0 {
		keys := make([]string, 0, len(b.PolicyInfo))
		for k := range b.PolicyInfo {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			var start int
			buf, start = wire.BeginNested(buf, 6)
			buf = wire.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
			v := b.PolicyInfo[k]
			buf = wire.AppendUvarint(buf, uint64(len(v)))
			buf = append(buf, v...)
			buf = wire.EndNested(buf, start)
		}
	}
	buf = wire.AppendTime(buf, 7, b.Timestamp)
	return buf
}

// decodeBody parses a payload produced by appendBody.
func decodeBody(data []byte) (*Body, error) {
	b := &Body{}
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			inner, err := decodeEnvelope(d.Bytes())
			if err != nil {
				return nil, err
			}
			b.Inner = inner
		case f == 2 && wt == wire.TBytes:
			b.Request = append([]byte(nil), d.Bytes()...)
		case f == 3 && wt == wire.TBytes:
			b.UpstreamCertDER = append([]byte(nil), d.Bytes()...)
		case f == 4 && wt == wire.TBytes:
			b.NextHopDN = identity.DN(d.String())
		case f == 5 && wt == wire.TBytes:
			b.CapabilityDERs = append(b.CapabilityDERs, append([]byte(nil), d.Bytes()...))
		case f == 6 && wt == wire.TBytes:
			if b.PolicyInfo == nil {
				b.PolicyInfo = make(map[string]string)
			}
			sub := wire.Dec{Buf: d.Bytes()}
			k := sub.String()
			v := sub.String()
			if err := sub.Err(); err != nil {
				return nil, fmt.Errorf("envelope: policy info: %w", err)
			}
			b.PolicyInfo[k] = v
		case f == 7 && wt == wire.TBytes:
			b.Timestamp = wire.DecodeTime(d.Bytes())
		default:
			d.Skip(wt)
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("envelope: decode body: %w", err)
	}
	return b, nil
}
