package envelope

import (
	"crypto/ecdsa"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"e2eqos/internal/identity"
)

type testRequest struct {
	Source string `json:"source"`
	Dest   string `json:"dest"`
	Mbps   int    `json:"mbps"`
}

func mustKey(t *testing.T, name string) *identity.KeyPair {
	t.Helper()
	kp, err := identity.GenerateKeyPair(identity.NewDN("Grid", "", name))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

// buildOnion builds the paper's RAR_U -> RAR_A -> RAR_B chain:
// user signs the request; each BB wraps the previous envelope.
func buildOnion(t *testing.T, hops int) (keys []*identity.KeyPair, outer *Envelope) {
	t.Helper()
	user := mustKey(t, "alice")
	keys = append(keys, user)
	req, err := json.Marshal(testRequest{Source: "A", Dest: "C", Mbps: 10})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Seal(user, Body{Request: req, NextHopDN: identity.NewDN("Grid", "", "bb-0")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hops; i++ {
		bb := mustKey(t, fmt.Sprintf("bb-%d", i))
		keys = append(keys, bb)
		env, err = Seal(bb, Body{
			Inner:      env,
			NextHopDN:  identity.NewDN("Grid", "", fmt.Sprintf("bb-%d", i+1)),
			PolicyInfo: map[string]string{fmt.Sprintf("hop-%d", i): "ok", "last": fmt.Sprintf("bb-%d", i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return keys, env
}

func resolverFor(keys []*identity.KeyPair) KeyResolver {
	byDN := make(map[identity.DN]*ecdsa.PublicKey)
	for _, k := range keys {
		byDN[k.DN] = k.Public()
	}
	return func(dn identity.DN, _ []byte) (*ecdsa.PublicKey, error) {
		pub, ok := byDN[dn]
		if !ok {
			return nil, fmt.Errorf("unknown signer %s", dn)
		}
		return pub, nil
	}
}

func TestSealOpen(t *testing.T) {
	user := mustKey(t, "alice")
	req, _ := json.Marshal(testRequest{Source: "A", Dest: "C", Mbps: 10})
	env, err := Seal(user, Body{Request: req})
	if err != nil {
		t.Fatal(err)
	}
	body, err := env.Open(user.Public())
	if err != nil {
		t.Fatal(err)
	}
	var got testRequest
	if err := json.Unmarshal(body.Request, &got); err != nil {
		t.Fatal(err)
	}
	if got.Mbps != 10 || got.Dest != "C" {
		t.Errorf("request round trip mismatch: %+v", got)
	}
	if body.Timestamp.IsZero() {
		t.Error("Seal must stamp a timestamp")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	user := mustKey(t, "alice")
	mallory := mustKey(t, "mallory")
	env, err := Seal(user, Body{Request: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Open(mallory.Public()); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestOpenRejectsTamperedPayload(t *testing.T) {
	user := mustKey(t, "alice")
	env, err := Seal(user, Body{Request: json.RawMessage(`{"mbps":10}`)})
	if err != nil {
		t.Fatal(err)
	}
	env.Payload[len(env.Payload)-3] ^= 0x01
	if _, err := env.Open(user.Public()); err == nil {
		t.Fatal("tampered payload accepted")
	}
}

func TestUnwrapThreeHops(t *testing.T) {
	keys, outer := buildOnion(t, 3)
	chain, err := Unwrap(outer, resolverFor(keys))
	if err != nil {
		t.Fatal(err)
	}
	if len(chain.Layers) != 4 { // user + 3 BBs
		t.Fatalf("layers = %d, want 4", len(chain.Layers))
	}
	var got testRequest
	if err := json.Unmarshal(chain.Request, &got); err != nil {
		t.Fatal(err)
	}
	if got.Mbps != 10 {
		t.Errorf("request = %+v", got)
	}
	path := chain.PathDNs()
	if len(path) != 4 || path[0] != keys[0].DN || path[3] != keys[3].DN {
		t.Errorf("path = %v", path)
	}
}

func TestUnwrapDetectsInnerTampering(t *testing.T) {
	keys, outer := buildOnion(t, 2)
	// Tamper with the innermost layer through the outer payload bytes:
	// flip a byte inside the encoded inner envelope's payload.
	body, err := decodeBody(outer.Payload)
	if err != nil {
		t.Fatal(err)
	}
	body.Inner.Payload[10] ^= 0xff
	// Re-encode; the outer signature is now stale, so re-sign outer to
	// simulate a malicious LAST hop modifying an inner layer.
	payload := appendBody(nil, body)
	sig, _ := keys[len(keys)-1].Sign(payload)
	outer = &Envelope{SignerDN: keys[len(keys)-1].DN, Payload: payload, Signature: sig}
	if _, err := Unwrap(outer, resolverFor(keys)); err == nil {
		t.Fatal("inner tampering went undetected")
	}
}

func TestUnwrapRejectsUnknownSigner(t *testing.T) {
	keys, outer := buildOnion(t, 2)
	if _, err := Unwrap(outer, resolverFor(keys[:2])); err == nil {
		t.Fatal("unknown signer accepted")
	}
}

func TestUnwrapRejectsEmptyInnermost(t *testing.T) {
	user := mustKey(t, "alice")
	env, err := Seal(user, Body{}) // neither Inner nor Request
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unwrap(env, resolverFor([]*identity.KeyPair{user})); err == nil {
		t.Fatal("empty innermost layer accepted")
	}
}

func TestUnwrapDepthBound(t *testing.T) {
	user := mustKey(t, "deep")
	env, err := Seal(user, Body{Request: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxDepth+2; i++ {
		env, err = Seal(user, Body{Inner: env})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Unwrap(env, resolverFor([]*identity.KeyPair{user})); err == nil {
		t.Fatal("over-deep onion accepted")
	}
}

func TestPolicyInfoMergeDownstreamWins(t *testing.T) {
	keys, outer := buildOnion(t, 3)
	chain, err := Unwrap(outer, resolverFor(keys))
	if err != nil {
		t.Fatal(err)
	}
	info := chain.PolicyInfo()
	for i := 0; i < 3; i++ {
		if info[fmt.Sprintf("hop-%d", i)] != "ok" {
			t.Errorf("missing policy info from hop %d", i)
		}
	}
	// "last" is written by every hop; the outermost (latest) must win.
	if info["last"] != "bb-2" {
		t.Errorf(`info["last"] = %q, want "bb-2"`, info["last"])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	keys, outer := buildOnion(t, 2)
	data, err := outer.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unwrap(decoded, resolverFor(keys)); err != nil {
		t.Fatalf("decoded onion fails verification: %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestWireSizeGrowsWithHops(t *testing.T) {
	_, e1 := buildOnion(t, 1)
	_, e4 := buildOnion(t, 4)
	if e4.WireSize() <= e1.WireSize() {
		t.Errorf("wire size must grow with hops: 1 hop = %d, 4 hops = %d", e1.WireSize(), e4.WireSize())
	}
}

func TestPeekBody(t *testing.T) {
	user := mustKey(t, "alice")
	env, err := Seal(user, Body{Request: json.RawMessage(`{}`), NextHopDN: "/CN=bb-a"})
	if err != nil {
		t.Fatal(err)
	}
	body, err := env.PeekBody()
	if err != nil {
		t.Fatal(err)
	}
	if body.NextHopDN != "/CN=bb-a" {
		t.Errorf("NextHopDN = %s", body.NextHopDN)
	}
}

func TestSealPreservesExplicitTimestamp(t *testing.T) {
	user := mustKey(t, "alice")
	ts := time.Date(2001, 8, 7, 12, 0, 0, 0, time.UTC)
	env, err := Seal(user, Body{Request: json.RawMessage(`{}`), Timestamp: ts})
	if err != nil {
		t.Fatal(err)
	}
	body, err := env.Open(user.Public())
	if err != nil {
		t.Fatal(err)
	}
	if !body.Timestamp.Equal(ts) {
		t.Errorf("timestamp = %v, want %v", body.Timestamp, ts)
	}
}
