package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// QHist is a lock-free log-linear quantile histogram (HDR style). The
// value range [Min, Max) is split into octaves (powers of two), each
// octave into 64 linear sub-buckets, so the relative half-width of any
// bucket is (2^(1/64)-1)/2 ≈ 0.55% — comfortably inside a 1% quantile
// error budget when quantiles report bucket midpoints.
//
// Observe is wait-free in the common case and never allocates: the
// bucket index is computed straight from the float64 bit pattern (the
// exponent field selects the octave, the top 6 mantissa bits the
// sub-bucket) and the counters are striped. A sync.Pool hands each P
// a private stripe, so concurrent observers on different CPUs touch
// different cache lines; stripes are merged only at exposition time.
//
// Out-of-range observations are clamped into [Min, Max] — both for
// bucketing and for the running sum, so a stray +Inf cannot poison
// _sum. NaN observations are dropped.
type QHist struct {
	name    string
	help    string
	minVal  float64 // lowest bucket boundary, a power of two
	maxVal  float64 // upper range bound, a power of two
	base    int     // (minExp+1023)<<subBucketBits, subtracted from the biased index
	n       int     // total bucket count: octaves * subBuckets
	stripes []*qstripe
	pool    sync.Pool
	next    atomic.Uint64 // round-robin stripe hand-out for pool misses
}

const (
	subBucketBits = 6
	subBuckets    = 1 << subBucketBits

	// DefQuantileMin / DefQuantileMax bound the default latency range:
	// 2^-24 s ≈ 60ns up to 2^6 = 64s, 30 octaves * 64 = 1920 buckets
	// (15KiB of counters per stripe).
	DefQuantileMin = 1.0 / (1 << 24)
	DefQuantileMax = 64.0
)

// qstripe is one observer lane. The hot fields lead and the struct is
// its own allocation, so stripes don't share cache lines.
type qstripe struct {
	count   uint64
	sumBits uint64
	_       [6]uint64 // keep count/sumBits off neighbouring allocations' lines
	counts  []uint64
}

// NewQHist builds a detached histogram covering [min, max); both
// bounds are rounded outward to powers of two, and zero values select
// the default latency range. Use Registry.Quantile to register one.
func NewQHist(name, help string, min, max float64) *QHist {
	if min <= 0 {
		min = DefQuantileMin
	}
	if max <= min {
		max = DefQuantileMax
	}
	minExp := math.Ilogb(min)
	maxExp := math.Ilogb(max)
	if math.Ldexp(1, maxExp) < max {
		maxExp++
	}
	if maxExp <= minExp {
		maxExp = minExp + 1
	}
	h := &QHist{
		name:   name,
		help:   help,
		minVal: math.Ldexp(1, minExp),
		maxVal: math.Ldexp(1, maxExp),
		base:   (minExp + 1023) << subBucketBits,
		n:      (maxExp - minExp) * subBuckets,
	}
	ns := runtime.GOMAXPROCS(0)
	if ns > 16 {
		ns = 16
	}
	if ns < 1 {
		ns = 1
	}
	h.stripes = make([]*qstripe, ns)
	for i := range h.stripes {
		h.stripes[i] = &qstripe{counts: make([]uint64, h.n)}
	}
	// The pool gives each P a private stripe; on a miss (fresh P, or
	// the GC cleared the pool) New re-hands stripes round-robin. Two
	// Ps briefly sharing a stripe is harmless — counters are atomic —
	// it only costs a little cache-line traffic until Put re-settles.
	h.pool.New = func() any {
		return h.stripes[h.next.Add(1)%uint64(len(h.stripes))]
	}
	return h
}

// bucketIndex maps v (positive, non-NaN) to its bucket. The biased
// exponent and top mantissa bits of the float64 form a monotone
// integer, so the log-linear index is a shift and a subtract.
func (h *QHist) bucketIndex(v float64) int {
	if v < h.minVal { // also catches zero and negatives
		return 0
	}
	idx := int(math.Float64bits(v)>>(52-subBucketBits)) - h.base
	if idx >= h.n {
		return h.n - 1
	}
	return idx
}

// Observe records one value. Safe for any number of concurrent
// callers; never allocates; never blocks on a mutex.
func (h *QHist) Observe(v float64) {
	if h == nil {
		return
	}
	if v != v { // NaN would poison the sum forever
		return
	}
	cv := v
	if cv < h.minVal {
		cv = h.minVal
	} else if cv > h.maxVal {
		cv = h.maxVal
	}
	sp := h.pool.Get().(*qstripe)
	atomic.AddUint64(&sp.counts[h.bucketIndex(v)], 1)
	atomic.AddUint64(&sp.count, 1)
	for {
		old := atomic.LoadUint64(&sp.sumBits)
		upd := math.Float64bits(math.Float64frombits(old) + cv)
		if atomic.CompareAndSwapUint64(&sp.sumBits, old, upd) {
			break
		}
	}
	h.pool.Put(sp)
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *QHist) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// merged folds all stripes into one bucket array. Concurrent
// observers may land either side of the fold; the result is a
// consistent-enough snapshot for exposition.
func (h *QHist) merged() (counts []uint64, count uint64, sum float64) {
	counts = make([]uint64, h.n)
	for _, sp := range h.stripes {
		for i := range counts {
			counts[i] += atomic.LoadUint64(&sp.counts[i])
		}
		count += atomic.LoadUint64(&sp.count)
		sum += math.Float64frombits(atomic.LoadUint64(&sp.sumBits))
	}
	return counts, count, sum
}

// bound returns the lower boundary of bucket i (bound(n) == maxVal).
func (h *QHist) bound(i int) float64 {
	exp := i >> subBucketBits
	sub := i & (subBuckets - 1)
	return math.Ldexp(1+float64(sub)/subBuckets, exp) * h.minVal
}

// mid returns the midpoint of bucket i, the value quantiles report.
func (h *QHist) mid(i int) float64 {
	return (h.bound(i) + h.bound(i+1)) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the midpoint of the
// bucket holding that rank, or 0 when the histogram is empty.
func (h *QHist) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, count, _ := h.merged()
	return quantileOf(h, counts, count, q)
}

func quantileOf(h *QHist, counts []uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return h.mid(i)
		}
	}
	return h.mid(h.n - 1)
}

// Count returns the total number of observations.
func (h *QHist) Count() uint64 {
	if h == nil {
		return 0
	}
	var count uint64
	for _, sp := range h.stripes {
		count += atomic.LoadUint64(&sp.count)
	}
	return count
}

// Sum returns the (range-clamped) sum of observations.
func (h *QHist) Sum() float64 {
	if h == nil {
		return 0
	}
	var sum float64
	for _, sp := range h.stripes {
		sum += math.Float64frombits(atomic.LoadUint64(&sp.sumBits))
	}
	return sum
}

// QuantileSnapshot is one histogram's percentile report, the shape
// experiment tables and the /top endpoint serve.
type QuantileSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// snapshot folds the stripes once and reads every percentile off the
// same merged array.
func (h *QHist) snapshot() QuantileSnapshot {
	counts, count, sum := h.merged()
	return QuantileSnapshot{
		Count: count,
		Sum:   sum,
		P50:   quantileOf(h, counts, count, 0.5),
		P90:   quantileOf(h, counts, count, 0.9),
		P99:   quantileOf(h, counts, count, 0.99),
		P999:  quantileOf(h, counts, count, 0.999),
	}
}

// expose writes the histogram as a Prometheus summary: explicit
// quantile lines beat exporting 1920 buckets, and the scrape cost
// stays flat no matter how fine the internal resolution gets.
func (h *QHist) expose(w io.Writer) {
	writeHeader(w, h.name, h.help, "summary")
	counts, count, sum := h.merged()
	for _, q := range [...]float64{0.5, 0.99, 0.999} {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", h.name, formatFloat(q), formatFloat(quantileOf(h, counts, count, q)))
	}
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", h.name, count)
}

// Quantile registers a striped quantile histogram covering [min, max)
// (zeros select the default latency range of 60ns..64s). Returns a
// usable no-op histogram when the registry is nil.
func (r *Registry) Quantile(name, help string, min, max float64) *QHist {
	if r == nil {
		return nil
	}
	h := NewQHist(name, help, min, max)
	r.register(name, help, h)
	return h
}

// Quantiles reports every registered QHist keyed by metric name —
// the snapshot experiment reports and the live /top view consume.
func (r *Registry) Quantiles() map[string]QuantileSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]QuantileSnapshot)
	for name, m := range r.byName {
		if h, ok := m.(*QHist); ok {
			out[name] = h.snapshot()
		}
	}
	return out
}
