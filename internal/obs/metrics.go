package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// nameRE is the lowercase_snake rule every metric name must satisfy.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// DefLatencyBuckets are the default histogram buckets for control-plane
// latencies, in seconds (0.1ms .. 5s — one signalling hop up to a full
// retried chain).
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// metric is anything the registry can expose.
type metric interface {
	expose(w io.Writer)
}

// Counter is a monotonically increasing count. All methods are no-ops
// on a nil receiver, so disabled observability threads the same code.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) expose(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// Gauge is a value that can go up and down, stored as a float64.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) expose(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

// gaugeFunc samples a callback at exposition time: for values the
// system already tracks (reserved bandwidth, open tunnels) a callback
// avoids double bookkeeping.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

func (g *gaugeFunc) expose(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// Histogram is a cumulative-bucket latency histogram in the Prometheus
// style. Observations are in seconds.
type Histogram struct {
	name, help string
	buckets    []float64 // upper bounds, ascending

	mu     sync.Mutex
	counts []uint64 // one per bucket, non-cumulative
	sum    float64
	count  uint64
}

// Observe records one value. NaN observations are dropped: a single
// NaN added to the running sum would poison _sum forever (NaN is
// absorbing under addition), wrecking every rate(sum)/rate(count)
// query downstream.
func (h *Histogram) Observe(v float64) {
	if h == nil || v != v {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.mu.Lock()
	if i < len(h.counts) {
		h.counts[i]++
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) expose(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.count)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count)
}

// Registry owns a set of uniquely named metrics. A nil *Registry is
// the disabled state: it hands out nil handles whose methods no-op.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]metric
	helps   map[string]string
	ordered []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric), helps: make(map[string]string)}
}

// register enforces the naming, non-empty-HELP and exactly-once rules;
// violations are programming errors and panic (turned into test
// failures by lint_test.go and `make metrics-lint`).
func (r *Registry) register(name, help string, m metric) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q is not lowercase_snake", name))
	}
	if help == "" {
		panic(fmt.Sprintf("obs: metric %q registered with empty HELP text", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.byName[name] = m
	r.helps[name] = help
	r.ordered = append(r.ordered, name)
}

// Help returns the HELP text a metric registered with ("" when the
// name is unknown). The metrics-lint walk uses it to assert every
// live metric carries documentation.
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.helps[name]
}

// Counter registers and returns a counter. Counter names must end in
// _total per Prometheus convention. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	if len(name) < len("_total") || name[len(name)-len("_total"):] != "_total" {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	c := &Counter{name: name, help: help}
	r.register(name, help, c)
	return c
}

// Gauge registers and returns a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{name: name, help: help}
	r.register(name, help, g)
	return g
}

// GaugeFunc registers a gauge sampled from fn at exposition time.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, &gaugeFunc{name: name, help: help, fn: fn})
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (DefLatencyBuckets when nil). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{name: name, help: help, buckets: buckets, counts: make([]uint64, len(buckets))}
	r.register(name, help, h)
	return h
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.ordered...)
}

// WriteText renders the registry in Prometheus text exposition format,
// metrics sorted by name.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.ordered...)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.byName[n]
	}
	r.mu.Unlock()
	sort.Sort(&byName{names, ms})
	for _, m := range ms {
		m.expose(w)
	}
}

// Snapshot returns a point-in-time view of every scalar series:
// counters and gauges under their own name, histograms as _count and
// _sum. Experiments use it for world-level assertions.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make(map[string]metric, len(r.byName))
	for n, m := range r.byName {
		ms[n] = m
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(ms))
	for n, m := range ms {
		switch v := m.(type) {
		case *Counter:
			out[n] = float64(v.Value())
		case *Gauge:
			out[n] = v.Value()
		case *gaugeFunc:
			out[n] = v.fn()
		case *Histogram:
			out[n+"_count"] = float64(v.Count())
			out[n+"_sum"] = v.Sum()
		case *QHist:
			out[n+"_count"] = float64(v.Count())
			out[n+"_sum"] = v.Sum()
		}
	}
	return out
}

type byName struct {
	names []string
	ms    []metric
}

func (s *byName) Len() int           { return len(s.names) }
func (s *byName) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *byName) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.ms[i], s.ms[j] = s.ms[j], s.ms[i]
}

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// escapeHelp applies the text exposition format's HELP escaping: a
// raw newline would terminate the comment mid-text and leave the rest
// as an unparsable line, and a raw backslash would be read back as an
// escape by round-tripping parsers.
func escapeHelp(help string) string {
	if !strings.ContainsAny(help, "\\\n") {
		return help
	}
	var b strings.Builder
	b.Grow(len(help) + 8)
	for i := 0; i < len(help); i++ {
		switch help[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(help[i])
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
