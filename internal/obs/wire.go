package obs

import "e2eqos/internal/wire"

// Span binary field registry (DESIGN.md §6.6): 1=domain 2=bb 3=verdict
// 4=reason 5=retries 6=verify_ns 7=policy_ns 8=admit_ns
// 9=downstream_ns 10=total_ns. Spans ride inside signalling result
// frames; the codec lives here so the field list stays next to the
// struct it mirrors.

// AppendWire appends the span's binary field encoding.
func (s *Span) AppendWire(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, s.Domain)
	buf = wire.AppendString(buf, 2, s.BB)
	buf = wire.AppendString(buf, 3, s.Verdict)
	buf = wire.AppendString(buf, 4, s.Reason)
	buf = wire.AppendInt(buf, 5, int64(s.Retries))
	buf = wire.AppendInt(buf, 6, s.VerifyNS)
	buf = wire.AppendInt(buf, 7, s.PolicyNS)
	buf = wire.AppendInt(buf, 8, s.AdmitNS)
	buf = wire.AppendInt(buf, 9, s.DownstreamNS)
	buf = wire.AppendInt(buf, 10, s.TotalNS)
	return buf
}

// DecodeWire reverses AppendWire.
func (s *Span) DecodeWire(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			s.Domain = d.String()
		case f == 2 && wt == wire.TBytes:
			s.BB = d.String()
		case f == 3 && wt == wire.TBytes:
			s.Verdict = d.String()
		case f == 4 && wt == wire.TBytes:
			s.Reason = d.String()
		case f == 5 && wt == wire.TVarint:
			s.Retries = int(d.Varint())
		case f == 6 && wt == wire.TVarint:
			s.VerifyNS = d.Varint()
		case f == 7 && wt == wire.TVarint:
			s.PolicyNS = d.Varint()
		case f == 8 && wt == wire.TVarint:
			s.AdmitNS = d.Varint()
		case f == 9 && wt == wire.TVarint:
			s.DownstreamNS = d.Varint()
		case f == 10 && wt == wire.TVarint:
			s.TotalNS = d.Varint()
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}
