package obs

import (
	"math"
	"testing"
	"time"
)

func TestRateWindowSteadyState(t *testing.T) {
	w := NewRateWindow(10, time.Second)
	t0 := time.Unix(1000, 0)
	// 50 events/sec fed once a second for long enough to fill the ring.
	level := 0.0
	for i := 0; i <= 30; i++ {
		w.Sample(t0.Add(time.Duration(i)*time.Second), level)
		level += 50
	}
	got := w.Rate(t0.Add(30 * time.Second))
	if math.Abs(got-50) > 5 {
		t.Fatalf("steady rate = %v, want ~50/s", got)
	}
}

func TestRateWindowRampUpAndIdle(t *testing.T) {
	w := NewRateWindow(10, time.Second)
	t0 := time.Unix(2000, 0)
	// Two seconds of life at 100/s must not be diluted over the full
	// 10s window.
	w.Sample(t0, 0)
	w.Sample(t0.Add(time.Second), 100)
	w.Sample(t0.Add(2*time.Second), 200)
	if got := w.Rate(t0.Add(2 * time.Second)); math.Abs(got-100) > 15 {
		t.Fatalf("ramp-up rate = %v, want ~100/s", got)
	}
	// After the window slides past all activity the rate decays to 0.
	w.Sample(t0.Add(60*time.Second), 200)
	if got := w.Rate(t0.Add(60 * time.Second)); got != 0 {
		t.Fatalf("idle rate = %v, want 0", got)
	}
}

func TestRateWindowCounterRestart(t *testing.T) {
	w := NewRateWindow(10, time.Second)
	t0 := time.Unix(3000, 0)
	w.Sample(t0, 500)
	// A restarted broker starts its counters over; the level drop must
	// reset the base, not credit a negative delta.
	w.Sample(t0.Add(time.Second), 3)
	if got := w.Rate(t0.Add(time.Second)); got < 0 {
		t.Fatalf("rate = %v after restart, want >= 0", got)
	}
	w.Sample(t0.Add(2*time.Second), 53)
	if got := w.Rate(t0.Add(2 * time.Second)); got <= 0 {
		t.Fatalf("rate = %v, post-restart deltas must count", got)
	}
}

// TestRateWindowRestartMidWindowRecovers simulates the full restart
// shape a live `qosctl top` sees: a broker running at a steady rate,
// dying, and coming back with fresh zeroed counters mid-window. The
// reported rate must never go negative at any sample, and must return
// to the true steady rate once the window refills with post-restart
// deltas.
func TestRateWindowRestartMidWindowRecovers(t *testing.T) {
	w := NewRateWindow(10, time.Second)
	t0 := time.Unix(4000, 0)
	// 200/s until the ring is saturated.
	level := 0.0
	now := t0
	for i := 0; i <= 15; i++ {
		w.Sample(now, level)
		if got := w.Rate(now); got < 0 {
			t.Fatalf("rate = %v at sample %d, never negative", got, i)
		}
		level += 200
		now = now.Add(time.Second)
	}
	// Restart: the counter restarts from zero and resumes at 200/s.
	level = 0
	for i := 0; i <= 15; i++ {
		w.Sample(now, level)
		if got := w.Rate(now); got < 0 {
			t.Fatalf("rate = %v at post-restart sample %d, never negative", got, i)
		}
		level += 200
		now = now.Add(time.Second)
	}
	// The window now holds only post-restart deltas; the dropped level
	// must not have poisoned the steady rate.
	if got := w.Rate(now.Add(-time.Second)); math.Abs(got-200) > 25 {
		t.Fatalf("post-restart steady rate = %v, want ~200/s", got)
	}
}

func TestTopSnapshotClassifiesMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests")
	g := r.Gauge("depth", "queue depth")
	h := r.Histogram("old_seconds", "bucketed latency", nil)
	q := r.Quantile("lat_seconds", "striped latency", 0, 0)
	top := NewTop("DomainA", r)

	t0 := time.Unix(5000, 0)
	top.Snapshot(t0) // prime the rate windows
	for i := 0; i < 100; i++ {
		c.Inc()
		q.Observe(0.002)
	}
	g.Set(7)
	h.Observe(0.5)
	snap := top.Snapshot(t0.Add(time.Second))

	if snap.Domain != "DomainA" || snap.WindowSec != 10 {
		t.Fatalf("bad snapshot header %+v", snap)
	}
	if rate := snap.Rates["req_total"]; rate <= 0 {
		t.Fatalf("counter rate = %v, want > 0", rate)
	}
	if snap.Gauges["depth"] != 7 {
		t.Fatalf("gauge = %v, want 7", snap.Gauges["depth"])
	}
	// Histogram scalars must not masquerade as gauges or rates.
	for _, name := range []string{"old_seconds_count", "old_seconds_sum", "lat_seconds_count", "lat_seconds_sum"} {
		if _, ok := snap.Gauges[name]; ok {
			t.Fatalf("%s leaked into gauges", name)
		}
		if _, ok := snap.Rates[name]; ok {
			t.Fatalf("%s leaked into rates", name)
		}
	}
	qs, ok := snap.Quantiles["lat_seconds"]
	if !ok || qs.Count != 100 || qs.P50 <= 0 {
		t.Fatalf("bad quantile entry %+v (ok=%t)", qs, ok)
	}
}

func TestTopNilSafety(t *testing.T) {
	var top *Top
	snap := top.Snapshot(time.Unix(1, 0))
	if snap.Domain != "" || len(snap.Rates) != 0 {
		t.Fatalf("nil Top must report empty: %+v", snap)
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"c": 1, "a": 2, "b": 3})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
