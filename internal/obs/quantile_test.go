package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// refQuantile is the exact quantile under the same rank convention
// the histogram uses: the ceil(q*n)-th smallest observation.
func refQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQHistQuantileAccuracy pins the acceptance bound: against a
// log-uniform latency population spanning six decades, every reported
// quantile must sit within 1% relative error of the exact rank value.
func TestQHistQuantileAccuracy(t *testing.T) {
	h := NewQHist("q_seconds", "latency", 0, 0)
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 200_000)
	for i := range values {
		// 1µs .. 1s, log-uniform: every octave gets real mass.
		values[i] = math.Pow(10, -6+6*rng.Float64())
		h.Observe(values[i])
	}
	sort.Float64s(values)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := refQuantile(values, q)
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("q=%v: got %v want %v (rel err %.4f, budget 0.01)", q, got, want, rel)
		}
	}
	if h.Count() != uint64(len(values)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(values))
	}
	var wantSum float64
	for _, v := range values {
		wantSum += v
	}
	if rel := math.Abs(h.Sum()-wantSum) / wantSum; rel > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestQHistClampingAndNaN(t *testing.T) {
	h := NewQHist("q_seconds", "latency", 0, 0)
	h.Observe(math.NaN()) // dropped entirely
	if h.Count() != 0 {
		t.Fatal("NaN must not be counted")
	}
	h.Observe(-5)           // clamps to min
	h.Observe(0)            // clamps to min
	h.Observe(math.Inf(1))  // clamps to max
	h.Observe(1e9)          // clamps to max
	h.Observe(math.Inf(-1)) // clamps to min
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	wantSum := 3*DefQuantileMin + 2*DefQuantileMax
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v (out-of-range must clamp, not poison)", h.Sum(), wantSum)
	}
	if q := h.Quantile(1); q > DefQuantileMax || q < DefQuantileMax/2 {
		t.Fatalf("max quantile %v escaped the top octave", q)
	}
}

func TestQHistEmptyAndNil(t *testing.T) {
	var nilH *QHist
	nilH.Observe(1)
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil QHist must read zero")
	}
	h := NewQHist("q_seconds", "latency", 0, 0)
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram must report 0")
	}
}

func TestQHistBucketBoundsMonotone(t *testing.T) {
	h := NewQHist("q_seconds", "latency", 0, 0)
	prev := h.bound(0)
	if prev != h.minVal {
		t.Fatalf("bound(0) = %v, want %v", prev, h.minVal)
	}
	for i := 1; i <= h.n; i++ {
		b := h.bound(i)
		if b <= prev {
			t.Fatalf("bound(%d) = %v not > bound(%d) = %v", i, b, i-1, prev)
		}
		prev = b
	}
	if prev != h.maxVal {
		t.Fatalf("bound(n) = %v, want max %v", prev, h.maxVal)
	}
	// Every bucket's midpoint must land back in its own bucket: the
	// index computed from the bit pattern agrees with the boundaries.
	for i := 0; i < h.n; i++ {
		if got := h.bucketIndex(h.mid(i)); got != i {
			t.Fatalf("bucketIndex(mid(%d)) = %d", i, got)
		}
	}
}

// TestQHistConcurrentObserveAndExpose is the race battery: hammer
// Observe from 8 goroutines while concurrently merging, exposing and
// reading quantiles. Run under -race it checks the synchronization
// story; in a normal build it checks that no observation is lost.
func TestQHistConcurrentObserveAndExpose(t *testing.T) {
	r := NewRegistry()
	h := r.Quantile("q_seconds", "latency", 0, 0)
	const goroutines = 8
	const perG = 20_000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader: exposition + snapshots while writes fly
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			r.WriteText(&sb)
			_ = r.Quantiles()
			_ = h.Quantile(0.99)
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(1e-6 + rng.Float64()/1000)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	<-readerDone
	if h.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d (lost observations)", h.Count(), goroutines*perG)
	}
	snap := r.Quantiles()["q_seconds"]
	if snap.Count != goroutines*perG || snap.P50 <= 0 || snap.P999 < snap.P50 {
		t.Fatalf("bad snapshot %+v", snap)
	}
}

// TestQHistObserveAllocationFree gates the telemetry hot path: one
// observation must not allocate, or fleet-rate instrumentation would
// feed the GC.
func TestQHistObserveAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gate is meaningless under the race detector")
	}
	h := NewQHist("q_seconds", "latency", 0, 0)
	h.Observe(0.001) // settle the pool
	got := testing.AllocsPerRun(1000, func() {
		h.Observe(0.000123)
	})
	if got > 0 {
		t.Errorf("QHist.Observe allocates %.1f per op, want 0", got)
	}
}

func TestRegistrySnapshotIncludesQHist(t *testing.T) {
	r := NewRegistry()
	h := r.Quantile("q_seconds", "latency", 0, 0)
	h.Observe(0.5)
	h.Observe(0.25)
	snap := r.Snapshot()
	if snap["q_seconds_count"] != 2 {
		t.Fatalf("snapshot count = %v, want 2", snap["q_seconds_count"])
	}
	if snap["q_seconds_sum"] != 0.75 {
		t.Fatalf("snapshot sum = %v, want 0.75", snap["q_seconds_sum"])
	}
}

func TestQHistExposeSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Quantile("q_seconds", "latency quantiles", 0, 0)
	for i := 0; i < 1000; i++ {
		h.Observe(0.001)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP q_seconds latency quantiles",
		"# TYPE q_seconds summary",
		`q_seconds{quantile="0.5"}`,
		`q_seconds{quantile="0.99"}`,
		`q_seconds{quantile="0.999"}`,
		"q_seconds_count 1000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// mutexHist is the baseline the striped histogram is benchmarked
// against: same bucketing, one mutex around the counters — the
// natural first implementation.
type mutexHist struct {
	mu sync.Mutex
	h  *QHist
}

func (m *mutexHist) Observe(v float64) {
	m.mu.Lock()
	m.h.stripes[0].counts[m.h.bucketIndex(v)]++
	m.h.stripes[0].count++
	sum := math.Float64frombits(m.h.stripes[0].sumBits) + v
	m.h.stripes[0].sumBits = math.Float64bits(sum)
	m.mu.Unlock()
}

// BenchmarkQHistObserveParallel / BenchmarkMutexHistObserveParallel
// measure the contended hot path (`make bench-obs`, BENCH_obs.json):
// the striped histogram must beat the mutexed baseline by >= 4x at 8
// goroutines with 0 allocs/op.
func BenchmarkQHistObserveParallel(b *testing.B) {
	h := NewQHist("q_seconds", "latency", 0, 0)
	b.SetParallelism(1) // GOMAXPROCS workers
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.000123)
		}
	})
}

func BenchmarkMutexHistObserveParallel(b *testing.B) {
	m := &mutexHist{h: NewQHist("q_seconds", "latency", 0, 0)}
	b.SetParallelism(1)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Observe(0.000123)
		}
	})
}

func BenchmarkQHistQuantile(b *testing.B) {
	h := NewQHist("q_seconds", "latency", 0, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		h.Observe(math.Pow(10, -6+6*rng.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.999)
	}
}
