//go:build race

package obs

// raceEnabled skips the allocs-per-op gates under the race detector,
// whose instrumentation allocates on paths that are clean in a normal
// build.
const raceEnabled = true
