package obs

import (
	"math"
	"sync/atomic"

	"e2eqos/internal/wire"
)

// Event kinds recorded by the flight recorder.
const (
	// EventReserve is one hop's settlement of a reserve RAR.
	EventReserve = "reserve"
	// EventTunnelBatch is one endpoint's settlement of a sub-flow batch
	// (or a source broker's view of the whole two-endpoint operation).
	EventTunnelBatch = "tunnel-batch"
	// EventFailover is a replication role transition: a follower winning
	// an election, or a deposed leader stepping down. Always forced —
	// failovers are exactly the events someone will ask about.
	EventFailover = "failover"
	// EventRollbackAbandoned is a compensation the broker gave up
	// retrying: downstream state is unknown and bandwidth may stay
	// stranded until the reservation window expires. Always forced.
	EventRollbackAbandoned = "rollback-abandoned"
)

// Event is one wide flight-recorder record: everything a broker knew
// about a sampled request when it settled, in a single row. The
// recorder keeps these on disk (binary, CRC-framed) so a p999 outlier
// or a denied chain can be reconstructed hop by hop after the fact —
// per-request tracing that survives at fleet sampling rates, unlike
// the requester-opt-in trace which is all-or-nothing.
type Event struct {
	TimeNS     int64  `json:"ts_ns"`
	Kind       string `json:"kind"`
	Domain     string `json:"domain"` // recording broker's domain
	TraceID    string `json:"trace_id,omitempty"`
	RARID      string `json:"rar_id,omitempty"`
	User       string `json:"user,omitempty"`
	Verdict    string `json:"verdict"`
	Reason     string `json:"reason,omitempty"`
	Retries    int    `json:"retries,omitempty"`
	Ops        int    `json:"ops,omitempty"`   // sub-flow ops in a tunnel batch
	Bytes      int    `json:"bytes,omitempty"` // signed envelope / payload size where known
	DurationNS int64  `json:"duration_ns"`
	// Sampled marks a probabilistic pick; false means the event was
	// forced (denial, rollback, downstream error, open breaker).
	Sampled bool   `json:"sampled,omitempty"`
	Spans   []Span `json:"spans,omitempty"` // per-hop timeline, destination first
}

// Event binary field registry (DESIGN.md §6.7): 1=ts_ns 2=kind
// 3=domain 4=trace_id 5=rar_id 6=user 7=verdict 8=reason 9=retries
// 10=ops 11=bytes 12=duration_ns 13=sampled 14=spans (repeated
// nested). Implements journal.BinaryRecord/BinaryDecoder so events
// reuse the journal's CRC framing verbatim.

// AppendBinary appends the event's tagged binary encoding.
func (e *Event) AppendBinary(buf []byte) []byte {
	buf = wire.AppendInt(buf, 1, e.TimeNS)
	buf = wire.AppendString(buf, 2, e.Kind)
	buf = wire.AppendString(buf, 3, e.Domain)
	buf = wire.AppendString(buf, 4, e.TraceID)
	buf = wire.AppendString(buf, 5, e.RARID)
	buf = wire.AppendString(buf, 6, e.User)
	buf = wire.AppendString(buf, 7, e.Verdict)
	buf = wire.AppendString(buf, 8, e.Reason)
	buf = wire.AppendInt(buf, 9, int64(e.Retries))
	buf = wire.AppendInt(buf, 10, int64(e.Ops))
	buf = wire.AppendInt(buf, 11, int64(e.Bytes))
	buf = wire.AppendInt(buf, 12, e.DurationNS)
	buf = wire.AppendBool(buf, 13, e.Sampled)
	for i := range e.Spans {
		var start int
		buf, start = wire.BeginNested(buf, 14)
		buf = e.Spans[i].AppendWire(buf)
		buf = wire.EndNested(buf, start)
	}
	return buf
}

// DecodeBinary reverses AppendBinary.
func (e *Event) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TVarint:
			e.TimeNS = d.Varint()
		case f == 2 && wt == wire.TBytes:
			e.Kind = d.String()
		case f == 3 && wt == wire.TBytes:
			e.Domain = d.String()
		case f == 4 && wt == wire.TBytes:
			e.TraceID = d.String()
		case f == 5 && wt == wire.TBytes:
			e.RARID = d.String()
		case f == 6 && wt == wire.TBytes:
			e.User = d.String()
		case f == 7 && wt == wire.TBytes:
			e.Verdict = d.String()
		case f == 8 && wt == wire.TBytes:
			e.Reason = d.String()
		case f == 9 && wt == wire.TVarint:
			e.Retries = int(d.Varint())
		case f == 10 && wt == wire.TVarint:
			e.Ops = int(d.Varint())
		case f == 11 && wt == wire.TVarint:
			e.Bytes = int(d.Varint())
		case f == 12 && wt == wire.TVarint:
			e.DurationNS = d.Varint()
		case f == 13 && wt == wire.TVarint:
			e.Sampled = d.Bool()
		case f == 14 && wt == wire.TBytes:
			var s Span
			if err := s.DecodeWire(d.Bytes()); err != nil {
				return err
			}
			e.Spans = append(e.Spans, s)
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// Sampler makes the always-on probabilistic pick: roughly rate of the
// requests entering the network at this broker get a flight-recorder
// event. Sample is one atomic add plus a few shifts — cheap enough
// for the sub-flow hot path — and a nil *Sampler never samples, so
// disabled recording threads the same code.
//
// The generator is a Weyl sequence pushed through the splitmix64
// finalizer: uniform 64-bit outputs with no locking and no per-call
// allocation. It is deliberately deterministic per process — sampling
// decisions in tests reproduce.
type Sampler struct {
	threshold uint64
	state     atomic.Uint64
}

// NewSampler builds a sampler picking with probability rate (clamped
// to [0,1]). Rates ≤ 0 return nil, the never-sample sampler.
func NewSampler(rate float64) *Sampler {
	if rate <= 0 || math.IsNaN(rate) {
		return nil
	}
	s := &Sampler{threshold: math.MaxUint64}
	if rate < 1 {
		s.threshold = uint64(rate * math.MaxUint64)
	}
	return s
}

// Sample reports whether this request is picked.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	if s.threshold == math.MaxUint64 {
		return true
	}
	x := s.state.Add(0x9E3779B97F4A7C15) // golden-ratio Weyl increment
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x < s.threshold
}
