package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// Span is one hop's record of handling a traced reserve request: which
// domain, what it decided, and where the time went. Spans are appended
// to the signalling result payload as the response propagates back
// upstream, destination first — the observability analogue of the
// paper's nested approval chain — so the requester can reconstruct the
// exact path its RAR took and where it stalled.
//
// All durations are wall-clock nanoseconds measured at the hop:
//
//	VerifyNS     envelope verification (signature chain + certs)
//	PolicyNS     policy-server decision
//	AdmitNS      reservation-table admission
//	DownstreamNS downstream call round trip, including retries/backoff
//	TotalNS      whole handler, receipt to response
type Span struct {
	Domain  string `json:"domain"`
	BB      string `json:"bb,omitempty"`
	Verdict string `json:"verdict"`
	Reason  string `json:"reason,omitempty"`
	// Retries is how many extra downstream attempts this hop made
	// beyond the first (0 when the first attempt settled it).
	Retries      int   `json:"retries,omitempty"`
	VerifyNS     int64 `json:"verify_ns,omitempty"`
	PolicyNS     int64 `json:"policy_ns,omitempty"`
	AdmitNS      int64 `json:"admit_ns,omitempty"`
	DownstreamNS int64 `json:"downstream_ns,omitempty"`
	TotalNS      int64 `json:"total_ns,omitempty"`
}

// Span verdicts.
const (
	// VerdictGranted: the hop admitted and (if not the destination)
	// its downstream chain granted.
	VerdictGranted = "granted"
	// VerdictDenied: the hop itself refused (policy, SLA, admission).
	VerdictDenied = "denied"
	// VerdictError: the hop's downstream call failed at the transport
	// level (timeout, reset, open breaker) — the chain below it is in
	// an unknown state and was handed a rollback cancel.
	VerdictError = "error"
	// VerdictRolledBack: the hop admitted locally but a hop below it
	// denied, so the local admission was rolled back. The actual
	// refusal is in a deeper span.
	VerdictRolledBack = "rolled_back"
)

// NewTraceID returns a fresh 16-hex-char trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to
		// a fixed id rather than propagate an error nobody can handle.
		return "t-0000000000000000"
	}
	return "t-" + hex.EncodeToString(b[:])
}

// RenderTimeline formats spans as a per-hop timeline. Spans are
// expected destination-first (the wire order); the rendering walks the
// chain source-to-destination, one line per hop.
func RenderTimeline(traceID string, spans []Span) string {
	var sb strings.Builder
	if traceID != "" {
		fmt.Fprintf(&sb, "trace %s (%d hops)\n", traceID, len(spans))
	}
	for i := len(spans) - 1; i >= 0; i-- {
		s := spans[i]
		hop := len(spans) - i
		fmt.Fprintf(&sb, "  hop %d %-12s %-7s total=%s", hop, s.Domain, s.Verdict, fmtNS(s.TotalNS))
		if s.VerifyNS > 0 {
			fmt.Fprintf(&sb, " verify=%s", fmtNS(s.VerifyNS))
		}
		if s.PolicyNS > 0 {
			fmt.Fprintf(&sb, " policy=%s", fmtNS(s.PolicyNS))
		}
		if s.AdmitNS > 0 {
			fmt.Fprintf(&sb, " admit=%s", fmtNS(s.AdmitNS))
		}
		if s.DownstreamNS > 0 {
			fmt.Fprintf(&sb, " downstream=%s", fmtNS(s.DownstreamNS))
		}
		if s.Retries > 0 {
			fmt.Fprintf(&sb, " retries=%d", s.Retries)
		}
		if s.Reason != "" {
			fmt.Fprintf(&sb, " reason=%q", s.Reason)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
