package obs

import (
	"strings"
	"testing"
)

// The metrics-lint tier (`make metrics-lint`) runs the TestMetricsLint
// tests here and in internal/experiment: the registry enforces the
// naming rules by panicking at registration time, and these tests pin
// that enforcement so a rule regression fails CI rather than silently
// admitting bad names.

func mustPanic(t *testing.T, wantSubstr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", wantSubstr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSubstr) {
			t.Fatalf("panic %v does not mention %q", r, wantSubstr)
		}
	}()
	f()
}

func TestMetricsLintNameRule(t *testing.T) {
	for _, bad := range []string{"Total", "x-y", "1x", "x.y", "", "x y", "réqs"} {
		bad := bad
		mustPanic(t, "lowercase_snake", func() {
			NewRegistry().Gauge(bad, "")
		})
	}
	// The boundary cases that must pass.
	r := NewRegistry()
	r.Gauge("a", "")
	r.Gauge("a2_b_c", "")
}

func TestMetricsLintCounterSuffix(t *testing.T) {
	mustPanic(t, "_total", func() {
		NewRegistry().Counter("requests", "")
	})
	NewRegistry().Counter("requests_total", "")
}

func TestMetricsLintRegisteredExactlyOnce(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth", "")
	mustPanic(t, "registered twice", func() {
		r.Gauge("depth", "")
	})
	mustPanic(t, "registered twice", func() {
		r.GaugeFunc("depth", "", func() float64 { return 0 })
	})
}

func TestMetricsLintBucketsAscending(t *testing.T) {
	mustPanic(t, "not ascending", func() {
		NewRegistry().Histogram("h_seconds", "", []float64{1, 1})
	})
}
