package obs

import (
	"strings"
	"testing"
)

// The metrics-lint tier (`make metrics-lint`) runs the TestMetricsLint
// tests here and in internal/experiment: the registry enforces the
// naming rules by panicking at registration time, and these tests pin
// that enforcement so a rule regression fails CI rather than silently
// admitting bad names.

func mustPanic(t *testing.T, wantSubstr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", wantSubstr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSubstr) {
			t.Fatalf("panic %v does not mention %q", r, wantSubstr)
		}
	}()
	f()
}

func TestMetricsLintNameRule(t *testing.T) {
	for _, bad := range []string{"Total", "x-y", "1x", "x.y", "", "x y", "réqs"} {
		bad := bad
		mustPanic(t, "lowercase_snake", func() {
			NewRegistry().Gauge(bad, "")
		})
	}
	// The boundary cases that must pass.
	r := NewRegistry()
	r.Gauge("a", "a")
	r.Gauge("a2_b_c", "boundary name")
}

func TestMetricsLintCounterSuffix(t *testing.T) {
	mustPanic(t, "_total", func() {
		NewRegistry().Counter("requests", "requests served")
	})
	NewRegistry().Counter("requests_total", "requests served")
}

func TestMetricsLintNonEmptyHelp(t *testing.T) {
	// Every registration kind must refuse an empty HELP string: an
	// undocumented metric is a lint error, not a rendering quirk.
	mustPanic(t, "empty HELP", func() {
		NewRegistry().Counter("x_total", "")
	})
	mustPanic(t, "empty HELP", func() {
		NewRegistry().Gauge("x", "")
	})
	mustPanic(t, "empty HELP", func() {
		NewRegistry().GaugeFunc("x", "", func() float64 { return 0 })
	})
	mustPanic(t, "empty HELP", func() {
		NewRegistry().Histogram("x_seconds", "", nil)
	})
	mustPanic(t, "empty HELP", func() {
		NewRegistry().Quantile("x_seconds", "", 0, 0)
	})
	r := NewRegistry()
	r.Counter("x_total", "documented")
	if got := r.Help("x_total"); got != "documented" {
		t.Fatalf("Help = %q, want %q", got, "documented")
	}
	if got := r.Help("unknown"); got != "" {
		t.Fatalf("Help(unknown) = %q, want empty", got)
	}
}

func TestMetricsLintRegisteredExactlyOnce(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth", "queue depth")
	mustPanic(t, "registered twice", func() {
		r.Gauge("depth", "queue depth")
	})
	mustPanic(t, "registered twice", func() {
		r.GaugeFunc("depth", "queue depth", func() float64 { return 0 })
	})
}

func TestMetricsLintBucketsAscending(t *testing.T) {
	mustPanic(t, "not ascending", func() {
		NewRegistry().Histogram("h_seconds", "latency", []float64{1, 1})
	})
}
