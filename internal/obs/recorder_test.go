package obs

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func sampleEvent(i int) *Event {
	return &Event{
		TimeNS:     int64(1_000_000 + i),
		Kind:       EventReserve,
		Domain:     "DomainA",
		TraceID:    "t-0011223344556677",
		RARID:      "RAR-1",
		User:       "C=US,O=Grid,CN=alice",
		Verdict:    VerdictGranted,
		Retries:    1,
		Bytes:      512,
		DurationNS: 42_000,
		Sampled:    true,
		Spans: []Span{
			{Domain: "DomainB", BB: "bb-b", Verdict: VerdictGranted, TotalNS: 1e6},
			{Domain: "DomainA", BB: "bb-a", Verdict: VerdictGranted, TotalNS: 2e6, DownstreamNS: 1.1e6},
		},
	}
}

func TestEventBinaryRoundTrip(t *testing.T) {
	ev := sampleEvent(0)
	buf := ev.AppendBinary(nil)
	var got Event
	if err := got.DecodeBinary(buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, ev) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", &got, ev)
	}
	// A forced denial with no spans — the sparse shape.
	sparse := &Event{TimeNS: 7, Kind: EventTunnelBatch, Domain: "D", Verdict: VerdictDenied, Reason: "no capacity", Ops: 64, DurationNS: 9}
	var got2 Event
	if err := got2.DecodeBinary(sparse.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got2, sparse) {
		t.Fatalf("sparse round trip mismatch:\n got %+v\nwant %+v", &got2, sparse)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRecorder(RecorderOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := r.Append(sampleEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var got []*Event
	if err := ReadEvents(dir, func(e *Event) bool {
		ev := *e
		got = append(got, &ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d events, want %d", len(got), n)
	}
	for i, e := range got {
		if e.TimeNS != int64(1_000_000+i) {
			t.Fatalf("event %d out of order: ts %d", i, e.TimeNS)
		}
	}
	if !reflect.DeepEqual(got[0], sampleEvent(0)) {
		t.Fatalf("first event mismatch: %+v", got[0])
	}
}

func TestRecorderResumeAfterReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRecorder(RecorderOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append(sampleEvent(0)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	// A restarted broker appends to the same ring.
	r2, err := OpenRecorder(RecorderOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Append(sampleEvent(1)); err != nil {
		t.Fatal(err)
	}
	r2.Close()
	count := 0
	if err := ReadEvents(dir, func(*Event) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("read %d events after reopen, want 2", count)
	}
}

func TestRecorderRotationBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so a handful of events rotates several times.
	r, err := OpenRecorder(RecorderOptions{Dir: dir, SegmentBytes: 2048, Segments: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := r.Append(sampleEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "events-*.elog"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 3 {
		t.Fatalf("%d segments on disk, ring must keep <= 3", len(segs))
	}
	// The survivors must be the newest events, still contiguous.
	var first, last, count int64 = -1, -1, 0
	if err := ReadEvents(dir, func(e *Event) bool {
		if first < 0 {
			first = e.TimeNS
		}
		if last >= 0 && e.TimeNS != last+1 {
			t.Fatalf("gap in surviving events: %d after %d", e.TimeNS, last)
		}
		last = e.TimeNS
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if last != 1_000_000+n-1 {
		t.Fatalf("newest surviving event is %d, want %d", last, 1_000_000+n-1)
	}
	if count == n {
		t.Fatal("ring dropped nothing; rotation never pruned")
	}
}

func TestReadEventsToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRecorder(RecorderOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := r.Append(sampleEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	// Simulate a crash mid-append: chop bytes off the last frame.
	seg := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := ReadEvents(dir, func(*Event) bool { count++; return true }); err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if count != 4 {
		t.Fatalf("read %d events before the torn frame, want 4", count)
	}
}

func TestEventFilterMatch(t *testing.T) {
	ev := sampleEvent(0)
	cases := []struct {
		f    *EventFilter
		want bool
	}{
		{nil, true},
		{&EventFilter{}, true},
		{&EventFilter{Verdict: VerdictGranted}, true},
		{&EventFilter{Verdict: VerdictDenied}, false},
		{&EventFilter{Domain: "DomainA"}, true},
		{&EventFilter{Domain: "DomainB"}, false},
		{&EventFilter{Kind: EventReserve}, true},
		{&EventFilter{Kind: EventTunnelBatch}, false},
		{&EventFilter{TraceID: ev.TraceID}, true},
		{&EventFilter{TraceID: "t-ffff"}, false},
		{&EventFilter{MinDuration: 10 * time.Microsecond}, true},
		{&EventFilter{MinDuration: time.Second}, false},
		{&EventFilter{Verdict: VerdictGranted, MinDuration: time.Second}, false},
	}
	for i, c := range cases {
		if got := c.f.Match(ev); got != c.want {
			t.Errorf("case %d: Match = %t, want %t (%+v)", i, got, c.want, c.f)
		}
	}
}

func TestSamplerRate(t *testing.T) {
	if NewSampler(0) != nil || NewSampler(-1) != nil || NewSampler(math.NaN()) != nil {
		t.Fatal("non-positive rates must disable sampling entirely")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler must never sample")
	}
	always := NewSampler(1)
	for i := 0; i < 100; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 must always sample")
		}
	}
	const n = 200_000
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		s := NewSampler(rate)
		hits := 0
		for i := 0; i < n; i++ {
			if s.Sample() {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > rate*0.15 {
			t.Errorf("rate %v: sampled %.4f of %d draws", rate, got, n)
		}
	}
}

func TestRecorderNilAndClosed(t *testing.T) {
	var r *Recorder
	if err := r.Append(sampleEvent(0)); err != nil {
		t.Fatal("nil recorder must be a silent no-op")
	}
	r2, err := OpenRecorder(RecorderOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	r2.Close()
	if err := r2.Append(sampleEvent(0)); err == nil {
		t.Fatal("append after close must error")
	}
}

// TestRecorderAppendAllocationFree gates the sampled-event hot path:
// encoding and framing reuse the recorder's buffer, so a steady-state
// append costs no allocations.
func TestRecorderAppendAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gate is meaningless under the race detector")
	}
	r, err := OpenRecorder(RecorderOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ev := sampleEvent(0)
	if err := r.Append(ev); err != nil { // warm the buffer
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if err := r.Append(ev); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Errorf("Recorder.Append allocates %.1f per op, want 0", got)
	}
}

// TestReadEventsRacesLiveWriter is the regression test for reading a
// flight recorder that is still being written: the writer's rotation
// prunes the oldest segment with os.Remove (a reader mid-scan sees
// ENOENT), and the active segment's final frame may be half-written
// when the reader's ReadFile lands. Neither may fail the read — the
// reader must deliver every fully-written event it can still reach.
func TestReadEventsRacesLiveWriter(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so rotation (and pruning) happens constantly.
	r, err := OpenRecorder(RecorderOptions{Dir: dir, SegmentBytes: 2048, Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
			if err := r.Append(sampleEvent(i)); err != nil {
				writerDone <- err
				return
			}
			i++
		}
	}()

	deadline := time.Now().Add(time.Second)
	reads := 0
	for time.Now().Before(deadline) {
		n := 0
		err := ReadEvents(dir, func(ev *Event) bool {
			if ev.Kind != EventReserve {
				t.Errorf("read a mangled event: %+v", ev)
				return false
			}
			n++
			return true
		})
		if err != nil {
			t.Fatalf("ReadEvents racing the writer: %v", err)
		}
		reads++
	}
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if reads == 0 {
		t.Fatal("reader never completed a scan")
	}
	// With the writer quiesced a scan must see the surviving ring.
	n := 0
	if err := ReadEvents(dir, func(*Event) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events survived in the ring")
	}
}

// TestReadEventsSkipsVanishedSegment pins the ENOENT tolerance
// deterministically: a segment listed but deleted before it is read
// (the writer pruned it) is skipped, not an error.
func TestReadEventsSkipsVanishedSegment(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRecorder(RecorderOptions{Dir: dir, SegmentBytes: 512, Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := r.Append(sampleEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("want several segments, got %d", len(seqs))
	}
	// ReadEvents lists first, then opens; deleting after the listing is
	// indistinguishable from the race, so simulate it by removing a
	// middle segment between two reads of the same listing — the
	// simplest deterministic stand-in is removing it before the call.
	if err := os.Remove(filepath.Join(dir, segName(seqs[1]))); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReadEvents(dir, func(*Event) bool { n++; return true }); err != nil {
		t.Fatalf("ReadEvents with a vanished segment: %v", err)
	}
	if n == 0 {
		t.Fatal("no events read")
	}
}

// TestReadEventsToleratesTornActiveFrame pins the half-written-frame
// tolerance: a segment ending in a partial or corrupt frame (the write
// in flight at read time) ends there instead of failing the scan.
func TestReadEventsToleratesTornActiveFrame(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRecorder(RecorderOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := r.Append(sampleEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, segName(seqs[len(seqs)-1]))
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// A frame half-flushed by a concurrent writer: append a full copy
	// of the file's first 40 bytes — a valid-looking length prefix with
	// a body that never finished.
	if err := os.WriteFile(name, append(data, data[:40]...), 0o644); err != nil {
		t.Fatal(err)
	}
	got := 0
	if err := ReadEvents(dir, func(*Event) bool { got++; return true }); err != nil {
		t.Fatalf("ReadEvents with torn tail: %v", err)
	}
	if got != n {
		t.Fatalf("read %d events, want %d (torn frame must end the segment, not eat it)", got, n)
	}
}

func BenchmarkSamplerSample(b *testing.B) {
	s := NewSampler(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample()
	}
}

func BenchmarkRecorderAppend(b *testing.B) {
	r, err := OpenRecorder(RecorderOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	ev := sampleEvent(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Append(ev); err != nil {
			b.Fatal(err)
		}
	}
}
