// Package obs is the observability layer of the control plane:
// structured logging (log/slog), a Prometheus-text metrics registry,
// and hop-by-hop trace spans for the inter-BB signalling chain.
//
// The package is designed so that "disabled" costs nothing on the hot
// path: every metric handle (Counter, Gauge, Histogram) is no-op safe
// on a nil receiver, a nil *Registry hands out nil handles, and NopLogger
// returns a *slog.Logger whose handler discards everything before
// attribute formatting. Callers therefore thread the same code path
// whether observability is on or off.
//
// Metric naming follows Prometheus conventions and is enforced at
// registration time: names must be lowercase_snake
// ([a-z][a-z0-9_]*), counters must end in _total, and registering the
// same name twice panics. The `make metrics-lint` tier and the tests
// in lint_test.go turn those panics into CI failures.
//
// Cardinality rule: metrics are unlabeled aggregates. Anything
// per-RAR, per-user or per-trace belongs in trace spans or log
// records, never in a metric name or label.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Standard attribute keys used across the control plane, so log
// records stay greppable and machine-parseable.
const (
	// AttrDomain is the administrative domain of the emitting broker.
	AttrDomain = "domain"
	// AttrPeer is the authenticated DN of the remote party.
	AttrPeer = "peer"
	// AttrRAR is the resource-allocation-request id.
	AttrRAR = "rar"
	// AttrTrace is the end-to-end trace id.
	AttrTrace = "trace"
)

// nopHandler discards records before any attribute formatting.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that drops everything. It is the default
// wherever no logger is configured, so call sites never nil-check.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// ParseLevel maps a config string to a slog level. Empty means Info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a logger writing to w in the given format ("text"
// or "json"; empty means text) at the given level.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// BrokerLogger derives a per-broker logger carrying the domain as a
// standard attribute on every record.
func BrokerLogger(base *slog.Logger, domain string) *slog.Logger {
	if base == nil {
		return NopLogger()
	}
	return base.With(AttrDomain, domain)
}
