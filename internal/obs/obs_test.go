package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// The disabled path: a nil registry hands out nil handles whose
	// methods must all no-op without panicking.
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if r.Names() != nil || r.Snapshot() != nil {
		t.Fatal("nil registry must report nothing")
	}
	var sb strings.Builder
	r.WriteText(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry must expose nothing")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Fatalf("sum = %v, want 55.55", h.Sum())
	}
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b help").Inc()
	r.Gauge("a", "a help").Set(7)
	r.GaugeFunc("c", "c help", func() float64 { return 2.5 })
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	// Sorted by name, each with HELP and TYPE headers.
	wantOrder := []string{
		"# HELP a a help", "# TYPE a gauge", "a 7",
		"# HELP b_total b help", "# TYPE b_total counter", "b_total 1",
		"# HELP c c help", "# TYPE c gauge", "c 2.5",
	}
	pos := 0
	for _, want := range wantOrder {
		i := strings.Index(out[pos:], want)
		if i < 0 {
			t.Fatalf("exposition missing or misordered %q:\n%s", want, out)
		}
		pos += i + len(want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "events").Add(5)
	r.Gauge("g", "level").Set(1.5)
	r.GaugeFunc("f", "computed", func() float64 { return 9 })
	h := r.Histogram("h_seconds", "latency", nil)
	h.Observe(2)
	snap := r.Snapshot()
	for k, want := range map[string]float64{
		"n_total": 5, "g": 1.5, "f": 9, "h_seconds_count": 1, "h_seconds_sum": 2,
	} {
		if snap[k] != want {
			t.Fatalf("snapshot[%s] = %v, want %v", k, snap[k], want)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"": slog.LevelInfo, "info": slog.LevelInfo, "DEBUG": slog.LevelDebug,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", AttrDomain, "DomainA")
	if !strings.Contains(buf.String(), `"domain":"DomainA"`) {
		t.Fatalf("json log missing domain attr: %s", buf.String())
	}
	if _, err := NewLogger(&buf, slog.LevelInfo, "xml"); err == nil {
		t.Fatal("NewLogger must reject unknown formats")
	}
	// Debug is below the configured level and must be dropped.
	buf.Reset()
	lg.Debug("quiet")
	if buf.Len() != 0 {
		t.Fatal("level filter not applied")
	}
}

func TestBrokerLoggerNilBase(t *testing.T) {
	lg := BrokerLogger(nil, "DomainA")
	if lg == nil {
		t.Fatal("BrokerLogger must never return nil")
	}
	lg.Error("dropped") // must not panic, must not write anywhere
}

func TestRenderTimeline(t *testing.T) {
	// Wire order is destination first; the rendering walks source to
	// destination.
	spans := []Span{
		{Domain: "DomainC", Verdict: VerdictDenied, Reason: "policy denied", TotalNS: 1e6},
		{Domain: "DomainB", Verdict: VerdictRolledBack, TotalNS: 2e6, DownstreamNS: 1.2e6},
		{Domain: "DomainA", Verdict: VerdictRolledBack, TotalNS: 3e6, Retries: 1},
	}
	out := RenderTimeline("t-0011223344556677", spans)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 hops, got:\n%s", out)
	}
	if !strings.Contains(lines[0], "t-0011223344556677") || !strings.Contains(lines[0], "3 hops") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "hop 1 DomainA") || !strings.Contains(lines[1], "retries=1") {
		t.Fatalf("bad hop 1: %s", lines[1])
	}
	if !strings.Contains(lines[3], "hop 3 DomainC") || !strings.Contains(lines[3], `reason="policy denied"`) {
		t.Fatalf("bad hop 3: %s", lines[3])
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 18 || !strings.HasPrefix(a, "t-") {
		t.Fatalf("bad trace id %q", a)
	}
	if a == b {
		t.Fatal("trace ids must be unique")
	}
}
