package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestExpositionGolden pins the exact Prometheus text exposition for
// one of every metric kind — headers, escaping, ordering, float
// formatting, the +Inf bucket, and the quantile summary — against
// testdata/exposition.golden. Run with -update to regenerate after an
// intentional format change.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "requests accepted").Add(42)
	r.Gauge("demo_depth", "queue depth\nsecond line with a \\ backslash").Set(3.5)
	r.GaugeFunc("demo_load", "sampled load", func() float64 { return 0.25 })
	h := r.Histogram("demo_old_seconds", "bucketed latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	q := r.Quantile("demo_lat_seconds", "striped latency", 0, 0)
	for i := 0; i < 1000; i++ {
		// A deterministic spread: quantile lines get distinct values.
		q.Observe(0.001 * math.Pow(1.002, float64(i)))
	}

	var sb strings.Builder
	r.WriteText(&sb)
	got := sb.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from %s (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("esc", "line one\nline two ends with \\")
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	want := `# HELP esc line one\nline two ends with \\`
	if !strings.Contains(out, want) {
		t.Fatalf("HELP not escaped, got:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 { // HELP + TYPE + value lines only
		t.Fatalf("raw newline leaked into exposition:\n%q", out)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nan_seconds", "latency", nil)
	h.Observe(math.NaN())
	h.Observe(1)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1 (NaN must be dropped, not counted)", h.Count())
	}
	if h.Sum() != 1 {
		t.Fatalf("sum = %v, want 1 (one NaN poisons _sum forever)", h.Sum())
	}
}
