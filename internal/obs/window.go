package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// RateWindow turns a monotonically increasing counter level into a
// windowed per-second rate: a ring of time buckets accumulates the
// deltas between successive samples, and Rate sums the buckets that
// are still inside the window. Sampling and reading are driven by the
// caller's clock (scrape time), so the window needs no goroutine.
//
// Not safe for concurrent use on its own; Top serializes access.
type RateWindow struct {
	bucketDur time.Duration
	buckets   []rateBucket
	last      float64
	lastSet   bool
	firstNS   int64 // first sample time, for ramp-up scaling
}

type rateBucket struct {
	slot  int64 // absolute bucket number, nowNS / bucketDur
	delta float64
}

// NewRateWindow builds a window of n buckets of d each (window span
// n*d). n < 1 or d <= 0 select 10 buckets of 1s.
func NewRateWindow(n int, d time.Duration) *RateWindow {
	if n < 1 {
		n = 10
	}
	if d <= 0 {
		d = time.Second
	}
	return &RateWindow{bucketDur: d, buckets: make([]rateBucket, n)}
}

// Sample feeds the counter's current level at time now. Levels that
// go backwards (a restarted broker's fresh registry) reset the base
// without crediting a negative delta.
func (w *RateWindow) Sample(now time.Time, level float64) {
	nowNS := now.UnixNano()
	slot := nowNS / int64(w.bucketDur)
	b := &w.buckets[int(slot%int64(len(w.buckets)))]
	if b.slot != slot {
		b.slot, b.delta = slot, 0
	}
	if w.lastSet {
		if d := level - w.last; d > 0 {
			b.delta += d
		}
	} else {
		w.firstNS = nowNS
	}
	w.last = level
	w.lastSet = true
}

// Rate returns the windowed per-second rate as of now.
func (w *RateWindow) Rate(now time.Time) float64 {
	nowNS := now.UnixNano()
	slot := nowNS / int64(w.bucketDur)
	minSlot := slot - int64(len(w.buckets)) + 1
	var sum float64
	for _, b := range w.buckets {
		if b.slot >= minSlot && b.slot <= slot {
			sum += b.delta
		}
	}
	span := time.Duration(len(w.buckets)) * w.bucketDur
	if w.lastSet {
		if lived := time.Duration(nowNS - w.firstNS); lived > w.bucketDur && lived < span {
			span = lived // ramp-up: don't dilute early rates over unseen history
		}
	}
	if span <= 0 {
		return 0
	}
	return sum / span.Seconds()
}

// TopSnapshot is one broker's live view: windowed rates for every
// counter, current gauge values, and quantile summaries. The bbd
// admin endpoint serves it as JSON at /top and `qosctl top` renders
// it.
type TopSnapshot struct {
	Domain    string                      `json:"domain"`
	TimeNS    int64                       `json:"ts_ns"`
	WindowSec float64                     `json:"window_sec"`
	Rates     map[string]float64          `json:"rates"`  // counter name -> events/sec over the window
	Gauges    map[string]float64          `json:"gauges"` // gauge name -> level
	Quantiles map[string]QuantileSnapshot `json:"quantiles"`
}

// Top aggregates a registry into rolling rate windows. Each Snapshot
// call samples every counter (feeding the windows) and reports the
// current rates — callers poll it; between polls nothing runs.
type Top struct {
	domain  string
	reg     *Registry
	nBuck   int
	buckDur time.Duration

	mu      sync.Mutex
	windows map[string]*RateWindow
}

// NewTop builds a live view over reg with a 10s window (10 buckets of
// 1s).
func NewTop(domain string, reg *Registry) *Top {
	return &Top{domain: domain, reg: reg, nBuck: 10, buckDur: time.Second, windows: make(map[string]*RateWindow)}
}

// Snapshot samples the registry at now and returns the live view.
// Nil-safe: a nil Top (or nil registry) reports an empty snapshot.
func (t *Top) Snapshot(now time.Time) TopSnapshot {
	out := TopSnapshot{TimeNS: now.UnixNano()}
	if t == nil {
		return out
	}
	out.Domain = t.domain
	out.WindowSec = (time.Duration(t.nBuck) * t.buckDur).Seconds()
	out.Rates = make(map[string]float64)
	out.Gauges = make(map[string]float64)
	snap := t.reg.Snapshot()
	t.mu.Lock()
	for name, v := range snap {
		switch {
		case strings.HasSuffix(name, "_total"):
			w := t.windows[name]
			if w == nil {
				w = NewRateWindow(t.nBuck, t.buckDur)
				t.windows[name] = w
			}
			w.Sample(now, v)
			out.Rates[name] = w.Rate(now)
		case strings.HasSuffix(name, "_count") || strings.HasSuffix(name, "_sum"):
			// histogram scalars: quantile snapshots carry these
		default:
			out.Gauges[name] = v
		}
	}
	t.mu.Unlock()
	out.Quantiles = t.reg.Quantiles()
	return out
}

// SortedKeys returns m's keys sorted — rendering helper shared by
// qosctl top and tests.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
