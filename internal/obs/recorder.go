package obs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"e2eqos/internal/journal"
)

// eventOp is the journal record op framing every flight-recorder
// event. Events live in their own segment files, never in a broker's
// write-ahead log, so the op only needs to be distinct within the
// event log itself.
const eventOp = "obs.event"

// Recorder defaults: 4MiB segments, 4 of them — a ~16MiB bound on
// disk no matter how long the broker runs or how hot the sampler is.
const (
	DefSegmentBytes = 4 << 20
	DefSegments     = 4
)

// RecorderOptions configures OpenRecorder.
type RecorderOptions struct {
	// Dir is the event-log directory (created if missing). Required.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this
	// size (DefSegmentBytes when 0).
	SegmentBytes int64
	// Segments is how many rotated segments are kept; older ones are
	// deleted (DefSegments when 0). The on-disk bound is
	// Segments*SegmentBytes plus one in-flight record.
	Segments int
}

// Recorder is the flight recorder's disk half: a bounded ring of
// CRC-framed binary segment files under one directory. Append frames
// the event with the journal codec into a recorder-owned buffer and
// writes it with one syscall — no allocation on the steady path — so
// a 1% sampling rate is invisible next to the crypto on the reserve
// chain. When the active segment fills, the recorder rotates and
// deletes the oldest segment: the newest events always survive, the
// oldest are the ones to go.
//
// A nil *Recorder drops everything, so disabled recording threads the
// same code as disabled metrics.
type Recorder struct {
	dir      string
	segBytes int64
	segments int

	mu   sync.Mutex
	f    *os.File
	seq  uint64 // sequence number of the active segment
	size int64  // bytes written to the active segment
	buf  []byte // reusable frame buffer
}

// segName formats the segment file name for sequence n; the zero-pad
// keeps lexical order equal to numeric order.
func segName(n uint64) string { return fmt.Sprintf("events-%08d.elog", n) }

// segSeq parses a segment file name, reporting ok=false for foreign
// files in the directory.
func segSeq(name string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "events-%d.elog", &n); err != nil {
		return 0, false
	}
	return n, filepath.Ext(name) == ".elog"
}

// listSegments returns the event segments under dir, oldest first.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := segSeq(e.Name()); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// OpenRecorder opens (or creates) the event log under opts.Dir and
// resumes appending to the newest existing segment.
func OpenRecorder(opts RecorderOptions) (*Recorder, error) {
	if opts.Dir == "" {
		return nil, errors.New("obs: recorder needs a directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefSegmentBytes
	}
	if opts.Segments <= 0 {
		opts.Segments = DefSegments
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	r := &Recorder{
		dir:      opts.Dir,
		segBytes: opts.SegmentBytes,
		segments: opts.Segments,
		buf:      make([]byte, 0, 4096),
	}
	seqs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		r.seq = seqs[len(seqs)-1]
	}
	f, err := os.OpenFile(filepath.Join(r.dir, segName(r.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r.f, r.size = f, st.Size()
	return r, nil
}

// Dir returns the event-log directory ("" on nil).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Append frames ev and writes it to the active segment, rotating
// first if the segment is full. Nil recorders drop the event.
func (r *Recorder) Append(ev *Event) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return errors.New("obs: recorder is closed")
	}
	buf, err := journal.AppendRecord(r.buf[:0], eventOp, ev)
	if err != nil {
		return err
	}
	r.buf = buf
	if r.size > 0 && r.size+int64(len(buf)) > r.segBytes {
		if err := r.rotate(); err != nil {
			return err
		}
	}
	n, err := r.f.Write(buf)
	r.size += int64(n)
	return err
}

// rotate (mu held) opens the next segment and prunes the oldest.
func (r *Recorder) rotate() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	r.f = nil
	r.seq++
	f, err := os.OpenFile(filepath.Join(r.dir, segName(r.seq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	r.f, r.size = f, 0
	if r.seq >= uint64(r.segments) {
		// Best-effort prune; a missing file is already pruned.
		os.Remove(filepath.Join(r.dir, segName(r.seq-uint64(r.segments))))
	}
	return nil
}

// Close flushes nothing (writes are unbuffered) and closes the active
// segment. Append after Close errors.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// EventFilter selects events for ReadEvents. Zero fields match
// everything.
type EventFilter struct {
	Verdict     string        // exact span-verdict match: granted, denied, error, rolled_back
	Domain      string        // recording broker's domain
	Kind        string        // reserve or tunnel-batch
	TraceID     string        // exact trace id
	MinDuration time.Duration // keep events at least this slow
}

// Match reports whether e passes the filter.
func (f *EventFilter) Match(e *Event) bool {
	if f == nil {
		return true
	}
	if f.Verdict != "" && e.Verdict != f.Verdict {
		return false
	}
	if f.Domain != "" && e.Domain != f.Domain {
		return false
	}
	if f.Kind != "" && e.Kind != f.Kind {
		return false
	}
	if f.TraceID != "" && e.TraceID != f.TraceID {
		return false
	}
	if f.MinDuration > 0 && e.DurationNS < f.MinDuration.Nanoseconds() {
		return false
	}
	return true
}

// ReadEvents walks the event log under dir oldest-segment-first,
// calling fn for each decoded event until fn returns false.
//
// The reader tolerates racing a live writer, because that is exactly
// when someone reads a flight recorder: a segment that vanishes
// between the listing and the read was pruned by the writer's rotation
// (its events were the oldest — the ring's contract says they go), and
// a frame that fails to decode ends that segment rather than the whole
// read. The latter covers both a torn tail from a crash and the frame
// the writer is mid-write right now; bytes after a bad frame are
// unreachable anyway, since frames are not self-synchronizing.
func ReadEvents(dir string, fn func(*Event) bool) error {
	seqs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // pruned by the writer after the listing
			}
			return err
		}
		for len(data) > 0 {
			rec, n, err := journal.DecodeRecord(data)
			if err != nil {
				break // torn or in-flight frame: the segment ends here
			}
			data = data[n:]
			if rec.Op != eventOp {
				continue
			}
			var ev Event
			if err := rec.Decode(&ev); err != nil {
				return fmt.Errorf("segment %s: %w", segName(seq), err)
			}
			if !fn(&ev) {
				return nil
			}
		}
	}
	return nil
}
