package experiment

import (
	"fmt"
	"time"

	"e2eqos/internal/resv"
	"e2eqos/internal/topology"
	"e2eqos/internal/units"
)

// MultipathConfig parameterises RunMultipathExp.
type MultipathConfig struct {
	// CallTimeout is the per-hop signalling deadline (default 2s).
	CallTimeout time.Duration
}

// multipathCell is one measured scenario of the multipath experiment.
type multipathCell struct {
	outcome  string
	slots    int // granted table entries across the world after settling
	stranded int // slots beyond what the outcome accounts for
	reroutes, skips, splits, splitFails, comps,
	abandoned float64
}

// settleSlots waits for the asynchronous rollback/compensation
// machinery to drain the tables down to the expected slot count, then
// reports what is actually left.
func settleSlots(w *World, want int) int {
	deadline := time.Now().Add(3 * time.Second)
	for {
		got := 0
		for _, broker := range w.BBs {
			for _, r := range broker.Table().All() {
				if r.Status == resv.Granted {
					got++
				}
			}
		}
		if got <= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fanWorld builds a Domain0 -> {branches} -> DomainN fan with the
// multipath knobs armed.
func fanWorld(branches int, cfg MultipathConfig, w WorldConfig) (*World, error) {
	topo, err := topology.Multi(branches, units.Gbps)
	if err != nil {
		return nil, err
	}
	w.Topo = topo
	w.CallTimeout = cfg.CallTimeout
	w.RetryBackoff = 2 * time.Millisecond
	w.EnableObs = true
	return BuildWorld(w)
}

// runMultipathCell runs one scenario: build a world, inject the fault,
// attempt the reservation, read the brokers' own counters back.
func runMultipathCell(cfg MultipathConfig, branches int, wcfg WorldConfig, wantSlots int,
	inject func(*World) error, bw units.Bandwidth, wantGrant bool) (multipathCell, error) {
	var out multipathCell
	w, err := fanWorld(branches, cfg, wcfg)
	if err != nil {
		return out, err
	}
	defer w.Close()
	if inject != nil {
		if err := inject(w); err != nil {
			return out, err
		}
	}
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		return out, err
	}
	defer u.Close()

	res, err := u.ReserveE2E(u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: bw}))
	switch {
	case err != nil:
		out.outcome = "error"
	case res.Granted:
		out.outcome = "granted"
	default:
		out.outcome = "denied"
	}
	if wantGrant && out.outcome != "granted" {
		reason := ""
		if res != nil {
			reason = res.Reason
		}
		return out, fmt.Errorf("expected a grant, got %s (%s / %v)", out.outcome, reason, err)
	}
	if !wantGrant && out.outcome == "granted" {
		return out, fmt.Errorf("expected a denial, got a grant")
	}
	out.slots = settleSlots(w, wantSlots)
	out.stranded = out.slots - wantSlots
	out.reroutes = w.CounterTotal("bb_reroutes_total")
	out.skips = w.CounterTotal("bb_reroute_path_skips_total")
	out.splits = w.CounterTotal("bb_splits_total")
	out.splitFails = w.CounterTotal("bb_split_failures_total")
	out.comps = w.CounterTotal("bb_saga_compensations_total")
	out.abandoned = w.CounterTotal("bb_rollbacks_abandoned_total")
	return out, nil
}

// RunMultipathExp measures the multipath routing layer end to end over
// a fan of edge-disjoint branches: re-route around a dead branch,
// breaker-driven path skipping, and splitting one reservation across
// capacity-constrained branches with atomic rollback on partial
// denial. Every number is re-derived from the brokers' tables and
// metrics, not from the experiment's own bookkeeping.
func RunMultipathExp(cfg MultipathConfig) (*Table, error) {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	t := &Table{
		ID:    "multipath",
		Title: "Multipath domain routing: re-route, breaker skip, and split across disjoint branches",
		Claim: "a reservation must settle on an alternate disjoint path when a branch dies or its breaker opens, and split across branches when no single path carries it — atomically, with zero stranded bandwidth",
		Columns: []string{
			"scenario", "outcome",
			"reroutes", "path skips", "splits", "split aborts",
			"compensations", "stranded",
		},
	}
	type scenario struct {
		name      string
		branches  int
		wcfg      WorldConfig
		wantSlots int
		inject    func(*World) error
		bw        units.Bandwidth
		grant     bool
	}
	constrained := func(alt units.Bandwidth) WorldConfig {
		return WorldConfig{
			Capacity: 10 * units.Mbps,
			Capacities: map[string]units.Bandwidth{
				"Domain1": 5 * units.Mbps,
				"Domain2": alt,
			},
			MaxPaths:   2,
			SplitParts: 2,
		}
	}
	scenarios := []scenario{
		{
			name: "all branches healthy", branches: 3,
			wcfg:      WorldConfig{MaxPaths: 3},
			wantSlots: 3, // ingress + primary branch + destination
			bw:        5 * units.Mbps, grant: true,
		},
		{
			name: "primary branch dead mid-signalling", branches: 3,
			wcfg:      WorldConfig{MaxPaths: 3},
			wantSlots: 3,
			inject:    func(w *World) error { return w.StopDomain("Domain1") },
			bw:        5 * units.Mbps, grant: true,
		},
		{
			name: "primary breaker forced open", branches: 3,
			wcfg:      WorldConfig{MaxPaths: 3},
			wantSlots: 3,
			inject:    func(w *World) error { return w.BBs["Domain0"].TripBreaker("Domain1") },
			bw:        5 * units.Mbps, grant: true,
		},
		{
			name: "split across constrained branches", branches: 2,
			wcfg:      constrained(5 * units.Mbps),
			wantSlots: 5, // ingress + one per branch + two at the destination
			bw:        10 * units.Mbps, grant: true,
		},
		{
			name: "split aborts on partial denial", branches: 2,
			wcfg:      constrained(3 * units.Mbps),
			wantSlots: 0, // atomic rollback leaves nothing booked
			bw:        10 * units.Mbps, grant: false,
		},
	}
	for _, s := range scenarios {
		c, err := runMultipathCell(cfg, s.branches, s.wcfg, s.wantSlots, s.inject, s.bw, s.grant)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		stranded := fmt.Sprintf("%d", c.stranded)
		if c.stranded <= 0 && c.abandoned == 0 {
			stranded = "0 (clean)"
		}
		t.AddRow(
			s.name, c.outcome,
			fmt.Sprintf("%.0f", c.reroutes),
			fmt.Sprintf("%.0f", c.skips),
			fmt.Sprintf("%.0f", c.splits),
			fmt.Sprintf("%.0f", c.splitFails),
			fmt.Sprintf("%.0f", c.comps),
			stranded,
		)
	}
	t.Notes = append(t.Notes,
		"the fan topology gives every (source, destination) pair edge-disjoint branches; the ingress tries them in cost order and pins the chosen path onto the forwarded RAR",
		"a dead branch surfaces as a transport failure mid-signalling and re-routes; an open breaker skips the path before any attempt",
		"the split scenarios request 10 Mb/s over 5 Mb/s branches: no single path carries it, so the ingress places per-path children whose shares sum exactly to the signed bandwidth",
		"split aborts run through the saga layer: the granted sibling is withdrawn and the ingress admission released by journaled compensations — stranded counts any granted table entry the outcome does not account for",
	)
	return t, nil
}
