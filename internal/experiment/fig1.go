package experiment

import (
	"strings"
	"time"

	"e2eqos/internal/policy"
	"e2eqos/internal/units"
)

// RunFigure1 reproduces Figure 1: different domains enforce different
// reservation policies over the same principals. Domain A admits
// Alice and rejects Bob by name; domain B admits anyone a third party
// accredits as a physicist.
func RunFigure1() *Table {
	t := &Table{
		ID:    "fig1",
		Title: "Policy heterogeneity across domains (Figure 1)",
		Claim: `"Alice can use the network, Bob cannot" in domain A; "only accredited physicists can use the network" in domain B`,
		Columns: []string{
			"principal", "attributes", "domain A", "domain B",
		},
	}
	at := time.Date(2001, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		user   policy.Request
		attrso string
	}{
		{"Alice", policy.Request{User: policy.AliceDN, Time: at}, "-"},
		{"Bob", policy.Request{User: policy.BobDN, Time: at}, "-"},
		{"Charlie (physicist)", policy.Request{User: policy.CharlieDN, Groups: []string{"physicist"}, Time: at}, "group=physicist"},
		{"Alice (physicist)", policy.Request{User: policy.AliceDN, Groups: []string{"physicist"}, Time: at}, "group=physicist"},
		{"David", policy.Request{User: policy.DavidDN, Time: at}, "-"},
	}
	for _, c := range cases {
		req := c.user
		req.Bandwidth = 10 * units.Mbps
		req.Available = 100 * units.Mbps
		a := policy.Figure1PolicyA.Evaluate(&req)
		b := policy.Figure1PolicyB.Evaluate(&req)
		t.AddRow(c.name, c.attrso, a.Effect.String(), b.Effect.String())
	}
	t.Notes = append(t.Notes,
		"the same request meets opposite decisions in different domains, motivating per-domain policy evaluation during signalling")
	return t
}

// RunFigure6 reproduces Figure 6's three policy files end to end: each
// row is one request variant propagated hop-by-hop through DomainA ->
// DomainB -> DomainC with the exact policies from the figure.
func RunFigure6() (*Table, error) {
	t := &Table{
		ID:    "fig6",
		Title: "Per-BB policy enforcement along the path (Figure 6)",
		Claim: "each BB evaluates each request with respect to its local policy file; all three must grant",
		Columns: []string{
			"requestor", "bw", "time", "capability", "cpu-resv", "decision", "denied-by",
		},
	}
	w, err := BuildWorld(WorldConfig{
		NumDomains: 3,
		Labels:     []string{"DomainA", "DomainB", "DomainC"},
		Capacity:   100 * units.Mbps,
		Policies: map[string]*policy.Policy{
			"DomainA": policy.Figure6PolicyA,
			"DomainB": policy.Figure6PolicyB,
			"DomainC": policy.Figure6PolicyC,
		},
		TrustedGroups: []string{"ATLAS experiment"},
		CPUs:          map[string]int{"DomainC": 16},
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	alice, err := w.NewUser("Alice", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		return nil, err
	}
	defer alice.Close()
	bob, err := w.NewUser("Bob", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		return nil, err
	}
	defer bob.Close()

	now := w.clock()
	day := time.Date(now.Year(), now.Month(), now.Day(), 12, 0, 0, 0, time.UTC).AddDate(0, 0, 1)
	night := time.Date(now.Year(), now.Month(), now.Day(), 22, 0, 0, 0, time.UTC).AddDate(0, 0, 1)

	type variant struct {
		label   string
		user    *User
		bw      units.Bandwidth
		start   time.Time
		withCPU bool
	}
	variants := []variant{
		{"Alice", alice, 10 * units.Mbps, day, true},
		{"Alice", alice, 10 * units.Mbps, day, false},
		{"Alice", alice, 4 * units.Mbps, day, false},
		{"Alice", alice, 20 * units.Mbps, day, true},   // over A's business-hours cap
		{"Alice", alice, 20 * units.Mbps, night, true}, // night: A allows, B caps at 10
		{"Bob", bob, 10 * units.Mbps, day, true},
	}
	for _, v := range variants {
		win := units.NewWindow(v.start, time.Hour)
		linked := map[string]string(nil)
		cpuCell := "no"
		if v.withCPU {
			h, err := w.CPU["DomainC"].Reserve(v.user.DN(), 1, win)
			if err != nil {
				return nil, err
			}
			linked = map[string]string{"cpu": h}
			cpuCell = "yes"
		}
		spec := v.user.NewSpec(SpecOptions{
			DestDomain: "DomainC",
			Bandwidth:  v.bw,
			Window:     win,
			Linked:     linked,
		})
		res, err := v.user.ReserveE2E(spec)
		if err != nil {
			return nil, err
		}
		decision, deniedBy := "GRANT", "-"
		if !res.Granted {
			decision = "DENY"
			deniedBy = denierOf(res.Reason)
		} else {
			// Clean up so variants do not interfere.
			_ = v.user.Cancel("DomainA", spec.RARID)
		}
		timeCell := "12:00"
		if v.start.Hour() == 22 {
			timeCell = "22:00"
		}
		t.AddRow(v.label, v.bw.String(), timeCell, "ESnet", cpuCell, decision, deniedBy)
	}
	return t, nil
}

// denierOf extracts the domain named in a denial reason.
func denierOf(reason string) string {
	for _, dom := range []string{"DomainA", "DomainB", "DomainC"} {
		if strings.Contains(reason, dom) {
			return dom
		}
	}
	return "?"
}
