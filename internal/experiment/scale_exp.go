package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"e2eqos/internal/obs"
	"e2eqos/internal/signalling"
	"e2eqos/internal/units"
)

// ScaleLoadConfig parameterises the fleet-telemetry load experiment.
type ScaleLoadConfig struct {
	// Users is the number of concurrent requesters, each with its own
	// identity and signalling connection.
	Users int
	// Reserves is how many end-to-end reservations each user places.
	Reserves int
	// BatchOps is how many tunnel sub-flows are driven through one
	// aggregate tunnel afterwards (batched 64 at a time).
	BatchOps int
	// Domains is the reservation path length.
	Domains int
	// Latency is the modelled one-way signalling latency per hop.
	Latency time.Duration
	// SampleRate is each broker's flight-recorder ingress sampling
	// probability; with EventsDir empty no recorder runs at all.
	SampleRate float64
	// EventsDir, when set, records sampled events under
	// EventsDir/<domain> during the run.
	EventsDir string
}

// validate rejects configurations that used to be absorbed silently:
// a negative sampling probability or latency is always a caller bug,
// not a request for the default.
func (c ScaleLoadConfig) validate() error {
	if c.SampleRate < 0 {
		return fmt.Errorf("scale: SampleRate %v is negative; use 0 to disable sampling", c.SampleRate)
	}
	if c.SampleRate > 1 {
		return fmt.Errorf("scale: SampleRate %v exceeds 1 (a probability)", c.SampleRate)
	}
	if c.Latency < 0 {
		return fmt.Errorf("scale: Latency %v is negative; use 0 for no modelled latency", c.Latency)
	}
	return nil
}

// totalOps returns Users×Reserves + BatchOps + 1 — the 1 Mb/s
// reservation count the capacity budget is sized from — or an error
// when the product overflows the int64 bandwidth math. Overflow used
// to wrap silently and build a world with a nonsense (possibly
// negative) capacity; now it is the caller's error.
func (c ScaleLoadConfig) totalOps() (int64, error) {
	ops := int64(c.Users) * int64(c.Reserves)
	if c.Users != 0 && ops/int64(c.Users) != int64(c.Reserves) {
		return 0, fmt.Errorf("scale: Users (%d) × Reserves (%d) overflows the capacity budget", c.Users, c.Reserves)
	}
	total := ops + int64(c.BatchOps) + 1
	if total < ops {
		return 0, fmt.Errorf("scale: Users×Reserves + BatchOps (%d + %d) overflows the capacity budget", ops, c.BatchOps)
	}
	// The world is built with twice the budget in bandwidth units.
	if total > int64(maxBandwidth/(2*units.Mbps)) {
		return 0, fmt.Errorf("scale: %d reservations × 1 Mb/s exceeds the representable capacity budget", total)
	}
	return total, nil
}

// maxBandwidth is the largest representable bandwidth.
const maxBandwidth = units.Bandwidth(1<<63 - 1)

// RunScaleLoad drives mixed reserve and sub-flow load through an
// instrumented world and reports, per broker-side stage, the latency
// quantiles the striped histograms measured while the load ran. This
// is the paper's millions-of-users argument stated as percentiles:
// the table shows what the p999 requester experiences at each stage,
// not just the mean the throughput numbers imply.
func RunScaleLoad(cfg ScaleLoadConfig) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Users <= 0 {
		cfg.Users = 8
	}
	if cfg.Reserves <= 0 {
		cfg.Reserves = 64
	}
	if cfg.BatchOps <= 0 {
		cfg.BatchOps = 2048
	}
	if cfg.Domains < 2 {
		cfg.Domains = 5
	}
	if _, err := cfg.totalOps(); err != nil {
		return nil, err
	}
	reserveNeed := units.Bandwidth(cfg.Users) * units.Bandwidth(cfg.Reserves) * units.Mbps
	tunnelNeed := units.Bandwidth(cfg.BatchOps+1) * units.Mbps
	w, err := BuildWorld(WorldConfig{
		NumDomains:  cfg.Domains,
		Capacity:    (reserveNeed + tunnelNeed) * 2,
		Latency:     cfg.Latency,
		CallTimeout: 30 * time.Second,
		EnableObs:   true,
		SampleRate:  cfg.SampleRate,
		EventsDir:   cfg.EventsDir,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	// Phase 1: concurrent end-to-end reserves, one identity per worker.
	var wg sync.WaitGroup
	var failed atomic.Int64
	var firstErr atomic.Value
	users := make([]*User, cfg.Users)
	for i := range users {
		if users[i], err = w.NewUser(fmt.Sprintf("user%d", i), "", nil, nil); err != nil {
			return nil, err
		}
		defer users[i].Close()
	}
	start := time.Now()
	for _, u := range users {
		wg.Add(1)
		go func(u *User) {
			defer wg.Done()
			for r := 0; r < cfg.Reserves; r++ {
				spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
				res, err := u.ReserveE2E(spec)
				if err != nil {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if !res.Granted {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("reserve denied: %s", res.Reason))
					return
				}
			}
		}(u)
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		return nil, fmt.Errorf("%d reserve workers failed, first: %v", n, firstErr.Load())
	}

	// Phase 2: one aggregate tunnel, then the sub-flow hot path.
	alice := users[0]
	tunnelSpec := alice.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: tunnelNeed, Tunnel: true})
	if res, err := alice.ReserveE2E(tunnelSpec); err != nil || !res.Granted {
		return nil, fmt.Errorf("tunnel establishment: %v %+v", err, res)
	}
	src := w.BBs[w.SourceDomain()]
	for done := 0; done < cfg.BatchOps; {
		n := 64
		if rest := cfg.BatchOps - done; n > rest {
			n = rest
		}
		ops := make([]signalling.TunnelOp, n)
		for i := range ops {
			ops[i] = signalling.TunnelOp{
				Action:    signalling.OpAlloc,
				SubFlowID: fmt.Sprintf("s%d", done+i),
				Bandwidth: int64(units.Mbps),
			}
		}
		results, err := src.TunnelBatch(tunnelSpec.RARID, ops, alice.DN())
		if err != nil {
			return nil, fmt.Errorf("tunnel batch at %d: %w", done, err)
		}
		for _, r := range results {
			if !r.Granted {
				return nil, fmt.Errorf("op %s denied: %s", r.SubFlowID, r.Reason)
			}
		}
		done += n
	}
	took := time.Since(start)

	t := &Table{
		ID: "scale",
		Title: fmt.Sprintf("Per-stage latency quantiles under mixed load (%d users x %d reserves + %d sub-flows, %d domains, %v hop latency)",
			cfg.Users, cfg.Reserves, cfg.BatchOps, cfg.Domains, cfg.Latency),
		Claim:   "striped quantile histograms give per-stage tail latency at fleet load for the cost of two atomic adds per observation",
		Columns: []string{"domain", "stage", "n", "p50", "p99", "p999"},
	}
	fmtQ := func(sec float64) string {
		return time.Duration(sec * float64(time.Second)).Round(100 * time.Nanosecond).String()
	}
	for _, domain := range []string{w.SourceDomain(), w.DestDomain()} {
		quantiles := w.Metrics[domain].Quantiles()
		for _, name := range obs.SortedKeys(quantiles) {
			q := quantiles[name]
			if q.Count == 0 {
				continue
			}
			t.AddRow(domain, name,
				fmt.Sprintf("%d", q.Count),
				fmtQ(q.P50), fmtQ(q.P99), fmtQ(q.P999))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("whole run took %v; quantiles are per-broker, merged across %d histogram stripes at read time",
			took.Round(time.Millisecond), len(w.Domains)),
	)
	if cfg.EventsDir != "" {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"flight recorder at %.0f%% sampling captured %.0f events (%.0f forced) across the fleet",
			cfg.SampleRate*100, w.CounterTotal("bb_events_recorded_total"), w.CounterTotal("bb_events_forced_total")))
	}
	return t, nil
}
