package experiment

import (
	"fmt"
	"time"

	"e2eqos/internal/gara"
	"e2eqos/internal/units"
)

// SignallingSample is one measured reservation run.
type SignallingSample struct {
	Strategy gara.Strategy
	Domains  int
	Latency  time.Duration // end-to-end reservation wall time
	Messages int64
	Dials    int64
	Bytes    int64
	Granted  bool
}

// MeasureSignalling runs one reservation with the given strategy over
// a fresh linear world of n domains with the given one-way hop
// latency, and reports wall time plus message accounting.
func MeasureSignalling(n int, hopLatency time.Duration, strategy gara.Strategy, trials int) (SignallingSample, error) {
	if trials < 1 {
		trials = 1
	}
	out := SignallingSample{Strategy: strategy, Domains: n}
	w, err := BuildWorld(WorldConfig{
		NumDomains:            n,
		Capacity:              units.Gbps,
		Latency:               hopLatency,
		TrustUserCAEverywhere: strategy != gara.HopByHop,
	})
	if err != nil {
		return out, err
	}
	defer w.Close()
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		return out, err
	}
	defer u.Close()
	api := gara.NewNetworkAPI(w.Topo)

	// Warm the connections so we measure signalling, not dialing, then
	// reset the counters and measure fresh flows.
	warm := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	if res, err := api.Reserve(u, warm, strategy); err != nil || !res.Granted {
		return out, fmt.Errorf("warmup failed: %v %+v", err, res)
	}
	w.Net.ResetCounters()

	var total time.Duration
	for i := 0; i < trials; i++ {
		spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
		start := time.Now()
		res, err := api.Reserve(u, spec, strategy)
		total += time.Since(start)
		if err != nil {
			return out, err
		}
		out.Granted = res.Granted
		if !res.Granted {
			return out, fmt.Errorf("trial %d denied: %s", i, res.Reason)
		}
	}
	out.Latency = total / time.Duration(trials)
	out.Messages = w.Net.Messages() / int64(trials)
	out.Dials = w.Net.Dials()
	out.Bytes = w.Net.Bytes() / int64(trials)
	return out, nil
}

// RunSignallingComparison reproduces Figures 3 and 5 as a measurement:
// reservation latency and message count for the three strategies as
// the path grows. The paper's prose claim — "source-domain-based
// signalling may be faster than hop-by-hop based signalling, because
// the reservations for each domain can be made in parallel" — shows up
// as the Concurrent column staying flat while HopByHop grows linearly.
func RunSignallingComparison(domainCounts []int, hopLatency time.Duration, trials int) (*Table, error) {
	if len(domainCounts) == 0 {
		domainCounts = []int{2, 3, 4, 6, 8}
	}
	t := &Table{
		ID:    "fig3+fig5",
		Title: fmt.Sprintf("Signalling strategies vs path length (one-way hop latency %v)", hopLatency),
		Claim: "source-domain signalling may be faster (parallel per-domain reservations); hop-by-hop needs only neighbour trust",
		Columns: []string{
			"domains",
			"seq latency", "seq msgs",
			"conc latency", "conc msgs",
			"hop-by-hop latency", "hop-by-hop msgs",
		},
	}
	for _, n := range domainCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, strat := range []gara.Strategy{gara.Sequential, gara.Concurrent, gara.HopByHop} {
			s, err := MeasureSignalling(n, hopLatency, strat, trials)
			if err != nil {
				return nil, fmt.Errorf("n=%d %v: %w", n, strat, err)
			}
			row = append(row, fmt.Sprintf("%.1fms", float64(s.Latency.Microseconds())/1000), fmt.Sprintf("%d", s.Messages))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"source-domain strategies require every broker to authenticate the user (trust scaling below); hop-by-hop only contacts the first broker",
		"message counts are per reservation over warmed connections",
	)
	return t, nil
}

// RunTrustScaling quantifies the trust-relationship argument of §3:
// the number of (user, broker) authentication relationships each
// approach needs, as users and domains grow.
func RunTrustScaling(userCounts, domainCounts []int) *Table {
	if len(userCounts) == 0 {
		userCounts = []int{10, 100, 1000}
	}
	if len(domainCounts) == 0 {
		domainCounts = []int{3, 5, 8}
	}
	t := &Table{
		ID:    "trust-scaling",
		Title: "Authentication relationships required per approach",
		Claim: `"it is difficult to scale since each BB must know about (and be able to authenticate) Alice"`,
		Columns: []string{
			"users", "domains",
			"source-domain (user,BB) pairs",
			"coordinator (RC,BB) pairs",
			"hop-by-hop pairs",
		},
	}
	for _, u := range userCounts {
		for _, d := range domainCounts {
			sourcePairs := u * d    // every user known to every broker
			rcPairs := d + u        // RC known to every broker; users known to the RC
			hopPairs := (d - 1) + u // SLA peerings + users known to their home broker only
			t.AddRow(
				fmt.Sprintf("%d", u), fmt.Sprintf("%d", d),
				fmt.Sprintf("%d", sourcePairs),
				fmt.Sprintf("%d", rcPairs),
				fmt.Sprintf("%d", hopPairs),
			)
		}
	}
	t.Notes = append(t.Notes,
		"hop-by-hop pairs = one SLA peering per adjacent domain pair plus each user enrolled at its home domain only",
	)
	return t
}

// RunCoReservation reproduces the Figure 5 coupling of a network
// reservation with a CPU reservation, demonstrating all-or-nothing
// semantics.
func RunCoReservation() (*Table, error) {
	t := &Table{
		ID:    "fig5",
		Title: "Co-reservation of network + CPU via the GARA API (Figure 5)",
		Claim: "the GARA API couples a multi-domain network reservation with a CPU reservation in domain C",
		Columns: []string{
			"scenario", "cpu pool", "network", "outcome", "cpu free after",
		},
	}
	for _, scenario := range []struct {
		label   string
		cpus    int
		request int
		netBW   units.Bandwidth
	}{
		{"both fit", 8, 4, 10 * units.Mbps},
		{"cpu exhausted", 2, 4, 10 * units.Mbps},
		{"network exhausted", 8, 4, 10 * units.Gbps},
	} {
		w, err := BuildWorld(WorldConfig{
			NumDomains: 3,
			Capacity:   100 * units.Mbps,
			CPUs:       map[string]int{"Domain2": scenario.cpus},
		})
		if err != nil {
			return nil, err
		}
		u, err := w.NewUser("alice", "", nil, nil)
		if err != nil {
			w.Close()
			return nil, err
		}
		api := gara.NewNetworkAPI(w.Topo)
		co := &gara.CoReserver{API: api, CPU: w.CPU["Domain2"]}
		spec := u.NewSpec(SpecOptions{DestDomain: "Domain2", Bandwidth: scenario.netBW})
		_, res, err := co.Reserve(u, gara.CoRequest{Spec: spec, CPUs: scenario.request}, gara.HopByHop)
		outcome := "GRANTED"
		switch {
		case err != nil:
			outcome = "DENIED (cpu)"
		case !res.Granted:
			outcome = "DENIED (network)"
		}
		free := w.CPU["Domain2"].Available(spec.Window)
		t.AddRow(scenario.label,
			fmt.Sprintf("%d", scenario.cpus),
			scenario.netBW.String(),
			outcome,
			fmt.Sprintf("%d", free),
		)
		u.Close()
		w.Close()
	}
	t.Notes = append(t.Notes, "on any failure the CPU co-reservation is rolled back (all-or-nothing)")
	return t, nil
}
