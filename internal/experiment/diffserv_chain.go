package experiment

import (
	"fmt"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/netsim"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

// ChainQoSResult is one measurement of a premium flow crossing a chain
// of congested DiffServ domains.
type ChainQoSResult struct {
	Domains        int
	PremiumGoodput float64
	PremiumLatency time.Duration
	CrossGoodput   float64 // one representative best-effort competitor
}

// MeasureDiffServChain builds N domains in series. Each inter-domain
// link is congested: a fresh best-effort cross flow of crossRate
// enters at every hop, competing with Alice's premium flow (rate
// reserved end-to-end and policed per aggregate at each ingress).
func MeasureDiffServChain(domains int, premium, crossRate, linkRate units.Bandwidth, duration time.Duration) (ChainQoSResult, error) {
	out := ChainQoSResult{Domains: domains}
	if domains < 1 {
		return out, fmt.Errorf("experiment: need at least one domain")
	}
	if duration <= 0 {
		duration = time.Second
	}
	sim := dsim.New()
	sink := netsim.NewSink(sim)

	// Build the chain back to front: ... -> policer_i -> link_i -> ...
	var head netsim.Receiver = sink
	profile := sla.TrafficProfile{Rate: premium, BucketBytes: 30_000}
	var links []*netsim.Link
	for i := domains - 1; i >= 0; i-- {
		link := netsim.NewLink(sim, linkRate, time.Millisecond, 0, head)
		links = append(links, link)
		pol := netsim.NewPolicer(sim, profile, sla.Drop, link)
		head = pol

		// A best-effort cross flow enters at this hop and shares the
		// link with everything coming from upstream.
		cross := netsim.NewSource(sim, netsim.FlowID(fmt.Sprintf("cross-%d", i)), crossRate, 1250, netsim.BestEffort, link)
		cross.Jitter = 0.2
		if err := cross.Install(0, duration); err != nil {
			return out, err
		}
	}

	marker := netsim.NewEdgeMarker(sim, head)
	marker.InstallReservation("premium", profile)
	src := netsim.NewSource(sim, "premium", premium, 1250, netsim.BestEffort, marker)
	src.Jitter = 0.1
	if err := src.Install(0, duration); err != nil {
		return out, err
	}
	sim.Run(duration + 500*time.Millisecond)

	if st := sink.Stats("premium"); st != nil {
		out.PremiumGoodput = st.Goodput(0, duration)
		out.PremiumLatency = st.MeanLatency()
	}
	// The cross flow entering at the last hop shares only the final
	// link; the first-hop one crosses everything. Report the first-hop
	// competitor (worst case).
	if st := sink.Stats(netsim.FlowID(fmt.Sprintf("cross-%d", 0))); st != nil {
		out.CrossGoodput = st.Goodput(0, duration)
	}
	return out, nil
}

// RunDiffServChain reproduces the §2 background claim the whole
// architecture rests on: "By carefully limiting the traffic admitted
// to the traffic aggregate, QoS guarantees for bandwidth can be
// provided" — and they must hold end-to-end across a chain of
// independently policed domains, not just one hop.
func RunDiffServChain(maxDomains int, duration time.Duration) (*Table, error) {
	if maxDomains < 1 {
		maxDomains = 5
	}
	const (
		premium  = 10 * units.Mbps
		cross    = 40 * units.Mbps
		linkRate = 30 * units.Mbps
	)
	t := &Table{
		ID:    "diffserv-chain",
		Title: "Premium guarantee across a chain of congested domains (§2)",
		Claim: "admission-limited premium aggregates keep their bandwidth (and low delay) end-to-end while best effort collapses",
		Columns: []string{
			"domains", "premium goodput", "premium mean latency", "first-hop best-effort goodput",
		},
	}
	for n := 1; n <= maxDomains; n++ {
		r, err := MeasureDiffServChain(n, premium, cross, linkRate, duration)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f Mb/s", r.PremiumGoodput/1e6),
			fmt.Sprintf("%.2fms", float64(r.PremiumLatency.Microseconds())/1000),
			fmt.Sprintf("%.2f Mb/s", r.CrossGoodput/1e6),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("every hop: %v link, %v premium reservation, %v fresh best-effort cross traffic entering", linkRate, premium, cross),
	)
	return t, nil
}
