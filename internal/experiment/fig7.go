package experiment

import (
	"fmt"
	"time"

	"e2eqos/internal/cas"
	"e2eqos/internal/core"
	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
	"e2eqos/internal/units"
)

// ChainSample captures one hop's view of a propagating RAR.
type ChainSample struct {
	Hop int
	// BrokerDomain names the observing broker.
	BrokerDomain string
	// CapabilityCerts is the capability-list length at this hop
	// (Figure 7: 2 at BB-A, 3 at BB-B, 4 at BB-C).
	CapabilityCerts int
	// WireBytes is the encoded RAR size arriving at this hop.
	WireBytes int
	// VerifyTime is the time this hop spent verifying the full chain.
	VerifyTime time.Duration
	// ExtendTime is the time spent re-signing and delegating onward.
	ExtendTime time.Duration
}

// ProtocolWorld is a pure-protocol fixture (no transport): a user plus
// a chain of core brokers with SLA-pinned neighbours, used by the
// Figure 7 / §6.4 measurements and the protocol benchmarks.
type ProtocolWorld struct {
	User    *core.UserAgent
	Brokers []*core.Broker
	Certs   []*pki.Certificate
	CAS     *cas.Server
}

// BuildProtocolWorld creates a user in the first of n domains, each
// domain with its own CA, neighbours pinned pairwise.
func BuildProtocolWorld(n int, withCapability bool) (*ProtocolWorld, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiment: need at least one broker")
	}
	w := &ProtocolWorld{}
	casKey, err := identity.GenerateKeyPair(identity.NewDN("ESnet", "", "CAS"))
	if err != nil {
		return nil, err
	}
	w.CAS = cas.NewServer(casKey, "ESnet", 12*time.Hour)

	keys := make([]*identity.KeyPair, n)
	for i := 0; i < n; i++ {
		dom := fmt.Sprintf("Domain%d", i)
		ca, err := pki.NewCA(identity.NewDN("Grid", dom, "CA"))
		if err != nil {
			return nil, err
		}
		key, err := identity.GenerateKeyPair(identity.NewDN("Grid", dom, "bb"))
		if err != nil {
			return nil, err
		}
		cert, err := ca.IssueIdentity(key.DN, key.Public(), 0, "bb")
		if err != nil {
			return nil, err
		}
		keys[i] = key
		w.Certs = append(w.Certs, cert)
		trust := pki.NewTrustStore(n + 2)
		broker, err := core.NewBroker(key, cert, trust)
		if err != nil {
			return nil, err
		}
		w.Brokers = append(w.Brokers, broker)
		if i == 0 {
			if err := trust.AddRoot(&pki.Certificate{Cert: ca.Certificate(), DER: ca.CertificateDER()}); err != nil {
				return nil, err
			}
			uk, err := identity.GenerateKeyPair(identity.NewDN("Grid", dom, "Alice"))
			if err != nil {
				return nil, err
			}
			ucert, err := ca.IssueIdentity(uk.DN, uk.Public(), 0)
			if err != nil {
				return nil, err
			}
			var cred *cas.Credential
			if withCapability {
				w.CAS.Grant(uk.DN, "network-reservation")
				cred, err = w.CAS.Login(uk.DN)
				if err != nil {
					return nil, err
				}
			}
			w.User, err = core.NewUserAgent(uk, ucert, cred)
			if err != nil {
				return nil, err
			}
		}
	}
	for i := range w.Brokers {
		if i > 0 {
			w.Brokers[i].Trust.PinPeer(keys[i-1].DN, keys[i-1].Public())
		}
		if i+1 < n {
			w.Brokers[i].Trust.PinPeer(keys[i+1].DN, keys[i+1].Public())
		}
	}
	return w, nil
}

// NewSpec builds a protocol-level spec from the user's domain to the
// last broker's domain.
func (w *ProtocolWorld) NewSpec() *core.Spec {
	return &core.Spec{
		RARID:        core.NewRARID(),
		User:         w.User.Key.DN,
		SrcHost:      "host0.example",
		DstHost:      fmt.Sprintf("host%d.example", len(w.Brokers)-1),
		SourceDomain: "Domain0",
		DestDomain:   fmt.Sprintf("Domain%d", len(w.Brokers)-1),
		Bandwidth:    10 * units.Mbps,
		Window:       units.NewWindow(time.Now().Add(time.Minute), time.Hour),
	}
}

// Propagate walks a RAR through every broker, collecting per-hop
// samples. upstreamCert/peer bookkeeping mirrors the live signalling
// path exactly.
func (w *ProtocolWorld) Propagate(spec *core.Spec) ([]ChainSample, error) {
	env, err := w.User.BuildRAR(spec, w.Certs[0])
	if err != nil {
		return nil, err
	}
	samples := make([]ChainSample, 0, len(w.Brokers))
	peerDN := w.User.Key.DN
	peerCert := w.User.Cert.DER
	now := time.Now()
	for i, broker := range w.Brokers {
		wire := env.WireSize()
		start := time.Now()
		verified, err := broker.Verify(env, peerDN, peerCert, now)
		verifyTime := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("hop %d: %w", i, err)
		}
		sample := ChainSample{
			Hop:             i,
			BrokerDomain:    fmt.Sprintf("Domain%d", i),
			CapabilityCerts: len(verified.Capabilities),
			WireBytes:       wire,
			VerifyTime:      verifyTime,
		}
		if i+1 < len(w.Brokers) {
			start = time.Now()
			next, err := broker.Extend(env, peerCert, verified, w.Certs[i+1], map[string]string{
				fmt.Sprintf("hop%d", i): "ok",
			})
			sample.ExtendTime = time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("hop %d extend: %w", i, err)
			}
			peerDN = broker.DN()
			peerCert = w.Certs[i].DER
			env = next
		}
		samples = append(samples, sample)
	}
	return samples, nil
}

// RunFigure7 reproduces Figure 7: the capability-certificate list each
// broker receives, plus the message-size and verification-cost growth
// the nested-signature construction implies (§6.4).
func RunFigure7(hops int) (*Table, error) {
	if hops < 2 {
		hops = 3
	}
	w, err := BuildProtocolWorld(hops, true)
	if err != nil {
		return nil, err
	}
	samples, err := w.Propagate(w.NewSpec())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig7",
		Title: fmt.Sprintf("Capability delegation chain across %d brokers (Figure 7)", hops),
		Claim: "BB-A receives 2 capability certificates, BB-B 3, BB-C 4; each hop delegates with its own key",
		Columns: []string{
			"hop", "broker", "capability certs", "RAR wire bytes", "verify", "extend",
		},
	}
	for _, s := range samples {
		t.AddRow(
			fmt.Sprintf("%d", s.Hop),
			s.BrokerDomain,
			fmt.Sprintf("%d", s.CapabilityCerts),
			fmt.Sprintf("%d", s.WireBytes),
			fmt.Sprintf("%.2fms", float64(s.VerifyTime.Microseconds())/1000),
			fmt.Sprintf("%.2fms", float64(s.ExtendTime.Microseconds())/1000),
		)
	}
	t.Notes = append(t.Notes,
		"capability certs at hop i = i + 2 (CAS-issued + user delegation + one per prior broker), matching Figure 7",
		"wire size grows linearly with hops: each layer adds one signature, one certificate and the delegation",
	)
	return t, nil
}

// RunTrustChain reproduces the §6.4 transitive-trust measurements: the
// cost of nested-envelope verification as the path grows, and the
// effect of the introducer-depth policy.
func RunTrustChain(maxHops int) (*Table, error) {
	if maxHops < 3 {
		maxHops = 8
	}
	t := &Table{
		ID:    "trust",
		Title: "Transitive trust: verification cost and depth policy (§6.4)",
		Claim: "the destination can verify the full chain without a direct trust relationship with the source; local policy may limit the acceptable chain depth",
		Columns: []string{
			"path hops", "RAR wire bytes at dest", "dest verify time", "accepted at depth limit N-1", "accepted at depth limit N",
		},
	}
	for hops := 2; hops <= maxHops; hops++ {
		w, err := BuildProtocolWorld(hops, false)
		if err != nil {
			return nil, err
		}
		spec := w.NewSpec()
		samples, err := w.Propagate(spec)
		if err != nil {
			return nil, err
		}
		last := samples[len(samples)-1]

		// Depth policy: the destination's introducer depth is the
		// number of layers it accepts via introduction (= hops-1 for
		// the user+brokers chain arriving at the destination).
		need := hops - 1 // layers below the channel peer
		accepted := func(limit int) string {
			wv, err := BuildProtocolWorld(hops, false)
			if err != nil {
				return "err"
			}
			wv.Brokers[hops-1].Trust.SetMaxIntroducerDepth(limit)
			if _, err := wv.Propagate(wv.NewSpec()); err != nil {
				return "DENY"
			}
			return "ACCEPT"
		}
		t.AddRow(
			fmt.Sprintf("%d", hops),
			fmt.Sprintf("%d", last.WireBytes),
			fmt.Sprintf("%.2fms", float64(last.VerifyTime.Microseconds())/1000),
			accepted(need-1),
			accepted(need),
		)
	}
	t.Notes = append(t.Notes,
		"a depth limit below the path length rejects the chain; raising it to the path length accepts — the local-policy knob of §6.4",
	)
	return t, nil
}
