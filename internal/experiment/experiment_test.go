package experiment

import (
	"strings"
	"testing"
	"time"

	"e2eqos/internal/policy"
	"e2eqos/internal/signalling"
	"e2eqos/internal/units"
)

// figure6World builds the paper's 3-domain scenario with the Figure 6
// policy files and a CPU pool in domain C.
func figure6World(t *testing.T) *World {
	t.Helper()
	w, err := BuildWorld(WorldConfig{
		NumDomains: 3,
		Labels:     []string{"DomainA", "DomainB", "DomainC"},
		Capacity:   100 * units.Mbps,
		Policies: map[string]*policy.Policy{
			"DomainA": policy.Figure6PolicyA,
			"DomainB": policy.Figure6PolicyB,
			"DomainC": policy.Figure6PolicyC,
		},
		TrustedGroups: []string{"ATLAS experiment", "physicist"},
		CPUs:          map[string]int{"DomainC": 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// daytimeWindow starts tomorrow at noon UTC: inside Figure 6's
// business hours and within every certificate's validity.
func daytimeWindow(w *World) units.Window {
	now := w.clock()
	noon := time.Date(now.Year(), now.Month(), now.Day(), 12, 0, 0, 0, time.UTC).AddDate(0, 0, 1)
	return units.NewWindow(noon, time.Hour)
}

func TestFigure6EndToEndGrant(t *testing.T) {
	w := figure6World(t)
	alice, err := w.NewUser("Alice", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	// Alice needs a CPU reservation in DomainC for >= 5 Mb/s at C.
	cpuHandle, err := w.CPU["DomainC"].Reserve(alice.DN(), 4, daytimeWindow(w))
	if err != nil {
		t.Fatal(err)
	}

	spec := alice.NewSpec(SpecOptions{
		DestDomain: "DomainC",
		Bandwidth:  10 * units.Mbps,
		Window:     daytimeWindow(w),
		Linked:     map[string]string{"cpu": cpuHandle},
	})
	res, err := alice.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("end-to-end reservation denied: %s", res.Reason)
	}
	// One signed approval per domain, destination first.
	if len(res.Approvals) != 3 {
		t.Fatalf("approvals = %d, want 3", len(res.Approvals))
	}
	if res.Approvals[0].Domain != "DomainC" || res.Approvals[2].Domain != "DomainA" {
		t.Errorf("approval order: %s, %s, %s",
			res.Approvals[0].Domain, res.Approvals[1].Domain, res.Approvals[2].Domain)
	}
	if err := w.VerifyApprovals(res); err != nil {
		t.Errorf("approval signatures: %v", err)
	}
	// Capacity committed in every domain.
	for _, dom := range w.Domains {
		if got := w.BBs[dom].Table().CommittedAt(spec.Window.Start.Add(time.Minute)); got != 10*units.Mbps {
			t.Errorf("%s committed = %v, want 10Mb/s", dom, got)
		}
	}
}

func TestFigure6DenialsPropagate(t *testing.T) {
	w := figure6World(t)
	alice, err := w.NewUser("Alice", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	// No CPU reservation: DomainC's policy must deny >= 5 Mb/s, and the
	// denial must identify the refusing domain.
	spec := alice.NewSpec(SpecOptions{
		DestDomain: "DomainC",
		Bandwidth:  10 * units.Mbps,
		Window:     daytimeWindow(w),
	})
	res, err := alice.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("reservation without CPU co-reservation granted")
	}
	if !strings.Contains(res.Reason, "DomainC") {
		t.Errorf("denial reason does not name the denying domain: %q", res.Reason)
	}
	// Upstream domains must have rolled their optimistic admissions back.
	for _, dom := range w.Domains {
		if got := w.BBs[dom].Table().CommittedAt(spec.Window.Start.Add(time.Minute)); got != 0 {
			t.Errorf("%s committed = %v after denial, want 0", dom, got)
		}
	}
}

func TestFigure6SmallReservationNeedsNoCPU(t *testing.T) {
	w := figure6World(t)
	alice, err := w.NewUser("Alice", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	// < 5 Mb/s passes C without the CPU link; B needs the capability.
	spec := alice.NewSpec(SpecOptions{
		DestDomain: "DomainC",
		Bandwidth:  4 * units.Mbps,
		Window:     daytimeWindow(w),
	})
	res, err := alice.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("small reservation denied: %s", res.Reason)
	}
}

func TestFigure6BobDeniedAtSource(t *testing.T) {
	w := figure6World(t)
	bob, err := w.NewUser("Bob", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	spec := bob.NewSpec(SpecOptions{DestDomain: "DomainC", Bandwidth: 1 * units.Mbps, Window: daytimeWindow(w)})
	res, err := bob.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("Bob granted despite domain A policy")
	}
	if !strings.Contains(res.Reason, "DomainA") {
		t.Errorf("reason = %q", res.Reason)
	}
	// B and C were never touched.
	for _, dom := range []string{"DomainB", "DomainC"} {
		if got := w.BBs[dom].Table().CommittedAt(w.clock().Add(2 * time.Minute)); got != 0 {
			t.Errorf("%s committed = %v", dom, got)
		}
	}
}

func TestGroupMembershipPathThroughB(t *testing.T) {
	w := figure6World(t)
	// Alice without a CAS capability but in the ATLAS experiment: B
	// grants via the validated assertion; C grants < 5 Mb/s.
	alice, err := w.NewUser("Alice", "DomainA", nil, []string{"ATLAS experiment"})
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	spec := alice.NewSpec(SpecOptions{
		DestDomain: "DomainC",
		Bandwidth:  4 * units.Mbps,
		Window:     daytimeWindow(w),
		Assertions: []string{"ATLAS experiment"},
	})
	res, err := alice.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("ATLAS member denied: %s", res.Reason)
	}
}

func TestCancelPropagatesDownstream(t *testing.T) {
	w := figure6World(t)
	alice, err := w.NewUser("Alice", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	spec := alice.NewSpec(SpecOptions{DestDomain: "DomainC", Bandwidth: 4 * units.Mbps, Window: daytimeWindow(w)})
	res, err := alice.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("setup reservation failed: %v / %+v", err, res)
	}
	if err := alice.Cancel("DomainA", spec.RARID); err != nil {
		t.Fatal(err)
	}
	for _, dom := range w.Domains {
		if got := w.BBs[dom].Table().CommittedAt(spec.Window.Start.Add(time.Minute)); got != 0 {
			t.Errorf("%s committed = %v after cancel, want 0", dom, got)
		}
	}
	// Cancelling again fails cleanly.
	if err := alice.Cancel("DomainA", spec.RARID); err == nil {
		t.Error("double cancel succeeded")
	}
}

func TestAdmissionControlExhaustsCapacity(t *testing.T) {
	w, err := BuildWorld(WorldConfig{NumDomains: 3, Capacity: 25 * units.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	alice, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	win := units.NewWindow(time.Now().Add(time.Minute), time.Hour)
	for i := 0; i < 2; i++ {
		spec := alice.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps, Window: win})
		res, err := alice.ReserveE2E(spec)
		if err != nil || !res.Granted {
			t.Fatalf("reservation %d failed: %v %+v", i, err, res)
		}
	}
	spec := alice.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps, Window: win})
	res, err := alice.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("third 10Mb/s reservation granted into 25Mb/s capacity")
	}
}

func TestSourceDomainBaselineLocalReservations(t *testing.T) {
	// Approach 1: Alice contacts each BB herself; requires universal
	// trust in the user CA.
	w, err := BuildWorld(WorldConfig{NumDomains: 3, TrustUserCAEverywhere: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	alice, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	spec := alice.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	for _, dom := range w.Domains {
		res, err := alice.ReserveLocalAt(dom, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Granted {
			t.Fatalf("local reservation at %s denied: %s", dom, res.Reason)
		}
	}
	for _, dom := range w.Domains {
		if got := w.BBs[dom].Table().CommittedAt(spec.Window.Start.Add(time.Minute)); got != 10*units.Mbps {
			t.Errorf("%s committed = %v", dom, got)
		}
	}
}

func TestBaselineFailsWithoutUniversalTrust(t *testing.T) {
	// Without TrustUserCAEverywhere, a remote domain cannot
	// authenticate Alice: the paper's core scaling criticism of
	// Approach 1.
	w, err := BuildWorld(WorldConfig{NumDomains: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	alice, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	spec := alice.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := alice.ReserveLocalAt(w.DestDomain(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("remote domain authenticated an unknown user")
	}
}

func TestMisreservationImpossibleHopByHop(t *testing.T) {
	// Figure 4 control-plane half: with hop-by-hop signalling David
	// cannot reserve in a path prefix only — the denial at C rolls
	// everything back.
	w := figure6World(t)
	david, err := w.NewUser("David", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer david.Close()
	// David is denied at A (policy: only Alice); even a well-formed
	// request cannot create partial state.
	spec := david.NewSpec(SpecOptions{DestDomain: "DomainC", Bandwidth: 10 * units.Mbps, Window: daytimeWindow(w)})
	res, err := david.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("David granted")
	}
	for _, dom := range w.Domains {
		if got := w.BBs[dom].Table().CommittedAt(w.clock().Add(2 * time.Minute)); got != 0 {
			t.Errorf("%s has residual commitment %v", dom, got)
		}
	}
}

func TestTunnelEstablishAndSubFlows(t *testing.T) {
	w, err := BuildWorld(WorldConfig{NumDomains: 4, Capacity: 100 * units.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	alice, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	spec := alice.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 50 * units.Mbps, Tunnel: true})
	res, err := alice.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("tunnel establishment failed: %v %+v", err, res)
	}

	src := w.BBs[w.SourceDomain()]
	// Allocate sub-flows: only the two end domains are contacted.
	msgsBefore := w.Net.Messages()
	for i := 0; i < 5; i++ {
		if err := src.AllocateTunnelFlow(spec.RARID, fmtSub(i), 10*units.Mbps, alice.DN()); err != nil {
			t.Fatalf("sub-flow %d: %v", i, err)
		}
	}
	msgsPerFlow := float64(w.Net.Messages()-msgsBefore) / 5
	if msgsPerFlow > 2.5 {
		t.Errorf("sub-flow allocation used %.1f messages per flow; tunnels must not touch intermediates", msgsPerFlow)
	}
	// Aggregate exhausted: the next allocation must fail.
	if err := src.AllocateTunnelFlow(spec.RARID, "overflow", 10*units.Mbps, alice.DN()); err == nil {
		t.Fatal("allocation beyond tunnel aggregate succeeded")
	}
	// Release one and retry.
	if err := src.ReleaseTunnelFlow(spec.RARID, fmtSub(0)); err != nil {
		t.Fatal(err)
	}
	if err := src.AllocateTunnelFlow(spec.RARID, "refill", 10*units.Mbps, alice.DN()); err != nil {
		t.Fatalf("allocation after release failed: %v", err)
	}
	// Both endpoints agree on usage.
	srcEp, _ := src.Tunnel(spec.RARID)
	dstEp, ok := w.BBs[w.DestDomain()].Tunnel(spec.RARID)
	if !ok {
		t.Fatal("destination has no tunnel endpoint")
	}
	if srcEp.Used() != dstEp.Used() {
		t.Errorf("endpoint usage diverged: %v vs %v", srcEp.Used(), dstEp.Used())
	}
}

func fmtSub(i int) string { return "sub-" + string(rune('a'+i)) }

func TestTunnelAllocRejectsStrangers(t *testing.T) {
	w, err := BuildWorld(WorldConfig{NumDomains: 3, TrustUserCAEverywhere: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	alice, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	spec := alice.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 50 * units.Mbps, Tunnel: true})
	res, err := alice.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("tunnel establishment failed: %v %+v", err, res)
	}
	// Mallory tries to allocate directly at the destination.
	mallory, err := w.NewUser("mallory", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mallory.Close()
	client, err := mallory.clientTo(w.DestDomain())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Call(&signalling.Message{
		Type: signalling.MsgTunnelAlloc,
		TunnelAlloc: &signalling.TunnelAllocPayload{
			TunnelRARID: spec.RARID,
			SubFlowID:   "steal",
			User:        mallory.DN(),
			Bandwidth:   int64(units.Mbps),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result != nil && resp.Result.Granted {
		t.Fatal("stranger allocated on someone else's tunnel")
	}
}
