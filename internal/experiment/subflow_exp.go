package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"e2eqos/internal/signalling"
	"e2eqos/internal/units"
)

// SubFlowLoadConfig parameterises the sub-flow hot-path load generator.
type SubFlowLoadConfig struct {
	// Users is the number of concurrent workers hammering the tunnel.
	Users int
	// OpsPerUser is how many sub-flows each worker allocates.
	OpsPerUser int
	// BatchSizes are the arms of the sweep; 1 is the per-RPC baseline
	// (one MsgTunnelAlloc round trip per sub-flow).
	BatchSizes []int
	// Domains is the path length of the establishing reservation (the
	// sub-flow path always touches just the two ends).
	Domains int
	// Latency is the modelled one-way signalling latency per hop.
	Latency time.Duration
}

// SubFlowSample is one arm of the sweep.
type SubFlowSample struct {
	Batch    int
	Users    int
	Ops      int
	Took     time.Duration
	PerSec   float64
	Messages int64
}

// MeasureSubFlowLoad runs one arm: establish a tunnel over a fresh
// world, then drive cfg.Users concurrent workers through the source
// broker — per-RPC when batch is 1, MsgTunnelBatch otherwise — until
// every worker has allocated cfg.OpsPerUser sub-flows.
func MeasureSubFlowLoad(cfg SubFlowLoadConfig, batch int) (SubFlowSample, error) {
	out := SubFlowSample{Batch: batch, Users: cfg.Users, Ops: cfg.Users * cfg.OpsPerUser}
	need := units.Bandwidth(out.Ops+1) * units.Mbps
	w, err := BuildWorld(WorldConfig{
		NumDomains:  cfg.Domains,
		Capacity:    need * 2,
		Latency:     cfg.Latency,
		CallTimeout: 30 * time.Second,
	})
	if err != nil {
		return out, err
	}
	defer w.Close()
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		return out, err
	}
	defer u.Close()
	spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: need, Tunnel: true})
	if res, err := u.ReserveE2E(spec); err != nil || !res.Granted {
		return out, fmt.Errorf("tunnel establishment: %v %+v", err, res)
	}
	src := w.BBs[w.SourceDomain()]
	w.Net.ResetCounters()

	var wg sync.WaitGroup
	var failed atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	for wkr := 0; wkr < cfg.Users; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for done := 0; done < cfg.OpsPerUser; {
				n := batch
				if rest := cfg.OpsPerUser - done; n > rest {
					n = rest
				}
				if n == 1 {
					id := fmt.Sprintf("u%d-s%d", wkr, done)
					if err := src.AllocateTunnelFlow(spec.RARID, id, units.Mbps, u.DN()); err != nil {
						failed.Add(1)
						firstErr.CompareAndSwap(nil, err)
						return
					}
					done++
					continue
				}
				ops := make([]signalling.TunnelOp, n)
				for i := range ops {
					ops[i] = signalling.TunnelOp{
						Action:    signalling.OpAlloc,
						SubFlowID: fmt.Sprintf("u%d-s%d", wkr, done+i),
						Bandwidth: int64(units.Mbps),
					}
				}
				results, err := src.TunnelBatch(spec.RARID, ops, u.DN())
				if err != nil {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
				for _, r := range results {
					if !r.Granted {
						failed.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("op %s denied: %s", r.SubFlowID, r.Reason))
						return
					}
				}
				done += n
			}
		}(wkr)
	}
	wg.Wait()
	out.Took = time.Since(start)
	out.Messages = w.Net.Messages()
	if n := failed.Load(); n > 0 {
		return out, fmt.Errorf("%d workers failed, first: %v", n, firstErr.Load())
	}
	ep, ok := src.Tunnel(spec.RARID)
	if !ok || ep.Len() != out.Ops {
		return out, fmt.Errorf("source endpoint holds %d sub-flows, want %d", ep.Len(), out.Ops)
	}
	out.PerSec = float64(out.Ops) / out.Took.Seconds()
	return out, nil
}

// RunSubFlowLoad sweeps batch sizes over the tunnel sub-flow hot path:
// the ROADMAP's millions-of-users argument lives or dies on how many
// per-user admissions the two end domains sustain, so the table shows
// allocations/sec per batch size against the per-RPC baseline.
func RunSubFlowLoad(cfg SubFlowLoadConfig) (*Table, error) {
	if cfg.Users <= 0 {
		cfg.Users = 8
	}
	if cfg.OpsPerUser <= 0 {
		cfg.OpsPerUser = 256
	}
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{1, 8, 64}
	}
	if cfg.Domains < 2 {
		cfg.Domains = 5
	}
	t := &Table{
		ID: "subflows",
		Title: fmt.Sprintf("Tunnel sub-flow throughput (%d workers x %d allocs, %d domains, %v hop latency)",
			cfg.Users, cfg.OpsPerUser, cfg.Domains, cfg.Latency),
		Claim:   "batched two-endpoint signalling turns the per-user admission path into the control plane's fast path",
		Columns: []string{"batch", "allocs", "msgs", "time", "allocs/sec", "speedup"},
	}
	var base float64
	for _, batch := range cfg.BatchSizes {
		s, err := MeasureSubFlowLoad(cfg, batch)
		if err != nil {
			return nil, fmt.Errorf("batch=%d: %w", batch, err)
		}
		if base == 0 {
			base = s.PerSec
		}
		t.AddRow(
			fmt.Sprintf("%d", s.Batch),
			fmt.Sprintf("%d", s.Ops),
			fmt.Sprintf("%d", s.Messages),
			fmt.Sprintf("%.1fms", float64(s.Took.Microseconds())/1000),
			fmt.Sprintf("%.0f", s.PerSec),
			fmt.Sprintf("%.2fx", s.PerSec/base),
		)
	}
	t.Notes = append(t.Notes,
		"batch=1 is the per-RPC baseline: one MsgTunnelAlloc round trip per sub-flow",
		"all arms touch only the two end domains; intermediate brokers see none of this traffic",
	)
	return t, nil
}
