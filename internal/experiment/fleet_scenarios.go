package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"time"

	"e2eqos/internal/units"
)

// The four scenario families. Each builds a fresh engine (fresh
// tables, planes, virtual clock) so scenario digests are independent
// and order-insensitive.

// fullPath is the end-to-end signalling chain (every domain in order).
func (e *fleetEngine) fullPath() []int {
	path := make([]int, len(e.domains))
	for i := range path {
		path[i] = i
	}
	return path
}

// sessionWithRetry is the closed-loop user: reserve, hold, cancel; on
// denial, back off and retry a bounded number of times.
func (e *fleetEngine) sessionWithRetry(u int, bw units.Bandwidth, hold time.Duration, path []int, retries int, r *rng) {
	if b := e.reserve(u, bw, hold, path); b != nil {
		e.holdThenCancel(b, hold)
		return
	}
	if retries <= 0 {
		return
	}
	e.retries++
	_, _ = e.sim.After(r.Between(time.Second, 10*time.Second), func() {
		e.sessionWithRetry(u, bw, hold, path, retries-1, r)
	})
}

// runDiurnal models a compressed day: 24 slots whose activity follows
// a sinusoid (night trough, midday peak). Each user independently
// decides per slot whether to hold a reservation, for roughly half to
// one-and-a-half slots.
func runDiurnal(cfg FleetConfig) (ScenarioResult, error) {
	e := newFleetEngine(cfg, "diurnal")
	const slots = 24
	slotDur := 2 * time.Minute
	path := e.fullPath()
	for u := 0; u < cfg.Users; u++ {
		r := e.userRNG(u, 1)
		for s := 0; s < slots; s++ {
			// Activity between 2% (trough) and 28% (peak).
			frac := 0.02 + 0.26*(1+math.Sin(2*math.Pi*float64(s)/slots-math.Pi/2))/2
			if r.Float64() >= frac {
				continue
			}
			start := time.Duration(s)*slotDur + r.Between(0, slotDur)
			hold := r.Between(slotDur/2, slotDur*3/2)
			u := u
			if _, err := e.sim.Schedule(start, func() {
				e.sessionWithRetry(u, cfg.PerUserRate, hold, path, 2, r)
			}); err != nil {
				return ScenarioResult{}, err
			}
		}
	}
	events := e.sim.Run(slots*slotDur + 15*time.Minute)
	e.drain()
	return e.finish("diurnal", events)
}

// runFlashCrowd lays a 10% baseline load, then hits the brokers with
// 30% of the population reserving within a two-second window — the
// FIFO broker queues turn the burst into the grant-latency tail.
func runFlashCrowd(cfg FleetConfig) (ScenarioResult, error) {
	e := newFleetEngine(cfg, "flash")
	path := e.fullPath()
	for u := 0; u < cfg.Users; u++ {
		r := e.userRNG(u, 2)
		if r.Float64() < 0.10 {
			start := r.Between(0, 10*time.Second)
			hold := r.Between(30*time.Second, 50*time.Second)
			u := u
			if _, err := e.sim.Schedule(start, func() {
				e.sessionWithRetry(u, cfg.PerUserRate, hold, path, 1, r)
			}); err != nil {
				return ScenarioResult{}, err
			}
		}
		if r.Float64() < 0.30 {
			start := 20*time.Second + r.Between(0, 2*time.Second)
			hold := r.Between(10*time.Second, 20*time.Second)
			u := u
			if _, err := e.sim.Schedule(start, func() {
				e.sessionWithRetry(u, cfg.PerUserRate, hold, path, 0, r)
			}); err != nil {
				return ScenarioResult{}, err
			}
		}
	}
	events := e.sim.Run(3 * time.Minute)
	e.drain()
	return e.finish("flash", events)
}

// runChurn has 5% of the population book and cancel continuously with
// short holds for twelve virtual minutes — the compaction stress: the
// tables must shed dead reservations while admission keeps running.
func runChurn(cfg FleetConfig) (ScenarioResult, error) {
	e := newFleetEngine(cfg, "churn")
	path := e.fullPath()
	churners := cfg.Users / 20
	if churners < 8 {
		churners = minInt(8, cfg.Users)
	}
	const horizon = 12 * time.Minute
	for u := 0; u < churners; u++ {
		r := e.userRNG(u, 3)
		u := u
		if _, err := e.sim.Schedule(r.Between(0, 5*time.Second), func() {
			e.churnLoop(u, r, path, horizon)
		}); err != nil {
			return ScenarioResult{}, err
		}
	}
	events := e.sim.Run(horizon + time.Minute)
	e.drain()
	if e.checkCompactionBounded(e.admitOps) {
		res, err := e.finish("churn", events)
		res.Invariants = append(res.Invariants, "compaction-bounded")
		return res, err
	}
	return e.finish("churn", events)
}

// churnLoop books, holds briefly, cancels, pauses, rebooks — until
// the horizon.
func (e *fleetEngine) churnLoop(u int, r *rng, path []int, until time.Duration) {
	if e.sim.Now() >= until {
		return
	}
	hold := r.Between(5*time.Second, 30*time.Second)
	gap := r.Between(200*time.Millisecond, 2*time.Second)
	rebook := func() {
		_, _ = e.sim.After(gap, func() { e.churnLoop(u, r, path, until) })
	}
	b := e.reserve(u, e.cfg.PerUserRate, hold, path)
	if b == nil {
		rebook()
		return
	}
	_, _ = e.sim.Schedule(e.sim.Now()+hold, func() {
		e.cancelBooking(b)
		rebook()
	})
}

// runReroute is the fleet-scale face of the multipath work: a fan of
// two disjoint transit branches between ingress and destination.
// During a mid-horizon "outage" window, blocker load books the primary
// branch solid, shard by shard; sessions that deny mid-chain on the
// primary immediately re-route onto the alternate branch, exactly as
// the broker's multipath forwarder does. Not in the default scenario
// set — the fan needs four domains, so it is opt-in by name.
func runReroute(cfg FleetConfig) (ScenarioResult, error) {
	if cfg.Domains < 4 {
		cfg.Domains = 4
	}
	e := newFleetEngine(cfg, "reroute")
	last := cfg.Domains - 1
	primary := []int{0, 1, last}
	alternate := []int{0, 2, last}
	const (
		horizon     = 3 * time.Minute
		outageFrom  = time.Second // before any session fires
		outageUntil = 2 * time.Minute
	)
	// Blockers: one user per admission shard, each booking the shard's
	// full capacity on the primary branch alone for the outage window.
	// They book before the first session starts, so every admission
	// succeeds and the covered shards deny every session they would
	// have admitted — which is what forces the re-route.
	perShard := e.domains[1].capacity / units.Bandwidth(cfg.Aggregates)
	covered := make(map[int]bool, cfg.Aggregates)
	blockers := make(map[int]bool, cfg.Aggregates)
	branchOnly := []int{1}
	for u := 0; u < cfg.Users && len(covered) < cfg.Aggregates; u++ {
		if covered[e.userShard[u]] {
			continue
		}
		covered[e.userShard[u]] = true
		blockers[u] = true
		u := u
		if _, err := e.sim.Schedule(outageFrom, func() {
			e.holdThenCancel(e.reserve(u, perShard, outageUntil-outageFrom, branchOnly), outageUntil-outageFrom)
		}); err != nil {
			return ScenarioResult{}, err
		}
	}
	// Sessions: the rest of the population runs light closed-loop load
	// across the horizon. The primary branch is tried first; a denial
	// there re-routes onto the alternate in the same signalling round.
	// Sessions starting after the outage lifts ride the primary again.
	for u := 0; u < cfg.Users; u++ {
		if blockers[u] {
			continue
		}
		r := e.userRNG(u, 5)
		if r.Float64() >= 0.15 {
			continue
		}
		start := 5*time.Second + r.Between(0, horizon-45*time.Second)
		hold := r.Between(15*time.Second, 35*time.Second)
		u := u
		if _, err := e.sim.Schedule(start, func() {
			if b := e.reserve(u, cfg.PerUserRate, hold, primary); b != nil {
				e.holdThenCancel(b, hold)
				return
			}
			e.retries++
			fmt.Fprintf(e.h, "reroute u%d %d\n", u, e.sim.Now())
			if b := e.reserve(u, cfg.PerUserRate, hold, alternate); b != nil {
				e.holdThenCancel(b, hold)
			}
		}); err != nil {
			return ScenarioResult{}, err
		}
	}
	events := e.sim.Run(horizon + 5*time.Minute)
	e.drain()
	res, err := e.finish("reroute", events)
	if err == nil && res.Retries == 0 {
		return res, fmt.Errorf("fleet: reroute scenario produced no re-routes — the outage never bit")
	}
	if err == nil {
		res.Invariants = append(res.Invariants, "denied-primary-rerouted")
	}
	return res, err
}

// runMisreservation replays the paper's Figure 4 at fleet scale: 1%
// of users are attackers booking AttackerOverbook× bandwidth. In the
// defended arm provisioning is end-to-end — attackers reserve hop by
// hop and the destination's aggregate accounts for whatever it
// granted them. In the attack arm they book only in their source
// domain ("Domain C polices traffic based on traffic aggregates, not
// on individual users"), so their premium-marked packets compete with
// honest traffic inside an aggregate sized without them.
func runMisreservation(cfg FleetConfig) (ScenarioResult, error) {
	defRes, defAttack, err := runAttackArm(cfg, true)
	if err != nil {
		return ScenarioResult{}, err
	}
	atkRes, atkAttack, err := runAttackArm(cfg, false)
	if err != nil {
		return ScenarioResult{}, err
	}
	attack := &AttackResult{
		HonestDefended:   defAttack.honest,
		AttackerDefended: defAttack.attacker,
		HonestAttacked:   atkAttack.honest,
		AttackerAttacked: atkAttack.attacker,
	}
	if attack.HonestDefended.P50 > 0 {
		attack.DegradationPct = 100 * (1 - attack.HonestAttacked.P50/attack.HonestDefended.P50)
	}
	// Sanity: source-domain provisioning must actually hurt honest
	// users relative to the defended arm, or the scenario has stopped
	// reproducing the paper's attack.
	if attack.DegradationPct < 1 {
		return ScenarioResult{}, fmt.Errorf("fleet: misreservation attack caused no honest degradation (%.2f%%)", attack.DegradationPct)
	}
	whole := sha256.New()
	fmt.Fprintf(whole, "defended %s\nattack %s\n", defRes.Digest, atkRes.Digest)
	res := ScenarioResult{
		Name:           "misreservation",
		Users:          cfg.Users,
		Grants:         defRes.Grants + atkRes.Grants,
		Denials:        defRes.Denials + atkRes.Denials,
		Retries:        defRes.Retries + atkRes.Retries,
		Cancels:        defRes.Cancels + atkRes.Cancels,
		GrantLatencyMs: defRes.GrantLatencyMs,
		GoodputMbps:    defRes.GoodputMbps,
		Attack:         attack,
		Invariants:     append(defRes.Invariants, "attacker-goodput<=reservation", "policer-byte-conservation"),
		Digest:         hex.EncodeToString(whole.Sum(nil)),
		Events:         defRes.Events + atkRes.Events,
	}
	return res, nil
}

// armGoodput carries one arm's measured distributions.
type armGoodput struct {
	honest   Quantiles
	attacker Quantiles
}

// runAttackArm runs one provisioning mode of the misreservation
// scenario and measures premium goodput through the edge markers and
// the destination's aggregate policer over a steady-state window.
func runAttackArm(cfg FleetConfig, defended bool) (ScenarioResult, armGoodput, error) {
	name := "misreservation-attack"
	if defended {
		name = "misreservation-defended"
	}
	e := newFleetEngine(cfg, name)
	path := e.fullPath()
	attackers := int(cfg.AttackerFraction * float64(cfg.Users))
	if attackers < 1 {
		attackers = 1
	}
	attackerBW := units.Bandwidth(cfg.AttackerOverbook * float64(cfg.PerUserRate))
	const (
		joinBy   = 10 * time.Second
		measFrom = 30 * time.Second
		measTo   = 90 * time.Second
		hold     = 2 * measTo
	)
	// Honest users: a quarter of the population holds through the
	// measurement window. Attackers are the first `attackers` ids and
	// are always active.
	for u := 0; u < cfg.Users; u++ {
		r := e.userRNG(u, 4)
		isAttacker := u < attackers
		if !isAttacker && r.Float64() >= 0.25 {
			continue
		}
		start := r.Between(0, joinBy)
		u := u
		if _, err := e.sim.Schedule(start, func() {
			if !isAttacker {
				e.reserve(u, cfg.PerUserRate, hold, path)
				return
			}
			if defended {
				// End-to-end provisioning: the attacker must ask every
				// domain, destination included.
				e.reserve(u, attackerBW, hold, path)
			} else {
				// Source-domain provisioning: book only the home domain;
				// its broker still programs the edge marker.
				e.reserve(u, attackerBW, hold, path[:1])
			}
		}); err != nil {
			return ScenarioResult{}, armGoodput{}, err
		}
	}
	var arm armGoodput
	var measureErr error
	// Open the measurement window: consume all pre-window traffic so
	// the per-flow meters sit at their steady state.
	if _, err := e.sim.Schedule(measFrom, func() {
		e.forEachLiveBooking(func(b *fleetBooking) {
			src := e.domains[b.path[0]]
			pre := int64(float64(b.bw.BytesIn(e.sim.Now()-b.grantedAt)) * b.offer)
			src.plane.Mark(b.flow, pre, e.sim.Now())
		})
		dest := e.domains[len(e.domains)-1]
		dest.plane.Police(0, e.sim.Now())
	}); err != nil {
		return ScenarioResult{}, armGoodput{}, err
	}
	if _, err := e.sim.Schedule(measTo, func() {
		arm, measureErr = e.measureGoodput(attackers, measTo-measFrom, defended)
	}); err != nil {
		return ScenarioResult{}, armGoodput{}, err
	}
	events := e.sim.Run(measTo + time.Minute)
	e.drain()
	res, err := e.finish(name, events)
	if err == nil {
		err = measureErr
	}
	return res, arm, err
}

// forEachLiveBooking visits live bookings in deterministic (sorted
// flow) order.
func (e *fleetEngine) forEachLiveBooking(fn func(b *fleetBooking)) {
	flows := make([]string, 0, len(e.bookings))
	for f, b := range e.bookings {
		if !b.cancelled {
			flows = append(flows, f)
		}
	}
	sort.Strings(flows)
	for _, f := range flows {
		fn(e.bookings[f])
	}
}

// measureGoodput meters every live flow's window traffic through its
// edge marker, polices the premium sum at the destination aggregate,
// distributes the passed bytes proportionally (aggregate policing is
// flow-blind) and asserts the arm's invariants.
func (e *fleetEngine) measureGoodput(attackers int, window time.Duration, defended bool) (armGoodput, error) {
	now := e.sim.Now()
	type flowPremium struct {
		b       *fleetBooking
		premium int64
	}
	var flows []flowPremium
	var totalPremium int64
	e.forEachLiveBooking(func(b *fleetBooking) {
		src := e.domains[b.path[0]]
		factor := b.offer
		if b.user < attackers {
			factor = 1.5 // attackers blast over their profile; the edge clips
		}
		offered := int64(float64(b.bw.BytesIn(window)) * factor)
		premium := src.plane.Mark(b.flow, offered, now)
		flows = append(flows, flowPremium{b, premium})
		totalPremium += premium
	})
	dest := e.domains[len(e.domains)-1]
	passed := dest.plane.Police(totalPremium, now)
	aggRate := dest.committed
	// Policer byte conservation: the aggregate meter must never pass
	// more than its configured rate over the window plus one bucket.
	budget := aggRate.BytesIn(window) + defaultFleetBucket + 1
	if passed > budget {
		e.violate("policer passed %d bytes, budget %d", passed, budget)
	}
	var honest, attacker []float64
	for _, fp := range flows {
		share := 0.0
		if totalPremium > 0 {
			share = float64(passed) * float64(fp.premium) / float64(totalPremium)
		}
		mbps := share * 8 / window.Seconds() / 1e6
		if fp.b.user < attackers {
			attacker = append(attacker, mbps)
			if defended {
				// The paper's bound: an attacker's premium goodput may
				// not exceed what the destination admitted for it (its
				// reservation rate, plus burst slack).
				bound := float64(fp.b.bw)/1e6*1.02 + float64(defaultFleetBucket)*8/window.Seconds()/1e6
				if mbps > bound {
					e.violate("attacker %s premium goodput %.3f Mb/s exceeds reservation bound %.3f", fp.b.flow, mbps, bound)
				}
			}
		} else {
			honest = append(honest, mbps)
		}
	}
	fmt.Fprintf(e.h, "measure premium %d passed %d agg %d\n", totalPremium, passed, int64(aggRate))
	return armGoodput{honest: quantilesOf(honest), attacker: quantilesOf(attacker)}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
