package experiment

import (
	"fmt"
	"time"

	"e2eqos/internal/units"
)

// TunnelSample compares per-flow end-to-end signalling against tunnel
// sub-flow allocation for n parallel flows between the same end
// domains.
type TunnelSample struct {
	Flows         int
	Domains       int
	PerFlowMsgs   int64
	PerFlowTime   time.Duration
	TunnelMsgs    int64 // includes the tunnel establishment
	TunnelTime    time.Duration
	TunnelGranted int
}

// MeasureTunnel runs both strategies for n flows over a fresh world of
// d domains with the given hop latency.
func MeasureTunnel(n, d int, hopLatency time.Duration) (TunnelSample, error) {
	out := TunnelSample{Flows: n, Domains: d}

	// Per-flow end-to-end: n independent hop-by-hop reservations.
	{
		w, err := BuildWorld(WorldConfig{
			NumDomains: d,
			Capacity:   units.Bandwidth(n+1) * 10 * units.Mbps,
			Latency:    hopLatency,
		})
		if err != nil {
			return out, err
		}
		u, err := w.NewUser("alice", "", nil, nil)
		if err != nil {
			w.Close()
			return out, err
		}
		// Warm connections along the chain.
		warm := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
		if res, err := u.ReserveE2E(warm); err != nil || !res.Granted {
			w.Close()
			return out, fmt.Errorf("warmup: %v %+v", err, res)
		}
		w.Net.ResetCounters()
		start := time.Now()
		for i := 0; i < n; i++ {
			spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
			res, err := u.ReserveE2E(spec)
			if err != nil || !res.Granted {
				u.Close()
				w.Close()
				return out, fmt.Errorf("per-flow %d: %v %+v", i, err, res)
			}
		}
		out.PerFlowTime = time.Since(start)
		out.PerFlowMsgs = w.Net.Messages()
		u.Close()
		w.Close()
	}

	// Tunnel: one establishment + n direct sub-flow allocations.
	{
		w, err := BuildWorld(WorldConfig{
			NumDomains: d,
			Capacity:   units.Bandwidth(n+1) * 10 * units.Mbps,
			Latency:    hopLatency,
		})
		if err != nil {
			return out, err
		}
		u, err := w.NewUser("alice", "", nil, nil)
		if err != nil {
			w.Close()
			return out, err
		}
		w.Net.ResetCounters()
		start := time.Now()
		spec := u.NewSpec(SpecOptions{
			DestDomain: w.DestDomain(),
			Bandwidth:  units.Bandwidth(n) * 10 * units.Mbps,
			Tunnel:     true,
		})
		res, err := u.ReserveE2E(spec)
		if err != nil || !res.Granted {
			u.Close()
			w.Close()
			return out, fmt.Errorf("tunnel establishment: %v %+v", err, res)
		}
		src := w.BBs[w.SourceDomain()]
		for i := 0; i < n; i++ {
			if err := src.AllocateTunnelFlow(spec.RARID, fmt.Sprintf("sub-%d", i), 10*units.Mbps, u.DN()); err != nil {
				u.Close()
				w.Close()
				return out, fmt.Errorf("sub-flow %d: %w", i, err)
			}
			out.TunnelGranted++
		}
		out.TunnelTime = time.Since(start)
		out.TunnelMsgs = w.Net.Messages()
		u.Close()
		w.Close()
	}
	return out, nil
}

// RunTunnelScaling reproduces the scalability argument of §1: "If a
// set of applications creates many parallel flows between the same two
// end-domains, it is infeasible to negotiate an end-to-end reservation
// for each one."
func RunTunnelScaling(flowCounts []int, domains int, hopLatency time.Duration) (*Table, error) {
	if len(flowCounts) == 0 {
		flowCounts = []int{1, 2, 4, 8, 16, 32}
	}
	if domains < 2 {
		domains = 5
	}
	t := &Table{
		ID:    "tunnel",
		Title: fmt.Sprintf("Per-flow signalling vs tunnel sub-flows (%d domains, %v hop latency)", domains, hopLatency),
		Claim: "with a tunnel, intermediate domains are not contacted per flow; per-flow cost drops to the two end domains",
		Columns: []string{
			"flows", "per-flow msgs", "per-flow time", "tunnel msgs", "tunnel time", "msg ratio",
		},
	}
	for _, n := range flowCounts {
		s, err := MeasureTunnel(n, domains, hopLatency)
		if err != nil {
			return nil, fmt.Errorf("n=%d: %w", n, err)
		}
		ratio := float64(s.PerFlowMsgs) / float64(s.TunnelMsgs)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", s.PerFlowMsgs),
			fmt.Sprintf("%.1fms", float64(s.PerFlowTime.Microseconds())/1000),
			fmt.Sprintf("%d", s.TunnelMsgs),
			fmt.Sprintf("%.1fms", float64(s.TunnelTime.Microseconds())/1000),
			fmt.Sprintf("%.2fx", ratio),
		)
	}
	t.Notes = append(t.Notes,
		"tunnel msgs include the one-time establishment through all domains; the advantage grows with the flow count",
	)
	return t, nil
}
