package experiment

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestScaleLoadConfigValidation pins the config checks RunScaleLoad
// used to skip: negative sampling probabilities and latencies were
// silently absorbed, and a Users×Reserves product that overflowed the
// int64 bandwidth budget built a world with wrapped capacity.
func TestScaleLoadConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     ScaleLoadConfig
		wantErr string
	}{
		{
			name:    "negative sample rate",
			cfg:     ScaleLoadConfig{SampleRate: -0.01},
			wantErr: "SampleRate",
		},
		{
			name:    "sample rate above one",
			cfg:     ScaleLoadConfig{SampleRate: 1.5},
			wantErr: "exceeds 1",
		},
		{
			name:    "negative latency",
			cfg:     ScaleLoadConfig{Latency: -time.Millisecond},
			wantErr: "Latency",
		},
		{
			name:    "users times reserves overflows",
			cfg:     ScaleLoadConfig{Users: math.MaxInt64 / 4, Reserves: 8},
			wantErr: "overflows",
		},
		{
			name:    "budget exceeds representable bandwidth",
			cfg:     ScaleLoadConfig{Users: 1 << 31, Reserves: 1 << 31},
			wantErr: "exceeds the representable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunScaleLoad(tc.cfg)
			if err == nil {
				t.Fatalf("RunScaleLoad(%+v) succeeded, want error containing %q", tc.cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestScaleLoadConfigAccepts pins the boundary values that must keep
// working: zeroes mean "use the default", not "reject".
func TestScaleLoadConfigAccepts(t *testing.T) {
	cases := []struct {
		name string
		cfg  ScaleLoadConfig
	}{
		{name: "zero everything defaults", cfg: ScaleLoadConfig{}},
		{name: "zero sample rate disables sampling", cfg: ScaleLoadConfig{SampleRate: 0}},
		{name: "probability one", cfg: ScaleLoadConfig{SampleRate: 1}},
		{name: "zero latency", cfg: ScaleLoadConfig{Latency: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.validate(); err != nil {
				t.Fatalf("validate(%+v): %v", tc.cfg, err)
			}
			c := tc.cfg
			if c.Users <= 0 {
				c.Users = 8
			}
			if c.Reserves <= 0 {
				c.Reserves = 64
			}
			if c.BatchOps <= 0 {
				c.BatchOps = 2048
			}
			if _, err := c.totalOps(); err != nil {
				t.Fatalf("totalOps(%+v): %v", c, err)
			}
		})
	}
}
