package experiment

import (
	"fmt"
	"time"

	"e2eqos/internal/resv"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// FaultSweepConfig parameterises RunFaultSweep.
type FaultSweepConfig struct {
	// Domains is the chain length (default 5).
	Domains int
	// Probs are the per-hop message-loss probabilities swept (default
	// 0, 0.02, 0.05, 0.1, 0.2). Each probability is applied as both a
	// send-drop and a receive-drop on every inter-broker link.
	Probs []float64
	// Trials is the number of reservations attempted per cell
	// (default 20).
	Trials int
	// CallTimeout is the per-hop signalling deadline (default 100ms).
	CallTimeout time.Duration
	// RetryBudgets are the MaxRetries settings compared per
	// probability (default 0 and 2).
	RetryBudgets []int
	// Seed drives the fault injection (default 1). Same seed, same
	// faults: the sweep never reads the clock for randomness.
	Seed uint64
}

// faultCell is one measured (probability, retry-budget) combination.
type faultCell struct {
	grants, denials, errors int
	grantLat, denyLat       time.Duration
	faults                  int64
	stranded                int
	// Observability-layer totals summed across all domains, so the
	// table shows the robustness machinery at work, not just outcomes.
	retries, breakerOpens, rollbacks, replays float64
}

// runFaultCell builds a fresh faulted world and attempts cfg.Trials
// reservations through it.
func runFaultCell(cfg FaultSweepConfig, prob float64, retries int) (faultCell, error) {
	var out faultCell
	var dialers []*transport.FaultyDialer
	// Per-dialer seeds come from the config's seed stream, not a
	// counter from 1: distinct (seed, prob, retries) cells inject
	// distinct-but-reproducible fault patterns.
	seeds := newRNG(cfg.Seed, uint64(prob*1e6)<<8|uint64(retries))
	w, err := BuildWorld(WorldConfig{
		NumDomains:   cfg.Domains,
		Capacity:     units.Gbps,
		CallTimeout:  cfg.CallTimeout,
		MaxRetries:   retries,
		RetryBackoff: 2 * time.Millisecond,
		EnableObs:    true,
		Seed:         cfg.Seed,
		WrapDialer: func(domain string, d transport.Dialer) transport.Dialer {
			if prob <= 0 {
				return d
			}
			fd := transport.NewFaultyDialer(d, transport.FaultConfig{
				SendDropProb: prob,
				RecvDropProb: prob,
				Seed:         int64(seeds.Uint64() >> 1),
			})
			dialers = append(dialers, fd)
			return fd
		},
	})
	if err != nil {
		return out, err
	}
	defer w.Close()
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		return out, err
	}
	defer u.Close()

	for i := 0; i < cfg.Trials; i++ {
		spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
		start := time.Now()
		res, err := u.ReserveE2E(spec)
		elapsed := time.Since(start)
		switch {
		case err != nil:
			out.errors++
		case res.Granted:
			out.grants++
			out.grantLat += elapsed
		default:
			out.denials++
			out.denyLat += elapsed
		}
	}
	for _, fd := range dialers {
		out.faults += fd.Stats().Total()
	}
	// Denial-propagation correctness: every granted reservation holds
	// one slot per domain; anything beyond that is bandwidth stranded
	// by a lost response. Best-effort cancels are asynchronous, so
	// allow them a settling window before counting.
	want := out.grants * cfg.Domains
	settle := time.Now().Add(3 * time.Second)
	for {
		got := 0
		for _, broker := range w.BBs {
			for _, r := range broker.Table().All() {
				if r.Status == resv.Granted {
					got++
				}
			}
		}
		out.stranded = got - want
		if out.stranded <= 0 || time.Now().After(settle) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	out.retries = w.CounterTotal("bb_retries_total")
	out.breakerOpens = w.CounterTotal("bb_breaker_opens_total")
	out.rollbacks = w.CounterTotal("bb_rollbacks_total")
	out.replays = w.CounterTotal("bb_replays_total")
	return out, nil
}

// RunFaultSweep measures the robustness layer end to end: reservation
// outcome, latency and rollback correctness over a chain whose every
// inter-broker link loses messages with a swept probability.
func RunFaultSweep(cfg FaultSweepConfig) (*Table, error) {
	if cfg.Domains <= 0 {
		cfg.Domains = 5
	}
	if len(cfg.Probs) == 0 {
		cfg.Probs = []float64{0, 0.02, 0.05, 0.1, 0.2}
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 20
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 100 * time.Millisecond
	}
	if len(cfg.RetryBudgets) == 0 {
		cfg.RetryBudgets = []int{0, 2}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	t := &Table{
		ID:    "faults",
		Title: fmt.Sprintf("Reservation outcome under per-hop message loss (%d domains, %v hop deadline, %d trials)", cfg.Domains, cfg.CallTimeout, cfg.Trials),
		Claim: "a denied or failed hop must propagate upstream within the deadline budget and leave no reservation stranded in any domain",
		Columns: []string{
			"loss prob", "retries",
			"grants", "denials", "errors",
			"grant lat", "denial lat",
			"faults injected", "stranded",
			"bb retries", "breaker opens", "rollbacks", "replays",
		},
	}
	ms := func(total time.Duration, n int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fms", float64((total/time.Duration(n)).Microseconds())/1000)
	}
	for _, prob := range cfg.Probs {
		for _, retries := range cfg.RetryBudgets {
			c, err := runFaultCell(cfg, prob, retries)
			if err != nil {
				return nil, fmt.Errorf("p=%.2f retries=%d: %w", prob, retries, err)
			}
			stranded := fmt.Sprintf("%d", c.stranded)
			if c.stranded <= 0 {
				stranded = "0 (clean)"
			}
			t.AddRow(
				fmt.Sprintf("%.2f", prob),
				fmt.Sprintf("%d", retries),
				fmt.Sprintf("%d", c.grants),
				fmt.Sprintf("%d", c.denials),
				fmt.Sprintf("%d", c.errors),
				ms(c.grantLat, c.grants),
				ms(c.denyLat, c.denials),
				fmt.Sprintf("%d", c.faults),
				stranded,
				fmt.Sprintf("%.0f", c.retries),
				fmt.Sprintf("%.0f", c.breakerOpens),
				fmt.Sprintf("%.0f", c.rollbacks),
				fmt.Sprintf("%.0f", c.replays),
			)
		}
	}
	t.Notes = append(t.Notes,
		"a lost message either times out at the sender (denial after the hop deadline) or strands optimistic admissions; the best-effort downstream cancel reclaims them",
		"retries recover grants lost to transient faults at the cost of extra deadline exposure per hop",
		"errors are user-visible transport failures: the user's own deadline fired before any broker answered",
		"bb retries / breaker opens / rollbacks / replays are the brokers' own metrics (bb_*_total summed over all domains): the observability layer answering which machinery fired, not just what the user saw",
	)
	return t, nil
}
