package experiment

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"e2eqos/internal/obs"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// TestMetricsLintRegistries is the world half of the metrics-lint
// tier: every metric name actually registered by a running system —
// broker and transport — must be lowercase_snake, counters must end
// in _total, every metric must carry non-empty HELP text, and no
// registry may hold a duplicate (registration panics on violations,
// so building the world already proves most of it; the walk below
// keeps the rules visible and covers renames).
func TestMetricsLintRegistries(t *testing.T) {
	w, err := BuildWorld(WorldConfig{NumDomains: 3, EnableObs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	snake := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	check := func(owner string, reg *obs.Registry) {
		names := reg.Names()
		if len(names) == 0 {
			t.Errorf("%s registry is empty", owner)
		}
		seen := make(map[string]bool)
		for _, n := range names {
			if !snake.MatchString(n) {
				t.Errorf("%s metric %q is not lowercase_snake", owner, n)
			}
			if seen[n] {
				t.Errorf("%s metric %q appears twice", owner, n)
			}
			seen[n] = true
			if reg.Help(n) == "" {
				t.Errorf("%s metric %q has empty HELP text", owner, n)
			}
		}
	}
	for domain, reg := range w.Metrics {
		check(domain, reg)
	}
	check("network", w.NetMetrics)
}

// TestFaultSweepReportsObsColumns runs one tiny cell of the faults
// experiment and checks the table now carries the broker metric
// columns — the acceptance criterion that a loss sweep answers
// "what machinery fired" from metrics alone.
func TestFaultSweepReportsObsColumns(t *testing.T) {
	tbl, err := RunFaultSweep(FaultSweepConfig{
		Domains:      3,
		Probs:        []float64{0.15},
		Trials:       8,
		CallTimeout:  60 * time.Millisecond,
		RetryBudgets: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tbl.Columns, " ")
	for _, col := range []string{"bb retries", "breaker opens", "rollbacks", "replays"} {
		if !strings.Contains(joined, col) {
			t.Errorf("fault table missing column %q (have %s)", col, joined)
		}
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(tbl.Rows))
	}
}

// TestFaultyWorldCountsRobustnessMetrics drives traced reservations
// through a lossy chain until the retry machinery has demonstrably
// fired, then asserts the world-level counters recorded it.
func TestFaultyWorldCountsRobustnessMetrics(t *testing.T) {
	seed := int64(7)
	w, err := BuildWorld(WorldConfig{
		NumDomains:   3,
		EnableObs:    true,
		CallTimeout:  60 * time.Millisecond,
		MaxRetries:   2,
		RetryBackoff: 2 * time.Millisecond,
		WrapDialer: func(domain string, d transport.Dialer) transport.Dialer {
			fd := transport.NewFaultyDialer(d, transport.FaultConfig{
				SendDropProb: 0.15,
				RecvDropProb: 0.15,
				Seed:         seed,
			})
			seed++
			return fd
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	deadline := time.Now().Add(20 * time.Second)
	for w.CounterTotal("bb_retries_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no retry recorded despite 15% loss on every link")
		}
		spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
		_, _ = u.ReserveE2E(spec)
	}
	if got := w.CounterTotal("bb_rars_received_total"); got == 0 {
		t.Error("no RARs counted as received")
	}
	// Sanity on the aggregated snapshot: every domain reports.
	if snaps := w.MetricsSnapshot(); len(snaps) != len(w.Domains) {
		t.Errorf("snapshot covers %d domains, want %d", len(snaps), len(w.Domains))
	}
}
