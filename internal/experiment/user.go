package experiment

import (
	"fmt"
	"sync"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/signalling"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// User is a testbed principal: key pair, identity certificate from the
// user CA, optional CAS credential, and a transport endpoint.
type User struct {
	world    *World
	Agent    *core.UserAgent
	Domain   string
	endpoint *transport.Endpoint

	// Trace, when set, stamps a fresh trace id onto every ReserveE2E so
	// the grant (or denial) comes back with per-hop spans.
	Trace bool

	mu      sync.Mutex
	clients map[string]*signalling.Client // domain -> client
}

// NewUser creates a user homed in domain (default: the first domain)
// holding the given CAS capabilities and group memberships.
func (w *World) NewUser(name, domain string, capabilities, groups []string) (*User, error) {
	if domain == "" {
		domain = w.SourceDomain()
	}
	if _, ok := w.BBs[domain]; !ok {
		return nil, fmt.Errorf("experiment: unknown domain %q", domain)
	}
	key, err := identity.GenerateKeyPair(identity.NewDN("Grid", domain, name))
	if err != nil {
		return nil, err
	}
	cert, err := w.UserCA.IssueIdentity(key.DN, key.Public(), 0)
	if err != nil {
		return nil, err
	}
	var agent *core.UserAgent
	if len(capabilities) > 0 {
		w.CAS.Grant(key.DN, capabilities...)
		c, err := w.CAS.Login(key.DN)
		if err != nil {
			return nil, err
		}
		agent, err = core.NewUserAgent(key, cert, c)
		if err != nil {
			return nil, err
		}
	} else {
		agent, err = core.NewUserAgent(key, cert, nil)
		if err != nil {
			return nil, err
		}
	}
	for _, g := range groups {
		w.Groups.AddMember(g, key.DN)
	}
	return &User{
		world:    w,
		Agent:    agent,
		Domain:   domain,
		endpoint: w.Net.NewEndpoint(key.DN, cert.DER),
		clients:  make(map[string]*signalling.Client),
	}, nil
}

// DN returns the user identity.
func (u *User) DN() identity.DN { return u.Agent.Key.DN }

// clientTo returns (caching) a client to a domain's broker.
func (u *User) clientTo(domain string) (*signalling.Client, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if c, ok := u.clients[domain]; ok {
		return c, nil
	}
	c, err := signalling.Dial(u.endpoint, u.world.BBAddr(domain))
	if err != nil {
		return nil, err
	}
	c.Wire = u.world.wire
	// A user call may fan out across every hop of the chain before a
	// result comes back, so its deadline is the per-hop budget scaled
	// by the worst-case path length (plus one hop of slack).
	if t := u.world.callTimeout; t > 0 {
		c.Timeout = t * time.Duration(len(u.world.Domains)+1)
	}
	u.clients[domain] = c
	return c, nil
}

// Close tears down the user's connections.
func (u *User) Close() {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, c := range u.clients {
		c.Close()
	}
	u.clients = make(map[string]*signalling.Client)
}

// SpecOptions parameterise NewSpec.
type SpecOptions struct {
	DestDomain string
	Bandwidth  units.Bandwidth
	Window     units.Window
	Tunnel     bool
	Assertions []string
	Linked     map[string]string
}

// NewSpec builds a reservation spec from the user's home domain to
// dest.
func (u *User) NewSpec(opt SpecOptions) *core.Spec {
	w := opt.Window
	if !w.Valid() {
		w = units.NewWindow(u.world.clock().Add(time.Minute), time.Hour)
	}
	return &core.Spec{
		RARID:         core.NewRARID(),
		User:          u.DN(),
		SrcHost:       "host." + u.Domain,
		DstHost:       "host." + opt.DestDomain,
		SourceDomain:  u.Domain,
		DestDomain:    opt.DestDomain,
		Bandwidth:     opt.Bandwidth,
		Window:        w,
		Tunnel:        opt.Tunnel,
		Assertions:    opt.Assertions,
		LinkedHandles: opt.Linked,
	}
}

// buildRARFor constructs RAR_U addressed to the given domain's broker.
func (u *User) buildRARFor(spec *core.Spec, domain string) (*envelope.Envelope, error) {
	cert, ok := u.world.BBCerts[domain]
	if !ok {
		return nil, fmt.Errorf("experiment: no broker certificate for %s", domain)
	}
	return u.Agent.BuildRAR(spec, cert)
}

// ReserveE2E performs the paper's hop-by-hop reservation: the user
// contacts only the source-domain broker, which propagates the RAR
// downstream.
func (u *User) ReserveE2E(spec *core.Spec) (*signalling.ResultPayload, error) {
	rar, err := u.buildRARFor(spec, u.Domain)
	if err != nil {
		return nil, err
	}
	msg, err := signalling.NewReserveMessage(signalling.ModeEndToEnd, rar)
	if err != nil {
		return nil, err
	}
	if u.Trace {
		msg.Reserve.TraceID = obs.NewTraceID()
	}
	client, err := u.clientTo(u.Domain)
	if err != nil {
		return nil, err
	}
	resp, err := client.Call(msg)
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("experiment: broker sent no result")
	}
	return resp.Result, nil
}

// ReserveLocalAt performs a single-domain reservation at the given
// domain's broker — the building block of the source-domain baseline
// (Approach 1). The user must be authenticatable by that broker.
func (u *User) ReserveLocalAt(domain string, spec *core.Spec) (*signalling.ResultPayload, error) {
	rar, err := u.buildRARFor(spec, domain)
	if err != nil {
		return nil, err
	}
	msg, err := signalling.NewReserveMessage(signalling.ModeLocal, rar)
	if err != nil {
		return nil, err
	}
	client, err := u.clientTo(domain)
	if err != nil {
		return nil, err
	}
	resp, err := client.Call(msg)
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("experiment: broker sent no result")
	}
	return resp.Result, nil
}

// TunnelBatch sends a batched sub-flow request directly to one end
// domain's broker — the tunnel hot path: "users authorized to use this
// tunnel ... contact just the two end domains". The caller controls the
// payload (including BatchID), so tests can retransmit a batch
// verbatim and load generators can size batches freely.
func (u *User) TunnelBatch(domain string, payload *signalling.TunnelBatchPayload) (*signalling.ResultPayload, error) {
	client, err := u.clientTo(domain)
	if err != nil {
		return nil, err
	}
	resp, err := client.Call(&signalling.Message{Type: signalling.MsgTunnelBatch, TunnelBatch: payload})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("experiment: broker sent no result")
	}
	return resp.Result, nil
}

// Cancel withdraws a reservation starting at the given domain (the
// cancel propagates along the recorded path).
func (u *User) Cancel(domain, rarID string) error {
	client, err := u.clientTo(domain)
	if err != nil {
		return err
	}
	resp, err := client.Call(&signalling.Message{
		Type:   signalling.MsgCancel,
		Cancel: &signalling.CancelPayload{RARID: rarID},
	})
	if err != nil {
		return err
	}
	if resp.Result == nil || !resp.Result.Granted {
		reason := "no result"
		if resp.Result != nil {
			reason = resp.Result.Reason
		}
		return fmt.Errorf("experiment: cancel refused: %s", reason)
	}
	return nil
}

// VerifyApprovals checks every signed domain approval in a grant
// against the corresponding broker key.
func (w *World) VerifyApprovals(res *signalling.ResultPayload) error {
	for i := range res.Approvals {
		a := &res.Approvals[i]
		cert, ok := w.BBCerts[a.Domain]
		if !ok {
			return fmt.Errorf("experiment: approval from unknown domain %s", a.Domain)
		}
		if err := signalling.VerifyApproval(a, cert.PublicKey()); err != nil {
			return err
		}
	}
	return nil
}
