package experiment

import (
	"sort"
	"time"

	"e2eqos/internal/resv"
	"e2eqos/internal/units"
)

// Cross-cutting invariant checkers, asserted after every scenario.
// They re-derive ground truth from the reservation tables and compare
// it against the engine's own ledger — the point is to catch admission
// or bookkeeping regressions, so nothing here trusts the code path
// that produced the state. A failed check lands in e.violations and
// fails the whole fleet run.

// checkInvariants runs the battery and returns the names of the
// checks that passed (violations accumulate separately).
func (e *fleetEngine) checkInvariants() []string {
	var passed []string
	if e.checkCapacity() {
		passed = append(passed, "granted<=capacity")
	}
	if e.checkLedger() {
		passed = append(passed, "zero-lost-or-double-grants")
	}
	if e.checkCommittedSums() {
		passed = append(passed, "aggregate-sums-consistent")
	}
	if e.checkDrained() {
		passed = append(passed, "drained-to-zero")
	}
	return passed
}

// checkCapacity asserts that no admission shard is overcommitted at
// any point of the scenario: the peak committed bandwidth over the
// whole horizon must leave Available non-negative.
func (e *fleetEngine) checkCapacity() bool {
	ok := true
	whole := units.Window{Start: fleetEpoch, End: e.at(e.sim.Now() + fleetWindowSlack)}
	for _, d := range e.domains {
		for _, shard := range d.shards {
			if avail := shard.Available(whole); avail < 0 {
				e.violate("shard %s overcommitted: available %v", shard.Name(), avail)
				ok = false
			}
		}
	}
	return ok
}

// checkLedger cross-checks every booking the engine ever granted
// against the tables: live bookings must exist exactly once with
// matching bandwidth (zero lost grants), and no shard may hold a
// granted reservation the ledger doesn't know (zero double grants).
func (e *fleetEngine) checkLedger() bool {
	ok := true
	// Every handle the ledger thinks is live.
	liveHandles := make(map[string]units.Bandwidth)
	flows := make([]string, 0, len(e.bookings))
	for f := range e.bookings {
		flows = append(flows, f)
	}
	sort.Strings(flows)
	for _, f := range flows {
		b := e.bookings[f]
		for i, di := range b.path {
			shard := e.domains[di].shards[e.userShard[b.user]]
			r, found := shard.Lookup(b.handles[i])
			if b.cancelled {
				// A cancelled booking may already be compacted away;
				// if still visible it must not consume capacity.
				if found && r.Status == resv.Granted {
					e.violate("cancelled booking %s still granted as %s", f, b.handles[i])
					ok = false
				}
				continue
			}
			liveHandles[b.handles[i]] = b.bw
			if !found {
				e.violate("lost grant: %s handle %s missing from %s", f, b.handles[i], shard.Name())
				ok = false
				continue
			}
			if r.Status != resv.Granted || r.Bandwidth != b.bw {
				e.violate("grant %s mutated: status %v bw %v (want %v)", b.handles[i], r.Status, r.Bandwidth, b.bw)
				ok = false
			}
		}
	}
	// Every granted table entry must be in the ledger.
	for _, d := range e.domains {
		for _, shard := range d.shards {
			for _, r := range shard.All() {
				if r.Status != resv.Granted {
					continue
				}
				if _, known := liveHandles[r.Handle]; !known {
					e.violate("double grant: %s holds %s the ledger never granted (or already cancelled)", shard.Name(), r.Handle)
					ok = false
				}
			}
		}
	}
	return ok
}

// checkCommittedSums asserts the running aggregate each domain pushed
// to its policer equals the table-derived committed bandwidth.
func (e *fleetEngine) checkCommittedSums() bool {
	ok := true
	now := e.at(e.sim.Now())
	for _, d := range e.domains {
		var fromTables units.Bandwidth
		for _, shard := range d.shards {
			fromTables += shard.CommittedAt(now)
		}
		if fromTables != d.committed {
			e.violate("domain %s aggregate drift: tables say %v, running sum %v", d.name, fromTables, d.committed)
			ok = false
		}
	}
	return ok
}

// checkDrained asserts scenario teardown released everything: after
// drain, every domain's committed aggregate is zero.
func (e *fleetEngine) checkDrained() bool {
	if !e.drained {
		return false
	}
	ok := true
	now := e.at(e.sim.Now())
	for _, d := range e.domains {
		if d.committed != 0 {
			e.violate("domain %s not drained: %v still committed", d.name, d.committed)
			ok = false
		}
		for _, shard := range d.shards {
			if c := shard.CommittedAt(now); c != 0 {
				e.violate("shard %s not drained: %v committed", shard.Name(), c)
				ok = false
			}
		}
	}
	return ok
}

// checkCompactionBounded is the churn scenario's extra check: the
// tables must not accumulate every reservation ever admitted. After a
// forced compact one retention past the horizon, nothing may remain.
func (e *fleetEngine) checkCompactionBounded(totalAdmits int64) bool {
	ok := true
	var lenBefore int64
	for _, d := range e.domains {
		for _, shard := range d.shards {
			lenBefore += int64(shard.Len())
		}
	}
	if totalAdmits > 1000 && lenBefore >= totalAdmits {
		e.violate("compaction never ran: %d entries retained of %d admits", lenBefore, totalAdmits)
		ok = false
	}
	horizon := e.at(e.sim.Now() + resv.DefaultRetention + fleetWindowSlack + time.Minute)
	for _, d := range e.domains {
		for _, shard := range d.shards {
			shard.Compact(horizon)
			if n := shard.Len(); n != 0 {
				e.violate("shard %s leaked %d entries past retention", shard.Name(), n)
				ok = false
			}
		}
	}
	return ok
}
