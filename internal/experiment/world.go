// Package experiment builds complete multi-domain testbeds: per-domain
// CAs, brokers, policy servers and reservation tables wired over an
// in-memory network with configurable signalling latency, plus the
// shared CAS and group servers. Every figure experiment, the bb/gara
// test suites and the benchmark harness build on it.
package experiment

import (
	"fmt"
	"log/slog"
	"path/filepath"
	"time"

	"e2eqos/internal/bb"
	"e2eqos/internal/cas"
	"e2eqos/internal/cpusched"
	"e2eqos/internal/dataplane"
	"e2eqos/internal/dataplane/netsimdp"
	"e2eqos/internal/disksched"
	"e2eqos/internal/group"
	"e2eqos/internal/identity"
	"e2eqos/internal/journal"
	"e2eqos/internal/obs"
	"e2eqos/internal/pki"
	"e2eqos/internal/policy"
	"e2eqos/internal/policysrv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/sla"
	"e2eqos/internal/topology"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// WorldConfig parameterises a testbed.
type WorldConfig struct {
	// NumDomains builds a linear chain when Topo is nil.
	NumDomains int
	// Labels optionally names the domains (default Domain0..N-1).
	Labels []string
	// Topo overrides the linear default.
	Topo *topology.Topology
	// Capacity is each domain's premium aggregate (default 100 Mb/s).
	Capacity units.Bandwidth
	// Capacities overrides Capacity for specific domains.
	Capacities map[string]units.Bandwidth
	// SLARate is the contracted peering rate (default Capacity).
	SLARate units.Bandwidth
	// Latency is the one-way signalling latency (default 0).
	Latency time.Duration
	// Policies maps domain name -> policy; missing domains get
	// "allow if bw <= avail; deny".
	Policies map[string]*policy.Policy
	// IntroducerDepth is each broker's trust-chain limit (default 16).
	IntroducerDepth int
	// TrustUserCAEverywhere makes every broker root the user CA — the
	// requirement of the source-domain baseline ("each BB must know
	// about (and be able to authenticate) Alice").
	TrustUserCAEverywhere bool
	// TrustedGroups lists group names every policy server delegates to
	// the shared group server.
	TrustedGroups []string
	// CPUs gives a domain a CPU manager of that many processors.
	CPUs map[string]int
	// Disks gives a domain a disk-bandwidth manager of that rate.
	Disks map[string]units.Bandwidth
	// Clock is the shared time source (default time.Now).
	Clock func() time.Time
	// Seed seeds every deterministic driver built on the world (the
	// scenario fleet's RNG streams); it never feeds from the date or
	// any other ambient source. Zero means 1.
	Seed uint64
	// DataPlaneFor, when set, supplies the data plane each broker
	// replica is wired against. Nil gives every broker an unattached
	// netsim backend (enforcement begins when an experiment attaches
	// edge/policer devices through NetsimPlane).
	DataPlaneFor func(domain string, replica int) dataplane.DataPlane

	// CallTimeout bounds every signalling call made by brokers and by
	// users created with NewUser (0 = wait forever).
	CallTimeout time.Duration
	// MaxRetries / RetryBackoff / BreakerThreshold / BreakerCooldown
	// mirror the bb.Config robustness knobs for every broker.
	MaxRetries       int
	RetryBackoff     time.Duration
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxPaths / SplitParts mirror the bb.Config multipath knobs:
	// MaxPaths > 1 lets every ingress re-route across that many disjoint
	// paths, SplitParts >= 2 enables splitting one reservation across
	// paths when no single path carries it.
	MaxPaths   int
	SplitParts int
	// WrapDialer, when set, wraps each broker's outbound dialer —
	// the hook the fault-injection experiments use to subject a
	// specific hop to failure.
	WrapDialer func(domain string, d transport.Dialer) transport.Dialer

	// EnableObs gives every broker its own metrics registry (exposed as
	// World.Metrics) and wires transport counters onto the shared
	// in-memory network. Off by default: most experiments and the
	// benchmarks measure the uninstrumented baseline.
	EnableObs bool
	// EventsDir, when set, gives every broker a flight recorder writing
	// to EventsDir/<domain>; SampleRate is each broker's ingress
	// sampling probability (denials and errors are always recorded).
	// Recorders survive CrashDomain/RestartDomainFromJournal — like a
	// real deployment, the event log outlives the broker process — and
	// close with the world.
	EventsDir  string
	SampleRate float64

	// StateDir, when set, makes every broker durable: each journals to
	// its own subdirectory StateDir/<domain>, and
	// RestartDomainFromJournal can rebuild a crashed broker from it.
	// Empty keeps brokers memory-only.
	StateDir string
	// Replicas > 1 makes every domain's broker a replica group of that
	// size: replica 0 boots as leader serving the domain's well-known
	// address, the rest boot as followers listening only on their
	// replica addresses ("bb.<domain>.r<i>"). Requires StateDir — the
	// replication stream is the journal. KillLeader / PromoteReplica
	// / PromoteAny drive failover.
	Replicas int
	// ElectionTimeout, when set with Replicas > 1, arms automatic
	// failover: a follower that hears nothing from its leader for this
	// long (id-staggered) stands for election on its own. Zero keeps
	// elections manual (PromoteReplica / PromoteAny).
	ElectionTimeout time.Duration
	// FsyncPolicy selects the journal durability policy for every
	// broker: "batch" (default), "always" or "never". Only meaningful
	// with StateDir set.
	FsyncPolicy string
	// Wire selects the signalling encoding ("binary" default, or
	// "json" for the debug/interop mode) used by every broker's
	// outbound calls and every user created with NewUser.
	Wire string
	// Logger, when set, receives every broker's structured log records
	// (each stamped with its domain). Nil keeps brokers silent.
	Logger *slog.Logger
}

// World is a running testbed.
type World struct {
	Net     *transport.Network
	Topo    *topology.Topology
	Domains []string
	BBs     map[string]*bb.BB
	BBCerts map[string]*pki.Certificate
	// UserCA issues end-user certificates (it is domain 0's CA).
	UserCA *pki.CA
	CAS    *cas.Server
	Groups *group.Server
	Policy map[string]*policysrv.Server
	CPU    map[string]*cpusched.Manager
	Disk   map[string]*disksched.Manager
	Planes map[string]dataplane.DataPlane
	// Seed is the deterministic seed the world was built with (from
	// WorldConfig.Seed; zero becomes 1).
	Seed uint64
	// Metrics holds each domain's broker registry (nil unless
	// WorldConfig.EnableObs); NetMetrics aggregates transport counters
	// across the whole in-memory network.
	Metrics    map[string]*obs.Registry
	NetMetrics *obs.Registry
	// Recorders holds each domain's flight recorder (nil map entries
	// unless WorldConfig.EventsDir).
	Recorders map[string]*obs.Recorder

	servers   map[string]*signalling.Server
	endpoints map[string]*transport.Endpoint
	addrs     map[identity.DN]string
	// brokerCfgs remembers each broker's assembly config so
	// RestartDomainFromJournal can rebuild it from scratch.
	brokerCfgs  map[string]bb.Config
	replicas    map[string]*replicaGroup
	enableObs   bool
	clock       func() time.Time
	callTimeout time.Duration
	wire        signalling.WireMode
}

// replicaGroup tracks one domain's replica set: every broker ever
// built for the domain (dead ones stay, marked), their endpoints and
// replica-address listeners, and which replica currently fronts the
// domain's well-known address.
type replicaGroup struct {
	brokers   []*bb.BB
	endpoints []*transport.Endpoint
	planes    []dataplane.DataPlane
	recorders []*obs.Recorder
	servers   map[int]*signalling.Server // replica-address listeners
	alive     []bool
	leader    int
}

// addrOf is the in-memory address convention for a broker.
func addrOf(domain string) string { return "bb." + domain }

// replicaAddrOf is the address convention for one member of a
// domain's replica group; the leader additionally serves addrOf.
func replicaAddrOf(domain string, i int) string {
	return fmt.Sprintf("bb.%s.r%d", domain, i)
}

// BuildWorld assembles and starts a testbed.
func BuildWorld(cfg WorldConfig) (*World, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 100 * units.Mbps
	}
	if cfg.SLARate <= 0 {
		cfg.SLARate = cfg.Capacity
	}
	if cfg.IntroducerDepth <= 0 {
		cfg.IntroducerDepth = 16
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	topo := cfg.Topo
	if topo == nil {
		if cfg.NumDomains < 1 {
			return nil, fmt.Errorf("experiment: need at least one domain")
		}
		var err error
		topo, err = topology.Linear(cfg.NumDomains, cfg.Capacity, cfg.Labels...)
		if err != nil {
			return nil, err
		}
	}
	w := &World{
		Net:         transport.NewNetwork(cfg.Latency),
		Topo:        topo,
		Seed:        cfg.Seed,
		Domains:     topo.Domains(),
		BBs:         make(map[string]*bb.BB),
		BBCerts:     make(map[string]*pki.Certificate),
		Policy:      make(map[string]*policysrv.Server),
		CPU:         make(map[string]*cpusched.Manager),
		Disk:        make(map[string]*disksched.Manager),
		Planes:      make(map[string]dataplane.DataPlane),
		Metrics:     make(map[string]*obs.Registry),
		Recorders:   make(map[string]*obs.Recorder),
		servers:     make(map[string]*signalling.Server),
		endpoints:   make(map[string]*transport.Endpoint),
		addrs:       make(map[identity.DN]string),
		brokerCfgs:  make(map[string]bb.Config),
		replicas:    make(map[string]*replicaGroup),
		enableObs:   cfg.EnableObs,
		clock:       cfg.Clock,
		callTimeout: cfg.CallTimeout,
	}
	fsync, err := journal.ParsePolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	w.wire, err = signalling.ParseWireMode(cfg.Wire)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if cfg.EnableObs {
		w.NetMetrics = obs.NewRegistry()
		w.Net.Metrics = transport.NewMetrics(w.NetMetrics)
	}

	// Shared authorization infrastructure.
	casKey, err := identity.GenerateKeyPair(identity.NewDN("ESnet", "", "CAS"))
	if err != nil {
		return nil, err
	}
	w.CAS = cas.NewServer(casKey, "ESnet", 12*time.Hour)
	gsKey, err := identity.GenerateKeyPair(identity.NewDN("CERN", "", "vo-server"))
	if err != nil {
		return nil, err
	}
	w.Groups = group.NewServer(gsKey, time.Hour)

	// Per-domain material.
	type domainMaterial struct {
		ca    *pki.CA
		key   *identity.KeyPair
		cert  *pki.Certificate
		trust *pki.TrustStore
	}
	mat := make(map[string]*domainMaterial, len(w.Domains))
	for i, name := range w.Domains {
		ca, err := pki.NewCA(identity.NewDN("Grid", name, "CA"))
		if err != nil {
			return nil, err
		}
		d, _ := topo.Domain(name)
		key, err := identity.GenerateKeyPair(d.BBDN)
		if err != nil {
			return nil, err
		}
		cert, err := ca.IssueIdentity(key.DN, key.Public(), 0, "bb")
		if err != nil {
			return nil, err
		}
		trust := pki.NewTrustStore(cfg.IntroducerDepth)
		mat[name] = &domainMaterial{ca: ca, key: key, cert: cert, trust: trust}
		w.BBCerts[name] = cert
		w.addrs[key.DN] = addrOf(name)
		if i == 0 {
			w.UserCA = ca
		}
	}

	// Trust wiring: each broker roots its own CA (local users), pins
	// its peers, and — in baseline mode — roots the user CA.
	for name, m := range mat {
		own := &pki.Certificate{Cert: m.ca.Certificate(), DER: m.ca.CertificateDER()}
		if err := m.trust.AddRoot(own); err != nil {
			return nil, err
		}
		if cfg.TrustUserCAEverywhere && w.UserCA != nil {
			userRoot := &pki.Certificate{Cert: w.UserCA.Certificate(), DER: w.UserCA.CertificateDER()}
			if err := m.trust.AddRoot(userRoot); err != nil {
				return nil, err
			}
		}
		for _, neighbor := range topo.Neighbors(name) {
			nm := mat[neighbor]
			m.trust.PinPeer(nm.key.DN, nm.key.Public())
		}
	}

	// Brokers.
	for _, name := range w.Domains {
		m := mat[name]
		pol := cfg.Policies[name]
		if pol == nil {
			pol = policy.MustParse("default-"+name, "allow if bw <= avail\ndeny")
		}
		ps := policysrv.New(name, pol)
		ps.SetClock(cfg.Clock)
		ps.TrustCAS(w.CAS.Community(), w.CAS.Key().Public())
		for _, g := range cfg.TrustedGroups {
			ps.TrustGroupServer(g, w.Groups)
		}
		w.Policy[name] = ps

		inbound := make(map[string]*sla.SLA)
		peerCerts := make(map[identity.DN]*pki.Certificate)
		for _, neighbor := range topo.Neighbors(name) {
			nm := mat[neighbor]
			inbound[neighbor] = &sla.SLA{
				Upstream:   neighbor,
				Downstream: name,
				Service: sla.SLS{
					Profile:     sla.TrafficProfile{Rate: cfg.SLARate, BucketBytes: 64_000},
					Excess:      sla.Drop,
					MaxLatency:  5 * time.Millisecond,
					Reliability: 0.999,
				},
				UpstreamBBDN:        nm.key.DN,
				DownstreamBBDN:      m.key.DN,
				UpstreamBBCertDER:   nm.cert.DER,
				DownstreamBBCertDER: m.cert.DER,
			}
			peerCerts[nm.key.DN] = nm.cert
		}

		var cpuMgr *cpusched.Manager
		if n := cfg.CPUs[name]; n > 0 {
			cpuMgr, err = cpusched.NewManager(name, n)
			if err != nil {
				return nil, err
			}
			w.CPU[name] = cpuMgr
		}
		var diskMgr *disksched.Manager
		if rate := cfg.Disks[name]; rate > 0 {
			diskMgr, err = disksched.NewManager(name, rate)
			if err != nil {
				return nil, err
			}
			w.Disk[name] = diskMgr
		}

		capacity := cfg.Capacity
		if c, ok := cfg.Capacities[name]; ok {
			capacity = c
		}
		replicas := 1
		var replicaAddrs map[int]string
		if cfg.Replicas > 1 {
			if cfg.StateDir == "" {
				return nil, fmt.Errorf("experiment: Replicas > 1 requires StateDir (the replication stream is the journal)")
			}
			replicas = cfg.Replicas
			replicaAddrs = make(map[int]string, replicas)
			for i := 0; i < replicas; i++ {
				replicaAddrs[i] = replicaAddrOf(name, i)
			}
			w.replicas[name] = &replicaGroup{servers: make(map[int]*signalling.Server)}
		}
		for i := 0; i < replicas; i++ {
			endpoint := w.Net.NewEndpoint(m.key.DN, m.cert.DER)
			var dialer transport.Dialer = endpoint
			if cfg.WrapDialer != nil {
				dialer = cfg.WrapDialer(name, endpoint)
			}
			var plane dataplane.DataPlane = netsimdp.New()
			if cfg.DataPlaneFor != nil {
				plane = cfg.DataPlaneFor(name, i)
			}
			var reg *obs.Registry
			if cfg.EnableObs {
				reg = obs.NewRegistry()
			}
			var recorder *obs.Recorder
			if cfg.EventsDir != "" {
				dir := filepath.Join(cfg.EventsDir, name)
				if replicas > 1 {
					dir = filepath.Join(dir, fmt.Sprintf("r%d", i))
				}
				recorder, err = obs.OpenRecorder(obs.RecorderOptions{Dir: dir})
				if err != nil {
					return nil, fmt.Errorf("experiment: %w", err)
				}
			}
			bcfg := bb.Config{
				Domain:           name,
				Key:              m.key,
				Cert:             m.cert,
				Trust:            m.trust,
				Policy:           ps,
				Capacity:         capacity,
				Topo:             topo,
				InboundSLAs:      inbound,
				PeerCerts:        peerCerts,
				PeerAddrs:        w.addrs,
				Dialer:           dialer,
				CPU:              cpuMgr,
				Disk:             diskMgr,
				Plane:            plane,
				Clock:            cfg.Clock,
				CallTimeout:      cfg.CallTimeout,
				MaxRetries:       cfg.MaxRetries,
				RetryBackoff:     cfg.RetryBackoff,
				BreakerThreshold: cfg.BreakerThreshold,
				BreakerCooldown:  cfg.BreakerCooldown,
				MaxPaths:         cfg.MaxPaths,
				SplitParts:       cfg.SplitParts,
				Logger:           cfg.Logger,
				Metrics:          reg,
				Wire:             w.wire,
				Recorder:         recorder,
				SampleRate:       cfg.SampleRate,
			}
			if cfg.StateDir != "" {
				sd := filepath.Join(cfg.StateDir, name)
				if replicas > 1 {
					sd = filepath.Join(sd, fmt.Sprintf("r%d", i))
				}
				bcfg.StateDir = sd
				bcfg.Fsync = fsync
			}
			if replicas > 1 {
				bcfg.ReplicaID = i
				bcfg.ReplicaAddrs = replicaAddrs
				bcfg.StartAsFollower = i != 0
				bcfg.ElectionTimeout = cfg.ElectionTimeout
			}
			broker, err := bb.New(bcfg)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				// Replica 0 (or the sole broker) fronts the domain: it is
				// what the rest of the world sees through addrOf.
				w.brokerCfgs[name] = bcfg
				w.BBs[name] = broker
				w.endpoints[name] = endpoint
				w.Planes[name] = plane
				if reg != nil {
					w.Metrics[name] = reg
				}
				if recorder != nil {
					w.Recorders[name] = recorder
				}
			}
			if g := w.replicas[name]; g != nil {
				g.brokers = append(g.brokers, broker)
				g.endpoints = append(g.endpoints, endpoint)
				g.planes = append(g.planes, plane)
				g.recorders = append(g.recorders, recorder)
				g.alive = append(g.alive, true)
				ln, err := endpoint.Listen(replicaAddrs[i])
				if err != nil {
					return nil, err
				}
				srv := signalling.NewServer(broker, broker.Logger())
				g.servers[i] = srv
				go srv.Serve(ln)
			}
		}
		if err := w.startDomain(name); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// startDomain listens at the domain's well-known address and serves
// its broker, tracking the server for StopDomain/Close.
func (w *World) startDomain(name string) error {
	broker, ok := w.BBs[name]
	if !ok {
		return fmt.Errorf("experiment: unknown domain %q", name)
	}
	ln, err := w.endpoints[name].Listen(addrOf(name))
	if err != nil {
		return err
	}
	srv := signalling.NewServer(broker, broker.Logger())
	w.servers[name] = srv
	go srv.Serve(ln)
	return nil
}

// StopDomain kills a domain's broker frontend: its listener and every
// established signalling connection drop, exactly as if the broker
// process died. The broker's in-memory state (tables, routes) is kept,
// so RestartDomain models a fast restart with state intact.
func (w *World) StopDomain(name string) error {
	srv, ok := w.servers[name]
	if !ok {
		return fmt.Errorf("experiment: domain %q is not running", name)
	}
	srv.Shutdown()
	delete(w.servers, name)
	return nil
}

// RestartDomain brings a stopped domain's broker frontend back at the
// same address; peers reconnect on their next call.
func (w *World) RestartDomain(name string) error {
	if _, running := w.servers[name]; running {
		return fmt.Errorf("experiment: domain %q is already running", name)
	}
	return w.startDomain(name)
}

// CrashDomain kills a domain the hard way: the frontend drops (like
// StopDomain) and the broker itself dies mid-flight — outbound clients
// close and its journal is abandoned without a flush, exactly as a
// killed process would leave it. Only RestartDomainFromJournal can
// bring the domain back.
func (w *World) CrashDomain(name string) error {
	if w.replicas[name] != nil {
		return fmt.Errorf("experiment: domain %q is a replica group; use KillLeader", name)
	}
	if err := w.StopDomain(name); err != nil {
		return err
	}
	w.BBs[name].Crash()
	return nil
}

// RestartDomainFromJournal rebuilds a stopped (or crashed) domain's
// broker from scratch and brings its frontend back: the new broker
// recovers its reservation table and RAR replay cache from the journal
// directory the old one wrote. Requires WorldConfig.StateDir. The
// rebuilt broker gets a fresh metrics registry (metric names register
// exactly once per registry), which replaces the domain's entry in
// World.Metrics.
func (w *World) RestartDomainFromJournal(name string) error {
	if w.replicas[name] != nil {
		return fmt.Errorf("experiment: domain %q is a replica group; use PromoteReplica", name)
	}
	if _, running := w.servers[name]; running {
		return fmt.Errorf("experiment: domain %q is already running", name)
	}
	bcfg, ok := w.brokerCfgs[name]
	if !ok {
		return fmt.Errorf("experiment: unknown domain %q", name)
	}
	if bcfg.StateDir == "" {
		return fmt.Errorf("experiment: domain %q has no journal (WorldConfig.StateDir unset)", name)
	}
	if old, ok := w.BBs[name]; ok {
		old.Close() // idempotent after Crash; releases any leftover clients
	}
	if w.enableObs {
		reg := obs.NewRegistry()
		w.Metrics[name] = reg
		bcfg.Metrics = reg
	}
	broker, err := bb.New(bcfg)
	if err != nil {
		return fmt.Errorf("experiment: rebuilding %q from journal: %w", name, err)
	}
	w.brokerCfgs[name] = bcfg
	w.BBs[name] = broker
	return w.startDomain(name)
}

// ---------------------------------------------------------------------
// Replica-group failover controls.

// LeaderOf returns the replica currently fronting the domain's
// well-known address (-1 for an unreplicated domain).
func (w *World) LeaderOf(name string) int {
	g := w.replicas[name]
	if g == nil {
		return -1
	}
	return g.leader
}

// ReplicaBB returns one member of a domain's replica group (nil for
// unreplicated domains or out-of-range indices). Dead replicas are
// returned too — their tables are still inspectable.
func (w *World) ReplicaBB(name string, i int) *bb.BB {
	g := w.replicas[name]
	if g == nil || i < 0 || i >= len(g.brokers) {
		return nil
	}
	return g.brokers[i]
}

// KillLeader kills the domain's current leader the hard way: the
// public frontend and the leader's replica listener drop, and the
// broker dies mid-flight without a journal flush — outbound clients
// close, buffered batch-fsync records are lost, exactly as a killed
// process. Returns the killed replica's index. The domain serves
// nothing until PromoteReplica/PromoteAny installs a successor.
func (w *World) KillLeader(name string) (int, error) {
	g := w.replicas[name]
	if g == nil {
		return -1, fmt.Errorf("experiment: domain %q is not a replica group", name)
	}
	idx := g.leader
	if !g.alive[idx] {
		return -1, fmt.Errorf("experiment: domain %q leader (replica %d) is already dead", name, idx)
	}
	if srv, ok := w.servers[name]; ok {
		srv.Shutdown()
		delete(w.servers, name)
	}
	if srv, ok := g.servers[idx]; ok {
		srv.Shutdown()
		delete(g.servers, idx)
	}
	g.brokers[idx].Crash()
	g.alive[idx] = false
	return idx, nil
}

// PromoteReplica stands replica i for election and, on a win, makes it
// the domain's public face: the well-known address re-listens backed
// by the promoted broker, so peers' pooled clients transparently
// redial into the new leader. Fails if the replica is dead or loses
// the election (e.g. its applied sequence trails a voter's).
func (w *World) PromoteReplica(name string, i int) error {
	g := w.replicas[name]
	if g == nil {
		return fmt.Errorf("experiment: domain %q is not a replica group", name)
	}
	if i < 0 || i >= len(g.brokers) {
		return fmt.Errorf("experiment: domain %q has no replica %d", name, i)
	}
	if !g.alive[i] {
		return fmt.Errorf("experiment: replica %d of %q is dead", i, name)
	}
	if err := g.brokers[i].Promote(); err != nil {
		return err
	}
	g.leader = i
	w.BBs[name] = g.brokers[i]
	w.endpoints[name] = g.endpoints[i]
	w.Planes[name] = g.planes[i]
	if _, running := w.servers[name]; !running {
		return w.startDomain(name)
	}
	return nil
}

// PromoteAny promotes the first live replica that can win an election,
// returning its index. Replicas whose applied sequence trails a
// voter's lose — the election restriction that keeps every committed
// record on whoever wins — so this tries each in turn.
func (w *World) PromoteAny(name string) (int, error) {
	g := w.replicas[name]
	if g == nil {
		return -1, fmt.Errorf("experiment: domain %q is not a replica group", name)
	}
	var lastErr error
	for i := range g.brokers {
		if !g.alive[i] {
			continue
		}
		if err := w.PromoteReplica(name, i); err != nil {
			lastErr = err
			continue
		}
		return i, nil
	}
	return -1, fmt.Errorf("experiment: no replica of %q could win an election: %v", name, lastErr)
}

// Close stops all listeners, established connections, brokers and
// flight recorders.
func (w *World) Close() {
	for _, srv := range w.servers {
		srv.Shutdown()
	}
	w.servers = make(map[string]*signalling.Server)
	for _, g := range w.replicas {
		for _, srv := range g.servers {
			srv.Shutdown()
		}
		g.servers = make(map[int]*signalling.Server)
		for _, broker := range g.brokers {
			broker.Close()
		}
		for _, rec := range g.recorders {
			rec.Close()
		}
	}
	for _, broker := range w.BBs {
		broker.Close()
	}
	for _, rec := range w.Recorders {
		rec.Close()
	}
}

// SourceDomain returns the first domain (where users live by default).
func (w *World) SourceDomain() string { return w.Domains[0] }

// NetsimPlane returns the domain's data plane as the netsim backend,
// so experiments can attach packet-level devices to it. It returns
// nil when the domain was built with a different backend.
func (w *World) NetsimPlane(domain string) *netsimdp.Plane {
	p, _ := w.Planes[domain].(*netsimdp.Plane)
	return p
}

// DestDomain returns the last domain.
func (w *World) DestDomain() string { return w.Domains[len(w.Domains)-1] }

// BBAddr returns the signalling address of a domain's broker.
func (w *World) BBAddr(domain string) string { return addrOf(domain) }

// Clock returns the shared time source.
func (w *World) Clock() func() time.Time { return w.clock }

// CounterTotal sums one counter (or any scalar series) across every
// domain's registry — the world-level view of e.g.
// "bb_retries_total". Zero when observability is disabled.
func (w *World) CounterTotal(name string) float64 {
	var total float64
	for _, reg := range w.Metrics {
		if v, ok := reg.Snapshot()[name]; ok {
			total += v
		}
	}
	return total
}

// MetricsSnapshot returns each domain's point-in-time metric values,
// keyed by domain. Nil registries (obs disabled) yield no entries.
func (w *World) MetricsSnapshot() map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(w.Metrics))
	for name, reg := range w.Metrics {
		out[name] = reg.Snapshot()
	}
	return out
}
