package experiment

import (
	"fmt"
	"strings"
)

// Table is one experiment's result in printable form; the harness
// renders it both to stdout (cmd/experiments) and into EXPERIMENTS.md.
type Table struct {
	ID    string // experiment id, e.g. "fig4"
	Title string
	// Claim is the paper's qualitative statement this table checks.
	Claim   string
	Columns []string
	Rows    [][]string
	// Notes carry caveats and observations.
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "Paper claim: %s\n", t.Claim)
	}
	b.WriteByte('\n')
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Paper claim:* %s\n\n", t.Claim)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note:* %s\n", n)
	}
	return b.String()
}
