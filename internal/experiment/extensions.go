package experiment

import (
	"fmt"
	"time"

	"e2eqos/internal/billing"
	"e2eqos/internal/certrepo"
	"e2eqos/internal/dsim"
	"e2eqos/internal/identity"
	"e2eqos/internal/netsim"
	"e2eqos/internal/sla"
)

// RunKeyDistribution quantifies the §6.4 trade between the two key
// distribution designs the paper weighs: certificates inline in the
// request (+web of trust) versus a trusted certificate repository
// queried out of band. The inline design pays with message size; the
// repository design pays with online lookups and a single point of
// trust.
func RunKeyDistribution(maxHops int) (*Table, error) {
	if maxHops < 3 {
		maxHops = 8
	}
	t := &Table{
		ID:    "keydist",
		Title: "Key distribution: inline certificates vs trusted repository (§6.4)",
		Claim: "inline distribution offers a flexible trust framework; a repository needs a strong trust relationship and online lookups",
		Columns: []string{
			"path hops", "inline RAR bytes", "repo RAR bytes", "saved", "repo lookups at dest",
		},
	}
	for hops := 2; hops <= maxHops; hops += 2 {
		inline, err := keyDistWireSize(hops, false)
		if err != nil {
			return nil, err
		}
		lean, lookups, err := keyDistRepoRun(hops)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", hops),
			fmt.Sprintf("%d", inline),
			fmt.Sprintf("%d", lean),
			fmt.Sprintf("%.0f%%", 100*(1-float64(lean)/float64(inline))),
			fmt.Sprintf("%d", lookups),
		)
	}
	t.Notes = append(t.Notes,
		"the repository variant resolves every non-channel signer online; the paper prefers inline distribution because it \"offers a flexible framework for trust decisions\"",
	)
	return t, nil
}

func keyDistWireSize(hops int, omitCerts bool) (int, error) {
	w, err := BuildProtocolWorld(hops, false)
	if err != nil {
		return 0, err
	}
	if omitCerts {
		for _, b := range w.Brokers {
			b.OmitIntroducerCerts = true
		}
	}
	samples, err := w.Propagate(w.NewSpec())
	if err != nil {
		return 0, err
	}
	return samples[len(samples)-1].WireBytes, nil
}

func keyDistRepoRun(hops int) (wire int, lookups int64, err error) {
	w, err := BuildProtocolWorld(hops, false)
	if err != nil {
		return 0, 0, err
	}
	repoKey, err := identity.GenerateKeyPair(identity.NewDN("Grid", "", "repo"))
	if err != nil {
		return 0, 0, err
	}
	repo := certrepo.New(repoKey)
	if err := repo.Publish(w.User.Cert); err != nil {
		return 0, 0, err
	}
	for _, cert := range w.Certs {
		if err := repo.Publish(cert); err != nil {
			return 0, 0, err
		}
	}
	dir := &certrepo.Directory{Repo: repo, TrustedKey: repo.PublicKey()}
	for _, b := range w.Brokers {
		b.OmitIntroducerCerts = true
		b.Directory = dir
	}
	samples, err := w.Propagate(w.NewSpec())
	if err != nil {
		return 0, 0, err
	}
	return samples[len(samples)-1].WireBytes, repo.Lookups(), nil
}

// RunBilling demonstrates the transitive billing scheme of §6.4 on a
// measured flow: Alice's reservation carries traffic through the
// DiffServ simulator; the delivered bytes are settled along the
// signalling path, each domain billing its upstream neighbour and the
// source domain billing Alice.
func RunBilling(duration time.Duration) (*Table, error) {
	if duration <= 0 {
		duration = time.Second
	}
	w, err := BuildWorld(WorldConfig{NumDomains: 3, Labels: []string{"DomainA", "DomainB", "DomainC"}})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	alice, err := w.NewUser("Alice", "DomainA", nil, nil)
	if err != nil {
		return nil, err
	}
	defer alice.Close()

	// Reserve 10 Mb/s covering "now" and run traffic through a
	// minimal A->C pipeline.
	spec := alice.NewSpec(SpecOptions{DestDomain: "DomainC", Bandwidth: 10_000_000})
	spec.Window.Start = w.clock().Add(-time.Minute)
	res, err := alice.ReserveE2E(spec)
	if err != nil {
		return nil, err
	}
	if !res.Granted {
		return nil, fmt.Errorf("billing setup reservation denied: %s", res.Reason)
	}

	sim, sink, marker := buildSimplePipeline(w, spec.RARID)
	src := netsim.NewSource(sim, netsim.FlowID(spec.RARID), spec.Bandwidth, 1250, netsim.BestEffort, marker)
	if err := src.Install(0, duration); err != nil {
		return nil, err
	}
	sim.Run(duration + 100*time.Millisecond)

	stats := sink.Stats(netsim.FlowID(spec.RARID))
	if stats == nil {
		return nil, fmt.Errorf("billing: no traffic delivered")
	}

	// Each domain's ledger records the carried bytes; settle the path.
	ledger := billing.NewLedger("DomainC")
	if err := ledger.Record(spec.RARID, stats.RxBytes, spec.Bandwidth); err != nil {
		return nil, err
	}
	usage, _ := ledger.Usage(spec.RARID)
	parties := []billing.Party{
		{Domain: "DomainA", TransitRate: 100_000},
		{Domain: "DomainB", TransitRate: 50_000},
		{Domain: "DomainC", TransitRate: 200_000},
	}
	invoices, err := billing.SettlePath(parties, alice.DN(), usage)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "billing",
		Title: "Transitive billing along the reservation path (§6.4)",
		Claim: `"B as a transient domain would also bill traffic originating from a different domain using the related SLA. Finally, the source domain would bill the traffic against the originator."`,
		Columns: []string{
			"invoice", "bytes carried", "amount",
		},
	}
	for _, inv := range invoices {
		to := inv.To
		if to == "" {
			to = string(inv.ToUser)
		}
		t.AddRow(fmt.Sprintf("%s -> %s", inv.From, to), fmt.Sprintf("%d", inv.Bytes), inv.Amount.String())
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured delivery: %.2f Mb/s over %v; rates: A=0.10, B=0.05, C=0.20 per GB", stats.Goodput(0, duration)/1e6, duration),
		"each hop's invoice covers everything it owes downstream plus its own transit charge",
	)
	return t, nil
}

// buildSimplePipeline wires source-edge -> link -> sink and installs
// the flow's 10 Mb/s reservation profile at the edge (the reservation
// was granted before the data plane was attached, so the profile is
// programmed explicitly here).
func buildSimplePipeline(w *World, rarID string) (*dsim.Sim, *netsim.Sink, *netsim.EdgeMarker) {
	sim := dsim.New()
	sink := netsim.NewSink(sim)
	link := netsim.NewLink(sim, 100_000_000, time.Millisecond, 0, sink)
	marker := netsim.NewEdgeMarker(sim, link)
	w.NetsimPlane("DomainA").AttachEdge(marker)
	marker.InstallReservation(netsim.FlowID(rarID), sla.TrafficProfile{Rate: 10_000_000, BucketBytes: 30_000})
	return sim, sink, marker
}
