package experiment

import (
	"fmt"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/identity"
	"e2eqos/internal/netsim"
	"e2eqos/internal/policy"
	"e2eqos/internal/sla"
	"e2eqos/internal/topology"
	"e2eqos/internal/units"
)

// Figure4Result is the outcome of one misreservation scenario run.
type Figure4Result struct {
	Scenario string
	// AliceGoodput / DavidGoodput are measured rates in bits/s over
	// the measurement window.
	AliceGoodput float64
	DavidGoodput float64
	// AlicePremiumShare is the fraction of Alice's received bytes that
	// kept the premium marking.
	AlicePremiumShare float64
	// DropsAtC counts premium packets the destination policer killed.
	DropsAtC int64
	// DavidReservedAtC reports whether the control plane let David
	// install state at the destination.
	DavidReservedAtC bool
}

// fig4Topology is the Figure 4 shape: Alice in A, David in D, both
// paths share B -> C.
func fig4Topology() (*topology.Topology, error) {
	topo := topology.New()
	for i, name := range []string{"DomainA", "DomainB", "DomainC", "DomainD"} {
		if err := topo.AddDomain(topology.Domain{
			Name:     name,
			BBDN:     identity.NewDN("Grid", name, "bb"),
			Prefixes: []string{fmt.Sprintf("host%d.", i)},
		}); err != nil {
			return nil, err
		}
	}
	for _, l := range []topology.Link{
		{A: "DomainA", B: "DomainB", Capacity: units.Gbps},
		{A: "DomainD", B: "DomainB", Capacity: units.Gbps},
		{A: "DomainB", B: "DomainC", Capacity: units.Gbps},
	} {
		if err := topo.AddLink(l); err != nil {
			return nil, err
		}
	}
	return topo, nil
}

// RunFigure4 reproduces the misreservation attack on the packet-level
// DiffServ simulator. Both scenarios run the same data plane — Alice
// (A->C, 10 Mb/s reserved end-to-end) and David (D->C, 10 Mb/s) — and
// differ only in the control plane:
//
//   - source-domain: David reserves in D and B but skips C (nothing in
//     Approach 1 prevents this). C's ingress policer admits only the
//     10 Mb/s it granted to Alice, cannot tell the flows apart, and
//     drops half of everyone's premium traffic: Alice's guarantee
//     breaks.
//   - hop-by-hop: David's request is propagated by the brokers
//     themselves and denied at C (no capacity for him), so no upstream
//     state survives; his traffic stays best effort and Alice keeps
//     her reservation.
func RunFigure4(duration time.Duration) ([]Figure4Result, *Table, error) {
	if duration <= 0 {
		duration = 2 * time.Second
	}
	var results []Figure4Result
	for _, scenario := range []string{"source-domain (attack)", "hop-by-hop (protected)"} {
		res, err := runFig4Scenario(scenario, duration)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", scenario, err)
		}
		results = append(results, res)
	}
	t := &Table{
		ID:    "fig4",
		Title: "Misreservation attack on the DiffServ data plane (Figure 4)",
		Claim: `"there will be more reserved traffic entering domain C than domain C expects, causing it to discard or downgrade the extra traffic, thereby affecting Alice's reservation"`,
		Columns: []string{
			"scenario", "david state at C", "alice goodput", "alice premium share", "david goodput", "premium drops at C",
		},
	}
	for _, r := range results {
		state := "none (skipped)"
		if r.DavidReservedAtC {
			state = "reserved"
		}
		if r.Scenario == "hop-by-hop (protected)" {
			state = "denied by C"
		}
		t.AddRow(r.Scenario, state,
			fmt.Sprintf("%.2f Mb/s", r.AliceGoodput/1e6),
			fmt.Sprintf("%.0f%%", r.AlicePremiumShare*100),
			fmt.Sprintf("%.2f Mb/s", r.DavidGoodput/1e6),
			fmt.Sprintf("%d", r.DropsAtC),
		)
	}
	t.Notes = append(t.Notes,
		"Alice has a valid 10 Mb/s end-to-end reservation in both scenarios; only David's behaviour differs",
	)
	return results, t, nil
}

func runFig4Scenario(scenario string, duration time.Duration) (Figure4Result, error) {
	return runFig4ScenarioRate(scenario, duration, 10*units.Mbps)
}

// RunFigure4Sweep measures how the attack's damage to Alice scales
// with the attacker's unpoliced load: the more premium traffic David
// injects past B, the smaller Alice's share of C's fixed aggregate.
func RunFigure4Sweep(davidRates []units.Bandwidth, duration time.Duration) (*Table, error) {
	if len(davidRates) == 0 {
		davidRates = []units.Bandwidth{
			2 * units.Mbps, 5 * units.Mbps, 10 * units.Mbps, 20 * units.Mbps, 40 * units.Mbps,
		}
	}
	if duration <= 0 {
		duration = 2 * time.Second
	}
	t := &Table{
		ID:    "fig4-sweep",
		Title: "Misreservation severity vs attacker load (Figure 4)",
		Claim: "the honest user's share of the destination aggregate shrinks as unpoliced premium traffic grows",
		Columns: []string{
			"david load", "alice goodput", "alice share of reservation", "david goodput", "drops at C",
		},
	}
	for _, rate := range davidRates {
		r, err := runFig4ScenarioRate("source-domain (attack)", duration, rate)
		if err != nil {
			return nil, fmt.Errorf("rate %v: %w", rate, err)
		}
		t.AddRow(
			rate.String(),
			fmt.Sprintf("%.2f Mb/s", r.AliceGoodput/1e6),
			fmt.Sprintf("%.0f%%", 100*r.AliceGoodput/1e7),
			fmt.Sprintf("%.2f Mb/s", r.DavidGoodput/1e6),
			fmt.Sprintf("%d", r.DropsAtC),
		)
	}
	t.Notes = append(t.Notes,
		"Alice holds a valid 10 Mb/s end-to-end reservation in every row; only the attacker's load varies",
	)
	return t, nil
}

// runFig4ScenarioRate runs the Figure 4 data-plane scenario with a
// configurable attacker load (davidRate), used by the severity sweep.
func runFig4ScenarioRate(scenario string, duration time.Duration, davidRate units.Bandwidth) (Figure4Result, error) {
	out := Figure4Result{Scenario: scenario}
	topo, err := fig4Topology()
	if err != nil {
		return out, err
	}
	// Control plane: C's capacity only covers Alice's reservation; the
	// per-domain policies admit anything that fits.
	w, err := BuildWorld(WorldConfig{
		Topo:     topo,
		Capacity: 10 * units.Mbps,
		// DomainB and DomainD carry both users' aggregates; C only
		// Alice's.
		Capacities: map[string]units.Bandwidth{
			"DomainB": 10*units.Mbps + davidRate,
			"DomainD": davidRate + units.Mbps,
		},
		SLARate:               10*units.Mbps + davidRate,
		TrustUserCAEverywhere: true,
		Policies: map[string]*policy.Policy{
			"DomainA": policy.MustParse("a", "allow if bw <= avail\ndeny"),
			"DomainB": policy.MustParse("b", "allow if bw <= avail\ndeny"),
			"DomainC": policy.MustParse("c", "allow if bw <= avail\ndeny"),
			"DomainD": policy.MustParse("d", "allow if bw <= avail\ndeny"),
		},
	})
	if err != nil {
		return out, err
	}
	defer w.Close()

	alice, err := w.NewUser("Alice", "DomainA", nil, nil)
	if err != nil {
		return out, err
	}
	defer alice.Close()
	david, err := w.NewUser("David", "DomainD", nil, nil)
	if err != nil {
		return out, err
	}
	defer david.Close()

	// Reservation windows cover "now" so the data plane sync picks
	// them up.
	win := units.NewWindow(w.clock().Add(-time.Minute), 2*time.Hour)

	// Data plane.
	sim := dsim.New()
	sink := netsim.NewSink(sim)
	policerC := netsim.NewPolicer(sim, sla.TrafficProfile{Rate: 1, BucketBytes: 1}, sla.Drop, sink)
	// The shared link is provisioned above the combined offered load so
	// that the destination's aggregate policer — not link congestion —
	// is what decides packet fates, matching the figure's story.
	linkBC := netsim.NewLink(sim, 10*units.Mbps+davidRate+20*units.Mbps, time.Millisecond, 0, policerC)
	policerB := netsim.NewPolicer(sim, sla.TrafficProfile{Rate: 1, BucketBytes: 1}, sla.Drop, linkBC)
	markerA := netsim.NewEdgeMarker(sim, policerB) // A's edge feeds B's ingress
	markerD := netsim.NewEdgeMarker(sim, policerB) // D's edge feeds B's ingress
	w.NetsimPlane("DomainA").AttachEdge(markerA)
	w.NetsimPlane("DomainD").AttachEdge(markerD)
	w.NetsimPlane("DomainB").AttachPolicer(policerB)
	w.NetsimPlane("DomainC").AttachPolicer(policerC)

	// Alice reserves end-to-end in both scenarios.
	aliceSpec := alice.NewSpec(SpecOptions{DestDomain: "DomainC", Bandwidth: 10 * units.Mbps, Window: win})
	res, err := alice.ReserveE2E(aliceSpec)
	if err != nil || !res.Granted {
		return out, fmt.Errorf("alice reservation failed: %v %+v", err, res)
	}

	davidSpec := david.NewSpec(SpecOptions{DestDomain: "DomainC", Bandwidth: davidRate, Window: win})
	switch scenario {
	case "source-domain (attack)":
		// David reserves in D and B only — "makes a reservation in
		// domains D and B, but fails to make a reservation in domain C".
		for _, dom := range []string{"DomainD", "DomainB"} {
			r, err := david.ReserveLocalAt(dom, davidSpec)
			if err != nil || !r.Granted {
				return out, fmt.Errorf("david local reservation at %s failed: %v %+v", dom, err, r)
			}
		}
		out.DavidReservedAtC = false
	default:
		// Hop-by-hop: the brokers propagate; C denies (capacity is
		// exhausted by Alice) and everything rolls back.
		r, err := david.ReserveE2E(davidSpec)
		if err != nil {
			return out, err
		}
		if r.Granted {
			return out, fmt.Errorf("david's hop-by-hop reservation unexpectedly granted")
		}
		out.DavidReservedAtC = false
	}

	// Traffic: both users send their full 10 Mb/s; packet sizes differ
	// slightly to avoid phase-locking artifacts.
	srcAlice := netsim.NewSource(sim, netsim.FlowID(aliceSpec.RARID), 10*units.Mbps, 1250, netsim.BestEffort, markerA)
	srcDavid := netsim.NewSource(sim, netsim.FlowID(davidSpec.RARID), davidRate, 1000, netsim.BestEffort, markerD)
	srcAlice.Jitter = 0.2
	srcDavid.Jitter = 0.2
	if err := srcAlice.Install(0, duration); err != nil {
		return out, err
	}
	if err := srcDavid.Install(0, duration); err != nil {
		return out, err
	}
	sim.Run(duration + 500*time.Millisecond)

	aliceStats := sink.Stats(netsim.FlowID(aliceSpec.RARID))
	davidStats := sink.Stats(netsim.FlowID(davidSpec.RARID))
	if aliceStats != nil {
		out.AliceGoodput = aliceStats.Goodput(0, duration)
		if aliceStats.RxBytes > 0 {
			out.AlicePremiumShare = float64(aliceStats.RxBytesByCls[netsim.Premium]) / float64(aliceStats.RxBytes)
		}
	}
	if davidStats != nil {
		out.DavidGoodput = davidStats.Goodput(0, duration)
	}
	out.DropsAtC = policerC.Drops.Dropped
	return out, nil
}
