package experiment

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"e2eqos/internal/gara"
	"e2eqos/internal/units"
)

func TestRunFigure1Matrix(t *testing.T) {
	tab := RunFigure1()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	if byName["Alice"][2] != "GRANT" || byName["Alice"][3] != "DENY" {
		t.Errorf("Alice row = %v", byName["Alice"])
	}
	if byName["Bob"][2] != "DENY" {
		t.Errorf("Bob row = %v", byName["Bob"])
	}
	if byName["Charlie (physicist)"][3] != "GRANT" {
		t.Errorf("Charlie row = %v", byName["Charlie (physicist)"])
	}
	if byName["Alice (physicist)"][2] != "GRANT" || byName["Alice (physicist)"][3] != "GRANT" {
		t.Errorf("Alice-physicist row = %v", byName["Alice (physicist)"])
	}
	out := tab.Render()
	if !strings.Contains(out, "fig1") || !strings.Contains(out, "GRANT") {
		t.Error("render output malformed")
	}
	if md := tab.Markdown(); !strings.Contains(md, "| principal |") {
		t.Errorf("markdown malformed:\n%s", md)
	}
}

func TestRunFigure6Matrix(t *testing.T) {
	tab, err := RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Row order matches the variants in RunFigure6.
	wantDecision := []string{"GRANT", "DENY", "GRANT", "DENY", "DENY", "DENY"}
	wantDenier := []string{"-", "DomainC", "-", "DomainA", "DomainB", "DomainA"}
	for i, row := range tab.Rows {
		if row[5] != wantDecision[i] {
			t.Errorf("row %d decision = %s, want %s (%v)", i, row[5], wantDecision[i], row)
		}
		if row[6] != wantDenier[i] {
			t.Errorf("row %d denier = %s, want %s (%v)", i, row[6], wantDenier[i], row)
		}
	}
}

func TestRunFigure4AttackAndProtection(t *testing.T) {
	results, tab, err := RunFigure4(1500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	attack, protected := results[0], results[1]
	// Under the attack Alice's guaranteed 10 Mb/s degrades visibly.
	if attack.AliceGoodput > 8e6 {
		t.Errorf("attack: alice goodput = %.2f Mb/s, expected < 8", attack.AliceGoodput/1e6)
	}
	if attack.DropsAtC == 0 {
		t.Error("attack: destination policer never dropped")
	}
	// Hop-by-hop keeps Alice at ~10 Mb/s with premium marking.
	if protected.AliceGoodput < 9e6 {
		t.Errorf("protected: alice goodput = %.2f Mb/s, expected ~10", protected.AliceGoodput/1e6)
	}
	if protected.AlicePremiumShare < 0.95 {
		t.Errorf("protected: premium share = %.2f", protected.AlicePremiumShare)
	}
	// The attack must hurt Alice relative to the protected run.
	if attack.AliceGoodput >= protected.AliceGoodput {
		t.Error("attack did not degrade Alice relative to hop-by-hop")
	}
}

func TestRunFigure7ChainLengths(t *testing.T) {
	tab, err := RunFigure7(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Capability certs at hop i = i + 2 (Figure 7).
	want := []string{"2", "3", "4", "5"}
	for i, row := range tab.Rows {
		if row[2] != want[i] {
			t.Errorf("hop %d capability certs = %s, want %s", i, row[2], want[i])
		}
	}
}

func TestProtocolWorldWireGrowthLinear(t *testing.T) {
	w, err := BuildProtocolWorld(6, true)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := w.Propagate(w.NewSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Per-hop growth must be roughly constant (linear overall): the
	// largest per-hop increment must not exceed 3x the smallest.
	var deltas []int
	for i := 1; i < len(samples); i++ {
		deltas = append(deltas, samples[i].WireBytes-samples[i-1].WireBytes)
	}
	min, max := deltas[0], deltas[0]
	for _, d := range deltas {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min <= 0 || max > 3*min {
		t.Errorf("per-hop wire growth not linear: deltas = %v", deltas)
	}
}

func TestRunTrustChainDepthPolicy(t *testing.T) {
	tab, err := RunTrustChain(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "DENY" {
			t.Errorf("hops=%s: limit N-1 should deny, got %s", row[0], row[3])
		}
		if row[4] != "ACCEPT" {
			t.Errorf("hops=%s: limit N should accept, got %s", row[0], row[4])
		}
	}
}

func TestMeasureSignallingShapes(t *testing.T) {
	// At 3ms one-way hop latency over 5 domains, concurrent must beat
	// sequential, and hop-by-hop must use fewer messages than either
	// source-domain variant needs round trips.
	seq, err := MeasureSignalling(5, 3*time.Millisecond, gara.Sequential, 1)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := MeasureSignalling(5, 3*time.Millisecond, gara.Concurrent, 1)
	if err != nil {
		t.Fatal(err)
	}
	hop, err := MeasureSignalling(5, 3*time.Millisecond, gara.HopByHop, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Granted || !conc.Granted || !hop.Granted {
		t.Fatal("a strategy failed to grant")
	}
	if conc.Latency >= seq.Latency {
		t.Errorf("concurrent (%v) not faster than sequential (%v)", conc.Latency, seq.Latency)
	}
	// The paper's claim: parallel source-domain signalling can beat
	// hop-by-hop, which serialises one RTT per domain.
	if conc.Latency >= hop.Latency {
		t.Errorf("concurrent (%v) not faster than hop-by-hop (%v)", conc.Latency, hop.Latency)
	}
	// Message economics: hop-by-hop sends 2 messages per inter-BB hop
	// plus the user exchange; source-domain sends 2 per domain.
	if hop.Messages != 2*5 {
		t.Errorf("hop-by-hop messages = %d, want 10", hop.Messages)
	}
	if seq.Messages != 2*5 {
		t.Errorf("sequential messages = %d, want 10", seq.Messages)
	}
}

func TestRunTrustScalingTable(t *testing.T) {
	tab := RunTrustScaling([]int{100}, []int{5})
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	if row[2] != "500" { // 100 users x 5 domains
		t.Errorf("source-domain pairs = %s", row[2])
	}
	if row[3] != "105" { // 5 + 100
		t.Errorf("coordinator pairs = %s", row[3])
	}
	if row[4] != "104" { // 4 SLAs + 100 home enrolments
		t.Errorf("hop-by-hop pairs = %s", row[4])
	}
}

func TestRunCoReservationTable(t *testing.T) {
	tab, err := RunCoReservation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][3] != "GRANTED" {
		t.Errorf("both-fit row = %v", tab.Rows[0])
	}
	if tab.Rows[1][3] != "DENIED (cpu)" {
		t.Errorf("cpu-exhausted row = %v", tab.Rows[1])
	}
	if tab.Rows[2][3] != "DENIED (network)" {
		t.Errorf("network-exhausted row = %v", tab.Rows[2])
	}
	// All-or-nothing: CPU freed after the network denial.
	if tab.Rows[2][4] != "8" {
		t.Errorf("cpu free after network denial = %s, want 8", tab.Rows[2][4])
	}
}

func TestMeasureTunnelAdvantage(t *testing.T) {
	s, err := MeasureTunnel(8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.TunnelGranted != 8 {
		t.Fatalf("tunnel granted %d of 8 sub-flows", s.TunnelGranted)
	}
	if s.TunnelMsgs >= s.PerFlowMsgs {
		t.Errorf("tunnel msgs %d >= per-flow msgs %d for 8 flows", s.TunnelMsgs, s.PerFlowMsgs)
	}
}

func TestRunKeyDistributionSavings(t *testing.T) {
	tab, err := RunKeyDistribution(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		var inline, lean int
		if _, err := fmt.Sscanf(row[1], "%d", &inline); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(row[2], "%d", &lean); err != nil {
			t.Fatal(err)
		}
		if lean >= inline {
			t.Errorf("hops=%s: repository mode (%d) not smaller than inline (%d)", row[0], lean, inline)
		}
		if row[4] == "0" {
			t.Errorf("hops=%s: repository never consulted", row[0])
		}
	}
}

func TestRunBillingChain(t *testing.T) {
	tab, err := RunBilling(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 invoices", len(tab.Rows))
	}
	if !strings.HasPrefix(tab.Rows[0][0], "DomainC -> DomainB") {
		t.Errorf("first invoice = %v", tab.Rows[0])
	}
	if !strings.Contains(tab.Rows[2][0], "Alice") {
		t.Errorf("final invoice must bill the user: %v", tab.Rows[2])
	}
}

func TestRunFigure4SweepMonotone(t *testing.T) {
	tab, err := RunFigure4Sweep([]units.Bandwidth{2 * units.Mbps, 10 * units.Mbps, 40 * units.Mbps}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var goodputs []float64
	for _, row := range tab.Rows {
		var g float64
		if _, err := fmt.Sscanf(row[1], "%f Mb/s", &g); err != nil {
			t.Fatal(err)
		}
		goodputs = append(goodputs, g)
	}
	// Damage must grow with attacker load.
	if !(goodputs[0] > goodputs[1] && goodputs[1] > goodputs[2]) {
		t.Errorf("alice goodput not monotone in attacker load: %v", goodputs)
	}
	// Light attack barely hurts; heavy attack is devastating.
	if goodputs[0] < 6 {
		t.Errorf("2Mb/s attacker already destroyed the flow: %v", goodputs)
	}
	if goodputs[2] > 4 {
		t.Errorf("40Mb/s attacker insufficiently harmful: %v", goodputs)
	}
}

func TestRunDiffServChainGuarantee(t *testing.T) {
	tab, err := RunDiffServChain(4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var prem, cross float64
		if _, err := fmt.Sscanf(row[1], "%f Mb/s", &prem); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(row[3], "%f Mb/s", &cross); err != nil {
			t.Fatal(err)
		}
		// The 10 Mb/s guarantee holds at every chain length...
		if prem < 9 {
			t.Errorf("domains=%s: premium goodput %.2f < 9 Mb/s", row[0], prem)
		}
		// ...while the 40 Mb/s best-effort offer collapses to leftovers.
		if cross > 25 {
			t.Errorf("domains=%s: best effort %.2f exceeds leftover capacity", row[0], cross)
		}
	}
}
