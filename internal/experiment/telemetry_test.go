package experiment

import (
	"path/filepath"
	"strings"
	"testing"

	"e2eqos/internal/obs"
	"e2eqos/internal/signalling"
	"e2eqos/internal/units"
)

// readDomainEvents drains one domain's flight-recorder log.
func readDomainEvents(t *testing.T, dir, domain string) []*obs.Event {
	t.Helper()
	var out []*obs.Event
	if err := obs.ReadEvents(filepath.Join(dir, domain), func(e *obs.Event) bool {
		ev := *e
		out = append(out, &ev)
		return true
	}); err != nil {
		t.Fatalf("reading %s events: %v", domain, err)
	}
	return out
}

// TestFlightRecorderSamplesReserveChain pins the sampling protocol
// end to end: at rate 1 the ingress broker rolls the dice once, and
// the decision plus trace id propagate through the signalling payload
// so EVERY hop of the chain records the same trace — no per-hop
// re-rolling, no rate compounding.
func TestFlightRecorderSamplesReserveChain(t *testing.T) {
	dir := t.TempDir()
	w, err := BuildWorld(WorldConfig{
		NumDomains: 3,
		EnableObs:  true,
		EventsDir:  dir,
		SampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("reserve: %v %+v", err, res)
	}

	var trace string
	for _, domain := range w.Domains {
		events := readDomainEvents(t, dir, domain)
		if len(events) != 1 {
			t.Fatalf("%s recorded %d events, want 1", domain, len(events))
		}
		ev := events[0]
		if ev.Kind != obs.EventReserve || ev.Domain != domain || !ev.Sampled {
			t.Fatalf("%s: bad event %+v", domain, ev)
		}
		if ev.Verdict != obs.VerdictGranted {
			t.Fatalf("%s: verdict %q, want granted", domain, ev.Verdict)
		}
		if ev.RARID != spec.RARID {
			t.Fatalf("%s: rar %q, want %q", domain, ev.RARID, spec.RARID)
		}
		if ev.TraceID == "" {
			t.Fatalf("%s: sampled event has no trace id", domain)
		}
		if trace == "" {
			trace = ev.TraceID
		} else if ev.TraceID != trace {
			t.Fatalf("%s: trace %q differs from %q — the ingress decision did not propagate", domain, ev.TraceID, trace)
		}
		if ev.DurationNS <= 0 {
			t.Fatalf("%s: missing duration", domain)
		}
	}
	// The ingress hop assembled the full per-hop timeline.
	src := readDomainEvents(t, dir, w.SourceDomain())[0]
	if len(src.Spans) != len(w.Domains) {
		t.Fatalf("source event has %d spans, want %d", len(src.Spans), len(w.Domains))
	}

	// A requester-traced reserve is sampled all the same: the ingress
	// dice rolls regardless of opt-in tracing and reuses the user's
	// trace id instead of minting a second one.
	u.Trace = true
	spec2 := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	res2, err := u.ReserveE2E(spec2)
	if err != nil || !res2.Granted {
		t.Fatalf("traced reserve: %v %+v", err, res2)
	}
	for _, domain := range w.Domains {
		events := readDomainEvents(t, dir, domain)
		if len(events) != 2 {
			t.Fatalf("%s recorded %d events after the traced reserve, want 2", domain, len(events))
		}
		ev := events[1]
		if !ev.Sampled || ev.RARID != spec2.RARID {
			t.Fatalf("%s: requester-traced reserve was not sampled: %+v", domain, ev)
		}
		if ev.TraceID == "" || ev.TraceID == trace {
			t.Fatalf("%s: traced reserve should carry the user's own trace id, got %q", domain, ev.TraceID)
		}
	}
}

// TestFlightRecorderTraceThroughTunnelBatch pins the satellite: the
// trace id and sampled bit ride MsgTunnelBatch, so both endpoints of
// a sub-flow batch record the same trace.
func TestFlightRecorderTraceThroughTunnelBatch(t *testing.T) {
	dir := t.TempDir()
	w, err := BuildWorld(WorldConfig{
		NumDomains: 3,
		EnableObs:  true,
		EventsDir:  dir,
		SampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps, Tunnel: true})
	if res, err := u.ReserveE2E(spec); err != nil || !res.Granted {
		t.Fatalf("tunnel establishment: %v %+v", err, res)
	}

	src := w.BBs[w.SourceDomain()]
	ops := []signalling.TunnelOp{
		{Action: signalling.OpAlloc, SubFlowID: "s1", Bandwidth: int64(units.Mbps)},
		{Action: signalling.OpAlloc, SubFlowID: "s2", Bandwidth: int64(units.Mbps)},
	}
	results, err := src.TunnelBatch(spec.RARID, ops, u.DN())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Granted {
			t.Fatalf("op %s denied: %s", r.SubFlowID, r.Reason)
		}
	}

	findBatch := func(domain string) *obs.Event {
		for _, ev := range readDomainEvents(t, dir, domain) {
			if ev.Kind == obs.EventTunnelBatch {
				return ev
			}
		}
		t.Fatalf("%s recorded no tunnel-batch event", domain)
		return nil
	}
	srcEv := findBatch(w.SourceDomain())
	dstEv := findBatch(w.DestDomain())
	if srcEv.TraceID == "" || srcEv.TraceID != dstEv.TraceID {
		t.Fatalf("trace id did not ride MsgTunnelBatch: src %q dst %q", srcEv.TraceID, dstEv.TraceID)
	}
	if !srcEv.Sampled || !dstEv.Sampled {
		t.Fatalf("sampled bit did not propagate: src %t dst %t", srcEv.Sampled, dstEv.Sampled)
	}
	if srcEv.Ops != len(ops) || dstEv.Ops != len(ops) {
		t.Fatalf("ops counts src %d dst %d, want %d", srcEv.Ops, dstEv.Ops, len(ops))
	}
	if srcEv.Verdict != obs.VerdictGranted || dstEv.Verdict != obs.VerdictGranted {
		t.Fatalf("verdicts src %q dst %q", srcEv.Verdict, dstEv.Verdict)
	}
}

// TestFlightRecorderForcesDenials pins the always-on half of the
// recorder: with probabilistic sampling OFF, a denial must still be
// recorded (forced), while granted requests stay unrecorded.
func TestFlightRecorderForcesDenials(t *testing.T) {
	dir := t.TempDir()
	w, err := BuildWorld(WorldConfig{
		NumDomains: 2,
		EnableObs:  true,
		EventsDir:  dir,
		SampleRate: 0, // never sample; only forced events may appear
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	// A granted request at rate 0 must leave no trace on disk.
	okSpec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	if res, err := u.ReserveE2E(okSpec); err != nil || !res.Granted {
		t.Fatalf("reserve: %v %+v", err, res)
	}
	for _, domain := range w.Domains {
		if evs := readDomainEvents(t, dir, domain); len(evs) != 0 {
			t.Fatalf("%s recorded %d events for a granted, unsampled request", domain, len(evs))
		}
	}

	// A denial (bandwidth over capacity) is forced onto disk.
	badSpec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10_000 * units.Mbps})
	res, err := u.ReserveE2E(badSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("oversized reservation was granted")
	}
	evs := readDomainEvents(t, dir, w.SourceDomain())
	if len(evs) != 1 {
		t.Fatalf("source recorded %d events, want the forced denial", len(evs))
	}
	ev := evs[0]
	if ev.Sampled {
		t.Fatal("forced event must not claim it was sampled")
	}
	if ev.Verdict == obs.VerdictGranted || ev.Reason == "" {
		t.Fatalf("forced denial event lacks verdict/reason: %+v", ev)
	}
	if w.CounterTotal("bb_events_forced_total") == 0 {
		t.Error("bb_events_forced_total not incremented")
	}
}

// TestScaleLoadReportsQuantiles smoke-tests the -exp scale experiment
// at a tiny size: the table must carry p50/p99/p999 columns with
// non-zero latencies for the broker's hot stages.
func TestScaleLoadReportsQuantiles(t *testing.T) {
	tbl, err := RunScaleLoad(ScaleLoadConfig{
		Users:      2,
		Reserves:   4,
		BatchOps:   64,
		Domains:    3,
		SampleRate: 1,
		EventsDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tbl.Columns, " ")
	for _, col := range []string{"p50", "p99", "p999"} {
		if !strings.Contains(joined, col) {
			t.Errorf("scale table missing column %q", col)
		}
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("scale table has no rows")
	}
	stages := make(map[string]bool)
	for _, row := range tbl.Rows {
		stages[row[1]] = true
	}
	for _, want := range []string{"bb_handle_seconds", "bb_grant_seconds"} {
		if !stages[want] {
			t.Errorf("scale table missing stage %q (have %v)", want, stages)
		}
	}
}
