package experiment

import (
	"testing"

	"e2eqos/internal/signalling"
	"e2eqos/internal/units"
)

// TestJSONWireModeFullBattery runs the signalling battery over the
// `-wire json` interop mode: every broker and user in the world speaks
// JSON frames instead of the default binary encoding. An end-to-end
// reserve must be granted with verifiable approvals from every domain,
// a tunnel establishment plus batched sub-flow allocation must succeed
// over the wire, and cancels must propagate — proving the debug/interop
// encoding carries the full protocol, not just the happy path.
func TestJSONWireModeFullBattery(t *testing.T) {
	w, err := BuildWorld(WorldConfig{
		NumDomains: 3,
		Capacity:   100 * units.Mbps,
		Wire:       "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	alice, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	// End-to-end reserve across all three domains.
	spec := alice.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := alice.ReserveE2E(spec)
	if err != nil {
		t.Fatalf("reserve over JSON wire: %v", err)
	}
	if !res.Granted {
		t.Fatalf("reserve over JSON wire denied: %s", res.Reason)
	}
	if len(res.Approvals) != 3 {
		t.Fatalf("got %d approvals, want one per domain (3)", len(res.Approvals))
	}
	if err := w.VerifyApprovals(res); err != nil {
		t.Fatalf("approval signatures did not survive the JSON wire: %v", err)
	}

	// Tunnel establishment plus a batched sub-flow allocation, both as
	// wire calls into the source broker.
	tun := alice.NewSpec(SpecOptions{
		DestDomain: w.DestDomain(),
		Bandwidth:  40 * units.Mbps,
		Tunnel:     true,
	})
	tres, err := alice.ReserveE2E(tun)
	if err != nil || !tres.Granted {
		t.Fatalf("tunnel establishment over JSON wire: %v %+v", err, tres)
	}
	batch, err := alice.TunnelBatch(w.SourceDomain(), &signalling.TunnelBatchPayload{
		TunnelRARID: tun.RARID,
		BatchID:     signalling.NewBatchID(),
		User:        alice.DN(),
		Ops: []signalling.TunnelOp{
			{Action: signalling.OpAlloc, SubFlowID: "jw-1", Bandwidth: int64(5 * units.Mbps)},
			{Action: signalling.OpAlloc, SubFlowID: "jw-2", Bandwidth: int64(5 * units.Mbps)},
		},
	})
	if err != nil {
		t.Fatalf("tunnel batch over JSON wire: %v", err)
	}
	if !batch.Granted {
		t.Fatalf("tunnel batch denied: %s", batch.Reason)
	}
	for _, r := range batch.BatchResults {
		if !r.Granted {
			t.Fatalf("sub-flow %s denied: %s", r.SubFlowID, r.Reason)
		}
	}

	// Cancels propagate along the recorded path.
	if err := alice.Cancel(w.SourceDomain(), spec.RARID); err != nil {
		t.Fatalf("cancel over JSON wire: %v", err)
	}
	if err := alice.Cancel(w.SourceDomain(), tun.RARID); err != nil {
		t.Fatalf("tunnel cancel over JSON wire: %v", err)
	}
}
