package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// RunFleetExperiment runs the scenario fleet and renders it as an
// experiment table for cmd/experiments.
func RunFleetExperiment(cfg FleetConfig) (*FleetResult, *Table, error) {
	start := time.Now()
	res, err := RunFleet(cfg)
	if err != nil {
		return nil, nil, err
	}
	elapsed := time.Since(start)
	t := &Table{
		ID:    "fleet",
		Title: fmt.Sprintf("scenario fleet, %d users × %d domains, seed %d", res.Users, res.Domains, res.Seed),
		Claim: "admission, enforcement and teardown hold their invariants under diurnal load, flash crowds, churn and the misreservation attack at fleet scale",
		Columns: []string{
			"scenario", "grants", "denials", "retries",
			"grant p50/p99/p999 (ms)", "goodput p50/p99/p999 (Mb/s)", "invariants",
		},
	}
	for _, s := range res.Scenarios {
		t.AddRow(
			s.Name,
			fmt.Sprintf("%d", s.Grants),
			fmt.Sprintf("%d", s.Denials),
			fmt.Sprintf("%d", s.Retries),
			fmt.Sprintf("%.2f / %.2f / %.2f", s.GrantLatencyMs.P50, s.GrantLatencyMs.P99, s.GrantLatencyMs.P999),
			fmt.Sprintf("%.2f / %.2f / %.2f", s.GoodputMbps.P50, s.GoodputMbps.P99, s.GoodputMbps.P999),
			fmt.Sprintf("%d passed", len(s.Invariants)),
		)
		if s.Attack != nil {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"misreservation: honest p50 %.2f→%.2f Mb/s under attack (%.1f%% degradation); attacker p50 %.2f Mb/s defended (bounded by its reservation) vs %.2f Mb/s stolen via aggregate policing",
				s.Attack.HonestDefended.P50, s.Attack.HonestAttacked.P50, s.Attack.DegradationPct,
				s.Attack.AttackerDefended.P50, s.Attack.AttackerAttacked.P50))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fleet digest %s… (seed-reproducible; same seed ⇒ byte-identical)", res.Digest[:16]),
		fmt.Sprintf("virtual-time closed loop over real admission tables and the fake data-plane backend; wall clock %.1fs", elapsed.Seconds()))
	return res, t, nil
}

// fleetBenchFile is the BENCH_scale.json layout, following the other
// BENCH_*.json artefacts in the repo root.
type fleetBenchFile struct {
	Benchmark string              `json:"benchmark"`
	Machine   string              `json:"machine"`
	Date      string              `json:"date"`
	Users     int                 `json:"users"`
	Domains   int                 `json:"domains"`
	Seed      uint64              `json:"seed"`
	Digest    string              `json:"fleet_digest"`
	WallSec   float64             `json:"wall_clock_seconds"`
	Scenarios []fleetBenchSection `json:"scenarios"`
	Note      string              `json:"note"`
}

type fleetBenchSection struct {
	Name           string     `json:"name"`
	Grants         int64      `json:"grants"`
	Denials        int64      `json:"denials"`
	Retries        int64      `json:"retries"`
	Cancels        int64      `json:"cancels"`
	Events         int        `json:"dsim_events"`
	GrantLatencyMs benchQuant `json:"grant_latency_ms"`
	GoodputMbps    benchQuant `json:"goodput_mbps"`
	Invariants     []string   `json:"invariants_passed"`
	Attack         *benchAtk  `json:"attack,omitempty"`
}

type benchQuant struct {
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Count int     `json:"count"`
}

type benchAtk struct {
	HonestDefendedP50  float64 `json:"honest_defended_p50_mbps"`
	HonestAttackedP50  float64 `json:"honest_attacked_p50_mbps"`
	AttackerDefended   float64 `json:"attacker_defended_p50_mbps"`
	AttackerAttacked   float64 `json:"attacker_attacked_p50_mbps"`
	DegradationPercent float64 `json:"honest_degradation_pct"`
}

func toBenchQuant(q Quantiles) benchQuant {
	return benchQuant{P50: q.P50, P99: q.P99, P999: q.P999, Count: q.Count}
}

// WriteFleetBench writes BENCH_scale.json for a fleet run. The date
// is passed in by the caller so this package never reads the clock
// for anything that feeds a digest.
func WriteFleetBench(res *FleetResult, path, machine, date string, wall time.Duration) error {
	f := fleetBenchFile{
		Benchmark: "make bench-fleet (scenario fleet, internal/experiment RunFleet)",
		Machine:   machine,
		Date:      date,
		Users:     res.Users,
		Domains:   res.Domains,
		Seed:      res.Seed,
		Digest:    res.Digest,
		WallSec:   wall.Seconds(),
		Note: "virtual-time closed loop: real resv.Table admission (sharded aggregates), real dataplane/fake enforcement, modelled signalling " +
			"(2ms/hop + 50µs FIFO service per broker). Latencies are virtual; the wall clock measures the harness itself. " +
			"Same seed reproduces every number and the digest byte-for-byte.",
	}
	for _, s := range res.Scenarios {
		sec := fleetBenchSection{
			Name:           s.Name,
			Grants:         s.Grants,
			Denials:        s.Denials,
			Retries:        s.Retries,
			Cancels:        s.Cancels,
			Events:         s.Events,
			GrantLatencyMs: toBenchQuant(s.GrantLatencyMs),
			GoodputMbps:    toBenchQuant(s.GoodputMbps),
			Invariants:     s.Invariants,
		}
		if s.Attack != nil {
			sec.Attack = &benchAtk{
				HonestDefendedP50:  s.Attack.HonestDefended.P50,
				HonestAttackedP50:  s.Attack.HonestAttacked.P50,
				AttackerDefended:   s.Attack.AttackerDefended.P50,
				AttackerAttacked:   s.Attack.AttackerAttacked.P50,
				DegradationPercent: s.Attack.DegradationPct,
			}
		}
		f.Scenarios = append(f.Scenarios, sec)
	}
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
