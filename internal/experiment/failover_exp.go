package experiment

import (
	"bytes"
	"fmt"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/resv"
	"e2eqos/internal/units"
)

// FailoverConfig parameterises the replicated-broker failover
// demonstration.
type FailoverConfig struct {
	// Replicas is the source domain's group size (default 3).
	Replicas int
	// Load is how many end-to-end grants to land before the kill
	// (default 20).
	Load int
	// StateDir roots the replicas' journals. Required: the replication
	// stream is the journal.
	StateDir string
	// CallTimeout bounds every signalling call (default 2s).
	CallTimeout time.Duration
}

// RunFailover builds a replicated two-domain world, lands a batch of
// commit-gated grants, kills the source domain's leader the hard way
// (buffered batch-fsync records die with it) and promotes a follower.
// The table reports what the paper's availability story needs: zero
// lost grants, every retransmission answered from the promoted
// follower's replay cache with the original handle, no double
// admissions, and byte-identical state across the survivors.
func RunFailover(cfg FailoverConfig) (*Table, error) {
	if cfg.Replicas <= 1 {
		cfg.Replicas = 3
	}
	if cfg.Load <= 0 {
		cfg.Load = 20
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	w, err := BuildWorld(WorldConfig{
		NumDomains:  2,
		Replicas:    cfg.Replicas,
		StateDir:    cfg.StateDir,
		FsyncPolicy: "batch",
		CallTimeout: cfg.CallTimeout,
		EnableObs:   true,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		return nil, err
	}
	defer u.Close()
	src := w.SourceDomain()

	type grant struct {
		spec   *core.Spec
		handle string
	}
	grants := make([]grant, 0, cfg.Load)
	loadStart := time.Now()
	for i := 0; i < cfg.Load; i++ {
		spec := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
		res, err := u.ReserveE2E(spec)
		if err != nil || !res.Granted {
			return nil, fmt.Errorf("load reserve %d: %v %+v", i, err, res)
		}
		grants = append(grants, grant{spec: spec, handle: res.Handle})
	}
	loadTook := time.Since(loadStart)
	grantedBefore := countGranted(w, src)

	killStart := time.Now()
	killed, err := w.KillLeader(src)
	if err != nil {
		return nil, err
	}
	promoted, err := w.PromoteAny(src)
	if err != nil {
		return nil, fmt.Errorf("no promotable follower: %w", err)
	}
	u.Close() // pooled connection died with the leader; redial on next call

	// First grant on the new leader marks the end of the outage window.
	probe := u.NewSpec(SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	res, err := u.ReserveE2E(probe)
	if err != nil || !res.Granted {
		return nil, fmt.Errorf("first reserve after failover: %v %+v", err, res)
	}
	outage := time.Since(killStart)

	// Retransmit everything the user was ever granted.
	replayed, lost, wrongHandle := 0, 0, 0
	for _, g := range grants {
		res, err := u.ReserveE2E(g.spec)
		switch {
		case err != nil || !res.Granted:
			lost++
		case res.Handle != g.handle:
			wrongHandle++
		default:
			replayed++
		}
	}
	doubles := countGranted(w, src) - grantedBefore - 1 // -1: the probe

	// Quiesce and diff the survivors byte-for-byte.
	stLeader := w.ReplicaBB(src, promoted).ReplicationStatus()
	digests := "identical"
	deadlineAt := time.Now().Add(10 * time.Second)
	for {
		converged := true
		target := w.ReplicaBB(src, promoted).ReplicationStatus().JournalSeq
		for i := 0; i < cfg.Replicas; i++ {
			if i == killed || i == promoted {
				continue
			}
			if w.ReplicaBB(src, i).ReplicationStatus().AppliedSeq < target {
				converged = false
			}
		}
		if converged || time.Now().After(deadlineAt) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	base, err := w.ReplicaBB(src, promoted).StateDigest()
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Replicas; i++ {
		if i == killed || i == promoted {
			continue
		}
		d, err := w.ReplicaBB(src, i).StateDigest()
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(base, d) {
			digests = fmt.Sprintf("DIVERGED at replica %d", i)
		}
	}

	t := &Table{
		ID:      "failover",
		Title:   "Leader failover in a replicated bandwidth-broker group",
		Claim:   "Killing a leader mid-load loses nothing a caller ever saw: a promoted follower serves the same grants, answers retransmissions from its replicated replay cache, and admits new work.",
		Columns: []string{"measure", "value"},
	}
	t.AddRow("replica group size", fmt.Sprintf("%d", cfg.Replicas))
	t.AddRow("grants before kill", fmt.Sprintf("%d (%.0f/s commit-gated)", len(grants), float64(len(grants))/loadTook.Seconds()))
	t.AddRow("killed leader", fmt.Sprintf("replica %d (journal buffered, batch fsync)", killed))
	t.AddRow("promoted follower", fmt.Sprintf("replica %d, term %d", promoted, stLeader.Term))
	t.AddRow("outage (kill -> first new grant)", outage.Round(time.Millisecond).String())
	t.AddRow("retransmits answered from replay cache", fmt.Sprintf("%d/%d", replayed, len(grants)))
	t.AddRow("lost grants", fmt.Sprintf("%d", lost))
	t.AddRow("wrong handles", fmt.Sprintf("%d", wrongHandle))
	t.AddRow("double admissions", fmt.Sprintf("%d", doubles))
	t.AddRow("survivor state digests", digests)
	t.Notes = append(t.Notes,
		"Settlements are commit-gated: the leader answers a caller only after a majority of replicas acknowledged the covering journal records, so every answered grant survives the kill.",
		"The promoted follower's election fences the RAR epoch past anything the dead leader could have minted; its journal holds the streamed frames byte-for-byte.",
	)
	return t, nil
}

// countGranted counts granted reservations in one domain's table.
func countGranted(w *World, domain string) int {
	n := 0
	for _, r := range w.BBs[domain].Table().All() {
		if r.Status == resv.Granted {
			n++
		}
	}
	return n
}
