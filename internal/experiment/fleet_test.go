package experiment

import (
	"testing"
	"time"
)

// smokeFleetConfig is the scaled-down tier that runs under -race in
// make verify: small enough to finish in seconds, big enough that
// every scenario exercises denial, retry and churn paths.
func smokeFleetConfig() FleetConfig {
	return FleetConfig{
		Users:       2_000,
		Domains:     3,
		Aggregates:  16,
		HopLatency:  2 * time.Millisecond,
		ServiceTime: 50 * time.Microsecond,
		Seed:        1,
	}
}

// TestFleetSmoke runs all four scenario families at smoke scale and
// requires every cross-cutting invariant to pass.
func TestFleetSmoke(t *testing.T) {
	res, err := RunFleet(smokeFleetConfig())
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if len(res.Scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(res.Scenarios))
	}
	wantChecks := map[string]int{
		"diurnal": 4, "flash": 4, "churn": 5, "misreservation": 6,
	}
	for _, s := range res.Scenarios {
		if s.Grants == 0 {
			t.Errorf("%s: no grants", s.Name)
		}
		if got := len(s.Invariants); got < wantChecks[s.Name] {
			t.Errorf("%s: %d invariant checks passed, want >= %d (%v)", s.Name, got, wantChecks[s.Name], s.Invariants)
		}
		if s.GrantLatencyMs.Count == 0 || s.GrantLatencyMs.P50 <= 0 {
			t.Errorf("%s: empty grant-latency distribution: %+v", s.Name, s.GrantLatencyMs)
		}
		if s.Digest == "" {
			t.Errorf("%s: empty digest", s.Name)
		}
	}
}

// TestFleetSeededDeterminism is the reproducibility contract: two
// runs with the same seed must produce byte-identical digests, and a
// different seed must not.
func TestFleetSeededDeterminism(t *testing.T) {
	cfg := smokeFleetConfig()
	cfg.Users = 800
	a, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different fleet digests:\n  a %s\n  b %s", a.Digest, b.Digest)
	}
	for i := range a.Scenarios {
		if a.Scenarios[i].Digest != b.Scenarios[i].Digest {
			t.Errorf("scenario %s digest drifted across same-seed runs", a.Scenarios[i].Name)
		}
		if a.Scenarios[i].Grants != b.Scenarios[i].Grants {
			t.Errorf("scenario %s grants drifted: %d vs %d", a.Scenarios[i].Name, a.Scenarios[i].Grants, b.Scenarios[i].Grants)
		}
	}
	cfg.Seed = 2
	c, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("run c: %v", err)
	}
	if c.Digest == a.Digest {
		t.Fatalf("different seeds produced identical digests")
	}
}

// TestFleetFlashCrowdQueueing checks the modelled FIFO broker turns a
// flash crowd into a real latency tail: p99 must exceed the
// no-queueing floor of hops × (2×latency + service).
func TestFleetFlashCrowdQueueing(t *testing.T) {
	cfg := smokeFleetConfig()
	cfg.Scenarios = []string{"flash"}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	s := res.Scenarios[0]
	floor := float64(3*(2*2*time.Millisecond+50*time.Microsecond)) / float64(time.Millisecond)
	if s.GrantLatencyMs.P99 <= floor {
		t.Errorf("flash p99 %.3f ms not above no-queue floor %.3f ms", s.GrantLatencyMs.P99, floor)
	}
	if s.GrantLatencyMs.P999 < s.GrantLatencyMs.P99 || s.GrantLatencyMs.P99 < s.GrantLatencyMs.P50 {
		t.Errorf("quantiles not monotone: %+v", s.GrantLatencyMs)
	}
}

// TestFleetReroute runs the opt-in multipath scenario: during the
// outage window the primary branch is booked solid shard by shard, so
// sessions must deny there and settle on the alternate branch. The
// scenario itself fails if no re-route happens; the test additionally
// pins down determinism and the traffic split across branches.
func TestFleetReroute(t *testing.T) {
	cfg := smokeFleetConfig()
	cfg.Scenarios = []string{"reroute"}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if len(res.Scenarios) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(res.Scenarios))
	}
	s := res.Scenarios[0]
	if s.Grants == 0 {
		t.Fatal("no grants")
	}
	if s.Retries == 0 {
		t.Fatal("no re-routes counted")
	}
	found := false
	for _, inv := range s.Invariants {
		if inv == "denied-primary-rerouted" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing denied-primary-rerouted invariant: %v", s.Invariants)
	}
	// Same seed, same outage, same re-route decisions.
	again, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if again.Scenarios[0].Digest != s.Digest {
		t.Errorf("reroute digest drifted across same-seed runs")
	}
	if again.Scenarios[0].Retries != s.Retries {
		t.Errorf("re-route count drifted: %d vs %d", again.Scenarios[0].Retries, s.Retries)
	}
}

// TestFleetMisreservationAttack checks the scenario reproduces the
// paper's asymmetry: honest goodput degrades under source-domain
// provisioning and attackers stay bounded when provisioning is
// end-to-end.
func TestFleetMisreservationAttack(t *testing.T) {
	cfg := smokeFleetConfig()
	cfg.Scenarios = []string{"misreservation"}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	atk := res.Scenarios[0].Attack
	if atk == nil {
		t.Fatal("misreservation result missing Attack")
	}
	if atk.DegradationPct < 1 {
		t.Errorf("honest degradation %.2f%%, want >= 1%%", atk.DegradationPct)
	}
	if atk.HonestAttacked.P50 >= atk.HonestDefended.P50 {
		t.Errorf("honest p50 under attack (%.3f) not below defended (%.3f)", atk.HonestAttacked.P50, atk.HonestDefended.P50)
	}
	// In the attack arm the destination never admitted the attackers at
	// all, yet aggregate policing still hands them several honest
	// users' worth of premium — that is the theft the paper describes.
	if atk.AttackerAttacked.P50 <= 2.0 {
		t.Errorf("attacker p50 under attack %.3f Mb/s, want well above an honest 1 Mb/s share", atk.AttackerAttacked.P50)
	}
}
