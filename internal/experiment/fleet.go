// Scenario fleet: a deterministic, seed-reproducible closed-loop
// driver that exercises the broker's admission machinery and the
// pluggable data plane at 10^5–10^6 simulated users. The fleet is the
// standing regression harness for scale work: every scenario runs
// real resv.Table admission (sharded into per-domain aggregates, the
// way a deployment splits its premium pool across ingress points),
// real dataplane enforcement (the closed-form fake backend), and a
// modelled signalling path — per-hop latency plus a FIFO single-server
// queue per broker — in dsim virtual time. The full-crypto signalling
// path measured in BENCH_concurrency.json runs at ~4.5 ms per
// reservation; at 10^5 users that is hours of wall clock, so the fleet
// models the path and drives the real decision logic under it.
//
// Everything is deterministic: virtual time starts at a fixed epoch,
// every behaviour draw comes from per-user splitmix64 streams seeded
// from FleetConfig.Seed, no Go map is iterated for a scheduling
// decision, and each scenario folds its grants, denials, cancels and
// final table snapshots into a SHA-256 digest — two runs with the same
// seed must produce byte-identical digests.
package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
	"time"

	"e2eqos/internal/dataplane"
	"e2eqos/internal/dataplane/fake"
	"e2eqos/internal/dsim"
	"e2eqos/internal/identity"
	"e2eqos/internal/resv"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

// fleetEpoch is the fixed virtual wall-clock origin. Reservation
// windows, table compaction horizons and admission stamps all derive
// from it plus dsim virtual time; nothing reads the real date.
var fleetEpoch = time.Date(2001, time.June, 4, 0, 0, 0, 0, time.UTC)

// fleetWindowSlack pads every reservation window past its planned
// cancel so the closed-loop cancel always precedes window expiry.
const fleetWindowSlack = 2 * time.Minute

// FleetConfig parameterises the scenario fleet.
type FleetConfig struct {
	// Users is the simulated population (default 100_000).
	Users int
	// Domains is the signalling chain length (default 3: source,
	// transit, destination).
	Domains int
	// PerUserRate is each honest reservation's bandwidth (default
	// 1 Mb/s).
	PerUserRate units.Bandwidth
	// CapacityFactor sizes each domain's premium aggregate as a
	// fraction of Users×PerUserRate (default 0.35 — diurnal peaks run
	// the pool hot without saturating it).
	CapacityFactor float64
	// Aggregates is how many admission shards each domain's capacity
	// is split into — the per-ingress aggregate tables a deployment
	// would run. Zero derives Users/256 clamped to [16, 4096], which
	// bounds the per-admit edge scan to a few hundred reservations.
	Aggregates int
	// HopLatency is the modelled one-way signalling latency per hop
	// (default 2ms, matching BENCH_concurrency.json's setup).
	HopLatency time.Duration
	// ServiceTime is the modelled per-request broker occupancy; each
	// broker is a FIFO single server, which is what turns flash crowds
	// into grant-latency tails (default 50µs).
	ServiceTime time.Duration
	// AttackerFraction is the share of users that misreserve in the
	// misreservation scenario (default 0.01).
	AttackerFraction float64
	// AttackerOverbook is how much bandwidth an attacker books in its
	// source domain relative to PerUserRate (default 10 — misbooking
	// is cheap when only the source domain checks).
	AttackerOverbook float64
	// Seed drives every RNG stream (default 1).
	Seed uint64
	// Scenarios selects a subset by name (diurnal, flash, churn,
	// misreservation, reroute); nil runs the first four — reroute is
	// opt-in because its disjoint-branch fan needs four domains.
	Scenarios []string
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Users <= 0 {
		c.Users = 100_000
	}
	if c.Domains <= 0 {
		c.Domains = 3
	}
	if c.PerUserRate <= 0 {
		c.PerUserRate = units.Mbps
	}
	if c.CapacityFactor <= 0 {
		c.CapacityFactor = 0.35
	}
	if c.Aggregates <= 0 {
		c.Aggregates = c.Users / 256
		if c.Aggregates < 16 {
			c.Aggregates = 16
		}
		if c.Aggregates > 4096 {
			c.Aggregates = 4096
		}
	}
	if c.HopLatency <= 0 {
		c.HopLatency = 2 * time.Millisecond
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 50 * time.Microsecond
	}
	if c.AttackerFraction <= 0 {
		c.AttackerFraction = 0.01
	}
	if c.AttackerOverbook <= 0 {
		c.AttackerOverbook = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = []string{"diurnal", "flash", "churn", "misreservation"}
	}
	return c
}

// Quantiles is a p50/p99/p999 summary of one distribution.
type Quantiles struct {
	P50, P99, P999 float64
	Count          int
}

// quantilesOf computes exact order-statistic quantiles (sorting a
// copy); exact beats sketched here because the values feed digests.
func quantilesOf(samples []float64) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return Quantiles{P50: at(0.50), P99: at(0.99), P999: at(0.999), Count: len(s)}
}

// AttackResult compares honest and attacker outcomes across the two
// provisioning modes of the misreservation scenario.
type AttackResult struct {
	// HonestDefended / HonestAttacked are honest users' premium
	// goodput (Mb/s) under end-to-end and source-domain provisioning.
	HonestDefended Quantiles
	HonestAttacked Quantiles
	// AttackerDefended / AttackerAttacked are the attackers' premium
	// goodput (Mb/s) in each mode.
	AttackerDefended Quantiles
	AttackerAttacked Quantiles
	// DegradationPct is the median honest goodput loss under attack.
	DegradationPct float64
}

// ScenarioResult is one scenario's measured outcome.
type ScenarioResult struct {
	Name    string
	Users   int
	Grants  int64
	Denials int64
	Retries int64
	Cancels int64
	// GrantLatencyMs is the end-to-end reserve latency distribution
	// (modelled hops + queueing + service) over granted requests.
	GrantLatencyMs Quantiles
	// GoodputMbps is the per-hold premium goodput distribution through
	// the edge marker.
	GoodputMbps Quantiles
	// Attack is set by the misreservation scenario only.
	Attack *AttackResult `json:",omitempty"`
	// Invariants lists the cross-cutting checks that passed.
	Invariants []string
	// Digest is the scenario's SHA-256 over grants, denials, cancels
	// and final table snapshots, in settle order.
	Digest string
	// Events is how many dsim events the scenario processed.
	Events int
}

// FleetResult is the full fleet run.
type FleetResult struct {
	Users     int
	Domains   int
	Seed      uint64
	Scenarios []ScenarioResult
	// Digest chains the scenario digests: the whole run's identity.
	Digest string
}

// fleetDomain is one domain of the modelled chain: its admission
// shards, its data plane, its broker's FIFO queue and the running
// committed aggregate the broker would push to its policer.
type fleetDomain struct {
	name      string
	capacity  units.Bandwidth
	shards    []*resv.Table
	plane     dataplane.DataPlane
	busyUntil time.Duration
	committed units.Bandwidth
}

// fleetBooking is one live reservation in the engine's ledger.
type fleetBooking struct {
	flow      string
	user      int
	bw        units.Bandwidth
	window    units.Window
	handles   []string
	path      []int
	grantedAt time.Duration
	offer     float64
	cancelled bool
}

// fleetEngine drives one scenario: fresh tables, planes and virtual
// clock per scenario so digests are independent.
type fleetEngine struct {
	cfg       FleetConfig
	sim       *dsim.Sim
	domains   []*fleetDomain
	bookings  map[string]*fleetBooking
	userShard []int
	userOffer []float64

	latencies  []float64 // ms, granted reserves
	goodputs   []float64 // Mb/s, completed holds
	grants     int64
	denials    int64
	retries    int64
	cancels    int64
	admitOps   int64 // successful table admissions, for compaction bounds
	drained    bool
	violations []string
	h          hash.Hash
	seq        int64
}

func newFleetEngine(cfg FleetConfig, scenario string) *fleetEngine {
	e := &fleetEngine{
		cfg:      cfg,
		sim:      dsim.New(),
		bookings: make(map[string]*fleetBooking),
		h:        sha256.New(),
	}
	fmt.Fprintf(e.h, "scenario %s seed %d users %d\n", scenario, cfg.Seed, cfg.Users)
	capacity := units.Bandwidth(cfg.CapacityFactor * float64(cfg.Users) * float64(cfg.PerUserRate))
	perShard := capacity / units.Bandwidth(cfg.Aggregates)
	if perShard < 4*cfg.PerUserRate {
		perShard = 4 * cfg.PerUserRate // tiny smoke configs still admit
	}
	clock := func() time.Time { return fleetEpoch.Add(e.sim.Now()) }
	for d := 0; d < cfg.Domains; d++ {
		dom := &fleetDomain{
			name:     fmt.Sprintf("d%d", d),
			capacity: perShard * units.Bandwidth(cfg.Aggregates),
			plane:    fake.New(),
		}
		for a := 0; a < cfg.Aggregates; a++ {
			t, err := resv.NewTable(fmt.Sprintf("d%da%d", d, a), perShard)
			if err != nil {
				panic(err) // capacity is positive by construction
			}
			t.SetClock(clock)
			dom.shards = append(dom.shards, t)
		}
		e.domains = append(e.domains, dom)
	}
	// Per-user statics from dedicated streams: the shard a user's
	// reservations land in, and how hard the user drives its profile.
	e.userShard = make([]int, cfg.Users)
	e.userOffer = make([]float64, cfg.Users)
	shardRNG := newRNG(cfg.Seed, 0xA11)
	offerRNG := newRNG(cfg.Seed, 0xB22)
	for u := 0; u < cfg.Users; u++ {
		e.userShard[u] = shardRNG.Intn(cfg.Aggregates)
		e.userOffer[u] = 0.70 + 0.55*offerRNG.Float64()
	}
	return e
}

// userRNG returns user u's private behaviour stream for a scenario
// phase, independent of every other user's.
func (e *fleetEngine) userRNG(u int, phase uint64) *rng {
	return newRNG(e.cfg.Seed, uint64(u)<<8|phase)
}

// at converts virtual sim time to virtual wall time.
func (e *fleetEngine) at(t time.Duration) time.Time { return fleetEpoch.Add(t) }

func (e *fleetEngine) violate(format string, args ...any) {
	if len(e.violations) < 32 {
		e.violations = append(e.violations, fmt.Sprintf(format, args...))
	}
}

// traverse models one signalling pass over the path: per-hop latency
// plus FIFO queueing plus service at each broker. It returns the
// virtual time the last hop finished processing.
func (e *fleetEngine) traverse(from time.Duration, path []int, visit func(d *fleetDomain, i int) bool) time.Duration {
	arrival := from
	for i, di := range path {
		d := e.domains[di]
		arrival += e.cfg.HopLatency
		if d.busyUntil > arrival {
			arrival = d.busyUntil
		}
		arrival += e.cfg.ServiceTime
		d.busyUntil = arrival
		if visit != nil && !visit(d, i) {
			return arrival
		}
	}
	return arrival
}

// reserve runs one closed-loop reservation attempt across path. On
// grant it installs the edge profile, bumps each domain's committed
// aggregate and returns the booking; on denial it rolls back partial
// admissions hop by hop and returns nil.
func (e *fleetEngine) reserve(user int, bw units.Bandwidth, hold time.Duration, path []int) *fleetBooking {
	t := e.sim.Now()
	win := units.NewWindow(e.at(t), hold+fleetWindowSlack)
	e.seq++
	flow := fmt.Sprintf("u%d.%d", user, e.seq)
	dn := identity.DN("fleet:" + flow)
	var handles []string
	deniedAt := -1
	done := e.traverse(t, path, func(d *fleetDomain, i int) bool {
		shard := d.shards[e.userShard[user]]
		r, err := shard.Admit(resv.AdmitRequest{
			User:      dn,
			SrcHost:   flow,
			DstHost:   d.name,
			Bandwidth: bw,
			Window:    win,
		})
		if err != nil {
			deniedAt = i
			return false
		}
		handles = append(handles, r.Handle)
		e.admitOps++
		return true
	})
	latency := done + e.cfg.HopLatency*time.Duration(len(path)) - t
	if deniedAt >= 0 {
		// Hop-by-hop rollback of the partial chain, most recent first.
		for i := len(handles) - 1; i >= 0; i-- {
			d := e.domains[path[i]]
			if err := d.shards[e.userShard[user]].Cancel(handles[i]); err != nil {
				e.violate("rollback %s at %s: %v", flow, d.name, err)
			}
		}
		e.denials++
		fmt.Fprintf(e.h, "deny %s %s %d\n", flow, e.domains[path[deniedAt]].name, latency)
		return nil
	}
	e.grants++
	e.latencies = append(e.latencies, float64(latency)/float64(time.Millisecond))
	b := &fleetBooking{
		flow:      flow,
		user:      user,
		bw:        bw,
		window:    win,
		handles:   handles,
		path:      append([]int(nil), path...),
		grantedAt: done,
		offer:     e.userOffer[user],
	}
	e.bookings[flow] = b
	src := e.domains[path[0]]
	src.plane.InstallProfile(flow, sla.TrafficProfile{Rate: bw, BucketBytes: defaultFleetBucket})
	src.plane.Mark(flow, 0, done) // open the marking window at grant
	for _, di := range path {
		d := e.domains[di]
		d.committed += bw
		if d.committed > d.capacity {
			e.violate("domain %s committed %v exceeds capacity %v", d.name, d.committed, d.capacity)
		}
		d.plane.SetAggregate(sla.TrafficProfile{Rate: d.committed, BucketBytes: defaultFleetBucket})
	}
	fmt.Fprintf(e.h, "grant %s %v %d %d\n", flow, bw, latency, done)
	return b
}

// defaultFleetBucket matches the broker's default profile burst.
const defaultFleetBucket = 30_000

// cancelBooking tears one booking down along its path (cancel
// signalling occupies the same broker queues) and folds the hold's
// measured goodput into the distribution.
func (e *fleetEngine) cancelBooking(b *fleetBooking) {
	if b == nil || b.cancelled {
		return
	}
	b.cancelled = true
	t := e.sim.Now()
	e.traverse(t, b.path, func(d *fleetDomain, i int) bool {
		if err := d.shards[e.userShard[b.user]].Cancel(b.handles[i]); err != nil {
			e.violate("cancel %s at %s: %v", b.flow, d.name, err)
		}
		d.committed -= b.bw
		agg := d.committed
		if agg < 0 {
			e.violate("domain %s committed went negative", d.name)
			agg = 0
		}
		rate := agg
		if rate <= 0 {
			rate = 1 // closed policer
		}
		d.plane.SetAggregate(sla.TrafficProfile{Rate: rate, BucketBytes: defaultFleetBucket})
		return true
	})
	e.cancels++
	hold := t - b.grantedAt
	src := e.domains[b.path[0]]
	if hold > 0 {
		offered := int64(float64(b.bw.BytesIn(hold)) * b.offer)
		premium := src.plane.Mark(b.flow, offered, t)
		e.goodputs = append(e.goodputs, float64(premium*8)/hold.Seconds()/1e6)
	}
	src.plane.RemoveProfile(b.flow)
	fmt.Fprintf(e.h, "cancel %s %d\n", b.flow, t)
}

// holdThenCancel schedules the closed-loop cancel for a grant.
func (e *fleetEngine) holdThenCancel(b *fleetBooking, hold time.Duration) {
	if b == nil {
		return
	}
	_, _ = e.sim.Schedule(e.sim.Now()+hold, func() { e.cancelBooking(b) })
}

// drain cancels every live booking immediately (scenario teardown).
func (e *fleetEngine) drain() {
	flows := make([]string, 0, len(e.bookings))
	for f, b := range e.bookings {
		if !b.cancelled {
			flows = append(flows, f)
		}
	}
	sort.Strings(flows)
	for _, f := range flows {
		e.cancelBooking(e.bookings[f])
	}
	e.drained = true
}

// finish runs the invariant battery, folds final table snapshots into
// the digest and assembles the scenario result.
func (e *fleetEngine) finish(name string, events int) (ScenarioResult, error) {
	checks := e.checkInvariants()
	for _, d := range e.domains {
		for _, shard := range d.shards {
			snap, err := shard.Snapshot()
			if err != nil {
				return ScenarioResult{}, fmt.Errorf("fleet: snapshot %s: %w", shard.Name(), err)
			}
			e.h.Write(snap)
		}
		cs := d.plane.ClassStats()
		fmt.Fprintf(e.h, "plane %s %d %d %d\n", d.name, cs.PremiumBytes, cs.BestEffortBytes, cs.ExcessPremiumBytes)
	}
	res := ScenarioResult{
		Name:           name,
		Users:          e.cfg.Users,
		Grants:         e.grants,
		Denials:        e.denials,
		Retries:        e.retries,
		Cancels:        e.cancels,
		GrantLatencyMs: quantilesOf(e.latencies),
		GoodputMbps:    quantilesOf(e.goodputs),
		Invariants:     checks,
		Digest:         hex.EncodeToString(e.h.Sum(nil)),
		Events:         events,
	}
	if len(e.violations) > 0 {
		return res, fmt.Errorf("fleet: scenario %s violated invariants: %v", name, e.violations)
	}
	return res, nil
}

// RunFleet runs the configured scenarios and returns their results.
// Any invariant violation fails the run.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	cfg = cfg.withDefaults()
	out := &FleetResult{Users: cfg.Users, Domains: cfg.Domains, Seed: cfg.Seed}
	whole := sha256.New()
	for _, name := range cfg.Scenarios {
		var res ScenarioResult
		var err error
		switch name {
		case "diurnal":
			res, err = runDiurnal(cfg)
		case "flash":
			res, err = runFlashCrowd(cfg)
		case "churn":
			res, err = runChurn(cfg)
		case "misreservation":
			res, err = runMisreservation(cfg)
		case "reroute":
			res, err = runReroute(cfg)
		default:
			return nil, fmt.Errorf("fleet: unknown scenario %q", name)
		}
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, res)
		fmt.Fprintf(whole, "%s %s\n", res.Name, res.Digest)
	}
	out.Digest = hex.EncodeToString(whole.Sum(nil))
	return out, nil
}
