package experiment

import "time"

// rng is a splitmix64 stream: a tiny, fast, statistically decent PRNG
// whose whole state is one uint64. The scenario fleet gives every
// (seed, stream) pair its own independent generator — per-user
// behaviour streams never interleave, so adding users or reordering
// events cannot perturb another user's draws. Nothing here reads the
// date or any other ambient source; identical seeds give identical
// runs.
type rng struct{ state uint64 }

// newRNG derives an independent stream from a seed. The stream id is
// folded in through one splitmix64 round so that streams 0, 1, 2…
// start far apart even for adjacent seeds.
func newRNG(seed, stream uint64) *rng {
	r := &rng{state: seed ^ mix64(stream+0x9E3779B97F4A7C15)}
	r.Uint64() // discard the first output to decorrelate trivial seeds
	return r
}

// mix64 is the splitmix64 output function.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 advances the stream.
func (r *rng) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

// Float64 returns a uniform draw in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform draw in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Between returns a uniform duration in [lo, hi).
func (r *rng) Between(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Uint64()%uint64(hi-lo))
}
