package wire

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestUvarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 21, 1 << 35, math.MaxUint64} {
		buf := AppendUvarint(nil, v)
		d := Dec{Buf: buf}
		if got := d.Uvarint(); got != v || d.Err() != nil {
			t.Errorf("uvarint %d round-tripped to %d (err %v)", v, got, d.Err())
		}
		if d.More() {
			t.Errorf("uvarint %d left %d trailing bytes", v, len(buf))
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 64, math.MaxInt64, math.MinInt64} {
		buf := AppendVarint(nil, v)
		d := Dec{Buf: buf}
		if got := d.Varint(); got != v || d.Err() != nil {
			t.Errorf("varint %d round-tripped to %d (err %v)", v, got, d.Err())
		}
	}
}

func TestZigzagSmallNegativesStayShort(t *testing.T) {
	if n := len(AppendVarint(nil, -1)); n != 1 {
		t.Errorf("-1 took %d bytes, want 1", n)
	}
	if n := len(AppendVarint(nil, -64)); n != 1 {
		t.Errorf("-64 took %d bytes, want 1", n)
	}
}

func TestUvarintRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"torn":      {0x80},
		"torn long": {0x80, 0x80, 0x80},
		"too long":  bytes.Repeat([]byte{0x80}, 11),
		"overflow":  append(bytes.Repeat([]byte{0xff}, 9), 0x7f),
	}
	for name, buf := range cases {
		d := Dec{Buf: buf}
		d.Uvarint()
		if d.Err() == nil {
			t.Errorf("%s: malformed varint %x decoded without error", name, buf)
		}
	}
}

func TestZeroValuesOmitted(t *testing.T) {
	buf := AppendUint(nil, 1, 0)
	buf = AppendInt(buf, 2, 0)
	buf = AppendBool(buf, 3, false)
	buf = AppendString(buf, 4, "")
	buf = AppendBytes(buf, 5, nil)
	buf = AppendTime(buf, 6, time.Time{})
	if len(buf) != 0 {
		t.Fatalf("zero-valued fields encoded %d bytes: %x", len(buf), buf)
	}
}

func TestFieldRoundTrip(t *testing.T) {
	when := time.Date(2026, 8, 8, 12, 30, 45, 123456789, time.UTC)
	buf := AppendUint(nil, 1, 42)
	buf = AppendInt(buf, 2, -7)
	buf = AppendBool(buf, 3, true)
	buf = AppendString(buf, 4, "hello")
	buf = AppendBytes(buf, 5, []byte{0, 1, 2})
	buf = AppendTime(buf, 6, when)

	d := Dec{Buf: buf}
	for d.More() {
		f, wt := d.Tag()
		switch f {
		case 1:
			if v := d.Uvarint(); v != 42 {
				t.Errorf("field 1 = %d", v)
			}
		case 2:
			if v := d.Varint(); v != -7 {
				t.Errorf("field 2 = %d", v)
			}
		case 3:
			if !d.Bool() {
				t.Error("field 3 = false")
			}
		case 4:
			if s := d.String(); s != "hello" {
				t.Errorf("field 4 = %q", s)
			}
		case 5:
			if b := d.Bytes(); !bytes.Equal(b, []byte{0, 1, 2}) {
				t.Errorf("field 5 = %x", b)
			}
		case 6:
			if ts := d.Time(); !ts.Equal(when) {
				t.Errorf("field 6 = %v, want %v", ts, when)
			}
		default:
			d.Skip(wt)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestTimeRejectsAbsurdNanos(t *testing.T) {
	content := AppendUvarint(AppendVarint(nil, 100), 2e9)
	if ts := DecodeTime(content); !ts.IsZero() {
		t.Errorf("2e9 nanoseconds decoded to %v, want zero time", ts)
	}
}

func TestNestedRoundTrip(t *testing.T) {
	// A nested message longer than 127 bytes forces a 2-byte length
	// prefix, exercising EndNested's content shift.
	long := string(bytes.Repeat([]byte("x"), 200))
	buf := AppendString(nil, 1, "pre")
	var start int
	buf, start = BeginNested(buf, 2)
	buf = AppendString(buf, 1, long)
	buf = AppendInt(buf, 2, 99)
	buf = EndNested(buf, start)
	buf = AppendString(buf, 3, "post")

	d := Dec{Buf: buf}
	var pre, post, inner string
	var n int64
	for d.More() {
		f, wt := d.Tag()
		switch f {
		case 1:
			pre = d.String()
		case 2:
			sub := Dec{Buf: d.Bytes()}
			for sub.More() {
				sf, swt := sub.Tag()
				switch sf {
				case 1:
					inner = sub.String()
				case 2:
					n = sub.Varint()
				default:
					sub.Skip(swt)
				}
			}
			if sub.Err() != nil {
				t.Fatal(sub.Err())
			}
		case 3:
			post = d.String()
		default:
			d.Skip(wt)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if pre != "pre" || post != "post" || inner != long || n != 99 {
		t.Fatalf("nested round-trip mismatch: pre=%q post=%q len(inner)=%d n=%d",
			pre, post, len(inner), n)
	}
}

func TestUnknownFieldsSkipped(t *testing.T) {
	buf := AppendUint(nil, 7, 1)            // unknown varint
	buf = AppendBytes(buf, 8, []byte("??")) // unknown bytes
	buf = AppendString(buf, 1, "known")
	d := Dec{Buf: buf}
	var got string
	for d.More() {
		f, wt := d.Tag()
		if f == 1 && wt == TBytes {
			got = d.String()
		} else {
			d.Skip(wt)
		}
	}
	if d.Err() != nil || got != "known" {
		t.Fatalf("skip walk: got %q, err %v", got, d.Err())
	}
}

func TestDecStickyError(t *testing.T) {
	d := Dec{Buf: []byte{0x0a, 0xff}} // field 1 bytes, length 127 but 0 remain
	d.Tag()
	d.Bytes()
	if d.Err() == nil {
		t.Fatal("truncated bytes field decoded without error")
	}
	// Every subsequent read must return zeros without advancing.
	if d.More() || d.Uvarint() != 0 || d.String() != "" || d.Rest() != nil {
		t.Fatal("reads after a decode error returned data")
	}
}

func TestTagRejectsFieldZero(t *testing.T) {
	d := Dec{Buf: []byte{0x00}} // field 0, varint
	d.Tag()
	if d.Err() == nil {
		t.Fatal("field number 0 accepted")
	}
}

func TestCanonicalBytes(t *testing.T) {
	enc := func() []byte {
		buf := AppendString(nil, 1, "a")
		buf = AppendInt(buf, 2, -5)
		buf = AppendTime(buf, 3, time.Unix(1700000000, 42).UTC())
		return buf
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("identical values encoded to different bytes")
	}
}
