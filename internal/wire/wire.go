// Package wire provides the primitives of the project's length-prefixed
// binary encoding: append-style encoders that write into a caller-owned
// buffer (so steady-state encoding never allocates) and a sticky-error
// cursor decoder that never panics on arbitrary input.
//
// The encoding is a deliberately small subset of the protobuf wire
// format: every field is a uvarint tag (fieldNumber<<3 | wireType)
// followed by either a varint (wire type 0) or a length-delimited byte
// string (wire type 2). Signed integers use zigzag. Zero-valued fields
// are omitted by convention, unknown tags are skipped on decode, and
// fields are written in ascending field-number order — together that
// makes the encoding canonical: equal values encode to equal bytes,
// which is what lets envelope signatures cover encoded bytes directly.
package wire

import "time"

// Wire types. Only two exist: everything is either a varint or bytes.
const (
	// TVarint is wire type 0: a single uvarint (or zigzag varint).
	TVarint = 0
	// TBytes is wire type 2: uvarint length followed by that many bytes.
	TBytes = 2
)

// maxVarintLen bounds one varint to the 10 bytes a uint64 needs;
// anything longer is overlong/corrupt.
const maxVarintLen = 10

// AppendUvarint appends v in LEB128 form.
func AppendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// Zigzag maps a signed value to the unsigned space so small negatives
// stay short on the wire.
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag reverses Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendVarint appends v zigzag-encoded.
func AppendVarint(buf []byte, v int64) []byte {
	return AppendUvarint(buf, Zigzag(v))
}

// AppendTag appends the tag for field with the given wire type.
func AppendTag(buf []byte, field uint32, wt byte) []byte {
	return AppendUvarint(buf, uint64(field)<<3|uint64(wt))
}

// AppendUint appends field=v, omitting zero.
func AppendUint(buf []byte, field uint32, v uint64) []byte {
	if v == 0 {
		return buf
	}
	buf = AppendTag(buf, field, TVarint)
	return AppendUvarint(buf, v)
}

// AppendInt appends field=v zigzag-encoded, omitting zero.
func AppendInt(buf []byte, field uint32, v int64) []byte {
	if v == 0 {
		return buf
	}
	buf = AppendTag(buf, field, TVarint)
	return AppendVarint(buf, v)
}

// AppendBool appends field=1, omitting false.
func AppendBool(buf []byte, field uint32, v bool) []byte {
	if !v {
		return buf
	}
	buf = AppendTag(buf, field, TVarint)
	return append(buf, 1)
}

// AppendString appends field=s, omitting the empty string.
func AppendString(buf []byte, field uint32, s string) []byte {
	if s == "" {
		return buf
	}
	buf = AppendTag(buf, field, TBytes)
	buf = AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends field=b, omitting empty/nil.
func AppendBytes(buf []byte, field uint32, b []byte) []byte {
	if len(b) == 0 {
		return buf
	}
	buf = AppendTag(buf, field, TBytes)
	buf = AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// AppendTime appends field=t as a bytes field holding zigzag seconds +
// uvarint nanoseconds, omitting the zero time entirely so IsZero
// round-trips (a decoded absent field stays time.Time{}).
func AppendTime(buf []byte, field uint32, t time.Time) []byte {
	if t.IsZero() {
		return buf
	}
	buf = AppendTag(buf, field, TBytes)
	var tmp [maxVarintLen * 2]byte
	n := len(AppendUvarint(AppendVarint(tmp[:0], t.Unix()), uint64(t.Nanosecond())))
	buf = AppendUvarint(buf, uint64(n))
	return append(buf, tmp[:n]...)
}

// DecodeTime reverses the content of an AppendTime bytes field. An
// empty or malformed payload yields the zero time.
func DecodeTime(b []byte) time.Time {
	if len(b) == 0 {
		return time.Time{}
	}
	d := Dec{Buf: b}
	sec := d.Varint()
	nsec := d.Uvarint()
	if d.Err() != nil || nsec >= 1e9 {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

// BeginNested opens a length-delimited nested message for field,
// returning the buffer and the offset where the nested content starts.
// The caller appends the nested fields, then calls EndNested with the
// returned offset to patch the length prefix in. Using begin/end (and
// method values rather than closures) keeps the nested encode on the
// caller's buffer with no intermediate allocation.
func BeginNested(buf []byte, field uint32) ([]byte, int) {
	buf = AppendTag(buf, field, TBytes)
	return buf, len(buf)
}

// EndNested closes a BeginNested region by inserting the uvarint length
// of everything appended since start.
func EndNested(buf []byte, start int) []byte {
	n := len(buf) - start
	var tmp [maxVarintLen]byte
	ln := len(AppendUvarint(tmp[:0], uint64(n)))
	buf = append(buf, tmp[:ln]...)       // grow by the prefix size
	copy(buf[start+ln:], buf[start:start+n]) // shift the nested content right
	copy(buf[start:], tmp[:ln])
	return buf
}

// errCorrupt is the sticky decode failure; the cursor exposes it via
// Err rather than returning errors from every read.
type corruptError string

func (e corruptError) Error() string { return "wire: " + string(e) }

// Dec is a cursor over an encoded buffer. All reads are bounds-checked;
// the first failure sets a sticky error and every subsequent read
// returns zero values, so decoders can read a whole struct and check
// Err once. Byte reads return subslices of Buf (no copying).
type Dec struct {
	Buf []byte
	off int
	err error
}

// Err returns the sticky decode error, nil while healthy.
func (d *Dec) Err() error { return d.err }

// More reports whether undecoded bytes remain and no error occurred.
func (d *Dec) More() bool { return d.err == nil && d.off < len(d.Buf) }

func (d *Dec) fail(msg string) {
	if d.err == nil {
		d.err = corruptError(msg)
	}
}

// Uvarint reads one LEB128 value.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	for i := 0; i < maxVarintLen; i++ {
		if d.off >= len(d.Buf) {
			d.fail("truncated varint")
			return 0
		}
		b := d.Buf[d.off]
		d.off++
		if i == maxVarintLen-1 && b > 1 {
			d.fail("varint overflows uint64")
			return 0
		}
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v
		}
	}
	d.fail("varint too long")
	return 0
}

// Varint reads one zigzag value.
func (d *Dec) Varint() int64 { return Unzigzag(d.Uvarint()) }

// Bool reads one varint as a boolean.
func (d *Dec) Bool() bool { return d.Uvarint() != 0 }

// Tag reads one field tag. A zero field number is invalid.
func (d *Dec) Tag() (field uint32, wt byte) {
	t := d.Uvarint()
	if d.err != nil {
		return 0, 0
	}
	if t>>3 == 0 || t>>3 > 1<<29 {
		d.fail("invalid field number")
		return 0, 0
	}
	return uint32(t >> 3), byte(t & 7)
}

// Bytes reads one length-delimited field as a subslice of Buf.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.Buf)-d.off) {
		d.fail("bytes length past end of buffer")
		return nil
	}
	b := d.Buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// String reads one length-delimited field as a string (one allocation).
func (d *Dec) String() string { return string(d.Bytes()) }

// Rest returns every byte not yet consumed (nil after an error). The
// journal's record framing uses it: the final field of a record is the
// unbounded remainder of its already-length-prefixed frame.
func (d *Dec) Rest() []byte {
	if d.err != nil {
		return nil
	}
	b := d.Buf[d.off:]
	d.off = len(d.Buf)
	return b
}

// Time reads one length-delimited field as an AppendTime value.
func (d *Dec) Time() time.Time { return DecodeTime(d.Bytes()) }

// Skip discards one field of the given wire type, keeping unknown-field
// forward compatibility cheap.
func (d *Dec) Skip(wt byte) {
	switch wt {
	case TVarint:
		d.Uvarint()
	case TBytes:
		d.Bytes()
	default:
		d.fail("unsupported wire type")
	}
}
