//go:build !race

package signalling

const raceEnabled = false
