package signalling

import (
	"sync"
	"testing"
	"time"

	"e2eqos/internal/transport"
)

// silentHandler never responds: Serve's handler must return something,
// so the server side is driven manually to swallow requests.
func silentServer(t *testing.T, ln transport.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					if _, err := conn.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()
}

func TestCallTimeoutOnSilentPeer(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	silentServer(t, ln)

	c, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 60 * time.Millisecond
	start := time.Now()
	_, err = c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "r"}})
	if err == nil {
		t.Fatal("call to silent peer succeeded")
	}
	if !transport.IsTimeout(err) {
		t.Fatalf("error %v is not a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timed out after %v, want ~60ms", elapsed)
	}
}

func TestCallDoesNotMutateCallerMessage(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, HandlerFunc(func(_ Peer, msg *Message) *Message {
		return OKResult(msg.Status.RARID)
	}))

	// One message value shared across two clients and repeated calls:
	// its ID must stay untouched or concurrent matching corrupts.
	shared := &Message{Type: MsgStatus, Status: &StatusPayload{RARID: "shared"}}
	c1, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		for _, c := range []*Client{c1, c2} {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				resp, err := c.Call(shared)
				if err != nil {
					errs <- err
					return
				}
				if !resp.Result.Granted || resp.Result.Handle != "shared" {
					errs <- err
				}
			}(c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if shared.ID != 0 {
		t.Errorf("caller's message mutated: ID = %d, want 0", shared.ID)
	}
}

func TestCallDropsMismatchedIDs(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A misbehaving peer floods responses that never match the request
	// ID. The demux loop must drop and count them — never deliver one
	// to the waiting call — and the call fails by its own deadline.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if _, err := conn.Recv(); err != nil {
			return
		}
		bogus := OKResult("bogus")
		bogus.ID = 999_999
		data, _ := bogus.Encode()
		for {
			if err := conn.Send(data); err != nil {
				return
			}
		}
	}()

	c, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 100 * time.Millisecond
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "r"}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call against id-flooding peer succeeded")
		}
		if !transport.IsTimeout(err) {
			t.Errorf("error = %v, want deadline expiry", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call spun on mismatched responses instead of bailing")
	}
	if c.LateDropped() == 0 {
		t.Error("no mismatched responses counted as dropped")
	}
	if !c.Alive() {
		t.Errorf("connection died on mismatched IDs: %v", c.Err())
	}
}
