package signalling

import (
	"encoding/json"
	"sync"
	"testing"

	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/transport"
)

func TestMessageEncodeDecode(t *testing.T) {
	msg := &Message{
		Type:   MsgCancel,
		ID:     7,
		Cancel: &CancelPayload{RARID: "RAR-1"},
	}
	data, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgCancel || got.ID != 7 || got.Cancel.RARID != "RAR-1" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	if _, err := DecodeMessage([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
	if _, err := DecodeMessage([]byte(`{"id":1}`)); err == nil {
		t.Error("typeless message decoded")
	}
}

func TestNewReserveMessageCarriesEnvelope(t *testing.T) {
	key, err := identity.GenerateKeyPair(identity.NewDN("Grid", "A", "alice"))
	if err != nil {
		t.Fatal(err)
	}
	env, err := envelope.Seal(key, envelope.Body{Request: json.RawMessage(`{"x":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := NewReserveMessage(ModeEndToEnd, env)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Reserve.Mode != ModeEndToEnd {
		t.Errorf("mode = %s", msg.Reserve.Mode)
	}
	decoded, err := msg.Reserve.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	if decoded.SignerDN != key.DN {
		t.Errorf("signer = %s", decoded.SignerDN)
	}
}

func TestApprovalSignVerify(t *testing.T) {
	key, err := identity.GenerateKeyPair(identity.NewDN("Grid", "B", "bb-b"))
	if err != nil {
		t.Fatal(err)
	}
	a := DomainApproval{Domain: "B", BBDN: key.DN, RARID: "RAR-1", Handle: "h1", Granted: true}
	if err := SignApproval(&a, key); err != nil {
		t.Fatal(err)
	}
	if err := VerifyApproval(&a, key.Public()); err != nil {
		t.Fatalf("valid approval rejected: %v", err)
	}
	a.Granted = false
	if err := VerifyApproval(&a, key.Public()); err == nil {
		t.Fatal("tampered approval accepted")
	}
	if err := VerifyApproval(nil, key.Public()); err == nil {
		t.Fatal("nil approval accepted")
	}
}

// echoHandler grants every status request with the peer's DN as the
// handle, to exercise the RPC plumbing.
func echoHandler() Handler {
	return HandlerFunc(func(peer Peer, msg *Message) *Message {
		if msg.Type != MsgStatus {
			return ErrorResult("unexpected type")
		}
		return OKResult(string(peer.DN) + "/" + msg.Status.RARID)
	})
}

func TestClientServerRoundTrip(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", []byte("scert"))
	client := net.NewEndpoint("/CN=client", []byte("ccert"))
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, echoHandler())

	c, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.PeerDN() != "/CN=server" {
		t.Errorf("peer = %s", c.PeerDN())
	}
	resp, err := c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "r1"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgResult || !resp.Result.Granted || resp.Result.Handle != "/CN=client/r1" {
		t.Errorf("resp = %+v", resp.Result)
	}
}

func TestClientSerialisesConcurrentCalls(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, echoHandler())

	c, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "r"}})
			if err != nil {
				errs <- err
				return
			}
			if !resp.Result.Granted {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServeRejectsNilHandlerResponse(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, HandlerFunc(func(Peer, *Message) *Message { return nil }))

	c, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "r"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || resp.Result.Granted {
		t.Errorf("expected synthesised error result, got %+v", resp.Result)
	}
}
