package signalling

import (
	"fmt"
	"testing"
)

// benchBatchMessage builds the frame shape that dominates the sub-flow
// hot path: a tunnel batch of n alloc ops.
func benchBatchMessage(n int) *Message {
	ops := make([]TunnelOp, n)
	for i := range ops {
		ops[i] = TunnelOp{Action: OpAlloc, SubFlowID: fmt.Sprintf("sf-%04d", i), Bandwidth: 1_000_000}
	}
	return &Message{Type: MsgTunnelBatch, ID: 42, TunnelBatch: &TunnelBatchPayload{
		TunnelRARID: "RAR-tunnel-1",
		BatchID:     "B-00000000000000000000001",
		User:        "/O=Grid/CN=alice",
		Ops:         ops,
	}}
}

// BenchmarkCodec compares the binary codec against the JSON interop
// encoding on the batch-64 frame — the `make bench-codec` numbers. Run
// with -benchmem: the binary encode arm is the one the allocation gate
// (TestEncodeAllocationFree) holds at zero.
func BenchmarkCodec(b *testing.B) {
	msg := benchBatchMessage(64)
	binFrame := msg.AppendBinary(nil)
	jsonFrame, err := msg.EncodeJSON()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("frame bytes: binary=%d json=%d", len(binFrame), len(jsonFrame))

	b.Run("encode-binary", func(b *testing.B) {
		buf := make([]byte, 0, 2*len(binFrame))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = msg.AppendBinary(buf[:0])
		}
	})
	b.Run("encode-json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := msg.EncodeJSON(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeMessage(binFrame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeMessage(jsonFrame); err != nil {
				b.Fatal(err)
			}
		}
	})
}
