//go:build race

package signalling

// raceEnabled skips the allocs-per-op gates under the race detector,
// whose instrumentation allocates on paths that are clean in a normal
// build.
const raceEnabled = true
