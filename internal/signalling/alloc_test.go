package signalling

import "testing"

// TestEncodeAllocationFree is the gate behind `make bench-codec`: the
// binary encoders must not allocate when appending to a buffer with
// capacity — that is the whole point of replacing the JSON hot path.
// Decoding is allowed its bounded per-field allocations (strings,
// slices), but encoding a frame the RPC layer has a pooled buffer for
// must cost zero.
func TestEncodeAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gate is meaningless under the race detector")
	}
	msgs := goldenMessages()
	bufs := make([][]byte, len(msgs))
	for i, g := range msgs {
		bufs[i] = make([]byte, 0, 4096)
		_ = g.msg // warm nothing; AppendBinary has no lazy state
	}
	for i, g := range msgs {
		g := g
		buf := bufs[i]
		// The result golden carries a PolicyInfo map, whose canonical
		// key-sort allocates by design (cold path). Gate every other
		// message at zero and the map case at its documented bound.
		limit := 0.0
		if g.msg.Result != nil && len(g.msg.Result.PolicyInfo) > 0 {
			limit = 1.0
		}
		got := testing.AllocsPerRun(200, func() {
			buf = g.msg.AppendBinary(buf[:0])
		})
		if got > limit {
			t.Errorf("%s: AppendBinary allocates %.1f per op, want <= %.0f", g.name, got, limit)
		}
	}
}
