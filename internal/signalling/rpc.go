package signalling

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/transport"
	"e2eqos/internal/wire"
)

// Peer describes the authenticated remote side of a connection, as
// established by the channel handshake.
type Peer struct {
	DN      identity.DN
	CertDER []byte
}

// Handler processes one request message and returns the response.
// Implementations must be safe for concurrent use: requests arriving
// on one connection are dispatched concurrently.
type Handler interface {
	Handle(peer Peer, msg *Message) *Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(peer Peer, msg *Message) *Message

// Handle calls f.
func (f HandlerFunc) Handle(peer Peer, msg *Message) *Message { return f(peer, msg) }

// Server accepts connections and dispatches inbound requests to a
// Handler. Unlike the bare Serve helpers it tracks its live
// connections, so Shutdown can tear down the listener and every
// established channel — the way a crashed broker looks to its peers.
type Server struct {
	h      Handler
	logger *slog.Logger

	mu    sync.Mutex
	ln    transport.Listener
	conns map[transport.Conn]struct{}
	shut  bool
}

// NewServer builds a server around h. A nil logger falls back to
// slog.Default.
func NewServer(h Handler, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{h: h, logger: logger, conns: make(map[transport.Conn]struct{})}
}

// Serve accepts connections from ln until the listener closes or
// Shutdown is called. Each connection gets its own goroutine, and each
// request on a connection is handled in its own goroutine: responses
// are matched to requests by message ID, not by ordering, so a slow
// request never blocks the ones behind it.
func (s *Server) Serve(ln transport.Listener) {
	s.mu.Lock()
	if s.shut {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		go func() {
			serveConn(conn, s.h, s.logger)
			s.untrack(conn)
		}()
	}
}

func (s *Server) track(conn transport.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shut {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn transport.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Shutdown closes the listener and every established connection. Peers
// observe it as a transport failure on their next operation — the test
// harness uses it to model a broker crash, and a later Serve on a fresh
// listener models the restart.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.shut = true
	ln := s.ln
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Serve accepts connections from ln and dispatches inbound messages to
// h until the listener closes. Handler panics are reported through the
// default logger with a stack trace; use ServeWith to direct them to a
// structured logger.
func Serve(ln transport.Listener, h Handler) {
	ServeWith(ln, h, nil)
}

// ServeWith is Serve with an explicit structured logger for protocol
// errors and handler panics (nil falls back to slog.Default, which
// writes through the standard log package).
func ServeWith(ln transport.Listener, h Handler, logger *slog.Logger) {
	NewServer(h, logger).Serve(ln)
}

func serveConn(conn transport.Conn, h Handler, logger *slog.Logger) {
	defer conn.Close()
	peer := Peer{DN: conn.PeerDN(), CertDER: conn.PeerCertDER()}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		data, err := conn.Recv()
		if err != nil {
			return
		}
		// Answer in the encoding the request arrived in: this is the
		// whole per-connection wire negotiation. A `-wire json` client
		// only ever sends JSON frames, so it only ever receives them.
		mode := WireBinary
		if len(data) == 0 || data[0] != BinMagic {
			mode = WireJSON
		}
		msg, err := DecodeMessage(data)
		if err != nil {
			// The transport is message-oriented, so one undecodable body
			// is never a framing desync: answer an error result (with a
			// best-effort request ID so the caller fails fast instead of
			// timing out) and keep serving the other multiplexed calls.
			logger.Warn("signalling: malformed message body",
				obs.AttrPeer, string(peer.DN), "err", err)
			resp := ErrorResult("malformed request: " + err.Error())
			resp.ID = peekID(data)
			sendResponse(conn, resp, mode, peer, logger)
			continue
		}
		// One goroutine per request: the transport's Send is safe for
		// concurrent use on both implementations, and the mux client
		// matches responses by ID, so out-of-order completion is fine.
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := safeHandle(h, peer, msg, logger)
			if resp == nil {
				resp = ErrorResult("internal: no response")
			}
			// Copy before stamping the ID: handlers may return a shared
			// message (e.g. a recorded outcome replayed to duplicate
			// requests), and two requests must not race on its ID field.
			stamped := *resp
			stamped.ID = msg.ID
			sendResponse(conn, &stamped, mode, peer, logger)
		}()
	}
}

// sendResponse encodes resp in the request's wire mode on a pooled
// buffer and sends it, closing the connection on transport failure.
func sendResponse(conn transport.Conn, resp *Message, mode WireMode, peer Peer, logger *slog.Logger) {
	bufp := encBufPool.Get().(*[]byte)
	out, err := resp.appendWire((*bufp)[:0], mode)
	if err != nil {
		encBufPool.Put(bufp)
		logger.Error("signalling: encoding response failed",
			obs.AttrPeer, string(peer.DN), "err", err)
		conn.Close()
		return
	}
	sendErr := conn.Send(out)
	*bufp = out[:0]
	encBufPool.Put(bufp)
	if sendErr != nil {
		conn.Close()
	}
}

// peekID extracts the request ID from a frame whose body failed to
// decode, so the error result reaches the waiting call. Binary frames
// carry the ID right after the fixed header; for JSON a lenient
// partial decode is attempted. Zero (no waiter) when nothing can be
// recovered — the peer's call then times out instead of failing fast,
// which is safe, just slower.
func peekID(data []byte) uint64 {
	if len(data) > 3 && data[0] == BinMagic {
		d := wire.Dec{Buf: data[3:]}
		if id := d.Uvarint(); d.Err() == nil {
			return id
		}
		return 0
	}
	var hdr struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal(data, &hdr); err != nil {
		return 0
	}
	return hdr.ID
}

// safeHandle dispatches one request, converting a handler panic into
// a logged error (with stack trace) and a denied result instead of
// silently killing the connection's goroutine — a poisoned request
// must not take the whole server down, and the operator must see it.
func safeHandle(h Handler, peer Peer, msg *Message, logger *slog.Logger) (resp *Message) {
	defer func() {
		if r := recover(); r != nil {
			logger.Error("signalling: handler panic",
				obs.AttrPeer, string(peer.DN),
				"type", string(msg.Type),
				"panic", fmt.Sprint(r),
				"stack", string(debug.Stack()))
			resp = ErrorResult("internal: handler panic")
		}
	}()
	return h.Handle(peer, msg)
}

// ErrorResult builds a denied/failed result message.
func ErrorResult(reason string) *Message {
	return &Message{Type: MsgResult, Result: &ResultPayload{Granted: false, Reason: reason}}
}

// OKResult builds a granted result message.
func OKResult(handle string) *Message {
	return &Message{Type: MsgResult, Result: &ResultPayload{Granted: true, Handle: handle}}
}

// Client is a multiplexed request/response client over one
// authenticated connection: any number of Calls may be outstanding at
// once, each with its own deadline. A single demux goroutine reads
// responses and routes each to the waiting call by message ID; a
// response whose call already gave up (deadline expiry) finds no
// waiter and is dropped, counted by LateDropped. When the demux loop
// exits — transport error, peer crash, Close — every in-flight and
// future call fails with the terminal error and Alive reports false,
// so a connection owner (the broker's peer pool) can evict and redial.
type Client struct {
	conn transport.Conn

	// Timeout bounds each Call (send plus wait for the matching
	// response) when positive; zero waits forever. It may be set any
	// time before the first call.
	Timeout time.Duration

	// Wire selects the frame encoding for outbound requests (the
	// server mirrors it per request). Set before the first call;
	// the zero value is the binary hot path, WireJSON the debug mode.
	Wire WireMode

	sendMu sync.Mutex // serializes Send and send-deadline handling

	mu      sync.Mutex
	nextID  uint64
	waiters map[uint64]chan *Message
	err     error // terminal fault, set once when the client dies
	closing bool  // CloseWhenIdle called: refuse new calls, close at drain

	failOnce sync.Once     // makes fail idempotent: demux exit and send faults race
	done     chan struct{} // closed when the client dies

	late atomic.Int64 // responses dropped because their waiter was gone
}

// NewClient wraps an established connection and starts its demux
// goroutine.
func NewClient(conn transport.Conn) *Client {
	c := &Client{
		conn:    conn,
		waiters: make(map[uint64]chan *Message),
		done:    make(chan struct{}),
	}
	go c.demux()
	return c
}

// Dial connects to addr with the dialer and wraps the connection.
func Dial(d transport.Dialer, addr string) (*Client, error) {
	conn, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// PeerDN reports the authenticated remote identity.
func (c *Client) PeerDN() identity.DN { return c.conn.PeerDN() }

// PeerCertDER reports the remote certificate.
func (c *Client) PeerCertDER() []byte { return c.conn.PeerCertDER() }

// Alive reports whether the demux loop is still running, i.e. the
// connection has not hit a terminal fault. A false return means every
// call will fail until the owner redials.
func (c *Client) Alive() bool {
	select {
	case <-c.done:
		return false
	default:
		return true
	}
}

// Err returns the terminal fault that stopped the demux loop (nil
// while the client is alive).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// LateDropped counts responses that arrived after their call had
// already given up — the demux analogue of the old stale-response
// skip, now an accounting detail instead of a failure mode.
func (c *Client) LateDropped() int64 { return c.late.Load() }

// Pending reports the number of in-flight calls.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// demux is the reader loop: it routes each inbound response to the
// call that registered its ID and drops (counting) responses whose
// caller already gave up. Any receive or decode failure is terminal —
// the framing may be desynchronized — so the loop records the fault,
// wakes every waiter, and exits.
func (c *Client) demux() {
	for {
		raw, err := c.conn.Recv()
		if err != nil {
			c.fail(fmt.Errorf("signalling: recv from %s: %w", c.conn.PeerDN(), err))
			return
		}
		resp, err := DecodeMessage(raw)
		if err != nil {
			c.fail(fmt.Errorf("signalling: undecodable response from %s: %w", c.conn.PeerDN(), err))
			return
		}
		c.mu.Lock()
		ch, ok := c.waiters[resp.ID]
		if ok {
			delete(c.waiters, resp.ID)
		}
		drained := c.closing && len(c.waiters) == 0
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered: never blocks the loop
		} else {
			c.late.Add(1)
		}
		if drained {
			// Last in-flight call settled after CloseWhenIdle: the next
			// Recv fails and the loop exits through fail.
			c.conn.Close()
		}
	}
}

// fail records the terminal error, wakes every in-flight call, and
// marks the client dead. Idempotent: the demux loop calls it when Recv
// fails, and a send fault calls it directly so Alive flips false
// before the demux loop ever notices the closed connection.
func (c *Client) fail(err error) {
	c.failOnce.Do(func() {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.waiters = make(map[uint64]chan *Message)
		c.mu.Unlock()
		close(c.done) // waiters and Alive observe the death through done
		c.conn.Close()
	})
}

// Call sends msg and blocks for the matching response, honouring the
// client's Timeout. The caller's message is never mutated, so one
// message value may safely be shared across clients and retries.
func (c *Client) Call(msg *Message) (*Message, error) {
	return c.CallTimeout(msg, c.Timeout)
}

// CallTimeout is Call with an explicit per-call deadline (0 = wait
// forever). A deadline expiry surfaces as an error matched by
// transport.IsTimeout; unlike the pre-mux client the connection
// itself stays usable — other in-flight calls are unaffected, and the
// late response (if it ever arrives) is dropped and counted. The
// request may still be processed remotely, so callers owning remote
// state should clean it up separately.
func (c *Client) CallTimeout(msg *Message, timeout time.Duration) (*Message, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.closing {
		c.mu.Unlock()
		return nil, fmt.Errorf("signalling: client to %s is draining", c.conn.PeerDN())
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *Message, 1)
	c.waiters[id] = ch
	c.mu.Unlock()

	// Copy before assigning the ID: the caller may reuse msg across
	// clients or retries, and a shared mutation would corrupt the
	// request/response matching of concurrent calls.
	m := *msg
	m.ID = id
	bufp := encBufPool.Get().(*[]byte)
	data, err := m.appendWire((*bufp)[:0], c.Wire)
	if err != nil {
		encBufPool.Put(bufp)
		c.unregister(id)
		return nil, err
	}
	err = c.send(data, timeout)
	*bufp = data[:0]
	encBufPool.Put(bufp)
	if err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("signalling: send to %s: %w", c.conn.PeerDN(), err)
	}

	var expiry <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expiry = t.C
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-c.done:
		select {
		case resp := <-ch: // response raced the connection death
			return resp, nil
		default:
		}
		return nil, c.Err()
	case <-expiry:
		c.unregister(id)
		select {
		case resp := <-ch: // delivered in the instant before unregister
			return resp, nil
		default:
		}
		return nil, fmt.Errorf("signalling: call %d to %s: %w", id, c.conn.PeerDN(), transport.ErrTimeout)
	}
}

// send transmits one frame under the send mutex, bounding the write
// with a send-only deadline so a concurrent demux Recv is unaffected.
// Any send failure is terminal for the whole client: a deadline expiry
// (or any partial write on a stream transport) may leave a truncated
// frame on the wire, and the next write would land mid-frame. Marking
// the client dead here makes Alive report false immediately, so the
// peer pool evicts and redials instead of writing onto a corrupt
// stream.
func (c *Client) send(data []byte, timeout time.Duration) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if timeout > 0 {
		if err := c.conn.SetSendDeadline(time.Now().Add(timeout)); err != nil {
			c.fail(fmt.Errorf("signalling: send deadline on %s: %w", c.conn.PeerDN(), err))
			return err
		}
		defer c.conn.SetSendDeadline(time.Time{})
	}
	if err := c.conn.Send(data); err != nil {
		c.fail(fmt.Errorf("signalling: send to %s: %w", c.conn.PeerDN(), err))
		return err
	}
	return nil
}

// unregister withdraws a waiter (deadline expiry, send failure) and
// completes a pending CloseWhenIdle if this was the last one.
func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.waiters, id)
	drained := c.closing && len(c.waiters) == 0
	c.mu.Unlock()
	if drained {
		c.conn.Close()
	}
}

// CloseWhenIdle refuses new calls and closes the connection as soon as
// every in-flight call has settled. The broker's pool uses it to evict
// a suspect connection without killing the healthy calls still
// multiplexed on it; a hard Close remains available for shutdown.
func (c *Client) CloseWhenIdle() {
	c.mu.Lock()
	c.closing = true
	drained := len(c.waiters) == 0
	c.mu.Unlock()
	if drained {
		c.conn.Close()
	}
}

// Close tears the connection down immediately; in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }
