package signalling

import (
	"fmt"
	"log"
	"sync"

	"e2eqos/internal/identity"
	"e2eqos/internal/transport"
)

// Peer describes the authenticated remote side of a connection, as
// established by the channel handshake.
type Peer struct {
	DN      identity.DN
	CertDER []byte
}

// Handler processes one request message and returns the response.
// Implementations must be safe for concurrent use.
type Handler interface {
	Handle(peer Peer, msg *Message) *Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(peer Peer, msg *Message) *Message

// Handle calls f.
func (f HandlerFunc) Handle(peer Peer, msg *Message) *Message { return f(peer, msg) }

// Serve accepts connections from ln and dispatches inbound messages
// to h until the listener closes. Each connection gets its own
// goroutine; requests on one connection are processed sequentially,
// preserving ordering.
func Serve(ln transport.Listener, h Handler) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, h)
	}
}

func serveConn(conn transport.Conn, h Handler) {
	defer conn.Close()
	peer := Peer{DN: conn.PeerDN(), CertDER: conn.PeerCertDER()}
	for {
		data, err := conn.Recv()
		if err != nil {
			return
		}
		msg, err := DecodeMessage(data)
		if err != nil {
			log.Printf("signalling: dropping malformed message from %s: %v", peer.DN, err)
			return
		}
		resp := h.Handle(peer, msg)
		if resp == nil {
			resp = ErrorResult("internal: no response")
		}
		resp.ID = msg.ID
		out, err := resp.Encode()
		if err != nil {
			log.Printf("signalling: encoding response to %s: %v", peer.DN, err)
			return
		}
		if err := conn.Send(out); err != nil {
			return
		}
	}
}

// ErrorResult builds a denied/failed result message.
func ErrorResult(reason string) *Message {
	return &Message{Type: MsgResult, Result: &ResultPayload{Granted: false, Reason: reason}}
}

// OKResult builds a granted result message.
func OKResult(handle string) *Message {
	return &Message{Type: MsgResult, Result: &ResultPayload{Granted: true, Handle: handle}}
}

// Client is a synchronous request/response client over one
// authenticated connection. One request is outstanding at a time;
// concurrent callers serialise.
type Client struct {
	mu     sync.Mutex
	conn   transport.Conn
	nextID uint64
}

// NewClient wraps an established connection.
func NewClient(conn transport.Conn) *Client {
	return &Client{conn: conn}
}

// Dial connects to addr with the dialer and wraps the connection.
func Dial(d transport.Dialer, addr string) (*Client, error) {
	conn, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// PeerDN reports the authenticated remote identity.
func (c *Client) PeerDN() identity.DN { return c.conn.PeerDN() }

// PeerCertDER reports the remote certificate.
func (c *Client) PeerCertDER() []byte { return c.conn.PeerCertDER() }

// Call sends msg and blocks for the matching response.
func (c *Client) Call(msg *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	msg.ID = c.nextID
	data, err := msg.Encode()
	if err != nil {
		return nil, err
	}
	if err := c.conn.Send(data); err != nil {
		return nil, fmt.Errorf("signalling: send to %s: %w", c.conn.PeerDN(), err)
	}
	for {
		raw, err := c.conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("signalling: recv from %s: %w", c.conn.PeerDN(), err)
		}
		resp, err := DecodeMessage(raw)
		if err != nil {
			return nil, err
		}
		if resp.ID != msg.ID {
			// Stale response from an earlier timed-out call; skip.
			continue
		}
		return resp, nil
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
