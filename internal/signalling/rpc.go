package signalling

import (
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/transport"
)

// Peer describes the authenticated remote side of a connection, as
// established by the channel handshake.
type Peer struct {
	DN      identity.DN
	CertDER []byte
}

// Handler processes one request message and returns the response.
// Implementations must be safe for concurrent use.
type Handler interface {
	Handle(peer Peer, msg *Message) *Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(peer Peer, msg *Message) *Message

// Handle calls f.
func (f HandlerFunc) Handle(peer Peer, msg *Message) *Message { return f(peer, msg) }

// Serve accepts connections from ln and dispatches inbound messages
// to h until the listener closes. Each connection gets its own
// goroutine; requests on one connection are processed sequentially,
// preserving ordering. Handler panics are reported through the
// default logger with a stack trace; use ServeWith to direct them to
// a structured logger.
func Serve(ln transport.Listener, h Handler) {
	ServeWith(ln, h, nil)
}

// ServeWith is Serve with an explicit structured logger for protocol
// errors and handler panics (nil falls back to slog.Default, which
// writes through the standard log package).
func ServeWith(ln transport.Listener, h Handler, logger *slog.Logger) {
	if logger == nil {
		logger = slog.Default()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, h, logger)
	}
}

func serveConn(conn transport.Conn, h Handler, logger *slog.Logger) {
	defer conn.Close()
	peer := Peer{DN: conn.PeerDN(), CertDER: conn.PeerCertDER()}
	for {
		data, err := conn.Recv()
		if err != nil {
			return
		}
		msg, err := DecodeMessage(data)
		if err != nil {
			logger.Warn("signalling: dropping malformed message",
				obs.AttrPeer, string(peer.DN), "err", err)
			return
		}
		resp := safeHandle(h, peer, msg, logger)
		if resp == nil {
			resp = ErrorResult("internal: no response")
		}
		// Copy before stamping the ID: handlers may return a shared
		// message (e.g. a recorded outcome replayed to duplicate
		// requests), and two connections must not race on its ID field.
		stamped := *resp
		stamped.ID = msg.ID
		out, err := stamped.Encode()
		if err != nil {
			logger.Error("signalling: encoding response failed",
				obs.AttrPeer, string(peer.DN), "type", string(msg.Type), "err", err)
			return
		}
		if err := conn.Send(out); err != nil {
			return
		}
	}
}

// safeHandle dispatches one request, converting a handler panic into
// a logged error (with stack trace) and a denied result instead of
// silently killing the connection's goroutine — a poisoned request
// must not take the whole server down, and the operator must see it.
func safeHandle(h Handler, peer Peer, msg *Message, logger *slog.Logger) (resp *Message) {
	defer func() {
		if r := recover(); r != nil {
			logger.Error("signalling: handler panic",
				obs.AttrPeer, string(peer.DN),
				"type", string(msg.Type),
				"panic", fmt.Sprint(r),
				"stack", string(debug.Stack()))
			resp = ErrorResult("internal: handler panic")
		}
	}()
	return h.Handle(peer, msg)
}

// ErrorResult builds a denied/failed result message.
func ErrorResult(reason string) *Message {
	return &Message{Type: MsgResult, Result: &ResultPayload{Granted: false, Reason: reason}}
}

// OKResult builds a granted result message.
func OKResult(handle string) *Message {
	return &Message{Type: MsgResult, Result: &ResultPayload{Granted: true, Handle: handle}}
}

// maxStaleResponses bounds how many mismatched-ID responses one call
// will skip before giving up on the connection: earlier timed-out
// calls can leave a few stale responses in flight, but an unbounded
// skip loop would spin forever against a misbehaving peer.
const maxStaleResponses = 32

// Client is a synchronous request/response client over one
// authenticated connection. One request is outstanding at a time;
// concurrent callers serialise.
type Client struct {
	mu     sync.Mutex
	conn   transport.Conn
	nextID uint64

	// Timeout bounds each Call (send plus wait for the matching
	// response) when positive; zero waits forever. It may be set any
	// time before a call.
	Timeout time.Duration
}

// NewClient wraps an established connection.
func NewClient(conn transport.Conn) *Client {
	return &Client{conn: conn}
}

// Dial connects to addr with the dialer and wraps the connection.
func Dial(d transport.Dialer, addr string) (*Client, error) {
	conn, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// PeerDN reports the authenticated remote identity.
func (c *Client) PeerDN() identity.DN { return c.conn.PeerDN() }

// PeerCertDER reports the remote certificate.
func (c *Client) PeerCertDER() []byte { return c.conn.PeerCertDER() }

// Call sends msg and blocks for the matching response, honouring the
// client's Timeout. The caller's message is never mutated, so one
// message value may safely be shared across clients and retries.
func (c *Client) Call(msg *Message) (*Message, error) {
	return c.CallTimeout(msg, c.Timeout)
}

// CallTimeout is Call with an explicit per-call deadline (0 = wait
// forever). A deadline expiry surfaces as an error matched by
// transport.IsTimeout; the connection state is then unknown (the
// request may still be processed remotely), so callers should treat
// the connection as dead and clean up any remote state separately.
func (c *Client) CallTimeout(msg *Message, timeout time.Duration) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	// Copy before assigning the ID: the caller may reuse msg across
	// clients or retries, and a shared mutation would corrupt the
	// request/response matching of concurrent calls.
	m := *msg
	m.ID = c.nextID
	data, err := m.Encode()
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("signalling: deadline on %s: %w", c.conn.PeerDN(), err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.conn.Send(data); err != nil {
		return nil, fmt.Errorf("signalling: send to %s: %w", c.conn.PeerDN(), err)
	}
	stale := 0
	for {
		raw, err := c.conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("signalling: recv from %s: %w", c.conn.PeerDN(), err)
		}
		resp, err := DecodeMessage(raw)
		if err != nil {
			return nil, err
		}
		if resp.ID != m.ID {
			// Stale response from an earlier timed-out call; skip a
			// bounded number before declaring the peer broken.
			if stale++; stale > maxStaleResponses {
				return nil, fmt.Errorf("signalling: %s sent %d responses with mismatched ids", c.conn.PeerDN(), stale)
			}
			continue
		}
		return resp, nil
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
