// Package signalling defines the inter-BB wire protocol: message
// formats, the signed per-domain approvals that propagate back to the
// source, and client/server plumbing over the transport abstraction.
// It carries the core package's nested RAR envelopes between brokers
// and the direct tunnel-allocation traffic between end domains.
package signalling

import (
	"crypto/ecdsa"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
)

// MsgType discriminates protocol messages.
type MsgType string

// Protocol message types.
const (
	// MsgReserve carries a (possibly nested) RAR envelope downstream.
	MsgReserve MsgType = "reserve"
	// MsgCancel withdraws a reservation by RAR id along the path.
	MsgCancel MsgType = "cancel"
	// MsgTunnelAlloc allocates a sub-flow inside an established tunnel
	// over the direct source/end-domain channel.
	MsgTunnelAlloc MsgType = "tunnel-alloc"
	// MsgTunnelRelease frees a sub-flow allocation.
	MsgTunnelRelease MsgType = "tunnel-release"
	// MsgTunnelBatch carries many sub-flow alloc/release operations in
	// one RPC; the result reports a per-op verdict. Batches are
	// idempotent: a retransmission with the same BatchID is answered
	// from the receiver's replay cache.
	MsgTunnelBatch MsgType = "tunnel-batch"
	// MsgStatus queries a reservation handle.
	MsgStatus MsgType = "status"
	// MsgResult is the response to any request.
	MsgResult MsgType = "result"
	// MsgJournalStream carries broker replication traffic between the
	// replicas of one domain: journal record batches and heartbeats
	// from the leader, catch-up snapshots for lagging followers, and
	// vote requests during leader election. Only a peer holding the
	// domain's own broker identity may send it.
	MsgJournalStream MsgType = "journal-stream"
)

// ReserveMode selects the propagation behaviour of a reserve request.
type ReserveMode string

// Reservation modes.
const (
	// ModeEndToEnd propagates hop-by-hop to the destination domain
	// (the paper's Approach 2).
	ModeEndToEnd ReserveMode = "e2e"
	// ModeLocal reserves in the receiving domain only; the
	// source-domain-based baseline (Approach 1) issues one local
	// request per domain. Nothing stops a malicious client from
	// skipping a domain — which is exactly the Figure 4 attack.
	ModeLocal ReserveMode = "local"
)

// Message is the wire frame; exactly one payload field is set
// according to Type.
type Message struct {
	Type MsgType `json:"type"`
	// ID matches responses to requests over a shared connection.
	ID uint64 `json:"id"`

	Reserve       *ReservePayload       `json:"reserve,omitempty"`
	Cancel        *CancelPayload        `json:"cancel,omitempty"`
	TunnelAlloc   *TunnelAllocPayload   `json:"tunnel_alloc,omitempty"`
	TunnelRelease *TunnelReleasePayload `json:"tunnel_release,omitempty"`
	TunnelBatch   *TunnelBatchPayload   `json:"tunnel_batch,omitempty"`
	Status        *StatusPayload        `json:"status,omitempty"`
	Result        *ResultPayload        `json:"result,omitempty"`
	JournalStream *JournalStreamPayload `json:"journal_stream,omitempty"`
}

// ReservePayload carries the RAR envelope.
type ReservePayload struct {
	Mode ReserveMode `json:"mode"`
	// TraceID, when non-empty, asks every hop on the chain to record
	// a trace span; the spans come back in the result payload. Empty
	// disables tracing at zero per-hop cost.
	TraceID string `json:"trace_id,omitempty"`
	// Sampled marks a flight-recorder pick made by the ingress hop (the
	// broker that received the RAR from the user). It propagates down
	// the chain so every hop records the same requests — mid-chain hops
	// never roll their own dice, which would compound the rate per hop.
	Sampled bool `json:"sampled,omitempty"`
	// EnvelopeData is the encoded envelope (RAR_U, RAR_A, ...),
	// carried as opaque bytes: the envelope's canonical binary
	// encoding, base64-wrapped when the frame itself travels as JSON.
	EnvelopeData []byte `json:"envelope"`
	// PathPin is the full domain path the ingress broker selected for
	// this attempt. Mid-chain hops forward along it instead of running
	// their own next-hop computation, so a re-routed or split RAR stays
	// on its edge-disjoint path. Empty means legacy hop-by-hop routing.
	// Brokers reject it on user-facing channels: only peers pin paths.
	PathPin []string `json:"path_pin,omitempty"`
	// Attempt is the ingress re-route attempt index (0 = primary path).
	// It salts the per-hop idempotency key so a re-routed RAR is not
	// mistaken for a duplicate at domains shared between paths.
	Attempt int `json:"attempt,omitempty"`
	// SplitPart / SplitOf / SplitBW describe one child of a reservation
	// the ingress split across disjoint paths: this child is part
	// SplitPart of SplitOf and asks for SplitBW bits per second of the
	// signed total (SplitBW may only reduce the user-signed bandwidth,
	// never raise it). Zero values mean an unsplit reservation.
	SplitPart int   `json:"split_part,omitempty"`
	SplitOf   int   `json:"split_of,omitempty"`
	SplitBW   int64 `json:"split_bw,omitempty"`
}

// Envelope decodes the carried envelope.
func (p *ReservePayload) Envelope() (*envelope.Envelope, error) {
	return envelope.Decode(p.EnvelopeData)
}

// CancelPayload withdraws the reservation created under RARID.
type CancelPayload struct {
	RARID string `json:"rar_id"`
}

// TunnelAllocPayload requests a sub-flow of Bandwidth (bits per
// second) inside the tunnel established by TunnelRARID. SubFlowID
// names the new flow; User identifies the requestor (authenticated by
// the channel).
type TunnelAllocPayload struct {
	TunnelRARID string      `json:"tunnel_rar_id"`
	SubFlowID   string      `json:"sub_flow_id"`
	User        identity.DN `json:"user"`
	Bandwidth   int64       `json:"bandwidth"`
}

// TunnelReleasePayload frees a sub-flow.
type TunnelReleasePayload struct {
	TunnelRARID string `json:"tunnel_rar_id"`
	SubFlowID   string `json:"sub_flow_id"`
}

// TunnelOpAction discriminates batch operations.
type TunnelOpAction string

// Batch operation actions.
const (
	// OpAlloc admits a new sub-flow.
	OpAlloc TunnelOpAction = "alloc"
	// OpRelease frees an existing sub-flow.
	OpRelease TunnelOpAction = "release"
)

// TunnelOp is one alloc or release inside a batch. Bandwidth (bits per
// second) is required for alloc and ignored for release.
// The wire keys are deliberately terse: a batch carries hundreds of
// ops and the arrays dominate the frame, so key bytes are hot-path
// decode cost, not readability budget.
type TunnelOp struct {
	Action    TunnelOpAction `json:"a"`
	SubFlowID string         `json:"id"`
	Bandwidth int64          `json:"bw,omitempty"`
}

// TunnelBatchPayload applies Ops, in order, against the tunnel
// established by TunnelRARID. BatchID keys the receiver's replay
// cache: retransmissions with the same BatchID return the recorded
// outcome instead of re-applying the ops.
type TunnelBatchPayload struct {
	TunnelRARID string      `json:"tunnel_rar_id"`
	BatchID     string      `json:"batch_id"`
	User        identity.DN `json:"user"`
	Ops         []TunnelOp  `json:"ops"`
	// TraceID/Sampled carry the source broker's flight-recorder pick to
	// the far endpoint, so sampled events cover both halves of a batch
	// under one trace id (same contract as ReservePayload).
	TraceID string `json:"trace_id,omitempty"`
	Sampled bool   `json:"sampled,omitempty"`
}

// Validate rejects structurally bad batches before any op is applied.
func (p *TunnelBatchPayload) Validate() error {
	if p.TunnelRARID == "" {
		return fmt.Errorf("signalling: batch without tunnel rar id")
	}
	if p.BatchID == "" {
		return fmt.Errorf("signalling: batch without batch id")
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("signalling: empty batch")
	}
	seen := make(map[string]struct{}, len(p.Ops))
	for i, op := range p.Ops {
		if op.SubFlowID == "" {
			return fmt.Errorf("signalling: batch op %d without sub-flow id", i)
		}
		if _, dup := seen[op.SubFlowID]; dup {
			return fmt.Errorf("signalling: batch op %d: duplicate sub-flow %q", i, op.SubFlowID)
		}
		seen[op.SubFlowID] = struct{}{}
		switch op.Action {
		case OpAlloc:
			if op.Bandwidth <= 0 {
				return fmt.Errorf("signalling: batch op %d: non-positive bandwidth %d", i, op.Bandwidth)
			}
		case OpRelease:
		default:
			return fmt.Errorf("signalling: batch op %d: unknown action %q", i, op.Action)
		}
	}
	return nil
}

// TunnelOpResult is the per-op verdict inside a batch result, in the
// same order as the request's Ops.
type TunnelOpResult struct {
	SubFlowID string `json:"id"`
	Granted   bool   `json:"ok,omitempty"`
	Reason    string `json:"err,omitempty"`
}

// NewBatchID mints a random batch identifier.
func NewBatchID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("signalling: batch id entropy: %v", err))
	}
	return "B-" + hex.EncodeToString(b[:])
}

// StatusPayload queries the reservation created under RARID.
type StatusPayload struct {
	RARID string `json:"rar_id"`
}

// Journal stream kinds (JournalStreamPayload.Kind).
const (
	// StreamRecords ships a batch of raw journal frames (possibly
	// preceded by a catch-up snapshot) from the leader to a follower.
	// An empty batch is a heartbeat: it asserts the leader's term and
	// shares the group commit sequence.
	StreamRecords = 0
	// StreamVote requests an election vote: the candidate's Term is the
	// term it is standing for and FromSeq the last sequence it applied.
	StreamVote = 1
)

// JournalStreamPayload is the replication message exchanged between
// the replicas of one domain (DESIGN.md §6.8). The leader streams raw
// CRC-framed journal records in Records starting at FromSeq+1; a
// follower that lags past the leader's in-memory tail first receives a
// full Snapshot cut at SnapSeq, with Records extending it. CommitSeq
// is the highest sequence acknowledged by a majority; followers answer
// with a ResultPayload carrying their own AckSeq and Term.
type JournalStreamPayload struct {
	// Kind discriminates record batches (StreamRecords) from vote
	// requests (StreamVote).
	Kind int `json:"kind,omitempty"`
	// Domain is the replicated domain; a replica rejects streams for a
	// domain it does not serve.
	Domain string `json:"domain"`
	// Term is the sender's election term. A receiver with a higher term
	// answers Granted=false with its own term, fencing the stale leader.
	Term int64 `json:"term"`
	// LeaderID identifies the sending replica (the candidate, for
	// votes).
	LeaderID int `json:"leader_id"`
	// FromSeq is the sequence number the first record in Records
	// extends (i.e. records cover FromSeq+1 .. FromSeq+len(Records)).
	// For votes it is the candidate's last applied sequence.
	FromSeq int64 `json:"from_seq,omitempty"`
	// CommitSeq is the group's majority-acknowledged sequence.
	CommitSeq int64 `json:"commit_seq,omitempty"`
	// Snapshot, when non-empty, is a full broker state snapshot the
	// follower must install before applying Records; SnapSeq is the
	// journal sequence it was cut at.
	Snapshot []byte `json:"snapshot,omitempty"`
	SnapSeq  int64  `json:"snap_seq,omitempty"`
	// Records are raw journal frames, exactly as they sit in the
	// leader's WAL.
	Records [][]byte `json:"records,omitempty"`
}

// ResultPayload answers any request. For reserve requests, Approvals
// carries one signed approval per domain on the path, appended as the
// grant propagates back upstream (§6.4: "the BB adds its own signed
// policy information and propagates the modified request to the
// previous intermediate domain BB").
type ResultPayload struct {
	Granted bool   `json:"granted"`
	Reason  string `json:"reason,omitempty"`
	// Handle is the local reservation handle in the responding domain.
	Handle string `json:"handle,omitempty"`
	// Approvals accumulate along the return path, destination first.
	Approvals []DomainApproval `json:"approvals,omitempty"`
	// PolicyInfo carries returned attributes (cost quotes etc.).
	PolicyInfo map[string]string `json:"policy_info,omitempty"`
	// TraceID echoes the request's trace id on traced reserves.
	TraceID string `json:"trace_id,omitempty"`
	// Trace accumulates per-hop spans along the return path,
	// destination first — the observability analogue of Approvals.
	Trace []obs.Span `json:"trace,omitempty"`
	// BatchResults carries the per-op verdicts for a tunnel batch, in
	// request order. Granted above is the AND of all op verdicts.
	BatchResults []TunnelOpResult `json:"batch_results,omitempty"`
	// AckSeq acknowledges a journal stream: the highest sequence the
	// answering follower has applied (and re-journaled). Zero outside
	// replication traffic.
	AckSeq int64 `json:"ack_seq,omitempty"`
	// Term is the answering replica's election term, echoed so a stale
	// leader (or candidate) learns it has been superseded.
	Term int64 `json:"term,omitempty"`
}

// DomainApproval is one domain's signed statement about a RAR.
type DomainApproval struct {
	Domain  string      `json:"domain"`
	BBDN    identity.DN `json:"bb_dn"`
	RARID   string      `json:"rar_id"`
	Handle  string      `json:"handle"`
	Granted bool        `json:"granted"`
	Reason  string      `json:"reason,omitempty"`
	// Signature is the broker's signature over the canonical payload.
	Signature []byte `json:"signature"`
}

// approvalPayload is the canonical byte string a domain approval
// signature covers: a domain-separation prefix plus the approval's
// binary field encoding (without the signature field). Every field is
// length-prefixed and tagged, so no value can shift bytes into a
// neighbouring field — the `|`-joined text form this replaces let a
// Reason or Handle containing '|' masquerade as another field under
// the same signature.
func approvalPayload(a *DomainApproval) []byte {
	buf := append(make([]byte, 0, 128), "e2eqos-approval-v1\x00"...)
	return a.appendCore(buf)
}

// SignApproval fills in the signature using the broker's key.
func SignApproval(a *DomainApproval, key *identity.KeyPair) error {
	sig, err := key.Sign(approvalPayload(a))
	if err != nil {
		return fmt.Errorf("signalling: signing approval: %w", err)
	}
	a.Signature = sig
	return nil
}

// VerifyApproval checks the approval against the broker's public key.
func VerifyApproval(a *DomainApproval, pub *ecdsa.PublicKey) error {
	if a == nil {
		return fmt.Errorf("signalling: nil approval")
	}
	if err := identity.Verify(pub, approvalPayload(a), a.Signature); err != nil {
		return fmt.Errorf("signalling: approval by %s: %w", a.BBDN, err)
	}
	return nil
}

// Encode serialises a message in the canonical binary framing. The
// JSON form remains available through EncodeJSON for the `-wire json`
// interop mode; DecodeMessage accepts both.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendBinary(nil), nil
}

// EncodeJSON serialises a message in the JSON debug/interop framing.
func (m *Message) EncodeJSON() ([]byte, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("signalling: encode: %w", err)
	}
	return data, nil
}

// DecodeMessage parses one frame in either encoding, discriminated by
// the first byte: binary frames start with BinMagic, JSON frames with
// '{'. The per-connection wire negotiation rests on this — a server
// answers in whatever encoding the request arrived in.
func DecodeMessage(data []byte) (*Message, error) {
	if len(data) > 0 && data[0] == BinMagic {
		return decodeBinary(data)
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("signalling: decode: %w", err)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("signalling: message without type")
	}
	return &m, nil
}

// NewReserveMessage wraps an envelope for the wire.
func NewReserveMessage(mode ReserveMode, env *envelope.Envelope) (*Message, error) {
	data, err := env.Encode()
	if err != nil {
		return nil, err
	}
	return &Message{
		Type:    MsgReserve,
		Reserve: &ReservePayload{Mode: mode, EnvelopeData: data},
	}, nil
}
