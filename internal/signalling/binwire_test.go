package signalling

import (
	"encoding/hex"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/transport"
)

// goldenMessages is one deterministic message per wire type. The
// vectors below pin the binary encoding of each: any byte-level change
// to the codec is a wire-format break and must show up here, not in
// production cross-version traffic.
func goldenMessages() []struct {
	name string
	msg  *Message
	hex  string
} {
	return []struct {
		name string
		msg  *Message
		hex  string
	}{
		{
			name: "reserve",
			msg: &Message{Type: MsgReserve, ID: 1, Reserve: &ReservePayload{
				Mode:         ModeEndToEnd,
				TraceID:      "T-1",
				EnvelopeData: []byte{0xE5, 0x01, 0x0A},
			}},
			hex: "e20101010a036532651203542d311a03e5010a",
		},
		{
			name: "cancel",
			msg:  &Message{Type: MsgCancel, ID: 2, Cancel: &CancelPayload{RARID: "RAR-1"}},
			hex:  "e20102020a055241522d31",
		},
		{
			name: "tunnel-alloc",
			msg: &Message{Type: MsgTunnelAlloc, ID: 3, TunnelAlloc: &TunnelAllocPayload{
				TunnelRARID: "RAR-T",
				SubFlowID:   "sf-1",
				User:        identity.DN("/O=Grid/CN=alice"),
				Bandwidth:   1000000,
			}},
			hex: "e20103030a055241522d54120473662d311a102f4f3d477269642f434e3d616c6963652080897a",
		},
		{
			name: "tunnel-release",
			msg: &Message{Type: MsgTunnelRelease, ID: 4, TunnelRelease: &TunnelReleasePayload{
				TunnelRARID: "RAR-T",
				SubFlowID:   "sf-1",
			}},
			hex: "e20104040a055241522d54120473662d31",
		},
		{
			name: "tunnel-batch",
			msg: &Message{Type: MsgTunnelBatch, ID: 5, TunnelBatch: &TunnelBatchPayload{
				TunnelRARID: "RAR-T",
				BatchID:     "B-1",
				User:        identity.DN("/O=Grid/CN=alice"),
				Ops: []TunnelOp{
					{Action: OpAlloc, SubFlowID: "s1", Bandwidth: 500},
					{Action: OpRelease, SubFlowID: "s2"},
				},
			}},
			hex: "e20105050a055241522d541203422d311a102f4f3d477269642f434e3d616c696365220908011202733118e8072206080212027332",
		},
		{
			// Ingress rolled the flight-recorder dice: the sampled bit
			// (field 4) rides the reserve down the chain.
			name: "reserve-sampled",
			msg: &Message{Type: MsgReserve, ID: 8, Reserve: &ReservePayload{
				Mode:         ModeEndToEnd,
				TraceID:      "T-1",
				EnvelopeData: []byte{0xE5, 0x01, 0x0A},
				Sampled:      true,
			}},
			hex: "e20101080a036532651203542d311a03e5010a2001",
		},
		{
			// A sampled batch carries its trace id (field 5) and sampled
			// bit (field 6) to the far endpoint.
			name: "tunnel-batch-sampled",
			msg: &Message{Type: MsgTunnelBatch, ID: 9, TunnelBatch: &TunnelBatchPayload{
				TunnelRARID: "RAR-T",
				BatchID:     "B-1",
				User:        identity.DN("/O=Grid/CN=alice"),
				Ops: []TunnelOp{
					{Action: OpAlloc, SubFlowID: "s1", Bandwidth: 500},
				},
				TraceID: "T-2",
				Sampled: true,
			}},
			hex: "e20105090a055241522d541203422d311a102f4f3d477269642f434e3d616c696365220908011202733118e8072a03542d323001",
		},
		{
			// A split child re-routed onto its second disjoint path: the
			// ingress pinned the full path (field 5, repeated), salted the
			// idempotency key with the attempt index (field 6), and asked
			// this child for its share of the signed total (fields 7-9).
			name: "reserve-multipath",
			msg: &Message{Type: MsgReserve, ID: 14, Reserve: &ReservePayload{
				Mode:         ModeEndToEnd,
				TraceID:      "T-9",
				EnvelopeData: []byte{0xE5, 0x01, 0x0A},
				PathPin:      []string{"Domain0", "Domain2", "Domain4"},
				Attempt:      1,
				SplitPart:    2,
				SplitOf:      2,
				SplitBW:      500000,
			}},
			hex: "e201010e0a036532651203542d391a03e5010a" +
				"2a07446f6d61696e302a07446f6d61696e322a07446f6d61696e34" +
				"30023804400448c0843d",
		},
		{
			name: "status",
			msg:  &Message{Type: MsgStatus, ID: 6, Status: &StatusPayload{RARID: "RAR-1"}},
			hex:  "e20106060a055241522d31",
		},
		{
			name: "result",
			msg: &Message{Type: MsgResult, ID: 7, Result: &ResultPayload{
				Granted: true,
				Handle:  "h-1",
				Approvals: []DomainApproval{{
					Domain:    "DomainA",
					BBDN:      identity.DN("/O=Grid/CN=bb-a"),
					RARID:     "RAR-1",
					Handle:    "h-1",
					Granted:   true,
					Signature: []byte{0xDE, 0xAD},
				}},
				PolicyInfo:   map[string]string{"cost": "2", "bw": "5"},
				TraceID:      "T-1",
				Trace:        []obs.Span{{Domain: "DomainA", BB: "/O=Grid/CN=bb-a", Verdict: "granted", TotalNS: 42}},
				BatchResults: []TunnelOpResult{{SubFlowID: "s1", Granted: true}, {SubFlowID: "s2", Reason: "no capacity"}},
			}},
			hex: "e201070708011a03682d31" +
				"222c0a07446f6d61696e41120f2f4f3d477269642f434e3d62622d611a055241522d312203682d3128013a02dead" +
				"2a0502627701352a0704636f73740132" +
				"3203542d31" +
				"3a250a07446f6d61696e41120f2f4f3d477269642f434e3d62622d611a076772616e7465645054" +
				"42060a027331100142110a0273321a0b6e6f206361706163697479",
		},
		{
			// A leader shipping two raw journal frames to a follower.
			name: "journal-stream",
			msg: &Message{Type: MsgJournalStream, ID: 10, JournalStream: &JournalStreamPayload{
				Domain:    "DomainA",
				Term:      3,
				LeaderID:  1,
				FromSeq:   7,
				CommitSeq: 6,
				Records:   [][]byte{{0xB1, 0x01}, {0xB1, 0x02}},
			}},
			hex: "e201080a0a07446f6d61696e4110061802200e280c4202b1014202b102",
		},
		{
			// Catch-up: a full snapshot cut at seq 5 for a fresh follower.
			name: "journal-stream-snapshot",
			msg: &Message{Type: MsgJournalStream, ID: 11, JournalStream: &JournalStreamPayload{
				Domain:   "DomainA",
				Term:     3,
				LeaderID: 2,
				Snapshot: []byte{0xB3, 0x0A},
				SnapSeq:  5,
			}},
			hex: "e201080b0a07446f6d61696e41100618043202b30a380a",
		},
		{
			// An election vote request: candidate 2 standing for term 4
			// with last applied seq 9.
			name: "journal-stream-vote",
			msg: &Message{Type: MsgJournalStream, ID: 12, JournalStream: &JournalStreamPayload{
				Kind:     StreamVote,
				Domain:   "DomainA",
				Term:     4,
				LeaderID: 2,
				FromSeq:  9,
			}},
			hex: "e201080c0a07446f6d61696e411008180420124802",
		},
		{
			// A follower's stream acknowledgement rides the plain result
			// payload: applied seq plus the follower's term.
			name: "result-stream-ack",
			msg: &Message{Type: MsgResult, ID: 13, Result: &ResultPayload{
				Granted: true,
				AckSeq:  42,
				Term:    3,
			}},
			hex: "e201070d080148545006",
		},
	}
}

func TestGoldenWireVectors(t *testing.T) {
	for _, g := range goldenMessages() {
		got := g.msg.AppendBinary(nil)
		if hex.EncodeToString(got) != g.hex {
			t.Errorf("%s: encoded %s\n            want %s", g.name, hex.EncodeToString(got), g.hex)
			continue
		}
		want, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("%s: bad vector: %v", g.name, err)
		}
		dec, err := DecodeMessage(want)
		if err != nil {
			t.Errorf("%s: golden bytes failed to decode: %v", g.name, err)
			continue
		}
		if !reflect.DeepEqual(dec, g.msg) {
			t.Errorf("%s: golden bytes decoded to\n%+v\nwant\n%+v", g.name, dec, g.msg)
		}
	}
}

// TestJSONBinaryCrossDecode proves the two encodings carry the same
// information: a message serialised as JSON and re-decoded must equal
// the binary-decoded original, and vice versa. This is the contract the
// `-wire json` interop mode rests on.
func TestJSONBinaryCrossDecode(t *testing.T) {
	for _, g := range goldenMessages() {
		jsonBytes, err := g.msg.EncodeJSON()
		if err != nil {
			t.Fatalf("%s: EncodeJSON: %v", g.name, err)
		}
		fromJSON, err := DecodeMessage(jsonBytes)
		if err != nil {
			t.Fatalf("%s: decode of JSON frame: %v", g.name, err)
		}
		fromBinary, err := DecodeMessage(g.msg.AppendBinary(nil))
		if err != nil {
			t.Fatalf("%s: decode of binary frame: %v", g.name, err)
		}
		if !reflect.DeepEqual(fromJSON, fromBinary) {
			t.Errorf("%s: JSON decode\n%+v\ndisagrees with binary decode\n%+v",
				g.name, fromJSON, fromBinary)
		}
		// And a binary-decoded message must survive re-encoding as JSON.
		reJSON, err := fromBinary.EncodeJSON()
		if err != nil {
			t.Fatalf("%s: re-encode as JSON: %v", g.name, err)
		}
		again, err := DecodeMessage(reJSON)
		if err != nil {
			t.Fatalf("%s: decode of re-encoded JSON: %v", g.name, err)
		}
		if !reflect.DeepEqual(again, fromBinary) {
			t.Errorf("%s: binary->JSON->decode drifted:\n%+v\nwant\n%+v",
				g.name, again, fromBinary)
		}
	}
}

// TestBinaryFramesSkipUnknownFields pins the forward-compatibility
// rule: a frame carrying a field number this decoder has never heard
// of must still decode, dropping only the unknown field.
func TestBinaryFramesSkipUnknownFields(t *testing.T) {
	frame := (&Message{Type: MsgCancel, ID: 9, Cancel: &CancelPayload{RARID: "R"}}).AppendBinary(nil)
	// Append an unknown bytes field 15 and an unknown varint field 14.
	frame = append(frame, 15<<3|2, 3, 'x', 'y', 'z', 14<<3|0, 7)
	msg, err := DecodeMessage(frame)
	if err != nil {
		t.Fatalf("frame with unknown fields rejected: %v", err)
	}
	if msg.Cancel == nil || msg.Cancel.RARID != "R" || msg.ID != 9 {
		t.Fatalf("known fields lost around unknown ones: %+v", msg)
	}
}

// TestApprovalSignatureFieldBoundaries is the regression test for the
// field-masquerading fix: the old signing payload joined fields with
// '|', so shifting bytes across a field boundary produced the same
// payload — here RARID "R|evil" vs RARID "R" with Domain "evil|D"
// would both have signed as "approval|R|evil|D|...". The canonical
// binary payload length-prefixes every field, so the shifted approval
// must fail verification.
func TestApprovalSignatureFieldBoundaries(t *testing.T) {
	key, err := identity.GenerateKeyPair(identity.NewDN("Grid", "DomainA", "bb"))
	if err != nil {
		t.Fatal(err)
	}
	signed := &DomainApproval{
		Domain: "D", BBDN: key.DN, RARID: "R|evil",
		Handle: "h", Granted: true,
	}
	if err := SignApproval(signed, key); err != nil {
		t.Fatal(err)
	}
	if err := VerifyApproval(signed, key.Public()); err != nil {
		t.Fatalf("honest approval failed verification: %v", err)
	}
	shifted := &DomainApproval{
		Domain: "evil|D", BBDN: key.DN, RARID: "R",
		Handle: "h", Granted: true,
		Signature: signed.Signature,
	}
	if err := VerifyApproval(shifted, key.Public()); err == nil {
		t.Fatal("boundary-shifted approval verified under the original signature")
	}
	// And flipping the granted verdict must of course also fail.
	denied := *signed
	denied.Granted = false
	if err := VerifyApproval(&denied, key.Public()); err == nil {
		t.Fatal("verdict-flipped approval verified under the original signature")
	}
}

// slowSinkConn is a transport.Conn stub whose Send honours the send
// deadline by failing with a timeout (modelling a peer that stopped
// reading: the write blocks until the deadline expires, potentially
// leaving a half-written frame on a stream transport). Recv blocks
// until the connection is closed.
type slowSinkConn struct {
	mu       sync.Mutex
	deadline time.Time
	closed   chan struct{}
	once     sync.Once
}

func newSlowSinkConn() *slowSinkConn {
	return &slowSinkConn{closed: make(chan struct{})}
}

func (c *slowSinkConn) Send(msg []byte) error {
	c.mu.Lock()
	dl := c.deadline
	c.mu.Unlock()
	if !dl.IsZero() {
		select {
		case <-time.After(time.Until(dl)):
			return transport.ErrTimeout
		case <-c.closed:
			return fmt.Errorf("slowSinkConn: closed")
		}
	}
	<-c.closed
	return fmt.Errorf("slowSinkConn: closed")
}

func (c *slowSinkConn) Recv() ([]byte, error) {
	<-c.closed
	return nil, fmt.Errorf("slowSinkConn: closed")
}

func (c *slowSinkConn) SetDeadline(t time.Time) error { return c.SetSendDeadline(t) }

func (c *slowSinkConn) SetSendDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return nil
}

func (c *slowSinkConn) PeerDN() identity.DN { return identity.DN("/O=Grid/CN=stuck-peer") }
func (c *slowSinkConn) PeerCertDER() []byte { return nil }
func (c *slowSinkConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// TestSendTimeoutIsTerminal is the regression test for the half-written
// frame fix: a send-deadline expiry may leave a truncated frame on the
// wire, so it must kill the whole client — Alive flips false and the
// next call fails fast — rather than letting the pool reuse a
// connection whose stream is mid-frame.
func TestSendTimeoutIsTerminal(t *testing.T) {
	conn := newSlowSinkConn()
	c := NewClient(conn)
	defer c.Close()

	msg := &Message{Type: MsgStatus, Status: &StatusPayload{RARID: "R"}}
	_, err := c.CallTimeout(msg, 20*time.Millisecond)
	if err == nil {
		t.Fatal("call over a stuck connection succeeded")
	}
	if !transport.IsTimeout(err) {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if c.Alive() {
		t.Fatal("client still Alive after a send-deadline expiry left a half-written frame")
	}
	// The next call must fail fast on the recorded terminal fault, not
	// wait out another deadline.
	start := time.Now()
	if _, err := c.CallTimeout(msg, time.Second); err == nil {
		t.Fatal("call on a dead client succeeded")
	}
	if waited := time.Since(start); waited > 100*time.Millisecond {
		t.Fatalf("post-fault call blocked %v; want immediate failure", waited)
	}
}
