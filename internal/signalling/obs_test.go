package signalling

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"e2eqos/internal/transport"
)

// logBuffer is a concurrency-safe sink for the server logger: the
// serve goroutine writes records while the test reads them.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeReportsHandlerPanic: a panicking handler must not kill the
// connection or vanish silently — the caller gets a denied result and
// the log carries the panic with a stack trace.
func TestServeReportsHandlerPanic(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sink := &logBuffer{}
	logger := slog.New(slog.NewTextHandler(sink, nil))
	go ServeWith(ln, HandlerFunc(func(peer Peer, msg *Message) *Message {
		if msg.Status != nil && msg.Status.RARID == "boom" {
			panic("poisoned request")
		}
		return OKResult("ok")
	}), logger)

	c, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "boom"}})
	if err != nil {
		t.Fatalf("panic killed the connection: %v", err)
	}
	if resp.Result == nil || resp.Result.Granted {
		t.Fatalf("want a denied result, got %+v", resp.Result)
	}
	if !strings.Contains(resp.Result.Reason, "handler panic") {
		t.Errorf("reason %q does not mention the panic", resp.Result.Reason)
	}
	// The connection survives: a following healthy request still works.
	resp, err = c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "fine"}})
	if err != nil || resp.Result == nil || !resp.Result.Granted {
		t.Fatalf("connection unusable after a recovered panic: %v %+v", err, resp)
	}
	out := sink.String()
	if !strings.Contains(out, "poisoned request") {
		t.Errorf("log does not carry the panic value:\n%s", out)
	}
	if !strings.Contains(out, "stack=") {
		t.Errorf("log does not carry a stack trace:\n%s", out)
	}
	if !strings.Contains(out, "/CN=client") {
		t.Errorf("log does not identify the peer:\n%s", out)
	}
}

// TestServeLogsMalformedMessage: garbage on the wire is answered with
// an error result and a warning naming the peer — the connection (and
// every other call multiplexed on it) survives.
func TestServeLogsMalformedMessage(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sink := &logBuffer{}
	logger := slog.New(slog.NewTextHandler(sink, nil))
	go ServeWith(ln, HandlerFunc(func(Peer, *Message) *Message { return OKResult("ok") }), logger)

	conn, err := client.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("{not json")); err != nil {
		t.Fatal(err)
	}
	// The server answers an error result and keeps the connection: a
	// single bad body must not kill the other multiplexed calls.
	raw, err := conn.Recv()
	if err != nil {
		t.Fatalf("server dropped the connection instead of answering: %v", err)
	}
	resp, err := DecodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || resp.Result.Granted {
		t.Fatalf("garbage answered with %+v, want denied result", resp)
	}
	// The connection still serves well-formed requests afterwards.
	ok, err := (&Message{Type: MsgStatus, ID: 7, Status: &StatusPayload{RARID: "r"}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(ok); err != nil {
		t.Fatal(err)
	}
	raw, err = conn.Recv()
	if err != nil {
		t.Fatalf("connection unusable after malformed frame: %v", err)
	}
	if resp, err = DecodeMessage(raw); err != nil || resp.ID != 7 {
		t.Fatalf("post-garbage call: resp=%+v err=%v", resp, err)
	}
	out := sink.String()
	if !strings.Contains(out, "malformed") || !strings.Contains(out, "/CN=client") {
		t.Errorf("malformed message not logged with peer:\n%s", out)
	}
}
