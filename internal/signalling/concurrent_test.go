package signalling

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"e2eqos/internal/transport"
)

// echoServe starts a handler that echoes the request's RARID back as
// the result handle, optionally delayed by the per-request delay func.
func echoServe(t *testing.T, ln transport.Listener, delay func(rarid string) time.Duration) {
	t.Helper()
	go Serve(ln, HandlerFunc(func(_ Peer, msg *Message) *Message {
		if delay != nil {
			if d := delay(msg.Status.RARID); d > 0 {
				time.Sleep(d)
			}
		}
		return OKResult(msg.Status.RARID)
	}))
}

func dialPair(t *testing.T, latency time.Duration) (*Client, transport.Listener) {
	t.Helper()
	net := transport.NewNetwork(latency)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	c, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, ln
}

// TestConcurrentCallsInterleaved drives many parallel calls through one
// client while the server completes them in effectively random order
// (later requests finish sooner). Every call must receive exactly its
// own response — the whole point of ID-keyed demultiplexing.
func TestConcurrentCallsInterleaved(t *testing.T) {
	c, ln := dialPair(t, 0)
	// Invert completion order: request i sleeps (N-i) units, so the
	// last request's response comes back first.
	const calls = 32
	echoServe(t, ln, func(rarid string) time.Duration {
		i, _ := strconv.Atoi(rarid)
		return time.Duration(calls-i) * time.Millisecond
	})

	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := strconv.Itoa(i)
			resp, err := c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: id}})
			if err != nil {
				errs <- err
				return
			}
			if resp.Result.Handle != id {
				errs <- fmt.Errorf("call %s got response for %q", id, resp.Result.Handle)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := c.LateDropped(); n != 0 {
		t.Errorf("dropped %d responses on a healthy exchange", n)
	}
	if n := c.Pending(); n != 0 {
		t.Errorf("%d waiters leaked after all calls returned", n)
	}
}

// TestConcurrentTimeoutIsolation stalls one request far past its
// deadline while its siblings answer promptly: the stalled call must
// expire alone, with no collateral failure or connection teardown.
func TestConcurrentTimeoutIsolation(t *testing.T) {
	c, ln := dialPair(t, 0)
	echoServe(t, ln, func(rarid string) time.Duration {
		if rarid == "stall" {
			return 2 * time.Second
		}
		return 0
	})

	var wg sync.WaitGroup
	stallErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "stall"}}, 50*time.Millisecond)
		stallErr <- err
	}()
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := strconv.Itoa(i)
			resp, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: id}}, time.Second)
			if err != nil {
				errs <- fmt.Errorf("healthy call %s: %w", id, err)
				return
			}
			if resp.Result.Handle != id {
				errs <- fmt.Errorf("call %s got response for %q", id, resp.Result.Handle)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	err := <-stallErr
	if err == nil {
		t.Fatal("stalled call did not time out")
	}
	if !transport.IsTimeout(err) {
		t.Fatalf("stalled call failed with %v, want timeout", err)
	}
	if !c.Alive() {
		t.Fatalf("one timed-out call killed the connection: %v", c.Err())
	}
	// The connection must still carry new calls after the expiry.
	resp, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "after"}}, time.Second)
	if err != nil || resp.Result.Handle != "after" {
		t.Fatalf("call after timeout: resp=%v err=%v", resp, err)
	}
}

// TestConcurrentCloseInFlight closes the client while calls are
// blocked on a silent server: every call must fail promptly with the
// terminal error instead of hanging until its own deadline.
func TestConcurrentCloseInFlight(t *testing.T) {
	c, ln := dialPair(t, 0)
	silentServer(t, ln)

	const calls = 8
	var wg sync.WaitGroup
	var failed atomic.Int64
	started := make(chan struct{}, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			_, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: strconv.Itoa(i)}}, 10*time.Second)
			if err != nil {
				failed.Add(1)
			}
		}(i)
	}
	for i := 0; i < calls; i++ {
		<-started
	}
	time.Sleep(20 * time.Millisecond) // let the calls reach their select
	c.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight calls hung after Close")
	}
	if n := failed.Load(); n != calls {
		t.Errorf("%d of %d in-flight calls failed after Close", n, calls)
	}
	if c.Alive() {
		t.Error("client still reports alive after Close")
	}
	if _, err := c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "post"}}); err == nil {
		t.Error("call on closed client succeeded")
	}
}

// TestConcurrentLateResponseDropped lets a call expire just before its
// response lands: the demux loop must drop the orphaned response,
// count it, and leave the connection fully usable.
func TestConcurrentLateResponseDropped(t *testing.T) {
	c, ln := dialPair(t, 0)
	echoServe(t, ln, func(rarid string) time.Duration {
		if rarid == "slow" {
			return 150 * time.Millisecond
		}
		return 0
	})

	_, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "slow"}}, 30*time.Millisecond)
	if !transport.IsTimeout(err) {
		t.Fatalf("slow call: err=%v, want timeout", err)
	}
	// Wait for the orphaned response to arrive and be discarded.
	deadline := time.Now().Add(2 * time.Second)
	for c.LateDropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late response never counted as dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Alive() {
		t.Fatalf("late response killed the connection: %v", c.Err())
	}
	resp, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "next"}}, time.Second)
	if err != nil || resp.Result.Handle != "next" {
		t.Fatalf("call after late drop: resp=%v err=%v", resp, err)
	}
	if n := c.LateDropped(); n != 1 {
		t.Errorf("LateDropped = %d, want 1", n)
	}
}

// TestConcurrentCloseWhenIdleDrains verifies drain-close: after
// CloseWhenIdle new calls are refused, but calls already in flight
// complete normally, and the connection closes once they settle.
func TestConcurrentCloseWhenIdleDrains(t *testing.T) {
	c, ln := dialPair(t, 0)
	echoServe(t, ln, func(rarid string) time.Duration { return 80 * time.Millisecond })

	respC := make(chan *Message, 1)
	errC := make(chan error, 1)
	go func() {
		resp, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "inflight"}}, time.Second)
		respC <- resp
		errC <- err
	}()
	// Wait until the call is registered before draining.
	deadline := time.Now().Add(time.Second)
	for c.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight call never registered")
		}
		time.Sleep(time.Millisecond)
	}
	c.CloseWhenIdle()

	if _, err := c.Call(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "refused"}}); err == nil {
		t.Fatal("call accepted after CloseWhenIdle")
	}
	resp, err := <-respC, <-errC
	if err != nil {
		t.Fatalf("in-flight call failed during drain: %v", err)
	}
	if resp.Result.Handle != "inflight" {
		t.Fatalf("in-flight call got response for %q", resp.Result.Handle)
	}
	// With the last waiter drained the connection must actually close.
	deadline = time.Now().Add(2 * time.Second)
	for c.Alive() {
		if time.Now().After(deadline) {
			t.Fatal("connection stayed open after drain completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentServerShutdown kills a server with established
// connections: clients observe the death promptly, and a fresh server
// can re-listen on the same address afterwards.
func TestConcurrentServerShutdown(t *testing.T) {
	net := transport.NewNetwork(0)
	server := net.NewEndpoint("/CN=server", nil)
	client := net.NewEndpoint("/CN=client", nil)
	ln, err := server.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(HandlerFunc(func(_ Peer, msg *Message) *Message {
		return OKResult(msg.Status.RARID)
	}), nil)
	go srv.Serve(ln)

	c, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "pre"}}, time.Second); err != nil {
		t.Fatalf("call before shutdown: %v", err)
	}

	srv.Shutdown()
	if _, err := c.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "during"}}, time.Second); err == nil {
		t.Fatal("call succeeded against a shut-down server")
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Alive() {
		if time.Now().After(deadline) {
			t.Fatal("client never observed the server shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The address must be reusable — this is what a broker restart
	// looks like to the rest of the testbed.
	ln2, err := server.Listen("srv")
	if err != nil {
		t.Fatalf("re-listen after shutdown: %v", err)
	}
	defer ln2.Close()
	srv2 := NewServer(HandlerFunc(func(_ Peer, msg *Message) *Message {
		return OKResult(msg.Status.RARID)
	}), nil)
	go srv2.Serve(ln2)
	defer srv2.Shutdown()

	c2, err := Dial(client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err := c2.CallTimeout(&Message{Type: MsgStatus, Status: &StatusPayload{RARID: "post"}}, time.Second)
	if err != nil || resp.Result.Handle != "post" {
		t.Fatalf("call after restart: resp=%v err=%v", resp, err)
	}
}
