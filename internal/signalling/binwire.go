package signalling

import (
	"fmt"
	"sort"
	"sync"

	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/wire"
)

// Binary frame layout (the default wire encoding, DESIGN.md §6.6):
//
//	byte 0   BinMagic (0xE2) — JSON frames start with '{', so one byte
//	         discriminates the two encodings per message
//	byte 1   BinVersion
//	byte 2   message type code (see typeCode)
//	uvarint  message ID
//	fields   the single payload struct for the type, tag-encoded
//
// Fields use the wire package's tag scheme; zero-valued fields are
// omitted and unknown tags are skipped, so growth stays additive.
const (
	// BinMagic is the first byte of every binary signalling frame.
	BinMagic = 0xE2
	// BinVersion is the current frame version; decoders reject frames
	// from the future rather than misparse them.
	BinVersion = 1
)

// WireMode selects the frame encoding a client speaks. The server side
// needs no mode: it answers every request in the encoding the request
// arrived in, which is how the per-connection negotiation works — a
// `-wire json` client simply never sees a binary byte.
type WireMode int

const (
	// WireBinary is the default hot-path encoding.
	WireBinary WireMode = iota
	// WireJSON is the debug/interop encoding (the pre-binary format).
	WireJSON
)

func (m WireMode) String() string {
	if m == WireJSON {
		return "json"
	}
	return "binary"
}

// ParseWireMode parses a -wire flag value; empty selects binary.
func ParseWireMode(s string) (WireMode, error) {
	switch s {
	case "", "binary":
		return WireBinary, nil
	case "json":
		return WireJSON, nil
	default:
		return WireBinary, fmt.Errorf("signalling: unknown wire mode %q (want binary or json)", s)
	}
}

// typeCode maps MsgType to its single-byte wire code and back. Codes
// are part of the wire format: never renumber, only append.
var typeCodes = [...]MsgType{
	1: MsgReserve,
	2: MsgCancel,
	3: MsgTunnelAlloc,
	4: MsgTunnelRelease,
	5: MsgTunnelBatch,
	6: MsgStatus,
	7: MsgResult,
	8: MsgJournalStream,
}

func typeCode(t MsgType) byte {
	for c, mt := range typeCodes {
		if mt == t {
			return byte(c)
		}
	}
	return 0
}

// AppendBinary appends the canonical binary frame for m. Encoding is
// infallible by construction (every field type has a total encoding),
// which is what lets the hot path run without error plumbing.
func (m *Message) AppendBinary(buf []byte) []byte {
	buf = append(buf, BinMagic, BinVersion, typeCode(m.Type))
	buf = wire.AppendUvarint(buf, m.ID)
	switch {
	case m.Reserve != nil:
		buf = m.Reserve.appendFields(buf)
	case m.Cancel != nil:
		buf = wire.AppendString(buf, 1, m.Cancel.RARID)
	case m.TunnelAlloc != nil:
		buf = m.TunnelAlloc.appendFields(buf)
	case m.TunnelRelease != nil:
		buf = wire.AppendString(buf, 1, m.TunnelRelease.TunnelRARID)
		buf = wire.AppendString(buf, 2, m.TunnelRelease.SubFlowID)
	case m.TunnelBatch != nil:
		buf = m.TunnelBatch.appendFields(buf)
	case m.Status != nil:
		buf = wire.AppendString(buf, 1, m.Status.RARID)
	case m.Result != nil:
		buf = m.Result.appendFields(buf)
	case m.JournalStream != nil:
		buf = m.JournalStream.appendFields(buf)
	}
	return buf
}

// decodeBinary parses a binary frame (data[0] == BinMagic).
func decodeBinary(data []byte) (*Message, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("signalling: binary frame of %d bytes", len(data))
	}
	if data[1] != BinVersion {
		return nil, fmt.Errorf("signalling: unsupported frame version %d", data[1])
	}
	code := data[2]
	if int(code) >= len(typeCodes) || code == 0 {
		return nil, fmt.Errorf("signalling: unknown message type code %d", code)
	}
	m := &Message{Type: typeCodes[code]}
	d := &wire.Dec{Buf: data[3:]}
	m.ID = d.Uvarint()
	var err error
	switch m.Type {
	case MsgReserve:
		p := &ReservePayload{}
		err = p.decodeFields(d)
		m.Reserve = p
	case MsgCancel:
		p := &CancelPayload{}
		err = decodeRARIDFields(d, &p.RARID)
		m.Cancel = p
	case MsgTunnelAlloc:
		p := &TunnelAllocPayload{}
		err = p.decodeFields(d)
		m.TunnelAlloc = p
	case MsgTunnelRelease:
		p := &TunnelReleasePayload{}
		err = p.decodeFields(d)
		m.TunnelRelease = p
	case MsgTunnelBatch:
		p := &TunnelBatchPayload{}
		err = p.decodeFields(d)
		m.TunnelBatch = p
	case MsgStatus:
		p := &StatusPayload{}
		err = decodeRARIDFields(d, &p.RARID)
		m.Status = p
	case MsgResult:
		p := &ResultPayload{}
		err = p.decodeFields(d)
		m.Result = p
	case MsgJournalStream:
		p := &JournalStreamPayload{}
		err = p.decodeFields(d)
		m.JournalStream = p
	}
	if err != nil {
		return nil, fmt.Errorf("signalling: decode %s: %w", m.Type, err)
	}
	return m, nil
}

// skipUnknown handles a tag no decoder claimed.
func skipUnknown(d *wire.Dec, wt byte) { d.Skip(wt) }

// decodeRARIDFields decodes the single-string payloads (cancel,
// status): field 1 = rar id.
func decodeRARIDFields(d *wire.Dec, rarID *string) error {
	for d.More() {
		f, wt := d.Tag()
		if f == 1 && wt == wire.TBytes {
			*rarID = d.String()
		} else {
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// ReservePayload: 1=mode 2=trace_id 3=envelope 4=sampled
// 5=path_pin (repeated) 6=attempt 7=split_part 8=split_of 9=split_bw.
func (p *ReservePayload) appendFields(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, string(p.Mode))
	buf = wire.AppendString(buf, 2, p.TraceID)
	buf = wire.AppendBytes(buf, 3, p.EnvelopeData)
	buf = wire.AppendBool(buf, 4, p.Sampled)
	for _, hop := range p.PathPin {
		buf = wire.AppendBytes(buf, 5, []byte(hop))
	}
	buf = wire.AppendInt(buf, 6, int64(p.Attempt))
	buf = wire.AppendInt(buf, 7, int64(p.SplitPart))
	buf = wire.AppendInt(buf, 8, int64(p.SplitOf))
	buf = wire.AppendInt(buf, 9, p.SplitBW)
	return buf
}

func (p *ReservePayload) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			p.Mode = ReserveMode(d.String())
		case f == 2 && wt == wire.TBytes:
			p.TraceID = d.String()
		case f == 3 && wt == wire.TBytes:
			p.EnvelopeData = append([]byte(nil), d.Bytes()...)
		case f == 4 && wt == wire.TVarint:
			p.Sampled = d.Bool()
		case f == 5 && wt == wire.TBytes:
			p.PathPin = append(p.PathPin, d.String())
		case f == 6 && wt == wire.TVarint:
			p.Attempt = int(d.Varint())
		case f == 7 && wt == wire.TVarint:
			p.SplitPart = int(d.Varint())
		case f == 8 && wt == wire.TVarint:
			p.SplitOf = int(d.Varint())
		case f == 9 && wt == wire.TVarint:
			p.SplitBW = d.Varint()
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// TunnelAllocPayload: 1=tunnel_rar_id 2=sub_flow_id 3=user 4=bandwidth.
func (p *TunnelAllocPayload) appendFields(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, p.TunnelRARID)
	buf = wire.AppendString(buf, 2, p.SubFlowID)
	buf = wire.AppendString(buf, 3, string(p.User))
	buf = wire.AppendInt(buf, 4, p.Bandwidth)
	return buf
}

func (p *TunnelAllocPayload) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			p.TunnelRARID = d.String()
		case f == 2 && wt == wire.TBytes:
			p.SubFlowID = d.String()
		case f == 3 && wt == wire.TBytes:
			p.User = identity.DN(d.String())
		case f == 4 && wt == wire.TVarint:
			p.Bandwidth = d.Varint()
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// TunnelReleasePayload: 1=tunnel_rar_id 2=sub_flow_id.
func (p *TunnelReleasePayload) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			p.TunnelRARID = d.String()
		case f == 2 && wt == wire.TBytes:
			p.SubFlowID = d.String()
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// Batch op action codes; string forms stay on the JSON wire only.
const (
	opCodeAlloc   = 1
	opCodeRelease = 2
)

// TunnelOp: 1=action(code) 2=sub_flow_id 3=bandwidth. Ops dominate
// batch frames, so their encoding is the hottest in the codec.
func (op *TunnelOp) appendFields(buf []byte) []byte {
	switch op.Action {
	case OpAlloc:
		buf = wire.AppendUint(buf, 1, opCodeAlloc)
	case OpRelease:
		buf = wire.AppendUint(buf, 1, opCodeRelease)
	default:
		// Unknown actions encode as the literal string in field 4 so
		// Validate still sees (and rejects) them after a round trip.
		buf = wire.AppendString(buf, 4, string(op.Action))
	}
	buf = wire.AppendString(buf, 2, op.SubFlowID)
	buf = wire.AppendInt(buf, 3, op.Bandwidth)
	return buf
}

func (op *TunnelOp) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TVarint:
			switch d.Uvarint() {
			case opCodeAlloc:
				op.Action = OpAlloc
			case opCodeRelease:
				op.Action = OpRelease
			}
		case f == 2 && wt == wire.TBytes:
			op.SubFlowID = d.String()
		case f == 3 && wt == wire.TVarint:
			op.Bandwidth = d.Varint()
		case f == 4 && wt == wire.TBytes:
			op.Action = TunnelOpAction(d.String())
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// TunnelBatchPayload: 1=tunnel_rar_id 2=batch_id 3=user 4=ops(repeated)
// 5=trace_id 6=sampled.
func (p *TunnelBatchPayload) appendFields(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, p.TunnelRARID)
	buf = wire.AppendString(buf, 2, p.BatchID)
	buf = wire.AppendString(buf, 3, string(p.User))
	for i := range p.Ops {
		var start int
		buf, start = wire.BeginNested(buf, 4)
		buf = p.Ops[i].appendFields(buf)
		buf = wire.EndNested(buf, start)
	}
	buf = wire.AppendString(buf, 5, p.TraceID)
	buf = wire.AppendBool(buf, 6, p.Sampled)
	return buf
}

func (p *TunnelBatchPayload) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			p.TunnelRARID = d.String()
		case f == 2 && wt == wire.TBytes:
			p.BatchID = d.String()
		case f == 3 && wt == wire.TBytes:
			p.User = identity.DN(d.String())
		case f == 4 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			var op TunnelOp
			if err := op.decodeFields(&sub); err != nil {
				return err
			}
			p.Ops = append(p.Ops, op)
		case f == 5 && wt == wire.TBytes:
			p.TraceID = d.String()
		case f == 6 && wt == wire.TVarint:
			p.Sampled = d.Bool()
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// TunnelOpResult: 1=sub_flow_id 2=granted 3=reason.
func (r *TunnelOpResult) appendFields(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, r.SubFlowID)
	buf = wire.AppendBool(buf, 2, r.Granted)
	buf = wire.AppendString(buf, 3, r.Reason)
	return buf
}

func (r *TunnelOpResult) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			r.SubFlowID = d.String()
		case f == 2 && wt == wire.TVarint:
			r.Granted = d.Bool()
		case f == 3 && wt == wire.TBytes:
			r.Reason = d.String()
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// DomainApproval: 1=domain 2=bb_dn 3=rar_id 4=handle 5=granted
// 6=reason 7=signature. appendCore (fields 1-6) doubles as the
// canonical signing payload — see approvalPayload in messages.go.
func (a *DomainApproval) appendCore(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, a.Domain)
	buf = wire.AppendString(buf, 2, string(a.BBDN))
	buf = wire.AppendString(buf, 3, a.RARID)
	buf = wire.AppendString(buf, 4, a.Handle)
	buf = wire.AppendBool(buf, 5, a.Granted)
	buf = wire.AppendString(buf, 6, a.Reason)
	return buf
}

func (a *DomainApproval) appendFields(buf []byte) []byte {
	buf = a.appendCore(buf)
	buf = wire.AppendBytes(buf, 7, a.Signature)
	return buf
}

func (a *DomainApproval) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			a.Domain = d.String()
		case f == 2 && wt == wire.TBytes:
			a.BBDN = identity.DN(d.String())
		case f == 3 && wt == wire.TBytes:
			a.RARID = d.String()
		case f == 4 && wt == wire.TBytes:
			a.Handle = d.String()
		case f == 5 && wt == wire.TVarint:
			a.Granted = d.Bool()
		case f == 6 && wt == wire.TBytes:
			a.Reason = d.String()
		case f == 7 && wt == wire.TBytes:
			a.Signature = append([]byte(nil), d.Bytes()...)
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// JournalStreamPayload: 1=domain 2=term 3=leader_id 4=from_seq
// 5=commit_seq 6=snapshot 7=snap_seq 8=records(repeated) 9=kind.
func (p *JournalStreamPayload) appendFields(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, p.Domain)
	buf = wire.AppendInt(buf, 2, p.Term)
	buf = wire.AppendInt(buf, 3, int64(p.LeaderID))
	buf = wire.AppendInt(buf, 4, p.FromSeq)
	buf = wire.AppendInt(buf, 5, p.CommitSeq)
	buf = wire.AppendBytes(buf, 6, p.Snapshot)
	buf = wire.AppendInt(buf, 7, p.SnapSeq)
	for _, rec := range p.Records {
		// Records may legitimately be empty placeholders on the JSON
		// side, but the journal never frames a zero-byte record, so the
		// always-emit form (AppendBytes omits empties) is safe here.
		buf = wire.AppendBytes(buf, 8, rec)
	}
	buf = wire.AppendInt(buf, 9, int64(p.Kind))
	return buf
}

func (p *JournalStreamPayload) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			p.Domain = d.String()
		case f == 2 && wt == wire.TVarint:
			p.Term = d.Varint()
		case f == 3 && wt == wire.TVarint:
			p.LeaderID = int(d.Varint())
		case f == 4 && wt == wire.TVarint:
			p.FromSeq = d.Varint()
		case f == 5 && wt == wire.TVarint:
			p.CommitSeq = d.Varint()
		case f == 6 && wt == wire.TBytes:
			p.Snapshot = append([]byte(nil), d.Bytes()...)
		case f == 7 && wt == wire.TVarint:
			p.SnapSeq = d.Varint()
		case f == 8 && wt == wire.TBytes:
			p.Records = append(p.Records, append([]byte(nil), d.Bytes()...))
		case f == 9 && wt == wire.TVarint:
			p.Kind = int(d.Varint())
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// ResultPayload: 1=granted 2=reason 3=handle 4=approvals(repeated)
// 5=policy_info(repeated k/v pairs, key-sorted) 6=trace_id
// 7=trace(repeated spans) 8=batch_results(repeated) 9=ack_seq 10=term.
func (p *ResultPayload) appendFields(buf []byte) []byte {
	buf = wire.AppendBool(buf, 1, p.Granted)
	buf = wire.AppendString(buf, 2, p.Reason)
	buf = wire.AppendString(buf, 3, p.Handle)
	for i := range p.Approvals {
		var start int
		buf, start = wire.BeginNested(buf, 4)
		buf = p.Approvals[i].appendFields(buf)
		buf = wire.EndNested(buf, start)
	}
	buf = appendPolicyInfo(buf, 5, p.PolicyInfo)
	buf = wire.AppendString(buf, 6, p.TraceID)
	for i := range p.Trace {
		var start int
		buf, start = wire.BeginNested(buf, 7)
		buf = p.Trace[i].AppendWire(buf)
		buf = wire.EndNested(buf, start)
	}
	for i := range p.BatchResults {
		var start int
		buf, start = wire.BeginNested(buf, 8)
		buf = p.BatchResults[i].appendFields(buf)
		buf = wire.EndNested(buf, start)
	}
	buf = wire.AppendInt(buf, 9, p.AckSeq)
	buf = wire.AppendInt(buf, 10, p.Term)
	return buf
}

func (p *ResultPayload) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TVarint:
			p.Granted = d.Bool()
		case f == 2 && wt == wire.TBytes:
			p.Reason = d.String()
		case f == 3 && wt == wire.TBytes:
			p.Handle = d.String()
		case f == 4 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			var a DomainApproval
			if err := a.decodeFields(&sub); err != nil {
				return err
			}
			p.Approvals = append(p.Approvals, a)
		case f == 5 && wt == wire.TBytes:
			if p.PolicyInfo == nil {
				p.PolicyInfo = make(map[string]string)
			}
			sub := wire.Dec{Buf: d.Bytes()}
			k := sub.String()
			v := sub.String()
			if err := sub.Err(); err != nil {
				return err
			}
			p.PolicyInfo[k] = v
		case f == 6 && wt == wire.TBytes:
			p.TraceID = d.String()
		case f == 7 && wt == wire.TBytes:
			var s obs.Span
			if err := s.DecodeWire(d.Bytes()); err != nil {
				return err
			}
			p.Trace = append(p.Trace, s)
		case f == 8 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			var r TunnelOpResult
			if err := r.decodeFields(&sub); err != nil {
				return err
			}
			p.BatchResults = append(p.BatchResults, r)
		case f == 9 && wt == wire.TVarint:
			p.AckSeq = d.Varint()
		case f == 10 && wt == wire.TVarint:
			p.Term = d.Varint()
		default:
			skipUnknown(d, wt)
		}
	}
	return d.Err()
}

// appendPolicyInfo encodes a string map as repeated (len-key len-value)
// pairs in ascending key order, so equal maps encode to equal bytes.
// Maps are cold-path (cost quotes, SLS attributes): the sort's small
// allocation is acceptable outside the zero-alloc gate, and empty maps
// cost nothing.
func appendPolicyInfo(buf []byte, field uint32, m map[string]string) []byte {
	if len(m) == 0 {
		return buf
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var start int
		buf, start = wire.BeginNested(buf, field)
		buf = wire.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		v := m[k]
		buf = wire.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
		buf = wire.EndNested(buf, start)
	}
	return buf
}

// encBufPool recycles encode buffers for the RPC send paths. Both
// transports finish with the buffer before Send returns (memory copies,
// TLS writes through), so returning it to the pool afterwards is safe.
var encBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

// appendWire encodes m in the requested mode on the given buffer.
func (m *Message) appendWire(buf []byte, mode WireMode) ([]byte, error) {
	if mode == WireJSON {
		data, err := m.EncodeJSON()
		if err != nil {
			return nil, err
		}
		return append(buf, data...), nil
	}
	return m.AppendBinary(buf), nil
}
