package signalling

import (
	"testing"
)

// FuzzDecodeMessage ensures arbitrary wire bytes never panic the
// decoder and that accepted messages re-encode. Batch payloads that
// decode must additionally never panic Validate, and batches that
// validate must be structurally sound (no duplicate sub-flow IDs, no
// non-positive alloc bandwidth).
func FuzzDecodeMessage(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"type":"reserve","id":1,"reserve":{"mode":"e2e","envelope":{}}}`),
		[]byte(`{"type":"cancel","id":2,"cancel":{"rar_id":"RAR-1"}}`),
		[]byte(`{"type":"result","id":3,"result":{"granted":true,"handle":"h"}}`),
		[]byte(`{"type":"tunnel-alloc","tunnel_alloc":{"tunnel_rar_id":"r","sub_flow_id":"s","bandwidth":1}}`),
		[]byte(`{"type":"tunnel-batch","id":4,"tunnel_batch":{"tunnel_rar_id":"r","batch_id":"B-1","user":"/O=Grid/CN=alice","ops":[{"a":"alloc","id":"s1","bw":1000000},{"a":"release","id":"s2"}]}}`),
		[]byte(`{"type":"tunnel-batch","tunnel_batch":{"tunnel_rar_id":"r","batch_id":"B-2","ops":[{"a":"alloc","id":"dup","bw":1},{"a":"release","id":"dup"}]}}`),
		[]byte(`{"type":"tunnel-batch","tunnel_batch":{"tunnel_rar_id":"r","batch_id":"B-3","ops":[{"a":"alloc","id":"s","bw":0}]}}`),
		[]byte(`{"type":"tunnel-batch","tunnel_batch":{"tunnel_rar_id":"r","batch_id":"B-4","ops":[{"a":"alloc","id":"s","bw":-5}]}}`),
		[]byte(`{"type":"tunnel-batch","tunnel_batch":{"tunnel_rar_id":"","batch_id":"","ops":[]}}`),
		[]byte(`{"type":"tunnel-batch","tunnel_batch":{"tunnel_rar_id":"r","batch_id":"B-5","ops":[{"a":"flood","id":"s"}]}}`),
		[]byte(`{"type":"result","id":6,"result":{"granted":false,"batch_results":[{"id":"s1","ok":true},{"id":"s2","err":"no capacity"}]}}`),
		[]byte(`{"type":"journal-stream","id":7,"journal_stream":{"domain":"DomainA","term":3,"leader_id":1,"from_seq":7,"commit_seq":6,"records":["sQE=","sQI="]}}`),
		[]byte(`{"type":"journal-stream","id":8,"journal_stream":{"kind":1,"domain":"DomainA","term":4,"leader_id":2,"from_seq":9}}`),
		[]byte(`{"type":"result","id":9,"result":{"granted":true,"ack_seq":42,"term":3}}`),
		[]byte(`{"type":"tunnel-batch","tunnel_batch":{"tunnel_rar_id":"r","batch_id":"B-7","ops":[{"a":"all`),
		[]byte(`{}`),
		[]byte(`null`),
		[]byte(`[1,2,3]`),
		[]byte("\x00\x01\x02"),
		[]byte(``),
	}
	// Binary-frame seeds: each golden frame, plus the malformed shapes
	// the binary decoder must classify without panicking — torn varints,
	// truncated frames, wrong wire types on known tags, and frames from
	// the future.
	for _, g := range goldenMessages() {
		frame := g.msg.AppendBinary(nil)
		seeds = append(seeds,
			frame,
			frame[:len(frame)-1],             // truncated tail
			frame[:3],                        // header only, ID missing
			append(frame[:len(frame):len(frame)], 0x80), // torn trailing varint
		)
	}
	seeds = append(seeds,
		[]byte{BinMagic},                                  // magic alone
		[]byte{BinMagic, BinVersion},                      // no type code
		[]byte{BinMagic, 99, 2, 0},                        // future version
		[]byte{BinMagic, BinVersion, 0, 0},                // type code 0
		[]byte{BinMagic, BinVersion, 200, 0},              // unknown type code
		[]byte{BinMagic, BinVersion, 2, 0x80, 0x80, 0x80}, // torn ID varint
		[]byte{BinMagic, BinVersion, 2, 1, 0x0a, 0xff},    // bytes length past end
		[]byte{BinMagic, BinVersion, 2, 1, 0x08, 0x01},    // tag collision: field 1 as varint
		[]byte{BinMagic, BinVersion, 6, 1, 0x0d, 0x00},    // unsupported wire type 5
	)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if msg.Type == "" {
			t.Fatal("decoder accepted a typeless message")
		}
		if _, err := msg.Encode(); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		if b := msg.TunnelBatch; b != nil {
			if err := b.Validate(); err == nil {
				seen := make(map[string]struct{}, len(b.Ops))
				for _, op := range b.Ops {
					if _, dup := seen[op.SubFlowID]; dup {
						t.Fatalf("validated batch has duplicate sub-flow %q", op.SubFlowID)
					}
					seen[op.SubFlowID] = struct{}{}
					if op.Action == OpAlloc && op.Bandwidth <= 0 {
						t.Fatalf("validated batch allocs %d b/s", op.Bandwidth)
					}
				}
			}
		}
	})
}
