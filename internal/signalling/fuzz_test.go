package signalling

import (
	"testing"
)

// FuzzDecodeMessage ensures arbitrary wire bytes never panic the
// decoder and that accepted messages re-encode.
func FuzzDecodeMessage(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"type":"reserve","id":1,"reserve":{"mode":"e2e","envelope":{}}}`),
		[]byte(`{"type":"cancel","id":2,"cancel":{"rar_id":"RAR-1"}}`),
		[]byte(`{"type":"result","id":3,"result":{"granted":true,"handle":"h"}}`),
		[]byte(`{"type":"tunnel-alloc","tunnel_alloc":{"tunnel_rar_id":"r","sub_flow_id":"s","bandwidth":1}}`),
		[]byte(`{}`),
		[]byte(`null`),
		[]byte(`[1,2,3]`),
		[]byte("\x00\x01\x02"),
		[]byte(``),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if msg.Type == "" {
			t.Fatal("decoder accepted a typeless message")
		}
		if _, err := msg.Encode(); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
	})
}
