package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"testing"
	"time"

	"e2eqos/internal/identity"
)

func mustCA(t *testing.T, name string) *CA {
	t.Helper()
	ca, err := NewCA(identity.NewDN("Grid", "", name))
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func mustKey(t *testing.T, dn identity.DN) *identity.KeyPair {
	t.Helper()
	kp, err := identity.GenerateKeyPair(dn)
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestCAIssueIdentity(t *testing.T) {
	ca := mustCA(t, "RootCA")
	alice := mustKey(t, identity.NewDN("Grid", "DomainA", "Alice"))
	cert, err := ca.IssueIdentity(alice.DN, alice.Public(), 0, "alice.domain-a.example")
	if err != nil {
		t.Fatal(err)
	}
	if cert.SubjectDN() != alice.DN {
		t.Errorf("subject DN = %s, want %s", cert.SubjectDN(), alice.DN)
	}
	if cert.IssuerDN() != ca.DN() {
		t.Errorf("issuer DN = %s, want %s", cert.IssuerDN(), ca.DN())
	}
	if !cert.PublicKey().Equal(alice.Public()) {
		t.Error("embedded public key mismatch")
	}
	if err := cert.CheckSignedBy(ca.PublicKey()); err != nil {
		t.Errorf("CA signature invalid: %v", err)
	}
	other := mustCA(t, "OtherCA")
	if err := cert.CheckSignedBy(other.PublicKey()); err == nil {
		t.Error("signature verified under wrong CA key")
	}
	if !cert.ValidAt(time.Now()) {
		t.Error("freshly issued cert should be valid now")
	}
	if cert.ValidAt(time.Now().Add(400 * 24 * time.Hour)) {
		t.Error("cert should have expired after default validity")
	}
}

func TestCAIssueIdentityErrors(t *testing.T) {
	ca := mustCA(t, "RootCA")
	if _, err := ca.IssueIdentity("bogus", nil, 0); err == nil {
		t.Fatal("expected error for invalid DN")
	}
	alice := mustKey(t, identity.NewDN("Grid", "A", "Alice"))
	if _, err := ca.IssueIdentity(alice.DN, nil, 0); err == nil {
		t.Fatal("expected error for nil key")
	}
}

func TestCASerialIncrements(t *testing.T) {
	ca := mustCA(t, "RootCA")
	a := mustKey(t, identity.NewDN("Grid", "A", "a"))
	c1, err := ca.IssueIdentity(a.DN, a.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ca.IssueIdentity(a.DN, a.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Cert.SerialNumber.Cmp(c2.Cert.SerialNumber) == 0 {
		t.Fatal("serial numbers must differ")
	}
}

func TestParseCertificateRejectsGarbage(t *testing.T) {
	if _, err := ParseCertificate([]byte{0x30, 0x01, 0x02}); err == nil {
		t.Fatal("garbage must not parse")
	}
}

// buildChain constructs the Figure 7 scenario: CAS issues a capability
// to the user over a proxy key; the user delegates to BB-A, BB-A to
// BB-B, BB-B to BB-C.
func buildChain(t *testing.T) (cas *identity.KeyPair, chain CapabilityChain, bbKeys []*identity.KeyPair) {
	t.Helper()
	cas = mustKey(t, identity.NewDN("ESnet", "", "CAS"))
	user := mustKey(t, identity.NewDN("Grid", "DomainA", "Alice"))
	proxy, err := NewProxyKey()
	if err != nil {
		t.Fatal(err)
	}
	attrs := CapabilityAttrs{Community: "ESnet", Capabilities: []string{"network-reservation", "premium"}}
	root, err := IssueCommunityCapability(cas.DN, cas, user.DN, proxy, attrs, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	chain = CapabilityChain{root}
	dns := []identity.DN{
		identity.NewDN("Grid", "DomainA", "bb-a"),
		identity.NewDN("Grid", "DomainB", "bb-b"),
		identity.NewDN("Grid", "DomainC", "bb-c"),
	}
	signerDN, signerKey := user.DN, proxy.Private
	for i, dn := range dns {
		kp := mustKey(t, dn)
		bbKeys = append(bbKeys, kp)
		restr := []string(nil)
		if i == 0 {
			restr = []string{"valid-for-rar:RAR-17"}
		}
		next, err := Delegate(chain[len(chain)-1], signerDN, signerKey, dn, kp.Public(), restr, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, next)
		signerDN, signerKey = dn, kp.Private
	}
	return cas, chain, bbKeys
}

func TestCapabilityChainFigure7(t *testing.T) {
	cas, chain, bbKeys := buildChain(t)
	// Figure 7: list lengths 1 (user), 2 (A), 3 (B), 4 (C).
	if len(chain) != 4 {
		t.Fatalf("chain length = %d, want 4", len(chain))
	}
	attrs, err := chain.Verify(VerifyOptions{CASKey: cas.Public()})
	if err != nil {
		t.Fatalf("chain verification failed: %v", err)
	}
	if !attrs.HasCapability("network-reservation") {
		t.Error("effective attrs lost capability")
	}
	if len(attrs.Restrictions) != 1 || attrs.Restrictions[0] != "valid-for-rar:RAR-17" {
		t.Errorf("restrictions = %v", attrs.Restrictions)
	}
	// Restriction scoping.
	if _, err := chain.Verify(VerifyOptions{CASKey: cas.Public(), RequireRestriction: "valid-for-rar:RAR-17"}); err != nil {
		t.Errorf("chain should satisfy its own restriction: %v", err)
	}
	if _, err := chain.Verify(VerifyOptions{CASKey: cas.Public(), RequireRestriction: "valid-for-rar:OTHER"}); err == nil {
		t.Error("chain must not satisfy a different RAR restriction")
	}
	// Possession proof by the final broker (BB-C).
	nonce := []byte("nonce-123")
	proof, err := ProvePossession(bbKeys[2].Private, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.VerifyPossession(nonce, proof); err != nil {
		t.Errorf("possession proof rejected: %v", err)
	}
	wrong, _ := ProvePossession(bbKeys[0].Private, nonce)
	if err := chain.VerifyPossession(nonce, wrong); err == nil {
		t.Error("possession proof by wrong key accepted")
	}
}

func TestCapabilityChainRejectsWrongCAS(t *testing.T) {
	_, chain, _ := buildChain(t)
	evil := mustKey(t, identity.NewDN("Evil", "", "CAS"))
	if _, err := chain.Verify(VerifyOptions{CASKey: evil.Public()}); err == nil {
		t.Fatal("chain anchored at wrong CAS accepted")
	}
}

func TestCapabilityChainRejectsTamperedDelegation(t *testing.T) {
	cas, chain, _ := buildChain(t)
	// Replace the second delegation with one signed by an unrelated key:
	// simulates an intermediate domain injecting a delegation it could
	// not legitimately produce.
	mallory := mustKey(t, identity.NewDN("Evil", "", "Mallory"))
	forged, err := Delegate(chain[1], chain[1].SubjectDN(), mallory.Private,
		chain[2].SubjectDN(), chain[2].PublicKey(), nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bad := append(CapabilityChain{}, chain...)
	bad[2] = forged
	if _, err := bad.Verify(VerifyOptions{CASKey: cas.Public()}); err == nil {
		t.Fatal("forged delegation accepted")
	}
}

func TestCapabilityChainRejectsExpandedCapabilities(t *testing.T) {
	cas, chain, bbKeys := buildChain(t)
	// BB-C attempts to delegate to itself with MORE capabilities.
	grown := chain[3].Attrs
	grown.Capabilities = append(append([]string(nil), grown.Capabilities...), "root-access")
	cert, err := issueCapability(chain[3].SubjectDN(), bbKeys[2].Private,
		identity.NewDN("Grid", "DomainC", "bb-c2"), bbKeys[2].Public(), grown, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bad := append(append(CapabilityChain{}, chain...), cert)
	if _, err := bad.Verify(VerifyOptions{CASKey: cas.Public()}); err == nil {
		t.Fatal("capability expansion accepted")
	}
}

func TestCapabilityChainRejectsDroppedRestrictions(t *testing.T) {
	cas, chain, bbKeys := buildChain(t)
	attrs := chain[3].Attrs
	attrs.Restrictions = nil // drop "valid-for-rar"
	cert, err := issueCapability(chain[3].SubjectDN(), bbKeys[2].Private,
		identity.NewDN("Grid", "DomainC", "engine"), bbKeys[2].Public(), attrs, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bad := append(append(CapabilityChain{}, chain...), cert)
	if _, err := bad.Verify(VerifyOptions{CASKey: cas.Public()}); err == nil {
		t.Fatal("restriction laundering accepted")
	}
}

func TestCapabilityChainEncodeDecode(t *testing.T) {
	cas, chain, _ := buildChain(t)
	decoded, err := DecodeCapabilityChain(chain.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(chain) {
		t.Fatalf("decoded length %d, want %d", len(decoded), len(chain))
	}
	if _, err := decoded.Verify(VerifyOptions{CASKey: cas.Public()}); err != nil {
		t.Fatalf("decoded chain fails verification: %v", err)
	}
}

func TestDecodeChainRejectsNonCapabilityCert(t *testing.T) {
	ca := mustCA(t, "RootCA")
	a := mustKey(t, identity.NewDN("Grid", "A", "a"))
	cert, err := ca.IssueIdentity(a.DN, a.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCapabilityChain([][]byte{cert.DER}); err == nil {
		t.Fatal("identity cert accepted as capability cert")
	}
}

func TestEmptyChainVerify(t *testing.T) {
	cas := mustKey(t, identity.NewDN("ESnet", "", "CAS"))
	var chain CapabilityChain
	if _, err := chain.Verify(VerifyOptions{CASKey: cas.Public()}); err == nil {
		t.Fatal("empty chain accepted")
	}
	if err := chain.VerifyPossession([]byte("n"), []byte("p")); err == nil {
		t.Fatal("possession on empty chain accepted")
	}
}

func TestTrustStoreDirect(t *testing.T) {
	ca := mustCA(t, "RootCA")
	alice := mustKey(t, identity.NewDN("Grid", "A", "Alice"))
	cert, err := ca.IssueIdentity(alice.DN, alice.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(3)
	caCert := &Certificate{Cert: ca.Certificate(), DER: ca.CertificateDER()}
	if _, err := ts.DirectlyTrusted(cert, time.Now()); err == nil {
		t.Fatal("empty store must not trust anything")
	}
	if err := ts.AddRoot(caCert); err != nil {
		t.Fatal(err)
	}
	pub, err := ts.DirectlyTrusted(cert, time.Now())
	if err != nil {
		t.Fatalf("root-signed cert rejected: %v", err)
	}
	if !pub.Equal(alice.Public()) {
		t.Fatal("wrong key returned")
	}
}

func TestTrustStorePinnedPeer(t *testing.T) {
	ca := mustCA(t, "UnknownCA")
	peer := mustKey(t, identity.NewDN("Grid", "B", "bb-b"))
	cert, err := ca.IssueIdentity(peer.DN, peer.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(3)
	ts.PinPeer(peer.DN, peer.Public())
	if _, err := ts.DirectlyTrusted(cert, time.Now()); err != nil {
		t.Fatalf("pinned peer rejected: %v", err)
	}
	// Same DN, different key: must be rejected.
	imposter := mustKey(t, peer.DN)
	badCert, err := ca.IssueIdentity(peer.DN, imposter.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.DirectlyTrusted(badCert, time.Now()); err == nil {
		t.Fatal("imposter with pinned DN but wrong key accepted")
	}
}

// buildIntroductionChain models the signalling path A -> B -> C where C
// trusts only its peer B; B introduces A's certificate.
func buildIntroductionChain(t *testing.T) (ts *TrustStore, target *Certificate, intros []Introduction) {
	t.Helper()
	caA := mustCA(t, "CA-A")
	bbA := mustKey(t, identity.NewDN("Grid", "DomainA", "bb-a"))
	certA, err := caA.IssueIdentity(bbA.DN, bbA.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	bbB := mustKey(t, identity.NewDN("Grid", "DomainB", "bb-b"))
	intro, err := NewIntroduction(bbB, certA.DER)
	if err != nil {
		t.Fatal(err)
	}
	ts = NewTrustStore(2)
	ts.PinPeer(bbB.DN, bbB.Public())
	return ts, certA, []Introduction{intro}
}

func TestTrustStoreResolveViaIntroducer(t *testing.T) {
	ts, certA, intros := buildIntroductionChain(t)
	pub, depth, err := ts.ResolveKey(certA, intros, time.Now())
	if err != nil {
		t.Fatalf("introduction rejected: %v", err)
	}
	if depth != 1 {
		t.Errorf("depth = %d, want 1", depth)
	}
	if !pub.Equal(certA.PublicKey()) {
		t.Error("wrong key resolved")
	}
}

func TestTrustStoreDepthLimit(t *testing.T) {
	ts, certA, intros := buildIntroductionChain(t)
	ts.SetMaxIntroducerDepth(0)
	if _, _, err := ts.ResolveKey(certA, intros, time.Now()); err == nil {
		t.Fatal("introduction accepted despite depth limit 0")
	}
}

func TestTrustStoreRejectsUnknownIntroducer(t *testing.T) {
	_, certA, intros := buildIntroductionChain(t)
	ts := NewTrustStore(5) // does not pin bb-b
	if _, _, err := ts.ResolveKey(certA, intros, time.Now()); err == nil {
		t.Fatal("introduction by unknown introducer accepted")
	}
}

func TestTrustStoreRejectsTamperedIntroduction(t *testing.T) {
	ts, certA, intros := buildIntroductionChain(t)
	intros[0].Signature[0] ^= 0xff
	if _, _, err := ts.ResolveKey(certA, intros, time.Now()); err == nil {
		t.Fatal("tampered introduction accepted")
	}
}

func TestTrustStoreRejectsMismatchedTarget(t *testing.T) {
	ts, _, intros := buildIntroductionChain(t)
	otherCA := mustCA(t, "CA-X")
	kp := mustKey(t, identity.NewDN("Grid", "X", "bb-x"))
	otherCert, err := otherCA.IssueIdentity(kp.DN, kp.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ts.ResolveKey(otherCert, intros, time.Now()); err == nil {
		t.Fatal("introduction chain for a different subject accepted")
	}
}

func TestTrustStoreTwoHopIntroduction(t *testing.T) {
	// D trusts only C; C introduces B's cert; B introduces A's cert.
	caA := mustCA(t, "CA-A")
	caB := mustCA(t, "CA-B")
	bbA := mustKey(t, identity.NewDN("Grid", "DomainA", "bb-a"))
	bbB := mustKey(t, identity.NewDN("Grid", "DomainB", "bb-b"))
	bbC := mustKey(t, identity.NewDN("Grid", "DomainC", "bb-c"))
	certA, err := caA.IssueIdentity(bbA.DN, bbA.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	certB, err := caB.IssueIdentity(bbB.DN, bbB.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	introB, err := NewIntroduction(bbC, certB.DER) // C vouches for B
	if err != nil {
		t.Fatal(err)
	}
	introA, err := NewIntroduction(bbB, certA.DER) // B vouches for A
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(2)
	ts.PinPeer(bbC.DN, bbC.Public())
	pub, depth, err := ts.ResolveKey(certA, []Introduction{introB, introA}, time.Now())
	if err != nil {
		t.Fatalf("two-hop introduction rejected: %v", err)
	}
	if depth != 2 {
		t.Errorf("depth = %d, want 2", depth)
	}
	if !pub.Equal(bbA.Public()) {
		t.Error("wrong key resolved")
	}
	// Depth limit 1 must reject the same chain.
	ts.SetMaxIntroducerDepth(1)
	if _, _, err := ts.ResolveKey(certA, []Introduction{introB, introA}, time.Now()); err == nil {
		t.Fatal("two-hop chain accepted at depth limit 1")
	}
}

func TestExtractCapabilityAttrsAbsent(t *testing.T) {
	ca := mustCA(t, "RootCA")
	kp := mustKey(t, identity.NewDN("Grid", "A", "a"))
	cert, err := ca.IssueIdentity(kp.DN, kp.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := ExtractCapabilityAttrs(cert.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("identity cert flagged as capability cert")
	}
}

func TestProxyKeyDistinctFromUserKey(t *testing.T) {
	proxy, err := NewProxyKey()
	if err != nil {
		t.Fatal(err)
	}
	user, _ := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if proxy.Public().Equal(&user.PublicKey) {
		t.Fatal("proxy key must be independent")
	}
}
