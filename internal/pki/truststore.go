package pki

import (
	"crypto/ecdsa"
	"fmt"
	"sync"
	"time"

	"e2eqos/internal/identity"
)

// Introduction is one link of the paper's web-of-trust: an introducer
// vouches for a subject's certificate by signing it. In the signalling
// protocol each domain "adds the certificate of the upstream domain —
// known because of the SSL handshake — and signs it", so downstream
// domains accumulate a list of key introducers.
type Introduction struct {
	// IntroducerDN names the entity vouching for the certificate.
	IntroducerDN identity.DN
	// CertDER is the introduced certificate (DER).
	CertDER []byte
	// Signature is the introducer's signature over CertDER.
	Signature []byte
}

// NewIntroduction signs certDER with the introducer's key.
func NewIntroduction(introducer *identity.KeyPair, certDER []byte) (Introduction, error) {
	sig, err := introducer.Sign(certDER)
	if err != nil {
		return Introduction{}, err
	}
	return Introduction{IntroducerDN: introducer.DN, CertDER: certDER, Signature: sig}, nil
}

// TrustStore holds an entity's local trust decisions: the CA
// certificates it trusts directly, the peer certificates pinned via
// service level agreements (the paper: "This information includes the
// certificates of the peered BBs as well as the certificate of the
// issuing certificate authority"), and the maximum acceptable depth of
// an introducer chain ("Checking its own security policy which might
// limit the depth of an acceptable trust chain").
type TrustStore struct {
	mu sync.RWMutex
	// roots maps CA DN -> CA public key.
	roots map[identity.DN]*ecdsa.PublicKey
	// peers maps peer DN -> pinned public key (from SLA configuration
	// or a completed TLS handshake).
	peers map[identity.DN]*ecdsa.PublicKey
	// maxIntroducerDepth limits accepted introduction chains; 0 means
	// introductions are refused entirely.
	maxIntroducerDepth int
}

// NewTrustStore creates an empty store accepting introducer chains up
// to maxIntroducerDepth links.
func NewTrustStore(maxIntroducerDepth int) *TrustStore {
	return &TrustStore{
		roots:              make(map[identity.DN]*ecdsa.PublicKey),
		peers:              make(map[identity.DN]*ecdsa.PublicKey),
		maxIntroducerDepth: maxIntroducerDepth,
	}
}

// MaxIntroducerDepth returns the configured chain-depth limit.
func (t *TrustStore) MaxIntroducerDepth() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.maxIntroducerDepth
}

// SetMaxIntroducerDepth updates the chain-depth limit.
func (t *TrustStore) SetMaxIntroducerDepth(d int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maxIntroducerDepth = d
}

// AddRoot trusts a CA directly.
func (t *TrustStore) AddRoot(ca *Certificate) error {
	pub := ca.PublicKey()
	if pub == nil {
		return fmt.Errorf("pki: CA %s has non-ECDSA key", ca.SubjectDN())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots[ca.SubjectDN()] = pub
	return nil
}

// PinPeer records a directly trusted peer key, as established by an SLA
// or a mutually authenticated handshake.
func (t *TrustStore) PinPeer(dn identity.DN, pub *ecdsa.PublicKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[dn] = pub
}

// PeerKey returns the pinned key for dn, if any.
func (t *TrustStore) PeerKey(dn identity.DN) (*ecdsa.PublicKey, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pub, ok := t.peers[dn]
	return pub, ok
}

// DirectlyTrusted resolves the public key for a certificate the store
// trusts without introductions: either the subject is a pinned peer
// with a matching key, or a trusted root CA signed the certificate.
func (t *TrustStore) DirectlyTrusted(cert *Certificate, at time.Time) (*ecdsa.PublicKey, error) {
	if cert == nil {
		return nil, fmt.Errorf("pki: nil certificate")
	}
	if !cert.ValidAt(at) {
		return nil, fmt.Errorf("pki: certificate for %s not valid at %s", cert.SubjectDN(), at)
	}
	pub := cert.PublicKey()
	if pub == nil {
		return nil, fmt.Errorf("pki: certificate for %s has non-ECDSA key", cert.SubjectDN())
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if pinned, ok := t.peers[cert.SubjectDN()]; ok && pinned.Equal(pub) {
		return pub, nil
	}
	if caKey, ok := t.roots[cert.IssuerDN()]; ok {
		if err := cert.CheckSignedBy(caKey); err == nil {
			return pub, nil
		}
	}
	return nil, fmt.Errorf("pki: no direct trust path to %s", cert.SubjectDN())
}

// ResolveKey resolves the public key of a certificate through the web
// of trust. The introductions are ordered from the verifier outward:
// introductions[0] must be signed by a directly trusted entity, and
// each following introduction by the subject of the previous one. The
// final introduction's certificate is the target. Direct trust is tried
// first (depth 0).
//
// This is the mechanism the destination BB uses to accept the source
// BB's key without a shared CA: "This web of trust allows each domain
// to access a list of key introducers when deciding whether to accept
// the public key stored in the certificate."
func (t *TrustStore) ResolveKey(target *Certificate, introductions []Introduction, at time.Time) (*ecdsa.PublicKey, int, error) {
	if pub, err := t.DirectlyTrusted(target, at); err == nil {
		return pub, 0, nil
	}
	if len(introductions) == 0 {
		return nil, 0, fmt.Errorf("pki: %s not directly trusted and no introductions supplied", target.SubjectDN())
	}
	if len(introductions) > t.MaxIntroducerDepth() {
		return nil, 0, fmt.Errorf("pki: introduction chain depth %d exceeds local policy limit %d",
			len(introductions), t.MaxIntroducerDepth())
	}
	// The first introducer must be directly trusted.
	introducerKey, ok := t.PeerKey(introductions[0].IntroducerDN)
	if !ok {
		return nil, 0, fmt.Errorf("pki: first introducer %s is not directly trusted", introductions[0].IntroducerDN)
	}
	var lastCert *Certificate
	for i, intro := range introductions {
		if err := identity.Verify(introducerKey, intro.CertDER, intro.Signature); err != nil {
			return nil, 0, fmt.Errorf("pki: introduction %d by %s has invalid signature: %w", i, intro.IntroducerDN, err)
		}
		cert, err := ParseCertificate(intro.CertDER)
		if err != nil {
			return nil, 0, fmt.Errorf("pki: introduction %d: %w", i, err)
		}
		if !cert.ValidAt(at) {
			return nil, 0, fmt.Errorf("pki: introduced certificate %d for %s not valid at %s", i, cert.SubjectDN(), at)
		}
		pub := cert.PublicKey()
		if pub == nil {
			return nil, 0, fmt.Errorf("pki: introduced certificate %d has non-ECDSA key", i)
		}
		// The introduced subject becomes the introducer of the next link.
		introducerKey = pub
		lastCert = cert
		if i+1 < len(introductions) && introductions[i+1].IntroducerDN != cert.SubjectDN() {
			return nil, 0, fmt.Errorf("pki: introduction chain broken: link %d introduces %s but link %d claims introducer %s",
				i, cert.SubjectDN(), i+1, introductions[i+1].IntroducerDN)
		}
	}
	if lastCert.SubjectDN() != target.SubjectDN() {
		return nil, 0, fmt.Errorf("pki: introduction chain ends at %s, want %s", lastCert.SubjectDN(), target.SubjectDN())
	}
	if !lastCert.PublicKey().Equal(target.PublicKey()) {
		return nil, 0, fmt.Errorf("pki: introduced key for %s does not match presented certificate", target.SubjectDN())
	}
	return target.PublicKey(), len(introductions), nil
}
