package pki

import (
	"os"
	"path/filepath"
	"testing"

	"e2eqos/internal/identity"
)

func TestCertPEMRoundTrip(t *testing.T) {
	ca := mustCA(t, "PEMRoot")
	kp := mustKey(t, identity.NewDN("Grid", "A", "alice"))
	cert, err := ca.IssueIdentity(kp.DN, kp.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pemBytes := EncodeCertPEM(cert.DER)
	decoded, err := DecodeCertPEM(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.SubjectDN() != kp.DN {
		t.Errorf("subject = %s", decoded.SubjectDN())
	}
	if _, err := DecodeCertPEM([]byte("not pem")); err == nil {
		t.Error("junk decoded as certificate")
	}
	// A key block is not a certificate.
	keyPEM, err := EncodeKeyPEM(kp.Private)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCertPEM(keyPEM); err == nil {
		t.Error("key block decoded as certificate")
	}
}

func TestKeyPEMRoundTrip(t *testing.T) {
	kp := mustKey(t, identity.NewDN("Grid", "A", "alice"))
	pemBytes, err := EncodeKeyPEM(kp.Private)
	if err != nil {
		t.Fatal(err)
	}
	key, err := DecodeKeyPEM(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !key.PublicKey.Equal(kp.Public()) {
		t.Error("key round trip mismatch")
	}
	if _, err := DecodeKeyPEM([]byte("garbage")); err == nil {
		t.Error("junk decoded as key")
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	ca := mustCA(t, "FileRoot")
	kp := mustKey(t, identity.NewDN("Grid", "A", "bb-a"))
	cert, err := ca.IssueIdentity(kp.DN, kp.Public(), 0, "bb")
	if err != nil {
		t.Fatal(err)
	}
	certPath := filepath.Join(dir, "bb.cert.pem")
	keyPath := filepath.Join(dir, "bb.key.pem")
	if err := SaveCertFile(certPath, cert.DER); err != nil {
		t.Fatal(err)
	}
	if err := SaveKeyFile(keyPath, kp.Private); err != nil {
		t.Fatal(err)
	}
	// Key files must not be world readable.
	if info, err := os.Stat(keyPath); err != nil || info.Mode().Perm() != 0o600 {
		t.Errorf("key file mode = %v err=%v", info.Mode(), err)
	}
	loadedCert, err := LoadCertFile(certPath)
	if err != nil {
		t.Fatal(err)
	}
	if loadedCert.SubjectDN() != kp.DN {
		t.Errorf("subject = %s", loadedCert.SubjectDN())
	}
	loadedKey, err := LoadKeyFile(keyPath, kp.DN)
	if err != nil {
		t.Fatal(err)
	}
	if !loadedKey.Public().Equal(kp.Public()) {
		t.Error("loaded key mismatch")
	}
	if _, err := LoadCertFile(filepath.Join(dir, "missing.pem")); err == nil {
		t.Error("missing cert file loaded")
	}
	if _, err := LoadKeyFile(filepath.Join(dir, "missing.pem"), kp.DN); err == nil {
		t.Error("missing key file loaded")
	}
}

func TestLoadCA(t *testing.T) {
	dir := t.TempDir()
	orig := mustCA(t, "Persisted")
	certPath := filepath.Join(dir, "ca.cert.pem")
	keyPath := filepath.Join(dir, "ca.key.pem")
	if err := SaveCertFile(certPath, orig.CertificateDER()); err != nil {
		t.Fatal(err)
	}
	if err := SaveKeyFile(keyPath, orig.Key().Private); err != nil {
		t.Fatal(err)
	}
	caCert, err := LoadCertFile(certPath)
	if err != nil {
		t.Fatal(err)
	}
	caKey, err := LoadKeyFile(keyPath, caCert.SubjectDN())
	if err != nil {
		t.Fatal(err)
	}
	ca, err := LoadCA(caCert, caKey)
	if err != nil {
		t.Fatal(err)
	}
	if ca.DN() != orig.DN() {
		t.Errorf("DN = %s", ca.DN())
	}
	// The reloaded CA can issue certificates verifiable against the
	// original root.
	kp := mustKey(t, identity.NewDN("Grid", "A", "late-joiner"))
	cert, err := ca.IssueIdentity(kp.DN, kp.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.CheckSignedBy(orig.PublicKey()); err != nil {
		t.Errorf("issued cert fails against original CA key: %v", err)
	}
	// Mismatched key is refused.
	other := mustKey(t, identity.NewDN("Grid", "", "other"))
	if _, err := LoadCA(caCert, other); err == nil {
		t.Error("LoadCA accepted mismatched key")
	}
	if _, err := LoadCA(nil, caKey); err == nil {
		t.Error("LoadCA accepted nil certificate")
	}
}
