package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"encoding/json"
	"fmt"
	"math/big"
	"time"

	"e2eqos/internal/identity"
)

// Private-enterprise OIDs for the X.509v3 extensions carried by
// capability certificates. The paper's Figure 7 shows each certificate
// carrying a "Capability Certificate Flag", the community capabilities
// (e.g. "Capabilities of ESnet") and, on delegated certificates, the
// restriction "Valid for Reservation in Domain C" / "valid for RAR".
var (
	// OIDCapabilityFlag marks a certificate as a capability certificate.
	OIDCapabilityFlag = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 42, 1}
	// OIDCapabilityAttrs carries the capability attribute payload.
	OIDCapabilityAttrs = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 42, 2}
)

// CapabilityAttrs is the payload of the capability extension.
type CapabilityAttrs struct {
	// Community names the issuing community authorization service,
	// e.g. "ESnet".
	Community string `json:"community"`
	// Capabilities lists the granted capabilities, e.g.
	// ["network-reservation"].
	Capabilities []string `json:"capabilities"`
	// Restrictions accumulate during delegation, e.g.
	// ["valid-for-rar:RAR-17"].
	Restrictions []string `json:"restrictions,omitempty"`
}

// HasCapability reports whether name is among the granted capabilities.
func (a CapabilityAttrs) HasCapability(name string) bool {
	for _, c := range a.Capabilities {
		if c == name {
			return true
		}
	}
	return false
}

// subsetOf reports whether every capability in a also appears in b.
func subsetOf(a, b []string) bool {
	set := make(map[string]bool, len(b))
	for _, c := range b {
		set[c] = true
	}
	for _, c := range a {
		if !set[c] {
			return false
		}
	}
	return true
}

// containsAll reports whether every string in a also appears in b.
func containsAll(a, b []string) bool { return subsetOf(a, b) }

// ProxyKey is the key pair whose public half is embedded in a
// CAS-issued capability certificate and whose private half the user
// holds to prove possession and to sign the first delegation step
// (Neuman's proxy-based authorization).
type ProxyKey struct {
	Private *ecdsa.PrivateKey
}

// NewProxyKey generates a fresh P-256 proxy key pair.
func NewProxyKey() (*ProxyKey, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating proxy key: %w", err)
	}
	return &ProxyKey{Private: priv}, nil
}

// Public returns the public proxy key.
func (p *ProxyKey) Public() *ecdsa.PublicKey { return &p.Private.PublicKey }

// CapabilityCertificate is an X.509v3 certificate flagged as carrying
// capability attributes. The subject public key is either a proxy key
// (CAS-issued certificates) or the real public key of the delegate
// (delegated certificates), exactly as §6.5 of the paper describes.
type CapabilityCertificate struct {
	*Certificate
	Attrs CapabilityAttrs
}

func capabilityExtensions(attrs CapabilityAttrs) ([]pkix.Extension, error) {
	payload, err := json.Marshal(attrs)
	if err != nil {
		return nil, fmt.Errorf("pki: marshal capability attrs: %w", err)
	}
	return []pkix.Extension{
		{Id: OIDCapabilityFlag, Value: []byte{0xff}},
		{Id: OIDCapabilityAttrs, Value: payload},
	}, nil
}

// issueCapability builds and signs a capability certificate.
// issuerDN/issuerKey sign; subjectDN/subjectPub are bound.
func issueCapability(issuerDN identity.DN, issuerKey *ecdsa.PrivateKey, subjectDN identity.DN, subjectPub *ecdsa.PublicKey, attrs CapabilityAttrs, validity time.Duration) (*CapabilityCertificate, error) {
	if issuerKey == nil {
		return nil, fmt.Errorf("pki: nil issuer key for capability from %s", issuerDN)
	}
	if subjectPub == nil {
		return nil, fmt.Errorf("pki: nil subject key for capability to %s", subjectDN)
	}
	if validity <= 0 {
		validity = 24 * time.Hour
	}
	exts, err := capabilityExtensions(attrs)
	if err != nil {
		return nil, err
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return nil, fmt.Errorf("pki: capability serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:    serial,
		Subject:         dnToName(subjectDN),
		NotBefore:       time.Now().Add(-time.Minute),
		NotAfter:        time.Now().Add(validity),
		ExtraExtensions: exts,
	}
	// The synthetic parent supplies only the issuer name; the signing key
	// is the issuer's (possibly proxy) private key. KeyUsage stays zero so
	// CreateCertificate does not demand CA key usage: capability
	// certificates are issued by end entities, per the paper.
	parent := &x509.Certificate{Subject: dnToName(issuerDN)}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, parent, subjectPub, issuerKey)
	if err != nil {
		return nil, fmt.Errorf("pki: issuing capability cert %s -> %s: %w", issuerDN, subjectDN, err)
	}
	cert, err := ParseCapabilityCertificate(der)
	if err != nil {
		return nil, err
	}
	return cert, nil
}

// IssueCommunityCapability is what a community authorization server
// (CAS) does at "grid-login": it issues a capability certificate whose
// subject is the user, whose subject public key is the user's public
// *proxy* key, and whose extension carries the community capabilities.
func IssueCommunityCapability(casDN identity.DN, casKey *identity.KeyPair, userDN identity.DN, proxy *ProxyKey, attrs CapabilityAttrs, validity time.Duration) (*CapabilityCertificate, error) {
	if casKey == nil {
		return nil, fmt.Errorf("pki: nil CAS key")
	}
	if proxy == nil {
		return nil, fmt.Errorf("pki: nil proxy key")
	}
	return issueCapability(casDN, casKey.Private, userDN, proxy.Public(), attrs, validity)
}

// Delegate creates the next certificate in a cascaded-authorization
// chain: the holder of signerKey (the private key matching the subject
// public key of the previous certificate) issues a new capability
// certificate to delegateDN, binding the delegate's *real* public key
// and appending restrictions. Capabilities may only shrink.
func Delegate(prev *CapabilityCertificate, signerDN identity.DN, signerKey *ecdsa.PrivateKey, delegateDN identity.DN, delegatePub *ecdsa.PublicKey, extraRestrictions []string, validity time.Duration) (*CapabilityCertificate, error) {
	if prev == nil {
		return nil, fmt.Errorf("pki: delegate from nil certificate")
	}
	attrs := CapabilityAttrs{
		Community:    prev.Attrs.Community,
		Capabilities: append([]string(nil), prev.Attrs.Capabilities...),
		Restrictions: append(append([]string(nil), prev.Attrs.Restrictions...), extraRestrictions...),
	}
	return issueCapability(signerDN, signerKey, delegateDN, delegatePub, attrs, validity)
}

// ParseCapabilityCertificate parses DER and requires the capability
// flag extension to be present.
func ParseCapabilityCertificate(der []byte) (*CapabilityCertificate, error) {
	cert, err := ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	attrs, ok, err := ExtractCapabilityAttrs(cert.Cert)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("pki: certificate for %s is not a capability certificate", cert.SubjectDN())
	}
	return &CapabilityCertificate{Certificate: cert, Attrs: attrs}, nil
}

// ExtractCapabilityAttrs pulls the capability payload out of an x509
// certificate. ok is false when the capability flag is absent.
func ExtractCapabilityAttrs(cert *x509.Certificate) (CapabilityAttrs, bool, error) {
	flagged := false
	var attrs CapabilityAttrs
	var havePayload bool
	for _, ext := range cert.Extensions {
		switch {
		case ext.Id.Equal(OIDCapabilityFlag):
			flagged = true
		case ext.Id.Equal(OIDCapabilityAttrs):
			if err := json.Unmarshal(ext.Value, &attrs); err != nil {
				return CapabilityAttrs{}, false, fmt.Errorf("pki: decode capability attrs: %w", err)
			}
			havePayload = true
		}
	}
	if !flagged {
		return CapabilityAttrs{}, false, nil
	}
	if !havePayload {
		return CapabilityAttrs{}, false, fmt.Errorf("pki: capability flag present but attrs extension missing")
	}
	return attrs, true, nil
}

// CapabilityChain is the ordered list of capability certificates a hop
// accumulates during signalling: index 0 is the CAS-issued certificate,
// each following entry is the delegation to the next broker. Figure 7
// of the paper shows chains of length 1 (user), 2 (BB-A), 3 (BB-B) and
// 4 (BB-C).
type CapabilityChain []*CapabilityCertificate

// VerifyOptions configures chain verification.
type VerifyOptions struct {
	// CASKey is the trusted public key of the community authorization
	// server that must anchor the chain.
	CASKey *ecdsa.PublicKey
	// At is the evaluation time (zero means time.Now()).
	At time.Time
	// RequireRestriction, when non-empty, requires every delegated
	// certificate (index >= 1) to carry this restriction, implementing
	// the "valid for RAR" scoping of §6.5.
	RequireRestriction string
}

// Verify performs the §6.5 policy-engine checks over the chain:
//
//  1. the CAS issued the first certificate (signature by CASKey);
//  2. every subsequent certificate is signed by the private key
//     matching the subject public key of its predecessor (proxy key for
//     step 1, broker keys afterwards);
//  3. capabilities never grow and restrictions never shrink along the
//     chain (no entity changed them inappropriately);
//  4. validity windows contain the evaluation time.
//
// It returns the effective attributes at the end of the chain (the
// capabilities usable by the final holder).
func (c CapabilityChain) Verify(opts VerifyOptions) (CapabilityAttrs, error) {
	if len(c) == 0 {
		return CapabilityAttrs{}, fmt.Errorf("pki: empty capability chain")
	}
	if opts.CASKey == nil {
		return CapabilityAttrs{}, fmt.Errorf("pki: no trusted CAS key")
	}
	at := opts.At
	if at.IsZero() {
		at = time.Now()
	}
	if err := c[0].CheckSignedBy(opts.CASKey); err != nil {
		return CapabilityAttrs{}, fmt.Errorf("pki: chain root not signed by trusted CAS: %w", err)
	}
	for i, cert := range c {
		if !cert.ValidAt(at) {
			return CapabilityAttrs{}, fmt.Errorf("pki: chain certificate %d (%s) expired or not yet valid", i, cert.SubjectDN())
		}
		if i == 0 {
			continue
		}
		prev := c[i-1]
		signer := prev.PublicKey()
		if signer == nil {
			return CapabilityAttrs{}, fmt.Errorf("pki: chain certificate %d has non-ECDSA subject key", i-1)
		}
		if err := cert.CheckSignedBy(signer); err != nil {
			return CapabilityAttrs{}, fmt.Errorf("pki: delegation %d (%s -> %s) not signed by predecessor subject key: %w",
				i, cert.IssuerDN(), cert.SubjectDN(), err)
		}
		if cert.IssuerDN() != prev.SubjectDN() {
			return CapabilityAttrs{}, fmt.Errorf("pki: delegation %d issuer %s does not match predecessor subject %s",
				i, cert.IssuerDN(), prev.SubjectDN())
		}
		if !subsetOf(cert.Attrs.Capabilities, prev.Attrs.Capabilities) {
			return CapabilityAttrs{}, fmt.Errorf("pki: delegation %d expands capabilities", i)
		}
		if cert.Attrs.Community != prev.Attrs.Community {
			return CapabilityAttrs{}, fmt.Errorf("pki: delegation %d changes community %q -> %q", i, prev.Attrs.Community, cert.Attrs.Community)
		}
		if !containsAll(prev.Attrs.Restrictions, cert.Attrs.Restrictions) {
			return CapabilityAttrs{}, fmt.Errorf("pki: delegation %d drops restrictions", i)
		}
		if opts.RequireRestriction != "" && !containsAll([]string{opts.RequireRestriction}, cert.Attrs.Restrictions) {
			return CapabilityAttrs{}, fmt.Errorf("pki: delegation %d lacks required restriction %q", i, opts.RequireRestriction)
		}
	}
	return c[len(c)-1].Attrs, nil
}

// ProvePossession returns a signature over nonce with holderKey; the
// verifier checks it against the subject public key of the final chain
// certificate. This implements the "prove knowledge of the private
// proxy key" step of §6.5.
func ProvePossession(holderKey *ecdsa.PrivateKey, nonce []byte) ([]byte, error) {
	kp := &identity.KeyPair{DN: "/CN=holder", Private: holderKey}
	return kp.Sign(nonce)
}

// VerifyPossession checks the final holder's proof of possession.
func (c CapabilityChain) VerifyPossession(nonce, proof []byte) error {
	if len(c) == 0 {
		return fmt.Errorf("pki: empty capability chain")
	}
	pub := c[len(c)-1].PublicKey()
	if pub == nil {
		return fmt.Errorf("pki: final chain certificate has non-ECDSA key")
	}
	return identity.Verify(pub, nonce, proof)
}

// Encode serialises the chain as a list of DER blobs for transport.
func (c CapabilityChain) Encode() [][]byte {
	out := make([][]byte, len(c))
	for i, cert := range c {
		out[i] = cert.DER
	}
	return out
}

// DecodeCapabilityChain reverses Encode.
func DecodeCapabilityChain(ders [][]byte) (CapabilityChain, error) {
	chain := make(CapabilityChain, 0, len(ders))
	for i, der := range ders {
		cert, err := ParseCapabilityCertificate(der)
		if err != nil {
			return nil, fmt.Errorf("pki: chain element %d: %w", i, err)
		}
		chain = append(chain, cert)
	}
	return chain, nil
}
