package pki

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"os"

	"e2eqos/internal/identity"
)

// PEM block types used by the tooling.
const (
	pemCertType = "CERTIFICATE"
	pemKeyType  = "EC PRIVATE KEY"
)

// EncodeCertPEM renders a DER certificate as PEM.
func EncodeCertPEM(der []byte) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: pemCertType, Bytes: der})
}

// DecodeCertPEM parses the first certificate block in data.
func DecodeCertPEM(data []byte) (*Certificate, error) {
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			return nil, fmt.Errorf("pki: no certificate block found")
		}
		if block.Type == pemCertType {
			return ParseCertificate(block.Bytes)
		}
	}
}

// EncodeKeyPEM renders an ECDSA private key as PEM.
func EncodeKeyPEM(key *ecdsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("pki: marshal key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: pemKeyType, Bytes: der}), nil
}

// DecodeKeyPEM parses the first EC private key block in data.
func DecodeKeyPEM(data []byte) (*ecdsa.PrivateKey, error) {
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			return nil, fmt.Errorf("pki: no EC private key block found")
		}
		if block.Type == pemKeyType {
			key, err := x509.ParseECPrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("pki: parse key: %w", err)
			}
			return key, nil
		}
	}
}

// LoadCertFile reads a PEM certificate from disk.
func LoadCertFile(path string) (*Certificate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pki: %w", err)
	}
	return DecodeCertPEM(data)
}

// LoadKeyFile reads a PEM EC key from disk and binds it to the DN of
// the accompanying certificate when given; dn may be empty otherwise.
func LoadKeyFile(path string, dn identity.DN) (*identity.KeyPair, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pki: %w", err)
	}
	key, err := DecodeKeyPEM(data)
	if err != nil {
		return nil, err
	}
	return &identity.KeyPair{DN: dn, Private: key}, nil
}

// SaveCertFile writes a certificate as PEM with 0644 permissions.
func SaveCertFile(path string, der []byte) error {
	return os.WriteFile(path, EncodeCertPEM(der), 0o644)
}

// SaveKeyFile writes a private key as PEM with 0600 permissions.
func SaveKeyFile(path string, key *ecdsa.PrivateKey) error {
	data, err := EncodeKeyPEM(key)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}
