// Package pki implements the certificate infrastructure the signalling
// protocol depends on: certificate authorities, X.509v3 end-entity
// certificates, capability certificates carried in X.509v3 extensions
// (as issued by a community authorization server), Neuman-style
// cascaded capability delegation using proxy keys, and per-entity trust
// stores implementing the paper's web-of-trust key-introducer model.
//
// All certificates are real crypto/x509 certificates signed with ECDSA
// P-256 over SHA-256, so they interoperate with crypto/tls for the
// mutually authenticated inter-BB channels.
package pki

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"time"

	"e2eqos/internal/identity"
)

// dnToName maps our canonical DN form onto a pkix.Name.
func dnToName(dn identity.DN) pkix.Name {
	name := pkix.Name{CommonName: dn.CommonName()}
	if o := dn.Org(); o != "" {
		name.Organization = []string{o}
	}
	if ou := dn.Unit(); ou != "" {
		name.OrganizationalUnit = []string{ou}
	}
	return name
}

// NameToDN reconstructs the canonical DN from a pkix.Name.
func NameToDN(name pkix.Name) identity.DN {
	org, unit := "", ""
	if len(name.Organization) > 0 {
		org = name.Organization[0]
	}
	if len(name.OrganizationalUnit) > 0 {
		unit = name.OrganizationalUnit[0]
	}
	return identity.NewDN(org, unit, name.CommonName)
}

// CA is a certificate authority. A CA issues identity certificates for
// the users and bandwidth brokers of one trust community.
type CA struct {
	key  *identity.KeyPair
	cert *x509.Certificate
	der  []byte
}

// NewCA creates a self-signed root CA for the given DN.
func NewCA(dn identity.DN) (*CA, error) {
	kp, err := identity.GenerateKeyPair(dn)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               dnToName(dn),
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, kp.Public(), kp.Private)
	if err != nil {
		return nil, fmt.Errorf("pki: creating CA cert for %s: %w", dn, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing CA cert: %w", err)
	}
	return &CA{key: kp, cert: cert, der: der}, nil
}

// LoadCA reconstructs a CA from persisted material (see the qosca
// tool). The key must match the certificate's public key.
func LoadCA(cert *Certificate, key *identity.KeyPair) (*CA, error) {
	if cert == nil || key == nil {
		return nil, fmt.Errorf("pki: LoadCA needs certificate and key")
	}
	pub := cert.PublicKey()
	if pub == nil || !pub.Equal(key.Public()) {
		return nil, fmt.Errorf("pki: CA key does not match certificate %s", cert.SubjectDN())
	}
	kp := &identity.KeyPair{DN: cert.SubjectDN(), Private: key.Private}
	return &CA{key: kp, cert: cert.Cert, der: cert.DER}, nil
}

// DN returns the CA's distinguished name.
func (ca *CA) DN() identity.DN { return ca.key.DN }

// Certificate returns the CA's self-signed certificate.
func (ca *CA) Certificate() *x509.Certificate { return ca.cert }

// CertificateDER returns the DER encoding of the CA certificate.
func (ca *CA) CertificateDER() []byte { return ca.der }

// PublicKey returns the CA's public key.
func (ca *CA) PublicKey() *ecdsa.PublicKey { return ca.key.Public() }

// Key exposes the CA key pair; used by daemons that also sign protocol
// messages with the CA identity (e.g. test fixtures).
func (ca *CA) Key() *identity.KeyPair { return ca.key }

func (ca *CA) nextSerial() *big.Int {
	serial, err := rand.Int(rand.Reader, big.NewInt(1).Lsh(big.NewInt(1), 120))
	if err != nil {
		// crypto/rand failure leaves no sound way to issue certificates.
		panic(fmt.Sprintf("pki: rand: %v", err))
	}
	return serial
}

// IssueIdentity issues an end-entity identity certificate binding dn to
// pub, valid for validity (or 1 year when zero). The certificate is
// suitable for TLS client and server authentication; hosts lists the
// DNS names to embed as SANs.
func (ca *CA) IssueIdentity(dn identity.DN, pub *ecdsa.PublicKey, validity time.Duration, hosts ...string) (*Certificate, error) {
	if !dn.Valid() {
		return nil, fmt.Errorf("pki: invalid subject DN %q", dn)
	}
	if pub == nil {
		return nil, fmt.Errorf("pki: nil public key for %s", dn)
	}
	if validity <= 0 {
		validity = 365 * 24 * time.Hour
	}
	tmpl := &x509.Certificate{
		SerialNumber: ca.nextSerial(),
		Subject:      dnToName(dn),
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		DNSNames:     append([]string{}, hosts...),
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, pub, ca.key.Private)
	if err != nil {
		return nil, fmt.Errorf("pki: issuing identity cert for %s: %w", dn, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing issued cert: %w", err)
	}
	return &Certificate{Cert: cert, DER: der}, nil
}

// Certificate couples a parsed x509 certificate with its DER encoding.
type Certificate struct {
	Cert *x509.Certificate
	DER  []byte
}

// SubjectDN returns the canonical subject DN.
func (c *Certificate) SubjectDN() identity.DN { return NameToDN(c.Cert.Subject) }

// IssuerDN returns the canonical issuer DN.
func (c *Certificate) IssuerDN() identity.DN { return NameToDN(c.Cert.Issuer) }

// PublicKey returns the embedded ECDSA public key, or nil for other key
// types.
func (c *Certificate) PublicKey() *ecdsa.PublicKey {
	pub, _ := c.Cert.PublicKey.(*ecdsa.PublicKey)
	return pub
}

// ParseCertificate decodes a DER certificate into our wrapper.
func ParseCertificate(der []byte) (*Certificate, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parse certificate: %w", err)
	}
	return &Certificate{Cert: cert, DER: der}, nil
}

// CheckSignedBy verifies that c carries a valid ECDSA P-256/SHA-256
// signature by issuerPub over its TBS certificate. It deliberately does
// not enforce CA basic constraints: capability certificates are signed
// by end entities and proxy keys, exactly as the paper's delegation
// model requires.
func (c *Certificate) CheckSignedBy(issuerPub *ecdsa.PublicKey) error {
	if c == nil || c.Cert == nil {
		return fmt.Errorf("pki: nil certificate")
	}
	return identity.Verify(issuerPub, c.Cert.RawTBSCertificate, c.Cert.Signature)
}

// ValidAt reports whether the certificate validity window contains t.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.Cert.NotBefore) && !t.After(c.Cert.NotAfter)
}
