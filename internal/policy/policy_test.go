package policy

import (
	"strings"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

func at(hour, min int) time.Time {
	return time.Date(2001, 8, 7, hour, min, 0, 0, time.UTC)
}

func TestParseSimpleRules(t *testing.T) {
	p, err := Parse("t", `
# comment line
allow if user = "/CN=Alice" and bw <= 10Mb/s
deny  if user = "/CN=Bob"    # trailing comment
allow if group = "ATLAS"
deny
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(p.Rules))
	}
	if p.Rules[0].Effect != Grant || p.Rules[3].Effect != Deny {
		t.Error("rule effects wrong")
	}
	if len(p.Rules[0].Conditions) != 2 {
		t.Errorf("rule 1 conditions = %d, want 2", len(p.Rules[0].Conditions))
	}
	if len(p.Rules[3].Conditions) != 0 {
		t.Error("bare deny must have no conditions")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`grant if user = "/CN=A"`,       // wrong keyword
		`allow user = "/CN=A"`,          // missing if
		`allow if user ~ "/CN=A"`,       // bad operator
		`allow if user = /CN=A`,         // unquoted DN
		`allow if bw <= notabandwidth`,  // bad bandwidth
		`allow if time within 8am..5pm`, // bad clock
		`allow if time within 25:00..26:00`,
		`allow if has reservation`,   // missing -reservation suffix
		`allow if wibble = "x"`,      // unknown condition
		`allow if user = "unterm`,    // unterminated string
		`allow if bw <= 10Mb/s or x`, // 'or' unsupported
		`allow if`,                   // dangling if
		`allow if attr "k" = v`,      // unquoted attr value
	}
	for _, src := range bad {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestEvaluateFirstMatchWins(t *testing.T) {
	p := MustParse("t", `
deny  if user = "/CN=Bob"
allow
`)
	d := p.Evaluate(&Request{User: "/CN=Bob"})
	if d.Granted() || d.Rule != 1 {
		t.Errorf("Bob: %+v", d)
	}
	d = p.Evaluate(&Request{User: "/CN=Alice"})
	if !d.Granted() || d.Rule != 2 {
		t.Errorf("Alice: %+v", d)
	}
}

func TestImplicitDeny(t *testing.T) {
	p := MustParse("t", `allow if user = "/CN=Alice"`)
	d := p.Evaluate(&Request{User: "/CN=Mallory"})
	if d.Granted() || d.Rule != 0 {
		t.Errorf("implicit deny: %+v", d)
	}
	if !strings.Contains(d.Reason, "implicit") {
		t.Errorf("reason = %q", d.Reason)
	}
}

func TestNilRequestDenied(t *testing.T) {
	p := MustParse("t", `allow`)
	if p.Evaluate(nil).Granted() {
		t.Fatal("nil request granted")
	}
}

func TestBandwidthConditions(t *testing.T) {
	p := MustParse("t", `
allow if bw <= 10Mb/s
allow if bw <= avail
deny
`)
	cases := []struct {
		bw, avail units.Bandwidth
		want      bool
	}{
		{10 * units.Mbps, 0, true},                // at limit
		{10*units.Mbps + 1, 0, false},             // just above, no avail headroom
		{50 * units.Mbps, 100 * units.Mbps, true}, // avail covers it
		{50 * units.Mbps, 40 * units.Mbps, false},
	}
	for _, c := range cases {
		d := p.Evaluate(&Request{User: "/CN=x", Bandwidth: c.bw, Available: c.avail, Time: at(12, 0)})
		if d.Granted() != c.want {
			t.Errorf("bw=%v avail=%v: granted=%v, want %v (%s)", c.bw, c.avail, d.Granted(), c.want, d.Reason)
		}
	}
}

func TestTimeWindow(t *testing.T) {
	p := MustParse("t", `
allow if time within 08:00..17:00
deny
`)
	if !p.Evaluate(&Request{Time: at(8, 0)}).Granted() {
		t.Error("08:00 must be inside")
	}
	if !p.Evaluate(&Request{Time: at(16, 59)}).Granted() {
		t.Error("16:59 must be inside")
	}
	if p.Evaluate(&Request{Time: at(17, 0)}).Granted() {
		t.Error("17:00 must be outside (half-open)")
	}
	if p.Evaluate(&Request{Time: at(7, 59)}).Granted() {
		t.Error("07:59 must be outside")
	}
}

func TestTimeWindowWrapsMidnight(t *testing.T) {
	p := MustParse("t", `
allow if time within 22:00..06:00
deny
`)
	if !p.Evaluate(&Request{Time: at(23, 0)}).Granted() {
		t.Error("23:00 must be inside")
	}
	if !p.Evaluate(&Request{Time: at(3, 0)}).Granted() {
		t.Error("03:00 must be inside")
	}
	if p.Evaluate(&Request{Time: at(12, 0)}).Granted() {
		t.Error("12:00 must be outside")
	}
}

func TestNotCondition(t *testing.T) {
	p := MustParse("t", `
allow if not time within 08:00..17:00
deny
`)
	if p.Evaluate(&Request{Time: at(12, 0)}).Granted() {
		t.Error("noon must be denied")
	}
	if !p.Evaluate(&Request{Time: at(20, 0)}).Granted() {
		t.Error("evening must be granted")
	}
}

func TestGroupAndCapabilityConditions(t *testing.T) {
	p := MustParse("t", `
allow if group = "ATLAS experiment" and bw <= 10Mb/s
allow if capability from "ESnet" and bw <= 10Mb/s
deny
`)
	atlas := &Request{Groups: []string{"ATLAS experiment"}, Bandwidth: 5 * units.Mbps}
	if !p.Evaluate(atlas).Granted() {
		t.Error("ATLAS member denied")
	}
	esnet := &Request{Capabilities: []Capability{{Community: "ESnet", Names: []string{"net"}}}, Bandwidth: 5 * units.Mbps}
	if d := p.Evaluate(esnet); !d.Granted() || d.Rule != 2 {
		t.Errorf("ESnet holder: %+v", d)
	}
	nobody := &Request{Bandwidth: 5 * units.Mbps}
	if p.Evaluate(nobody).Granted() {
		t.Error("unauthorized requestor granted")
	}
	tooMuch := &Request{Groups: []string{"ATLAS experiment"}, Bandwidth: 20 * units.Mbps}
	if p.Evaluate(tooMuch).Granted() {
		t.Error("over-limit request granted")
	}
}

func TestLinkedReservationCondition(t *testing.T) {
	p := MustParse("t", `
allow if has cpu-reservation
deny
`)
	with := &Request{LinkedReservations: map[string]bool{"cpu": true}}
	without := &Request{}
	if !p.Evaluate(with).Granted() {
		t.Error("linked CPU reservation not recognised")
	}
	if p.Evaluate(without).Granted() {
		t.Error("missing CPU reservation granted")
	}
}

func TestDomainAndAttrConditions(t *testing.T) {
	p := MustParse("t", `
allow if dest = "DomainC" and attr "cost-class" = "premium"
deny
`)
	ok := &Request{DestDomain: "DomainC", Attributes: identity.Attributes{"cost-class": {"premium"}}}
	if !p.Evaluate(ok).Granted() {
		t.Error("matching request denied")
	}
	wrongDest := &Request{DestDomain: "DomainB", Attributes: identity.Attributes{"cost-class": {"premium"}}}
	if p.Evaluate(wrongDest).Granted() {
		t.Error("wrong destination granted")
	}
	if p.Evaluate(&Request{DestDomain: "DomainC"}).Granted() {
		t.Error("missing attribute granted")
	}
}

func TestUserNegation(t *testing.T) {
	p := MustParse("t", `
allow if user != "/CN=Bob"
deny
`)
	if p.Evaluate(&Request{User: "/CN=Bob"}).Granted() {
		t.Error("Bob granted")
	}
	if !p.Evaluate(&Request{User: "/CN=Alice"}).Granted() {
		t.Error("Alice denied")
	}
}

// --- Figure 1 --------------------------------------------------------------

func TestFigure1PolicyA(t *testing.T) {
	if !Figure1PolicyA.Evaluate(&Request{User: AliceDN}).Granted() {
		t.Error("Figure 1: Alice must be granted in domain A")
	}
	if Figure1PolicyA.Evaluate(&Request{User: BobDN}).Granted() {
		t.Error("Figure 1: Bob must be denied in domain A")
	}
	if Figure1PolicyA.Evaluate(&Request{User: CharlieDN}).Granted() {
		t.Error("Figure 1: unknown users must be denied in domain A")
	}
}

func TestFigure1PolicyB(t *testing.T) {
	phys := &Request{User: CharlieDN, Groups: []string{"physicist"}}
	if !Figure1PolicyB.Evaluate(phys).Granted() {
		t.Error("Figure 1: accredited physicist must be granted in domain B")
	}
	if Figure1PolicyB.Evaluate(&Request{User: AliceDN}).Granted() {
		t.Error("Figure 1: non-physicist must be denied in domain B")
	}
}

// --- Figure 6 --------------------------------------------------------------

func TestFigure6PolicyA(t *testing.T) {
	business := at(12, 0)
	night := at(22, 0)
	cases := []struct {
		name string
		req  Request
		want bool
	}{
		{"alice 10M business", Request{User: AliceDN, Bandwidth: 10 * units.Mbps, Time: business, Available: 100 * units.Mbps}, true},
		{"alice 11M business", Request{User: AliceDN, Bandwidth: 11 * units.Mbps, Time: business, Available: 100 * units.Mbps}, false},
		{"alice 80M night", Request{User: AliceDN, Bandwidth: 80 * units.Mbps, Time: night, Available: 100 * units.Mbps}, true},
		{"alice 120M night over avail", Request{User: AliceDN, Bandwidth: 120 * units.Mbps, Time: night, Available: 100 * units.Mbps}, false},
		{"bob any", Request{User: BobDN, Bandwidth: 1 * units.Mbps, Time: night, Available: 100 * units.Mbps}, false},
	}
	for _, c := range cases {
		if got := Figure6PolicyA.Evaluate(&c.req).Granted(); got != c.want {
			t.Errorf("Figure6PolicyA %s: granted=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestFigure6PolicyB(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want bool
	}{
		{"atlas 10M", Request{User: AliceDN, Groups: []string{"ATLAS experiment"}, Bandwidth: 10 * units.Mbps}, true},
		{"atlas 11M", Request{User: AliceDN, Groups: []string{"ATLAS experiment"}, Bandwidth: 11 * units.Mbps}, false},
		{"esnet 10M", Request{User: AliceDN, Capabilities: []Capability{{Community: "ESnet"}}, Bandwidth: 10 * units.Mbps}, true},
		{"nobody", Request{User: AliceDN, Bandwidth: 1 * units.Mbps}, false},
	}
	for _, c := range cases {
		if got := Figure6PolicyB.Evaluate(&c.req).Granted(); got != c.want {
			t.Errorf("Figure6PolicyB %s: granted=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestFigure6PolicyC(t *testing.T) {
	esnet := []Capability{{Community: "ESnet"}}
	cpu := map[string]bool{"cpu": true}
	cases := []struct {
		name string
		req  Request
		want bool
	}{
		{"10M esnet+cpu", Request{Bandwidth: 10 * units.Mbps, Capabilities: esnet, LinkedReservations: cpu}, true},
		{"10M esnet only", Request{Bandwidth: 10 * units.Mbps, Capabilities: esnet}, false},
		{"10M cpu only", Request{Bandwidth: 10 * units.Mbps, LinkedReservations: cpu}, false},
		{"4M nobody", Request{Bandwidth: 4 * units.Mbps}, true},
		{"5M nobody", Request{Bandwidth: 5 * units.Mbps}, false},
	}
	for _, c := range cases {
		if got := Figure6PolicyC.Evaluate(&c.req).Granted(); got != c.want {
			t.Errorf("Figure6PolicyC %s: granted=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	src := `allow if user = "/CN=Alice" and bw <= 10Mb/s
deny`
	p := MustParse("t", src)
	p2, err := Parse("t2", p.String())
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, p.String())
	}
	if len(p2.Rules) != len(p.Rules) {
		t.Fatalf("rule count changed: %d -> %d", len(p.Rules), len(p2.Rules))
	}
	req := &Request{User: "/CN=Alice", Bandwidth: 5 * units.Mbps}
	if p.Evaluate(req).Granted() != p2.Evaluate(req).Granted() {
		t.Fatal("round-tripped policy decides differently")
	}
}

func TestConditionStrings(t *testing.T) {
	p := MustParse("t", `
allow if user = "/CN=A" and group = "g" and capability from "E" and bw <= 10Mb/s and time within 08:00..17:00 and has cpu-reservation and dest = "D" and attr "k" = "v" and not bw <= avail
`)
	for _, c := range p.Rules[0].Conditions {
		if c.String() == "" {
			t.Errorf("condition %T renders empty", c)
		}
	}
}
