package policy

import (
	"testing"
	"time"

	"e2eqos/internal/units"
)

// FuzzParse ensures the DSL parser never panics and that every policy
// it accepts survives a String/Parse round trip and evaluates totally.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"allow",
		"deny",
		`allow if user = "/CN=Alice" and bw <= 10Mb/s`,
		`deny if not time within 08:00..17:00`,
		`allow if capability from "ESnet" and has cpu-reservation`,
		`allow if group = "ATLAS experiment" and bw <= avail`,
		`allow if attr "k" = "v" and dest = "DomainC"`,
		"allow if bw <= 10Mb/s\ndeny if user != \"/CN=Bob\"\nallow",
		`allow if`,
		`if allow`,
		"# only a comment",
		`allow if bw >= 1.5Gb/s`,
		`allow if time within 23:59..00:01`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	req := &Request{
		User:      "/CN=Alice",
		Bandwidth: 10 * units.Mbps,
		Available: 50 * units.Mbps,
		Time:      time.Date(2001, 8, 7, 12, 0, 0, 0, time.UTC),
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		d := p.Evaluate(req)
		if d.Effect != Grant && d.Effect != Deny {
			t.Fatalf("indefinite effect for %q", src)
		}
		p2, err := Parse("fuzz2", p.String())
		if err != nil {
			t.Fatalf("round-trip parse failed for %q: %v\nrendered: %q", src, err, p.String())
		}
		if p2.Evaluate(req).Effect != d.Effect {
			t.Fatalf("round trip changed decision for %q", src)
		}
	})
}
