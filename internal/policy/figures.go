package policy

import "e2eqos/internal/identity"

// Canonical principals of the paper's running example.
var (
	// Alice is the honest user in domain A (Figures 1-7).
	AliceDN = identity.NewDN("Grid", "DomainA", "Alice")
	// Bob is the user domain A's policy explicitly rejects (Figure 1).
	BobDN = identity.NewDN("Grid", "DomainA", "Bob")
	// David is the malicious user in domain D (Figure 4).
	DavidDN = identity.NewDN("Grid", "DomainD", "David")
	// Charlie is the destination-side user in domain C.
	CharlieDN = identity.NewDN("Grid", "DomainC", "Charlie")
)

// Figure1PolicyA is domain A's policy file in Figure 1:
//
//	If User = Alice:  If Reservation_Type = Network Return GRANT
//	If User = Bob:    Return DENY
//
// (All our requests are network reservations, so the type test is
// implicit.)
var Figure1PolicyA = MustParse("fig1-domain-a", `
allow if user = "`+string(AliceDN)+`"
deny  if user = "`+string(BobDN)+`"
deny
`)

// Figure1PolicyB is domain B's policy file in Figure 1:
//
//	If Reservation_Type = Network:
//	  If Accredited_Physicist(requestor) Return GRANT Else Return DENY
//
// The accreditation predicate is a third-party group-server validation,
// surfaced here as the validated group "physicist".
var Figure1PolicyB = MustParse("fig1-domain-b", `
allow if group = "physicist"
deny
`)

// Figure6PolicyA is BB-A's policy file in Figure 6: Alice may use up to
// 10 Mb/s during business hours (8am-5pm) and anything up to the
// available bandwidth otherwise.
var Figure6PolicyA = MustParse("fig6-domain-a", `
allow if user = "`+string(AliceDN)+`" and time within 08:00..17:00 and bw <= 10Mb/s
allow if user = "`+string(AliceDN)+`" and not time within 08:00..17:00 and bw <= avail
deny
`)

// Figure6PolicyB is BB-B's policy file in Figure 6: up to 10 Mb/s for
// members of group "ATLAS experiment" or holders of an ESnet-issued
// capability.
var Figure6PolicyB = MustParse("fig6-domain-b", `
allow if group = "ATLAS experiment" and bw <= 10Mb/s
allow if capability from "ESnet" and bw <= 10Mb/s
deny
`)

// Figure6PolicyC is BB-C's policy file in Figure 6: reservations of
// 5 Mb/s or more require an ESnet capability AND a valid CPU
// reservation in domain C; smaller reservations pass.
var Figure6PolicyC = MustParse("fig6-domain-c", `
allow if bw >= 5Mb/s and capability from "ESnet" and has cpu-reservation
allow if bw < 5Mb/s
deny
`)
