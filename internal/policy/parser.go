package policy

import (
	"fmt"
	"strconv"
	"strings"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// Parse reads a policy file in the DSL described in the package
// comment. Grammar (one rule per line, '#' comments):
//
//	rule  := ("allow" | "deny") [ "if" cond { "and" cond } ]
//	cond  := [ "not" ] atom
//	atom  := "user" ("=" | "!=") STRING
//	       | "group" "=" STRING
//	       | "capability" "from" STRING
//	       | "bw" ("<" | "<=" | ">" | ">=" | "=") (BANDWIDTH | "avail")
//	       | "time" "within" HH:MM ".." HH:MM
//	       | "has" IDENT "-reservation"
//	       | ("source" | "dest") "=" STRING
//	       | "attr" STRING "=" STRING
func Parse(name, text string) (*Policy, error) {
	p := &Policy{Name: name}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		rule, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("policy %s line %d: %w", name, lineNo+1, err)
		}
		p.Rules = append(p.Rules, rule)
	}
	return p, nil
}

// MustParse is Parse that panics on error; for static policy literals.
func MustParse(name, text string) *Policy {
	p, err := Parse(name, text)
	if err != nil {
		panic(err)
	}
	return p
}

func parseRule(line string) (*Rule, error) {
	toks, err := tokenize(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty rule")
	}
	rule := &Rule{Source: line}
	switch toks[0].text {
	case "allow":
		rule.Effect = Grant
	case "deny":
		rule.Effect = Deny
	default:
		return nil, fmt.Errorf("rule must start with allow or deny, got %q", toks[0].text)
	}
	toks = toks[1:]
	if len(toks) == 0 {
		return rule, nil
	}
	if toks[0].text != "if" {
		return nil, fmt.Errorf("expected 'if', got %q", toks[0].text)
	}
	toks = toks[1:]
	for {
		var cond Condition
		cond, toks, err = parseCondition(toks)
		if err != nil {
			return nil, err
		}
		rule.Conditions = append(rule.Conditions, cond)
		if len(toks) == 0 {
			return rule, nil
		}
		if toks[0].text != "and" {
			return nil, fmt.Errorf("expected 'and', got %q", toks[0].text)
		}
		toks = toks[1:]
	}
}

type token struct {
	text   string
	quoted bool
}

func tokenize(line string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, token{text: line[i+1 : j], quoted: true})
			i = j + 1
		case strings.ContainsRune("<>=!", rune(c)):
			j := i + 1
			for j < len(line) && strings.ContainsRune("<>=!", rune(line[j])) {
				j++
			}
			toks = append(toks, token{text: line[i:j]})
			i = j
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '"' &&
				!strings.ContainsRune("<>=!", rune(line[j])) {
				j++
			}
			toks = append(toks, token{text: line[i:j]})
			i = j
		}
	}
	return toks, nil
}

func parseCondition(toks []token) (Condition, []token, error) {
	if len(toks) == 0 {
		return nil, nil, fmt.Errorf("expected condition")
	}
	if toks[0].text == "not" && !toks[0].quoted {
		inner, rest, err := parseCondition(toks[1:])
		if err != nil {
			return nil, nil, err
		}
		return notCond{inner: inner}, rest, nil
	}
	head := toks[0]
	switch head.text {
	case "user":
		if len(toks) < 3 || (toks[1].text != "=" && toks[1].text != "!=") || !toks[2].quoted {
			return nil, nil, fmt.Errorf("user condition: want user =|!= \"DN\"")
		}
		return userCond{dn: identity.DN(toks[2].text), negate: toks[1].text == "!="}, toks[3:], nil
	case "group":
		if len(toks) < 3 || toks[1].text != "=" || !toks[2].quoted {
			return nil, nil, fmt.Errorf("group condition: want group = \"NAME\"")
		}
		return groupCond{group: toks[2].text}, toks[3:], nil
	case "capability":
		if len(toks) < 3 || toks[1].text != "from" || !toks[2].quoted {
			return nil, nil, fmt.Errorf("capability condition: want capability from \"COMMUNITY\"")
		}
		return capabilityCond{community: toks[2].text}, toks[3:], nil
	case "bw":
		if len(toks) < 3 {
			return nil, nil, fmt.Errorf("bw condition: want bw OP VALUE")
		}
		op := toks[1].text
		switch op {
		case "<", "<=", ">", ">=", "=":
		default:
			return nil, nil, fmt.Errorf("bw condition: bad operator %q", op)
		}
		if toks[2].text == "avail" && !toks[2].quoted {
			return bwCond{op: op, useAvail: true}, toks[3:], nil
		}
		bw, err := units.ParseBandwidth(toks[2].text)
		if err != nil {
			return nil, nil, fmt.Errorf("bw condition: %w", err)
		}
		return bwCond{op: op, limit: bw}, toks[3:], nil
	case "time":
		if len(toks) < 3 || toks[1].text != "within" {
			return nil, nil, fmt.Errorf("time condition: want time within HH:MM..HH:MM")
		}
		from, to, err := parseTimeRange(toks[2].text)
		if err != nil {
			return nil, nil, err
		}
		return timeCond{fromMin: from, toMin: to}, toks[3:], nil
	case "has":
		if len(toks) < 2 || !strings.HasSuffix(toks[1].text, "-reservation") {
			return nil, nil, fmt.Errorf("has condition: want has RESOURCE-reservation")
		}
		res := strings.TrimSuffix(toks[1].text, "-reservation")
		if res == "" {
			return nil, nil, fmt.Errorf("has condition: empty resource")
		}
		return linkedCond{resource: res}, toks[2:], nil
	case "source", "dest":
		if len(toks) < 3 || toks[1].text != "=" || !toks[2].quoted {
			return nil, nil, fmt.Errorf("%s condition: want %s = \"DOMAIN\"", head.text, head.text)
		}
		return domainCond{field: head.text, value: toks[2].text}, toks[3:], nil
	case "attr":
		if len(toks) < 4 || !toks[1].quoted || toks[2].text != "=" || !toks[3].quoted {
			return nil, nil, fmt.Errorf("attr condition: want attr \"KEY\" = \"VALUE\"")
		}
		return attrCond{key: toks[1].text, value: toks[3].text}, toks[4:], nil
	default:
		return nil, nil, fmt.Errorf("unknown condition %q", head.text)
	}
}

// parseTimeRange parses "HH:MM..HH:MM" into minutes-of-day.
func parseTimeRange(s string) (from, to int, err error) {
	parts := strings.SplitN(s, "..", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("time range %q: want HH:MM..HH:MM", s)
	}
	from, err = parseClock(parts[0])
	if err != nil {
		return 0, 0, err
	}
	to, err = parseClock(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

func parseClock(s string) (int, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("clock %q: want HH:MM", s)
	}
	h, err := strconv.Atoi(parts[0])
	if err != nil || h < 0 || h > 23 {
		return 0, fmt.Errorf("clock %q: bad hour", s)
	}
	m, err := strconv.Atoi(parts[1])
	if err != nil || m < 0 || m > 59 {
		return 0, fmt.Errorf("clock %q: bad minute", s)
	}
	return h*60 + m, nil
}
