// Package policy implements the local authorization policies bandwidth
// brokers enforce. The paper stresses that the signalling protocol is
// independent of policy syntax; this package provides the one concrete
// representation the paper's figures use: ordered decision lists of
// attribute-value conditions, e.g. Figure 6's
//
//	Policy File A:            If User = Alice
//	                            If Time > 8am and Time < 5pm
//	                              If BW <= 10Mb/s Return GRANT
//	                            Else if BW <= Avail_BW Return GRANT
//	                          Return DENY
//
// which is written in this package's DSL as
//
//	allow if user = "/O=Grid/OU=DomainA/CN=Alice" and time within 08:00..17:00 and bw <= 10Mb/s
//	allow if user = "/O=Grid/OU=DomainA/CN=Alice" and not time within 08:00..17:00 and bw <= avail
//	deny
//
// Rules are evaluated top to bottom; the first rule whose conditions
// all hold decides. An empty condition list always matches, so a bare
// trailing "deny" (or "allow") is the default clause. When no rule
// matches the decision is Deny.
package policy

import (
	"fmt"
	"strings"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// Effect is the outcome of a policy decision.
type Effect int

// Decision effects.
const (
	Deny Effect = iota
	Grant
)

func (e Effect) String() string {
	if e == Grant {
		return "GRANT"
	}
	return "DENY"
}

// Capability summarises one verified capability available to the
// requestor: the issuing community and the capability names.
type Capability struct {
	Community string
	Names     []string
}

// Request is the evaluation context: everything Figure 6's policy files
// consult. Groups and Capabilities must already be *validated* by the
// caller (group server round trip, capability chain verification) —
// the engine treats them as facts.
type Request struct {
	// User is the authenticated requestor DN.
	User identity.DN
	// Groups are validated group memberships.
	Groups []string
	// Capabilities are verified capability grants.
	Capabilities []Capability
	// Bandwidth is the requested rate.
	Bandwidth units.Bandwidth
	// Available is the uncommitted local capacity on the relevant path
	// (the Avail_BW of Figure 6).
	Available units.Bandwidth
	// Time is the evaluation instant (reservation start).
	Time time.Time
	// SourceDomain and DestDomain name the end domains of the flow.
	SourceDomain string
	DestDomain   string
	// LinkedReservations carries verified references to co-reservations
	// by resource type, e.g. {"cpu": true} when the request presents a
	// valid CPU reservation handle (Figure 6's HasValidCPUResv(RAR)).
	LinkedReservations map[string]bool
	// Attributes carries any further validated attribute-value facts.
	Attributes identity.Attributes
}

// HasGroup reports a validated membership.
func (r *Request) HasGroup(g string) bool {
	for _, have := range r.Groups {
		if have == g {
			return true
		}
	}
	return false
}

// HasCapabilityFrom reports whether any verified capability was issued
// by the given community.
func (r *Request) HasCapabilityFrom(community string) bool {
	for _, c := range r.Capabilities {
		if c.Community == community {
			return true
		}
	}
	return false
}

// Decision is the result of evaluating a policy.
type Decision struct {
	Effect Effect
	// Rule is the 1-based index of the deciding rule, 0 when no rule
	// matched (implicit deny).
	Rule int
	// Reason is a human-readable trace.
	Reason string
}

// Granted is a convenience accessor.
func (d Decision) Granted() bool { return d.Effect == Grant }

// Condition is one conjunct of a rule.
type Condition interface {
	Eval(r *Request) bool
	String() string
}

// Rule is one decision-list entry.
type Rule struct {
	Effect     Effect
	Conditions []Condition
	// Source is the original DSL line, for traces.
	Source string
}

// Matches reports whether all conditions hold.
func (ru *Rule) Matches(r *Request) bool {
	for _, c := range ru.Conditions {
		if !c.Eval(r) {
			return false
		}
	}
	return true
}

// Policy is an ordered decision list.
type Policy struct {
	Name  string
	Rules []*Rule
}

// Evaluate walks the decision list; first match wins, default deny.
func (p *Policy) Evaluate(r *Request) Decision {
	if r == nil {
		return Decision{Effect: Deny, Reason: "nil request"}
	}
	for i, ru := range p.Rules {
		if ru.Matches(r) {
			return Decision{
				Effect: ru.Effect,
				Rule:   i + 1,
				Reason: fmt.Sprintf("rule %d: %s", i+1, ru.Source),
			}
		}
	}
	return Decision{Effect: Deny, Reason: "no matching rule (implicit deny)"}
}

// String renders the policy back in DSL form.
func (p *Policy) String() string {
	var b strings.Builder
	for _, ru := range p.Rules {
		b.WriteString(ru.Source)
		b.WriteByte('\n')
	}
	return b.String()
}

// --- Conditions -----------------------------------------------------------

// notCond negates a condition.
type notCond struct{ inner Condition }

func (c notCond) Eval(r *Request) bool { return !c.inner.Eval(r) }
func (c notCond) String() string       { return "not " + c.inner.String() }

// userCond matches the requestor DN exactly.
type userCond struct {
	dn     identity.DN
	negate bool
}

func (c userCond) Eval(r *Request) bool {
	eq := r.User == c.dn
	if c.negate {
		return !eq
	}
	return eq
}
func (c userCond) String() string {
	op := "="
	if c.negate {
		op = "!="
	}
	return fmt.Sprintf("user %s %q", op, string(c.dn))
}

// groupCond matches a validated group membership.
type groupCond struct{ group string }

func (c groupCond) Eval(r *Request) bool { return r.HasGroup(c.group) }
func (c groupCond) String() string       { return fmt.Sprintf("group = %q", c.group) }

// capabilityCond matches a capability issued by a community.
type capabilityCond struct{ community string }

func (c capabilityCond) Eval(r *Request) bool { return r.HasCapabilityFrom(c.community) }
func (c capabilityCond) String() string       { return fmt.Sprintf("capability from %q", c.community) }

// bwCond compares the requested bandwidth against either a constant or
// the available capacity.
type bwCond struct {
	op       string // "<", "<=", ">", ">=", "="
	limit    units.Bandwidth
	useAvail bool
}

func (c bwCond) Eval(r *Request) bool {
	limit := c.limit
	if c.useAvail {
		limit = r.Available
	}
	switch c.op {
	case "<":
		return r.Bandwidth < limit
	case "<=":
		return r.Bandwidth <= limit
	case ">":
		return r.Bandwidth > limit
	case ">=":
		return r.Bandwidth >= limit
	case "=":
		return r.Bandwidth == limit
	default:
		return false
	}
}
func (c bwCond) String() string {
	if c.useAvail {
		return fmt.Sprintf("bw %s avail", c.op)
	}
	return fmt.Sprintf("bw %s %s", c.op, c.limit)
}

// timeCond matches when the request time-of-day falls inside
// [from, to) minutes. A window wrapping midnight (from > to) matches
// the complement interval.
type timeCond struct {
	fromMin, toMin int
}

func (c timeCond) Eval(r *Request) bool {
	m := r.Time.Hour()*60 + r.Time.Minute()
	if c.fromMin <= c.toMin {
		return m >= c.fromMin && m < c.toMin
	}
	return m >= c.fromMin || m < c.toMin
}
func (c timeCond) String() string {
	return fmt.Sprintf("time within %02d:%02d..%02d:%02d",
		c.fromMin/60, c.fromMin%60, c.toMin/60, c.toMin%60)
}

// linkedCond matches when a verified co-reservation of the given
// resource type is attached (Figure 6's HasValidCPUResv).
type linkedCond struct{ resource string }

func (c linkedCond) Eval(r *Request) bool { return r.LinkedReservations[c.resource] }
func (c linkedCond) String() string       { return fmt.Sprintf("has %s-reservation", c.resource) }

// domainCond matches the source or destination domain of the flow.
type domainCond struct {
	field string // "source" or "dest"
	value string
}

func (c domainCond) Eval(r *Request) bool {
	if c.field == "source" {
		return r.SourceDomain == c.value
	}
	return r.DestDomain == c.value
}
func (c domainCond) String() string { return fmt.Sprintf("%s = %q", c.field, c.value) }

// attrCond matches a validated free-form attribute.
type attrCond struct{ key, value string }

func (c attrCond) Eval(r *Request) bool { return r.Attributes.Has(c.key, c.value) }
func (c attrCond) String() string       { return fmt.Sprintf("attr %q = %q", c.key, c.value) }
