package policy

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// genRule builds a random but well-formed DSL rule.
func genRule(rng *rand.Rand) string {
	action := "allow"
	if rng.Intn(2) == 0 {
		action = "deny"
	}
	nConds := rng.Intn(4)
	if nConds == 0 {
		return action
	}
	var conds []string
	for i := 0; i < nConds; i++ {
		var c string
		switch rng.Intn(8) {
		case 0:
			c = fmt.Sprintf("user = %q", fmt.Sprintf("/O=Grid/CN=user%d", rng.Intn(5)))
		case 1:
			c = fmt.Sprintf("user != %q", fmt.Sprintf("/O=Grid/CN=user%d", rng.Intn(5)))
		case 2:
			c = fmt.Sprintf("group = %q", fmt.Sprintf("group%d", rng.Intn(3)))
		case 3:
			c = fmt.Sprintf("capability from %q", fmt.Sprintf("community%d", rng.Intn(3)))
		case 4:
			ops := []string{"<", "<=", ">", ">=", "="}
			c = fmt.Sprintf("bw %s %dMb/s", ops[rng.Intn(len(ops))], 1+rng.Intn(100))
		case 5:
			h1, h2 := rng.Intn(24), rng.Intn(24)
			c = fmt.Sprintf("time within %02d:%02d..%02d:%02d", h1, rng.Intn(60), h2, rng.Intn(60))
		case 6:
			c = "has cpu-reservation"
		case 7:
			c = fmt.Sprintf("dest = %q", fmt.Sprintf("Domain%d", rng.Intn(4)))
		}
		if rng.Intn(4) == 0 {
			c = "not " + c
		}
		conds = append(conds, c)
	}
	return action + " if " + strings.Join(conds, " and ")
}

func genRequest(rng *rand.Rand) *Request {
	req := &Request{
		User:       identity.DN(fmt.Sprintf("/O=Grid/CN=user%d", rng.Intn(5))),
		Bandwidth:  units.Bandwidth(1+rng.Intn(100)) * units.Mbps,
		Available:  units.Bandwidth(rng.Intn(200)) * units.Mbps,
		Time:       time.Date(2001, 8, 7, rng.Intn(24), rng.Intn(60), 0, 0, time.UTC),
		DestDomain: fmt.Sprintf("Domain%d", rng.Intn(4)),
	}
	for i := 0; i < rng.Intn(3); i++ {
		req.Groups = append(req.Groups, fmt.Sprintf("group%d", rng.Intn(3)))
	}
	if rng.Intn(2) == 0 {
		req.Capabilities = append(req.Capabilities, Capability{Community: fmt.Sprintf("community%d", rng.Intn(3))})
	}
	if rng.Intn(2) == 0 {
		req.LinkedReservations = map[string]bool{"cpu": true}
	}
	return req
}

// TestParserRoundTripProperty: for random policies, re-parsing the
// String() rendering yields a policy that decides identically on
// random requests.
func TestParserRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20010807))
	for trial := 0; trial < 200; trial++ {
		var lines []string
		for i := 0; i < 1+rng.Intn(6); i++ {
			lines = append(lines, genRule(rng))
		}
		src := strings.Join(lines, "\n")
		p1, err := Parse("gen", src)
		if err != nil {
			t.Fatalf("generated policy failed to parse: %v\n%s", err, src)
		}
		p2, err := Parse("gen2", p1.String())
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, p1.String())
		}
		for q := 0; q < 20; q++ {
			req := genRequest(rng)
			d1 := p1.Evaluate(req)
			d2 := p2.Evaluate(req)
			if d1.Effect != d2.Effect || d1.Rule != d2.Rule {
				t.Fatalf("round-tripped policy diverged on %+v:\n%s\n-> %+v vs %+v", req, src, d1, d2)
			}
		}
	}
}

// TestEvaluateTotalProperty: evaluation never panics and always
// returns a definite effect for arbitrary requests against arbitrary
// generated policies.
func TestEvaluateTotalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		var lines []string
		for i := 0; i < rng.Intn(5); i++ {
			lines = append(lines, genRule(rng))
		}
		p, err := Parse("gen", strings.Join(lines, "\n"))
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			d := p.Evaluate(genRequest(rng))
			if d.Effect != Grant && d.Effect != Deny {
				t.Fatalf("indefinite effect %v", d.Effect)
			}
		}
	}
}
