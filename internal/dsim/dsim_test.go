package dsim

import (
	"testing"
	"time"
)

func TestRunInOrder(t *testing.T) {
	s := New()
	var order []int
	if _, err := s.Schedule(3*time.Millisecond, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(1*time.Millisecond, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(2*time.Millisecond, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if n := s.Run(0); n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("now = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.Schedule(time.Millisecond, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: order = %v", order)
		}
	}
}

func TestScheduleInPastRejected(t *testing.T) {
	s := New()
	if _, err := s.Schedule(time.Millisecond, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if _, err := s.Schedule(0, func() {}); err == nil {
		t.Fatal("scheduling in the past accepted")
	}
	if _, err := s.After(-time.Millisecond, func() {}); err == nil {
		t.Fatal("negative After accepted")
	}
	if _, err := s.Schedule(time.Second, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestAfterChainsRelativeTime(t *testing.T) {
	s := New()
	var times []time.Duration
	if _, err := s.After(time.Millisecond, func() {
		times = append(times, s.Now())
		if _, err := s.After(time.Millisecond, func() {
			times = append(times, s.Now())
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Errorf("times = %v", times)
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	s := New()
	ran := 0
	for i := 1; i <= 5; i++ {
		if _, err := s.Schedule(time.Duration(i)*time.Second, func() { ran++ }); err != nil {
			t.Fatal(err)
		}
	}
	n := s.Run(2500 * time.Millisecond)
	if n != 2 || ran != 2 {
		t.Errorf("ran %d events (counted %d), want 2", n, ran)
	}
	if s.Now() != 2500*time.Millisecond {
		t.Errorf("clock = %v, want horizon", s.Now())
	}
	if s.Pending() != 3 {
		t.Errorf("pending = %d, want 3", s.Pending())
	}
	// Resume to exhaustion.
	n = s.Run(0)
	if n != 3 || ran != 5 {
		t.Errorf("resume ran %d (total %d)", n, ran)
	}
}

func TestHorizonAdvancesIdleClock(t *testing.T) {
	s := New()
	s.Run(time.Second)
	if s.Now() != time.Second {
		t.Errorf("idle run must advance clock to horizon, now = %v", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	ran := 0
	if _, err := s.Schedule(time.Millisecond, func() { ran++; s.Stop() }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(2*time.Millisecond, func() { ran++ }); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (stopped)", ran)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}

func TestManyEventsStaySorted(t *testing.T) {
	s := New()
	// Insert pseudo-random times; verify monotone execution.
	seed := uint64(42)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	last := time.Duration(-1)
	violations := 0
	for i := 0; i < 2000; i++ {
		at := time.Duration(next()%1_000_000) * time.Microsecond
		if _, err := s.Schedule(at, func() {
			if s.Now() < last {
				violations++
			}
			last = s.Now()
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0)
	if violations != 0 {
		t.Errorf("%d ordering violations", violations)
	}
}
