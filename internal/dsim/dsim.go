// Package dsim is a minimal discrete-event simulation kernel: a
// virtual clock and a priority queue of timestamped events. The
// DiffServ network simulator (internal/netsim) runs on top of it, so
// the Figure 4 misreservation experiment is deterministic and
// independent of wall-clock time.
package dsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

// At returns the event's scheduled virtual time.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all event handlers run on the caller's goroutine.
type Sim struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	stopped bool
}

// New creates a simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Schedule enqueues fn to run at absolute virtual time at. Scheduling
// in the past is an error.
func (s *Sim) Schedule(at time.Duration, fn func()) (*Event, error) {
	if fn == nil {
		return nil, fmt.Errorf("dsim: nil event function")
	}
	if at < s.now {
		return nil, fmt.Errorf("dsim: scheduling at %v before now %v", at, s.now)
	}
	s.seq++
	e := &Event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return e, nil
}

// After enqueues fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) (*Event, error) {
	if d < 0 {
		return nil, fmt.Errorf("dsim: negative delay %v", d)
	}
	return s.Schedule(s.now+d, fn)
}

// Stop makes Run return after the currently executing event.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue drains, the
// horizon passes, or Stop is called. It returns the number of events
// executed. Events scheduled beyond horizon remain queued; a zero
// horizon means run to exhaustion.
func (s *Sim) Run(horizon time.Duration) int {
	s.stopped = false
	n := 0
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if horizon > 0 && next.at > horizon {
			s.now = horizon
			return n
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.fn()
		n++
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }
