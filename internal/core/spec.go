// Package core implements the paper's primary contribution: the
// transitive-trust signalling of policy information between bandwidth
// brokers (§6). It combines the nested signed envelopes of
// internal/envelope, the capability delegation of internal/pki and a
// per-broker trust store into the concrete message flow
//
//	RAR_U     = sign_U({res_spec, DN_BBA, CapCert'_CAS, CapCert'_U})
//	RAR_A     = sign_BBA({RAR_U, cert_U, DN_BBB, CapCert'_A})
//	RAR_{N+1} = sign_BB{N+1}({RAR_N, cert_N, DN_BB{N+2}, CapCert'_{N+1}})
//
// with, at every hop, verification of the full chain through the
// web-of-trust introduction semantics: a verified outer layer
// introduces the signer of the layer it wraps by embedding that
// signer's certificate.
package core

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// Spec is the res_spec of the paper: everything the user asks for.
type Spec struct {
	// RARID uniquely names this resource allocation request; capability
	// delegations are scoped to it ("valid for RAR").
	RARID string `json:"rar_id"`
	// User is the requesting principal.
	User identity.DN `json:"user"`
	// SrcHost / DstHost are the flow endpoints.
	SrcHost string `json:"src_host"`
	DstHost string `json:"dst_host"`
	// SourceDomain / DestDomain are resolved by the first broker (or
	// the user agent) from the hosts.
	SourceDomain string `json:"source_domain"`
	DestDomain   string `json:"dest_domain"`
	// Bandwidth is the requested rate; Window the reservation interval.
	Bandwidth units.Bandwidth `json:"bandwidth"`
	Window    units.Window    `json:"window"`
	// Tunnel requests an aggregate reservation usable for sub-flow
	// allocation via the direct source/end-domain channel.
	Tunnel bool `json:"tunnel,omitempty"`
	// CostLimit is the maximum cost the user accepts (opaque).
	CostLimit string `json:"cost_limit,omitempty"`
	// Assertions are the user's unvalidated group claims
	// ("I am a physicist").
	Assertions []string `json:"assertions,omitempty"`
	// LinkedHandles reference co-reservations by resource type, e.g.
	// {"cpu": "cpu-domainc-17"} (Figure 6's CPU_Reservation_ID).
	LinkedHandles map[string]string `json:"linked_handles,omitempty"`
}

// Validate checks the user-controlled fields.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("core: nil spec")
	}
	if s.RARID == "" {
		return fmt.Errorf("core: spec missing RAR id")
	}
	if !s.User.Valid() {
		return fmt.Errorf("core: invalid user DN %q", s.User)
	}
	if s.Bandwidth <= 0 {
		return fmt.Errorf("core: non-positive bandwidth %v", s.Bandwidth)
	}
	if !s.Window.Valid() {
		return fmt.Errorf("core: invalid window %v", s.Window)
	}
	if s.SrcHost == "" || s.DstHost == "" {
		return fmt.Errorf("core: spec missing src/dst host")
	}
	return nil
}

// RestrictionFor returns the delegation restriction string scoping a
// capability to this RAR.
func (s *Spec) RestrictionFor() string { return "valid-for-rar:" + s.RARID }

// NewRARID mints a unique request identifier.
func NewRARID() string {
	var buf [12]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failure is unrecoverable for protocol purposes.
		panic(fmt.Sprintf("core: rand: %v", err))
	}
	return "RAR-" + hex.EncodeToString(buf[:])
}

// encodeSpec marshals the spec for embedding in the innermost layer.
func encodeSpec(s *Spec) (json.RawMessage, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("core: marshal spec: %w", err)
	}
	return data, nil
}

// DecodeSpec unmarshals a spec from a verified chain's request.
func DecodeSpec(raw json.RawMessage) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("core: decode spec: %w", err)
	}
	return &s, nil
}
