package core

import (
	"crypto/ecdsa"
	"fmt"
	"testing"
	"time"

	"e2eqos/internal/identity"
)

// mapDirectory is a KeyDirectory backed by a map, standing in for the
// certrepo package (which cannot be imported here without a cycle in
// its own tests).
type mapDirectory struct {
	keys map[identity.DN]*ecdsa.PublicKey
}

func (d *mapDirectory) LookupKey(dn identity.DN) (*ecdsa.PublicKey, error) {
	pub, ok := d.keys[dn]
	if !ok {
		return nil, fmt.Errorf("no key for %s", dn)
	}
	return pub, nil
}

// TestDirectoryKeyDistribution exercises §6.4's out-of-band key
// distribution alternative: brokers omit upstream certificates from
// the envelopes; verifiers resolve signer keys through a trusted
// directory instead.
func TestDirectoryKeyDistribution(t *testing.T) {
	w := buildWorld(t, false)
	dir := &mapDirectory{keys: map[identity.DN]*ecdsa.PublicKey{
		w.alice.Key.DN: w.alice.Key.Public(),
	}}
	for i, broker := range w.brokers {
		broker.OmitIntroducerCerts = true
		broker.Directory = dir
		dir.keys[broker.DN()] = broker.Key.Public()
		_ = i
	}
	spec := testSpec(w.alice.Key.DN)
	vC, rarB := propagate(t, w, spec)
	if vC.Spec.RARID != spec.RARID {
		t.Fatal("spec corrupted")
	}
	// The lean envelopes must be smaller than the inline-cert ones.
	w2 := buildWorld(t, false)
	spec2 := testSpec(w2.alice.Key.DN)
	_, rarInline := propagate(t, w2, spec2)
	if rarB.WireSize() >= rarInline.WireSize() {
		t.Errorf("directory mode wire size %d >= inline mode %d", rarB.WireSize(), rarInline.WireSize())
	}
}

// TestDirectoryMissingKeyFails ensures that when neither an inline
// certificate nor a directory entry is available, verification fails
// closed.
func TestDirectoryMissingKeyFails(t *testing.T) {
	w := buildWorld(t, false)
	for _, broker := range w.brokers {
		broker.OmitIntroducerCerts = true
		broker.Directory = &mapDirectory{keys: map[identity.DN]*ecdsa.PublicKey{}}
	}
	spec := testSpec(w.alice.Key.DN)
	now := time.Now()
	rarU, err := w.alice.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	vA, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, now)
	if err != nil {
		t.Fatal(err)
	}
	rarA, err := w.brokers[0].Extend(rarU, w.alice.Cert.DER, vA, w.certs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	// B can verify A (channel peer) but not the user (no cert, empty
	// directory).
	if _, err := w.brokers[1].Verify(rarA, w.brokers[0].DN(), w.certs[0].DER, now); err == nil {
		t.Fatal("verification succeeded without any key source")
	}
}

// TestDirectoryNotConsultedWhenCertsInline confirms the default mode
// never touches the directory.
func TestDirectoryNotConsultedWhenCertsInline(t *testing.T) {
	w := buildWorld(t, false)
	poison := &mapDirectory{keys: nil} // would fail every lookup
	for _, broker := range w.brokers {
		broker.Directory = poison
	}
	spec := testSpec(w.alice.Key.DN)
	if vC, _ := propagate(t, w, spec); vC.Spec.RARID != spec.RARID {
		t.Fatal("inline propagation failed")
	}
}
