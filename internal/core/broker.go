package core

import (
	"crypto/ecdsa"
	"fmt"
	"time"

	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

// KeyDirectory resolves a signer's public key out of band — the
// paper's §6.4 alternative to inline certificate distribution:
// "Maintain a certificate repository accessible through secure LDAP."
// internal/certrepo provides the reference implementation.
type KeyDirectory interface {
	LookupKey(dn identity.DN) (*ecdsa.PublicKey, error)
}

// Broker is the protocol half of a bandwidth broker: it verifies
// inbound RARs through the transitive trust model and extends granted
// requests toward the next hop.
type Broker struct {
	Key  *identity.KeyPair
	Cert *pki.Certificate
	// Trust holds the broker's local trust decisions: pinned SLA peers,
	// trusted CAs, and the introducer-depth policy.
	Trust *pki.TrustStore
	// Directory, when set, resolves keys for layers that arrive
	// without an introducing certificate (out-of-band distribution).
	Directory KeyDirectory
	// OmitIntroducerCerts makes Extend leave the upstream certificate
	// out of the wrapped layer: downstream verifiers must then use a
	// Directory. This is the ablation knob for the §6.4 comparison of
	// inline vs repository key distribution.
	OmitIntroducerCerts bool
	// MaxRequestAge bounds how old the innermost (user-signed) layer
	// may be at verification time, limiting the replay window of a
	// captured RAR. Zero disables the check.
	MaxRequestAge time.Duration
}

// NewBroker assembles a protocol broker.
func NewBroker(key *identity.KeyPair, cert *pki.Certificate, trust *pki.TrustStore) (*Broker, error) {
	if key == nil || trust == nil {
		return nil, fmt.Errorf("core: broker needs key and trust store")
	}
	if cert != nil && cert.SubjectDN() != key.DN {
		return nil, fmt.Errorf("core: broker certificate subject %s does not match key %s", cert.SubjectDN(), key.DN)
	}
	return &Broker{Key: key, Cert: cert, Trust: trust}, nil
}

// DN returns the broker identity.
func (b *Broker) DN() identity.DN { return b.Key.DN }

// VerifiedRequest is the result of successfully unwrapping and
// checking an inbound RAR.
type VerifiedRequest struct {
	// Spec is the user's original, signature-protected request.
	Spec *Spec
	// Chain holds every verified layer, outermost first.
	Chain *envelope.Chain
	// Path is the signalling path from the user outward
	// ([user, BB_A, BB_B, ...]); the paper's path tracing.
	Path []identity.DN
	// PolicyInfo merges the policy attributes added along the path.
	PolicyInfo map[string]string
	// Capabilities is the accumulated delegation chain, ready for
	// policy-engine verification.
	Capabilities pki.CapabilityChain
	// IntroducerDepth is the number of hops whose keys were accepted
	// via introduction rather than direct trust (0 when the sender was
	// the user itself).
	IntroducerDepth int
}

// Verify unwraps an inbound envelope received over a mutually
// authenticated channel from channelPeer (with certificate
// channelPeerCert, as captured by the handshake). The outermost layer
// must be signed by the channel peer; every inner layer's key is
// accepted through the introduction semantics — the already-verified
// wrapping layer embeds the signer's certificate — bounded by the
// trust store's introducer-depth policy.
func (b *Broker) Verify(env *envelope.Envelope, channelPeer identity.DN, channelPeerCert []byte, at time.Time) (*VerifiedRequest, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil envelope")
	}
	if env.SignerDN != channelPeer {
		return nil, fmt.Errorf("core: outer layer signed by %s but channel peer is %s", env.SignerDN, channelPeer)
	}
	if at.IsZero() {
		at = time.Now()
	}
	depth := -1 // layer counter: outermost layer is depth 0
	maxDepth := b.Trust.MaxIntroducerDepth()
	resolve := func(dn identity.DN, certHint []byte) (*ecdsa.PublicKey, error) {
		depth++
		if depth == 0 {
			// The channel handshake authenticated this key.
			if pinned, ok := b.Trust.PeerKey(dn); ok {
				return pinned, nil
			}
			if channelPeerCert != nil {
				cert, err := pki.ParseCertificate(channelPeerCert)
				if err != nil {
					return nil, err
				}
				if cert.SubjectDN() != dn {
					return nil, fmt.Errorf("core: channel certificate subject %s does not match signer %s", cert.SubjectDN(), dn)
				}
				return b.Trust.DirectlyTrusted(cert, at)
			}
			return nil, fmt.Errorf("core: no trust path to channel peer %s", dn)
		}
		// Inner layers: the verified wrapping layer introduced this
		// signer by embedding its certificate.
		if depth > maxDepth {
			return nil, fmt.Errorf("core: introduction depth %d exceeds local policy limit %d", depth, maxDepth)
		}
		if certHint == nil {
			if b.Directory != nil {
				pub, err := b.Directory.LookupKey(dn)
				if err != nil {
					return nil, fmt.Errorf("core: directory lookup for %s: %w", dn, err)
				}
				return pub, nil
			}
			return nil, fmt.Errorf("core: layer %d (%s) has no introducing certificate", depth, dn)
		}
		cert, err := pki.ParseCertificate(certHint)
		if err != nil {
			return nil, fmt.Errorf("core: introduced certificate for %s: %w", dn, err)
		}
		if cert.SubjectDN() != dn {
			return nil, fmt.Errorf("core: introduced certificate names %s, layer signed by %s", cert.SubjectDN(), dn)
		}
		if !cert.ValidAt(at) {
			return nil, fmt.Errorf("core: introduced certificate for %s not valid at %s", dn, at)
		}
		pub := cert.PublicKey()
		if pub == nil {
			return nil, fmt.Errorf("core: introduced certificate for %s has non-ECDSA key", dn)
		}
		return pub, nil
	}
	chain, err := envelope.Unwrap(env, resolve)
	if err != nil {
		return nil, err
	}
	if err := b.checkPathNaming(chain); err != nil {
		return nil, err
	}
	if b.MaxRequestAge > 0 {
		stamped := chain.Layers[len(chain.Layers)-1].Body.Timestamp
		if stamped.IsZero() {
			return nil, fmt.Errorf("core: innermost layer carries no timestamp")
		}
		if age := at.Sub(stamped); age > b.MaxRequestAge {
			return nil, fmt.Errorf("core: request is %s old, limit %s (replay window)", age, b.MaxRequestAge)
		}
	}
	spec, err := DecodeSpec(chain.Request)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: inbound spec: %w", err)
	}
	// The innermost layer must be signed by the user the spec names:
	// the signature over res_spec is the user's.
	if inner := chain.Layers[len(chain.Layers)-1].SignerDN; inner != spec.User {
		return nil, fmt.Errorf("core: spec names user %s but innermost signature is by %s", spec.User, inner)
	}
	caps, err := chain.Capabilities()
	if err != nil {
		return nil, fmt.Errorf("core: capability chain: %w", err)
	}
	return &VerifiedRequest{
		Spec:            spec,
		Chain:           chain,
		Path:            chain.PathDNs(),
		PolicyInfo:      chain.PolicyInfo(),
		Capabilities:    caps,
		IntroducerDepth: depth,
	}, nil
}

// checkPathNaming enforces the signed next-hop pointers: each layer
// must have been addressed to the entity that actually signed the
// next outer layer, and the outermost layer must be addressed to this
// broker. This is what lets a downstream domain confirm that its
// upstream peer approved the SLA path ("BB_A ... did approve the SLA
// with domain B by listing the DN of BB_B in its request").
func (b *Broker) checkPathNaming(chain *envelope.Chain) error {
	for i := len(chain.Layers) - 1; i >= 0; i-- {
		layer := chain.Layers[i]
		want := b.Key.DN
		if i > 0 {
			want = chain.Layers[i-1].SignerDN
		}
		if layer.Body.NextHopDN != want {
			return fmt.Errorf("core: layer signed by %s is addressed to %s, but next signer is %s",
				layer.SignerDN, layer.Body.NextHopDN, want)
		}
	}
	return nil
}

// Extend wraps a verified inbound request for the next hop: it embeds
// the upstream peer's certificate (introducing its key downstream),
// names the next hop, re-delegates the capability chain to the next
// broker and appends this domain's policy additions, then signs the
// whole layer (RAR_{N+1} of §6.4).
func (b *Broker) Extend(inbound *envelope.Envelope, upstreamCert []byte, verified *VerifiedRequest, nextHop *pki.Certificate, additions map[string]string) (*envelope.Envelope, error) {
	if inbound == nil || verified == nil {
		return nil, fmt.Errorf("core: Extend needs the inbound envelope and its verification")
	}
	if nextHop == nil {
		return nil, fmt.Errorf("core: Extend needs the next hop certificate")
	}
	if b.OmitIntroducerCerts {
		upstreamCert = nil
	}
	body := envelope.Body{
		Inner:           inbound,
		UpstreamCertDER: upstreamCert,
		NextHopDN:       nextHop.SubjectDN(),
		PolicyInfo:      additions,
	}
	if len(verified.Capabilities) > 0 {
		hopPub := nextHop.PublicKey()
		if hopPub == nil {
			return nil, fmt.Errorf("core: next hop certificate has non-ECDSA key")
		}
		last := verified.Capabilities[len(verified.Capabilities)-1]
		if last.SubjectDN() != b.Key.DN {
			return nil, fmt.Errorf("core: capability chain ends at %s, cannot delegate as %s", last.SubjectDN(), b.Key.DN)
		}
		delegated, err := pki.Delegate(last, b.Key.DN, b.Key.Private, nextHop.SubjectDN(), hopPub, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("core: delegating capability to %s: %w", nextHop.SubjectDN(), err)
		}
		body.CapabilityDERs = [][]byte{delegated.DER}
	}
	return envelope.Seal(b.Key, body)
}
