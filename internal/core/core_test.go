package core

import (
	"strings"
	"testing"
	"time"

	"e2eqos/internal/cas"
	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
	"e2eqos/internal/units"
)

// world is the Figure 7 fixture: one CA per domain, a CAS, the user
// Alice in domain A and brokers A, B, C in a chain. Each broker pins
// only its immediate peers (SLA relationships); C has no direct trust
// in A or the user.
type world struct {
	cas     *cas.Server
	alice   *UserAgent
	brokers []*Broker // A, B, C
	certs   []*pki.Certificate
	cas0    *cas.Credential
}

func buildWorld(t *testing.T, withCapability bool) *world {
	t.Helper()
	w := &world{}

	casKey, err := identity.GenerateKeyPair(identity.NewDN("ESnet", "", "CAS"))
	if err != nil {
		t.Fatal(err)
	}
	w.cas = cas.NewServer(casKey, "ESnet", time.Hour)

	// Each domain runs its own CA: no shared roots between A and C.
	names := []string{"DomainA", "DomainB", "DomainC"}
	keys := make([]*identity.KeyPair, 3)
	for i, dom := range names {
		ca, err := pki.NewCA(identity.NewDN("Grid", dom, "CA"))
		if err != nil {
			t.Fatal(err)
		}
		key, err := identity.GenerateKeyPair(identity.NewDN("Grid", dom, "bb"))
		if err != nil {
			t.Fatal(err)
		}
		cert, err := ca.IssueIdentity(key.DN, key.Public(), 0, "bb")
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = key
		w.certs = append(w.certs, cert)
		if i == 0 {
			// Alice lives in domain A; her cert comes from A's CA.
			ak, err := identity.GenerateKeyPair(identity.NewDN("Grid", "DomainA", "Alice"))
			if err != nil {
				t.Fatal(err)
			}
			acert, err := ca.IssueIdentity(ak.DN, ak.Public(), 0)
			if err != nil {
				t.Fatal(err)
			}
			var cred *cas.Credential
			if withCapability {
				w.cas.Grant(ak.DN, "network-reservation")
				cred, err = w.cas.Login(ak.DN)
				if err != nil {
					t.Fatal(err)
				}
				w.cas0 = cred
			}
			ua, err := NewUserAgent(ak, acert, cred)
			if err != nil {
				t.Fatal(err)
			}
			w.alice = ua
			// A's broker trusts its home CA directly (for local users).
			trust := pki.NewTrustStore(8)
			if err := trust.AddRoot(&pki.Certificate{Cert: ca.Certificate(), DER: ca.CertificateDER()}); err != nil {
				t.Fatal(err)
			}
			bb, err := NewBroker(key, cert, trust)
			if err != nil {
				t.Fatal(err)
			}
			w.brokers = append(w.brokers, bb)
			continue
		}
		trust := pki.NewTrustStore(8)
		bb, err := NewBroker(key, cert, trust)
		if err != nil {
			t.Fatal(err)
		}
		w.brokers = append(w.brokers, bb)
	}
	// Pin SLA peers: A<->B, B<->C.
	w.brokers[0].Trust.PinPeer(keys[1].DN, keys[1].Public())
	w.brokers[1].Trust.PinPeer(keys[0].DN, keys[0].Public())
	w.brokers[1].Trust.PinPeer(keys[2].DN, keys[2].Public())
	w.brokers[2].Trust.PinPeer(keys[1].DN, keys[1].Public())
	return w
}

func testSpec(user identity.DN) *Spec {
	return &Spec{
		RARID:        NewRARID(),
		User:         user,
		SrcHost:      "hostA.example",
		DstHost:      "hostC.example",
		SourceDomain: "DomainA",
		DestDomain:   "DomainC",
		Bandwidth:    10 * units.Mbps,
		Window:       units.NewWindow(time.Now().Add(time.Minute), time.Hour),
		Assertions:   []string{"ATLAS experiment"},
	}
}

// propagate runs the full A -> B -> C signalling flow and returns C's
// verified view.
func propagate(t *testing.T, w *world, spec *Spec) (*VerifiedRequest, *envelope.Envelope) {
	t.Helper()
	now := time.Now()
	rarU, err := w.alice.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	// BB-A verifies the user's request received over the authenticated
	// user<->BB-A channel.
	vA, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, now)
	if err != nil {
		t.Fatalf("BB-A verify: %v", err)
	}
	rarA, err := w.brokers[0].Extend(rarU, w.alice.Cert.DER, vA, w.certs[1], map[string]string{"te.param": "from-A"})
	if err != nil {
		t.Fatal(err)
	}
	vB, err := w.brokers[1].Verify(rarA, w.brokers[0].DN(), w.certs[0].DER, now)
	if err != nil {
		t.Fatalf("BB-B verify: %v", err)
	}
	rarB, err := w.brokers[1].Extend(rarA, w.certs[0].DER, vB, w.certs[2], map[string]string{"sls.excess": "remark"})
	if err != nil {
		t.Fatal(err)
	}
	vC, err := w.brokers[2].Verify(rarB, w.brokers[1].DN(), w.certs[1].DER, now)
	if err != nil {
		t.Fatalf("BB-C verify: %v", err)
	}
	return vC, rarB
}

func TestEndToEndPropagation(t *testing.T) {
	w := buildWorld(t, true)
	spec := testSpec(w.alice.Key.DN)
	vC, _ := propagate(t, w, spec)

	if vC.Spec.RARID != spec.RARID || vC.Spec.Bandwidth != spec.Bandwidth {
		t.Errorf("spec mutated in flight: %+v", vC.Spec)
	}
	// Path tracing: user, BB-A, BB-B.
	if len(vC.Path) != 3 {
		t.Fatalf("path = %v", vC.Path)
	}
	if vC.Path[0] != w.alice.Key.DN || vC.Path[1] != w.brokers[0].DN() || vC.Path[2] != w.brokers[1].DN() {
		t.Errorf("path = %v", vC.Path)
	}
	// Policy info from both intermediate domains survived.
	if vC.PolicyInfo["te.param"] != "from-A" || vC.PolicyInfo["sls.excess"] != "remark" {
		t.Errorf("policy info = %v", vC.PolicyInfo)
	}
	// BB-B's layer was introduced directly (channel); the user and
	// BB-A arrived via introduction: depth 2.
	if vC.IntroducerDepth != 2 {
		t.Errorf("introducer depth = %d, want 2", vC.IntroducerDepth)
	}
}

func TestFigure7CapabilityChainLengths(t *testing.T) {
	w := buildWorld(t, true)
	spec := testSpec(w.alice.Key.DN)

	now := time.Now()
	rarU, err := w.alice.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	vA, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, now)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7: BB-A holds 2 capability certificates.
	if len(vA.Capabilities) != 2 {
		t.Fatalf("BB-A capability list = %d, want 2", len(vA.Capabilities))
	}
	rarA, err := w.brokers[0].Extend(rarU, w.alice.Cert.DER, vA, w.certs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	vB, err := w.brokers[1].Verify(rarA, w.brokers[0].DN(), w.certs[0].DER, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(vB.Capabilities) != 3 {
		t.Fatalf("BB-B capability list = %d, want 3", len(vB.Capabilities))
	}
	rarB, err := w.brokers[1].Extend(rarA, w.certs[0].DER, vB, w.certs[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	vC, err := w.brokers[2].Verify(rarB, w.brokers[1].DN(), w.certs[1].DER, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(vC.Capabilities) != 4 {
		t.Fatalf("BB-C capability list = %d, want 4", len(vC.Capabilities))
	}
	// The full chain verifies against the CAS and is scoped to the RAR.
	attrs, err := vC.Capabilities.Verify(pki.VerifyOptions{
		CASKey:             w.cas.Key().Public(),
		RequireRestriction: spec.RestrictionFor(),
	})
	if err != nil {
		t.Fatalf("capability chain verify at C: %v", err)
	}
	if !attrs.HasCapability("network-reservation") {
		t.Error("capability lost in delegation")
	}
	// BB-C can prove possession with its own key (§6.5).
	nonce := []byte("challenge")
	proof, err := pki.ProvePossession(w.brokers[2].Key.Private, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := vC.Capabilities.VerifyPossession(nonce, proof); err != nil {
		t.Errorf("BB-C possession rejected: %v", err)
	}
}

func TestVerifyRejectsWrongChannelPeer(t *testing.T) {
	w := buildWorld(t, false)
	spec := testSpec(w.alice.Key.DN)
	rarU, err := w.alice.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.brokers[0].Verify(rarU, w.brokers[1].DN(), w.certs[1].DER, time.Now()); err == nil {
		t.Fatal("envelope accepted from a channel peer that did not sign it")
	}
}

func TestVerifyRejectsUnknownUser(t *testing.T) {
	w := buildWorld(t, false)
	// A user certified by an unknown CA must be rejected by BB-A.
	rogueCA, err := pki.NewCA(identity.NewDN("Evil", "", "CA"))
	if err != nil {
		t.Fatal(err)
	}
	key, err := identity.GenerateKeyPair(identity.NewDN("Evil", "", "mallory"))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := rogueCA.IssueIdentity(key.DN, key.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := NewUserAgent(key, cert, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(key.DN)
	rar, err := ua.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.brokers[0].Verify(rar, key.DN, cert.DER, time.Now()); err == nil {
		t.Fatal("user from unknown CA accepted")
	}
}

func TestVerifyRejectsSkippedHop(t *testing.T) {
	w := buildWorld(t, false)
	spec := testSpec(w.alice.Key.DN)
	now := time.Now()
	rarU, err := w.alice.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	vA, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, now)
	if err != nil {
		t.Fatal(err)
	}
	// BB-A addresses the RAR to BB-B but a malicious client relays it
	// straight to BB-C. C only pins B, so A's outer signature cannot be
	// resolved: the skipped hop is detected.
	rarA, err := w.brokers[0].Extend(rarU, w.alice.Cert.DER, vA, w.certs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.brokers[2].Verify(rarA, w.brokers[0].DN(), w.certs[0].DER, now); err == nil {
		t.Fatal("RAR that skipped the intermediate hop was accepted")
	}
}

func TestVerifyRejectsMisaddressedLayer(t *testing.T) {
	w := buildWorld(t, false)
	spec := testSpec(w.alice.Key.DN)
	now := time.Now()
	rarU, err := w.alice.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	vA, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, now)
	if err != nil {
		t.Fatal(err)
	}
	// BB-A extends toward C directly (skipping B): B must refuse
	// because the layer is not addressed to it.
	rarA, err := w.brokers[0].Extend(rarU, w.alice.Cert.DER, vA, w.certs[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.brokers[1].Verify(rarA, w.brokers[0].DN(), w.certs[0].DER, now)
	if err == nil {
		t.Fatal("misaddressed layer accepted")
	}
	if !strings.Contains(err.Error(), "addressed to") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestIntroducerDepthPolicyEnforced(t *testing.T) {
	w := buildWorld(t, false)
	// C refuses introduction chains deeper than 1: the user's layer
	// (depth 2) must be rejected.
	w.brokers[2].Trust.SetMaxIntroducerDepth(1)
	spec := testSpec(w.alice.Key.DN)
	now := time.Now()
	rarU, err := w.alice.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	vA, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, now)
	if err != nil {
		t.Fatal(err)
	}
	rarA, err := w.brokers[0].Extend(rarU, w.alice.Cert.DER, vA, w.certs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	vB, err := w.brokers[1].Verify(rarA, w.brokers[0].DN(), w.certs[0].DER, now)
	if err != nil {
		t.Fatal(err)
	}
	rarB, err := w.brokers[1].Extend(rarA, w.certs[0].DER, vB, w.certs[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.brokers[2].Verify(rarB, w.brokers[1].DN(), w.certs[1].DER, now); err == nil {
		t.Fatal("chain deeper than local introducer policy accepted")
	}
}

func TestSpecUserMustSignInnermost(t *testing.T) {
	w := buildWorld(t, false)
	spec := testSpec(w.alice.Key.DN)
	spec.User = identity.NewDN("Grid", "DomainA", "SomeoneElse")
	if _, err := w.alice.BuildRAR(spec, w.certs[0]); err == nil {
		t.Fatal("agent built RAR for foreign user")
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec(identity.NewDN("Grid", "A", "u"))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Spec){
		"no rarid":   func(s *Spec) { s.RARID = "" },
		"bad user":   func(s *Spec) { s.User = "nope" },
		"zero bw":    func(s *Spec) { s.Bandwidth = 0 },
		"bad window": func(s *Spec) { s.Window = units.Window{} },
		"no src":     func(s *Spec) { s.SrcHost = "" },
	}
	for name, mutate := range cases {
		s := *good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err == nil {
		t.Error("nil spec accepted")
	}
}

func TestNewRARIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRARID()
		if !strings.HasPrefix(id, "RAR-") || seen[id] {
			t.Fatalf("bad or duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestExtendWithoutCapabilities(t *testing.T) {
	w := buildWorld(t, false)
	spec := testSpec(w.alice.Key.DN)
	vC, _ := propagate(t, w, spec)
	if len(vC.Capabilities) != 0 {
		t.Fatalf("capabilities = %d, want 0 for capability-less flow", len(vC.Capabilities))
	}
}

func TestMaxRequestAgeRejectsStaleRAR(t *testing.T) {
	w := buildWorld(t, false)
	w.brokers[0].MaxRequestAge = time.Minute
	spec := testSpec(w.alice.Key.DN)
	rarU, err := w.alice.BuildRAR(spec, w.certs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Fresh: accepted.
	if _, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, time.Now()); err != nil {
		t.Fatalf("fresh RAR rejected: %v", err)
	}
	// Replayed an hour later: refused.
	if _, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, time.Now().Add(time.Hour)); err == nil {
		t.Fatal("stale RAR accepted despite MaxRequestAge")
	}
	// No limit configured: the old RAR is accepted (certs still valid).
	w.brokers[0].MaxRequestAge = 0
	if _, err := w.brokers[0].Verify(rarU, w.alice.Key.DN, w.alice.Cert.DER, time.Now().Add(time.Hour)); err != nil {
		t.Fatalf("unlimited-age verify failed: %v", err)
	}
}
