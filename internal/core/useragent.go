package core

import (
	"fmt"

	"e2eqos/internal/cas"
	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

// UserAgent holds a user's long-term identity and grid-login
// credential and builds the innermost RAR layer.
type UserAgent struct {
	Key *identity.KeyPair
	// Cert is the user's identity certificate (cert_U in the paper),
	// issued by the user's home CA.
	Cert *pki.Certificate
	// Credential is the CAS capability credential obtained at
	// grid-login; nil when the user carries no capabilities.
	Credential *cas.Credential
}

// NewUserAgent bundles the user's material.
func NewUserAgent(key *identity.KeyPair, cert *pki.Certificate, cred *cas.Credential) (*UserAgent, error) {
	if key == nil {
		return nil, fmt.Errorf("core: user agent needs a key")
	}
	if cert != nil && cert.SubjectDN() != key.DN {
		return nil, fmt.Errorf("core: certificate subject %s does not match key DN %s", cert.SubjectDN(), key.DN)
	}
	return &UserAgent{Key: key, Cert: cert, Credential: cred}, nil
}

// BuildRAR constructs RAR_U for the given spec, addressed to the
// source-domain broker whose certificate firstHop is (known to the
// user out of band or from the channel handshake). When the agent
// holds a CAS credential, it delegates the capability to the first
// broker: a new capability certificate with subject firstHop, the
// broker's real public key, the restriction "valid for this RAR", and
// a signature by the private proxy key (§6.5).
func (ua *UserAgent) BuildRAR(spec *Spec, firstHop *pki.Certificate) (*envelope.Envelope, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.User != ua.Key.DN {
		return nil, fmt.Errorf("core: spec user %s does not match agent %s", spec.User, ua.Key.DN)
	}
	if firstHop == nil {
		return nil, fmt.Errorf("core: BuildRAR needs the first hop certificate")
	}
	req, err := encodeSpec(spec)
	if err != nil {
		return nil, err
	}
	body := envelope.Body{
		Request:   req,
		NextHopDN: firstHop.SubjectDN(),
	}
	if ua.Credential != nil {
		hopPub := firstHop.PublicKey()
		if hopPub == nil {
			return nil, fmt.Errorf("core: first hop certificate has non-ECDSA key")
		}
		delegated, err := pki.Delegate(
			ua.Credential.Certificate,
			ua.Key.DN,
			ua.Credential.Proxy.Private,
			firstHop.SubjectDN(),
			hopPub,
			[]string{spec.RestrictionFor()},
			0,
		)
		if err != nil {
			return nil, fmt.Errorf("core: delegating capability to %s: %w", firstHop.SubjectDN(), err)
		}
		body.CapabilityDERs = [][]byte{ua.Credential.Certificate.DER, delegated.DER}
	}
	env, err := envelope.Seal(ua.Key, body)
	if err != nil {
		return nil, err
	}
	return env, nil
}
