package group

import (
	"testing"
	"time"

	"e2eqos/internal/identity"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	key, err := identity.GenerateKeyPair(identity.NewDN("CERN", "", "atlas-vo"))
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(key, time.Hour)
}

var alice = identity.NewDN("Grid", "DomainA", "Alice")

func TestMembership(t *testing.T) {
	s := newServer(t)
	s.AddMember("ATLAS experiment", alice)
	if !s.IsMember("ATLAS experiment", alice) {
		t.Fatal("membership not recorded")
	}
	if s.IsMember("CMS", alice) {
		t.Fatal("spurious membership")
	}
	s.RemoveMember("ATLAS experiment", alice)
	if s.IsMember("ATLAS experiment", alice) {
		t.Fatal("membership not removed")
	}
}

func TestValidateIssuesAttestation(t *testing.T) {
	s := newServer(t)
	s.AddMember("physicist", alice)
	att, err := s.Validate(alice, "physicist")
	if err != nil {
		t.Fatal(err)
	}
	if att.User != alice || att.Group != "physicist" || att.ServerDN != s.DN() {
		t.Errorf("attestation = %+v", att)
	}
	if err := VerifyAttestation(att, s.Key(), time.Now()); err != nil {
		t.Errorf("fresh attestation rejected: %v", err)
	}
}

func TestValidateNonMember(t *testing.T) {
	s := newServer(t)
	if _, err := s.Validate(alice, "physicist"); err == nil {
		t.Fatal("non-member validated")
	}
}

func TestAttestationExpiry(t *testing.T) {
	s := newServer(t)
	s.AddMember("g", alice)
	att, err := s.Validate(alice, "g")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAttestation(att, s.Key(), att.Expires.Add(time.Second)); err == nil {
		t.Fatal("expired attestation accepted")
	}
}

func TestAttestationTamperDetected(t *testing.T) {
	s := newServer(t)
	s.AddMember("g", alice)
	att, err := s.Validate(alice, "g")
	if err != nil {
		t.Fatal(err)
	}
	att.Group = "root-club"
	if err := VerifyAttestation(att, s.Key(), time.Now()); err == nil {
		t.Fatal("tampered attestation accepted")
	}
}

func TestAttestationWrongServerKey(t *testing.T) {
	s := newServer(t)
	s.AddMember("g", alice)
	att, err := s.Validate(alice, "g")
	if err != nil {
		t.Fatal(err)
	}
	other := newServer(t)
	if err := VerifyAttestation(att, other.Key(), time.Now()); err == nil {
		t.Fatal("attestation accepted under wrong server key")
	}
}

func TestAttestationEncodeDecode(t *testing.T) {
	s := newServer(t)
	s.AddMember("g", alice)
	att, err := s.Validate(alice, "g")
	if err != nil {
		t.Fatal(err)
	}
	data, err := att.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeAttestation(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAttestation(decoded, s.Key(), time.Now()); err != nil {
		t.Errorf("decoded attestation rejected: %v", err)
	}
	if _, err := DecodeAttestation([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
}

func TestVerifyNilAttestation(t *testing.T) {
	s := newServer(t)
	if err := VerifyAttestation(nil, s.Key(), time.Now()); err == nil {
		t.Fatal("nil attestation accepted")
	}
}
