// Package group implements the third-party group membership servers
// the paper's trust model delegates to: "domain B agrees to provide
// resources to anyone whom a third party accredits as a 'physicist'".
//
// A bandwidth broker receiving the assertion "I am a physicist"
// verifies it by asking the group server named in its policy; the
// server answers with a signed attestation that the broker (and
// downstream brokers) can check offline and cache.
package group

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"e2eqos/internal/identity"
)

// Attestation is a signed statement that User belongs to Group until
// Expires.
type Attestation struct {
	ServerDN identity.DN `json:"server_dn"`
	User     identity.DN `json:"user"`
	Group    string      `json:"group"`
	Expires  time.Time   `json:"expires"`
	// Signature is the server's signature over the canonical payload.
	Signature []byte `json:"signature"`
}

func attestationPayload(server, user identity.DN, group string, expires time.Time) []byte {
	return []byte(fmt.Sprintf("group-attestation|%s|%s|%s|%d", server, user, group, expires.UnixNano()))
}

// Server validates group membership assertions. It is safe for
// concurrent use.
type Server struct {
	key *identity.KeyPair
	ttl time.Duration

	mu      sync.RWMutex
	members map[string]map[identity.DN]bool
}

// NewServer creates a group server signing with key; attestations are
// valid for ttl (default 1 hour).
func NewServer(key *identity.KeyPair, ttl time.Duration) *Server {
	if ttl <= 0 {
		ttl = time.Hour
	}
	return &Server{key: key, ttl: ttl, members: make(map[string]map[identity.DN]bool)}
}

// DN returns the server identity.
func (s *Server) DN() identity.DN { return s.key.DN }

// Key returns the server key pair (its public half is what verifiers
// pin).
func (s *Server) Key() *identity.KeyPair { return s.key }

// AddMember enrols user in group.
func (s *Server) AddMember(group string, user identity.DN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.members[group] == nil {
		s.members[group] = make(map[identity.DN]bool)
	}
	s.members[group][user] = true
}

// RemoveMember withdraws a membership.
func (s *Server) RemoveMember(group string, user identity.DN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.members[group], user)
}

// IsMember reports current membership.
func (s *Server) IsMember(group string, user identity.DN) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.members[group][user]
}

// Validate checks the membership assertion and, when valid, returns a
// signed attestation.
func (s *Server) Validate(user identity.DN, group string) (*Attestation, error) {
	if !s.IsMember(group, user) {
		return nil, fmt.Errorf("group: %s is not a member of %q", user, group)
	}
	expires := time.Now().Add(s.ttl)
	payload := attestationPayload(s.key.DN, user, group, expires)
	sig, err := s.key.Sign(payload)
	if err != nil {
		return nil, fmt.Errorf("group: signing attestation: %w", err)
	}
	return &Attestation{
		ServerDN:  s.key.DN,
		User:      user,
		Group:     group,
		Expires:   expires,
		Signature: sig,
	}, nil
}

// VerifyAttestation checks an attestation against the issuing server's
// public key and the clock.
func VerifyAttestation(a *Attestation, serverKey *identity.KeyPair, at time.Time) error {
	return verifyAttestation(a, serverKey, at)
}

func verifyAttestation(a *Attestation, serverKey *identity.KeyPair, at time.Time) error {
	if a == nil {
		return fmt.Errorf("group: nil attestation")
	}
	if at.After(a.Expires) {
		return fmt.Errorf("group: attestation for %s in %q expired at %s", a.User, a.Group, a.Expires)
	}
	payload := attestationPayload(a.ServerDN, a.User, a.Group, a.Expires)
	if err := identity.Verify(serverKey.Public(), payload, a.Signature); err != nil {
		return fmt.Errorf("group: attestation signature: %w", err)
	}
	return nil
}

// Encode serialises the attestation for transport inside policy info.
func (a *Attestation) Encode() ([]byte, error) {
	return json.Marshal(a)
}

// DecodeAttestation reverses Encode.
func DecodeAttestation(data []byte) (*Attestation, error) {
	var a Attestation
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("group: decode attestation: %w", err)
	}
	return &a, nil
}
