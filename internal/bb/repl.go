package bb

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"e2eqos/internal/journal"
	"e2eqos/internal/obs"
	"e2eqos/internal/resv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/tunnel"
	"e2eqos/internal/units"
)

// Replication (DESIGN.md §6.8): a replicated broker group elects one
// leader per term; the leader serves all mutating signalling and
// streams its journal — the same CRC-framed records the WAL holds — to
// every follower. Followers apply each record live (reservation table,
// RAR replay cache, tunnel state) and re-journal the frame verbatim,
// so a promoted follower's WAL is byte-compatible with the dead
// leader's. A follower that lags past the leader's in-memory tail
// catches up from a full state snapshot, cut at an exact journal
// sequence.
//
// Commit = majority acknowledgement. The leader withholds a settlement
// (closing a reserve's done channel, answering a tunnel batch) until
// the journal sequence covering it is acked by a majority, so any
// outcome a caller ever saw survives the leader's death on at least
// one electable replica. Elections enforce that: a voter refuses any
// candidate whose applied sequence trails its own, so the winner holds
// every committed record.
const (
	// replTailBytes budgets the in-memory journal tail kept for
	// incremental streaming; followers further behind than this resync
	// from a snapshot.
	replTailBytes = 1 << 20
	// replBatchRecords caps the records per stream message.
	replBatchRecords = 256
	// replHeartbeat paces empty stream messages on an idle group: they
	// assert the leader's term and share the commit sequence.
	replHeartbeat = 100 * time.Millisecond
	// replRedialBackoff is the pause before a pump redials a follower
	// it could not reach.
	replRedialBackoff = 20 * time.Millisecond
	// replCommitTimeout bounds the leader's wait for majority
	// acknowledgement before settling anyway (counted — a degraded
	// group keeps serving rather than blocking every caller forever).
	replCommitTimeout = time.Second
	// epochFenceStride is added to the RAR epoch counter on every
	// election win. Strictly larger than any count of records a leader
	// could journal in one term, it guarantees a new leader never mints
	// an epoch the dead leader journaled but failed to replicate.
	epochFenceStride = int64(1) << 32
)

type replRole int

const (
	replFollower replRole = iota
	replLeader
)

// replicator is one broker's replication engine.
type replicator struct {
	b     *BB
	id    int
	addrs map[int]string

	mu         sync.Mutex
	commitCond *sync.Cond // broadcast on commit advance, role change, close
	role       replRole
	term       int64
	leaderID   int // -1 while unknown
	appliedSeq int64
	commitSeq  int64
	acks       map[int]int64 // leader: highest seq acked per follower
	pumpStop   chan struct{} // non-nil while leading
	closed     bool
	lastHeard  time.Time // follower: last leader contact, for auto-election

	pumpWG sync.WaitGroup

	// applyMu serializes stream application on a follower (the leader
	// retries on a lost ack, so two copies of a message may race).
	applyMu sync.Mutex
	// resvApply replays reservation-table records in stream order,
	// tolerating the emission inversions batch recovery tolerates.
	resvApply *resv.StreamReplayer
	// pendingOps buffers tunnel sub-flow ops per RAR until they can be
	// applied dense-in-generation (stream order can invert emission
	// order under concurrency, but generations are dense per endpoint).
	pendingOps map[string][]tunnelOpRecord

	electStop chan struct{}
}

// newReplicator wires the engine into a freshly built broker. Called
// from New after journal recovery; the broker is not yet shared, so
// field setup needs no locking, but pumps started here already run.
func newReplicator(b *BB) *replicator {
	r := &replicator{
		b:          b,
		id:         b.cfg.ReplicaID,
		addrs:      b.cfg.ReplicaAddrs,
		leaderID:   -1,
		acks:       make(map[int]int64),
		resvApply:  resv.NewStreamReplayer(b.table),
		pendingOps: make(map[string][]tunnelOpRecord),
		appliedSeq: b.journal.Seq(),
	}
	r.commitCond = sync.NewCond(&r.mu)
	if !b.cfg.StartAsFollower {
		r.role = replLeader
		r.leaderID = r.id
		r.term = 1
		r.startPumpsLocked()
	}
	if b.cfg.ElectionTimeout > 0 {
		r.electStop = make(chan struct{})
		go r.electionLoop(r.electStop)
	}
	return r
}

// close stops pumps and the election timer and releases commit
// waiters. Safe on a nil receiver (unreplicated broker) and idempotent.
func (r *replicator) close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.closed = true
	if r.pumpStop != nil {
		close(r.pumpStop)
		r.pumpStop = nil
	}
	if r.electStop != nil {
		close(r.electStop)
		r.electStop = nil
	}
	r.commitCond.Broadcast()
	r.mu.Unlock()
	r.pumpWG.Wait()
}

// startPumpsLocked launches one streaming pump per follower. Caller
// holds r.mu (or owns r exclusively, during construction).
func (r *replicator) startPumpsLocked() {
	stop := make(chan struct{})
	r.pumpStop = stop
	for id := range r.addrs {
		if id == r.id {
			continue
		}
		r.pumpWG.Add(1)
		go r.pump(id, stop)
	}
}

// stepDownLocked demotes a leader (or standing candidate) to follower
// under a superseding term. Caller holds r.mu.
func (r *replicator) stepDownLocked(term int64, leaderID int) {
	if term > r.term {
		r.term = term
	}
	if r.role == replLeader {
		r.b.log.Info("replication: stepping down", "term", term, "new_leader", leaderID)
	}
	r.role = replFollower
	r.leaderID = leaderID
	if r.pumpStop != nil {
		close(r.pumpStop)
		r.pumpStop = nil
	}
	// Release settle paths blocked on commit: they re-check the role.
	r.commitCond.Broadcast()
}

// observeTerm handles a higher term learned from a stream reply or
// vote exchange: adopt it and step down.
func (r *replicator) observeTerm(term int64, leaderID int) {
	r.mu.Lock()
	if term > r.term {
		r.stepDownLocked(term, leaderID)
	}
	r.mu.Unlock()
}

// isFollower reports whether mutating signalling must be redirected.
func (r *replicator) isFollower() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role != replLeader
}

// leader reports the current leader's id and address ("" while
// unknown — a fresh follower that has heard from nobody).
func (r *replicator) leader() (int, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderID, r.addrs[r.leaderID]
}

// callTimeout bounds each replication RPC. CallTimeout zero means
// "wait forever" elsewhere in the broker, but a pump must never hang
// past close, so replication substitutes a real bound.
func (r *replicator) callTimeout() time.Duration {
	if t := r.b.cfg.CallTimeout; t > 0 {
		return t
	}
	return time.Second
}

// dialReplica opens an authenticated stream client to a peer replica.
// Replicas share the domain's identity, so the authorization check is
// DN equality with our own.
func (r *replicator) dialReplica(id int) (*signalling.Client, error) {
	b := r.b
	addr, ok := r.addrs[id]
	if !ok {
		return nil, fmt.Errorf("bb %s: no address for replica %d", b.cfg.Domain, id)
	}
	if b.cfg.Dialer == nil {
		return nil, fmt.Errorf("bb %s: no dialer configured", b.cfg.Domain)
	}
	c, err := signalling.Dial(b.cfg.Dialer, addr)
	if err != nil {
		return nil, err
	}
	c.Timeout = r.callTimeout()
	c.Wire = b.cfg.Wire
	if c.PeerDN() != b.DN() {
		c.Close()
		return nil, fmt.Errorf("bb %s: replica %d at %s authenticated as %s, not this domain's broker",
			b.cfg.Domain, id, addr, c.PeerDN())
	}
	return c, nil
}

// sleepOrStop pauses, returning false if stop closed first.
func sleepOrStop(stop <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

// streamReply builds a follower's answer to a stream or vote message.
func streamReply(granted bool, ack, term int64) *signalling.Message {
	return &signalling.Message{Type: signalling.MsgResult, Result: &signalling.ResultPayload{
		Granted: granted, AckSeq: ack, Term: term,
	}}
}

// ---------------------------------------------------------------------
// Leader side: pumps, acknowledgements, group commit.

// pump is the leader's streaming loop toward one follower. It owns a
// dedicated client (never the DN-keyed pool — every replica shares the
// domain DN) and tracks the follower's acknowledged sequence. An
// unknown or lost position resyncs with a snapshot; everything after
// streams incrementally off the journal's in-memory tail.
func (r *replicator) pump(id int, stop chan struct{}) {
	defer r.pumpWG.Done()
	b := r.b
	var client *signalling.Client
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	acked := int64(-1) // unknown follower position: snapshot first
	for {
		select {
		case <-stop:
			return
		default:
		}
		r.mu.Lock()
		leading := r.role == replLeader && !r.closed
		term := r.term
		commit := r.commitSeq
		r.mu.Unlock()
		if !leading {
			return
		}

		if client == nil {
			c, err := r.dialReplica(id)
			if err != nil {
				if !sleepOrStop(stop, replRedialBackoff) {
					return
				}
				continue
			}
			client = c
			acked = -1 // a reconnected follower may have restarted
		}

		// Arm the change notification before reading the tail, so an
		// append racing the read wakes the idle wait below.
		changed := b.journal.Changes()
		var msg *signalling.Message
		if acked < 0 {
			data, seq, err := b.journal.SnapshotWith(b.snapshotState)
			if err != nil {
				b.log.Error("replication: snapshot for follower failed", "replica", id, "err", err)
				if !sleepOrStop(stop, replRedialBackoff) {
					return
				}
				continue
			}
			msg = &signalling.Message{Type: signalling.MsgJournalStream, JournalStream: &signalling.JournalStreamPayload{
				Domain: b.cfg.Domain, Term: term, LeaderID: r.id,
				Snapshot: data, SnapSeq: seq, CommitSeq: commit,
			}}
			b.m.replSnapshotsSent.Inc()
		} else {
			recs, ok := b.journal.TailSince(acked)
			if !ok {
				acked = -1 // fell off the tail: resync
				continue
			}
			if len(recs) == 0 {
				// Caught up: wait for an append, a heartbeat tick, or
				// shutdown. The heartbeat doubles as the term assert and
				// commit-sequence share on an idle group.
				hb := time.NewTimer(replHeartbeat)
				select {
				case <-stop:
					hb.Stop()
					return
				case <-changed:
					hb.Stop()
					continue
				case <-hb.C:
				}
			}
			if len(recs) > replBatchRecords {
				recs = recs[:replBatchRecords]
			}
			frames := make([][]byte, len(recs))
			for i, sr := range recs {
				frames[i] = sr.Frame
			}
			msg = &signalling.Message{Type: signalling.MsgJournalStream, JournalStream: &signalling.JournalStreamPayload{
				Domain: b.cfg.Domain, Term: term, LeaderID: r.id,
				FromSeq: acked, Records: frames, CommitSeq: commit,
			}}
			if n := len(frames); n > 0 {
				b.m.replRecordsStreamed.Add(int64(n))
			}
		}

		resp, err := client.CallTimeout(msg, r.callTimeout())
		if err != nil {
			b.m.replStreamErrors.Inc()
			client.Close()
			client = nil
			if !sleepOrStop(stop, replRedialBackoff) {
				return
			}
			continue
		}
		res := resp.Result
		if res == nil {
			b.m.replStreamErrors.Inc()
			continue
		}
		if !res.Granted {
			if res.Term > term {
				// A higher term exists: this leadership is over.
				r.observeTerm(res.Term, -1)
				return
			}
			// The follower refused the batch (gap, apply failure):
			// resync from a snapshot.
			acked = -1
			continue
		}
		acked = res.AckSeq
		r.noteAck(id, acked)
	}
}

// noteAck records a follower acknowledgement and recomputes the group
// commit sequence: the median of {leader's own sequence} ∪ follower
// acks — the highest sequence held by a majority.
func (r *replicator) noteAck(id int, seq int64) {
	b := r.b
	own := b.journal.Seq()
	r.mu.Lock()
	if seq > r.acks[id] {
		r.acks[id] = seq
	}
	seqs := make([]int64, 0, len(r.addrs))
	seqs = append(seqs, own)
	for rid := range r.addrs {
		if rid != r.id {
			seqs = append(seqs, r.acks[rid])
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	if commit := seqs[len(seqs)/2]; commit > r.commitSeq {
		r.commitSeq = commit
		r.commitCond.Broadcast()
	}
	r.mu.Unlock()
	b.m.replAcks.Inc()
}

// replWaitCommit blocks a leader's settle path until the broker's own
// journal sequence — covering every record the settlement depends on —
// is majority-acknowledged, bounded by replCommitTimeout. On an
// unreplicated broker, a follower (the settle raced a step-down), or a
// timeout (counted: the group is degraded, keep serving) it returns
// immediately; the outcome the caller settles is then durable locally
// but not yet guaranteed replicated, exactly the pre-replication
// contract.
func (b *BB) replWaitCommit() {
	r := b.repl
	if r == nil {
		return
	}
	target := b.journal.Seq()
	timedOut := false
	timer := time.AfterFunc(replCommitTimeout, func() {
		r.mu.Lock()
		timedOut = true
		r.commitCond.Broadcast()
		r.mu.Unlock()
	})
	r.mu.Lock()
	for r.commitSeq < target && r.role == replLeader && !r.closed && !timedOut {
		r.commitCond.Wait()
	}
	ok := r.commitSeq >= target
	r.mu.Unlock()
	timer.Stop()
	if !ok && timedOut {
		b.m.replCommitTimeouts.Inc()
	}
}

// ---------------------------------------------------------------------
// Follower side: stream application, snapshot install, votes.

// handleJournalStream authorizes and dispatches replication traffic.
// Replicas share the domain's identity, so the only acceptable peer DN
// is our own.
func (b *BB) handleJournalStream(peer signalling.Peer, p *signalling.JournalStreamPayload) *signalling.Message {
	if b.repl == nil {
		return signalling.ErrorResult(fmt.Sprintf("%s: broker is not a replica group member", b.cfg.Domain))
	}
	if peer.DN != b.DN() {
		return signalling.ErrorResult(fmt.Sprintf("%s: %s is not a replica of this domain", b.cfg.Domain, peer.DN))
	}
	if p.Domain != b.cfg.Domain {
		return signalling.ErrorResult(fmt.Sprintf("%s: stream for foreign domain %q", b.cfg.Domain, p.Domain))
	}
	if p.Kind == signalling.StreamVote {
		return b.repl.handleVote(p)
	}
	return b.repl.handleStream(p)
}

// handleStream applies one leader message: optional snapshot install,
// then records in order, each re-journaled verbatim. The reply carries
// the follower's applied sequence as the acknowledgement.
func (r *replicator) handleStream(p *signalling.JournalStreamPayload) *signalling.Message {
	b := r.b
	r.mu.Lock()
	if p.Term < r.term {
		term := r.term
		r.mu.Unlock()
		return streamReply(false, 0, term) // stale leader: fence it
	}
	if p.Term > r.term || r.role == replLeader {
		// A newer term, or a competing leader at our own term after we
		// somehow kept leading — either way this broker follows now.
		r.stepDownLocked(p.Term, p.LeaderID)
	}
	r.leaderID = p.LeaderID
	r.lastHeard = time.Now()
	if p.CommitSeq > r.commitSeq {
		r.commitSeq = p.CommitSeq
	}
	term := r.term
	r.mu.Unlock()

	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	if len(p.Snapshot) > 0 {
		if err := r.installSnapshot(p.Snapshot, p.SnapSeq); err != nil {
			b.m.replStreamErrors.Inc()
			b.log.Error("replication: snapshot install failed", "err", err)
			return streamReply(false, r.applied(), term)
		}
	}
	if len(p.Records) > 0 {
		if p.FromSeq != r.applied() {
			// Gap or replayed batch we cannot splice: ask for resync.
			return streamReply(false, r.applied(), term)
		}
		for _, frame := range p.Records {
			if err := r.applyFrame(frame); err != nil {
				b.m.replStreamErrors.Inc()
				b.log.Error("replication: record apply failed", "seq", r.applied()+1, "err", err)
				return streamReply(false, r.applied(), term)
			}
			r.setApplied(r.applied() + 1)
			b.m.replRecordsApplied.Inc()
		}
	}
	b.maybeCheckpoint()
	return streamReply(true, r.applied(), term)
}

func (r *replicator) applied() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appliedSeq
}

func (r *replicator) setApplied(seq int64) {
	r.mu.Lock()
	r.appliedSeq = seq
	r.mu.Unlock()
}

// applyFrame applies one raw journal frame to the follower's live
// state, then re-journals it verbatim. Apply precedes append: a frame
// that fails to apply must not enter the WAL, and every applied frame
// is also journaled before it is acknowledged.
func (r *replicator) applyFrame(frame []byte) error {
	b := r.b
	rec, n, err := journal.DecodeRecord(frame)
	if err != nil {
		return err
	}
	if n != len(frame) {
		return fmt.Errorf("bb: replication: frame holds %d trailing bytes", len(frame)-n)
	}
	if err := r.resvApply.Apply(rec); err != nil {
		return err
	}
	ops, _, err := b.applyBBRecord(rec)
	if err != nil {
		return err
	}
	for _, op := range ops {
		r.pendingOps[op.RARID] = append(r.pendingOps[op.RARID], op)
	}
	switch {
	case len(ops) > 0:
		for _, op := range ops {
			if err := r.drainTunnelOps(op.RARID); err != nil {
				return err
			}
		}
	case rec.Op == opTunnel || rec.Op == opTunnelBatch:
		// An endpoint (re)appeared or a batch restored its replay
		// entry: ops parked while it was absent may now apply.
		for rarID := range r.pendingOps {
			if err := r.drainTunnelOps(rarID); err != nil {
				return err
			}
		}
	}
	return b.journal.AppendFrame(frame)
}

// drainTunnelOps applies parked sub-flow ops for one tunnel RAR in
// dense generation order. Generations are dense per endpoint (every
// successful allocate/release takes the next one), so the op extending
// Gen()+1 is always unambiguous; ops from dead epochs are dropped, ops
// from future epochs wait for their establishment record.
func (r *replicator) drainTunnelOps(rarID string) error {
	pend := r.pendingOps[rarID]
	if len(pend) == 0 {
		delete(r.pendingOps, rarID)
		return nil
	}
	ep, ok := r.b.tunnels.reg.Get(rarID)
	if !ok {
		return nil // establishment not streamed yet; keep parked
	}
	kept := pend[:0]
	for _, op := range pend {
		if op.Epoch >= ep.Epoch {
			kept = append(kept, op)
		}
	}
	for progress := true; progress; {
		progress = false
		next := ep.Gen() + 1
		for i, op := range kept {
			if op.Epoch != ep.Epoch || op.Gen != next {
				continue
			}
			switch op.Action {
			case "alloc":
				if err := ep.ReplayAlloc(op.SubFlowID, units.Bandwidth(op.Bandwidth), op.Gen); err != nil {
					return fmt.Errorf("bb: replication: replaying alloc %s/%s: %w", rarID, op.SubFlowID, err)
				}
			case "release":
				ep.ReplayRelease(op.SubFlowID, op.Gen)
			}
			kept = append(kept[:i], kept[i+1:]...)
			progress = true
			break
		}
	}
	if len(kept) == 0 {
		delete(r.pendingOps, rarID)
	} else {
		r.pendingOps[rarID] = kept
	}
	return nil
}

// installSnapshot replaces the follower's entire broker state with the
// leader's snapshot, in place (gauges and handlers keep their table and
// registry pointers), then rotates the follower's own journal onto the
// installed state so no stale pre-resync suffix survives a restart.
func (r *replicator) installSnapshot(data []byte, seq int64) error {
	b := r.b
	st, err := decodeBrokerState(data)
	if err != nil {
		return err
	}
	if err := b.table.ResetFrom(st.Table); err != nil {
		return err
	}
	b.mu.Lock()
	if st.Epoch > b.rarEpoch {
		b.rarEpoch = st.Epoch
	}
	b.routes = make(map[string]*rarState, len(st.RARs))
	for _, rr := range st.RARs {
		b.routes[rr.RARID] = recoveredRARState(rr)
	}
	b.mu.Unlock()
	eps := make([]*tunnel.Endpoint, 0, len(st.Tunnels))
	for _, ts := range st.Tunnels {
		ep, err := tunnel.Restore(ts)
		if err != nil {
			return fmt.Errorf("bb: replication: restoring tunnel %s: %w", ts.RARID, err)
		}
		eps = append(eps, ep)
	}
	b.tunnels.reg.ResetTo(eps)
	b.tunnels.resetBatches(st.TunnelBatches)
	if len(st.Sagas) > 0 {
		// The leader's open rollback debt rides its snapshot; a follower
		// holds it passively until promotion resumes the compensations.
		if err := b.sagas.RestoreJSON(st.Sagas); err != nil {
			b.log.Error("replication: saga snapshot restore failed", "err", err)
		}
	}
	// Stream-side scratch state is superseded wholesale.
	r.pendingOps = make(map[string][]tunnelOpRecord)
	r.resvApply.Reset()
	r.setApplied(seq)
	if err := b.journal.Rotate(b.snapshotState); err != nil {
		// The WAL is degraded but the live state is correct; the sticky
		// journal error surfaces through its own stats.
		b.log.Error("replication: journal rotate after snapshot install failed", "err", err)
	}
	b.m.replSnapshotsInstalled.Inc()
	return nil
}

// handleVote answers an election vote request. Adopting any higher
// term before judging the candidate makes votes single-shot per term
// without a votedFor register: a second candidate at the same term
// fails the strictly-greater check. The applied-sequence restriction
// is what turns majority acknowledgement into durability — a candidate
// missing committed records cannot assemble a majority.
func (r *replicator) handleVote(p *signalling.JournalStreamPayload) *signalling.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.Term <= r.term {
		return streamReply(false, r.appliedSeq, r.term)
	}
	r.stepDownLocked(p.Term, -1)
	if p.FromSeq < r.appliedSeq {
		return streamReply(false, r.appliedSeq, r.term)
	}
	// Grant. Reset the failover clock so this voter doesn't stand
	// against the candidate it just endorsed.
	r.lastHeard = time.Now()
	return streamReply(true, r.appliedSeq, r.term)
}

// ---------------------------------------------------------------------
// Elections.

// Promote stands this broker for election and, on a majority, makes it
// the group's leader: pumps start (each follower resyncs from a
// snapshot), the RAR epoch is fenced past anything the previous leader
// could have minted, and the data plane is resynced. Returns an error
// on a lost or superseded election — callers retry on another replica.
func (b *BB) Promote() error {
	if b.repl == nil {
		return fmt.Errorf("bb %s: not a replica group member", b.cfg.Domain)
	}
	return b.repl.promote()
}

func (r *replicator) promote() error {
	b := r.b
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("bb %s: replicator closed", b.cfg.Domain)
	}
	if r.role == replLeader {
		r.mu.Unlock()
		return nil
	}
	r.term++
	term := r.term
	cand := r.appliedSeq
	r.mu.Unlock()

	votes := 1 // own
	var lastErr error
	for id := range r.addrs {
		if id == r.id {
			continue
		}
		resp, err := r.callReplica(id, &signalling.Message{Type: signalling.MsgJournalStream, JournalStream: &signalling.JournalStreamPayload{
			Kind: signalling.StreamVote, Domain: b.cfg.Domain,
			Term: term, LeaderID: r.id, FromSeq: cand,
		}})
		if err != nil || resp.Result == nil {
			lastErr = err
			continue
		}
		if resp.Result.Granted {
			votes++
		} else if resp.Result.Term > term {
			r.observeTerm(resp.Result.Term, -1)
			return fmt.Errorf("bb %s: election at term %d superseded by term %d", b.cfg.Domain, term, resp.Result.Term)
		}
	}
	if majority := len(r.addrs)/2 + 1; votes < majority {
		return fmt.Errorf("bb %s: election lost at term %d: %d/%d votes (last error: %v)",
			b.cfg.Domain, term, votes, majority, lastErr)
	}

	r.mu.Lock()
	if r.term != term || r.closed {
		r.mu.Unlock()
		return fmt.Errorf("bb %s: election at term %d superseded", b.cfg.Domain, term)
	}
	r.role = replLeader
	r.leaderID = r.id
	r.acks = make(map[int]int64)
	r.startPumpsLocked()
	r.mu.Unlock()

	// Epoch fence: every epoch this leader mints is strictly above
	// anything the dead leader journaled but failed to replicate, so
	// the replay cache's epoch ordering rejects stale-leader writes.
	b.mu.Lock()
	b.rarEpoch += epochFenceStride
	b.mu.Unlock()
	b.syncDataPlane()
	// The dead leader's rollback debt streamed here with its journal;
	// as leader this replica now owes it, so start the compensations.
	if n := b.sagas.Resume(); n > 0 {
		b.log.Info("saga: resumed compensation after failover", "sagas", n)
	}
	b.m.replElections.Inc()
	b.recordFailoverEvent(term)
	b.log.Info("replication: won election", "term", term, "replica", r.id)
	return nil
}

// callReplica makes one ad-hoc RPC to a peer replica (elections only;
// pumps keep persistent clients).
func (r *replicator) callReplica(id int, msg *signalling.Message) (*signalling.Message, error) {
	c, err := r.dialReplica(id)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.CallTimeout(msg, r.callTimeout())
}

// electionLoop arms automatic failover: a follower that hears nothing
// for its (id-staggered) patience window stands for election. The
// stagger makes the lowest-id live replica win uncontested in the
// common case instead of splitting votes.
func (r *replicator) electionLoop(stop chan struct{}) {
	patience := r.b.cfg.ElectionTimeout * time.Duration(r.id+2) / 2
	tick := time.NewTicker(r.b.cfg.ElectionTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		r.mu.Lock()
		stand := r.role == replFollower && !r.closed && time.Since(r.lastHeard) > patience
		r.mu.Unlock()
		if stand {
			if err := r.promote(); err != nil {
				r.b.log.Warn("replication: automatic election failed", "err", err)
			}
		}
	}
}

// recordFailoverEvent force-records an election win in the flight
// recorder: failovers are exactly the events someone will ask about.
func (b *BB) recordFailoverEvent(term int64) {
	if b.cfg.Recorder == nil {
		return
	}
	b.m.eventsForced.Inc()
	b.appendEvent(&obs.Event{
		Kind:    obs.EventFailover,
		Verdict: obs.VerdictGranted,
		Reason:  fmt.Sprintf("replica %d won term %d", b.cfg.ReplicaID, term),
	})
}

// redirect answers a mutating request arriving at a follower: callers
// must talk to the leader. The result names it so a client (or a
// human reading the error) can re-aim without a topology lookup.
func (b *BB) redirect() *signalling.Message {
	id, addr := b.repl.leader()
	b.m.replRedirects.Inc()
	resp := signalling.ErrorResult(fmt.Sprintf("%s: not the leader of the replica group (leader is replica %d)", b.cfg.Domain, id))
	resp.Result.PolicyInfo = map[string]string{
		"leader_replica": strconv.Itoa(id),
		"leader_addr":    addr,
	}
	return resp
}

// ---------------------------------------------------------------------
// Introspection for tests, experiments and the daemon's admin surface.

// ReplicationStatus is a point-in-time view of the broker's role in
// its replica group.
type ReplicationStatus struct {
	Replicated bool
	Leader     bool
	Replica    int
	LeaderID   int
	Term       int64
	AppliedSeq int64 // follower: last applied + re-journaled sequence
	CommitSeq  int64
	JournalSeq int64 // this incarnation's own journal sequence
}

// ReplicationStatus reports the broker's replication state (zero value
// with Replicated=false on an unreplicated broker).
func (b *BB) ReplicationStatus() ReplicationStatus {
	r := b.repl
	if r == nil {
		return ReplicationStatus{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicationStatus{
		Replicated: true,
		Leader:     r.role == replLeader,
		Replica:    r.id,
		LeaderID:   r.leaderID,
		Term:       r.term,
		AppliedSeq: r.appliedSeq,
		CommitSeq:  r.commitSeq,
		JournalSeq: b.journal.Seq(),
	}
}

// StateDigest serialises the broker's full durable state — reservation
// table, RAR replay cache, tunnel endpoints, batch replay cache — in
// the canonical snapshot encoding. Deterministic: two brokers holding
// identical state digest to identical bytes, which is how the failover
// suite proves a promoted follower byte-for-byte matches its dead
// leader.
func (b *BB) StateDigest() ([]byte, error) {
	return b.snapshotState()
}
