package bb_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/signalling"
	"e2eqos/internal/units"
)

// tunnelSnapshot grabs a domain's endpoint snapshot bytes for the
// byte-identical recovery assertions (EndpointSnapshot is sorted and
// value-typed, so equal state marshals equally).
func tunnelSnapshot(t *testing.T, w *experiment.World, domain, rarID string) []byte {
	t.Helper()
	ep, ok := w.BBs[domain].Tunnel(rarID)
	if !ok {
		t.Fatalf("%s: no tunnel %s", domain, rarID)
	}
	data, err := json.Marshal(ep.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTunnelCrashRecoveryFromJournal is the sub-flow analogue of the
// reservation-table kill-and-recover regression: establish a tunnel,
// mutate it through both the batched source API and a direct
// destination batch, crash the destination broker hard, rebuild it
// from its journal alone, and require (a) a byte-identical recovered
// endpoint and (b) that a retransmitted batch is answered from the
// recovered replay cache without double admission.
func TestTunnelCrashRecoveryFromJournal(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  3,
		Capacity:    1000 * units.Mbps,
		CallTimeout: 2 * time.Second,
		StateDir:    t.TempDir(),
		FsyncPolicy: "always",
		EnableObs:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	spec := u.NewSpec(experiment.SpecOptions{
		DestDomain: w.DestDomain(), Bandwidth: 100 * units.Mbps, Tunnel: true,
	})
	if res, err := u.ReserveE2E(spec); err != nil || !res.Granted {
		t.Fatalf("tunnel establishment: res=%+v err=%v", res, err)
	}
	src, dest := w.SourceDomain(), w.DestDomain()

	// Populate the tunnel through the batched two-endpoint path.
	var ops []signalling.TunnelOp
	for i := 0; i < 8; i++ {
		ops = append(ops, signalling.TunnelOp{
			Action: signalling.OpAlloc, SubFlowID: fmt.Sprintf("sub-%d", i), Bandwidth: int64(5 * units.Mbps),
		})
	}
	results, err := w.BBs[src].TunnelBatch(spec.RARID, ops, u.DN())
	if err != nil {
		t.Fatalf("source batch: %v", err)
	}
	for _, r := range results {
		if !r.Granted {
			t.Fatalf("source batch denied %s: %s", r.SubFlowID, r.Reason)
		}
	}

	// One more batch sent straight to the destination with a pinned
	// batch id — the retransmission vehicle. It churns existing flows
	// (release + re-style alloc) so replay ordering matters.
	batch := &signalling.TunnelBatchPayload{
		TunnelRARID: spec.RARID,
		BatchID:     "B-pinned-retransmit",
		User:        u.DN(),
		Ops: []signalling.TunnelOp{
			{Action: signalling.OpRelease, SubFlowID: "sub-3"},
			{Action: signalling.OpAlloc, SubFlowID: "sub-9", Bandwidth: int64(20 * units.Mbps)},
			{Action: signalling.OpRelease, SubFlowID: "sub-5"},
		},
	}
	res1, err := u.TunnelBatch(dest, batch)
	if err != nil || !res1.Granted {
		t.Fatalf("direct destination batch: res=%+v err=%v", res1, err)
	}

	epPre, ok := w.BBs[dest].Tunnel(spec.RARID)
	if !ok {
		t.Fatal("destination lost the tunnel endpoint")
	}
	usedPre := epPre.Used()
	want := tunnelSnapshot(t, w, dest, spec.RARID)

	// Kill the destination the hard way and rebuild it from disk.
	if err := w.CrashDomain(dest); err != nil {
		t.Fatal(err)
	}
	if err := w.RestartDomainFromJournal(dest); err != nil {
		t.Fatal(err)
	}

	got := tunnelSnapshot(t, w, dest, spec.RARID)
	if !bytes.Equal(want, got) {
		t.Errorf("recovered tunnel endpoint differs from pre-crash state\n want: %s\n  got: %s", want, got)
	}

	// Retransmit the settled batch verbatim. The user's pooled
	// connection died with the broker; drop it and redial. The rebuilt
	// broker must answer from its recovered replay cache — identical
	// per-op results, not a single op re-applied.
	u.Close()
	res2, err := u.TunnelBatch(dest, batch)
	if err != nil {
		t.Fatalf("retransmitted batch after recovery: %v", err)
	}
	r1, _ := json.Marshal(res1.BatchResults)
	r2, _ := json.Marshal(res2.BatchResults)
	if res2.Granted != res1.Granted || !bytes.Equal(r1, r2) {
		t.Errorf("retransmission results differ\n want: granted=%t %s\n  got: granted=%t %s",
			res1.Granted, r1, res2.Granted, r2)
	}
	epPost, ok := w.BBs[dest].Tunnel(spec.RARID)
	if !ok {
		t.Fatal("tunnel endpoint vanished after retransmission")
	}
	if epPost.Used() != usedPre {
		t.Errorf("retransmission changed the allocated total: %v, want %v", epPost.Used(), usedPre)
	}
	if got := tunnelSnapshot(t, w, dest, spec.RARID); !bytes.Equal(want, got) {
		t.Errorf("tunnel state changed after retransmitted batch")
	}
	if n := w.Metrics[dest].Snapshot()["bb_tunnel_batch_replays_total"]; n < 1 {
		t.Errorf("bb_tunnel_batch_replays_total = %v, want >= 1", n)
	}

	// The source side keeps working against the recovered destination:
	// a fresh batch over the healed channel must apply at both ends.
	more := []signalling.TunnelOp{
		{Action: signalling.OpAlloc, SubFlowID: "post-crash", Bandwidth: int64(units.Mbps)},
	}
	results, err = w.BBs[src].TunnelBatch(spec.RARID, more, u.DN())
	if err != nil || !results[0].Granted {
		t.Fatalf("post-recovery batch: results=%+v err=%v", results, err)
	}
	if _, ok := epPost.Lookup("post-crash"); !ok {
		t.Error("post-recovery allocation missing at the destination")
	}
}

// TestTunnelGracefulRestartKeepsSubFlows covers the group-commit path:
// a graceful stop (journal flushed on Close) followed by a rebuild must
// reproduce the endpoint exactly, including sub-flows journaled through
// the non-batched single-op handlers.
func TestTunnelGracefulRestartKeepsSubFlows(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  2,
		Capacity:    1000 * units.Mbps,
		CallTimeout: 2 * time.Second,
		StateDir:    t.TempDir(),
		FsyncPolicy: "batch",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	spec := u.NewSpec(experiment.SpecOptions{
		DestDomain: w.DestDomain(), Bandwidth: 50 * units.Mbps, Tunnel: true,
	})
	if res, err := u.ReserveE2E(spec); err != nil || !res.Granted {
		t.Fatalf("tunnel establishment: res=%+v err=%v", res, err)
	}
	src := w.BBs[w.SourceDomain()]
	for i := 0; i < 4; i++ {
		if err := src.AllocateTunnelFlow(spec.RARID, fmt.Sprintf("f-%d", i), 10*units.Mbps, u.DN()); err != nil {
			t.Fatalf("sub-flow %d: %v", i, err)
		}
	}
	if err := src.ReleaseTunnelFlow(spec.RARID, "f-2"); err != nil {
		t.Fatal(err)
	}
	want := tunnelSnapshot(t, w, w.DestDomain(), spec.RARID)

	if err := w.StopDomain(w.DestDomain()); err != nil {
		t.Fatal(err)
	}
	if err := w.RestartDomainFromJournal(w.DestDomain()); err != nil {
		t.Fatal(err)
	}
	if got := tunnelSnapshot(t, w, w.DestDomain(), spec.RARID); !bytes.Equal(want, got) {
		t.Errorf("restarted endpoint differs after graceful stop\n want: %s\n  got: %s", want, got)
	}
	ep, _ := w.BBs[w.DestDomain()].Tunnel(spec.RARID)
	if ep.Used() != 30*units.Mbps || ep.Len() != 3 {
		t.Errorf("recovered endpoint: used=%v len=%d, want 30Mb/s over 3 sub-flows", ep.Used(), ep.Len())
	}
}
