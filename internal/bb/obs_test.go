package bb_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/obs"
	"e2eqos/internal/policy"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// traceWorld builds an observability-enabled chain with a tracing user.
func traceWorld(t *testing.T, cfg experiment.WorldConfig) (*experiment.World, *experiment.User) {
	t.Helper()
	cfg.EnableObs = true
	w, err := experiment.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	u.Trace = true
	return w, u
}

// assertOneSpanPerDomain checks the structural invariant of a complete
// trace: exactly one span per hop, each domain appearing once, in
// destination-first wire order.
func assertOneSpanPerDomain(t *testing.T, w *experiment.World, spans []obs.Span) {
	t.Helper()
	if len(spans) != len(w.Domains) {
		t.Fatalf("trace has %d spans, want one per hop (%d): %+v", len(spans), len(w.Domains), spans)
	}
	for i, s := range spans {
		want := w.Domains[len(w.Domains)-1-i]
		if s.Domain != want {
			t.Errorf("span %d is from %s, want %s (destination-first order)", i, s.Domain, want)
		}
	}
}

// TestTracePropagatesAcrossChain: a traced reserve over a 4-domain
// chain must come back with one populated span per hop.
func TestTracePropagatesAcrossChain(t *testing.T) {
	w, u := traceWorld(t, experiment.WorldConfig{NumDomains: 4})
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("denied: %s", res.Reason)
	}
	if res.TraceID == "" {
		t.Fatal("grant does not echo the trace id")
	}
	assertOneSpanPerDomain(t, w, res.Trace)
	for _, s := range res.Trace {
		if s.Verdict != obs.VerdictGranted {
			t.Errorf("span %s verdict %q, want %q", s.Domain, s.Verdict, obs.VerdictGranted)
		}
		if s.TotalNS <= 0 || s.PolicyNS <= 0 || s.AdmitNS <= 0 || s.VerifyNS <= 0 {
			t.Errorf("span %s has unpopulated durations: %+v", s.Domain, s)
		}
	}
	// Non-destination hops forwarded, so their downstream time is real.
	for _, s := range res.Trace[1:] {
		if s.DownstreamNS <= 0 {
			t.Errorf("forwarding span %s has no downstream time", s.Domain)
		}
	}
	// The destination span never forwards.
	if res.Trace[0].DownstreamNS != 0 {
		t.Errorf("destination span records downstream time %d", res.Trace[0].DownstreamNS)
	}
}

// TestTraceIdentifiesDenyingHop: when a mid-chain policy refuses, the
// trace must name that hop as denied and mark the hops above it as
// rolled back.
func TestTraceIdentifiesDenyingHop(t *testing.T) {
	w, u := traceWorld(t, experiment.WorldConfig{
		NumDomains: 4,
		Policies:   map[string]*policy.Policy{"Domain2": policy.MustParse("deny-all", "deny")},
	})
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("granted through a deny-all policy")
	}
	// The chain stopped at Domain2: spans exist for hops 0..2 only,
	// destination-first (Domain2 refused, Domain1/Domain0 rolled back).
	if len(res.Trace) != 3 {
		t.Fatalf("trace has %d spans, want 3 (the hops the RAR reached): %+v", len(res.Trace), res.Trace)
	}
	deny := res.Trace[0]
	if deny.Domain != "Domain2" || deny.Verdict != obs.VerdictDenied {
		t.Fatalf("deepest span is %s/%s, want Domain2/%s", deny.Domain, deny.Verdict, obs.VerdictDenied)
	}
	if deny.Reason == "" {
		t.Error("denying span carries no reason")
	}
	for _, s := range res.Trace[1:] {
		if s.Verdict != obs.VerdictRolledBack {
			t.Errorf("upstream span %s verdict %q, want %q", s.Domain, s.Verdict, obs.VerdictRolledBack)
		}
	}
}

// deadDialer refuses every dial — a hop whose downstream link is
// entirely down, failing fast enough for its error span to reach the
// user inside the upstream deadlines.
type deadDialer struct{}

func (deadDialer) Dial(addr string) (transport.Conn, error) {
	return nil, fmt.Errorf("obs test: link to %q down", addr)
}

// TestTraceMarksFailedHop: when a hop's downstream link is down, that
// hop's span must carry the error verdict so the trace alone answers
// "which hop failed" — distinct from a hop that itself refused.
func TestTraceMarksFailedHop(t *testing.T) {
	w, u := traceWorld(t, experiment.WorldConfig{
		NumDomains:  4,
		CallTimeout: time.Second,
		WrapDialer: func(name string, d transport.Dialer) transport.Dialer {
			if name != "Domain1" {
				return d
			}
			return deadDialer{}
		},
	})
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("granted through a dead link")
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace has %d spans, want 2 (Domain1 errored, Domain0 rolled back): %+v", len(res.Trace), res.Trace)
	}
	errSpan := res.Trace[0]
	if errSpan.Domain != "Domain1" || errSpan.Verdict != obs.VerdictError {
		t.Fatalf("deepest span is %s/%s, want Domain1/%s", errSpan.Domain, errSpan.Verdict, obs.VerdictError)
	}
	if errSpan.Reason == "" {
		t.Error("error span carries no reason")
	}
	if res.Trace[1].Verdict != obs.VerdictRolledBack {
		t.Errorf("source span verdict %q, want %q", res.Trace[1].Verdict, obs.VerdictRolledBack)
	}
}

// dropFirstResponseDialer consumes and discards the first response
// crossing any of its connections, then fails that Recv — forcing the
// caller into exactly one retry whose retransmission hits the
// downstream hop's idempotent-replay path.
type dropFirstResponseDialer struct {
	inner transport.Dialer
	drops atomic.Int32
}

func (d *dropFirstResponseDialer) Dial(addr string) (transport.Conn, error) {
	conn, err := d.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &dropFirstResponseConn{Conn: conn, d: d}, nil
}

type dropFirstResponseConn struct {
	transport.Conn
	d *dropFirstResponseDialer
}

func (c *dropFirstResponseConn) Recv() ([]byte, error) {
	data, err := c.Conn.Recv()
	if err != nil {
		return data, err
	}
	if c.d.drops.Add(-1) >= 0 {
		// The downstream hop HAS processed the request (we just read its
		// response); losing it here models a response lost in transit.
		return nil, fmt.Errorf("obs test: response dropped")
	}
	return data, nil
}

// TestTraceSurvivesRetryWithoutDuplicateSpans: a lost response makes
// the source hop retransmit; the downstream hop replays its recorded
// outcome. The final trace must still hold exactly one span per
// domain, with the source span accounting for the retry.
func TestTraceSurvivesRetryWithoutDuplicateSpans(t *testing.T) {
	flaky := &dropFirstResponseDialer{}
	flaky.drops.Store(1)
	w, u := traceWorld(t, experiment.WorldConfig{
		NumDomains:   3,
		CallTimeout:  time.Second,
		MaxRetries:   1,
		RetryBackoff: 5 * time.Millisecond,
		WrapDialer: func(name string, d transport.Dialer) transport.Dialer {
			if name != "Domain0" {
				return d
			}
			flaky.inner = d
			return flaky
		},
	})
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("denied despite retry budget: %s", res.Reason)
	}
	assertOneSpanPerDomain(t, w, res.Trace)
	src := res.Trace[len(res.Trace)-1]
	if src.Retries != 1 {
		t.Errorf("source span records %d retries, want 1", src.Retries)
	}
	// The metrics agree: one retry, one replay, both at the right hops.
	if got := w.Metrics["Domain0"].Snapshot()["bb_retries_total"]; got != 1 {
		t.Errorf("Domain0 bb_retries_total = %v, want 1", got)
	}
	if got := w.Metrics["Domain1"].Snapshot()["bb_replays_total"]; got != 1 {
		t.Errorf("Domain1 bb_replays_total = %v, want 1", got)
	}
}

// TestUntracedReserveCarriesNoSpans: without the opt-in trace id the
// result must stay span-free — the zero-cost disabled path.
func TestUntracedReserveCarriesNoSpans(t *testing.T) {
	w, u := traceWorld(t, experiment.WorldConfig{NumDomains: 3})
	u.Trace = false
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("denied: %s", res.Reason)
	}
	if res.TraceID != "" || len(res.Trace) != 0 {
		t.Fatalf("untraced reserve came back with trace data: id=%q spans=%d", res.TraceID, len(res.Trace))
	}
}

// TestBrokerMetricsLifecycle pins the grant-path counters and gauges:
// a reserve over 3 domains increments received everywhere, forwarded
// everywhere but the destination, and the reserved-bandwidth gauge
// tracks grant and cancel.
func TestBrokerMetricsLifecycle(t *testing.T) {
	w, u := traceWorld(t, experiment.WorldConfig{NumDomains: 3})
	// A window already in progress, so the reserved-bandwidth gauge
	// (sampled "right now") sees the commitment immediately.
	spec := u.NewSpec(experiment.SpecOptions{
		DestDomain: w.DestDomain(),
		Bandwidth:  10 * units.Mbps,
		Window:     units.NewWindow(w.Clock()().Add(-time.Second), time.Hour),
	})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("denied: %s", res.Reason)
	}
	for i, name := range w.Domains {
		snap := w.Metrics[name].Snapshot()
		if snap["bb_rars_received_total"] != 1 {
			t.Errorf("%s received %v RARs, want 1", name, snap["bb_rars_received_total"])
		}
		wantFwd := 1.0
		if i == len(w.Domains)-1 {
			wantFwd = 0
		}
		if snap["bb_rars_forwarded_total"] != wantFwd {
			t.Errorf("%s forwarded %v, want %v", name, snap["bb_rars_forwarded_total"], wantFwd)
		}
		if snap["bb_rars_granted_total"] != 1 {
			t.Errorf("%s granted %v, want 1", name, snap["bb_rars_granted_total"])
		}
		if got := snap["bb_reserved_bps"]; got != float64(10*units.Mbps) {
			t.Errorf("%s reserved gauge %v, want %v", name, got, float64(10*units.Mbps))
		}
		if snap["bb_handle_seconds_count"] != 1 {
			t.Errorf("%s handle histogram count %v, want 1", name, snap["bb_handle_seconds_count"])
		}
	}
	// End-to-end grant latency is observed at the source hop only.
	if got := w.CounterTotal("bb_grant_seconds_count"); got != 1 {
		t.Errorf("bb_grant_seconds observed %v times across the chain, want 1", got)
	}
	if err := u.Cancel(w.SourceDomain(), spec.RARID); err != nil {
		t.Fatal(err)
	}
	for _, name := range w.Domains {
		snap := w.Metrics[name].Snapshot()
		if snap["bb_cancels_total"] != 1 {
			t.Errorf("%s saw %v cancels, want 1", name, snap["bb_cancels_total"])
		}
		if snap["bb_reserved_bps"] != 0 {
			t.Errorf("%s reserved gauge %v after cancel, want 0", name, snap["bb_reserved_bps"])
		}
	}
}
