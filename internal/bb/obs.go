package bb

import (
	"e2eqos/internal/obs"
)

// bbMetrics is the broker's pre-resolved metric handles. With no
// registry configured every handle is nil and every operation no-ops,
// so the instrumented hot path costs a nil check per event.
type bbMetrics struct {
	// RAR lifecycle counters.
	received  *obs.Counter // reserve requests received
	forwarded *obs.Counter // reserves forwarded downstream
	granted   *obs.Counter // reserves granted at this hop
	denied    *obs.Counter // reserves denied or failed at this hop
	cancels   *obs.Counter // cancel requests received
	// Robustness-layer counters.
	rollbacks       *obs.Counter // optimistic admissions rolled back
	retries         *obs.Counter // downstream call retries
	breakerOpens    *obs.Counter // circuit-breaker open transitions
	replays         *obs.Counter // idempotent replays of recorded outcomes
	clientEvictions *obs.Counter // pooled peer clients retired after faults
	// Multipath routing counters.
	reroutes     *obs.Counter // RARs re-forwarded onto an alternate disjoint path
	rerouteSkips *obs.Counter // candidate paths skipped because the first hop's breaker was open
	splits       *obs.Counter // reservations split across disjoint paths
	splitFails   *obs.Counter // split attempts rolled back after a partial denial or failure
	// Saga-layer counters.
	sagasStarted       *obs.Counter // multi-step sagas begun
	sagasCommitted     *obs.Counter // sagas whose forward path fully succeeded
	sagasAborted       *obs.Counter // sagas aborted into compensation
	sagaCompensations  *obs.Counter // compensations executed to completion
	rollbacksAbandoned *obs.Counter // compensations abandoned after exhausting retries
	// Tunnel sub-flow hot-path counters.
	tunnelAllocs       *obs.Counter // sub-flow allocations admitted
	tunnelReleases     *obs.Counter // sub-flow releases applied
	tunnelBatches      *obs.Counter // tunnel batches applied
	tunnelBatchReplays *obs.Counter // batch retransmissions answered from the replay cache
	tunnelDenied       *obs.Counter // sub-flow ops denied (capacity, duplicates, rollbacks)
	// Durability-layer counters.
	journalAppends      *obs.Counter // records appended to the journal
	journalFsyncBatches *obs.Counter // fsyncs (one per batch under FsyncBatch)
	journalErrors       *obs.Counter // journal write-path failures
	checkpoints         *obs.Counter // snapshot+truncate rotations
	recoveredRecords    *obs.Counter // records replayed at boot
	// Flight-recorder counters.
	eventsRecorded *obs.Counter // wide events appended to the event log
	eventsForced   *obs.Counter // events recorded because of a denial/error, not the sampler
	eventDrops     *obs.Counter // events lost to event-log write failures
	// Replication counters (zero on an unreplicated broker).
	replRecordsStreamed    *obs.Counter // journal frames shipped to followers
	replRecordsApplied     *obs.Counter // streamed frames applied and re-journaled (follower side)
	replSnapshotsSent      *obs.Counter // catch-up snapshots shipped to followers
	replSnapshotsInstalled *obs.Counter // catch-up snapshots installed (follower side)
	replAcks               *obs.Counter // follower acknowledgements processed
	replStreamErrors       *obs.Counter // stream transport/apply failures (either side)
	replElections          *obs.Counter // elections won by this replica
	replRedirects          *obs.Counter // mutating requests redirected to the leader
	replCommitTimeouts     *obs.Counter // settles that proceeded without majority ack
	// Latency quantile histograms (seconds). Striped lock-free
	// histograms: Observe is safe on the sub-flow hot path, and the
	// admin endpoint and experiment reports read p50/p99/p999 off them.
	handleSeconds        *obs.QHist // per-hop reserve handling time
	downstreamSeconds    *obs.QHist // downstream round trip incl. retries
	grantSeconds         *obs.QHist // end-to-end grant time at the source hop
	journalAppendSeconds *obs.QHist // journal append latency (buffer or disk)
	tunnelBatchSeconds   *obs.QHist // destination-side batch application time
	// recoverySeconds is how long the boot-time journal recovery took
	// (0 on a memory-only broker).
	recoverySeconds *obs.Gauge
}

// newBBMetrics registers the broker's counters and histograms on r.
// The registry must be per-broker: names are registered exactly once.
func newBBMetrics(r *obs.Registry) bbMetrics {
	if r == nil {
		return bbMetrics{}
	}
	return bbMetrics{
		received:     r.Counter("bb_rars_received_total", "reserve requests received"),
		forwarded:    r.Counter("bb_rars_forwarded_total", "reserve requests forwarded downstream"),
		granted:      r.Counter("bb_rars_granted_total", "reserve requests granted at this hop"),
		denied:       r.Counter("bb_rars_denied_total", "reserve requests denied or failed at this hop"),
		cancels:      r.Counter("bb_cancels_total", "cancel requests received"),
		rollbacks:    r.Counter("bb_rollbacks_total", "optimistic admissions rolled back after downstream denial or failure"),
		retries:      r.Counter("bb_retries_total", "downstream call retries after transport failures"),
		breakerOpens: r.Counter("bb_breaker_opens_total", "per-peer circuit breaker open transitions"),
		replays:      r.Counter("bb_replays_total", "idempotent replays of recorded RAR outcomes"),
		clientEvictions: r.Counter("bb_client_evictions_total",
			"pooled peer clients retired after transport faults or dead demux loops"),

		reroutes:     r.Counter("bb_reroutes_total", "reserve requests re-forwarded onto an alternate disjoint path"),
		rerouteSkips: r.Counter("bb_reroute_path_skips_total", "candidate paths skipped because the first hop's circuit breaker was open"),
		splits:       r.Counter("bb_splits_total", "reservations split across multiple disjoint paths"),
		splitFails:   r.Counter("bb_split_failures_total", "split reservations rolled back after a partial denial or failure"),

		sagasStarted:       r.Counter("bb_sagas_started_total", "multi-step compensation sagas begun"),
		sagasCommitted:     r.Counter("bb_sagas_committed_total", "sagas committed after their forward path fully succeeded"),
		sagasAborted:       r.Counter("bb_sagas_aborted_total", "sagas aborted into compensation"),
		sagaCompensations:  r.Counter("bb_saga_compensations_total", "saga compensations executed to completion"),
		rollbacksAbandoned: r.Counter("bb_rollbacks_abandoned_total", "rollback compensations abandoned after exhausting retries, downstream state unknown"),

		tunnelAllocs:       r.Counter("bb_tunnel_allocs_total", "tunnel sub-flow allocations admitted"),
		tunnelReleases:     r.Counter("bb_tunnel_releases_total", "tunnel sub-flow releases applied"),
		tunnelBatches:      r.Counter("bb_tunnel_batches_total", "tunnel sub-flow batches applied"),
		tunnelBatchReplays: r.Counter("bb_tunnel_batch_replays_total", "batch retransmissions answered from the replay cache"),
		tunnelDenied:       r.Counter("bb_tunnel_ops_denied_total", "tunnel sub-flow operations denied or rolled back"),

		journalAppends:      r.Counter("bb_journal_appends_total", "records appended to the write-ahead journal"),
		journalFsyncBatches: r.Counter("bb_journal_fsync_batches_total", "journal fsyncs (one per group-commit batch under the batch policy)"),
		journalErrors:       r.Counter("bb_journal_errors_total", "journal write-path failures (durability degraded until restart)"),
		checkpoints:         r.Counter("bb_checkpoints_total", "journal snapshot+truncate rotations"),
		recoveredRecords:    r.Counter("bb_recovered_records_total", "journal records replayed during boot-time recovery"),

		eventsRecorded: r.Counter("bb_events_recorded_total", "wide flight-recorder events appended to the event log"),
		eventsForced:   r.Counter("bb_events_forced_total", "flight-recorder events forced by a denial, rollback or downstream error"),
		eventDrops:     r.Counter("bb_event_drops_total", "flight-recorder events lost to event-log write failures"),

		replRecordsStreamed:    r.Counter("bb_repl_records_streamed_total", "journal frames shipped to followers"),
		replRecordsApplied:     r.Counter("bb_repl_records_applied_total", "streamed journal frames applied and re-journaled by this follower"),
		replSnapshotsSent:      r.Counter("bb_repl_snapshots_sent_total", "replication catch-up snapshots shipped to followers"),
		replSnapshotsInstalled: r.Counter("bb_repl_snapshots_installed_total", "replication catch-up snapshots installed by this follower"),
		replAcks:               r.Counter("bb_repl_acks_total", "follower stream acknowledgements processed by the leader"),
		replStreamErrors:       r.Counter("bb_repl_stream_errors_total", "replication stream transport or apply failures"),
		replElections:          r.Counter("bb_repl_elections_total", "replica-group elections won by this broker"),
		replRedirects:          r.Counter("bb_repl_redirects_total", "mutating requests redirected from this follower to the leader"),
		replCommitTimeouts:     r.Counter("bb_repl_commit_timeouts_total", "settlements that proceeded after the majority-ack wait timed out"),

		handleSeconds:        r.Quantile("bb_handle_seconds", "per-hop reserve handling time", 0, 0),
		downstreamSeconds:    r.Quantile("bb_downstream_seconds", "downstream call round trip including retries and backoff", 0, 0),
		grantSeconds:         r.Quantile("bb_grant_seconds", "end-to-end grant time observed at the source hop", 0, 0),
		journalAppendSeconds: r.Quantile("bb_journal_append_seconds", "journal append latency as seen by the mutating call", 0, 0),
		tunnelBatchSeconds:   r.Quantile("bb_tunnel_batch_seconds", "destination-side tunnel batch application time", 0, 0),

		recoverySeconds: r.Gauge("bb_recovery_seconds", "boot-time journal recovery duration (0 when memory-only)"),
	}
}

// registerGauges exposes the broker's live state as sampled-on-scrape
// gauges: double bookkeeping would drift, the table and tunnel
// registry already know the truth.
func (b *BB) registerGauges(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("bb_capacity_bps", "premium aggregate capacity (bits per second)",
		func() float64 { return float64(b.cfg.Capacity) })
	r.GaugeFunc("bb_reserved_bps", "premium bandwidth committed right now (bits per second)",
		func() float64 { return float64(b.table.CommittedAt(b.cfg.Clock())) })
	r.GaugeFunc("bb_open_tunnels", "tunnel endpoints registered at this broker",
		func() float64 { return float64(b.tunnels.reg.Len()) })
	r.GaugeFunc("bb_tunnel_subflows", "live sub-flow allocations across all tunnels",
		func() float64 { return float64(b.tunnels.reg.SubFlowTotal()) })
	r.GaugeFunc("bb_open_rars", "RAR route entries currently held (in-flight plus granted)",
		func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(len(b.routes))
		})
	r.GaugeFunc("bb_late_responses_dropped", "downstream responses that arrived after their call gave up",
		func() float64 { return float64(b.pool.lateDropped()) })
	r.GaugeFunc("bb_sagas_live", "compensation sagas currently open (active or compensating)",
		func() float64 { return float64(b.sagas.Live()) })
	if b.repl != nil {
		r.GaugeFunc("bb_repl_is_leader", "1 while this replica leads its group",
			func() float64 {
				if b.ReplicationStatus().Leader {
					return 1
				}
				return 0
			})
		r.GaugeFunc("bb_repl_term", "current replica-group election term",
			func() float64 { return float64(b.ReplicationStatus().Term) })
		r.GaugeFunc("bb_repl_commit_seq", "highest majority-acknowledged journal sequence",
			func() float64 { return float64(b.ReplicationStatus().CommitSeq) })
		r.GaugeFunc("bb_repl_applied_seq", "highest streamed journal sequence applied by this follower",
			func() float64 { return float64(b.ReplicationStatus().AppliedSeq) })
		r.GaugeFunc("bb_repl_lag_records", "journal records not yet majority-acknowledged (leader) or not yet applied (follower)",
			func() float64 {
				s := b.ReplicationStatus()
				var lag int64
				if s.Leader {
					lag = s.JournalSeq - s.CommitSeq
				} else {
					lag = s.CommitSeq - s.AppliedSeq
				}
				if lag < 0 {
					lag = 0
				}
				return float64(lag)
			})
	}
}
