package bb_test

import (
	"strings"
	"testing"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/identity"
	"e2eqos/internal/signalling"
	"e2eqos/internal/tunnel"
	"e2eqos/internal/units"
)

// buildTunnelWorld establishes a tunnel over a fresh world and returns
// the world, the user and the tunnel spec.
func buildTunnelWorld(t *testing.T, domains int, aggregate units.Bandwidth) (*experiment.World, *experiment.User, string) {
	t.Helper()
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  domains,
		Capacity:    1000 * units.Mbps,
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	spec := u.NewSpec(experiment.SpecOptions{
		DestDomain: w.DestDomain(), Bandwidth: aggregate, Tunnel: true,
	})
	if res, err := u.ReserveE2E(spec); err != nil || !res.Granted {
		t.Fatalf("tunnel establishment: res=%+v err=%v", res, err)
	}
	return w, u, spec.RARID
}

// TestTunnelBatchPartialDenial: one over-capacity op inside a batch is
// denied at both ends while the others land, and the two endpoints
// agree on the allocated total afterwards.
func TestTunnelBatchPartialDenial(t *testing.T) {
	w, u, rarID := buildTunnelWorld(t, 2, 100*units.Mbps)
	src, dest := w.SourceDomain(), w.DestDomain()
	results, err := w.BBs[src].TunnelBatch(rarID, []signalling.TunnelOp{
		{Action: signalling.OpAlloc, SubFlowID: "f1", Bandwidth: int64(40 * units.Mbps)},
		{Action: signalling.OpAlloc, SubFlowID: "f2", Bandwidth: int64(40 * units.Mbps)},
		{Action: signalling.OpAlloc, SubFlowID: "f3", Bandwidth: int64(40 * units.Mbps)},
	}, u.DN())
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Granted || !results[1].Granted {
		t.Fatalf("in-capacity ops denied: %+v", results)
	}
	if results[2].Granted {
		t.Fatalf("over-capacity op granted: %+v", results[2])
	}
	for _, d := range []string{src, dest} {
		ep, ok := w.BBs[d].Tunnel(rarID)
		if !ok {
			t.Fatalf("%s: tunnel missing", d)
		}
		if ep.Used() != 80*units.Mbps || ep.Len() != 2 {
			t.Errorf("%s: used=%v len=%d, want 80Mb/s over 2 sub-flows", d, ep.Used(), ep.Len())
		}
	}
}

// TestTunnelBatchRollsBackLocalHalves: when the destination refuses an
// op the source already applied, the source's local half is undone —
// a denied alloc is released, a denied release is re-admitted with its
// original bandwidth.
func TestTunnelBatchRollsBackLocalHalves(t *testing.T) {
	w, u, rarID := buildTunnelWorld(t, 2, 100*units.Mbps)
	src, dest := w.SourceDomain(), w.DestDomain()
	srcEP, _ := w.BBs[src].Tunnel(rarID)

	// Desynchronise the two ends on purpose with direct destination
	// batches: "ghost" exists only at the destination, and after the
	// second batch "lonely" exists only at the source.
	if res, err := u.TunnelBatch(dest, &signalling.TunnelBatchPayload{
		TunnelRARID: rarID, BatchID: signalling.NewBatchID(), User: u.DN(),
		Ops: []signalling.TunnelOp{{Action: signalling.OpAlloc, SubFlowID: "ghost", Bandwidth: int64(10 * units.Mbps)}},
	}); err != nil || !res.Granted {
		t.Fatalf("seeding ghost at destination: res=%+v err=%v", res, err)
	}
	if results, err := w.BBs[src].TunnelBatch(rarID, []signalling.TunnelOp{
		{Action: signalling.OpAlloc, SubFlowID: "lonely", Bandwidth: int64(20 * units.Mbps)},
	}, u.DN()); err != nil || !results[0].Granted {
		t.Fatalf("allocating lonely: results=%+v err=%v", results, err)
	}
	if res, err := u.TunnelBatch(dest, &signalling.TunnelBatchPayload{
		TunnelRARID: rarID, BatchID: signalling.NewBatchID(), User: u.DN(),
		Ops: []signalling.TunnelOp{{Action: signalling.OpRelease, SubFlowID: "lonely"}},
	}); err != nil || !res.Granted {
		t.Fatalf("dropping lonely at destination: res=%+v err=%v", res, err)
	}

	// Alloc of "ghost": the source admits it, the destination refuses
	// the duplicate, the source must roll back.
	results, err := w.BBs[src].TunnelBatch(rarID, []signalling.TunnelOp{
		{Action: signalling.OpAlloc, SubFlowID: "ghost", Bandwidth: int64(10 * units.Mbps)},
	}, u.DN())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Granted {
		t.Fatalf("alloc of destination-held sub-flow granted: %+v", results[0])
	}
	if _, ok := srcEP.Lookup("ghost"); ok {
		t.Error("source kept its half of a remotely-denied alloc")
	}

	// Release of "lonely": the source frees it, the destination does
	// not know it, the source must re-admit it at the original size.
	results, err = w.BBs[src].TunnelBatch(rarID, []signalling.TunnelOp{
		{Action: signalling.OpRelease, SubFlowID: "lonely"},
	}, u.DN())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Granted {
		t.Fatalf("release unknown to the destination granted: %+v", results[0])
	}
	if bw, ok := srcEP.Lookup("lonely"); !ok || bw != 20*units.Mbps {
		t.Errorf("source half of remotely-denied release not restored: bw=%v ok=%t", bw, ok)
	}
}

// TestDuplicateTunnelRegistrationDenied is the regression for the
// destination-side registration bug: a tunnel reserve whose RAR id
// collides with a live endpoint used to silently shadow it (the
// Registry.Add error was discarded) — it must be a denial, with the
// admission rolled back everywhere and the original endpoint intact.
func TestDuplicateTunnelRegistrationDenied(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  3,
		Capacity:    1000 * units.Mbps,
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	spec := u.NewSpec(experiment.SpecOptions{
		DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps, Tunnel: true,
	})
	// Pre-provision an endpoint under the same RAR id at the
	// destination, as an operator would for an out-of-band aggregate.
	ep, err := tunnel.NewEndpoint(spec.RARID, 5*units.Mbps, spec.Window,
		identity.NewDN("Grid", "Elsewhere", "bb"), identity.NewDN("Grid", "Elsewhere", "bob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BBs[w.DestDomain()].RegisterTunnelEndpoint(ep); err != nil {
		t.Fatal(err)
	}
	// Registering the same id again is itself refused.
	if err := w.BBs[w.DestDomain()].RegisterTunnelEndpoint(ep); err == nil {
		t.Fatal("second registration of the same RAR id accepted")
	}

	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("tunnel reserve colliding with a live endpoint was granted")
	}
	if !strings.Contains(res.Reason, "tunnel registration") {
		t.Errorf("denial reason %q does not surface the registration conflict", res.Reason)
	}
	// Nothing stranded: the optimistic admissions along the chain were
	// all rolled back.
	for _, d := range w.Domains {
		if n := grantedIn(w, d); n != 0 {
			t.Errorf("%s: %d granted reservations after denial, want 0", d, n)
		}
	}
	// The pre-provisioned endpoint survived, unshadowed.
	got, ok := w.BBs[w.DestDomain()].Tunnel(spec.RARID)
	if !ok || got.Aggregate != 5*units.Mbps {
		t.Errorf("original endpoint displaced: ok=%t ep=%+v", ok, got)
	}
}
