package bb

import (
	"encoding/json"
	"fmt"

	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/saga"
	"e2eqos/internal/signalling"
)

// Saga integration: the broker's two compensation kinds, wired into
// the reusable coordinator in internal/saga. "cancel" undoes a
// downstream forward whose outcome is unknown or must be withdrawn
// (the persistent replacement for the old ad-hoc cancelDownstream
// goroutine); "release" undoes an optimistic local admission. Both are
// journal-backed through the broker's WAL, so a crashed broker resumes
// its rollback debt on recovery.

// cancelComp is the argument of a "cancel" compensation: withdraw the
// route key at the downstream peer.
type cancelComp struct {
	Peer identity.DN `json:"peer"`
	Key  string      `json:"key"`
}

// releaseComp is the argument of a "release" compensation: cancel the
// local admission held under Handle.
type releaseComp struct {
	Handle string `json:"handle"`
	Key    string `json:"key"`
}

// cancelAttempts bounds each compensation incarnation's retries. It is
// deliberately independent of (and larger than) Config.MaxRetries: a
// stranded reservation costs real bandwidth until its window expires,
// whereas a redundant cancel is refused harmlessly — and unlike the
// pre-saga rollback goroutine, an exhausted budget is now re-armed on
// restart because the debt is journaled.
const cancelAttempts = 5

// newSagaCoordinator builds the broker's coordinator with both
// executors registered. The journal attaches later (after recovery).
func (b *BB) newSagaCoordinator() *saga.Coordinator {
	c := saga.New(saga.Options{
		Backoff:     b.cfg.RetryBackoff,
		MaxAttempts: cancelAttempts,
		OnAborted:   func(string) { b.m.sagasAborted.Inc() },
		OnCompensated: func(id string, step saga.Step) {
			b.m.sagaCompensations.Inc()
			b.log.Info("saga: compensation settled", "saga", id, "kind", step.Kind)
		},
		OnAbandoned: func(id string, step saga.Step) { b.compAbandoned(id, step) },
	})
	c.RegisterExec("cancel", b.execCancelComp)
	c.RegisterExec("release", b.execReleaseComp)
	return c
}

// execCancelComp sends one cancel toward the peer. Transport failures
// schedule a retry; any protocol-level response — including a refusal
// for a key the peer never saw — counts as settled, exactly like the
// old best-effort rollback cancel.
func (b *BB) execCancelComp(data []byte) error {
	var c cancelComp
	if err := json.Unmarshal(data, &c); err != nil {
		return nil // malformed debt is unpayable; don't retry forever
	}
	client, err := b.clientFor(c.Peer)
	if err != nil {
		return err
	}
	_, err = client.CallTimeout(&signalling.Message{
		Type:   signalling.MsgCancel,
		Cancel: &signalling.CancelPayload{RARID: c.Key},
	}, b.cfg.CallTimeout)
	if err != nil {
		b.dropClient(c.Peer, client)
		return err
	}
	b.log.Info("rollback cancel settled downstream",
		obs.AttrRAR, c.Key, obs.AttrPeer, string(c.Peer))
	return nil
}

// execReleaseComp cancels the local admission. An unknown handle means
// the admission is already gone (cancelled through another path, or
// never replayed) — settled either way.
func (b *BB) execReleaseComp(data []byte) error {
	var rc releaseComp
	if err := json.Unmarshal(data, &rc); err != nil {
		return nil
	}
	if err := b.table.Cancel(rc.Handle); err == nil {
		b.m.rollbacks.Inc()
		b.log.Info("saga: released local admission", obs.AttrRAR, rc.Key, "handle", rc.Handle)
	}
	b.syncDataPlane()
	return nil
}

// compAbandoned surfaces a compensation this incarnation gave up on:
// bandwidth below the failed hop may stay stranded until the window
// expires. Counted, logged at error, and force-recorded — the journal
// still owes the debt, so a restarted broker retries it.
func (b *BB) compAbandoned(id string, step saga.Step) {
	b.m.rollbacksAbandoned.Inc()
	var key, peer string
	switch step.Kind {
	case "cancel":
		var c cancelComp
		_ = json.Unmarshal(step.Data, &c)
		key, peer = c.Key, string(c.Peer)
	case "release":
		var rc releaseComp
		_ = json.Unmarshal(step.Data, &rc)
		key = rc.Key
	}
	b.log.Error("rollback cancel abandoned, downstream state unknown",
		obs.AttrRAR, key, obs.AttrPeer, peer, "saga", id, "attempts", cancelAttempts)
	if b.cfg.Recorder != nil {
		b.m.eventsForced.Inc()
		b.appendEvent(&obs.Event{
			Kind:    obs.EventRollbackAbandoned,
			RARID:   key,
			Verdict: obs.VerdictError,
			Reason:  fmt.Sprintf("compensation %s to %s abandoned after %d attempts", step.Kind, peer, cancelAttempts),
		})
	}
}

// mintSagaID builds a unique saga id from the broker's epoch counter
// (epochs survive recovery, so restarted brokers never collide with
// journaled sagas).
func (b *BB) mintSagaID(prefix string) string {
	b.mu.Lock()
	b.rarEpoch++
	e := b.rarEpoch
	b.mu.Unlock()
	return fmt.Sprintf("%s#%d", prefix, e)
}

// cancelDownstream hands a downstream withdrawal to the saga layer: a
// one-step saga whose "cancel" compensation is retried with backoff
// and, being journaled, survives a crash (the pre-saga version was a
// fire-and-forget goroutine that died with the process).
func (b *BB) cancelDownstream(dn identity.DN, key string) {
	data, _ := json.Marshal(cancelComp{Peer: dn, Key: key})
	id := b.mintSagaID("cancel:" + key)
	b.m.sagasStarted.Inc()
	if err := b.sagas.RunOne(id, "cancel", data); err != nil {
		b.log.Error("saga: rollback cancel not scheduled", obs.AttrRAR, key, "err", err)
	}
}
