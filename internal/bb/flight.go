package bb

import (
	"time"

	"e2eqos/internal/obs"
	"e2eqos/internal/signalling"
)

// Flight-recorder integration: each settled request that was either
// sampled at its ingress hop or ended badly (denial, rollback,
// downstream error — the requests someone will ask about) becomes one
// wide binary event in the broker's bounded on-disk event log. With
// no Recorder configured every helper is a nil check.

// appendEvent stamps the broker's identity and clock onto ev and
// writes it. Event-log failures are counted and logged, never
// propagated: telemetry must not fail the request it observes.
func (b *BB) appendEvent(ev *obs.Event) {
	ev.Domain = b.cfg.Domain
	ev.TimeNS = b.cfg.Clock().UnixNano()
	if err := b.cfg.Recorder.Append(ev); err != nil {
		b.m.eventDrops.Inc()
		b.log.Warn("flight recorder: append failed", "err", err)
		return
	}
	b.m.eventsRecorded.Inc()
}

// recordReserveEvent records this hop's settlement of a reserve RAR.
// rarID and user may be empty when the request failed before
// verification produced a spec.
func (b *BB) recordReserveEvent(rarID, user string, payload *signalling.ReservePayload, resp *signalling.Message, t0 time.Time) {
	if b.cfg.Recorder == nil || resp == nil || resp.Result == nil {
		return
	}
	forced := !resp.Result.Granted
	if !payload.Sampled && !forced {
		return
	}
	ev := obs.Event{
		Kind:       obs.EventReserve,
		TraceID:    payload.TraceID,
		RARID:      rarID,
		User:       user,
		Reason:     resp.Result.Reason,
		Bytes:      len(payload.EnvelopeData),
		DurationNS: time.Since(t0).Nanoseconds(),
		Sampled:    payload.Sampled,
		Spans:      resp.Result.Trace,
	}
	if resp.Result.Granted {
		ev.Verdict = obs.VerdictGranted
	} else {
		ev.Verdict = obs.VerdictDenied
	}
	// This hop's span is stacked last on the return path; its verdict
	// distinguishes an own denial from a downstream error or a
	// rolled-back admission, and carries the retry count.
	if n := len(resp.Result.Trace); n > 0 {
		top := resp.Result.Trace[n-1]
		if top.Verdict != "" {
			ev.Verdict = top.Verdict
		}
		ev.Retries = top.Retries
	}
	if forced {
		b.m.eventsForced.Inc()
	}
	b.appendEvent(&ev)
}

// recordBatchEvent records one endpoint's settlement of a tunnel
// sub-flow batch — the destination handler and the source-side
// TunnelBatch API both report through it, under the batch's trace id.
func (b *BB) recordBatchEvent(payload *signalling.TunnelBatchPayload, ops int, verdict, reason string, t0 time.Time) {
	if b.cfg.Recorder == nil {
		return
	}
	forced := verdict != obs.VerdictGranted
	if !payload.Sampled && !forced {
		return
	}
	if forced {
		b.m.eventsForced.Inc()
	}
	b.appendEvent(&obs.Event{
		Kind:       obs.EventTunnelBatch,
		TraceID:    payload.TraceID,
		RARID:      payload.TunnelRARID,
		User:       string(payload.User),
		Verdict:    verdict,
		Reason:     reason,
		Ops:        ops,
		DurationNS: time.Since(t0).Nanoseconds(),
		Sampled:    payload.Sampled,
	})
}
