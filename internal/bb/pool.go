package bb

import (
	"errors"
	"sync"
	"sync/atomic"

	"e2eqos/internal/identity"
	"e2eqos/internal/signalling"
)

// errPoolClosed is returned by get after closeAll: the broker is
// shutting down and no new connections may be established.
var errPoolClosed = errors.New("bb: client pool closed")

// clientPool keeps one multiplexed signalling client per peer broker.
// It owns the connection lifecycle the retry/breaker layer above it
// relies on: a broken client (transport error observed by a caller, or
// a demux loop that died without anyone calling) is retired and the
// next get redials, transparently. Dials are singleflighted per peer —
// a slot mutex is held across the dial — so a burst of concurrent
// callers shares one connection instead of racing N dials for one
// cache slot the way the old ad-hoc client map did.
type clientPool struct {
	dial    func(dn identity.DN) (*signalling.Client, error)
	onEvict func() // counts retirements (never nil; no-op without metrics)

	mu     sync.Mutex // guards slots and closed
	slots  map[identity.DN]*poolSlot
	closed bool

	// retiredLate accumulates LateDropped from retired clients so the
	// broker-wide late-response gauge survives eviction. Snapshotted at
	// retirement: drops during a retired client's drain are not counted.
	retiredLate atomic.Int64
}

// poolSlot is the per-peer entry. Its mutex serializes dialing and
// replacement for that peer only, so a slow dial to one neighbour
// never blocks calls to another. The cached pointer shadows client for
// lock-free readers: it is updated on every assignment under mu, and
// lateDropped reads it without the mutex — a metrics scrape must never
// queue behind a dial in flight (the mutex is deliberately held across
// p.dial for singleflighting).
type poolSlot struct {
	mu     sync.Mutex
	client *signalling.Client
	cached atomic.Pointer[signalling.Client]
}

// setClient assigns the slot's client under s.mu, keeping the
// lock-free shadow in sync.
func (s *poolSlot) setClient(c *signalling.Client) {
	s.client = c
	s.cached.Store(c)
}

func newClientPool(dial func(dn identity.DN) (*signalling.Client, error), onEvict func()) *clientPool {
	if onEvict == nil {
		onEvict = func() {}
	}
	return &clientPool{dial: dial, onEvict: onEvict, slots: make(map[identity.DN]*poolSlot)}
}

func (p *clientPool) slot(dn identity.DN) (*poolSlot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, false
	}
	s, ok := p.slots[dn]
	if !ok {
		s = &poolSlot{}
		p.slots[dn] = s
	}
	return s, true
}

// get returns a live client to dn, dialing if the slot is empty or its
// client's demux loop has died (a fault the owner may never have seen
// as a failed call — e.g. the peer closed an idle connection).
func (p *clientPool) get(dn identity.DN) (*signalling.Client, error) {
	s, ok := p.slot(dn)
	if !ok {
		return nil, errPoolClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client != nil {
		if s.client.Alive() {
			return s.client, nil
		}
		p.retire(s.client)
		s.setClient(nil)
	}
	c, err := p.dial(dn)
	if err != nil {
		return nil, err
	}
	s.setClient(c)
	return c, nil
}

// evict retires the cached client to dn if it is still the given
// instance, so the next get redials instead of reusing a connection
// whose state is unknown after a transport failure. A concurrent
// caller that already evicted and redialed is left alone.
func (p *clientPool) evict(dn identity.DN, c *signalling.Client) {
	p.mu.Lock()
	s := p.slots[dn]
	p.mu.Unlock()
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.client == c {
		p.retire(c)
		s.setClient(nil)
	}
	s.mu.Unlock()
}

// retire counts the eviction and drain-closes the client: calls still
// multiplexed on the connection (other goroutines mid-call when one
// observed a timeout) complete or expire on their own before the
// connection actually closes.
func (p *clientPool) retire(c *signalling.Client) {
	p.onEvict()
	p.retiredLate.Add(c.LateDropped())
	c.CloseWhenIdle()
}

// lateDropped sums orphaned responses across live and retired clients,
// for the broker's late-response gauge. It reads each slot's lock-free
// client shadow instead of taking s.mu: get holds that mutex across a
// dial, and a metrics scrape stalling behind a hung dial to one dead
// peer would freeze the whole admin endpoint (a scrape is the wrong
// place to pay a connection-establishment deadline). The shadow may
// trail an in-flight replacement by one assignment; the gauge is
// sampled, not accounting.
func (p *clientPool) lateDropped() int64 {
	total := p.retiredLate.Load()
	p.mu.Lock()
	slots := make([]*poolSlot, 0, len(p.slots))
	for _, s := range p.slots {
		slots = append(slots, s)
	}
	p.mu.Unlock()
	for _, s := range slots {
		if c := s.cached.Load(); c != nil {
			total += c.LateDropped()
		}
	}
	return total
}

// closeAll hard-closes every pooled client and refuses further gets;
// broker shutdown, where draining has no value.
func (p *clientPool) closeAll() {
	p.mu.Lock()
	p.closed = true
	slots := make([]*poolSlot, 0, len(p.slots))
	for _, s := range p.slots {
		slots = append(slots, s)
	}
	p.slots = make(map[identity.DN]*poolSlot)
	p.mu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		if s.client != nil {
			s.client.Close()
			s.setClient(nil)
		}
		s.mu.Unlock()
	}
}
