package bb_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/resv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// grantedCount sums granted reservations across every domain's table.
func grantedCount(w *experiment.World) int {
	n := 0
	for _, broker := range w.BBs {
		for _, r := range broker.Table().All() {
			if r.Status == resv.Granted {
				n++
			}
		}
	}
	return n
}

// waitForCleanTables polls until no domain holds a granted reservation;
// rollback after a lost response is asynchronous, so eventual emptiness
// is the contract.
func waitForCleanTables(t *testing.T, w *experiment.World) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := grantedCount(w)
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d reservations still granted after the rollback window", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// faultAt wraps a single domain's outbound dialer with the given fault
// profile, leaving every other hop healthy.
func faultAt(domain string, cfg transport.FaultConfig) func(string, transport.Dialer) transport.Dialer {
	return func(name string, d transport.Dialer) transport.Dialer {
		if name != domain {
			return d
		}
		return transport.NewFaultyDialer(d, cfg)
	}
}

// TestMidPathHangDeniesWithinDeadline is the headline robustness
// scenario: in a 5-domain chain the mid-path broker's outbound link
// hangs. The user must still receive a signed denial within the
// configured deadline budget, and no domain may keep an optimistic
// admission on its books.
func TestMidPathHangDeniesWithinDeadline(t *testing.T) {
	const hopTimeout = 150 * time.Millisecond
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  5,
		CallTimeout: hopTimeout,
		WrapDialer:  faultAt("Domain1", transport.FaultConfig{HangProb: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	start := time.Now()
	res, err := u.ReserveE2E(spec)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("user got a transport error, want a protocol denial: %v", err)
	}
	if res.Granted {
		t.Fatal("reservation granted through a hung mid-path hop")
	}
	// User budget is hopTimeout scaled by path length (clientTo); the
	// denial must land well inside it.
	if budget := hopTimeout * time.Duration(len(w.Domains)+1); elapsed > budget {
		t.Errorf("denial took %v, want < %v", elapsed, budget)
	}
	if len(res.Approvals) == 0 {
		t.Fatal("denial carries no signed approvals")
	}
	if err := w.VerifyApprovals(res); err != nil {
		t.Fatalf("approval signature check: %v", err)
	}
	waitForCleanTables(t, w)
}

// TestLostResponsesRollBackEveryDomain drops every response on the
// source broker's outbound connections: the downstream chain fully
// admits the reservation, but the grant never reaches Domain0. The
// user must see a denial and the best-effort downstream cancel must
// eventually clear all five tables.
func TestLostResponsesRollBackEveryDomain(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  5,
		CallTimeout: 150 * time.Millisecond,
		WrapDialer:  faultAt("Domain0", transport.FaultConfig{RecvDropProb: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatalf("user got a transport error, want a protocol denial: %v", err)
	}
	if res.Granted {
		t.Fatal("granted despite the source broker never seeing a response")
	}
	if err := w.VerifyApprovals(res); err != nil {
		t.Fatalf("approval signature check: %v", err)
	}
	waitForCleanTables(t, w)
}

// TestBreakerFailsFastAfterThreshold verifies the per-peer circuit
// breaker: once consecutive timeouts reach the threshold, further
// downstream calls are refused immediately instead of each burning a
// full deadline.
func TestBreakerFailsFastAfterThreshold(t *testing.T) {
	const hopTimeout = 200 * time.Millisecond
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:       2,
		CallTimeout:      hopTimeout,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		WrapDialer:       faultAt("Domain0", transport.FaultConfig{HangProb: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	reserve := func() (*time.Duration, string) {
		spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
		start := time.Now()
		res, err := u.ReserveE2E(spec)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("user got a transport error, want a protocol denial: %v", err)
		}
		if res.Granted {
			t.Fatal("granted through a hung downstream hop")
		}
		return &elapsed, res.Reason
	}

	// Two timed-out calls trip the breaker...
	reserve()
	reserve()
	// ...so the third is refused without waiting out the deadline.
	elapsed, reason := reserve()
	if *elapsed >= hopTimeout {
		t.Errorf("post-trip denial took %v, want fail-fast under %v", *elapsed, hopTimeout)
	}
	if !strings.Contains(reason, "circuit") {
		t.Errorf("denial reason %q does not mention the open circuit", reason)
	}
	waitForCleanTables(t, w)
}

// countdownDialer fails its first N dials, then delegates — a
// deterministic transient fault for exercising the retry loop.
type countdownDialer struct {
	inner transport.Dialer
	fails atomic.Int32
}

func (d *countdownDialer) Dial(addr string) (transport.Conn, error) {
	if d.fails.Add(-1) >= 0 {
		return nil, fmt.Errorf("countdown: injected dial failure to %q", addr)
	}
	return d.inner.Dial(addr)
}

// TestRetryRecoversFromTransientDialFailure: with one retry budgeted, a
// single failed dial to the next hop must not surface to the user.
func TestRetryRecoversFromTransientDialFailure(t *testing.T) {
	flaky := &countdownDialer{}
	flaky.fails.Store(1)
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:   3,
		CallTimeout:  time.Second,
		MaxRetries:   1,
		RetryBackoff: 5 * time.Millisecond,
		WrapDialer: func(name string, d transport.Dialer) transport.Dialer {
			if name != "Domain0" {
				return d
			}
			flaky.inner = d
			return flaky
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("reserve denied despite retry budget: %s", res.Reason)
	}
	if got, want := len(res.Approvals), len(w.Domains); got != want {
		t.Errorf("grant carries %d approvals, want %d", got, want)
	}
	if err := w.VerifyApprovals(res); err != nil {
		t.Fatalf("approval signature check: %v", err)
	}
	if n := grantedCount(w); n != len(w.Domains) {
		t.Errorf("%d granted reservations across the chain, want %d", n, len(w.Domains))
	}
}

// TestDeadPeerRestartRecovers is the regression test for the pooled
// client lifecycle: a mid-chain broker dies (listener and established
// connections), reservations fail while it is down, and after it comes
// back the very next reserve succeeds — the upstream broker must
// notice its cached connection is dead and redial, without itself
// being restarted.
func TestDeadPeerRestartRecovers(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  3,
		CallTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	reserve := func() (*signalling.ResultPayload, error) {
		spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
		return u.ReserveE2E(spec)
	}

	// Healthy chain: establishes pooled connections end to end.
	res, err := reserve()
	if err != nil || !res.Granted {
		t.Fatalf("baseline reserve: res=%+v err=%v", res, err)
	}

	// Kill the mid-chain broker, established connections included.
	if err := w.StopDomain("Domain1"); err != nil {
		t.Fatal(err)
	}
	res, err = reserve()
	if err != nil {
		t.Fatalf("user got a transport error, want a protocol denial: %v", err)
	}
	if res.Granted {
		t.Fatal("reservation granted through a dead mid-chain broker")
	}

	// Restart it at the same address. The source broker's next call
	// must transparently redial — no broker restarts, no manual reset.
	if err := w.RestartDomain("Domain1"); err != nil {
		t.Fatal(err)
	}
	res, err = reserve()
	if err != nil || !res.Granted {
		t.Fatalf("reserve after peer restart: res=%+v err=%v", res, err)
	}
	if err := w.VerifyApprovals(res); err != nil {
		t.Fatalf("approval signature check after restart: %v", err)
	}
}
